module standout

go 1.22
