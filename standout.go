// Package standout selects the best attributes of a new database tuple for
// maximum visibility, implementing Miah, Das, Hristidis & Mannila,
// "Standing Out in a Crowd: Selecting Attributes for Maximum Visibility"
// (ICDE 2008).
//
// Given a query log Q of conjunctive Boolean queries (what buyers searched
// for), a new tuple t (the product a seller wants to advertise) and a budget
// m (how many attributes the ad can carry), the library computes the
// compression t' of t with at most m attributes that maximizes the number of
// queries retrieving t' — the paper's problem SOC-CB-QL. The problem is
// NP-complete; the library ships two exact algorithm families and three
// greedy heuristics, plus every variant the paper defines (database-driven
// SOC-CB-D, per-attribute, disjunctive, top-k, categorical, numeric, text).
//
// Quick start:
//
//	schema := standout.MustSchema([]string{"AC", "FourDoor", "Turbo"})
//	log := standout.NewQueryLog(schema)
//	q, _ := schema.VectorOf("AC", "FourDoor")
//	_ = log.Append(q)
//	tuple, _ := schema.VectorOf("AC", "FourDoor", "Turbo")
//	sol, err := standout.Solve(log, tuple, 2) // default solver
//	if err != nil { ... }
//	fmt.Println(sol.AttrNames(schema), sol.Satisfied)
//
// Solver selection guide (§VII of the paper, reproduced in EXPERIMENTS.md):
// ILP wins on short, wide logs (few queries, many attributes);
// MaxFreqItemSets wins on long, narrow logs; for logs both long and wide
// only the greedy heuristics are feasible, of which ConsumeAttr and
// ConsumeAttrCumul are near-optimal in practice and ConsumeQueries is
// generally a bad choice.
package standout

import (
	"context"
	"log/slog"

	"standout/internal/bitvec"
	"standout/internal/cache"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/obsv"
)

// Re-exported data-model types. See the internal packages for full method
// documentation; everything needed for ordinary use is reachable from here.
type (
	// Vector is a fixed-width bit vector representing a tuple or a query.
	Vector = bitvec.Vector
	// Schema names the Boolean attributes of a table or query log.
	Schema = dataset.Schema
	// Table is a collection of Boolean tuples (the competition D).
	Table = dataset.Table
	// QueryLog is a workload of conjunctive Boolean queries (Q).
	QueryLog = dataset.QueryLog

	// Instance is one SOC-CB-QL problem (log, tuple, budget).
	Instance = core.Instance
	// Solution is a compressed tuple with its visibility and diagnostics.
	Solution = core.Solution
	// Solver is the common interface of all algorithms.
	Solver = core.Solver

	// BruteForce is the exact enumeration baseline (§IV.A).
	BruteForce = core.BruteForce
	// IP is the exact branch-and-bound solver for the paper's first,
	// nonlinear integer-program formulation (§IV.B).
	IP = core.IP
	// ILP is the exact linearized integer-programming algorithm (§IV.B).
	ILP = core.ILP
	// MaxFreqItemSets is the exact itemset-mining algorithm (§IV.C).
	MaxFreqItemSets = core.MaxFreqItemSets
	// Prep is reusable MaxFreqItemSets preprocessing state for one log.
	Prep = core.Prep
	// ConsumeAttr is the attribute-frequency greedy heuristic (§IV.D).
	ConsumeAttr = core.ConsumeAttr
	// ConsumeAttrCumul is the cumulative co-occurrence greedy (§IV.D).
	ConsumeAttrCumul = core.ConsumeAttrCumul
	// ConsumeQueries is the query-consuming greedy (§IV.D).
	ConsumeQueries = core.ConsumeQueries
	// Estimate scores the greedy selection without touching the log: a
	// certified [EstLo, EstHi] interval around the exact weighted count from
	// precomputed itemset frequencies and a small LP (DESIGN.md §16). The
	// cheapest solver by far on large logs; the only approximate one.
	Estimate = core.Estimate
	// MiningBackend selects the MaxFreqItemSets mining strategy.
	MiningBackend = core.MiningBackend
)

// Mining backends for MaxFreqItemSets.
//
// The zero value of MiningBackend is BackendTwoPhaseWalk, so a bare
// MaxFreqItemSets{} literal runs the paper's randomized walk: fast and
// complete with high probability, but not guaranteed optimal. The library's
// own defaults — Solve, SolveContext, and every entry of Solvers() — use
// BackendExactDFS instead, trading speed for a guaranteed optimum; construct
// MaxFreqItemSets{Backend: BackendTwoPhaseWalk} explicitly to reproduce the
// paper's walk behavior.
const (
	// BackendTwoPhaseWalk is the paper's top-down two-phase random walk.
	BackendTwoPhaseWalk = core.BackendTwoPhaseWalk
	// BackendBottomUpWalk is the bottom-up baseline of [11].
	BackendBottomUpWalk = core.BackendBottomUpWalk
	// BackendExactDFS guarantees optimality via exhaustive maximal mining.
	BackendExactDFS = core.BackendExactDFS
)

// NewSchema builds a schema from unique attribute names.
func NewSchema(attrs []string) (*Schema, error) { return dataset.NewSchema(attrs) }

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs []string) *Schema { return dataset.MustSchema(attrs) }

// NewTable returns an empty table over the schema.
func NewTable(s *Schema) *Table { return dataset.NewTable(s) }

// NewQueryLog returns an empty query log over the schema.
func NewQueryLog(s *Schema) *QueryLog { return dataset.NewQueryLog(s) }

// LogFromTable reinterprets a database as a query log — the SOC-CB-D
// reduction: solving against the result maximizes the number of database
// tuples the compression dominates.
func LogFromTable(t *Table) *QueryLog { return dataset.LogFromTable(t) }

// ParseTuple parses a tuple from a 0/1 bit string or a comma-separated
// attribute-name list.
func ParseTuple(s *Schema, spec string) (Vector, error) { return dataset.ParseTuple(s, spec) }

// Solve runs the library's default solver on (log, tuple, m): exact
// MaxFreqItemSets with the guaranteed-complete DFS mining backend, which is
// the best all-round exact choice at moderate widths. For large instances
// pick a solver explicitly (see the package documentation).
func Solve(log *QueryLog, tuple Vector, m int) (Solution, error) {
	return SolveContext(context.Background(), log, tuple, m)
}

// SolveContext is Solve under a context: pass a context with a deadline (or
// cancel it) to bound the solve's wall clock. On cancellation the error
// satisfies errors.Is against context.Canceled or context.DeadlineExceeded.
// Every solver in the library honors its context the same way; see DESIGN.md
// for per-solver check granularity.
func SolveContext(ctx context.Context, log *QueryLog, tuple Vector, m int) (Solution, error) {
	return MaxFreqItemSets{Backend: BackendExactDFS}.
		SolveContext(ctx, Instance{Log: log, Tuple: tuple, M: m})
}

// Solvers returns one instance of every algorithm in the paper's order;
// handy for comparisons and experiments. The MaxFreqItemSets entry uses the
// same guaranteed-exact DFS mining backend as Solve, so every exact solver in
// the list actually returns a provable optimum (the walk backends are
// available by constructing MaxFreqItemSets with an explicit Backend).
func Solvers() []Solver {
	return []Solver{
		BruteForce{},
		IP{},
		ILP{},
		MaxFreqItemSets{Backend: BackendExactDFS},
		ConsumeAttr{},
		ConsumeAttrCumul{},
		ConsumeQueries{},
	}
}

// PreparedSolver adapts MaxFreqItemSets preprocessing state (from
// MaxFreqItemSets.Preprocess) to the Solver interface; it is safe for
// concurrent use and shares mined itemsets across solves of the same log.
type PreparedSolver = core.PreparedSolver

// SolveBatch solves the same (log, m) problem for many tuples concurrently,
// fanning out across workers (≤ 0 selects GOMAXPROCS). Results align with
// tuples by index. The first error cancels the batch.
func SolveBatch(s Solver, log *QueryLog, tuples []Vector, m, workers int) ([]Solution, error) {
	return core.SolveBatch(s, log, tuples, m, workers)
}

// BatchError identifies the tuple whose failure cancelled a batch.
type BatchError = core.BatchError

// SolveBatchContext is SolveBatch under a context, with partial results: it
// returns every solution computed before cancellation or the first failure,
// per-tuple errors aligned by index, and the batch-level error (the external
// context's error, or a *BatchError wrapping the first solver failure).
func SolveBatchContext(ctx context.Context, s Solver, log *QueryLog, tuples []Vector, m, workers int) ([]Solution, []error, error) {
	return core.SolveBatchContext(ctx, s, log, tuples, m, workers)
}

// Shared per-log solve state. For the marketplace regime — one query log,
// many tuples — prepare the log once and solve through the prepared state:
// the solvers share an inverted attribute→query bitmap index and solutions
// for repeated (solver, tuple, budget) triples are memoized. Results are
// identical to the direct path, only faster. SolveBatch and SolveBatchContext do this
// automatically; PrepareLog is for callers who want to reuse the state across
// batches or single solves:
//
//	p, err := standout.PrepareLog(log)
//	if err != nil { ... }
//	sol, err := p.Solve(standout.ConsumeAttrCumul{}, tuple, m)
//	fmt.Printf("%+v\n", p.CacheStats())
type (
	// PreparedLog is concurrency-safe shared solve state for one query log:
	// the bitmap index, lazily built mining state, and a bounded solution
	// memo. Tied to the exact log contents at PrepareLog time; mutations via
	// QueryLog.Append (or announced with QueryLog.Touch) make it stale.
	PreparedLog = core.PreparedLog
	// CacheStats snapshots a PreparedLog solution memo's counters.
	CacheStats = cache.Stats
)

// DefaultSolutionCacheSize is the solution-memo capacity PrepareLog starts
// with; change it per PreparedLog with SetSolutionCache (≤ 0 disables).
const DefaultSolutionCacheSize = core.DefaultSolutionCacheSize

// PrepareLog validates the log and builds its shared solve state.
func PrepareLog(log *QueryLog) (*PreparedLog, error) { return core.PrepareLog(log) }

// PrepareLogContext is PrepareLog under a context; the index build is
// recorded on the context's trace as an "index.build" span.
func PrepareLogContext(ctx context.Context, log *QueryLog) (*PreparedLog, error) {
	return core.PrepareLogContext(ctx, log)
}

// WithPrepared returns a context under which every solve of p's log uses the
// shared index (solves of other logs are unaffected). Unlike
// PreparedLog.Solve it does not memoize solutions.
func WithPrepared(ctx context.Context, p *PreparedLog) context.Context {
	return core.WithPrepared(ctx, p)
}

// PreparedFromContext returns the PreparedLog attached by WithPrepared, or
// nil.
func PreparedFromContext(ctx context.Context) *PreparedLog { return core.PreparedFromContext(ctx) }

// WithoutPreparation returns a context under which SolveBatchContext skips
// its automatic per-batch index build and scans the log directly — the
// pre-index behavior, kept reachable for A/B measurement.
func WithoutPreparation(ctx context.Context) context.Context { return core.WithoutPreparation(ctx) }

// Observability. Every solver populates a per-solve Trace when one is
// attached to its context, records process-level metrics into the registry
// returned by Metrics, and emits structured lifecycle events through a
// context-attached slog.Logger. All three are off (and free) by default; see
// DESIGN.md §Observability for the trace schema and the overhead budget.
//
//	tr := standout.NewTrace()
//	ctx := standout.WithTrace(context.Background(), tr)
//	sol, err := standout.SolveContext(ctx, log, tuple, m)
//	fmt.Print(tr)              // phase breakdown, counters, events
//	_ = sol.Trace() == tr      // the solution carries its trace too
type (
	// Trace collects one solve's (or one batch's) phase spans, counters and
	// timestamped events. Safe for concurrent use; nil is a valid no-op.
	Trace = obsv.Trace
	// TraceSummary is an immutable JSON-marshalable snapshot of a Trace.
	TraceSummary = obsv.Summary
	// MetricsRegistry is a process-level set of counters, gauges and
	// histograms with expvar and Prometheus-text publication.
	MetricsRegistry = obsv.Registry
)

// NewTrace returns an empty trace; attach it with WithTrace.
func NewTrace() *Trace { return obsv.NewTrace() }

// WithTrace returns a context carrying t. Every solve run under the returned
// context records its phase spans and counters into t, and the resulting
// Solution's Trace method returns it.
func WithTrace(ctx context.Context, t *Trace) context.Context { return obsv.WithTrace(ctx, t) }

// TraceFromContext returns the trace attached by WithTrace, or nil.
func TraceFromContext(ctx context.Context) *Trace { return obsv.FromContext(ctx) }

// WithLogger returns a context whose solves emit structured lifecycle events
// (solve.start, solve.finish, solve.cancel, solve.error, batch.finish)
// through l.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return obsv.WithLogger(ctx, l)
}

// Metrics returns the process-wide metrics registry the library records
// into: solve totals, error/cancel counts, solve-duration and batch
// queue-wait histograms. Use its WriteProm method for a Prometheus
// text-format dump or PublishExpvar to expose it under /debug/vars.
func Metrics() *MetricsRegistry { return obsv.Default }
