package standout

import (
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/text"
	"standout/internal/topk"
	"standout/internal/variants"
)

// Problem variants of §II.B / §V, re-exported from internal/variants.

// PerAttributeSolution augments a Solution with the per-attribute objective.
type PerAttributeSolution = variants.PerAttributeSolution

// PerAttribute solves the per-attribute variant of SOC-CB-QL: maximize
// satisfied queries per retained attribute (buyers per unit advertising
// cost), trying every budget m = 1..|tuple| with the given solver.
func PerAttribute(s Solver, log *QueryLog, tuple Vector) (PerAttributeSolution, error) {
	return variants.PerAttribute(s, log, tuple)
}

// SolveDatabase solves SOC-CB-D: retain m attributes so the compression
// dominates as many database tuples as possible.
func SolveDatabase(s Solver, db *Table, tuple Vector, m int) (Solution, error) {
	return variants.Database(s, db, tuple, m)
}

// Categorical data model re-exports.
type (
	// CatSchema describes categorical attributes and their value domains.
	CatSchema = dataset.CatSchema
	// CatTuple assigns one value (by domain index) per attribute.
	CatTuple = dataset.CatTuple
	// CatQuery constrains a subset of attributes to values (-1 = any).
	CatQuery = dataset.CatQuery
	// CatLog is a workload of categorical queries.
	CatLog = dataset.CatLog
)

// NewCatSchema builds a categorical schema from names and domains.
func NewCatSchema(attrs []string, domains [][]string) (*CatSchema, error) {
	return dataset.NewCatSchema(attrs, domains)
}

// SolveCategorical solves the categorical variant via reduction to Boolean.
func SolveCategorical(s Solver, log *CatLog, tuple CatTuple, m int) (Solution, error) {
	return variants.Categorical(s, log, tuple, m)
}

// Numeric data model re-exports.
type (
	// RangeQuery constrains numeric attributes to closed ranges.
	RangeQuery = dataset.RangeQuery
	// NumLog is a workload of range queries.
	NumLog = dataset.NumLog
	// NumericMode selects the strict or paper-literal reduction.
	NumericMode = variants.NumericMode
)

// Numeric reduction modes.
const (
	// NumericStrict drops queries whose ranges the tuple fails (recommended).
	NumericStrict = variants.NumericStrict
	// NumericLiteral is the paper's §V construction verbatim.
	NumericLiteral = variants.NumericLiteral
)

// NewRangeQuery returns an unconstrained range query of the given width.
func NewRangeQuery(width int) RangeQuery { return dataset.NewRangeQuery(width) }

// SolveNumeric solves the numeric variant: pick m numeric attributes of the
// tuple to advertise so the most range queries retrieve it.
func SolveNumeric(s Solver, log *NumLog, values []float64, m int, mode NumericMode) (Solution, error) {
	return variants.Numeric(s, log, values, m, mode)
}

// TopKVariant solves SOC-Topk for global scoring functions: queries return
// only their k best-scoring matches, so the compression must also beat the
// competition. See internal/variants.TopK for the reduction's guarantees.
type TopKVariant = variants.TopK

// AttrCountScore is the global score "number of present attributes" — the
// paper's example of a global scoring function.
func AttrCountScore(v Vector) float64 { return topk.AttrCount(v) }

// Disjunctive retrieval (a query matches when it shares ≥1 attribute).

// SolveDisjunctive solves the disjunctive variant exactly (max coverage via
// branch-and-bound ILP).
func SolveDisjunctive(log *QueryLog, tuple Vector, m int) (Solution, error) {
	return variants.DisjunctiveILP(log, tuple, m)
}

// SolveDisjunctiveGreedy is the (1−1/e)-approximate max-coverage greedy.
func SolveDisjunctiveGreedy(log *QueryLog, tuple Vector, m int) (Solution, error) {
	return variants.DisjunctiveGreedy(log, tuple, m)
}

// DisjunctiveSatisfied counts queries sharing at least one attribute with
// the compression (the disjunctive objective).
func DisjunctiveSatisfied(log *QueryLog, kept Vector) int {
	return variants.DisjunctiveSatisfied(log, kept)
}

// Text variant (§V): keyword selection for ads.

// SelectKeywords retains the m ad keywords maximizing the number of keyword
// queries fully covered. Use greedy solvers for large vocabularies.
func SelectKeywords(s Solver, queries [][]string, ad []string, m int) (kept []string, satisfied int, err error) {
	return text.SelectKeywords(s, queries, ad, m)
}

// Tokenize lowercases and splits text into word tokens.
func Tokenize(s string) []string { return text.Tokenize(s) }

// TextCorpus is a bag-of-words collection with BM25 top-k retrieval.
type TextCorpus = text.Corpus

// NewTextCorpus builds a corpus from tokenized documents.
func NewTextCorpus(docs [][]string) *TextCorpus { return text.NewCorpus(docs) }

// ensure the facade never drifts from the core interface.
var _ Solver = core.BruteForce{}

// TopKGeneralVariant solves SOC-Topk for arbitrary (query-dependent,
// non-monotone) scoring functions by direct branch-and-bound — the case §V
// calls a non-linear integer program. Exponential in the tuple width; use
// TopKVariant for global scoring functions.
type TopKGeneralVariant = variants.TopKGeneral
