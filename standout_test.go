package standout_test

import (
	"bytes"
	"strings"
	"testing"

	"standout"
)

// fig1 builds the paper's running example via the public API.
func fig1(t *testing.T) (*standout.Schema, *standout.QueryLog, standout.Vector) {
	t.Helper()
	schema := standout.MustSchema([]string{
		"AC", "FourDoor", "Turbo", "PowerDoors", "AutoTrans", "PowerBrakes",
	})
	log := standout.NewQueryLog(schema)
	for _, attrs := range [][]string{
		{"AC", "FourDoor"}, {"AC", "PowerDoors"}, {"FourDoor", "PowerDoors"},
		{"PowerDoors", "PowerBrakes"}, {"Turbo", "AutoTrans"},
	} {
		q, err := schema.VectorOf(attrs...)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(q); err != nil {
			t.Fatal(err)
		}
	}
	tuple, err := schema.VectorOf("AC", "FourDoor", "PowerDoors", "AutoTrans", "PowerBrakes")
	if err != nil {
		t.Fatal(err)
	}
	return schema, log, tuple
}

func TestPublicSolveDefault(t *testing.T) {
	schema, log, tuple := fig1(t)
	sol, err := standout.Solve(log, tuple, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied != 3 || !sol.Optimal {
		t.Fatalf("satisfied=%d optimal=%v", sol.Satisfied, sol.Optimal)
	}
	names := sol.AttrNames(schema)
	if strings.Join(names, ",") != "AC,FourDoor,PowerDoors" {
		t.Fatalf("names=%v", names)
	}
}

func TestPublicSolversAllAgree(t *testing.T) {
	_, log, tuple := fig1(t)
	solvers := standout.Solvers()
	if len(solvers) != 7 {
		t.Fatalf("Solvers() returned %d", len(solvers))
	}
	for _, s := range solvers {
		sol, err := s.Solve(standout.Instance{Log: log, Tuple: tuple, M: 3})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if sol.Satisfied != 3 {
			t.Errorf("%s: satisfied=%d (all algorithms find the optimum on Fig 1)",
				s.Name(), sol.Satisfied)
		}
	}
}

func TestPublicParseTuple(t *testing.T) {
	schema, _, _ := fig1(t)
	v, err := standout.ParseTuple(schema, "AC, Turbo")
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != 2 || !v.Get(0) || !v.Get(2) {
		t.Fatalf("v=%v", v)
	}
}

func TestPublicDatabaseVariant(t *testing.T) {
	schema, _, tuple := fig1(t)
	db := standout.NewTable(schema)
	for _, rows := range []string{"010100", "011000", "100111", "110101", "110000", "010100", "001100"} {
		v, err := standout.ParseTuple(schema, rows)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Append(v, ""); err != nil {
			t.Fatal(err)
		}
	}
	full, err := standout.ParseTuple(schema, "110111")
	if err != nil {
		t.Fatal(err)
	}
	_ = tuple
	sol, err := standout.SolveDatabase(standout.BruteForce{}, db, full, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied != 4 {
		t.Fatalf("dominated=%d, want 4 (§II.B example)", sol.Satisfied)
	}
}

func TestPublicPerAttribute(t *testing.T) {
	_, log, tuple := fig1(t)
	sol, err := standout.PerAttribute(standout.BruteForce{}, log, tuple)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Ratio <= 0 || sol.M < 1 {
		t.Fatalf("sol=%+v", sol)
	}
}

func TestPublicDisjunctive(t *testing.T) {
	_, log, tuple := fig1(t)
	exact, err := standout.SolveDisjunctive(log, tuple, 2)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := standout.SolveDisjunctiveGreedy(log, tuple, 2)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Satisfied > exact.Satisfied {
		t.Fatal("greedy beats exact")
	}
	if got := standout.DisjunctiveSatisfied(log, exact.Kept); got != exact.Satisfied {
		t.Fatalf("objective recount mismatch: %d vs %d", got, exact.Satisfied)
	}
	// Two attributes can intersect at least 4 of the 5 queries (e.g. AC +
	// PowerDoors hit q1, q2, q3, q4).
	if exact.Satisfied < 4 {
		t.Fatalf("exact=%d", exact.Satisfied)
	}
}

func TestPublicTextFacade(t *testing.T) {
	words := standout.Tokenize("Cozy Loft, great VIEW!")
	if len(words) != 4 || words[0] != "cozy" {
		t.Fatalf("Tokenize=%v", words)
	}
	kept, sat, err := standout.SelectKeywords(standout.ConsumeAttr{},
		[][]string{{"loft"}, {"view"}, {"garage"}},
		standout.Tokenize("cozy loft view"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sat != 2 || len(kept) != 2 {
		t.Fatalf("kept=%v sat=%d", kept, sat)
	}
	corpus := standout.NewTextCorpus([][]string{{"loft", "view"}, {"garage"}})
	if corpus.Size() != 2 {
		t.Fatal("corpus size")
	}
	if top := corpus.TopK([]string{"view"}, 1); len(top) != 1 || top[0] != 0 {
		t.Fatalf("TopK=%v", top)
	}
}

func TestPublicCategoricalFacade(t *testing.T) {
	cs, err := standout.NewCatSchema([]string{"Make"}, [][]string{{"Honda", "Toyota"}})
	if err != nil {
		t.Fatal(err)
	}
	log := &standout.CatLog{Schema: cs, Queries: []standout.CatQuery{{0}, {1}, {-1}}}
	sol, err := standout.SolveCategorical(standout.BruteForce{}, log, standout.CatTuple{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied != 2 { // Make=Honda and the unconstrained query
		t.Fatalf("satisfied=%d", sol.Satisfied)
	}
}

func TestPublicNumericFacade(t *testing.T) {
	schema := standout.MustSchema([]string{"Price", "Year"})
	q := standout.NewRangeQuery(2)
	q.SetRange(0, 1000, 2000)
	log := &standout.NumLog{Schema: schema, Queries: []standout.RangeQuery{q}}
	sol, err := standout.SolveNumeric(standout.BruteForce{}, log, []float64{1500, 2020}, 1, standout.NumericStrict)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied != 1 {
		t.Fatalf("satisfied=%d", sol.Satisfied)
	}
}

func TestPublicGenerateAndCSVRoundTrip(t *testing.T) {
	tab := standout.GenerateCars(1, 50)
	if tab.Size() != 50 || tab.Width() != len(standout.CarAttrs) {
		t.Fatalf("%dx%d", tab.Size(), tab.Width())
	}
	var buf bytes.Buffer
	if err := standout.WriteTableCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	back, err := standout.ReadTableCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != 50 {
		t.Fatal("round trip lost rows")
	}

	log := standout.GenerateRealWorkload(tab, 2, 30)
	buf.Reset()
	if err := standout.WriteQueryLogCSV(&buf, log); err != nil {
		t.Fatal(err)
	}
	backLog, err := standout.ReadQueryLogCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if backLog.Size() != 30 {
		t.Fatal("query log round trip lost rows")
	}

	syn := standout.GenerateSyntheticWorkload(tab.Schema, 3, 40, standout.WorkloadOptions{})
	if syn.Size() != 40 {
		t.Fatal("synthetic size")
	}
	if got := standout.PickTuples(tab, 4, 7); len(got) != 7 {
		t.Fatal("PickTuples")
	}
}

func TestPublicMFIPreprocessing(t *testing.T) {
	tab := standout.GenerateCars(1, 300)
	log := standout.GenerateRealWorkload(tab, 2, 60)
	mfi := standout.MaxFreqItemSets{Backend: standout.BackendExactDFS}
	prep, err := mfi.Preprocess(log)
	if err != nil {
		t.Fatal(err)
	}
	for _, tuple := range standout.PickTuples(tab, 3, 5) {
		want, err := standout.BruteForce{}.Solve(standout.Instance{Log: log, Tuple: tuple, M: 5})
		if err != nil {
			t.Fatal(err)
		}
		got, err := prep.SolvePrepared(tuple, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got.Satisfied != want.Satisfied {
			t.Fatalf("prepared=%d brute=%d", got.Satisfied, want.Satisfied)
		}
	}
}

func TestPublicTopKVariantFacade(t *testing.T) {
	schema, log, tuple := fig1(t)
	db := standout.NewTable(schema)
	for _, rows := range []string{"110100", "110111"} {
		v, err := standout.ParseTuple(schema, rows)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Append(v, ""); err != nil {
			t.Fatal(err)
		}
	}
	scores := []float64{3, 5}
	v := standout.TopKVariant{
		DB: db, K: 1,
		NewTupleScore: standout.AttrCountScore,
		RowScores:     scores,
	}
	sol, err := v.Solve(standout.BruteForce{}, log, tuple, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With k=1 and a 5-option competitor matching many queries, a 3-option
	// compression can only win queries the competitor does not dominate.
	recount := 0
	for _, q := range log.Queries {
		if !q.SubsetOf(sol.Kept) {
			continue
		}
		better := 0
		for i, row := range db.Rows {
			if q.SubsetOf(row) && scores[i] > 3 {
				better++
			}
		}
		if better < 1 {
			recount++
		}
	}
	if recount != sol.Satisfied {
		t.Fatalf("reported %d, recount %d", sol.Satisfied, recount)
	}
}
