// Benchmarks mirroring the paper's evaluation (§VII). Each BenchmarkFigN
// runs the harness that regenerates the corresponding figure at reduced
// averaging; the per-algorithm benchmarks give the per-solve costs the
// figures aggregate. Full-scale regeneration is cmd/socbench's job.
package standout_test

import (
	"context"
	"testing"
	"time"

	"standout"
	"standout/internal/bench"
)

// quickCfg keeps the figure benchmarks tractable under `go test -bench`.
func quickCfg() bench.Config {
	return bench.Config{Seed: 1, CarsN: 2000, Tuples: 3, ILPTimeout: time.Minute}
}

func BenchmarkFig6ExecutionTimesRealWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig6(quickCfg())
	}
}

func BenchmarkFig7QualityRealWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig7(quickCfg())
	}
}

func BenchmarkFig8ExecutionTimesSynthetic2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig8(quickCfg())
	}
}

func BenchmarkFig9QualitySynthetic2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig9(quickCfg())
	}
}

func BenchmarkFig10VaryingLogSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig10(quickCfg())
	}
}

func BenchmarkFig11VaryingAttributeCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig11(quickCfg())
	}
}

// Per-algorithm benchmarks: one solve on the real-workload surrogate, m = 5.
func benchmarkSolver(b *testing.B, s standout.Solver, logSize, m int) {
	b.Helper()
	tab := standout.GenerateCars(1, 2000)
	var log *standout.QueryLog
	if logSize == 185 {
		log = standout.GenerateRealWorkload(tab, 2, logSize)
	} else {
		log = standout.GenerateSyntheticWorkload(tab.Schema, 2, logSize, standout.WorkloadOptions{})
	}
	tuple := standout.PickTuples(tab, 3, 1)[0]
	in := standout.Instance{Log: log, Tuple: tuple, M: m}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveILPReal185(b *testing.B) {
	benchmarkSolver(b, standout.ILP{}, 185, 5)
}

func BenchmarkSolveMaxFreqItemSetsReal185(b *testing.B) {
	benchmarkSolver(b, standout.MaxFreqItemSets{}, 185, 5)
}

func BenchmarkSolveConsumeAttrReal185(b *testing.B) {
	benchmarkSolver(b, standout.ConsumeAttr{}, 185, 5)
}

func BenchmarkSolveConsumeAttrCumulReal185(b *testing.B) {
	benchmarkSolver(b, standout.ConsumeAttrCumul{}, 185, 5)
}

func BenchmarkSolveConsumeQueriesReal185(b *testing.B) {
	benchmarkSolver(b, standout.ConsumeQueries{}, 185, 5)
}

func BenchmarkSolveMaxFreqItemSetsSynthetic2000(b *testing.B) {
	benchmarkSolver(b, standout.MaxFreqItemSets{}, 2000, 5)
}

func BenchmarkSolveConsumeAttrSynthetic2000(b *testing.B) {
	benchmarkSolver(b, standout.ConsumeAttr{}, 2000, 5)
}

func BenchmarkMFIPreprocessedLookup(b *testing.B) {
	// The paper's preprocessing discussion: with mining hoisted out, the
	// per-tuple cost collapses (paper: ~0.015s on 2008 hardware).
	tab := standout.GenerateCars(1, 2000)
	log := standout.GenerateRealWorkload(tab, 2, 185)
	tuples := standout.PickTuples(tab, 3, 50)
	mfi := standout.MaxFreqItemSets{}
	prep, err := mfi.Preprocess(log)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the per-threshold cache.
	if _, err := prep.SolvePrepared(tuples[0], 5); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.SolvePrepared(tuples[i%len(tuples)], 5); err != nil {
			b.Fatal(err)
		}
	}
}

// Observability overhead benchmarks (see DESIGN.md §Observability). The nil
// variant is the pre-obsv baseline: a context with no trace attached must
// solve at the same cost — the begin/end wrapper performs zero allocations
// on that path (pinned exactly by TestNilTracePathAddsNoAllocations in
// internal/core). The traced variant bounds the cost of full span/counter
// recording. BENCH_obsv.json records a run of both.
func benchmarkSolveTraced(b *testing.B, traced bool) {
	b.Helper()
	tab := standout.GenerateCars(1, 2000)
	log := standout.GenerateRealWorkload(tab, 2, 185)
	tuple := standout.PickTuples(tab, 3, 1)[0]
	in := standout.Instance{Log: log, Tuple: tuple, M: 5}
	ctx := context.Background()
	if traced {
		ctx = standout.WithTrace(ctx, standout.NewTrace())
	}
	s := standout.ConsumeAttr{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SolveContext(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveNilTrace(b *testing.B)  { benchmarkSolveTraced(b, false) }
func BenchmarkSolveWithTrace(b *testing.B) { benchmarkSolveTraced(b, true) }

// Batch benchmarks with the shared query-log index and solution memo on vs
// off (see DESIGN.md §Shared index). The indexed variant is SolveBatch's
// default (it prepares the log once per batch); the unindexed variant forces
// the direct-scan path via WithoutPreparation. Both produce identical
// solutions — the differential sweep in internal/core pins that — so the
// ratio of these two is pure index/cache speedup. BENCH_index.json records a
// full-scale run (10k queries, 64 tuples) via `socbench -json index`.
func benchmarkBatch(b *testing.B, indexed bool) {
	b.Helper()
	tab := standout.GenerateCars(1, 2000)
	log := standout.GenerateSyntheticWorkload(tab.Schema, 2, 1500, standout.WorkloadOptions{})
	tuples := standout.PickTuples(tab, 3, 16)
	ctx := context.Background()
	if !indexed {
		ctx = standout.WithoutPreparation(ctx)
	}
	s := standout.ConsumeAttrCumul{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := standout.SolveBatchContext(ctx, s, log, tuples, 5, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchIndexed(b *testing.B)   { benchmarkBatch(b, true) }
func BenchmarkBatchUnindexed(b *testing.B) { benchmarkBatch(b, false) }
