package standout_test

import (
	"strings"
	"testing"

	"standout"
)

// These tests exercise the variant facades end to end on instances small
// enough to verify by hand, asserting exact visibility counts rather than
// internal consistency only.

// TestPerAttributeHandChecked: schema {A,B,C}, queries {A},{A},{A,B},{C},
// tuple ABC. Keeping just A satisfies the two {A} queries at cost 1 —
// ratio 2.0 — which beats every larger budget:
//
//	m=1: keep {A} → 2/1 = 2.0 (keep {C} → 1/1)
//	m=2: keep {A,B} or {A,C} → 3/2 = 1.5
//	m=3: keep {A,B,C} → 4/3 ≈ 1.33
func TestPerAttributeHandChecked(t *testing.T) {
	schema := standout.MustSchema([]string{"A", "B", "C"})
	log := standout.NewQueryLog(schema)
	for _, attrs := range [][]string{{"A"}, {"A"}, {"A", "B"}, {"C"}} {
		q, err := schema.VectorOf(attrs...)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(q); err != nil {
			t.Fatal(err)
		}
	}
	tuple, err := schema.VectorOf("A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []standout.Solver{standout.BruteForce{}, standout.ILP{}} {
		sol, err := standout.PerAttribute(s, log, tuple)
		if err != nil {
			t.Fatal(err)
		}
		if sol.M != 1 || sol.Satisfied != 2 || sol.Ratio != 2.0 {
			t.Fatalf("%s: m=%d satisfied=%d ratio=%v, want m=1 satisfied=2 ratio=2",
				s.Name(), sol.M, sol.Satisfied, sol.Ratio)
		}
		if names := sol.AttrNames(schema); strings.Join(names, ",") != "A" {
			t.Fatalf("%s: kept %v, want [A]", s.Name(), names)
		}
	}
}

// TestDisjunctiveHandChecked: schema {A,B,C,D}, queries {A,B},{B},{C},{C,D},
// {D}, tuple ABCD, m=2. Disjunctive retrieval needs only one shared
// attribute, so this is max coverage. The three singleton queries {B},{C},
// {D} need three distinct attributes, so two attributes cover at most 4
// queries — and {B,C} (or {B,D}) achieves 4. The greedy also reaches 4 here
// from any tie-broken first pick.
func TestDisjunctiveHandChecked(t *testing.T) {
	schema := standout.MustSchema([]string{"A", "B", "C", "D"})
	log := standout.NewQueryLog(schema)
	for _, attrs := range [][]string{{"A", "B"}, {"B"}, {"C"}, {"C", "D"}, {"D"}} {
		q, err := schema.VectorOf(attrs...)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(q); err != nil {
			t.Fatal(err)
		}
	}
	tuple, err := schema.VectorOf("A", "B", "C", "D")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := standout.SolveDisjunctive(log, tuple, 2)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Satisfied != 4 {
		t.Fatalf("exact satisfied=%d, want 4", exact.Satisfied)
	}
	if got := standout.DisjunctiveSatisfied(log, exact.Kept); got != 4 {
		t.Fatalf("recount of exact kept set = %d, want 4", got)
	}
	greedy, err := standout.SolveDisjunctiveGreedy(log, tuple, 2)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Satisfied != 4 {
		t.Fatalf("greedy satisfied=%d, want 4", greedy.Satisfied)
	}
	if got := standout.DisjunctiveSatisfied(log, greedy.Kept); got != greedy.Satisfied {
		t.Fatalf("greedy recount %d != reported %d", got, greedy.Satisfied)
	}
}

// TestTopKHandChecked: schema {A,B,C}; competition r1=ABC (score 10),
// r2=C (score 9), r3=A (score 1); every query returns its top k=2 rows.
// The new tuple ABC compressed to m=2 attributes scores AttrCount = 2, so:
//
//	{A}: only r1 outranks it (1 < k) → winnable
//	{B}: only r1 outranks it        → winnable
//	{C}: r1 and r2 outrank it (2 ≥ k) → hopeless
//
// The winnable set {A},{B} is an ordinary SOC-CB-QL instance whose optimum
// keeps {A,B} and satisfies both queries.
func TestTopKHandChecked(t *testing.T) {
	schema := standout.MustSchema([]string{"A", "B", "C"})
	db := standout.NewTable(schema)
	for _, spec := range []string{"111", "001", "100"} {
		v, err := standout.ParseTuple(schema, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Append(v, ""); err != nil {
			t.Fatal(err)
		}
	}
	log := standout.NewQueryLog(schema)
	for _, attrs := range [][]string{{"A"}, {"B"}, {"C"}} {
		q, err := schema.VectorOf(attrs...)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(q); err != nil {
			t.Fatal(err)
		}
	}
	tuple, err := schema.VectorOf("A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	v := standout.TopKVariant{
		DB: db, K: 2,
		NewTupleScore: standout.AttrCountScore,
		RowScores:     []float64{10, 9, 1},
	}
	sol, err := v.Solve(standout.BruteForce{}, log, tuple, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied != 2 {
		t.Fatalf("satisfied=%d, want 2 ({A} and {B} winnable, {C} hopeless)", sol.Satisfied)
	}
	if names := sol.AttrNames(schema); strings.Join(names, ",") != "A,B" {
		t.Fatalf("kept %v, want [A B]", names)
	}
}
