# Convenience targets; everything is plain `go` underneath.

.PHONY: check build test test-race bench vet cover experiments quick-experiments fuzz

# Default: everything CI would gate on.
check: build vet test test-race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# The solver core is the concurrency-heavy part (SolveBatchContext, shared
# Prep caches); race-test it on every check. `go test -race ./...` also works
# but takes much longer on the bench package.
test-race:
	go test -race ./internal/core/... ./internal/ilp/... ./internal/itemsets/...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# Full-scale reproduction of the paper's figures + ablations (slow: the ILP
# blow-up past 1000 queries IS Fig 10's finding).
experiments:
	go run ./cmd/socbench all

quick-experiments:
	go run ./cmd/socbench -quick all

# Exploratory fuzzing of the exact-solver agreement property.
fuzz:
	go test -fuzz FuzzExactSolversAgree -fuzztime 60s ./internal/core
