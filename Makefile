# Convenience targets; everything is plain `go` underneath.

.PHONY: check build test test-race soak soak-shard bench bench-bitmap bench-compact bench-shard bench-estimate vet fmt-check cover cover-gate experiments quick-experiments fuzz fuzz-smoke

# Default: everything CI would gate on.
check: build vet fmt-check test test-race cover-gate

build:
	go build ./...

vet:
	go vet ./...

# Fail if any file is not gofmt-clean (gofmt -l prints offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	go test ./...

# The solver core is the concurrency-heavy part (SolveBatchContext, the
# shared PreparedLog index + solution memo, the LRU); race-test it on every
# check, together with the bitvec layer whose compressed sets the index
# shares read-only across workers and the obsv layer whose lock-free flight
# ring is written by every request. `go test -race ./...` also works but
# takes much longer on the bench package.
test-race:
	go test -race ./internal/bitvec/... ./internal/compact/... ./internal/core/... ./internal/cache/... ./internal/estimate/... ./internal/index/... ./internal/ilp/... ./internal/itemsets/... ./internal/par/... ./internal/serve/... ./internal/shard/... ./internal/fault/... ./internal/obsv/...

# 30 seconds of fault-injected chaos storms against the serving layer under
# the race detector: injected panics, delays, forced staleness, live log
# mutation. The suite asserts the server survives, every response is
# well-formed, and degraded answers beat the greedy baseline.
soak:
	go test -race -run 'TestSoak' ./internal/serve/ -soak=30s -v

# 30 seconds of shard kill/restore storms against the scatter-gather
# coordinator under the race detector: one shard dies and comes back every
# round. The suite asserts zero 5xx, exact partial lower bounds over the
# responding subset, circuit open within the retry budget, and bit-identical
# full answers after the half-open probe recovery.
soak-shard:
	go test -race -run 'TestSoakShard' ./internal/shard/ -soak=30s -v

cover:
	go test -cover ./...

# The shared-index layer, its bit-set backends, the log compactor, the
# parallel scheduler and the selectivity estimator are pure algorithmic code
# with no excuse for untested branches: hold every package in COVER_GATED at
# >= 85% statement coverage. Every internal package must be classified —
# gated or exempt — so a new package cannot silently dodge the gate.
COVER_GATED := internal/bitvec internal/index internal/compact internal/cache internal/par internal/estimate
COVER_EXEMPT := internal/bench internal/core internal/dataset internal/fault internal/gen internal/ilp \
	internal/itemsets internal/lp internal/obsv internal/serve internal/shard internal/sim \
	internal/text internal/topk internal/variants

cover-gate:
	@missing=""; for p in $$(go list ./internal/... | sed 's|^standout/||'); do \
		case " $(COVER_GATED) $(COVER_EXEMPT) " in \
			*" $$p "*) ;; \
			*) missing="$$missing $$p" ;; \
		esac; done; \
	if [ -n "$$missing" ]; then \
		echo "cover-gate: unclassified internal package(s):$$missing"; \
		echo "cover-gate: add each to COVER_GATED (held at >= 85% coverage) or COVER_EXEMPT in the Makefile."; \
		exit 1; fi
	@go test -cover $(addsuffix /...,$(addprefix ./,$(COVER_GATED))) | awk ' \
		/coverage:/ { c = $$0; sub(/.*coverage: /, "", c); sub(/%.*/, "", c); \
			if (c + 0 < 85) { print "coverage below 85%: " $$0; bad = 1 } else print } \
		END { exit bad }'

bench:
	go test -bench=. -benchmem ./...

# Regenerate BENCH_bitmap.json: the wide-sparse-schema sweep comparing dense
# and compressed column representations on memory and scoring throughput.
bench-bitmap:
	go run ./cmd/socbench -json bitmap > BENCH_bitmap.json

# Regenerate BENCH_compact.json: delta-build latency vs full re-index after
# appends, and solve time on a duplicate-heavy log raw vs compacted-weighted.
bench-compact:
	go run ./cmd/socbench -json compact > BENCH_compact.json

# Regenerate BENCH_shard.json: the sharded scatter-gather deployment under
# closed-loop load, hedging on vs off, with an injected slow-shard tail.
bench-shard:
	go run ./cmd/socbench -json shard > BENCH_shard.json

# Regenerate BENCH_estimate.json: the itemset+LP estimator's measured point
# error, certified-interval width, containment rate and speedup over greedy
# across every generator family (DESIGN.md §16).
bench-estimate:
	go run ./cmd/socbench -json estimate > BENCH_estimate.json

# Full-scale reproduction of the paper's figures + ablations (slow: the ILP
# blow-up past 1000 queries IS Fig 10's finding).
experiments:
	go run ./cmd/socbench all

quick-experiments:
	go run ./cmd/socbench -quick all

# Exploratory fuzzing of the exact-solver agreement property.
fuzz:
	go test -fuzz FuzzExactSolversAgree -fuzztime 60s ./internal/core

# ~30s fuzz smoke for CI: a short budget on every fuzz target, seeded by the
# committed corpora under testdata/fuzz/, so regressions the corpora encode
# are caught on every run and a little fresh exploration happens too.
fuzz-smoke:
	go test -fuzz FuzzVectorAlgebra -fuzztime 6s ./internal/bitvec
	go test -fuzz FuzzCompressedAlgebra -fuzztime 8s ./internal/bitvec
	go test -fuzz FuzzSatisfiedDropping -fuzztime 8s ./internal/index
	go test -fuzz FuzzSegmentMerge -fuzztime 8s ./internal/index
	go test -fuzz FuzzCompactEquivalence -fuzztime 6s ./internal/compact
	go test -fuzz FuzzExactSolversAgree -fuzztime 14s ./internal/core
	go test -fuzz FuzzEstimateSoundness -fuzztime 8s ./internal/estimate
