# Convenience targets; everything is plain `go` underneath.

.PHONY: build test bench vet cover experiments quick-experiments fuzz

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# Full-scale reproduction of the paper's figures + ablations (slow: the ILP
# blow-up past 1000 queries IS Fig 10's finding).
experiments:
	go run ./cmd/socbench all

quick-experiments:
	go run ./cmd/socbench -quick all

# Exploratory fuzzing of the exact-solver agreement property.
fuzz:
	go test -fuzz FuzzExactSolversAgree -fuzztime 60s ./internal/core
