// Command socserve runs the hardened solving service: the paper's online
// scenario — price a new tuple's best m-attribute compression against a live
// query log — as an HTTP/JSON server with admission control, deadline
// propagation, a graceful-degradation ladder, and panic isolation (see
// internal/serve and DESIGN.md §10).
//
// Usage:
//
//	socserve -log queries.csv [-addr 127.0.0.1:8080]
//	socserve -db cars.csv                       # rows act as the workload
//	socserve -gen 500 [-seed 7]                 # synthetic cars workload
//	socserve -log queries.csv -shard-of 0/4     # serve one hash partition
//	socserve -shards http://h1:8080,http://h2:8080   # scatter-gather coordinator
//
// Coordinator mode (-shards) holds no workload: it bootstraps the schema
// from the first reachable shard's GET /schema and scatter-gathers POST
// /solve across the shards' /score counting oracles, merging answers
// bit-identically to an unsharded server (internal/shard, DESIGN.md §15).
// Lost shards degrade responses to exact partial results (200 with
// "partial": true), never 5xx; per-shard circuit health is on GET /readyz.
// Coordinator knobs: -shard-timeout, -shard-retries, -hedge-after,
// -no-hedge, -breaker-failures, -breaker-cooloff.
//
// Endpoints:
//
//	POST /solve        {"tuple": "110100...|AC,Turbo", "m": 3,
//	                    "algo": "mfi-exact", "timeout_ms": 500}
//	POST /solve/batch  {"tuples": [...], "m": 3}
//	GET  /log          workload stats; POST appends queries copy-on-write
//	POST /log/touch    force index staleness (chaos lever)
//	GET  /healthz /readyz /metrics
//	GET  /debug/requests[/TRACE_ID]  flight recorder: recent requests as JSON
//
// Every solve/batch/log request gets a W3C trace context (inbound
// `traceparent` honored, else minted) echoed in `X-Request-Id`/`traceparent`
// response headers and the body's trace_id field; `socstats tail` follows the
// flight recorder live.
//
// Flags (beyond the obsv trio and -timeout):
//
//	-addr ADDR        listen address (default 127.0.0.1:8080; :0 picks a port)
//	-compact          fold exact-duplicate queries into weighted entries at
//	                  startup; answers are provably identical, the log smaller
//	-max-concurrent   solve slots (default GOMAXPROCS)
//	-max-queue        bounded wait queue; beyond it requests shed with 429
//	-greedy-budget    deadline budget below which the ladder serves the
//	                  certified-estimate rung instead of greedy (default 1ms)
//	-shed-estimate    answer shed solves 200 {"estimated":true, "estimate":
//	                  {"lo","hi"}} instead of 429 (DESIGN.md §16)
//	-default-timeout  per-request deadline when the request names none
//	-max-timeout      clamp on client-requested deadlines
//	-grace            shutdown grace for in-flight requests (default 5s)
//	-fault SPECS      deterministic fault injection, ";"-separated rules:
//	                  SITE[:every=N][:offset=N][:count=N][:delay=D][:jitter=D][:ACTION]
//	-fault-seed N     seed for injected delay jitter (default 1)
//	-flight N         flight-recorder ring size (default 256; < 0 disables)
//	-slow D           slow-request threshold (default 500ms)
//	-sample N         keep 1-in-N boring successes in the recorder (default 1)
//
// ^C (SIGINT), SIGTERM, or an expired -timeout drain the server gracefully:
// the listener closes, in-flight requests get -grace to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"standout/internal/compact"
	"standout/internal/dataset"
	"standout/internal/fault"
	"standout/internal/gen"
	"standout/internal/obsv"
	"standout/internal/serve"
	"standout/internal/shard"
)

func main() {
	ctx, stop := obsv.SignalContext()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "socserve: %v\n", err)
		os.Exit(2)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("socserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (:0 picks a free port)")
	logPath := fs.String("log", "", "query log CSV (SOC-CB-QL workload)")
	doCompact := fs.Bool("compact", false, "fold exact-duplicate queries into weighted entries before serving (identical answers, smaller log)")
	dbPath := fs.String("db", "", "database CSV (rows act as the workload)")
	genN := fs.Int("gen", 0, "generate a synthetic cars workload of this many queries")
	seed := fs.Int64("seed", 1, "generator seed for -gen")
	maxConcurrent := fs.Int("max-concurrent", 0, "concurrent solve slots (0 = GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 0, "bounded admission queue (0 = 4×slots); beyond it 429")
	defaultTimeout := fs.Duration("default-timeout", 0, "per-request deadline when unset (0 = 2s)")
	maxTimeout := fs.Duration("max-timeout", 0, "clamp on client deadlines (0 = 30s)")
	workers := fs.Int("workers", 0, "per-solve parallel workers for brute/ilp/mfi-exact (0 = sequential; answers identical either way)")
	grace := fs.Duration("grace", 5*time.Second, "shutdown grace for in-flight requests")
	flightSize := fs.Int("flight", 256, "flight-recorder ring size (completed-request records; < 0 disables)")
	slow := fs.Duration("slow", 500*time.Millisecond, "latency at or above which a request is logged and always recorded")
	sample := fs.Int("sample", 1, "keep 1-in-N boring successes in the flight recorder (errors and slow requests always kept)")
	faultSpec := fs.String("fault", "", `fault rules, ";"-separated (e.g. "serve.solve:every=10:panic")`)
	faultSeed := fs.Int64("fault-seed", 1, "seed for injected delay jitter")
	shards := fs.String("shards", "", "comma-separated shard base URLs; run as a scatter-gather coordinator (no workload flags)")
	shardOf := fs.String("shard-of", "", `serve only shard i of an n-way hash partition of the workload ("i/n")`)
	shardTimeout := fs.Duration("shard-timeout", 0, "coordinator: per-shard scatter attempt deadline (0 = 1s)")
	shardRetries := fs.Int("shard-retries", 0, "coordinator: scatter retries per shard call (0 = 2, negative = none)")
	hedgeAfter := fs.Duration("hedge-after", 0, "coordinator: hedge delay before latency history exists (0 = 25ms)")
	noHedge := fs.Bool("no-hedge", false, "coordinator: disable hedged shard requests")
	breakerFailures := fs.Int("breaker-failures", 0, "coordinator: consecutive failures opening a shard circuit (0 = 5)")
	breakerCooloff := fs.Duration("breaker-cooloff", 0, "coordinator: open-circuit cooloff before the half-open probe (0 = 2s)")
	greedyBudget := fs.Duration("greedy-budget", 0, "deadline budget below which the ladder degrades to the certified estimate rung (0 = 1ms)")
	shedEstimate := fs.Bool("shed-estimate", false, "answer admission-shed solves 200 with a certified estimate instead of 429 (DESIGN.md §16)")
	var obs obsv.Flags
	obs.Register(fs)
	var runf obsv.RunFlags // -timeout bounds the whole serving run
	runf.Register(fs)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: socserve -log queries.csv | -db cars.csv | -gen N [flags]\n")
		fs.SetOutput(stderr)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := runf.Context(ctx)
	defer cancel()
	ctx, finish, err := obs.Apply(ctx, stdout, stderr)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()

	var inj *fault.Injector
	if *faultSpec != "" {
		rules, err := fault.ParseRules(*faultSpec)
		if err != nil {
			return fmt.Errorf("parsing -fault: %w", err)
		}
		inj = fault.New(*faultSeed, rules...)
		fmt.Fprintf(stderr, "socserve: fault injection armed: %s (seed %d)\n", *faultSpec, *faultSeed)
	}

	// Coordinator mode: no workload of its own — shard addresses plus a
	// schema bootstrapped from the first reachable shard.
	if *shards != "" {
		if *logPath != "" || *dbPath != "" || *genN > 0 || *shardOf != "" {
			return fmt.Errorf("-shards is mutually exclusive with -log, -db, -gen and -shard-of")
		}
		return runCoordinator(ctx, coordinatorOpts{
			addr: *addr, shards: *shards, grace: *grace,
			maxConcurrent: *maxConcurrent, maxQueue: *maxQueue,
			defaultTimeout: *defaultTimeout, maxTimeout: *maxTimeout,
			shardTimeout: *shardTimeout, shardRetries: *shardRetries,
			hedgeAfter: *hedgeAfter, noHedge: *noHedge,
			breakerFailures: *breakerFailures, breakerCooloff: *breakerCooloff,
			greedyBudget: *greedyBudget,
			seed:         *seed, injector: inj,
			flightSize: *flightSize, slow: *slow, sample: *sample,
		}, stderr)
	}

	log, err := loadWorkload(*logPath, *dbPath, *genN, *seed)
	if err != nil {
		return err
	}
	if *doCompact {
		compacted, st := compact.Compact(log)
		fmt.Fprintf(stderr, "socserve: compacted %d queries to %d weighted entries (%.1f%% of raw, %d duplicates folded)\n",
			st.InputQueries, st.OutputQueries, 100*st.Ratio(), st.DuplicatesFolded)
		log = compacted
	}
	if *shardOf != "" {
		si, sn, err := parseShardOf(*shardOf)
		if err != nil {
			return err
		}
		part, err := shard.PartitionOne(ctx, log, si, sn)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "socserve: serving shard %d/%d: %d of %d queries (weight %d of %d)\n",
			si, sn, part.Size(), log.Size(), part.TotalWeight(), log.TotalWeight())
		log = part
	}

	srv, err := serve.New(serve.Config{
		Log:            log,
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		SolverWorkers:  *workers,
		GreedyBudget:   *greedyBudget,
		ShedEstimate:   *shedEstimate,
		Seed:           *seed,
		Injector:       inj,
		FlightSize:     *flightSize,
		SlowThreshold:  *slow,
		SampleEvery:    *sample,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	banner := fmt.Sprintf("%d queries over %d attributes", log.Size(), log.Width())
	return serveHTTP(ctx, *addr, srv.Handler(), *grace, banner, stderr)
}

// coordinatorOpts carries the coordinator-mode flag values.
type coordinatorOpts struct {
	addr            string
	shards          string
	grace           time.Duration
	maxConcurrent   int
	maxQueue        int
	defaultTimeout  time.Duration
	maxTimeout      time.Duration
	shardTimeout    time.Duration
	shardRetries    int
	hedgeAfter      time.Duration
	noHedge         bool
	breakerFailures int
	breakerCooloff  time.Duration
	greedyBudget    time.Duration
	seed            int64
	injector        *fault.Injector
	flightSize      int
	slow            time.Duration
	sample          int
}

// runCoordinator serves scatter-gather over remote socserve shards.
func runCoordinator(ctx context.Context, o coordinatorOpts, stderr io.Writer) error {
	var backends []shard.Backend
	var https []*shard.HTTP
	for i, raw := range strings.Split(o.shards, ",") {
		u := strings.TrimSpace(raw)
		if u == "" {
			continue
		}
		h := shard.NewHTTP(fmt.Sprintf("s%d", i), strings.TrimRight(u, "/"), nil)
		backends = append(backends, h)
		https = append(https, h)
	}
	if len(backends) == 0 {
		return fmt.Errorf("-shards lists no URLs")
	}
	schema, err := bootstrapSchema(ctx, https, stderr)
	if err != nil {
		return err
	}
	srv, err := shard.NewServer(shard.Config{
		Backends:        backends,
		Schema:          schema,
		ShardTimeout:    o.shardTimeout,
		Retries:         o.shardRetries,
		HedgeAfter:      o.hedgeAfter,
		DisableHedge:    o.noHedge,
		BreakerFailures: o.breakerFailures,
		BreakerCooloff:  o.breakerCooloff,
		GreedyBudget:    o.greedyBudget,
		MaxConcurrent:   o.maxConcurrent,
		MaxQueue:        o.maxQueue,
		DefaultTimeout:  o.defaultTimeout,
		MaxTimeout:      o.maxTimeout,
		Seed:            o.seed,
		Injector:        o.injector,
		FlightSize:      o.flightSize,
		SlowThreshold:   o.slow,
		SampleEvery:     o.sample,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	banner := fmt.Sprintf("coordinator over %d shards (width %d)", len(backends), schema.Width())
	return serveHTTP(ctx, o.addr, srv.Handler(), o.grace, banner, stderr)
}

// bootstrapSchema fetches the serving schema from the first shard that
// answers GET /schema, retrying with backoff so the coordinator can start
// before (or while) its shards do.
func bootstrapSchema(ctx context.Context, shards []*shard.HTTP, stderr io.Writer) (*dataset.Schema, error) {
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		for _, h := range shards {
			actx, cancel := context.WithTimeout(ctx, 2*time.Second)
			schema, err := h.Schema(actx)
			cancel()
			if err == nil {
				return schema, nil
			}
			lastErr = err
		}
		if attempt == 0 {
			fmt.Fprintf(stderr, "socserve: waiting for a shard to answer /schema (%v)\n", lastErr)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(500 * time.Millisecond):
		}
	}
	return nil, fmt.Errorf("no shard answered /schema: %w", lastErr)
}

// parseShardOf parses "i/n".
func parseShardOf(spec string) (i, n int, err error) {
	if _, err := fmt.Sscanf(spec, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf(`-shard-of %q: want "i/n" (e.g. 0/4)`, spec)
	}
	if n <= 0 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("-shard-of %q: shard %d of %d is out of range", spec, i, n)
	}
	return i, n, nil
}

// serveHTTP runs the listener until ctx is done, then drains gracefully.
func serveHTTP(ctx context.Context, addr string, h http.Handler, grace time.Duration, banner string, stderr io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:     h,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	// The resolved address (meaningful with :0) prints before serving starts,
	// so scripts and tests can scrape the port from stderr.
	fmt.Fprintf(stderr, "socserve: %s; listening on http://%s\n", banner, ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // bind failure or unexpected listener death
	case <-ctx.Done():
	}
	fmt.Fprintf(stderr, "socserve: draining (grace %s)\n", grace)
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		_ = hs.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// loadWorkload resolves exactly one of the three workload sources.
func loadWorkload(logPath, dbPath string, genN int, seed int64) (*dataset.QueryLog, error) {
	sources := 0
	for _, set := range []bool{logPath != "", dbPath != "", genN > 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of -log, -db, -gen is required")
	}
	switch {
	case logPath != "":
		f, err := os.Open(logPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		log, err := dataset.ReadQueryLogCSV(f)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", logPath, err)
		}
		return log, nil
	case dbPath != "":
		f, err := os.Open(dbPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tab, err := dataset.ReadTableCSV(f)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", dbPath, err)
		}
		return dataset.LogFromTable(tab), nil
	default:
		tab := gen.Cars(seed, 2000)
		return gen.RealWorkload(tab, seed+1, genN), nil
	}
}
