package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/gen"
)

// syncBuffer lets the test read stderr while run() is still writing to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRE = regexp.MustCompile(`listening on http://([\d.:]+)`)

// startServer runs socserve's run() on a free port and returns its base URL
// plus a shutdown func that asserts a clean exit.
func startServer(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stdout bytes.Buffer
	stderr := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-grace", "2s"}, args...), &stdout, stderr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var url string
	for url == "" {
		if m := addrRE.FindStringSubmatch(stderr.String()); m != nil {
			url = "http://" + m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before binding: %v\nstderr: %s", err, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address\nstderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return url, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil && err != context.Canceled {
				t.Errorf("run returned %v\nstderr: %s", err, stderr.String())
			}
		case <-time.After(10 * time.Second):
			t.Error("server did not drain within 10s of cancellation")
		}
	}
}

func post(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

func TestServeGenWorkloadEndToEnd(t *testing.T) {
	url, shutdown := startServer(t, "-gen", "200", "-seed", "5")
	defer shutdown()

	// The advertised car from the quick start: solve it over HTTP.
	status, raw := post(t, url+"/solve", `{"tuple": "AC,ABS,Turbo,PowerLocks", "m": 2}`)
	if status != http.StatusOK {
		t.Fatalf("solve: status %d body %s", status, raw)
	}
	var sr struct {
		Kept      []string `json:"kept"`
		Satisfied int      `json:"satisfied"`
		Solver    string   `json:"solver"`
		Degraded  bool     `json:"degraded"`
	}
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	if len(sr.Kept) > 2 || sr.Solver == "" {
		t.Fatalf("implausible solve response: %+v", sr)
	}

	if status, raw = post(t, url+"/log/touch", `{}`); status != http.StatusOK {
		t.Fatalf("touch: status %d body %s", status, raw)
	}
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "standout_serve_requests_total") {
		t.Errorf("metrics endpoint missing serve counters:\n%.400s", body)
	}
}

func TestServeLogFileWorkload(t *testing.T) {
	tab := gen.Cars(1, 100)
	log := gen.RealWorkload(tab, 2, 40)
	path := filepath.Join(t.TempDir(), "queries.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteQueryLogCSV(f, log); err != nil {
		t.Fatal(err)
	}
	f.Close()

	url, shutdown := startServer(t, "-log", path)
	defer shutdown()

	resp, err := http.Get(url + "/log")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Queries int `json:"queries"`
		Width   int `json:"width"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queries != log.Size() || stats.Width != log.Width() {
		t.Fatalf("served log %d×%d, want %d×%d", stats.Queries, stats.Width, log.Size(), log.Width())
	}
}

func TestServeFaultFlagInjectsPanics(t *testing.T) {
	url, shutdown := startServer(t, "-gen", "100", "-fault", "serve.solve:count=1:panic=boom")
	defer shutdown()

	// greedy has no fallback rung, so the injected panic surfaces as a 500 —
	// and the server stays alive for the next request.
	status, raw := post(t, url+"/solve", `{"tuple": "AC,Turbo", "m": 1, "algo": "greedy"}`)
	if status != http.StatusInternalServerError {
		t.Fatalf("injected panic: status %d body %s", status, raw)
	}
	var e struct {
		Panic bool `json:"panic"`
	}
	if err := json.Unmarshal(raw, &e); err != nil || !e.Panic {
		t.Fatalf("500 body does not mark panic: %s", raw)
	}
	if status, raw = post(t, url+"/solve", `{"tuple": "AC,Turbo", "m": 1, "algo": "greedy"}`); status != http.StatusOK {
		t.Fatalf("solve after injected panic: status %d body %s", status, raw)
	}
}

func TestWorkloadSourceValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"none": {},
		"two":  {"-log", "x.csv", "-gen", "10"},
	} {
		var out bytes.Buffer
		err := run(context.Background(), args, &out, &out)
		if err == nil || !strings.Contains(err.Error(), "exactly one of") {
			t.Errorf("%s: err = %v, want source-validation error", name, err)
		}
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-gen", "10", "-fault", "not a rule"}, &out, &out); err == nil {
		t.Error("bad -fault spec accepted")
	}
}

func TestRunTimeoutDrains(t *testing.T) {
	var stdout bytes.Buffer
	stderr := &syncBuffer{}
	start := time.Now()
	err := run(context.Background(),
		[]string{"-addr", "127.0.0.1:0", "-gen", "50", "-timeout", "300ms", "-grace", "2s"},
		&stdout, stderr)
	if err != nil && err != context.DeadlineExceeded {
		t.Fatalf("run: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("drain took %v; -timeout did not stop the server", elapsed)
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Errorf("stderr missing drain notice: %s", stderr.String())
	}
}

func TestServeCompactFlag(t *testing.T) {
	// A workload with guaranteed duplicates: every query appears three times.
	tab := gen.Cars(3, 100)
	base := gen.RealWorkload(tab, 4, 25)
	log := dataset.NewQueryLog(base.Schema)
	for rep := 0; rep < 3; rep++ {
		for _, q := range base.Queries {
			if err := log.Append(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "dups.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteQueryLogCSV(f, log); err != nil {
		t.Fatal(err)
	}
	f.Close()

	url, shutdown := startServer(t, "-log", path, "-compact")
	defer shutdown()

	resp, err := http.Get(url + "/log")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Queries     int `json:"queries"`
		TotalWeight int `json:"total_weight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	// Duplicates folded into weights: fewer entries than raw, same total
	// weight, so every solve scores exactly as over the raw log.
	if stats.Queries >= log.Size() {
		t.Errorf("compacted log has %d entries, want < %d", stats.Queries, log.Size())
	}
	if stats.TotalWeight != log.Size() {
		t.Errorf("total weight %d, want %d (weight is conserved)", stats.TotalWeight, log.Size())
	}

	status, raw := post(t, url+"/solve", `{"tuple": "AC,ABS,Turbo,PowerLocks", "m": 2, "algo": "brute"}`)
	if status != http.StatusOK {
		t.Fatalf("solve: status %d body %s", status, raw)
	}
	var sr struct {
		Satisfied int `json:"satisfied"`
	}
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	// Cross-check against an in-process exact solve over the raw, uncompacted
	// log: compaction must not change any answer.
	tuple, err := dataset.ParseTuple(log.Schema, "AC,ABS,Turbo,PowerLocks")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.BruteForce{}.Solve(core.Instance{Log: log, Tuple: tuple, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Satisfied != want.Satisfied {
		t.Errorf("compacted server satisfied %d, raw solve %d", sr.Satisfied, want.Satisfied)
	}
}

// TestServeShardedEndToEnd stands up the full multi-shard quick start from
// the README: two -shard-of backends over the same workload file and one
// -shards coordinator over both. The coordinated answer must be bit-identical
// to a single unsharded server's greedy answer, and readyz must report both
// shard circuits closed.
func TestServeShardedEndToEnd(t *testing.T) {
	tab := gen.Cars(9, 120)
	log := gen.RealWorkload(tab, 10, 60)
	tuples := gen.PickTuples(tab, 11, 3)
	path := filepath.Join(t.TempDir(), "queries.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteQueryLogCSV(f, log); err != nil {
		t.Fatal(err)
	}
	f.Close()

	whole, stopWhole := startServer(t, "-log", path)
	defer stopWhole()
	s0, stop0 := startServer(t, "-log", path, "-shard-of", "0/2")
	defer stop0()
	s1, stop1 := startServer(t, "-log", path, "-shard-of", "1/2")
	defer stop1()
	coord, stopCoord := startServer(t, "-shards", s0+","+s1)
	defer stopCoord()

	for _, tuple := range tuples {
		body := `{"tuple": "` + tuple.String() + `", "m": 3, "algo": "greedy"}`
		wantStatus, wantRaw := post(t, whole+"/solve", body)
		gotStatus, gotRaw := post(t, coord+"/solve", body)
		if wantStatus != http.StatusOK || gotStatus != http.StatusOK {
			t.Fatalf("solve: unsharded %d (%s), sharded %d (%s)", wantStatus, wantRaw, gotStatus, gotRaw)
		}
		type answer struct {
			KeptBits  string `json:"kept_bits"`
			Satisfied int    `json:"satisfied"`
			Partial   bool   `json:"partial"`
			Shards    int    `json:"shards"`
		}
		var want, got answer
		if err := json.Unmarshal(wantRaw, &want); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(gotRaw, &got); err != nil {
			t.Fatal(err)
		}
		if got.KeptBits != want.KeptBits || got.Satisfied != want.Satisfied {
			t.Errorf("tuple %s: sharded (%s, %d) != unsharded (%s, %d)",
				tuple, got.KeptBits, got.Satisfied, want.KeptBits, want.Satisfied)
		}
		if got.Partial || got.Shards != 2 {
			t.Errorf("tuple %s: partial=%v shards=%d, want full over 2", tuple, got.Partial, got.Shards)
		}
	}

	resp, err := http.Get(coord + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rz struct {
		Status string `json:"status"`
		Shards []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || rz.Status != "ready" || len(rz.Shards) != 2 {
		t.Fatalf("coordinator readyz: status %d %q with %d shards, want 200 ready over 2", resp.StatusCode, rz.Status, len(rz.Shards))
	}
	for _, sh := range rz.Shards {
		if sh.State != "closed" {
			t.Errorf("shard %s circuit %q, want closed", sh.ID, sh.State)
		}
	}
}

func TestShardFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-gen", "10", "-shard-of", "5/2"}, &out, &out); err == nil {
		t.Error("out-of-range -shard-of accepted")
	}
	if err := run(context.Background(), []string{"-gen", "10", "-shard-of", "nope"}, &out, &out); err == nil {
		t.Error("malformed -shard-of accepted")
	}
	err := run(context.Background(), []string{"-shards", "http://127.0.0.1:1", "-gen", "10"}, &out, &out)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-shards with -gen: err = %v, want mutual-exclusion error", err)
	}
}
