package main

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"standout/internal/obsv"
)

// TestTraceContextLiveServer is the tentpole acceptance test against a real
// socserve process loop: an inbound traceparent is echoed on the response,
// attached to the flight-recorder record behind /debug/requests, and visible
// as an exemplar on the latency histogram in /metrics.
func TestTraceContextLiveServer(t *testing.T) {
	url, shutdown := startServer(t,
		"-gen", "200", "-seed", "5",
		"-flight", "64", "-slow", "1ms", "-sample", "1")
	defer shutdown()

	const inTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPost, url+"/solve",
		strings.NewReader(`{"tuple": "AC,ABS,Turbo,PowerLocks", "m": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+inTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, raw)
	}

	// Echo: headers and body carry the caller's trace id.
	if got := resp.Header.Get("X-Request-Id"); got != inTrace {
		t.Fatalf("X-Request-Id = %q, want %q", got, inTrace)
	}
	if tid, _, err := obsv.ParseTraceparent(resp.Header.Get("traceparent")); err != nil || tid.String() != inTrace {
		t.Fatalf("response traceparent = %q (%v), want trace id %s",
			resp.Header.Get("traceparent"), err, inTrace)
	}
	var body struct {
		TraceID string `json:"trace_id"`
		Solver  string `json:"solver"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	if body.TraceID != inTrace {
		t.Fatalf("body trace_id = %q, want %q", body.TraceID, inTrace)
	}

	// Flight record: retrievable by id with solver attribution and trace.
	rr, err := http.Get(url + "/debug/requests/" + inTrace)
	if err != nil {
		t.Fatal(err)
	}
	recRaw, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests/{id} status %d: %s", rr.StatusCode, recRaw)
	}
	var rec obsv.Record
	if err := json.Unmarshal(recRaw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.TraceID != inTrace || rec.Route != "/solve" || rec.Solver != body.Solver {
		t.Fatalf("flight record = %+v, want trace %s solver %s", rec, inTrace, body.Solver)
	}
	if rec.Trace == nil || rec.Trace.TraceID != inTrace {
		t.Fatalf("flight record's trace summary not stamped: %+v", rec.Trace)
	}

	// Plain scrape: classic 0.0.4 text, no exemplar syntax (the classic
	// parser would reject it), passing the strict linter.
	mr, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("plain /metrics Content-Type = %q", ct)
	}
	if strings.Contains(string(met), " # ") {
		t.Fatalf("classic /metrics scrape carries an exemplar suffix:\n%.2000s", met)
	}
	if err := obsv.LintProm(string(met)); err != nil {
		t.Fatalf("live /metrics fails LintProm: %v", err)
	}

	// OpenMetrics scrape: the trace id sits on a latency-histogram bucket
	// line as an exemplar, and the dump still passes the strict linter.
	req, err = http.NewRequest(http.MethodGet, url+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	mr, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	met, _ = io.ReadAll(mr.Body)
	mr.Body.Close()
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("OpenMetrics /metrics Content-Type = %q", ct)
	}
	exRE := regexp.MustCompile(
		`standout_serve_request_seconds_bucket\{le="[^"]+"\} \d+ # \{trace_id="` + inTrace + `"\} `)
	if !exRE.Match(met) {
		t.Fatalf("no latency exemplar for %s in /metrics:\n%.2000s", inTrace, met)
	}
	if !strings.HasSuffix(string(met), "# EOF\n") {
		t.Fatalf("OpenMetrics /metrics not terminated with # EOF:\n%.2000s", met)
	}
	if err := obsv.LintProm(string(met)); err != nil {
		t.Fatalf("live /metrics (OpenMetrics) fails LintProm: %v", err)
	}
}

// TestFlightDisabledFlag pins the -flight < 0 switch: the debug endpoint
// answers 503 and requests still serve normally.
func TestFlightDisabledFlag(t *testing.T) {
	url, shutdown := startServer(t, "-gen", "100", "-seed", "3", "-flight", "-1")
	defer shutdown()
	if status, raw := post(t, url+"/solve", `{"tuple": "AC,ABS,Turbo", "m": 2}`); status != http.StatusOK {
		t.Fatalf("solve with recorder off: status %d body %s", status, raw)
	}
	resp, err := http.Get(url + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/debug/requests with -flight -1: status %d, want 503", resp.StatusCode)
	}
}
