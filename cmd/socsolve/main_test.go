package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"standout/internal/obsv"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const queriesCSV = `AC,FourDoor,Turbo,PowerDoors,AutoTrans,PowerBrakes
1,1,0,0,0,0
1,0,0,1,0,0
0,1,0,1,0,0
0,0,0,1,0,1
0,0,1,0,1,0
`

func TestRunQueryLog(t *testing.T) {
	path := writeFile(t, "q.csv", queriesCSV)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-log", path, "-tuple", "110111", "-m", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "workload: 5 queries over 6 attributes") {
		t.Errorf("header missing:\n%s", text)
	}
	// Every solver block reports; the exact ones find the Fig 1 optimum.
	if !strings.Contains(text, "satisfied 3 (optimal)") {
		t.Errorf("optimal result missing:\n%s", text)
	}
	if !strings.Contains(text, "AC, FourDoor, PowerDoors") {
		t.Errorf("kept attributes missing:\n%s", text)
	}
}

func TestRunSingleAlgo(t *testing.T) {
	path := writeFile(t, "q.csv", queriesCSV)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-log", path, "-tuple", "AC,FourDoor,PowerDoors,AutoTrans,PowerBrakes", "-m", "3", "-algo", "ilp"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "satisfied"); got != 1 {
		t.Errorf("expected one solver block, got %d:\n%s", got, out.String())
	}
}

func TestRunDatabaseMode(t *testing.T) {
	db := `id,AC,FourDoor,Turbo,PowerDoors,AutoTrans,PowerBrakes
t1,0,1,0,1,0,0
t2,0,1,1,0,0,0
t3,1,0,0,1,1,1
t4,1,1,0,1,0,1
t5,1,1,0,0,0,0
t6,0,1,0,1,0,0
t7,0,0,1,1,0,0
`
	path := writeFile(t, "db.csv", db)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-db", path, "-tuple", "110111", "-m", "4", "-algo", "brute"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "satisfied 4 (optimal)") {
		t.Errorf("SOC-CB-D optimum missing:\n%s", out.String())
	}
}

// TestRunObservabilityFlags: -trace appends the phase breakdown, -metrics
// dumps parseable Prometheus text, and -pprof serves a live profiler whose
// /metrics endpoint answers while the run is in flight.
func TestRunObservabilityFlags(t *testing.T) {
	logPath := writeFile(t, "q.csv", queriesCSV)
	promPath := filepath.Join(t.TempDir(), "metrics.prom")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-log", logPath, "-tuple", "110111", "-m", "3", "-algo", "brute",
		"-trace", "-metrics", promPath, "-pprof", "localhost:0",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "pprof: serving on http://") {
		t.Errorf("pprof address not announced:\n%s", text)
	}
	for _, want := range []string{"solve", "enumerate", "bruteforce.candidates"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace summary missing %q:\n%s", want, text)
		}
	}
	data, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obsv.LintProm(string(data)); err != nil {
		t.Fatalf("metrics dump is not valid Prometheus text: %v", err)
	}
	if !strings.Contains(string(data), "standout_solves_total") {
		t.Errorf("metrics dump missing solve counter:\n%s", data)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeFile(t, "q.csv", queriesCSV)
	cases := [][]string{
		{}, // neither -log nor -db
		{"-log", path, "-db", path, "-tuple", "1", "-m", "1"}, // both
		{"-log", path, "-m", "1"},                             // no tuple
		{"-log", path, "-tuple", "10", "-m", "1"},             // wrong width
		{"-log", path, "-tuple", "110111", "-m", "1", "-algo", "nope"},
		{"-log", filepath.Join(t.TempDir(), "missing.csv"), "-tuple", "110111", "-m", "1"},
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("case %d: run(context.Background(), %v) succeeded, want error", i, args)
		}
	}
}

// TestRunPrepGoldenOutput: with -prep every algorithm runs through the
// shared prepared-log index, and the output — solver lines, satisfied
// counts, kept attributes — is byte-identical to the direct path once the
// per-solve wall times (the only nondeterministic field) are normalized out.
// The Fig 1 instance has a unique optimum, so even tie-breaking is pinned.
func TestRunPrepGoldenOutput(t *testing.T) {
	path := writeFile(t, "q.csv", queriesCSV)
	normalize := func(s string) string {
		return regexp.MustCompile(` in [0-9][^\n]*`).ReplaceAllString(s, " in <time>")
	}
	base := []string{"-log", path, "-tuple", "110111", "-m", "3"}
	var plain, prepped bytes.Buffer
	if err := run(context.Background(), base, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append([]string{"-prep"}, base...), &prepped); err != nil {
		t.Fatal(err)
	}
	got, want := normalize(prepped.String()), normalize(plain.String())
	if got != want {
		t.Fatalf("-prep changed the output:\nwithout:\n%s\nwith:\n%s", want, got)
	}
	if !strings.Contains(want, "<time>") {
		t.Fatal("normalization matched nothing; the comparison is vacuous")
	}
}
