// Command socsolve solves one SOC-CB-QL instance from files: given a query
// log (CSV), a new tuple, and a budget m, it prints the best attributes to
// retain under each requested algorithm.
//
// Usage:
//
//	socsolve -log queries.csv -tuple "AC,PowerLocks,Turbo" -m 2 [-algo ilp]
//	socsolve -db cars.csv -tuple 110100... -m 5              # SOC-CB-D
//
// The tuple is either a 0/1 bit string of the schema's width or a
// comma-separated attribute-name list. With -db instead of -log, the rows of
// the database act as the workload (SOC-CB-D: maximize dominated tuples).
//
// With -prep the requested algorithms share one prepared-log index (see
// PrepareLog in the library); output is identical, solves are faster.
//
// Observability: -trace prints a per-phase breakdown of every solve at exit,
// -metrics FILE dumps Prometheus text metrics, and -pprof ADDR serves
// net/http/pprof on a loopback address for live profiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/obsv"
)

// solvers construct each algorithm for a worker count. Results never depend
// on workers — the parallel engines are bit-deterministic (DESIGN.md §11) —
// and the greedy solvers, too cheap to parallelize, ignore it entirely.
var solvers = map[string]func(workers int) core.Solver{
	"brute":            func(w int) core.Solver { return core.BruteForce{Workers: w} },
	"ip":               func(int) core.Solver { return core.IP{} },
	"ilp":              func(w int) core.Solver { return core.ILP{Timeout: 5 * time.Minute, Workers: w} },
	"mfi":              func(int) core.Solver { return core.MaxFreqItemSets{} },
	"mfi-exact":        func(w int) core.Solver { return core.MaxFreqItemSets{Backend: core.BackendExactDFS, Workers: w} },
	"consumeattr":      func(int) core.Solver { return core.ConsumeAttr{} },
	"consumeattrcumul": func(int) core.Solver { return core.ConsumeAttrCumul{} },
	"consumequeries":   func(int) core.Solver { return core.ConsumeQueries{} },
	"estimate":         func(int) core.Solver { return core.Estimate{} },
}

func main() {
	ctx, stop := obsv.SignalContext()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "socsolve: %v\n", err)
		os.Exit(2)
	}
}

// run parses arguments, loads the instance and prints solutions to out.
func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("socsolve", flag.ContinueOnError)
	logPath := fs.String("log", "", "query log CSV (SOC-CB-QL)")
	dbPath := fs.String("db", "", "database CSV (SOC-CB-D: rows act as queries)")
	tupleSpec := fs.String("tuple", "", "new tuple: bit string or comma-separated attribute names")
	m := fs.Int("m", 0, "number of attributes to retain")
	algo := fs.String("algo", "all", "algorithm: "+algoNames()+", or all")
	prep := fs.Bool("prep", false, "share a prepared-log index across the requested algorithms")
	workers := fs.Int("workers", 1, "parallel workers per solve for brute/ilp/mfi-exact (results are identical at any count)")
	var obs obsv.Flags
	obs.Register(fs)
	var run obsv.RunFlags // applied per solve: each algorithm gets the full budget
	run.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, finish, err := obs.Apply(ctx, out, out)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()

	if (*logPath == "") == (*dbPath == "") {
		return fmt.Errorf("exactly one of -log or -db is required")
	}
	if *tupleSpec == "" {
		return fmt.Errorf("-tuple is required")
	}

	log, err := loadWorkload(*logPath, *dbPath)
	if err != nil {
		return err
	}
	tuple, err := dataset.ParseTuple(log.Schema, *tupleSpec)
	if err != nil {
		return fmt.Errorf("parsing tuple: %w", err)
	}

	var names []string
	if *algo == "all" {
		for name := range solvers {
			names = append(names, name)
		}
		sort.Strings(names)
	} else {
		if _, ok := solvers[*algo]; !ok {
			return fmt.Errorf("unknown algorithm %q (have %s)", *algo, algoNames())
		}
		names = []string{*algo}
	}

	in := core.Instance{Log: log, Tuple: tuple, M: *m}
	if *prep {
		// One shared index for every requested algorithm. Results are
		// identical with or without it (golden tests pin this); only the
		// solve times change.
		p, err := core.PrepareLogContext(ctx, log)
		if err != nil {
			return err
		}
		ctx = core.WithPrepared(ctx, p)
	}
	fmt.Fprintf(out, "workload: %d queries over %d attributes; tuple has %d attributes; m = %d\n\n",
		log.Size(), log.Width(), tuple.Count(), *m)
	for _, name := range names {
		s := solvers[name](*workers)
		sctx, cancel := run.Context(ctx)
		start := time.Now()
		sol, err := s.SolveContext(sctx, in)
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			fmt.Fprintf(out, "%-18s error: %v\n", name, err)
			if ctx.Err() != nil {
				return ctx.Err() // interrupted: stop trying further solvers
			}
			continue
		}
		mark := ""
		if sol.Optimal {
			mark = " (optimal)"
		}
		satisfied := fmt.Sprintf("satisfied %d%s", sol.Satisfied, mark)
		if sol.Estimated {
			satisfied = fmt.Sprintf("satisfied ~%d (certified %d..%d)", sol.Satisfied, sol.EstLo, sol.EstHi)
		}
		fmt.Fprintf(out, "%-18s %s in %s\n  keep: %s\n",
			name, satisfied, elapsed.Round(time.Microsecond),
			strings.Join(sol.AttrNames(log.Schema), ", "))
	}
	return nil
}

// loadWorkload reads the query log, or the database reinterpreted as one.
func loadWorkload(logPath, dbPath string) (*dataset.QueryLog, error) {
	if logPath != "" {
		f, err := os.Open(logPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		log, err := dataset.ReadQueryLogCSV(f)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", logPath, err)
		}
		return log, nil
	}
	f, err := os.Open(dbPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tab, err := dataset.ReadTableCSV(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", dbPath, err)
	}
	return dataset.LogFromTable(tab), nil
}

func algoNames() string {
	var names []string
	for n := range solvers {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}
