package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func tinyArgs(extra ...string) []string {
	base := []string{"-cars", "200", "-tuples", "2", "-ilp-timeout", "30s"}
	return append(base, extra...)
}

func TestRunFig7Text(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), tinyArgs("fig7"), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Fig 7", "Optimal", "ConsumeAttr", "ConsumeQueries"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(errOut.String(), "done in") {
		t.Errorf("stderr missing timing: %q", errOut.String())
	}
}

func TestRunCSVMode(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), tinyArgs("-csv", "fig7"), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "m,Optimal,ConsumeAttr") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{{}, {"nope"}, {"fig7", "fig8"}} {
		var out, errOut bytes.Buffer
		if err := run(context.Background(), args, &out, &errOut); err == nil {
			t.Errorf("run(context.Background(), %v) succeeded, want error", args)
		}
	}
}
