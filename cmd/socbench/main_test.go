package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"standout/internal/obsv"
)

func tinyArgs(extra ...string) []string {
	base := []string{"-cars", "200", "-tuples", "2", "-ilp-timeout", "30s"}
	return append(base, extra...)
}

func TestRunFig7Text(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), tinyArgs("fig7"), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Fig 7", "Optimal", "ConsumeAttr", "ConsumeQueries"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(errOut.String(), "done in") {
		t.Errorf("stderr missing timing: %q", errOut.String())
	}
}

func TestRunCSVMode(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), tinyArgs("-csv", "fig7"), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "m,Optimal,ConsumeAttr") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
}

// TestRunMetricsPrometheusFormat is the acceptance check for the -metrics
// flag: the dump a bench run leaves behind must parse as Prometheus text
// format (# HELP/# TYPE headers, well-formed sample lines).
func TestRunMetricsPrometheusFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	var out, errOut bytes.Buffer
	if err := run(context.Background(), tinyArgs("-metrics", path, "fig7"), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obsv.LintProm(string(data)); err != nil {
		t.Fatalf("metrics dump is not valid Prometheus text:\n%v\n%s", err, data)
	}
	for _, want := range []string{"standout_solves_total", "standout_solve_duration_seconds_bucket"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics dump missing %q:\n%s", want, data)
		}
	}
}

// TestRunJSONWithTraces: -json -trace yields a JSON array whose figures carry
// per-cell trace summaries with phase breakdowns.
func TestRunJSONWithTraces(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), tinyArgs("-json", "-trace", "fig7"), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var results []struct {
		Name       string                  `json:"name"`
		Rows       []json.RawMessage       `json:"rows"`
		CellTraces map[string]obsv.Summary `json:"cell_traces"`
	}
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(results) != 1 || results[0].Name != "Fig 7" || len(results[0].Rows) == 0 {
		t.Fatalf("unexpected results: %+v", results)
	}
	traces := results[0].CellTraces
	if len(traces) == 0 {
		t.Fatal("no cell traces recorded with -trace")
	}
	sum, ok := traces["1|Optimal"]
	if !ok {
		t.Fatalf("missing cell 1|Optimal; have keys %v", keysOf(traces))
	}
	if len(sum.Phases) == 0 {
		t.Fatalf("cell trace has no phase breakdown: %+v", sum)
	}
	found := false
	for _, p := range sum.Phases {
		if p.Name == "solve" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cell trace missing the solve phase: %+v", sum.Phases)
	}
}

func keysOf(m map[string]obsv.Summary) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{{}, {"nope"}, {"fig7", "fig8"}} {
		var out, errOut bytes.Buffer
		if err := run(context.Background(), args, &out, &errOut); err == nil {
			t.Errorf("run(context.Background(), %v) succeeded, want error", args)
		}
	}
}

// TestRunFig7JSONUnchangedByPrep is the golden A/B for the shared index:
// running the quality figure through a prepared log (-prep) must leave every
// JSON cell value byte-identical — the index accelerates solves, it does not
// change them. Fig 7 reports satisfied-query counts, which are deterministic
// for a fixed seed, so the whole document can be compared literally.
func TestRunFig7JSONUnchangedByPrep(t *testing.T) {
	var plain, prepped, errOut bytes.Buffer
	if err := run(context.Background(), tinyArgs("-json", "fig7"), &plain, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), tinyArgs("-json", "-prep", "fig7"), &prepped, &errOut); err != nil {
		t.Fatal(err)
	}
	if plain.String() != prepped.String() {
		t.Fatalf("fig7 JSON changed under -prep:\nwithout: %s\nwith: %s", plain.String(), prepped.String())
	}
}
