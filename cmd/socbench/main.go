// Command socbench regenerates the figures of the paper's evaluation
// (§VII, Figs 6–11) and the repository's ablation experiments.
//
// Usage:
//
//	socbench [flags] fig6|fig7|fig8|fig9|fig10|fig11|index|compact|bitmap|parallel|serve|shard|estimate|ablations|all
//
// Flags:
//
//	-quick          reduced averaging for a fast run
//	-prep           run figure solves through a shared prepared-log index
//	-csv            emit CSV instead of aligned text
//	-json           emit an indented JSON array of results (with -trace, each
//	                figure carries per-cell trace summaries: phase breakdowns
//	                and solver counters keyed "x|column")
//	-seed N         generator seed (default 1)
//	-tuples N       tuples to average over (0, meaning the paper's 100)
//	-cars N         cars-table size (default 15211, the paper's dataset size)
//	-ilp-timeout D  per-solve ILP timeout (default 30s); expired runs print "-"
//	-timeout D      wall-clock budget for the whole run; unmeasured cells print "-"
//	-trace          per-cell solve traces (see -json); summary of untraced
//	                work prints to stderr at exit
//	-metrics FILE   Prometheus text dump of the process metrics at exit ("-" = stdout)
//	-pprof ADDR     serve net/http/pprof, expvar and /metrics on ADDR (loopback)
//
// Interrupting with ^C (SIGINT) or SIGTERM cancels the in-flight solve and
// prints whatever was already measured.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"standout/internal/bench"
	"standout/internal/obsv"
)

func main() {
	ctx, stop := obsv.SignalContext()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "socbench: %v\n", err)
		os.Exit(2)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("socbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced averaging for a fast run")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	jsonOut := fs.Bool("json", false, "emit a JSON array of results (per-cell traces with -trace)")
	seed := fs.Int64("seed", 1, "generator seed")
	tuples := fs.Int("tuples", 0, "tuples to average over (0 = paper's 100)")
	cars := fs.Int("cars", 0, "cars table size (0 = paper's 15211)")
	ilpTimeout := fs.Duration("ilp-timeout", 0, "per-solve ILP timeout (0 = 30s)")
	prep := fs.Bool("prep", false, "run figure solves through a shared prepared-log index")
	workers := fs.Int("workers", 0, "per-solve parallel workers for brute/ilp/mfi-exact (0 = sequential; results identical at any count)")
	var obs obsv.Flags
	obs.Register(fs)
	var runf obsv.RunFlags
	runf.Register(fs)
	fs.Usage = func() {
		fmt.Fprintf(stderr,
			"usage: socbench [flags] fig6|fig7|fig8|fig9|fig10|fig11|index|compact|bitmap|parallel|serve|shard|estimate|ablations|all\n")
		fs.SetOutput(stderr)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := runf.Context(ctx)
	defer cancel()
	ctx, finish, err := obs.Apply(ctx, stdout, stderr)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()

	cfg := bench.Config{
		Seed:       *seed,
		CarsN:      *cars,
		Tuples:     *tuples,
		ILPTimeout: *ilpTimeout,
		Quick:      *quick,
		Trace:      obs.Trace,
		Prepare:    *prep,
		Workers:    *workers,
	}

	type runFn = func(context.Context, bench.Config) bench.Result
	figures := []runFn{
		bench.Fig6Context, bench.Fig7Context, bench.Fig8Context,
		bench.Fig9Context, bench.Fig10Context, bench.Fig11Context,
	}
	ablations := []runFn{
		bench.AblationWalksContext, bench.AblationWalkLevelsContext,
		bench.AblationThresholdContext, bench.AblationGreedyGapContext,
		bench.AblationGeneralizationContext, bench.AblationTextContext,
		bench.AblationIPvsILPContext,
	}
	runners := map[string][]runFn{
		"index":     {bench.IndexBatchContext},
		"compact":   {bench.CompactDeltaContext, bench.CompactSolveContext},
		"bitmap":    {bench.BitmapSweepContext},
		"parallel":  {bench.ParallelContext},
		"serve":     {bench.ServeLoadContext},
		"shard":     {bench.ShardLoadContext},
		"estimate":  {bench.EstimateSweepContext},
		"fig6":      {bench.Fig6Context},
		"fig7":      {bench.Fig7Context},
		"fig8":      {bench.Fig8Context},
		"fig9":      {bench.Fig9Context},
		"fig10":     {bench.Fig10Context},
		"fig11":     {bench.Fig11Context},
		"ablations": ablations,
		"all":       append(append([]runFn{}, figures...), ablations...),
	}

	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment name")
	}
	runner, ok := runners[fs.Arg(0)]
	if !ok {
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", fs.Arg(0))
	}

	start := time.Now()
	// Results stream as each experiment completes (some take minutes); JSON
	// mode collects them into one array instead. A cancelled context makes
	// the remaining experiments fail fast and report missing cells, so every
	// requested table still prints.
	var collected []bench.Result
	for _, f := range runner {
		res := f(ctx, cfg)
		switch {
		case *jsonOut:
			collected = append(collected, res)
		case *csv:
			fmt.Fprintf(stdout, "# %s — %s\n%s\n", res.Name, res.Title, res.CSV())
		default:
			fmt.Fprintln(stdout, res.Format())
		}
		if fl, ok := stdout.(interface{ Flush() error }); ok {
			_ = fl.Flush()
		}
	}
	if *jsonOut {
		data, err := bench.MarshalResultsJSON(collected)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", data)
	}
	fmt.Fprintf(stderr, "socbench: done in %s\n", time.Since(start).Round(time.Millisecond))
	return ctx.Err()
}
