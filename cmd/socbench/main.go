// Command socbench regenerates the figures of the paper's evaluation
// (§VII, Figs 6–11) and the repository's ablation experiments.
//
// Usage:
//
//	socbench [flags] fig6|fig7|fig8|fig9|fig10|fig11|ablations|all
//
// Flags:
//
//	-quick          reduced averaging for a fast run
//	-csv            emit CSV instead of aligned text
//	-seed N         generator seed (default 1)
//	-tuples N       tuples to average over (default 100, the paper's setting)
//	-cars N         cars-table size (default 15211, the paper's dataset size)
//	-ilp-timeout D  per-solve ILP timeout (default 30s); expired runs print "-"
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"standout/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "socbench: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("socbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced averaging for a fast run")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	seed := fs.Int64("seed", 1, "generator seed")
	tuples := fs.Int("tuples", 0, "tuples to average over (0 = paper's 100)")
	cars := fs.Int("cars", 0, "cars table size (0 = paper's 15211)")
	ilpTimeout := fs.Duration("ilp-timeout", 0, "per-solve ILP timeout (0 = 30s)")
	fs.Usage = func() {
		fmt.Fprintf(stderr,
			"usage: socbench [flags] fig6|fig7|fig8|fig9|fig10|fig11|ablations|all\n")
		fs.SetOutput(stderr)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := bench.Config{
		Seed:       *seed,
		CarsN:      *cars,
		Tuples:     *tuples,
		ILPTimeout: *ilpTimeout,
		Quick:      *quick,
	}

	figures := []func(bench.Config) bench.Result{
		bench.Fig6, bench.Fig7, bench.Fig8, bench.Fig9, bench.Fig10, bench.Fig11,
	}
	ablations := []func(bench.Config) bench.Result{
		bench.AblationWalks, bench.AblationWalkLevels, bench.AblationThreshold,
		bench.AblationGreedyGap, bench.AblationGeneralization, bench.AblationText,
		bench.AblationIPvsILP,
	}
	runners := map[string][]func(bench.Config) bench.Result{
		"fig6":      {bench.Fig6},
		"fig7":      {bench.Fig7},
		"fig8":      {bench.Fig8},
		"fig9":      {bench.Fig9},
		"fig10":     {bench.Fig10},
		"fig11":     {bench.Fig11},
		"ablations": ablations,
		"all":       append(append([]func(bench.Config) bench.Result{}, figures...), ablations...),
	}

	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment name")
	}
	runner, ok := runners[fs.Arg(0)]
	if !ok {
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", fs.Arg(0))
	}

	start := time.Now()
	// Results stream as each experiment completes (some take minutes).
	for _, f := range runner {
		res := f(cfg)
		if *csv {
			fmt.Fprintf(stdout, "# %s — %s\n%s\n", res.Name, res.Title, res.CSV())
		} else {
			fmt.Fprintln(stdout, res.Format())
		}
		if fl, ok := stdout.(interface{ Flush() error }); ok {
			_ = fl.Flush()
		}
	}
	fmt.Fprintf(stderr, "socbench: done in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}
