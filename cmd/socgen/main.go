// Command socgen generates the datasets and query workloads used by the
// experiments: the used-cars table surrogate and the real/synthetic query
// logs, as CSV on stdout (see package dataset for the layout).
//
// Usage:
//
//	socgen [flags] cars|workload-real|workload-synthetic
//
// Examples:
//
//	socgen -n 15211 cars               > cars.csv
//	socgen -n 185 workload-real        > real.csv
//	socgen -n 2000 workload-synthetic  > synthetic.csv
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"standout/internal/dataset"
	"standout/internal/gen"
	"standout/internal/obsv"
)

func main() {
	ctx, stop := obsv.SignalContext()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "socgen: %v\n", err)
		os.Exit(2)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("socgen", flag.ContinueOnError)
	n := fs.Int("n", 0, "rows/queries to generate (0 = paper defaults)")
	seed := fs.Int64("seed", 1, "generator seed")
	carsN := fs.Int("cars", 2000, "cars-table size used to derive real-workload popularity")
	var obs obsv.Flags
	obs.Register(fs)
	var runf obsv.RunFlags
	runf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, finish, err := obs.Apply(ctx, os.Stderr, os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	ctx, cancel := runf.Context(ctx)
	defer cancel()
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: socgen [flags] cars|workload-real|workload-synthetic")
	}
	// Generation is seed-driven and linear; refuse to start a doomed run but
	// let an in-progress write finish (partial CSV output would be worse).
	if err := ctx.Err(); err != nil {
		return err
	}

	out := bufio.NewWriter(stdout)
	defer out.Flush()

	switch fs.Arg(0) {
	case "cars":
		size := *n
		if size == 0 {
			size = gen.CarsSize
		}
		return dataset.WriteTableCSV(out, gen.Cars(*seed, size))
	case "workload-real":
		size := *n
		if size == 0 {
			size = gen.RealWorkloadSize
		}
		tab := gen.Cars(*seed, *carsN)
		return dataset.WriteQueryLogCSV(out, gen.RealWorkload(tab, *seed+1, size))
	case "workload-synthetic":
		size := *n
		if size == 0 {
			size = 2000
		}
		schema := dataset.MustSchema(gen.CarAttrs)
		return dataset.WriteQueryLogCSV(out,
			gen.SyntheticWorkload(schema, *seed+1, size, gen.WorkloadOptions{}))
	default:
		return fmt.Errorf("unknown target %q", fs.Arg(0))
	}
}
