package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"standout/internal/dataset"
)

func TestGenCars(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-n", "25", "cars"}, &out); err != nil {
		t.Fatal(err)
	}
	tab, err := dataset.ReadTableCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Size() != 25 || tab.Width() != 32 {
		t.Fatalf("got %dx%d", tab.Size(), tab.Width())
	}
}

func TestGenWorkloads(t *testing.T) {
	for _, target := range []string{"workload-real", "workload-synthetic"} {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-n", "40", "-cars", "100", target}, &out); err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		log, err := dataset.ReadQueryLogCSV(&out)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if log.Size() != 40 {
			t.Fatalf("%s: size=%d", target, log.Size())
		}
	}
}

func TestGenDeterministicAcrossRuns(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(context.Background(), []string{"-n", "10", "-seed", "7", "cars"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-n", "10", "-seed", "7", "cars"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different CSV")
	}
}

func TestGenErrors(t *testing.T) {
	for _, args := range [][]string{{}, {"nope"}, {"cars", "extra"}} {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("run(context.Background(), %v) succeeded, want error", args)
		}
	}
}

func TestGenHeaderHasIDColumnForCars(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-n", "1", "cars"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "id,AC,") {
		t.Errorf("header = %q", strings.SplitN(out.String(), "\n", 2)[0])
	}
}
