// Command socstats inspects SOC-CB-QL workloads, offline and live.
//
// The profiling mode analyses a query log or database: dimensions, density,
// query-size histogram, duplicate ratio, attribute frequencies, and — given
// a tuple — how much of the workload that tuple could ever satisfy. These
// are the workload properties that decide which solver to use (§VII: ILP
// for short wide logs, MaxFreqItemSets for long narrow ones, greedy beyond).
//
// The live mode, `socstats tail`, follows a running socserve's flight
// recorder: it polls GET /debug/requests and renders recent requests —
// trace ID, route, status, latency, solver rung, degraded/shed/panic/fault/
// slow flags — as a refreshing sorted table.
//
// Usage:
//
//	socstats -log queries.csv [-tuple SPEC] [-top N]
//	socstats -db cars.csv     [-tuple SPEC] [-top N]
//	socstats tail -addr 127.0.0.1:8080 [-n 20] [-interval 1s] [-once]
//	              [-interesting] [-sort recent|slow]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"standout/internal/dataset"
	"standout/internal/obsv"
)

func main() {
	ctx, stop := obsv.SignalContext()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "socstats: %v\n", err)
		os.Exit(2)
	}
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	if len(args) > 0 && args[0] == "tail" {
		return runTail(ctx, args[1:], out)
	}
	fs := flag.NewFlagSet("socstats", flag.ContinueOnError)
	logPath := fs.String("log", "", "query log CSV")
	dbPath := fs.String("db", "", "database CSV (rows treated as queries)")
	tupleSpec := fs.String("tuple", "", "optional tuple: bit string or attribute-name list")
	top := fs.Int("top", 10, "number of top attributes to print")
	var obs obsv.Flags
	obs.Register(fs)
	var runf obsv.RunFlags
	runf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, finish, err := obs.Apply(ctx, out, out)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	ctx, cancel := runf.Context(ctx)
	defer cancel()
	if (*logPath == "") == (*dbPath == "") {
		return fmt.Errorf("exactly one of -log or -db is required")
	}

	var log *dataset.QueryLog
	path := *logPath
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		log, err = dataset.ReadQueryLogCSV(f)
		if err != nil {
			return fmt.Errorf("reading %s: %w", path, err)
		}
	} else {
		path = *dbPath
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		tab, err := dataset.ReadTableCSV(f)
		if err != nil {
			return fmt.Errorf("reading %s: %w", path, err)
		}
		log = dataset.LogFromTable(tab)
	}

	// The statistics passes below are linear scans; one check after loading
	// keeps an interrupted invocation from printing a partial report.
	if err := ctx.Err(); err != nil {
		return err
	}
	fmt.Fprintf(out, "workload: %s\n", path)
	fmt.Fprintf(out, "queries:  %d over %d attributes\n", log.Size(), log.Width())
	fmt.Fprintf(out, "density:  %.4f\n", log.AsTable().Density())

	dedup, weights := log.Dedup()
	maxWeight := 0
	for _, w := range weights {
		if w > maxWeight {
			maxWeight = w
		}
	}
	fmt.Fprintf(out, "distinct: %d (%.1f%% duplicates; most repeated query appears %d times)\n",
		dedup.Size(), 100*float64(log.Size()-dedup.Size())/maxf(1, float64(log.Size())), maxWeight)

	fmt.Fprintf(out, "\nquery sizes:\n")
	hist := log.SizeHistogram()
	var sizes []int
	for k := range hist {
		sizes = append(sizes, k)
	}
	sort.Ints(sizes)
	for _, k := range sizes {
		fmt.Fprintf(out, "  %2d attrs: %5d (%5.1f%%)\n",
			k, hist[k], 100*float64(hist[k])/float64(log.Size()))
	}

	fmt.Fprintf(out, "\ntop %d attributes:\n", *top)
	freq := log.AttrFrequencies()
	for _, j := range log.TopAttrs(*top) {
		fmt.Fprintf(out, "  %-24s %5d (%5.1f%%)\n",
			log.Schema.Name(j), freq[j], 100*float64(freq[j])/maxf(1, float64(log.Size())))
	}

	// Solver guidance from the paper's Fig 10/11 conclusion.
	fmt.Fprintf(out, "\nsolver hint: ")
	switch {
	case log.Size() <= 1000 && log.Width() > 32:
		fmt.Fprintln(out, "short+wide log — ILP is the better exact algorithm (§VII Fig 11)")
	case log.Size() > 1000 && log.Width() <= 32:
		fmt.Fprintln(out, "long+narrow log — MaxFreqItemSets is the better exact algorithm (§VII Fig 10)")
	case log.Size() > 1000 && log.Width() > 32:
		fmt.Fprintln(out, "long+wide log — exact algorithms are intractable; use ConsumeAttr/ConsumeAttrCumul (§VII)")
	default:
		fmt.Fprintln(out, "small instance — any exact algorithm works; MaxFreqItemSets is usually fastest")
	}

	if *tupleSpec != "" {
		tuple, err := dataset.ParseTuple(log.Schema, *tupleSpec)
		if err != nil {
			return fmt.Errorf("parsing tuple: %w", err)
		}
		satisfiable := log.Restrict(tuple)
		fmt.Fprintf(out, "\ntuple: %d attributes present\n", tuple.Count())
		fmt.Fprintf(out, "satisfiable queries (⊆ tuple): %d of %d (%.1f%%)\n",
			satisfiable.Size(), log.Size(),
			100*float64(satisfiable.Size())/maxf(1, float64(log.Size())))
		fmt.Fprintf(out, "visibility with no compression: %d queries\n",
			log.Satisfied(tuple))
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
