package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"standout/internal/obsv"
)

// tailServer serves a real flight recorder's debug endpoints over HTTP, the
// way socserve mounts them.
func tailServer(t *testing.T, f *obsv.Flight) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/debug/requests", f.Handler())
	mux.Handle("/debug/requests/", f.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

func TestTailRendersSortedTable(t *testing.T) {
	f := obsv.NewFlight(16, 10*time.Millisecond, 1)
	f.Record(&obsv.Record{TraceID: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
		Route: "/solve", Status: 200, LatencyMS: 1.5, Solver: "mfi-exact"})
	f.Record(&obsv.Record{TraceID: "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb",
		Route: "/solve", Status: 200, LatencyMS: 42.0, Solver: "greedy", Degraded: true})
	f.Record(&obsv.Record{TraceID: "cccccccccccccccccccccccccccccccc",
		Route: "/solve/batch", Status: 429, LatencyMS: 0.1, Shed: true,
		Error: "overloaded: admission queue full"})
	addr := tailServer(t, f)

	var out bytes.Buffer
	if err := run(context.Background(), []string{"tail", "-addr", addr, "-once"}, &out); err != nil {
		t.Fatalf("tail -once: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"seen 3 kept 3",
		"SEQ", "TRACE", "FLAGS",
		"aaaaaaaa", "bbbbbbbb", "cccccccc",
		"mfi-exact", "greedy",
		"DW", // degraded + slow: the 42ms record against the 10ms threshold
	} {
		if !strings.Contains(got, want) {
			t.Errorf("tail output missing %q:\n%s", want, got)
		}
	}
	// Default order is newest first: the shed batch row leads, flagged S.
	lines := strings.Split(got, "\n")
	if len(lines) < 5 || !strings.Contains(lines[2], "cccccccc") || !strings.Contains(lines[2], " S ") {
		t.Errorf("newest (shed) record not first:\n%s", got)
	}

	// -sort slow reorders by latency: the 42ms degraded row leads.
	out.Reset()
	if err := run(context.Background(), []string{"tail", "-addr", addr, "-once", "-sort", "slow"}, &out); err != nil {
		t.Fatalf("tail -sort slow: %v", err)
	}
	lines = strings.Split(out.String(), "\n")
	if len(lines) < 5 || !strings.Contains(lines[2], "bbbbbbbb") {
		t.Errorf("slowest record not first under -sort slow:\n%s", out.String())
	}
}

func TestTailInterestingFilterAndLimit(t *testing.T) {
	f := obsv.NewFlight(16, 0, 1)
	for i := 0; i < 5; i++ {
		f.Record(&obsv.Record{TraceID: strings.Repeat("a", 32), Route: "/solve", Status: 200})
	}
	f.Record(&obsv.Record{TraceID: strings.Repeat("e", 32), Route: "/solve", Status: 500, Error: "boom"})
	addr := tailServer(t, f)

	var out bytes.Buffer
	if err := run(context.Background(), []string{"tail", "-addr", addr, "-once", "-interesting"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Contains(got, "aaaaaaaa") || !strings.Contains(got, "eeeeeeee") {
		t.Errorf("-interesting should show only the errored record:\n%s", got)
	}
	if !strings.Contains(got, "boom") {
		t.Errorf("error column missing:\n%s", got)
	}

	out.Reset()
	if err := run(context.Background(), []string{"tail", "-addr", addr, "-once", "-n", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if rows := strings.Count(out.String(), "\n"); rows != 5 { // stats + header + 2 rows + blank
		t.Errorf("-n 2 printed %d lines, want 5:\n%s", rows, out.String())
	}
}

func TestTailRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"tail", "-sort", "wat"}, new(bytes.Buffer)); err == nil {
		t.Fatal("bad -sort accepted")
	}
	// An unreachable server is a polling error, not a hang.
	if err := run(context.Background(), []string{"tail", "-addr", "127.0.0.1:1", "-once"}, new(bytes.Buffer)); err == nil {
		t.Fatal("unreachable server produced no error")
	}
}
