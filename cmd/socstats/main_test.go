package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const statsCSV = `AC,FourDoor,Turbo
1,1,0
1,0,0
1,1,0
1,1,1
`

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "w.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStatsBasic(t *testing.T) {
	path := writeFile(t, statsCSV)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-log", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"queries:  4 over 3 attributes",
		"distinct: 3",
		"AC", "top 10 attributes",
		"small instance",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestStatsWithTuple(t *testing.T) {
	path := writeFile(t, statsCSV)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-log", path, "-tuple", "110"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "satisfiable queries (⊆ tuple): 3 of 4") {
		t.Errorf("satisfiability wrong:\n%s", text)
	}
	if !strings.Contains(text, "visibility with no compression: 3 queries") {
		t.Errorf("visibility wrong:\n%s", text)
	}
}

func TestStatsDatabaseMode(t *testing.T) {
	path := writeFile(t, "id,a,b\nr1,1,0\nr2,0,1\n")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-db", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "queries:  2 over 2 attributes") {
		t.Errorf("db mode wrong:\n%s", out.String())
	}
}

func TestStatsErrors(t *testing.T) {
	path := writeFile(t, statsCSV)
	for _, args := range [][]string{
		{},
		{"-log", path, "-db", path},
		{"-log", path, "-tuple", "bad,attr"},
		{"-log", filepath.Join(t.TempDir(), "nope.csv")},
	} {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
