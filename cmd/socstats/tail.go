package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
	"unicode/utf8"

	"standout/internal/obsv"
)

// runTail implements `socstats tail`: a live consumer of a socserve flight
// recorder. It polls GET /debug/requests and renders the kept records as a
// sorted table — the terminal answer to "what is the server doing right now"
// without any tracing backend.
func runTail(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("socstats tail", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "socserve address to tail")
	n := fs.Int("n", 20, "rows to show per refresh")
	interval := fs.Duration("interval", time.Second, "poll interval")
	once := fs.Bool("once", false, "print one snapshot and exit")
	interesting := fs.Bool("interesting", false, "only errored/shed/degraded/faulted/slow requests")
	sortBy := fs.String("sort", "recent", `row order: "recent" (newest first) or "slow" (latency, descending)`)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sortBy != "recent" && *sortBy != "slow" {
		return fmt.Errorf(`-sort must be "recent" or "slow", got %q`, *sortBy)
	}

	url := "http://" + *addr + "/debug/requests"
	if *interesting {
		url += "?interesting=1"
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		if err := tailOnce(ctx, client, url, *n, *sortBy, out); err != nil {
			return err
		}
		if *once {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}

// tailResponse mirrors the serve /debug/requests list body.
type tailResponse struct {
	Stats   obsv.FlightStats `json:"stats"`
	Records []obsv.Record    `json:"records"`
}

func tailOnce(ctx context.Context, client *http.Client, url string, n int, sortBy string, out io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("polling %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("polling %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var tr tailResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return fmt.Errorf("decoding %s: %w", url, err)
	}

	if sortBy == "slow" {
		sort.SliceStable(tr.Records, func(a, b int) bool {
			return tr.Records[a].LatencyMS > tr.Records[b].LatencyMS
		})
	}
	if n >= 0 && n < len(tr.Records) {
		tr.Records = tr.Records[:n]
	}

	fmt.Fprintf(out, "flight: seen %d kept %d sampled-out %d  (ring %d, 1-in-%d, slow ≥ %.0fms)\n",
		tr.Stats.Seen, tr.Stats.Kept, tr.Stats.SampledOut,
		tr.Stats.Size, tr.Stats.SampleEvery, tr.Stats.SlowMS)
	fmt.Fprintf(out, "%-6s %-8s %-14s %4s %10s %-10s %-5s %s\n",
		"SEQ", "TRACE", "ROUTE", "ST", "LAT(ms)", "SOLVER", "FLAGS", "ERROR")
	for _, r := range tr.Records {
		fmt.Fprintf(out, "%-6d %-8s %-14s %4d %10.2f %-10s %-5s %s\n",
			r.Seq, shortID(r.TraceID), r.Route, r.Status, r.LatencyMS,
			r.Solver, flagLetters(r), truncate(r.Error, 40))
	}
	fmt.Fprintln(out)
	return nil
}

// flagLetters compresses a record's outcome flags into the table's FLAGS
// column: D=degraded, S=shed, P=panic, F=fault, W=slow ("w" for wall time),
// R=partial (a shard-coordinator response over a reduced shard set).
func flagLetters(r obsv.Record) string {
	var sb strings.Builder
	for _, f := range []struct {
		on bool
		c  byte
	}{{r.Degraded, 'D'}, {r.Shed, 'S'}, {r.Panic, 'P'}, {r.Fault, 'F'}, {r.Slow, 'W'}, {r.Partial, 'R'}} {
		if f.on {
			sb.WriteByte(f.c)
		}
	}
	if sb.Len() == 0 {
		return "-"
	}
	return sb.String()
}

func shortID(id string) string {
	if len(id) > 8 {
		return id[:8]
	}
	return id
}

// truncate shortens s to at most n bytes, cutting on a rune boundary so a
// multi-byte rune is never split into an invalid-UTF-8 fragment.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	cut := n - 1
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "…"
}
