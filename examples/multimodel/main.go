// Multimodel: a realistic car listing mixes Boolean options, numeric fields
// and categorical fields (§II.B). The listing template caps how many of each
// can be shown; this example picks the best of each kind with the
// corresponding variant solver:
//
//   - Boolean options        → SOC-CB-QL (core problem)
//   - numeric fields         → range-query reduction (§V)
//   - categorical fields     → categorical reduction (§II.B)
//
// go run ./examples/multimodel
package main

import (
	"fmt"
	"log"
	"strings"

	"standout"
)

func main() {
	// ---- Boolean options ------------------------------------------------
	inventory := standout.GenerateCars(1, 3000)
	buyers := standout.GenerateRealWorkload(inventory, 2, 185)
	car := standout.PickTuples(inventory, 3, 1)[0]

	boolSol, err := standout.Solve(buyers, car, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Boolean options (5 of %d): %s\n  → visible to %d of %d option searches\n\n",
		car.Count(), strings.Join(boolSol.AttrNames(inventory.Schema), ", "),
		boolSol.Satisfied, buyers.Size())

	// ---- Numeric fields -------------------------------------------------
	numericData := standout.GenerateNumericCars(4, 3000)
	rangeQueries := standout.GenerateRangeWorkload(5, 400, numericData)
	ourNumbers := numericData[42] // price, mileage, year, mpg

	numSol, err := standout.SolveNumeric(
		standout.BruteForce{}, rangeQueries, ourNumbers, 2, standout.NumericStrict)
	if err != nil {
		log.Fatal(err)
	}
	numSchema := standout.NumericCarSchema()
	fmt.Printf("Numeric fields (2 of %d): %s\n", len(standout.NumericCarAttrs),
		strings.Join(numSol.AttrNames(numSchema), ", "))
	fmt.Printf("  car: price $%.0f, %.0f miles, year %.0f, %.1f mpg\n",
		ourNumbers[0], ourNumbers[1], ourNumbers[2], ourNumbers[3])
	fmt.Printf("  → passes %d of %d range searches\n\n", numSol.Satisfied, rangeQueries.Size())

	// ---- Categorical fields ---------------------------------------------
	catSchema := standout.CategoricalCarSchema()
	catQueries := standout.GenerateCategoricalWorkload(6, 400)
	ourCat := standout.GenerateCategoricalCars(7, 1)[0]

	catSol, err := standout.SolveCategorical(standout.BruteForce{}, catQueries, ourCat, 2)
	if err != nil {
		log.Fatal(err)
	}
	var catDesc []string
	for a, v := range ourCat {
		catDesc = append(catDesc, fmt.Sprintf("%s=%s", catSchema.Attrs[a], catSchema.Domains[a][v]))
	}
	fmt.Printf("Categorical fields (2 of %d): %s\n", catSchema.Width(),
		strings.Join(catSol.AttrNames(mustBoolSchema(catSchema)), ", "))
	fmt.Printf("  car: %s\n", strings.Join(catDesc, ", "))
	fmt.Printf("  → matches %d of %d value searches\n", catSol.Satisfied, catQueries.Size())
}

// mustBoolSchema renders the categorical schema's attribute names as the
// width-M Boolean schema the reduction solves over.
func mustBoolSchema(cs *standout.CatSchema) *standout.Schema {
	return standout.MustSchema(cs.Attrs)
}
