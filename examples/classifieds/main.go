// Classifieds: the apartment-ad scenario from the paper's introduction, on
// text data (§II.B, §V).
//
// We are posting a rental-apartment ad in an online classifieds site. The ad
// title can carry only a few keywords; which ones make the ad visible to the
// most keyword searches? The text variant treats each distinct keyword as a
// Boolean attribute; §V recommends the greedy algorithms at text scale. The
// example also shows the retrieval side with a BM25 top-k engine.
//
//	go run ./examples/classifieds
package main

import (
	"fmt"
	"log"
	"strings"

	"standout"
)

func main() {
	// The full description of our apartment — too long to fit in a title.
	ad := standout.Tokenize(`Spacious two bedroom apartment near the train
		station, downtown location, parking included, pets allowed, balcony,
		in-unit laundry, hardwood floors, utilities included, quiet street`)

	// The search log of the classifieds site (keyword queries).
	var queries [][]string
	for _, q := range []string{
		"two bedroom downtown",
		"apartment parking",
		"apartment downtown",
		"pets allowed apartment",
		"downtown parking",
		"two bedroom parking",
		"apartment near train",
		"house pool garage", // unsatisfiable: our ad has none of these
		"balcony downtown",
		"apartment laundry",
		"two bedroom",
		"downtown",
	} {
		queries = append(queries, standout.Tokenize(q))
	}

	const m = 4
	fmt.Printf("ad has %d distinct keywords; title fits %d\n\n", distinct(ad), m)

	// Greedy selection (the §V recommendation for text scale) vs exact.
	for _, s := range []standout.Solver{
		standout.ConsumeAttr{},
		standout.ConsumeAttrCumul{},
		standout.MaxFreqItemSets{Backend: standout.BackendExactDFS},
	} {
		kept, satisfied, err := standout.SelectKeywords(s, queries, ad, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s title: %-40q visible to %d of %d searches\n",
			s.Name(), strings.Join(kept, " "), satisfied, len(queries))
	}

	// Retrieval side: where would the compressed ad rank under BM25?
	competitors := [][]string{
		standout.Tokenize("luxury downtown apartment two bedroom great view"),
		standout.Tokenize("cheap studio apartment near university"),
		standout.Tokenize("two bedroom house with garage and pool"),
		standout.Tokenize("downtown parking spot for rent monthly"),
	}
	kept, _, err := standout.SelectKeywords(
		standout.MaxFreqItemSets{Backend: standout.BackendExactDFS}, queries, ad, m)
	if err != nil {
		log.Fatal(err)
	}
	corpus := standout.NewTextCorpus(append(competitors, kept))
	ourDoc := len(competitors)
	fmt.Println("\nBM25 top-3 for three popular searches (ad = our compressed title):")
	for _, search := range []string{"apartment downtown", "two bedroom parking", "downtown"} {
		top := corpus.TopK(standout.Tokenize(search), 3)
		rank := "-"
		for i, d := range top {
			if d == ourDoc {
				rank = fmt.Sprintf("#%d", i+1)
			}
		}
		fmt.Printf("  %-22q our ad ranks %s\n", search, rank)
	}
}

func distinct(words []string) int {
	seen := map[string]bool{}
	for _, w := range words {
		seen[w] = true
	}
	return len(seen)
}
