// Productdesign: the manufacturer scenario from the paper's introduction —
// "in the design of a new product, a manufacturer may be interested in
// selecting the ten best features from a large wish-list" — exercising the
// SOC-Topk variant (§II.B) and disjunctive retrieval.
//
// A homebuilder decides which m upgrades to include in a new spec home.
// Buyers browse with conjunctive filters and only look at the top-k results
// ordered by feature count (the paper's example of a global scoring
// function), so the home must not just match a search — it must out-feature
// the competition to make the first page.
//
//	go run ./examples/productdesign
package main

import (
	"fmt"
	"log"
	"strings"

	"standout"
)

func main() {
	features := []string{
		"SwimmingPool", "ThreeCarGarage", "FinishedBasement", "SolarPanels",
		"SmartHome", "GraniteCounters", "HardwoodFloors", "Fireplace",
		"FencedYard", "CornerLot", "WalkInClosets", "HomeOffice",
	}
	schema := standout.MustSchema(features)

	// Competing listings already on the market.
	listings := [][]string{
		{"SwimmingPool", "GraniteCounters", "HardwoodFloors", "Fireplace"},
		{"ThreeCarGarage", "FinishedBasement", "FencedYard"},
		{"SmartHome", "SolarPanels", "HomeOffice", "GraniteCounters", "HardwoodFloors"},
		{"SwimmingPool", "FencedYard", "WalkInClosets"},
		{"GraniteCounters", "HardwoodFloors", "Fireplace", "WalkInClosets", "HomeOffice"},
		{"FinishedBasement", "SmartHome", "GraniteCounters"},
	}
	db := standout.NewTable(schema)
	scores := make([]float64, 0, len(listings))
	for i, fs := range listings {
		row, err := schema.VectorOf(fs...)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Append(row, fmt.Sprintf("listing%d", i)); err != nil {
			log.Fatal(err)
		}
		scores = append(scores, standout.AttrCountScore(row))
	}

	// What buyers filtered on recently.
	buyerFilters := [][]string{
		{"SwimmingPool"},
		{"GraniteCounters", "HardwoodFloors"},
		{"SmartHome"},
		{"SwimmingPool", "FencedYard"},
		{"FinishedBasement"},
		{"GraniteCounters"},
		{"HomeOffice", "SmartHome"},
		{"Fireplace", "HardwoodFloors"},
	}
	logQ := standout.NewQueryLog(schema)
	for _, fs := range buyerFilters {
		q, err := schema.VectorOf(fs...)
		if err != nil {
			log.Fatal(err)
		}
		if err := logQ.Append(q); err != nil {
			log.Fatal(err)
		}
	}

	// The wish-list: the builder could include any feature; budget allows m.
	wishList := schema.Attrs()
	tuple, err := schema.VectorOf(wishList...)
	if err != nil {
		log.Fatal(err)
	}
	const m, k = 5, 2

	// Plain SOC-CB-QL ignores the competition...
	plain, err := standout.Solve(logQ, tuple, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ignoring competition: %s → matches %d of %d filters\n",
		strings.Join(plain.AttrNames(schema), ", "), plain.Satisfied, logQ.Size())

	// ...SOC-Topk also requires beating the competition into the top-k.
	v := standout.TopKVariant{
		DB: db, K: k,
		NewTupleScore: standout.AttrCountScore,
		RowScores:     scores,
	}
	topk, err := v.Solve(standout.BruteForce{}, logQ, tuple, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d aware:          %s → first page of %d of %d filters\n",
		k, strings.Join(topk.AttrNames(schema), ", "), topk.Satisfied, logQ.Size())

	// Disjunctive marketing copy: a flyer catches a buyer if it mentions ANY
	// feature they care about.
	disj, err := standout.SolveDisjunctive(logQ, tuple, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flyer (disjunctive):  %s → catches %d of %d buyers\n",
		strings.Join(disj.AttrNames(schema), ", "),
		standout.DisjunctiveSatisfied(logQ, disj.Kept), logQ.Size())

	// And the most cost-effective upgrade count (per-attribute, against the
	// competition this time — SOC-CB-D reduction).
	per, err := standout.PerAttribute(standout.BruteForce{}, standout.LogFromTable(db), tuple)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost-effective spec:  %d upgrades dominating %d listings (%.2f per upgrade)\n",
		per.Kept.Count(), per.Satisfied, per.Ratio)
}
