// Marketplace: an ingestion pipeline for a listings site, the regime the
// paper's preprocessing discussion targets (§IV.C) — one shared buyer
// workload, a continuous stream of new listings, each needing its best m
// attributes chosen at insert time.
//
// The example mines the workload once (MaxFreqItemSets.Preprocess), then
// processes a batch of incoming listings concurrently with SolveBatch,
// comparing throughput against solving each listing from scratch, and
// reports how much visibility the optimizer wins over naive "first m
// options" listings.
//
//	go run ./examples/marketplace
package main

import (
	"fmt"
	"log"
	"time"

	"standout"
)

func main() {
	const (
		m        = 5
		incoming = 300
	)

	// The marketplace's accumulated buyer workload.
	inventory := standout.GenerateCars(1, 8000)
	buyers := standout.GenerateRealWorkload(inventory, 2, 185)
	schema := inventory.Schema

	// Today's batch of new listings.
	listings := standout.PickTuples(inventory, 99, incoming)

	// Mine the workload once; reuse it for every listing.
	mfi := standout.MaxFreqItemSets{}
	prep, err := mfi.Preprocess(buyers)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	prepared, err := standout.SolveBatch(standout.PreparedSolver{Prep: prep}, buyers, listings, m, 0)
	if err != nil {
		log.Fatal(err)
	}
	preparedTime := time.Since(start)

	start = time.Now()
	oneShot, err := standout.SolveBatch(mfi, buyers, listings, m, 1)
	if err != nil {
		log.Fatal(err)
	}
	oneShotTime := time.Since(start)

	// Sanity: both paths find equally visible compressions.
	totalPrepared, totalOneShot, totalNaive := 0, 0, 0
	for i, sol := range prepared {
		totalPrepared += sol.Satisfied
		totalOneShot += oneShot[i].Satisfied
		// Naive baseline: list the first m options the car happens to have.
		ones := listings[i].Ones()
		if len(ones) > m {
			ones = ones[:m]
		}
		trimmed, err := standout.ParseTuple(schema, join(schema, ones))
		if err != nil {
			log.Fatal(err)
		}
		totalNaive += buyers.Satisfied(trimmed)
	}

	fmt.Printf("%d listings, %d-query workload, m = %d\n\n", incoming, buyers.Size(), m)
	fmt.Printf("preprocessed concurrent batch: %8s (%.2f ms/listing)\n",
		preparedTime.Round(time.Millisecond),
		float64(preparedTime.Milliseconds())/float64(incoming))
	fmt.Printf("one-shot sequential:           %8s (%.2f ms/listing)\n",
		oneShotTime.Round(time.Millisecond),
		float64(oneShotTime.Milliseconds())/float64(incoming))
	fmt.Printf("\ntotal buyer queries reached:\n")
	fmt.Printf("  optimizer (prepared):  %d\n", totalPrepared)
	fmt.Printf("  optimizer (one-shot):  %d\n", totalOneShot)
	fmt.Printf("  naive first-%d options: %d\n", m, totalNaive)
	if totalPrepared != totalOneShot {
		fmt.Println("  note: walk-backend mining is probabilistic; small divergences can occur")
	}
}

// join renders attribute indices as a comma-separated name list.
func join(schema *standout.Schema, attrs []int) string {
	s := ""
	for i, a := range attrs {
		if i > 0 {
			s += ","
		}
		s += schema.Name(a)
	}
	return s
}
