// Cardealer: the paper's evaluation scenario (§VII) end to end.
//
// A dealer lists a used car on a marketplace whose ad template fits m
// options. Using the synthesized used-cars inventory and a popularity-biased
// buyer workload, this example:
//
//  1. picks the best m options against the query log (SOC-CB-QL),
//  2. picks the best m options against the competition (SOC-CB-D:
//     maximize dominated competitor listings),
//  3. finds the most cost-effective ad size (per-attribute variant).
//
// go run ./examples/cardealer
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"standout"
)

func main() {
	const m = 5

	// Inventory of competing listings and the recent buyer workload.
	inventory := standout.GenerateCars(1, 4000)
	buyers := standout.GenerateRealWorkload(inventory, 2, 185)
	schema := inventory.Schema

	// The car we want to advertise: a random listing from the same market.
	car := standout.PickTuples(inventory, 3, 1)[0]
	fmt.Printf("our car has %d options: %s\n\n",
		car.Count(), strings.Join(schema.Names(car), ", "))

	// 1. Maximize visibility to the logged buyer queries.
	fmt.Printf("== best %d options against the buyer workload (%d queries) ==\n", m, buyers.Size())
	for _, s := range standout.Solvers() {
		if _, ok := s.(standout.BruteForce); ok {
			continue // C(|car|, 5) is large; the paper's algorithms suffice
		}
		start := time.Now()
		sol, err := s.Solve(standout.Instance{Log: buyers, Tuple: car, M: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %2d queries in %8s  keep: %s\n",
			s.Name(), sol.Satisfied, time.Since(start).Round(time.Microsecond),
			strings.Join(sol.AttrNames(schema), ", "))
	}

	// 2. No query log available? Stand out against the competition instead.
	sol, err := standout.SolveDatabase(standout.MaxFreqItemSets{}, inventory, car, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== SOC-CB-D: best %d options against the inventory ==\n", m)
	fmt.Printf("  dominates %d of %d competing listings\n  keep: %s\n",
		sol.Satisfied, inventory.Size(), strings.Join(sol.AttrNames(schema), ", "))

	// 3. How long should the ad be? Maximize buyers per advertised option.
	per, err := standout.PerAttribute(standout.ConsumeAttrCumul{}, buyers, car)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== per-attribute variant: most cost-effective ad size ==\n")
	fmt.Printf("  best size m=%d: %d queries / %d options = %.2f queries per option\n",
		per.M, per.Satisfied, per.Kept.Count(), per.Ratio)
	fmt.Printf("  keep: %s\n", strings.Join(per.AttrNames(schema), ", "))
}
