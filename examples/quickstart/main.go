// Quickstart: the paper's running example (§II.A, Fig 1).
//
// An auto dealer wants to advertise a new car but the ad can only list three
// of its five options. Which three make it visible to the most past buyer
// queries?
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"standout"
)

func main() {
	// The six Boolean option attributes of Fig 1.
	schema := standout.MustSchema([]string{
		"AC", "FourDoor", "Turbo", "PowerDoors", "AutoTrans", "PowerBrakes",
	})

	// The query log Q: what buyers searched for recently.
	queries := standout.NewQueryLog(schema)
	for _, attrs := range [][]string{
		{"AC", "FourDoor"},
		{"AC", "PowerDoors"},
		{"FourDoor", "PowerDoors"},
		{"PowerDoors", "PowerBrakes"},
		{"Turbo", "AutoTrans"},
	} {
		q, err := schema.VectorOf(attrs...)
		if err != nil {
			log.Fatal(err)
		}
		if err := queries.Append(q); err != nil {
			log.Fatal(err)
		}
	}

	// The new car t: it has five of the six options.
	tuple, err := schema.VectorOf("AC", "FourDoor", "PowerDoors", "AutoTrans", "PowerBrakes")
	if err != nil {
		log.Fatal(err)
	}

	// Keep the best m = 3 attributes.
	sol, err := standout.Solve(queries, tuple, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advertise: %v\n", sol.AttrNames(schema))
	fmt.Printf("visible to %d of %d logged queries\n", sol.Satisfied, queries.Size())

	// Compare all algorithms on the same instance.
	fmt.Println("\nalgorithm comparison:")
	for _, s := range standout.Solvers() {
		res, err := s.Solve(standout.Instance{Log: queries, Tuple: tuple, M: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s keeps %v → %d queries\n",
			s.Name(), res.AttrNames(schema), res.Satisfied)
	}
}
