package standout_test

import (
	"fmt"

	"standout"
)

// ExampleSolve reproduces the paper's running example (§II.A, Fig 1): the
// new car keeps AC, FourDoor and PowerDoors, satisfying queries q1–q3.
func ExampleSolve() {
	schema := standout.MustSchema([]string{
		"AC", "FourDoor", "Turbo", "PowerDoors", "AutoTrans", "PowerBrakes",
	})
	log := standout.NewQueryLog(schema)
	for _, attrs := range [][]string{
		{"AC", "FourDoor"}, {"AC", "PowerDoors"}, {"FourDoor", "PowerDoors"},
		{"PowerDoors", "PowerBrakes"}, {"Turbo", "AutoTrans"},
	} {
		q, _ := schema.VectorOf(attrs...)
		_ = log.Append(q)
	}
	tuple, _ := schema.VectorOf("AC", "FourDoor", "PowerDoors", "AutoTrans", "PowerBrakes")

	sol, _ := standout.Solve(log, tuple, 3)
	fmt.Println(sol.AttrNames(schema), sol.Satisfied)
	// Output: [AC FourDoor PowerDoors] 3
}

// ExampleSolveDatabase shows SOC-CB-D (§II.B): with m = 4 the compression
// dominates four of the seven competing cars.
func ExampleSolveDatabase() {
	schema := standout.MustSchema([]string{
		"AC", "FourDoor", "Turbo", "PowerDoors", "AutoTrans", "PowerBrakes",
	})
	db := standout.NewTable(schema)
	for _, row := range []string{
		"010100", "011000", "100111", "110101", "110000", "010100", "001100",
	} {
		v, _ := standout.ParseTuple(schema, row)
		_ = db.Append(v, "")
	}
	tuple, _ := standout.ParseTuple(schema, "110111")

	sol, _ := standout.SolveDatabase(standout.BruteForce{}, db, tuple, 4)
	fmt.Println(sol.AttrNames(schema), sol.Satisfied)
	// Output: [AC FourDoor PowerDoors PowerBrakes] 4
}

// ExampleSelectKeywords picks title keywords for a classified ad.
func ExampleSelectKeywords() {
	queries := [][]string{
		{"apartment", "downtown"},
		{"apartment", "parking"},
		{"downtown"},
	}
	ad := standout.Tokenize("spacious apartment downtown parking included")
	kept, satisfied, _ := standout.SelectKeywords(standout.BruteForce{}, queries, ad, 3)
	fmt.Println(kept, satisfied)
	// Output: [apartment downtown parking] 3
}
