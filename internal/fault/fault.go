// Package fault is a deterministic fault-injection layer for chaos testing
// the serving stack. Production code marks interesting points ("sites") with
// a Hit call; a test or a chaos run attaches an Injector to the context with
// rules that make chosen hits at chosen sites sleep, fail, or panic. Without
// an injector on the context a Hit is a single context lookup — cheap enough
// to leave compiled into request-granularity paths permanently.
//
// Determinism: every site keeps an atomic hit counter, and a rule fires on
// hit numbers selected purely by that counter ((n-1) % Every == Offset), so
// the fault schedule — which hit of a site faults, how long an injected
// delay lasts — is a pure function of the injector's seed and the per-site
// arrival order. Under concurrency the assignment of hit numbers to
// goroutines follows their arrival interleaving, but the set of faulted hit
// numbers and their payloads never changes, which is what repeatable chaos
// runs need.
//
// The site inventory of this repository is documented in DESIGN.md §10.
package fault

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"standout/internal/obsv"
)

// Kind selects what a firing rule does to the hitting call.
type Kind int

const (
	// KindDelay sleeps Delay plus a seed-deterministic share of Jitter, then
	// lets the call proceed. The sleep respects context cancellation.
	KindDelay Kind = iota
	// KindError makes Hit return Err (ErrInjected when nil), after any
	// configured Delay.
	KindError
	// KindPanic makes Hit panic with an Injected value, after any configured
	// Delay. The site's surrounding code is expected to recover — that is
	// usually the behavior under test.
	KindPanic
)

func (k Kind) String() string {
	switch k {
	case KindDelay:
		return "delay"
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrInjected is the default error payload of a KindError rule.
var ErrInjected = errors.New("fault: injected error")

// Injected is the panic value of a KindPanic rule, carrying the site so a
// recovering boundary can attribute the panic.
type Injected struct {
	Site string
	Msg  string
}

func (p Injected) String() string {
	if p.Msg == "" {
		return "fault: injected panic at " + p.Site
	}
	return "fault: injected panic at " + p.Site + ": " + p.Msg
}

// Rule selects hits of one site and applies one fault to them.
type Rule struct {
	// Site names the injection point, e.g. "core.batch.tuple".
	Site string
	// Every fires the rule on every Every-th hit; 0 and 1 both mean every
	// hit. Offset rotates which hit within the cycle fires: the rule fires
	// on hit numbers n (1-based) with (n-1) % Every == Offset % Every.
	Every, Offset uint64
	// Count caps the total number of fires; 0 means unlimited.
	Count uint64
	// Kind is what a firing hit does.
	Kind Kind
	// Delay is the base sleep of KindDelay, and an optional extra latency
	// before a KindError / KindPanic payload.
	Delay time.Duration
	// Jitter widens the sleep by a deterministic pseudo-random amount in
	// [0, Jitter), derived from the injector seed, the site and the hit
	// number.
	Jitter time.Duration
	// Err is the KindError payload; nil means ErrInjected.
	Err error
	// Msg annotates the KindPanic payload.
	Msg string
}

func (r Rule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:every=%d", r.Site, r.norm().Every)
	if r.Offset != 0 {
		fmt.Fprintf(&sb, ":offset=%d", r.Offset)
	}
	if r.Count != 0 {
		fmt.Fprintf(&sb, ":count=%d", r.Count)
	}
	fmt.Fprintf(&sb, ":%s", r.Kind)
	if r.Kind == KindError && r.Err != nil && !errors.Is(r.Err, ErrInjected) {
		fmt.Fprintf(&sb, "=%v", r.Err)
	}
	if r.Kind == KindPanic && r.Msg != "" {
		fmt.Fprintf(&sb, "=%s", r.Msg)
	}
	if r.Delay > 0 {
		fmt.Fprintf(&sb, ":delay=%s", r.Delay)
	}
	if r.Jitter > 0 {
		fmt.Fprintf(&sb, ":jitter=%s", r.Jitter)
	}
	return sb.String()
}

func (r Rule) norm() Rule {
	if r.Every == 0 {
		r.Every = 1
	}
	return r
}

// ruleState is a Rule plus its fire counter. Hit numbers come from the
// shared per-site counter so multiple rules on one site see the same stream.
type ruleState struct {
	Rule
	fires atomic.Uint64
}

func (rs *ruleState) matches(n uint64) bool {
	if (n-1)%rs.Every != rs.Offset%rs.Every {
		return false
	}
	if rs.Count == 0 {
		rs.fires.Add(1)
		return true
	}
	// Cap total fires: claim a slot, back out if over.
	if rs.fires.Add(1) > rs.Count {
		rs.fires.Add(^uint64(0))
		return false
	}
	return true
}

// Injector holds an immutable rule set and the per-site hit counters. Safe
// for concurrent use; construct with New.
type Injector struct {
	seed  uint64
	rules map[string][]*ruleState

	mu   sync.Mutex
	hits map[string]*atomic.Uint64
}

// New builds an injector over the rules. The seed drives delay jitter only;
// rule selection is counter-based and seed-independent.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{
		seed:  uint64(seed),
		rules: make(map[string][]*ruleState),
		hits:  make(map[string]*atomic.Uint64),
	}
	for _, r := range rules {
		r = r.norm()
		in.rules[r.Site] = append(in.rules[r.Site], &ruleState{Rule: r})
		if _, ok := in.hits[r.Site]; !ok {
			in.hits[r.Site] = new(atomic.Uint64)
		}
	}
	return in
}

// Hits returns how many times site has been hit.
func (in *Injector) Hits(site string) uint64 {
	in.mu.Lock()
	c := in.hits[site]
	in.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Fires returns how many faults have fired at site, summed over its rules.
func (in *Injector) Fires(site string) uint64 {
	var total uint64
	for _, rs := range in.rules[site] {
		total += rs.fires.Load()
	}
	return total
}

// Sites returns the sites with at least one rule, sorted.
func (in *Injector) Sites() []string {
	out := make([]string, 0, len(in.rules))
	for s := range in.rules {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Hit records one arrival at site and applies the first firing rule: it may
// sleep (KindDelay), return an error (KindError) or panic (KindPanic). A nil
// receiver returns nil immediately.
func (in *Injector) Hit(ctx context.Context, site string) error {
	if in == nil {
		return nil
	}
	rules := in.rules[site]
	if len(rules) == 0 {
		return nil
	}
	in.mu.Lock()
	c := in.hits[site]
	in.mu.Unlock()
	n := c.Add(1)
	for _, rs := range rules {
		if !rs.matches(n) {
			continue
		}
		// A firing fault is part of the request's story: record it into the
		// active trace so the flight recorder and /debug/requests can show
		// which requests were faulted and at which site/hit number.
		if tr := obsv.FromContext(ctx); tr != nil {
			tr.Count("fault.fired", 1)
			tr.Event("fault."+site, int64(n))
		}
		if d := in.delayFor(rs, site, n); d > 0 {
			if err := sleep(ctx, d); err != nil {
				return err
			}
		}
		switch rs.Kind {
		case KindDelay:
			return nil
		case KindError:
			if rs.Err != nil {
				return rs.Err
			}
			return ErrInjected
		case KindPanic:
			panic(Injected{Site: site, Msg: rs.Msg})
		}
	}
	return nil
}

// delayFor computes the deterministic sleep of one fire: base delay plus a
// jitter share derived from (seed, site, hit number).
func (in *Injector) delayFor(rs *ruleState, site string, n uint64) time.Duration {
	d := rs.Delay
	if rs.Jitter > 0 {
		h := fnv.New64a()
		h.Write([]byte(site))
		d += time.Duration(splitmix64(in.seed^h.Sum64()^n) % uint64(rs.Jitter))
	}
	return d
}

// sleep blocks for d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// splitmix64 is the SplitMix64 finalizer, a strong 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Context plumbing.

type ctxKey struct{}

// WithInjector returns a context carrying in for the code underneath.
func WithInjector(ctx context.Context, in *Injector) context.Context {
	return context.WithValue(ctx, ctxKey{}, in)
}

// From returns the context's injector, or nil.
func From(ctx context.Context) *Injector {
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}

// Hit applies the context's injector at site; with no injector attached it
// is a no-op returning nil. This is the form production code embeds.
func Hit(ctx context.Context, site string) error {
	return From(ctx).Hit(ctx, site)
}

// Site inventory. Every Hit site compiled into production code is registered
// here, so a typoed -fault flag fails fast at parse time instead of silently
// arming a rule that can never fire. Rules built directly as Rule values (the
// form tests use) bypass the check — only the textual ParseRule path, which is
// what CLI flags go through, validates.
var (
	sitesMu    sync.RWMutex
	knownSites = map[string]bool{
		"core.batch.tuple":  true, // per-tuple solve of a batch (core.SolveBatchContext)
		"core.prep.build":   true, // prepared-log index build attempt
		"core.prep.compact": true, // segment compaction during a delta build
		"core.prep.stale":   true, // staleness check of a prepared solve
		"par.worker":        true, // worker-loop iteration of internal/par
		"serve.admit":       true, // admission gate of one HTTP request
		"serve.solve":       true, // one ladder-rung solve attempt
		"shard.dial":        true, // outbound HTTP connection to a shard backend
		"shard.partition":   true, // building one shard's query-log partition
		"shard.slow":        true, // shard call latency (delay rules exercise hedging)
		"shard.solve":       true, // one scatter attempt against a shard backend
	}
)

// RegisterSite adds a site name to the inventory ParseRule validates against.
// Packages introducing new Hit sites call this from an init function (or a
// test does, for synthetic sites).
func RegisterSite(name string) {
	sitesMu.Lock()
	knownSites[name] = true
	sitesMu.Unlock()
}

// KnownSites returns the registered site inventory, sorted.
func KnownSites() []string {
	sitesMu.RLock()
	out := make([]string, 0, len(knownSites))
	for s := range knownSites {
		out = append(out, s)
	}
	sitesMu.RUnlock()
	sort.Strings(out)
	return out
}

// checkSite validates a parsed site name against the inventory, suggesting
// the closest registered site on a miss.
func checkSite(spec, site string) error {
	sitesMu.RLock()
	ok := knownSites[site]
	sitesMu.RUnlock()
	if ok {
		return nil
	}
	if best := closestSite(site); best != "" {
		return fmt.Errorf("fault: rule %q: unknown site %q (did you mean %q?)", spec, site, best)
	}
	return fmt.Errorf("fault: rule %q: unknown site %q (known sites: %s)",
		spec, site, strings.Join(KnownSites(), ", "))
}

// closestSite returns the registered site with the smallest edit distance to
// name, or "" when nothing is close enough to be a plausible typo.
func closestSite(name string) string {
	best, bestDist := "", len(name)/2+2 // beyond this it is not a typo
	for _, s := range KnownSites() {
		if d := editDistance(name, s); d < bestDist {
			best, bestDist = s, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// ParseRule parses the textual rule form used by CLI flags:
//
//	SITE[:every=N][:offset=N][:count=N][:delay=DUR][:jitter=DUR][:ACTION]
//
// where ACTION is one of "delay" (the default), "error[=MSG]", "cancel"
// (error=context.Canceled), or "panic[=MSG]". Examples:
//
//	core.batch.tuple:every=7:panic=chaos
//	serve.admit:every=3:delay=2ms:jitter=1ms
//	core.prep.stale:every=5:error
//
// The site must be in the registered inventory (KnownSites); unknown sites
// are rejected with a did-you-mean suggestion so a typo fails fast instead of
// never firing.
func ParseRule(spec string) (Rule, error) {
	parts := strings.Split(spec, ":")
	if len(parts) == 0 || parts[0] == "" {
		return Rule{}, fmt.Errorf("fault: rule %q has no site", spec)
	}
	if strings.ContainsAny(parts[0], " \t") {
		return Rule{}, fmt.Errorf("fault: rule %q: site %q contains whitespace", spec, parts[0])
	}
	if err := checkSite(spec, parts[0]); err != nil {
		return Rule{}, err
	}
	r := Rule{Site: parts[0]}
	for _, p := range parts[1:] {
		key, val, hasVal := strings.Cut(p, "=")
		switch key {
		case "every", "offset", "count":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Rule{}, fmt.Errorf("fault: rule %q: bad %s: %v", spec, key, err)
			}
			switch key {
			case "every":
				r.Every = n
			case "offset":
				r.Offset = n
			case "count":
				r.Count = n
			}
		case "delay", "jitter":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Rule{}, fmt.Errorf("fault: rule %q: bad %s: %v", spec, key, err)
			}
			if key == "delay" {
				r.Delay = d
			} else {
				r.Jitter = d
			}
		case "error":
			r.Kind = KindError
			if hasVal && val != "" {
				r.Err = fmt.Errorf("fault: injected: %s", val)
			}
		case "cancel":
			r.Kind = KindError
			r.Err = context.Canceled
		case "panic":
			r.Kind = KindPanic
			r.Msg = val
		default:
			return Rule{}, fmt.Errorf("fault: rule %q: unknown field %q", spec, key)
		}
	}
	if r.Kind == KindDelay && r.Delay <= 0 && r.Jitter <= 0 {
		return Rule{}, fmt.Errorf("fault: rule %q: delay rule without delay= or jitter= can never fire usefully", spec)
	}
	return r.norm(), nil
}

// ParseRules parses a comma-free multi-rule spec: rules separated by ";".
func ParseRules(specs string) ([]Rule, error) {
	var out []Rule
	for _, spec := range strings.Split(specs, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		r, err := ParseRule(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
