package fault

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNoInjectorIsNoop(t *testing.T) {
	if err := Hit(context.Background(), "any.site"); err != nil {
		t.Fatalf("Hit without injector: %v", err)
	}
	var in *Injector
	if err := in.Hit(context.Background(), "any.site"); err != nil {
		t.Fatalf("nil injector Hit: %v", err)
	}
}

func TestErrorEveryN(t *testing.T) {
	in := New(1, Rule{Site: "s", Every: 3, Kind: KindError})
	ctx := WithInjector(context.Background(), in)
	var got []int
	for i := 1; i <= 9; i++ {
		if err := Hit(ctx, "s"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: unexpected error %v", i, err)
			}
			got = append(got, i)
		}
	}
	want := []int{1, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("fired on hits %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired on hits %v, want %v", got, want)
		}
	}
	if in.Hits("s") != 9 || in.Fires("s") != 3 {
		t.Fatalf("hits=%d fires=%d, want 9 and 3", in.Hits("s"), in.Fires("s"))
	}
}

func TestOffsetAndCount(t *testing.T) {
	in := New(1, Rule{Site: "s", Every: 4, Offset: 1, Count: 2, Kind: KindError})
	ctx := WithInjector(context.Background(), in)
	var got []int
	for i := 1; i <= 16; i++ {
		if Hit(ctx, "s") != nil {
			got = append(got, i)
		}
	}
	// (n-1)%4 == 1 → hits 2, 6, 10, 14; Count caps at the first two.
	if len(got) != 2 || got[0] != 2 || got[1] != 6 {
		t.Fatalf("fired on hits %v, want [2 6]", got)
	}
}

func TestPanicCarriesSite(t *testing.T) {
	in := New(1, Rule{Site: "s", Kind: KindPanic, Msg: "boom"})
	ctx := WithInjector(context.Background(), in)
	defer func() {
		r := recover()
		p, ok := r.(Injected)
		if !ok {
			t.Fatalf("recovered %v (%T), want Injected", r, r)
		}
		if p.Site != "s" || p.Msg != "boom" {
			t.Fatalf("payload %+v", p)
		}
	}()
	_ = Hit(ctx, "s")
	t.Fatal("Hit did not panic")
}

func TestDelayIsDeterministic(t *testing.T) {
	mk := func() *Injector {
		return New(42, Rule{Site: "s", Kind: KindDelay, Delay: time.Millisecond, Jitter: 5 * time.Millisecond})
	}
	a, b := mk(), mk()
	for n := uint64(1); n <= 10; n++ {
		da := a.delayFor(a.rules["s"][0], "s", n)
		db := b.delayFor(b.rules["s"][0], "s", n)
		if da != db {
			t.Fatalf("hit %d: delays differ: %s vs %s", n, da, db)
		}
		if da < time.Millisecond || da >= 6*time.Millisecond {
			t.Fatalf("hit %d: delay %s out of [1ms, 6ms)", n, da)
		}
	}
}

func TestDelayHonorsCancellation(t *testing.T) {
	in := New(1, Rule{Site: "s", Kind: KindDelay, Delay: time.Minute})
	ctx, cancel := context.WithCancel(WithInjector(context.Background(), in))
	done := make(chan error, 1)
	go func() { done <- Hit(ctx, "s") }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delayed Hit did not observe cancellation")
	}
}

func TestConcurrentScheduleIsExact(t *testing.T) {
	// 8 goroutines × 100 hits: exactly every 5th of the 800 hits fires,
	// regardless of interleaving.
	in := New(1, Rule{Site: "s", Every: 5, Kind: KindError})
	ctx := WithInjector(context.Background(), in)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Hit(ctx, "s") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 160 {
		t.Fatalf("fired %d times over 800 hits, want 160", fired)
	}
}

func TestParseRule(t *testing.T) {
	RegisterSite("s") // synthetic site for the short-form cases below
	cases := []struct {
		spec string
		want Rule
	}{
		{"core.batch.tuple:every=7:panic=chaos",
			Rule{Site: "core.batch.tuple", Every: 7, Kind: KindPanic, Msg: "chaos"}},
		{"serve.admit:every=3:delay=2ms:jitter=1ms",
			Rule{Site: "serve.admit", Every: 3, Kind: KindDelay, Delay: 2 * time.Millisecond, Jitter: time.Millisecond}},
		{"core.prep.stale:every=5:offset=2:error",
			Rule{Site: "core.prep.stale", Every: 5, Offset: 2, Kind: KindError}},
		{"s:cancel", Rule{Site: "s", Every: 1, Kind: KindError, Err: context.Canceled}},
		{"s:count=1:panic", Rule{Site: "s", Every: 1, Count: 1, Kind: KindPanic}},
	}
	for _, c := range cases {
		got, err := ParseRule(c.spec)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", c.spec, err)
		}
		want := c.want.norm()
		if got.Site != want.Site || got.Every != want.Every || got.Offset != want.Offset ||
			got.Count != want.Count || got.Kind != want.Kind || got.Delay != want.Delay ||
			got.Jitter != want.Jitter || got.Msg != want.Msg || !errors.Is(got.Err, want.Err) {
			t.Fatalf("ParseRule(%q) = %+v, want %+v", c.spec, got, want)
		}
	}
	for _, bad := range []string{"", ":every=2", "s:every=x", "s:wat=1", "s:delay=fast",
		"not a rule", "s", "s:every=3"} {
		if _, err := ParseRule(bad); err == nil {
			t.Fatalf("ParseRule(%q) accepted", bad)
		}
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("serve.admit:every=2:error; par.worker:panic=x;")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Site != "serve.admit" || rules[1].Site != "par.worker" {
		t.Fatalf("got %+v", rules)
	}
}

func TestParseRuleUnknownSite(t *testing.T) {
	// A typo of a registered site is rejected with a did-you-mean hint.
	_, err := ParseRule("shard.sovle:every=2:error")
	if err == nil {
		t.Fatal("typoed site accepted")
	}
	if !strings.Contains(err.Error(), `did you mean "shard.solve"`) {
		t.Fatalf("no suggestion in %q", err)
	}
	// Something nothing like any site lists the inventory instead.
	_, err = ParseRule("zzzzzzzzzzzzzzzz:error")
	if err == nil {
		t.Fatal("unknown site accepted")
	}
	if !strings.Contains(err.Error(), "known sites") {
		t.Fatalf("no inventory listing in %q", err)
	}
	// RegisterSite extends the inventory.
	RegisterSite("custom.site")
	if _, err := ParseRule("custom.site:error"); err != nil {
		t.Fatalf("registered site rejected: %v", err)
	}
	found := false
	for _, s := range KnownSites() {
		if s == "custom.site" {
			found = true
		}
	}
	if !found {
		t.Fatal("KnownSites missing custom.site")
	}
}

func TestErrorAfterDelay(t *testing.T) {
	in := New(1, Rule{Site: "s", Kind: KindError, Delay: 10 * time.Millisecond})
	ctx := WithInjector(context.Background(), in)
	start := time.Now()
	err := Hit(ctx, "s")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("error fired before its delay")
	}
}
