package estimate_test

import (
	"context"
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/estimate"
	"standout/internal/lp"
)

// FuzzEstimateSoundness fuzzes the one invariant the estimator is allowed to
// promise: the certified interval contains the exact weighted Satisfied
// count, for any log (including empty, all-duplicate and weighted ones), any
// kept set, and both the default and a deliberately starved LP
// configuration. data encodes the log as 3-byte records — two mask bytes and
// a weight byte — so the fuzzer can drive duplicates, heavy weights and
// degenerate shapes directly.
func FuzzEstimateSoundness(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(3), []byte{})                                       // empty log
	f.Add(int64(2), uint8(8), uint8(4), []byte("\x03\x00\x01\x05\x00\x02"))             // tiny log
	f.Add(int64(3), uint8(4), uint8(2), []byte("\x05\x00\x07\x05\x00\x07\x05\x00\x07")) // all-duplicate, weighted
	f.Add(int64(4), uint8(12), uint8(9), []byte("\xff\x0f\x01\x01\x00\x09\xfe\x0f\x03"))
	f.Add(int64(5), uint8(9), uint8(0), []byte("\x00\x01\x05\x21\x00\x01\x10\x01\x08"))
	f.Fuzz(func(t *testing.T, seed int64, width, mb uint8, data []byte) {
		w := 1 + int(width%12) // 1..12 attributes
		log := dataset.NewQueryLog(dataset.GenericSchema(w))
		for i := 0; i+2 < len(data); i += 3 {
			mask := (int(data[i]) | int(data[i+1])<<8) % (1 << w)
			if mask == 0 {
				continue // a query must demand at least one attribute
			}
			q := bitvec.New(w)
			for j := 0; j < w; j++ {
				if mask&(1<<j) != 0 {
					q.Set(j)
				}
			}
			if err := log.AppendWeighted(q, 1+int(data[i+2]%9)); err != nil {
				t.Fatal(err)
			}
		}

		r := rand.New(rand.NewSource(seed))
		tuple := bitvec.New(w)
		for j := 0; j < w; j++ {
			if r.Intn(2) == 0 {
				tuple.Set(j)
			}
		}
		budget := int(mb) % (w + 1)

		for _, opts := range []estimate.Options{
			{},
			{MaxAtomAttrs: 2, MaxItemset: 2, LP: lp.Options{MaxIters: 1}},
		} {
			model, err := estimate.Build(log, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, kept := range []bitvec.Vector{model.Keep(tuple, budget), tuple} {
				iv, err := model.Estimate(context.Background(), kept)
				if err != nil {
					t.Fatal(err)
				}
				exact := log.Satisfied(kept)
				if !iv.Contains(exact) {
					t.Fatalf("opts %+v kept %s: interval [%d,%d] misses exact %d", opts, kept, iv.Lo, iv.Hi, exact)
				}
				if iv.Lo < 0 || iv.Hi > log.TotalWeight() || iv.Point < iv.Lo || iv.Point > iv.Hi {
					t.Fatalf("opts %+v kept %s: malformed interval %+v (total %d)", opts, kept, iv, log.TotalWeight())
				}
				if iv.Exact != (iv.Lo == iv.Hi) {
					t.Fatalf("kept %s: Exact flag %v disagrees with [%d,%d]", kept, iv.Exact, iv.Lo, iv.Hi)
				}
			}
		}
	})
}
