// Package estimate scores candidate compressions without touching the query
// log: a Model precomputes weighted frequent-itemset frequencies once, and
// Estimate answers "how many queries does this kept set satisfy?" with a
// certified [lo, hi] interval plus a point estimate, by solving a small
// linear program whose constraints are the stored frequencies.
//
// The construction follows Tatti's *Safe Projections of Binary Data Sets*
// (PAPERS.md): itemset frequencies are linear functionals of the underlying
// query distribution, so any boolean-query selectivity consistent with the
// stored frequencies lies between the min and max of an LP over that
// distribution. Here the query of interest is "does the log query avoid
// every dropped attribute?" — exactly the satisfied-count objective of
// SOC-CB-QL, since a conjunctive query is satisfied by the kept set iff it
// uses none of the dropped attributes.
//
// Soundness (DESIGN.md §16): the LP's feasible region contains the true
// distribution restricted to the tracked attributes, so the maximized
// (minimized) objective is ≥ (≤) the truth; attributes outside the tracked
// set widen the lower bound by at most the sum of their frequencies; and
// both LP bounds are intersected with exact union bounds that need no LP at
// all. The interval therefore always contains the exact count — the
// differential and fuzz harnesses in this package pin that on every
// generator family, including weighted and degenerate logs.
package estimate

import (
	"context"
	"fmt"
	"math"
	"sort"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/itemsets"
	"standout/internal/lp"
	"standout/internal/obsv"
)

// DefaultMaxItemset is the largest itemset size mined by Build: frequencies
// of singletons, pairs and triples constrain the LP.
const DefaultMaxItemset = 3

// DefaultMaxAtomAttrs bounds the dropped attributes the LP models jointly
// (2^k atom variables); the rest contribute an exact additive slack. The
// dense tableau simplex underneath scales ~8× per added attribute on these
// highly degenerate programs, so 5 keeps one Estimate in the tens of
// microseconds — the speed the shed-of-last-resort rung exists for — while
// the pairwise Bonferroni bound covers the attributes the LP leaves out.
const DefaultMaxAtomAttrs = 5

// maxAtomAttrsCap is the hard ceiling on the atom set: 2^12 LP variables is
// already past the point of diminishing returns for a shed-of-last-resort.
const maxAtomAttrsCap = 12

// pairMatrixMaxWidth bounds the width up to which models keep a dense
// width×width pair-support matrix (O(width²) ints) so Estimate's Bonferroni
// pass is array reads; wider schemas fall back to map lookups.
const pairMatrixMaxWidth = 512

// Options tunes Build. The zero value of every field selects a default, so
// Options is comparable and the zero Options is the canonical configuration
// (core.PreparedLog memoizes models built with it).
type Options struct {
	// MaxItemset caps the mined itemset size; default DefaultMaxItemset.
	MaxItemset int
	// MinSupport is the mining threshold: itemsets at or above it are stored
	// exactly, and — because Apriori mining is complete up to MaxItemset —
	// absent itemsets are known to sit below it, which the LP encodes as an
	// upper bound. Default max(2, totalWeight/256). Singletons are always
	// stored exactly regardless of the threshold.
	MinSupport int
	// MaxAtomAttrs bounds the dropped attributes modeled jointly by the LP
	// (2^k variables); default DefaultMaxAtomAttrs, capped at 12.
	MaxAtomAttrs int
	// LP tunes the simplex solves; the zero value is the solver's default.
	LP lp.Options
}

func (o Options) withDefaults(total int) Options {
	if o.MaxItemset <= 0 {
		o.MaxItemset = DefaultMaxItemset
	}
	if o.MinSupport <= 0 {
		o.MinSupport = total / 256
		if o.MinSupport < 2 {
			o.MinSupport = 2
		}
	}
	if o.MaxAtomAttrs <= 0 {
		o.MaxAtomAttrs = DefaultMaxAtomAttrs
	}
	if o.MaxAtomAttrs > maxAtomAttrsCap {
		o.MaxAtomAttrs = maxAtomAttrsCap
	}
	return o
}

// ItemsetSupport pairs an itemset with its exact weighted support, for
// building a Model from externally gathered counts (NewModel) — the shard
// coordinator's path, where supports are summed across partitions.
type ItemsetSupport struct {
	Items   bitvec.Vector
	Support int
}

// Model is an immutable frequency summary of one query log generation:
// every attribute's exact weighted frequency, the supports of all frequent
// itemsets up to a size cap, and the mining threshold that certifies what
// the absent itemsets' supports can be. Safe for concurrent use.
type Model struct {
	width    int
	total    int
	maxSize  int // largest itemset size with complete knowledge
	minSup   int // mining threshold; 0 = no completeness certificate
	maxAtoms int
	lpOpts   lp.Options

	sing []int          // exact weighted frequency per attribute
	supp map[string]int // bitvec.Key → support, itemsets of size ≥ 2
	pair []int          // width×width flattened pair supports, -1 unknown; nil on wide schemas
}

// initPairs allocates the dense pair-support matrix (all entries unknown);
// addItemset fills it as pairs are stored, so Estimate's Bonferroni pass
// over O(dropped²) pairs is pure array reads.
func (m *Model) initPairs() {
	if m.width > pairMatrixMaxWidth {
		return
	}
	m.pair = make([]int, m.width*m.width)
	for i := range m.pair {
		m.pair[i] = -1
	}
}

// addItemset stores one itemset support (size ≥ 2), mirroring pairs into the
// dense matrix.
func (m *Model) addItemset(items bitvec.Vector, sup int) {
	m.supp[items.Key()] = sup
	if m.pair != nil {
		if ones := items.Ones(); len(ones) == 2 {
			m.pair[ones[0]*m.width+ones[1]] = sup
			m.pair[ones[1]*m.width+ones[0]] = sup
		}
	}
}

// pairSupport resolves the exact support of the attribute pair {i, j}.
func (m *Model) pairSupport(i, j int) (int, bool) {
	if m.pair != nil {
		s := m.pair[i*m.width+j]
		return s, s >= 0
	}
	s, ok := m.supp[bitvec.FromIndices(m.width, i, j).Key()]
	return s, ok
}

// Build is BuildContext with a background context.
func Build(log *dataset.QueryLog, opts Options) (*Model, error) {
	return BuildContext(context.Background(), log, opts)
}

// BuildContext mines log's weighted itemset frequencies into a Model. The
// mining pass is the expensive step (one Apriori run capped at
// Options.MaxItemset); every later Estimate touches only the stored
// frequencies. The build itself polls ctx between levels only through the
// miner's own granularity — like the index build, it is one bounded pass.
func BuildContext(ctx context.Context, log *dataset.QueryLog, opts Options) (*Model, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("estimate: build: %w", err)
	}
	if err := log.Validate(); err != nil {
		return nil, fmt.Errorf("estimate: build: %w", err)
	}
	total := log.TotalWeight()
	opts = opts.withDefaults(total)

	tr := obsv.FromContext(ctx)
	sp := tr.StartSpan("estimate.build")
	defer sp.End()

	miner := itemsets.NewMinerWeighted(log.AsTable(), log.Weights)
	m := &Model{
		width:    log.Width(),
		total:    total,
		maxSize:  opts.MaxItemset,
		minSup:   opts.MinSupport,
		maxAtoms: opts.MaxAtomAttrs,
		lpOpts:   opts.LP,
		sing:     make([]int, log.Width()),
		supp:     map[string]int{},
	}
	for j := range m.sing {
		m.sing[j] = miner.Support(bitvec.FromIndices(m.width, j))
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("estimate: build: %w", err)
	}
	m.initPairs()
	for _, ic := range miner.AprioriCapped(opts.MinSupport, opts.MaxItemset) {
		if ic.Items.Count() >= 2 {
			m.addItemset(ic.Items, ic.Support)
		}
	}
	tr.Count("estimate.builds", 1)
	tr.Count("estimate.itemsets", int64(len(m.supp)))
	return m, nil
}

// NewModel builds a Model from externally gathered exact supports: sing must
// hold every attribute's exact weighted frequency and known lists exact
// supports of larger itemsets (typically pairs among a few hot attributes).
// A model built this way carries no mining-completeness certificate, so
// itemsets absent from known are simply unconstrained — the interval is
// correspondingly looser but still sound. The shard coordinator uses this
// constructor with supports summed additively across partitions.
func NewModel(width, total int, sing []int, known []ItemsetSupport, opts Options) (*Model, error) {
	if width < 0 || total < 0 {
		return nil, fmt.Errorf("estimate: negative width %d or total %d", width, total)
	}
	if len(sing) != width {
		return nil, fmt.Errorf("estimate: %d singleton supports for width %d", len(sing), width)
	}
	opts = opts.withDefaults(total)
	m := &Model{
		width:    width,
		total:    total,
		maxSize:  1,
		minSup:   0, // no completeness certificate
		maxAtoms: opts.MaxAtomAttrs,
		lpOpts:   opts.LP,
		sing:     append([]int(nil), sing...),
		supp:     map[string]int{},
	}
	for j, s := range sing {
		if s < 0 || s > total {
			return nil, fmt.Errorf("estimate: singleton support sing[%d]=%d outside [0, %d]", j, s, total)
		}
	}
	m.initPairs()
	for _, is := range known {
		if is.Items.Width() != width {
			return nil, fmt.Errorf("estimate: itemset width %d, model width %d", is.Items.Width(), width)
		}
		size := is.Items.Count()
		if size < 2 {
			continue // singletons are already exact in sing
		}
		if is.Support < 0 || is.Support > total {
			return nil, fmt.Errorf("estimate: itemset support %d outside [0, %d]", is.Support, total)
		}
		m.addItemset(is.Items, is.Support)
		if size > m.maxSize {
			m.maxSize = size
		}
	}
	return m, nil
}

// Width returns the schema width the model was built for.
func (m *Model) Width() int { return m.width }

// TotalWeight returns the log's total query weight at build time.
func (m *Model) TotalWeight() int { return m.total }

// Itemsets returns the number of stored itemsets of size ≥ 2.
func (m *Model) Itemsets() int { return len(m.supp) }

// Singleton returns attribute j's exact weighted frequency.
func (m *Model) Singleton(j int) int { return m.sing[j] }

// Keep selects the compression the estimate solver scores: the budget most
// frequent attributes of tuple, ties to the lower index — exactly the
// ConsumeAttr selection rule (core.topByFreq) evaluated on the model's
// stored frequencies, so no log scan is needed and the shard coordinator's
// additive-frequency selection is bit-identical.
func (m *Model) Keep(tuple bitvec.Vector, budget int) bitvec.Vector {
	ones := tuple.Ones()
	if budget > len(ones) {
		budget = len(ones)
	}
	if budget < 0 {
		budget = 0
	}
	sorted := append([]int(nil), ones...)
	sort.SliceStable(sorted, func(a, b int) bool { return m.sing[sorted[a]] > m.sing[sorted[b]] })
	return bitvec.FromIndices(tuple.Width(), sorted[:budget]...)
}

// Interval is one certified estimate: the exact satisfied count of the
// scored kept set lies in [Lo, Hi], and Point is the model's best guess
// inside that interval.
type Interval struct {
	// Lo and Hi certify Lo ≤ exact ≤ Hi against the log generation the model
	// was built from.
	Lo, Hi int
	// Point is an independence-model point estimate clamped into [Lo, Hi].
	Point int
	// Exact reports Lo == Hi: the model pinned the count precisely.
	Exact bool
	// LPTight reports that the LP solves succeeded and tightened the bounds;
	// false means the interval came from the arithmetic union bounds alone
	// (still sound, possibly vacuously wide).
	LPTight bool
	// AtomAttrs is the number of dropped attributes the LP modeled jointly.
	AtomAttrs int
}

// Contains reports whether n lies inside the certified interval.
func (iv Interval) Contains(n int) bool { return iv.Lo <= n && n <= iv.Hi }

// Estimate scores one kept set: the returned interval certifies the exact
// weighted count of log queries satisfied by kept (queries that are subsets
// of kept), computed purely from the stored frequencies. The log itself is
// never touched. Errors only on a width mismatch or context cancellation.
func (m *Model) Estimate(ctx context.Context, kept bitvec.Vector) (Interval, error) {
	if kept.Width() != m.width {
		return Interval{}, fmt.Errorf("estimate: kept width %d, model width %d", kept.Width(), m.width)
	}
	tr := obsv.FromContext(ctx)
	tr.Count("estimate.scores", 1)

	// A query is satisfied iff it avoids every dropped attribute; dropped
	// attributes that never occur cannot unsatisfy anything.
	var dropped []int
	for j := 0; j < m.width; j++ {
		if !kept.Get(j) && m.sing[j] > 0 {
			dropped = append(dropped, j)
		}
	}
	if m.total == 0 || len(dropped) == 0 {
		return Interval{Lo: m.total, Hi: m.total, Point: m.total, Exact: true, LPTight: true}, nil
	}

	// Exact union bounds, no LP needed: the unsatisfied queries are the union
	// of the per-attribute occurrence sets, so |union| ≥ max and ≤ sum.
	maxSing, sumSing := 0, 0
	for _, j := range dropped {
		if m.sing[j] > maxSing {
			maxSing = m.sing[j]
		}
		sumSing += m.sing[j]
	}
	loU, hiU := m.total-sumSing, m.total-maxSing
	if loU < 0 {
		loU = 0
	}
	lo, hi := loU, hiU

	// Pairwise Bonferroni over every dropped attribute (not just the LP's
	// atom set): |union| ≥ S1 − S2, so satisfied ≤ total − S1 + S2. S2 sums
	// exactly over the stored pairs; under a mining-completeness certificate
	// an absent pair is known to sit below the threshold, so S2 is bounded
	// above by s2Known + unknownPairs·(minSup−1) and the bound stays sound.
	s2Known, unknownPairs := 0, 0
	for a := 0; a < len(dropped); a++ {
		for b := a + 1; b < len(dropped); b++ {
			if sup, ok := m.pairSupport(dropped[a], dropped[b]); ok {
				s2Known += sup
			} else {
				unknownPairs++
			}
		}
	}
	if unknownPairs == 0 || (m.minSup > 0 && m.maxSize >= 2) {
		if h := m.total - sumSing + s2Known + unknownPairs*(m.minSup-1); h < hi {
			hi = h
		}
	}

	// S: the top-k dropped attributes by frequency (ties to the lower index)
	// — the heaviest potential unsatisfiers get the joint LP treatment; the
	// tail outside S contributes at most the sum of its frequencies, which
	// only the lower bound must concede.
	s := append([]int(nil), dropped...)
	sort.SliceStable(s, func(a, b int) bool { return m.sing[s[a]] > m.sing[s[b]] })
	if len(s) > m.maxAtoms {
		s = s[:m.maxAtoms]
	}
	slack := 0
	inS := map[int]bool{}
	for _, j := range s {
		inS[j] = true
	}
	for _, j := range dropped {
		if !inS[j] {
			slack += m.sing[j]
		}
	}

	loLP, hiLP, lpOK, err := m.atomBounds(ctx, s)
	if err != nil {
		return Interval{}, err
	}
	if lpOK {
		if h := hiLP; h < hi {
			hi = h
		}
		if l := loLP - slack; l > lo {
			lo = l
		}
		if lo > hi {
			// Disagreement between the tightened bounds and the exact union
			// bounds (LP numerics, or inconsistent NewModel inputs): trust
			// the arithmetic, drop every tightening.
			lpOK = false
			lo, hi = loU, hiU
		}
	}
	if !lpOK {
		tr.Count("estimate.lp.fallbacks", 1)
	}

	// Independence point estimate, clamped into the certified interval.
	// (Truncated inclusion–exclusion — total − S1 + S2 — was measured too:
	// it wins only on duplicate-heavy weighted logs and loses badly when
	// many lightly-correlated attributes are dropped, so the multiplicative
	// model is the default point.)
	p := float64(m.total)
	for _, j := range dropped {
		p *= 1 - float64(m.sing[j])/float64(m.total)
	}
	point := int(math.Round(p))
	if point < lo {
		point = lo
	}
	if point > hi {
		point = hi
	}
	return Interval{Lo: lo, Hi: hi, Point: point, Exact: lo == hi, LPTight: lpOK, AtomAttrs: len(s)}, nil
}

// atomBounds solves the two LPs bounding the weight of queries avoiding
// every attribute of s. Variables are the 2^k atoms of the attribute set s
// (p[T] = weight of queries whose intersection with s is exactly T); the
// objective is p[∅]. Constraints: the atoms sum to the total weight; every
// subset I of s with a stored support gets an equality (supports are linear
// in the atoms: supp(I) = Σ_{T ⊇ I} p[T]); and — when the model carries a
// mining-completeness certificate — every absent subset within the mined
// size cap gets supp(I) ≤ minSup−1. The true atom distribution satisfies
// all of these, so [min, max] of p[∅] brackets the truth.
func (m *Model) atomBounds(ctx context.Context, s []int) (lo, hi int, ok bool, err error) {
	k := len(s)
	if k == 0 {
		return m.total, m.total, true, nil
	}
	nAtoms := 1 << k

	build := func(sense lp.Sense) *lp.Problem {
		p := lp.NewProblem(sense)
		for t := 0; t < nAtoms; t++ {
			obj := 0.0
			if t == 0 {
				obj = 1
			}
			p.AddVar(0, math.Inf(1), obj, "")
		}
		terms := make([]lp.Term, nAtoms)
		for t := 0; t < nAtoms; t++ {
			terms[t] = lp.Term{Var: t, Coeff: 1}
		}
		p.AddConstraint(terms, lp.EQ, float64(m.total))

		for mask := 1; mask < nAtoms; mask++ {
			size := popcount(mask)
			if size > m.maxSize {
				continue
			}
			sup, known := m.supportOf(s, mask, size)
			if !known && m.minSup <= 0 {
				continue // no completeness certificate: unconstrained
			}
			var ts []lp.Term
			for t := mask; ; t = (t + 1) | mask {
				ts = append(ts, lp.Term{Var: t, Coeff: 1})
				if t == nAtoms-1 {
					break
				}
			}
			if known {
				p.AddConstraint(ts, lp.EQ, float64(sup))
			} else {
				p.AddConstraint(ts, lp.LE, float64(m.minSup-1))
			}
		}
		return p
	}

	maxRes, err := build(lp.Maximize).SolveContext(ctx, m.lpOpts)
	if err != nil {
		return 0, 0, false, fmt.Errorf("estimate: %w", err)
	}
	minRes, err := build(lp.Minimize).SolveContext(ctx, m.lpOpts)
	if err != nil {
		return 0, 0, false, fmt.Errorf("estimate: %w", err)
	}
	if maxRes.Status != lp.StatusOptimal || minRes.Status != lp.StatusOptimal {
		return 0, 0, false, nil
	}
	// Round outward with a scale-aware epsilon: the supports are integers, so
	// anything within simplex tolerance of an integer is that integer, and
	// widening by eps before floor/ceil keeps the certificate on the safe
	// side of the solver's numerics.
	eps := 1e-7*float64(m.total) + 1e-6
	hi = int(math.Floor(maxRes.Objective + eps))
	lo = int(math.Ceil(minRes.Objective - eps))
	if hi > m.total {
		hi = m.total
	}
	if lo < 0 {
		lo = 0
	}
	if lo > hi {
		return 0, 0, false, nil
	}
	return lo, hi, true, nil
}

// supportOf resolves the support of the subset of s selected by mask:
// singletons are always exact; larger sets are looked up among the stored
// itemsets.
func (m *Model) supportOf(s []int, mask, size int) (int, bool) {
	if size == 1 {
		for i, j := range s {
			if mask == 1<<i {
				return m.sing[j], true
			}
		}
	}
	attrs := make([]int, 0, size)
	for i, j := range s {
		if mask&(1<<i) != 0 {
			attrs = append(attrs, j)
		}
	}
	sup, ok := m.supp[bitvec.FromIndices(m.width, attrs...).Key()]
	return sup, ok
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
