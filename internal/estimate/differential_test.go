package estimate_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/estimate"
	"standout/internal/gen"
)

// diffFamily generates one family's share of the 1000 instances: a fixed
// number of seeded logs, each scored at several kept sets — both the
// estimator's own Keep selections and adversarial random subsets.
type diffFamily struct {
	name string
	logs func() []*dataset.QueryLog
}

// diffLogs builds n logs from a per-seed constructor.
func diffLogs(n int, build func(seed int64) *dataset.QueryLog) func() []*dataset.QueryLog {
	return func() []*dataset.QueryLog {
		logs := make([]*dataset.QueryLog, n)
		for i := range logs {
			logs[i] = build(int64(i))
		}
		return logs
	}
}

// synthetic builds a width-14 log of size queries under opts.
func synthetic(seed int64, size int, opts gen.WorkloadOptions) *dataset.QueryLog {
	return gen.SyntheticWorkload(dataset.GenericSchema(14), seed, size, opts)
}

// TestEstimateSoundnessDifferential is the error-measurement harness the
// ISSUE's acceptance gate names: ≥ 1000 seeded instances spanning every
// generator family — uniform, attribute-skewed, duplicate-weighted, the real
// cars workload, planted-clique adversarial logs, and degenerate logs (empty,
// all-duplicate, single-query) — each scored against the exact weighted
// Satisfied count. The certified interval must contain the exact count on
// every single instance; the per-family point-estimate error quantiles are
// logged so regressions in tightness are visible in the test log.
func TestEstimateSoundnessDifferential(t *testing.T) {
	skewW := make([]float64, 14)
	for i := range skewW {
		skewW[i] = 1 / float64(i+1)
	}
	carsTab := gen.Cars(1, 400)

	families := []diffFamily{
		{"uniform", diffLogs(10, func(seed int64) *dataset.QueryLog {
			return synthetic(seed+10, 120+20*int(seed%5), gen.WorkloadOptions{})
		})},
		{"skewed", diffLogs(10, func(seed int64) *dataset.QueryLog {
			return synthetic(seed+30, 150, gen.WorkloadOptions{AttrWeights: skewW})
		})},
		{"weighted", diffLogs(10, func(seed int64) *dataset.QueryLog {
			base := synthetic(seed+50, 150, gen.WorkloadOptions{AttrWeights: skewW})
			log := dataset.NewQueryLog(base.Schema)
			for i, q := range base.Queries {
				if err := log.AppendWeighted(q, 1+(i+int(seed))%9); err != nil {
					t.Fatal(err)
				}
			}
			return log
		})},
		{"cars-real", diffLogs(10, func(seed int64) *dataset.QueryLog {
			return gen.RealWorkload(carsTab, seed+70, 120)
		})},
		{"clique", diffLogs(10, func(seed int64) *dataset.QueryLog {
			g, _ := gen.PlantedCliqueGraph(seed+90, 20, 5, 0.3)
			log, _ := gen.CliqueInstance(g)
			return log
		})},
		{"degenerate", func() []*dataset.QueryLog {
			empty := dataset.NewQueryLog(dataset.GenericSchema(6))
			single := dataset.NewQueryLog(dataset.GenericSchema(6))
			if err := single.AppendWeighted(bitvec.FromIndices(6, 1, 3), 7); err != nil {
				t.Fatal(err)
			}
			dup := dataset.NewQueryLog(dataset.GenericSchema(6))
			for i := 0; i < 40; i++ {
				if err := dup.AppendWeighted(bitvec.FromIndices(6, 0, 2), 1+i%3); err != nil {
					t.Fatal(err)
				}
			}
			wide := dataset.NewQueryLog(dataset.GenericSchema(6))
			for i := 0; i < 20; i++ {
				if err := wide.Append(bitvec.FromIndices(6, 0, 1, 2, 3, 4, 5)); err != nil {
					t.Fatal(err)
				}
			}
			return []*dataset.QueryLog{empty, single, dup, wide}
		}},
	}

	const perLog = 19 // 5 families × 10 logs × 19 + 4 degenerate logs × 19 ≥ 1000
	totalInstances := 0
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			var errsPct []float64
			instances := 0
			for li, log := range fam.logs() {
				model, err := estimate.Build(log, estimate.Options{})
				if err != nil {
					t.Fatal(err)
				}
				r := rand.New(rand.NewSource(int64(1000 + li)))
				width := log.Width()
				for k := 0; k < perLog; k++ {
					var kept bitvec.Vector
					if k%2 == 0 {
						// The serving path: the estimator's own selection.
						tuple := randomSubset(r, width)
						kept = model.Keep(tuple, r.Intn(width+1))
					} else {
						// Adversarial: arbitrary kept sets the solver never picks.
						kept = randomSubset(r, width)
					}
					iv, err := model.Estimate(context.Background(), kept)
					if err != nil {
						t.Fatal(err)
					}
					exact := log.Satisfied(kept)
					if !iv.Contains(exact) {
						t.Fatalf("log %d kept %s: interval [%d,%d] misses exact %d (point %d)",
							li, kept, iv.Lo, iv.Hi, exact, iv.Point)
					}
					if iv.Exact && iv.Point != exact {
						t.Fatalf("log %d kept %s: Exact interval with point %d ≠ exact %d", li, kept, iv.Point, exact)
					}
					ref := exact
					if ref < 1 {
						ref = 1
					}
					errsPct = append(errsPct, 100*math.Abs(float64(iv.Point-exact))/float64(ref))
					instances++
				}
			}
			totalInstances += instances
			t.Logf("%s: %d instances, point error %% p50=%.1f p90=%.1f max=%.1f",
				fam.name, instances, quantile(errsPct, 0.50), quantile(errsPct, 0.90), quantile(errsPct, 1))
		})
	}
	if totalInstances < 1000 {
		t.Fatalf("differential harness covered %d instances, want ≥ 1000", totalInstances)
	}
	t.Logf("total: %d instances, zero interval violations", totalInstances)
}

// randomSubset returns a random attribute subset (possibly empty or full).
func randomSubset(r *rand.Rand, width int) bitvec.Vector {
	v := bitvec.New(width)
	for j := 0; j < width; j++ {
		if r.Intn(2) == 0 {
			v.Set(j)
		}
	}
	return v
}

// quantile is the nearest-rank q-quantile of v.
func quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// TestEstimateSoundnessAcrossOptions re-runs a slice of the harness under
// non-default options — smaller and larger atom sets, pairs-only mining, a
// starved LP — because the soundness argument must not depend on tuning.
func TestEstimateSoundnessAcrossOptions(t *testing.T) {
	log := gen.SyntheticWorkload(dataset.GenericSchema(10), 7, 200, gen.WorkloadOptions{})
	optsList := []estimate.Options{
		{MaxAtomAttrs: 1},
		{MaxAtomAttrs: 3},
		{MaxAtomAttrs: 8},
		{MaxItemset: 2},
		{MinSupport: 1000000}, // nothing mined: arithmetic bounds only
	}
	r := rand.New(rand.NewSource(5))
	for oi, opts := range optsList {
		opts := opts
		t.Run(fmt.Sprintf("opts%d", oi), func(t *testing.T) {
			model, err := estimate.Build(log, opts)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 15; k++ {
				kept := randomSubset(r, log.Width())
				iv, err := model.Estimate(context.Background(), kept)
				if err != nil {
					t.Fatal(err)
				}
				if exact := log.Satisfied(kept); !iv.Contains(exact) {
					t.Fatalf("opts %+v kept %s: [%d,%d] misses %d", opts, kept, iv.Lo, iv.Hi, exact)
				}
			}
		})
	}
}
