package estimate_test

import (
	"context"
	"strings"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/estimate"
	"standout/internal/gen"
	"standout/internal/lp"
)

// smallLog builds a deterministic 8-wide log with known structure.
func smallLog(t *testing.T) *dataset.QueryLog {
	t.Helper()
	log := dataset.NewQueryLog(dataset.GenericSchema(8))
	for _, q := range []struct {
		attrs  []int
		weight int
	}{
		{[]int{0}, 3},
		{[]int{0, 1}, 2},
		{[]int{1, 2}, 1},
		{[]int{2, 3, 4}, 4},
		{[]int{5}, 1},
		{[]int{0, 5}, 2},
	} {
		if err := log.AppendWeighted(bitvec.FromIndices(8, q.attrs...), q.weight); err != nil {
			t.Fatal(err)
		}
	}
	return log
}

func TestEstimateExactWhenNothingDropped(t *testing.T) {
	log := smallLog(t)
	m, err := estimate.Build(log, estimate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Keeping every occurring attribute drops nothing: the count is exact.
	all := bitvec.FromIndices(8, 0, 1, 2, 3, 4, 5, 6, 7)
	iv, err := m.Estimate(context.Background(), all)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Exact || iv.Lo != log.TotalWeight() || iv.Hi != log.TotalWeight() || iv.Point != log.TotalWeight() {
		t.Fatalf("full kept: got %+v, want exact total %d", iv, log.TotalWeight())
	}
	// Dropping only attributes that never occur (6, 7) is still exact.
	most := bitvec.FromIndices(8, 0, 1, 2, 3, 4, 5)
	iv, err = m.Estimate(context.Background(), most)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Exact || iv.Point != log.TotalWeight() {
		t.Fatalf("dropping absent attrs: got %+v, want exact total", iv)
	}
}

func TestEstimateEmptyLog(t *testing.T) {
	log := dataset.NewQueryLog(dataset.GenericSchema(4))
	m, err := estimate.Build(log, estimate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	iv, err := m.Estimate(context.Background(), bitvec.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Exact || iv.Lo != 0 || iv.Hi != 0 || iv.Point != 0 {
		t.Fatalf("empty log: got %+v, want exact 0", iv)
	}
}

func TestEstimateWidthMismatch(t *testing.T) {
	m, err := estimate.Build(smallLog(t), estimate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Estimate(context.Background(), bitvec.New(5)); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	log := dataset.NewQueryLog(dataset.GenericSchema(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := estimate.BuildContext(ctx, log, estimate.Options{}); err == nil {
		t.Fatal("cancelled build succeeded")
	}
}

func TestNewModelValidation(t *testing.T) {
	pair := bitvec.FromIndices(4, 0, 1)
	cases := []struct {
		name  string
		width int
		total int
		sing  []int
		known []estimate.ItemsetSupport
	}{
		{"negative total", 4, -1, []int{0, 0, 0, 0}, nil},
		{"sing length", 4, 10, []int{1, 2}, nil},
		{"sing range", 4, 10, []int{1, 2, 11, 0}, nil},
		{"itemset width", 4, 10, []int{1, 2, 3, 0}, []estimate.ItemsetSupport{{Items: bitvec.FromIndices(5, 0, 1), Support: 1}}},
		{"itemset support range", 4, 10, []int{1, 2, 3, 0}, []estimate.ItemsetSupport{{Items: pair, Support: 11}}},
	}
	for _, c := range cases {
		if _, err := estimate.NewModel(c.width, c.total, c.sing, c.known, estimate.Options{}); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Valid inputs: singletons in known are skipped, pairs raise maxSize.
	m, err := estimate.NewModel(4, 10, []int{4, 3, 2, 0}, []estimate.ItemsetSupport{
		{Items: bitvec.FromIndices(4, 0), Support: 4},
		{Items: pair, Support: 2},
	}, estimate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Itemsets() != 1 {
		t.Fatalf("Itemsets = %d, want 1 (singleton skipped)", m.Itemsets())
	}
	if m.Singleton(0) != 4 || m.TotalWeight() != 10 || m.Width() != 4 {
		t.Fatalf("accessors: sing0=%d total=%d width=%d", m.Singleton(0), m.TotalWeight(), m.Width())
	}
}

// TestEstimateLPFallbackStillSound starves the simplex (MaxIters 1) so the
// LP tightening fails: the interval must fall back to the arithmetic bounds
// and still contain the exact count.
func TestEstimateLPFallbackStillSound(t *testing.T) {
	log := smallLog(t)
	m, err := estimate.Build(log, estimate.Options{LP: lp.Options{MaxIters: 1}})
	if err != nil {
		t.Fatal(err)
	}
	kept := bitvec.FromIndices(8, 0, 1)
	iv, err := m.Estimate(context.Background(), kept)
	if err != nil {
		t.Fatal(err)
	}
	if iv.LPTight {
		t.Fatal("LP reported tight with a 1-iteration budget")
	}
	if exact := log.Satisfied(kept); !iv.Contains(exact) {
		t.Fatalf("fallback interval [%d,%d] misses exact %d", iv.Lo, iv.Hi, exact)
	}
}

func TestEstimateCancelled(t *testing.T) {
	m, err := estimate.Build(smallLog(t), estimate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Estimate(ctx, bitvec.FromIndices(8, 0)); err == nil {
		t.Fatal("cancelled estimate succeeded")
	}
}

// TestKeepMatchesConsumeAttr pins the selection-rule equivalence the serve
// and shard layers rely on: Model.Keep evaluated on stored frequencies picks
// bit-identical kept sets to the core.ConsumeAttr solver scanning the log.
func TestKeepMatchesConsumeAttr(t *testing.T) {
	tab := gen.Cars(3, 500)
	log := gen.SyntheticWorkload(tab.Schema, 4, 800, gen.WorkloadOptions{})
	m, err := estimate.Build(log, estimate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		tuple := gen.RandomTuple(log.Schema, 50+seed, 0.5)
		for _, budget := range []int{0, 1, 3, tuple.Count(), tuple.Count() + 5} {
			sol, err := core.ConsumeAttr{}.Solve(core.Instance{Log: log, Tuple: tuple, M: budget})
			if err != nil {
				t.Fatal(err)
			}
			if kept := m.Keep(tuple, budget); !kept.Equal(sol.Kept) {
				t.Fatalf("seed %d m=%d: Keep %s, ConsumeAttr %s", seed, budget, kept, sol.Kept)
			}
		}
	}
}

func TestKeepClampsBudget(t *testing.T) {
	m, err := estimate.Build(smallLog(t), estimate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tuple := bitvec.FromIndices(8, 0, 2)
	if kept := m.Keep(tuple, -3); kept.Count() != 0 {
		t.Fatalf("negative budget kept %s", kept)
	}
	if kept := m.Keep(tuple, 99); !kept.Equal(tuple) {
		t.Fatalf("oversized budget kept %s, want the whole tuple", kept)
	}
}

func TestIntervalContains(t *testing.T) {
	iv := estimate.Interval{Lo: 2, Hi: 5}
	for n, want := range map[int]bool{1: false, 2: true, 4: true, 5: true, 6: false} {
		if iv.Contains(n) != want {
			t.Errorf("Contains(%d) = %v", n, !want)
		}
	}
}

// TestNewModelLoosensWithoutCertificate: the same frequencies produce a
// wider (or equal) interval through NewModel — which carries no mining-
// completeness certificate — than through Build, and both stay sound.
func TestNewModelLoosensWithoutCertificate(t *testing.T) {
	log := smallLog(t)
	built, err := estimate.Build(log, estimate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sing := make([]int, log.Width())
	for j := range sing {
		sing[j] = built.Singleton(j)
	}
	external, err := estimate.NewModel(log.Width(), log.TotalWeight(), sing, nil, estimate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	kept := bitvec.FromIndices(8, 0, 3)
	exact := log.Satisfied(kept)
	ivB, err := built.Estimate(context.Background(), kept)
	if err != nil {
		t.Fatal(err)
	}
	ivE, err := external.Estimate(context.Background(), kept)
	if err != nil {
		t.Fatal(err)
	}
	if !ivB.Contains(exact) || !ivE.Contains(exact) {
		t.Fatalf("soundness: built [%d,%d], external [%d,%d], exact %d", ivB.Lo, ivB.Hi, ivE.Lo, ivE.Hi, exact)
	}
	if ivE.Hi-ivE.Lo < ivB.Hi-ivB.Lo {
		t.Fatalf("certificate-free interval [%d,%d] tighter than mined [%d,%d]", ivE.Lo, ivE.Hi, ivB.Lo, ivB.Hi)
	}
}

func TestBuildRejectsInvalidLog(t *testing.T) {
	log := dataset.NewQueryLog(dataset.GenericSchema(4))
	if err := log.AppendWeighted(bitvec.FromIndices(4, 1), 2); err != nil {
		t.Fatal(err)
	}
	log.Weights[0] = -1
	if _, err := estimate.Build(log, estimate.Options{}); err == nil || !strings.Contains(err.Error(), "weight") {
		t.Fatalf("invalid log: err = %v", err)
	}
}
