package bench

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{Seed: 1, CarsN: 400, Tuples: 2, ILPTimeout: 20 * time.Second}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 1 || c.CarsN != 15211 || c.Tuples != 100 || c.ILPTimeout != 30*time.Second {
		t.Errorf("defaults wrong: %+v", c)
	}
	q := Config{Quick: true}.withDefaults()
	if q.Tuples != 10 {
		t.Errorf("quick tuples=%d", q.Tuples)
	}
	tiny := Config{Quick: true, Tuples: 5}.withDefaults()
	if tiny.Tuples != 3 {
		t.Errorf("quick floor=%d", tiny.Tuples)
	}
}

func TestResultFormatAndCSV(t *testing.T) {
	r := Result{
		Name: "Fig X", Title: "demo", XLabel: "m", YLabel: "s",
		Columns: []string{"A", "B,with comma"},
		Rows: []Row{
			{X: "1", Values: []float64{0.5, Missing}},
			{X: "2", Values: []float64{3, 0.0000004}},
		},
		Notes: []string{"a note"},
	}
	text := r.Format()
	for _, want := range []string{"Fig X — demo", "m", "A", "-", "3.0", "4.00e-07", "note: a note"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q in:\n%s", want, text)
		}
	}
	csv := r.CSV()
	if !strings.Contains(csv, `"B,with comma"`) {
		t.Errorf("CSV did not escape comma: %s", csv)
	}
	if !strings.Contains(csv, "1,0.5,\n") {
		t.Errorf("CSV missing-value cell wrong: %q", csv)
	}
}

func checkResult(t *testing.T, r Result, wantRows int) {
	t.Helper()
	if len(r.Rows) != wantRows {
		t.Fatalf("%s: %d rows, want %d", r.Name, len(r.Rows), wantRows)
	}
	for _, row := range r.Rows {
		if len(row.Values) != len(r.Columns) {
			t.Fatalf("%s: row %s has %d values for %d columns",
				r.Name, row.X, len(row.Values), len(r.Columns))
		}
	}
}

func TestFig6Small(t *testing.T) {
	r := Fig6(tiny())
	checkResult(t, r, len(mRange))
	if len(r.Columns) != 5 {
		t.Fatalf("columns=%v", r.Columns)
	}
	// Every timing must be present and non-negative at this tiny scale.
	for _, row := range r.Rows {
		for j, v := range row.Values {
			if math.IsNaN(v) || v < 0 {
				t.Errorf("m=%s %s: bad timing %v", row.X, r.Columns[j], v)
			}
		}
	}
	if len(r.Notes) == 0 {
		t.Error("Fig6 should note the preprocessed MFI cost")
	}
}

func TestFig7Small(t *testing.T) {
	r := Fig7(tiny())
	checkResult(t, r, len(mRange))
	if r.Columns[0] != "Optimal" {
		t.Fatalf("columns=%v", r.Columns)
	}
	// Quality is monotone in m for the optimal column and greedy ≤ optimal.
	prev := -1.0
	for _, row := range r.Rows {
		opt := row.Values[0]
		if opt < prev-1e-9 {
			t.Errorf("optimal quality decreased at m=%s", row.X)
		}
		prev = opt
		for j := 1; j < len(row.Values); j++ {
			if row.Values[j] > opt+1e-9 {
				t.Errorf("greedy %s beats optimal at m=%s", r.Columns[j], row.X)
			}
		}
	}
}

func TestFig8And9Small(t *testing.T) {
	cfg := tiny()
	r8 := fig8At(context.Background(), cfg, 120)
	checkResult(t, r8, len(mRange))
	for _, c := range r8.Columns {
		if c == "ILP" {
			t.Error("Fig 8 must not include ILP")
		}
	}
	r9 := fig9At(context.Background(), cfg, 120)
	checkResult(t, r9, len(mRange))
}

func TestFig10Small(t *testing.T) {
	r := fig10At(context.Background(), tiny(), []int{60, 120})
	checkResult(t, r, 2)
}

func TestFig10ILPCapProducesMissing(t *testing.T) {
	r := fig10At(context.Background(), tiny(), []int{fig10ILPCap + 1})
	if !math.IsNaN(r.Rows[0].Values[0]) {
		t.Errorf("ILP above cap should be missing, got %v", r.Rows[0].Values[0])
	}
	for j := 1; j < len(r.Rows[0].Values); j++ {
		if math.IsNaN(r.Rows[0].Values[j]) {
			t.Errorf("non-ILP column %s missing", r.Columns[j])
		}
	}
}

func TestFig11Small(t *testing.T) {
	r := fig11At(context.Background(), tiny(), []int{8, 12}, 40)
	checkResult(t, r, 2)
	if len(r.Columns) != 2 {
		t.Fatalf("columns=%v", r.Columns)
	}
}

func TestAblationsSmall(t *testing.T) {
	cfg := tiny()
	a1 := ablationWalksAt(context.Background(), cfg, []int{60, 120})
	checkResult(t, a1, 2)
	a3 := AblationThreshold(cfg)
	checkResult(t, a3, 5)
	a4 := AblationGreedyGap(cfg)
	checkResult(t, a4, len(mRange))
	for _, row := range a4.Rows {
		for j, v := range row.Values {
			if !math.IsNaN(v) && (v < 0 || v > 1+1e-9) {
				t.Errorf("ratio out of range at m=%s %s: %v", row.X, a4.Columns[j], v)
			}
		}
	}
}

func TestAblationWalkLevelsSmall(t *testing.T) {
	cfg := tiny()
	a2 := ablationWalkLevelsAt(context.Background(), cfg, []int{60, 120})
	checkResult(t, a2, 2)
	for _, row := range a2.Rows {
		if row.Values[2] < 1 || row.Values[3] < 1 {
			t.Errorf("no maximal sets found at size %s: %v", row.X, row.Values)
		}
	}
}

func TestAblationGeneralizationSmall(t *testing.T) {
	a5 := ablationGeneralizationAt(context.Background(), tiny(), []int{30, 300})
	checkResult(t, a5, 2)
	for _, row := range a5.Rows {
		for j, v := range row.Values {
			if v < 0 || v > 1 {
				t.Errorf("rate out of range at %s %s: %v", row.X, a5.Columns[j], v)
			}
		}
	}
	// With 10× more training data the predicted/realized gap must not grow.
	gapSmall := a5.Rows[0].Values[0] - a5.Rows[0].Values[1]
	gapLarge := a5.Rows[1].Values[0] - a5.Rows[1].Values[1]
	if absf(gapLarge) > absf(gapSmall)+0.05 {
		t.Errorf("generalization gap grew: %.4f → %.4f", gapSmall, gapLarge)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestAblationTextSmall(t *testing.T) {
	a6 := ablationTextAt(context.Background(), tiny(), []int{8, 12})
	checkResult(t, a6, 2)
	for _, row := range a6.Rows {
		greedySat, exactSat := row.Values[2], row.Values[3]
		if !math.IsNaN(exactSat) && greedySat > exactSat+1e-9 {
			t.Errorf("greedy beats exact at %s keywords", row.X)
		}
	}
}

func TestAblationIPvsILPSmall(t *testing.T) {
	a7 := ablationIPvsILPAt(context.Background(), tiny(), []int{40, 80})
	checkResult(t, a7, 2)
	for _, row := range a7.Rows {
		for j, v := range row.Values {
			if math.IsNaN(v) || v < 0 {
				t.Errorf("bad timing at %s %s: %v", row.X, a7.Columns[j], v)
			}
		}
	}
}
