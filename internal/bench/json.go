package bench

import (
	"encoding/json"
	"math"

	"standout/internal/obsv"
)

// jsonResult mirrors Result with JSON tags and nullable cells:
// encoding/json rejects NaN, so Missing measurements become null.
type jsonResult struct {
	Name       string                  `json:"name"`
	Title      string                  `json:"title"`
	XLabel     string                  `json:"x_label"`
	YLabel     string                  `json:"y_label"`
	Columns    []string                `json:"columns"`
	Rows       []jsonRow               `json:"rows"`
	Notes      []string                `json:"notes,omitempty"`
	CellTraces map[string]obsv.Summary `json:"cell_traces,omitempty"`
}

type jsonRow struct {
	X      string     `json:"x"`
	Values []*float64 `json:"values"`
}

func (r Result) toJSON() jsonResult {
	out := jsonResult{
		Name: r.Name, Title: r.Title,
		XLabel: r.XLabel, YLabel: r.YLabel,
		Columns: r.Columns, Notes: r.Notes,
		CellTraces: r.CellTraces,
	}
	for _, row := range r.Rows {
		jr := jsonRow{X: row.X, Values: make([]*float64, len(row.Values))}
		for i, v := range row.Values {
			if !math.IsNaN(v) {
				v := v
				jr.Values[i] = &v
			}
		}
		out.Rows = append(out.Rows, jr)
	}
	return out
}

// JSON renders the result for machine consumption (one figure).
func (r Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r.toJSON(), "", "  ")
}

// MarshalResultsJSON renders a run's results as one indented JSON array —
// the layout of the repository's BENCH_*.json files.
func MarshalResultsJSON(rs []Result) ([]byte, error) {
	out := make([]jsonResult, len(rs))
	for i, r := range rs {
		out[i] = r.toJSON()
	}
	return json.MarshalIndent(out, "", "  ")
}
