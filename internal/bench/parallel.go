package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/fault"
	"standout/internal/gen"
)

// parallelWorkerCounts are the columns of the Parallel experiment, after the
// plain sequential-loop baseline.
var parallelWorkerCounts = []int{1, 2, 4, 8}

// Parallel measures the parallel solving engine: each row is one workload,
// each column one worker count, plus a "seq" column running the same solves
// in a plain loop with no scheduler at all (the pre-engine baseline — the
// 1-worker column is expected to sit within noise of it) and the 8-worker
// speedup over seq. Solutions are bit-identical across every column; the
// differential determinism suite in internal/core pins that, so this
// experiment only reports time.
//
// CPU-bound rows can only speed up with real cores (see the host_cpus note
// emitted with the result). The "batch, 1ms simulated I/O per tuple" row is
// latency-bound instead — each tuple sleeps through a deterministic injected
// delay at the core.batch.tuple fault site, standing in for the per-item
// network or disk stall of a serving deployment — so overlapping the waits
// speeds it up on any machine, which is the property the row certifies.
func Parallel(cfg Config) Result { return ParallelContext(context.Background(), cfg) }

// ParallelContext is Parallel under a context; see All for cancellation
// semantics.
func ParallelContext(ctx context.Context, cfg Config) Result {
	cfg = cfg.withDefaults()
	logSize, ntuples := 4000, 32
	if cfg.Quick {
		logSize, ntuples = 1000, 12
	}
	tab := gen.Cars(cfg.Seed, cfg.CarsN)
	log := gen.SyntheticWorkload(tab.Schema, cfg.Seed+1, logSize, gen.WorkloadOptions{})
	tuples := gen.PickTuples(tab, cfg.Seed+2, ntuples)
	const m = 4

	res := Result{
		Name:   "Parallel",
		Title:  fmt.Sprintf("Parallel engine scaling (%d queries, %d tuples, m = %d)", logSize, ntuples, m),
		XLabel: "workload", YLabel: "seconds per run",
		Columns: []string{"seq", "w=1", "w=2", "w=4", "w=8", "speedup@8"},
		Notes: []string{
			fmt.Sprintf("host_cpus=%d GOMAXPROCS=%d — CPU-bound rows cannot beat ~1x without real cores; the simulated-I/O row is latency-bound and scales anywhere", runtime.NumCPU(), runtime.GOMAXPROCS(0)),
			"identical solutions at every worker count (determinism suite, DESIGN.md §11)",
		},
	}

	// Each workload provides the sequential-loop baseline and the solve at a
	// worker count; both return false on error/cancellation (missing cell).
	type workload struct {
		label string
		seq   func(ctx context.Context) bool
		par   func(ctx context.Context, workers int) bool
	}

	// The sequential batch baseline replays exactly what one batch worker
	// does — a fresh prepared index, then one solve per tuple through it —
	// with no scheduler in the loop. That keeps the seq and w=1 columns
	// measuring the same work, so their gap is the engine's overhead alone.
	batchSeq := func(build func(w int) core.Solver, batch []bitvec.Vector) func(context.Context) bool {
		return func(ctx context.Context) bool {
			p, err := core.PrepareLogContext(ctx, log)
			if err != nil {
				return false
			}
			s := build(1)
			for _, tu := range batch {
				if _, err := p.SolveContext(ctx, s, tu, m); err != nil {
					return false
				}
			}
			return true
		}
	}
	batchPar := func(build func(w int) core.Solver, batch []bitvec.Vector) func(context.Context, int) bool {
		return func(ctx context.Context, w int) bool {
			_, _, err := core.SolveBatchContext(ctx, build(1), log, batch, m, w)
			return err == nil
		}
	}

	// Single-solve rows parallelize inside one solve instead of across
	// tuples: a handful of the heaviest instances, solved back to back.
	heavy := tuples
	if len(heavy) > 4 {
		heavy = heavy[:4]
	}
	singleSeq := func(build func(w int) core.Solver) func(context.Context) bool {
		return func(ctx context.Context) bool {
			s := build(0)
			for _, tu := range heavy {
				if _, err := s.SolveContext(ctx, core.Instance{Log: log, Tuple: tu, M: m}); err != nil {
					return false
				}
			}
			return true
		}
	}
	singlePar := func(build func(w int) core.Solver) func(context.Context, int) bool {
		return func(ctx context.Context, w int) bool {
			s := build(w)
			for _, tu := range heavy {
				if _, err := s.SolveContext(ctx, core.Instance{Log: log, Tuple: tu, M: m}); err != nil {
					return false
				}
			}
			return true
		}
	}

	greedy := func(int) core.Solver { return core.ConsumeAttrCumul{} }
	brute := func(w int) core.Solver { return core.BruteForce{Workers: w} }
	ilp := func(w int) core.Solver { return core.ILP{Timeout: cfg.ILPTimeout, Workers: w} }
	mfi := func(w int) core.Solver { return core.MaxFreqItemSets{Backend: core.BackendExactDFS, Workers: w} }

	// The latency-bound workload: every tuple solve stalls 1ms at the batch
	// fault site before the (cheap) greedy solve, like a per-item RPC would.
	ioCtx := func(parent context.Context) context.Context {
		inj := fault.New(cfg.Seed, fault.Rule{
			Site:  "core.batch.tuple",
			Kind:  fault.KindDelay,
			Delay: time.Millisecond,
		})
		return fault.WithInjector(parent, inj)
	}
	ioSeq := func(ctx context.Context) bool {
		_, _, err := core.SolveBatchContext(ioCtx(ctx), greedy(1), log, tuples, m, 1)
		return err == nil
	}
	ioPar := func(ctx context.Context, w int) bool {
		_, _, err := core.SolveBatchContext(ioCtx(ctx), greedy(1), log, tuples, m, w)
		return err == nil
	}

	// mfi-exact is orders of magnitude heavier per solve than the rest; a
	// small slice of the batch keeps the row's runtime in line with the
	// others without changing what it measures.
	mfiBatch := tuples
	if len(mfiBatch) > 4 {
		mfiBatch = mfiBatch[:4]
	}
	workloads := []workload{
		{"batch, greedy (CPU-bound)", batchSeq(greedy, tuples), batchPar(greedy, tuples)},
		{fmt.Sprintf("batch, mfi-exact ×%d tuples (CPU-bound)", len(mfiBatch)), batchSeq(mfi, mfiBatch), batchPar(mfi, mfiBatch)},
		{"single solve, bruteforce", singleSeq(brute), singlePar(brute)},
		{"single solve, ilp", singleSeq(ilp), singlePar(ilp)},
		{"batch, 1ms simulated I/O per tuple", ioSeq, ioPar},
	}

	timeRun := func(f func() bool) (float64, bool) {
		start := time.Now()
		ok := f()
		return time.Since(start).Seconds(), ok
	}

	for _, wl := range workloads {
		row := Row{X: wl.label, Values: make([]float64, len(res.Columns))}
		for i := range row.Values {
			row.Values[i] = Missing
		}
		if sec, ok := timeRun(func() bool { return wl.seq(ctx) }); ok {
			row.Values[0] = sec
		}
		for i, w := range parallelWorkerCounts {
			w := w
			if sec, ok := timeRun(func() bool { return wl.par(ctx, w) }); ok {
				row.Values[1+i] = sec
			}
		}
		if seq, w8 := row.Values[0], row.Values[len(parallelWorkerCounts)]; !math.IsNaN(seq) && !math.IsNaN(w8) && w8 > 0 {
			row.Values[len(res.Columns)-1] = seq / w8
		}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}
