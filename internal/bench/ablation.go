package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"standout/internal/core"
	"standout/internal/gen"
	"standout/internal/itemsets"
	"standout/internal/sim"
	"standout/internal/text"
)

// Ablation experiments beyond the paper's figures, for the design choices
// DESIGN.md calls out: the two-phase walk versus the bottom-up walk of [11]
// versus exact DFS mining, and the adaptive-threshold initialization.

// AblationWalks compares the three mining backends inside the full
// MaxFreqItemSets solver across query-log sizes (cars schema, synthetic
// workload, m = 5). The paper's §IV.C argument — the two-phase walk stays
// near the top of the dense lattice while the bottom-up walk traverses many
// more levels — shows up as the growing gap between the walk columns.
func AblationWalks(cfg Config) Result {
	return AblationWalksContext(context.Background(), cfg)
}

// AblationWalksContext is AblationWalks under a context.
func AblationWalksContext(ctx context.Context, cfg Config) Result {
	return ablationWalksAt(ctx, cfg, []int{250, 500, 1000, 2000})
}

func ablationWalksAt(ctx context.Context, cfg Config, sizes []int) Result {
	cfg = cfg.withDefaults()
	// Exact DFS mining is excluded here: on tuples with many options the
	// projected lattice makes complete mining exponential (the whole reason
	// §IV.C walks instead); A2 measures exact mining under control and the
	// itemsets tests verify walk-vs-exact agreement.
	backends := []core.MiningBackend{
		core.BackendTwoPhaseWalk, core.BackendBottomUpWalk,
	}
	res := Result{
		Name:   "Ablation A1",
		Title:  "MaxFreqItemSets walk backends (the paper's two-phase vs bottom-up [11]), synthetic workload, m = 5",
		XLabel: "queries", YLabel: "seconds per tuple",
	}
	for _, b := range backends {
		res.Columns = append(res.Columns, b.String())
	}
	const m = 5
	for _, size := range sizes {
		setup := carsSetup(cfg, true, size)
		row := Row{X: fmt.Sprintf("%d", size)}
		for _, b := range backends {
			s := core.MaxFreqItemSets{Backend: b, Seed: cfg.Seed}
			secs, _, ok := measure(ctx, cfg, &res, row.X, b.String(), s, setup, m)
			if !ok {
				secs = Missing
			}
			row.Values = append(row.Values, secs)
		}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}

// AblationWalkLevels isolates the raw miners: walks per second and lattice
// levels traversed per walk on the dense complement of a synthetic log,
// quantifying Fig 3's down/up argument directly.
func AblationWalkLevels(cfg Config) Result {
	return AblationWalkLevelsContext(context.Background(), cfg)
}

// AblationWalkLevelsContext is AblationWalkLevels under a context.
func AblationWalkLevelsContext(ctx context.Context, cfg Config) Result {
	return ablationWalkLevelsAt(ctx, cfg, []int{250, 500, 1000, 2000})
}

func ablationWalkLevelsAt(ctx context.Context, cfg Config, sizes []int) Result {
	cfg = cfg.withDefaults()
	tab := gen.Cars(cfg.Seed, cfg.CarsN)
	// Fixed walk budget: full-width dense complements can hold enormous
	// numbers of maximal sets (complete mining — walked or exact — is
	// hopeless there, which is §IV.C's point), so this ablation measures
	// throughput and discovery yield of the two walks under an equal budget:
	// Fig 3's claim is that the top-down two-phase walk reaches maximal sets
	// in fewer lattice steps than the bottom-up walk of [11].
	const walkBudget = 1500
	res := Result{
		Name:   "Ablation A2",
		Title:  fmt.Sprintf("Raw mining on the dense complement: %d walks each (threshold = 1%% of log)", walkBudget),
		XLabel: "queries",
		YLabel: "seconds / maximal sets found",
		Columns: []string{
			"two-phase s", "bottom-up s",
			"two-phase found", "bottom-up found",
		},
	}
	walkOpts := func() itemsets.WalkOptions {
		return itemsets.WalkOptions{
			MaxIters: walkBudget, MinIters: walkBudget, MinConfirm: 1,
			Rng: rand.New(rand.NewSource(cfg.Seed)),
		}
	}
	for _, size := range sizes {
		log := gen.SyntheticWorkload(tab.Schema, cfg.Seed+1, size, gen.WorkloadOptions{})
		miner := itemsets.NewMiner(log.AsTable().Complement())
		thr := size / 100
		if thr < 1 {
			thr = 1
		}
		row := Row{X: fmt.Sprintf("%d", size)}

		start := time.Now()
		two, twoErr := miner.MaximalRandomWalkContext(ctx, thr, walkOpts())
		twoTime := time.Since(start).Seconds()

		start = time.Now()
		bottom, bottomErr := miner.MaximalRandomWalkBottomUpContext(ctx, thr, walkOpts())
		bottomTime := time.Since(start).Seconds()

		if twoErr != nil || bottomErr != nil {
			row.Values = []float64{Missing, Missing, Missing, Missing}
		} else {
			row.Values = append(row.Values, twoTime, bottomTime,
				float64(len(two)), float64(len(bottom)))
		}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}

// AblationThreshold sweeps the adaptive-threshold initialization of §IV.C:
// starting too high wastes halving rounds, starting at 1 explodes the
// frequent-itemset space. Cars schema, real-workload surrogate, m = 5.
func AblationThreshold(cfg Config) Result {
	return AblationThresholdContext(context.Background(), cfg)
}

// AblationThresholdContext is AblationThreshold under a context.
func AblationThresholdContext(ctx context.Context, cfg Config) Result {
	cfg = cfg.withDefaults()
	setup := carsSetup(cfg, false, gen.RealWorkloadSize)
	res := Result{
		Name:    "Ablation A3",
		Title:   "Adaptive-threshold initialization for MaxFreqItemSets, real workload, m = 5",
		XLabel:  "initial threshold",
		YLabel:  "seconds per tuple / final threshold",
		Columns: []string{"seconds", "final threshold", "satisfied"},
	}
	size := setup.log.Size()
	const m = 5
	for _, init := range []int{size, size / 2, size / 8, size / 32, 1} {
		if init < 1 {
			init = 1
		}
		s := core.MaxFreqItemSets{
			Backend: core.BackendTwoPhaseWalk, Seed: cfg.Seed, InitialThreshold: init,
		}
		start := time.Now()
		totalSat, lastThr := 0, 0
		okAll := true
		for _, tuple := range setup.tuples {
			sol, err := s.SolveContext(ctx, core.Instance{Log: setup.log, Tuple: tuple, M: m})
			if err != nil {
				okAll = false
				break
			}
			totalSat += sol.Satisfied
			lastThr = sol.Stats.Threshold
		}
		row := Row{X: fmt.Sprintf("%d", init)}
		if !okAll {
			row.Values = []float64{Missing, Missing, Missing}
		} else {
			row.Values = []float64{
				time.Since(start).Seconds() / float64(len(setup.tuples)),
				float64(lastThr),
				float64(totalSat) / float64(len(setup.tuples)),
			}
		}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}

// AblationGreedyGap quantifies how far each greedy heuristic sits from the
// optimum across budgets on the real workload — the quality counterpart of
// the paper's Fig 7 expressed as a ratio.
func AblationGreedyGap(cfg Config) Result {
	return AblationGreedyGapContext(context.Background(), cfg)
}

// AblationGreedyGapContext is AblationGreedyGap under a context.
func AblationGreedyGapContext(ctx context.Context, cfg Config) Result {
	cfg = cfg.withDefaults()
	setup := carsSetup(cfg, false, gen.RealWorkloadSize)
	optimal := core.MaxFreqItemSets{Backend: core.BackendTwoPhaseWalk, Seed: cfg.Seed}
	greedy := []core.Solver{core.ConsumeAttr{}, core.ConsumeAttrCumul{}, core.ConsumeQueries{}}
	res := Result{
		Name:   "Ablation A4",
		Title:  "Greedy approximation ratio (greedy satisfied / optimal satisfied), real workload",
		XLabel: "m", YLabel: "ratio",
	}
	for _, s := range greedy {
		res.Columns = append(res.Columns, shortName(s))
	}
	for _, m := range mRange {
		row := Row{X: fmt.Sprintf("%d", m)}
		_, opt, ok := measure(ctx, cfg, &res, row.X, "Optimal", optimal, setup, m)
		for _, s := range greedy {
			_, q, ok2 := measure(ctx, cfg, &res, row.X, shortName(s), s, setup, m)
			if !ok || !ok2 || opt == 0 {
				row.Values = append(row.Values, Missing)
				continue
			}
			row.Values = append(row.Values, q/opt)
		}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}

// Ablations runs every ablation in order.
func Ablations(cfg Config) []Result { return AblationsContext(context.Background(), cfg) }

// AblationsContext runs every ablation in order under a context, with the
// same fail-fast-to-missing cancellation semantics as AllContext.
func AblationsContext(ctx context.Context, cfg Config) []Result {
	return []Result{
		AblationWalksContext(ctx, cfg), AblationWalkLevelsContext(ctx, cfg),
		AblationThresholdContext(ctx, cfg), AblationGreedyGapContext(ctx, cfg),
		AblationGeneralizationContext(ctx, cfg), AblationTextContext(ctx, cfg),
		AblationIPvsILPContext(ctx, cfg),
	}
}

// AblationGeneralization runs the marketplace simulation of package sim: how
// well does log-optimized attribute selection generalize to future buyers
// drawn from the same preference model? Quantifies the paper's §VIII caveat
// that a query log is only an approximate surrogate of user preferences.
func AblationGeneralization(cfg Config) Result {
	return AblationGeneralizationContext(context.Background(), cfg)
}

// AblationGeneralizationContext is AblationGeneralization under a context.
// The simulation sweep itself is not context-aware; cancellation is observed
// between solver calls through the solver passed to sim.Sweep.
func AblationGeneralizationContext(ctx context.Context, cfg Config) Result {
	return ablationGeneralizationAt(ctx, cfg, []int{20, 50, 100, 200, 500, 1000, 2000})
}

func ablationGeneralizationAt(ctx context.Context, cfg Config, sizes []int) Result {
	cfg = cfg.withDefaults()
	tab := gen.Cars(cfg.Seed, cfg.CarsN)
	model := sim.NewCarBuyerModel(tab)
	tuples := gen.PickTuples(tab, cfg.Seed+2, cfg.Tuples)
	res := Result{
		Name:    "Ablation A5",
		Title:   "Generalization: predicted vs realized visibility rate, m = 5",
		XLabel:  "training queries",
		YLabel:  "visibility rate",
		Columns: []string{"predicted (log)", "realized (future)", "naive first-5"},
	}
	if err := ctx.Err(); err != nil {
		res.Notes = append(res.Notes, "interrupted before the sweep: "+err.Error())
		return res
	}
	points, err := sim.Sweep(sim.Config{
		TestQueries: 5000, M: 5, Seed: cfg.Seed + 7,
		// The walk backend keeps large training logs tractable; A1 shows it
		// agrees with exact mining on these instances.
		Solver: core.MaxFreqItemSets{Backend: core.BackendTwoPhaseWalk, Seed: cfg.Seed},
	}, model, tuples, sizes)
	if err != nil {
		res.Notes = append(res.Notes, "error: "+err.Error())
		return res
	}
	for _, p := range points {
		res.Rows = append(res.Rows, Row{
			X:      fmt.Sprintf("%d", p.TrainQueries),
			Values: []float64{p.Predicted, p.Realized, p.Naive},
		})
	}
	return res
}

// AblationText measures the §V text-variant claim that greedy algorithms are
// the only feasible ones at keyword scale: keyword-selection time and
// quality (vs exact where exact is still tractable) as the ad's keyword
// count grows.
func AblationText(cfg Config) Result {
	return AblationTextContext(context.Background(), cfg)
}

// AblationTextContext is AblationText under a context.
func AblationTextContext(ctx context.Context, cfg Config) Result {
	return ablationTextAt(ctx, cfg, []int{10, 15, 20, 40, 80, 160})
}

func ablationTextAt(ctx context.Context, cfg Config, adLens []int) Result {
	cfg = cfg.withDefaults()
	const vocab = 2000
	const m = 5
	queries := gen.KeywordWorkload(cfg.Seed+1, 2000, vocab)
	res := Result{
		Name:    "Ablation A6",
		Title:   "Text variant: keyword selection vs ad vocabulary size, m = 5, 2000-query log",
		XLabel:  "ad keywords",
		YLabel:  "seconds / satisfied",
		Columns: []string{"greedy s", "exact s", "greedy sat", "exact sat"},
		Notes: []string{
			"exact = MaxFreqItemSets(DFS); skipped (\"-\") beyond 20 keywords where §V deems exact infeasible",
		},
	}
	for _, adLen := range adLens {
		ads := gen.TextAds(cfg.Seed+2+int64(adLen), 1, vocab, adLen)
		ad := ads[0]
		row := Row{X: fmt.Sprintf("%d", len(ad))}

		start := time.Now()
		_, gSat, err := text.SelectKeywordsContext(ctx, core.ConsumeAttr{}, queries, ad, m)
		gTime := time.Since(start).Seconds()
		if err != nil {
			row.Values = []float64{Missing, Missing, Missing, Missing}
			res.Rows = append(res.Rows, row)
			continue
		}

		eTime, eSat := Missing, Missing
		if len(ad) <= 20 {
			start = time.Now()
			_, sat, err := text.SelectKeywordsContext(
				ctx, core.MaxFreqItemSets{Backend: core.BackendExactDFS, Workers: cfg.Workers}, queries, ad, m)
			if err == nil {
				eTime = time.Since(start).Seconds()
				eSat = float64(sat)
			}
		}
		row.Values = []float64{gTime, eTime, float64(gSat), eSat}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}

// AblationIPvsILP compares the paper's two exact integer-programming routes
// (§IV.B): direct branch-and-bound on the nonlinear product formulation (IP)
// versus the linearized program solved over LP relaxations (ILP). The paper
// argues "the integer linear formulation is particularly attractive"; this
// ablation measures by how much, and where the combinatorial IP bound
// actually wins.
func AblationIPvsILP(cfg Config) Result {
	return AblationIPvsILPContext(context.Background(), cfg)
}

// AblationIPvsILPContext is AblationIPvsILP under a context.
func AblationIPvsILPContext(ctx context.Context, cfg Config) Result {
	return ablationIPvsILPAt(ctx, cfg, []int{100, 250, 500, 1000})
}

func ablationIPvsILPAt(ctx context.Context, cfg Config, sizes []int) Result {
	cfg = cfg.withDefaults()
	ip := core.IP{}
	ilp := core.ILP{Timeout: cfg.ILPTimeout, Workers: cfg.Workers}
	res := Result{
		Name:    "Ablation A7",
		Title:   "IP (direct branch-and-bound) vs ILP (LP relaxation), synthetic workload, m = 5",
		XLabel:  "queries",
		YLabel:  "seconds per tuple",
		Columns: []string{"IP", "ILP"},
	}
	const m = 5
	for _, size := range sizes {
		setup := carsSetup(cfg, true, size)
		row := Row{X: fmt.Sprintf("%d", size)}
		for j, s := range []core.Solver{ip, ilp} {
			secs, _, ok := measure(ctx, cfg, &res, row.X, res.Columns[j], s, setup, m)
			if !ok {
				secs = Missing
			}
			row.Values = append(row.Values, secs)
		}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}
