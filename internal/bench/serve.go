package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"time"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/fault"
	"standout/internal/gen"
	"standout/internal/obsv"
	"standout/internal/serve"
)

// serveCell is one load point: a client count and a fault toggle.
type serveCell struct {
	clients int
	faults  bool
}

// ServeLoad benchmarks the hardened serving layer; see ServeLoadContext.
func ServeLoad(cfg Config) Result { return ServeLoadContext(context.Background(), cfg) }

// ServeLoadContext drives a closed-loop load generator against a real
// loopback HTTP instance of the serve package: at each cell, N clients each
// keep exactly one /solve request in flight for a fixed window, with and
// without the chaos fault injector, at two concurrency levels straddling the
// admission capacity. Columns report throughput, latency quantiles of
// successful solves, and the shed / degraded fractions — the numbers behind
// the "slow but alive" claim of DESIGN.md §10 (BENCH_serve.json).
func ServeLoadContext(ctx context.Context, cfg Config) Result {
	cfg = cfg.withDefaults()
	res := Result{
		Name:    "serve",
		Title:   "Serving layer under closed-loop load (loopback HTTP, mfi-exact solves)",
		XLabel:  "load",
		YLabel:  "throughput / latency / shed",
		Columns: []string{"throughput_rps", "p50_ms", "p99_ms", "shed_rate", "degraded_rate"},
		Notes: []string{
			"closed loop: each client holds one request in flight; server capacity 4 solves + 8 queued",
			"faults: seeded injector (delays, errors, panics, forced prep staleness) on every layer",
		},
	}

	carsN := cfg.CarsN
	if carsN > 2000 {
		carsN = 2000 // latency benchmark: the schema, not the table size, is under test
	}
	tab := gen.Cars(cfg.Seed, carsN)
	log := gen.RealWorkload(tab, cfg.Seed+1, 400)
	tuples := gen.PickTuples(tab, cfg.Seed+2, 32)

	window := 2 * time.Second
	if cfg.Quick {
		window = 400 * time.Millisecond
	}

	cells := []serveCell{
		{4, false}, {4, true},
		{32, false}, {32, true},
	}
	for _, cell := range cells {
		if ctx.Err() != nil {
			noteInterrupted(ctx, &res)
			break
		}
		row, err := serveLoadCell(ctx, cfg, log, tuples, cell, window)
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("%s: %v", serveCellLabel(cell), err))
			row = Row{X: serveCellLabel(cell), Values: []float64{Missing, Missing, Missing, Missing, Missing}}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func serveCellLabel(c serveCell) string {
	if c.faults {
		return fmt.Sprintf("%d clients + faults", c.clients)
	}
	return fmt.Sprintf("%d clients", c.clients)
}

// serveBenchInjector mirrors the chaos-test rules at lower rates, so faulty
// cells measure recovery cost rather than a wall of injected failures.
func serveBenchInjector(seed int64) *fault.Injector {
	return fault.New(seed,
		fault.Rule{Site: "serve.solve", Every: 31, Kind: fault.KindPanic, Msg: "bench chaos"},
		fault.Rule{Site: "serve.solve", Every: 11, Offset: 4, Kind: fault.KindDelay, Delay: time.Millisecond, Jitter: 2 * time.Millisecond},
		fault.Rule{Site: "core.prep.stale", Every: 41, Kind: fault.KindError, Msg: "forced staleness"},
	)
}

// serveLoadCell measures one (clients, faults) point against a fresh server.
func serveLoadCell(ctx context.Context, cfg Config, log *dataset.QueryLog, tuples []bitvec.Vector, cell serveCell, window time.Duration) (Row, error) {
	scfg := serve.Config{
		Log:           log,
		MaxConcurrent: 4,
		MaxQueue:      8,
		ExactBudget:   50 * time.Millisecond,
		MFIBudget:     2 * time.Millisecond,
		GreedyReserve: time.Millisecond,
		Seed:          cfg.Seed,
		Registry:      obsv.NewRegistry(),
	}
	if cell.faults {
		scfg.Injector = serveBenchInjector(cfg.Seed)
	}
	srv, err := serve.New(scfg)
	if err != nil {
		return Row{}, err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Row{}, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/solve"

	type tally struct {
		lat                  []time.Duration
		ok, shed, degr, errs int64
	}
	tallies := make([]tally, cell.clients)
	cctx, cancel := context.WithTimeout(ctx, window)
	defer cancel()

	done := make(chan int, cell.clients)
	for c := 0; c < cell.clients; c++ {
		go func(c int) {
			defer func() { done <- c }()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			client := &http.Client{Timeout: 5 * time.Second}
			ty := &tallies[c]
			for cctx.Err() == nil {
				body, _ := json.Marshal(map[string]any{
					"tuple":      tuples[rng.Intn(len(tuples))].String(),
					"m":          4 + rng.Intn(3),
					"algo":       "mfi-exact",
					"timeout_ms": 250,
				})
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					ty.errs++
					continue
				}
				var sr struct {
					Degraded bool `json:"degraded"`
				}
				_ = json.NewDecoder(resp.Body).Decode(&sr)
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ty.ok++
					ty.lat = append(ty.lat, time.Since(t0))
					if sr.Degraded {
						ty.degr++
					}
				case http.StatusTooManyRequests:
					ty.shed++
				default:
					ty.errs++
				}
			}
		}(c)
	}
	for range tallies {
		<-done
	}

	var all []time.Duration
	var ok, shed, degr, errs int64
	for i := range tallies {
		all = append(all, tallies[i].lat...)
		ok += tallies[i].ok
		shed += tallies[i].shed
		degr += tallies[i].degr
		errs += tallies[i].errs
	}
	total := ok + shed + errs
	if total == 0 {
		return Row{}, fmt.Errorf("no requests completed in %v window", window)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		if len(all) == 0 {
			return Missing
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	vals := []float64{
		float64(ok) / window.Seconds(),
		q(0.50),
		q(0.99),
		float64(shed) / float64(total),
		float64(degr) / float64(total),
	}
	return Row{X: serveCellLabel(cell), Values: vals}, nil
}
