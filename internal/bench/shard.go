package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"time"

	"standout/internal/bitvec"
	"standout/internal/compact"
	"standout/internal/dataset"
	"standout/internal/fault"
	"standout/internal/gen"
	"standout/internal/obsv"
	"standout/internal/serve"
	"standout/internal/shard"
)

// shardCell is one load point: a client count and the hedging toggle.
type shardCell struct {
	clients int
	hedge   bool
}

// ShardLoad benchmarks the sharded scatter-gather deployment; see
// ShardLoadContext.
func ShardLoad(cfg Config) Result { return ShardLoadContext(context.Background(), cfg) }

// ShardLoadContext drives a closed-loop load generator against a real
// loopback deployment of the sharded serving layer: four HTTP shards (each an
// internal/serve instance over one partition of a multi-million-query
// workload) behind one coordinator. A seeded shard.slow delay fault makes a
// few percent of shard calls an order of magnitude slower than the rest, so
// the hedging-on and hedging-off cells straddle exactly the tail that hedged
// requests are meant to cut; a rare shard.solve error fault exercises the
// retry path without tripping breakers. Columns report throughput, latency
// quantiles of successful solves, and the shed / partial / hedge fractions —
// the numbers behind DESIGN.md §15 (BENCH_shard.json).
func ShardLoadContext(ctx context.Context, cfg Config) Result {
	cfg = cfg.withDefaults()
	res := Result{
		Name:    "shard",
		Title:   "Sharded scatter-gather under closed-loop load (4 loopback HTTP shards, greedy solves)",
		XLabel:  "load",
		YLabel:  "throughput / latency / shed",
		Columns: []string{"throughput_rps", "p50_ms", "p99_ms", "shed_rate", "partial_rate", "hedge_rate"},
		Notes: []string{
			"closed loop: each client holds one request in flight; coordinator capacity 8 solves + 16 queued",
			"faults: seeded shard.slow delay (~0.5% of shard calls +250ms; ~1 in 9 solves) and rare shard.solve errors (retried)",
			"hedge_rate: hedged shard calls per successful solve; no-hedge cells pay the delay fault in p99",
		},
	}

	carsN := cfg.CarsN
	if carsN > 2000 {
		carsN = 2000 // latency benchmark: the schema, not the table size, is under test
	}
	logSize := 2 << 20 // ~2.1M raw queries across the shards
	window := 2 * time.Second
	if cfg.Quick {
		logSize = 20000
		window = 400 * time.Millisecond
	}
	tab := gen.Cars(cfg.Seed, carsN)
	raw := gen.RealWorkload(tab, cfg.Seed+1, logSize)
	// Weight-preserving compaction (internal/compact): duplicate queries fold
	// into weighted entries, so every count — and therefore every solve — is
	// bit-identical to the raw multi-million-entry log while shard scans stay
	// interactive. This is exactly how a production shard would serve such a
	// log.
	log, cstats := compact.Compact(raw)
	tuples := gen.PickTuples(tab, cfg.Seed+2, 32)
	parts, err := shard.Partition(ctx, log, 4)
	if err != nil {
		res.Notes = append(res.Notes, fmt.Sprintf("partition: %v", err))
		noteInterrupted(ctx, &res)
		return res
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"workload: %d raw queries over %d attributes, compacted %.0fx to %d weighted entries, 4 partitions",
		raw.Size(), log.Width(), 1/cstats.Ratio(), log.Size()))

	cells := []shardCell{
		{4, true}, {4, false},
		{32, true}, {32, false},
	}
	for _, cell := range cells {
		if ctx.Err() != nil {
			noteInterrupted(ctx, &res)
			break
		}
		row, err := shardLoadCell(ctx, cfg, log.Schema, parts, tuples, cell, window)
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("%s: %v", shardCellLabel(cell), err))
			row = Row{X: shardCellLabel(cell), Values: []float64{Missing, Missing, Missing, Missing, Missing, Missing}}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func shardCellLabel(c shardCell) string {
	if c.hedge {
		return fmt.Sprintf("%d clients + hedging", c.clients)
	}
	return fmt.Sprintf("%d clients no hedge", c.clients)
}

// shardBenchInjector is the coordinator-side fault mix: an occasional slow
// shard call (the tail hedging exists to cut — its hedge lands on a later
// fault-counter tick and stays fast) and a rare transient error absorbed by
// the retry budget without opening any breaker.
func shardBenchInjector(seed int64) *fault.Injector {
	return fault.New(seed,
		fault.Rule{Site: "shard.slow", Every: 211, Kind: fault.KindDelay, Delay: 250 * time.Millisecond, Jitter: 50 * time.Millisecond},
		fault.Rule{Site: "shard.solve", Every: 101, Offset: 7, Kind: fault.KindError, Msg: "bench transient"},
	)
}

// shardLoadCell measures one (clients, hedging) point against a fresh
// deployment: four serve instances on loopback listeners, one coordinator
// server on a fifth.
func shardLoadCell(ctx context.Context, cfg Config, schema *dataset.Schema, parts []*dataset.QueryLog, tuples []bitvec.Vector, cell shardCell, window time.Duration) (Row, error) {
	backends := make([]shard.Backend, len(parts))
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for i, p := range parts {
		ss, err := serve.New(serve.Config{
			Log:           p,
			MaxConcurrent: 64, // shards must absorb the coordinator's full fan-out
			MaxQueue:      256,
			Registry:      obsv.NewRegistry(),
		})
		if err != nil {
			return Row{}, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ss.Close()
			return Row{}, err
		}
		hs := &http.Server{Handler: ss.Handler()}
		go func() { _ = hs.Serve(ln) }()
		closers = append(closers, func() { hs.Close(); ss.Close() })
		backends[i] = shard.NewHTTP(fmt.Sprintf("s%d", i), "http://"+ln.Addr().String(), nil)
	}

	reg := obsv.NewRegistry()
	srv, err := shard.NewServer(shard.Config{
		Backends:      backends,
		Schema:        schema,
		Registry:      reg,
		MaxConcurrent: 8,
		MaxQueue:      16,
		ShardTimeout:  2 * time.Second,
		RetryBackoff:  time.Millisecond,
		HedgeAfter:    10 * time.Millisecond,
		DisableHedge:  !cell.hedge,
		Seed:          cfg.Seed,
		Injector:      shardBenchInjector(cfg.Seed),
	})
	if err != nil {
		return Row{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return Row{}, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	closers = append(closers, func() { hs.Close(); srv.Close() })
	url := "http://" + ln.Addr().String() + "/solve"

	type tally struct {
		lat                     []time.Duration
		ok, shed, partial, errs int64
	}
	tallies := make([]tally, cell.clients)
	cctx, cancel := context.WithTimeout(ctx, window)
	defer cancel()

	done := make(chan int, cell.clients)
	for c := 0; c < cell.clients; c++ {
		go func(c int) {
			defer func() { done <- c }()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			client := &http.Client{Timeout: 10 * time.Second}
			ty := &tallies[c]
			for cctx.Err() == nil {
				body, _ := json.Marshal(map[string]any{
					"tuple":      tuples[rng.Intn(len(tuples))].String(),
					"m":          3 + rng.Intn(3),
					"algo":       "greedy",
					"timeout_ms": 5000,
				})
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					ty.errs++
					continue
				}
				var sr struct {
					Partial bool `json:"partial"`
				}
				_ = json.NewDecoder(resp.Body).Decode(&sr)
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ty.ok++
					ty.lat = append(ty.lat, time.Since(t0))
					if sr.Partial {
						ty.partial++
					}
				case http.StatusTooManyRequests:
					ty.shed++
				default:
					ty.errs++
				}
			}
		}(c)
	}
	for range tallies {
		<-done
	}

	var all []time.Duration
	var ok, shed, partial, errs int64
	for i := range tallies {
		all = append(all, tallies[i].lat...)
		ok += tallies[i].ok
		shed += tallies[i].shed
		partial += tallies[i].partial
		errs += tallies[i].errs
	}
	total := ok + shed + errs
	if total == 0 {
		return Row{}, fmt.Errorf("no requests completed in %v window", window)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		if len(all) == 0 {
			return Missing
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	hedgeRate := 0.0
	if ok > 0 {
		// Get-or-create returns the coordinator's counter instance: the name is
		// already registered, so this reads (not resets) the live value.
		hedges := reg.Counter("standout_shard_hedges_total", "").Value()
		hedgeRate = float64(hedges) / float64(ok)
	}
	vals := []float64{
		float64(ok) / window.Seconds(),
		q(0.50),
		q(0.99),
		float64(shed) / float64(total),
		float64(partial) / float64(total),
		hedgeRate,
	}
	return Row{X: shardCellLabel(cell), Values: vals}, nil
}
