package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"standout/internal/compact"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/gen"
)

// Workload scale for the compaction/segmentation sweeps: a 10,000-entry log
// whose queries are drawn from a 1,000-query pool, the duplicate-heavy regime
// weighted compaction exists for. Quick shrinks both for CI.
const (
	compactBaseLog  = 10000
	compactDistinct = 1000
)

// CompactDelta measures incremental index maintenance: after appending k
// queries to an already-prepared log, how long does a full re-index take
// versus the segmented delta build (PrepareLogFrom: index only the k new
// queries, then size-tiered compaction)? Rows sweep k; the honest caveat is
// in the numbers themselves — the delta column includes the amortized
// compaction merges, so small k on an uncompacted tower occasionally pays a
// merge, and the speedup column is full/delta with both measured the same
// way over the same appends.
func CompactDelta(cfg Config) Result { return CompactDeltaContext(context.Background(), cfg) }

// CompactDeltaContext is CompactDelta under a context; see All for
// cancellation semantics.
func CompactDeltaContext(ctx context.Context, cfg Config) Result {
	cfg = cfg.withDefaults()
	base, reps := compactBaseLog, 5
	appends := []int{1, 8, 64, 512}
	if cfg.Quick {
		base, reps = 1500, 2
		appends = []int{1, 8, 64}
	}
	tab := gen.Cars(cfg.Seed, cfg.CarsN)
	full := gen.SyntheticWorkload(tab.Schema, cfg.Seed+1, base+appends[len(appends)-1], gen.WorkloadOptions{})

	prefix := dataset.NewQueryLog(full.Schema)
	for i := 0; i < base; i++ {
		if err := prefix.Append(full.Queries[i]); err != nil {
			panic(err)
		}
	}

	res := Result{
		Name: "CompactDelta",
		Title: fmt.Sprintf("Index maintenance after appending k queries to a %d-query prepared log: full re-index vs segmented delta build",
			base),
		XLabel: "appended queries k", YLabel: "seconds per rebuild",
		Columns: []string{"full rebuild", "delta build", "speedup"},
	}

	for _, k := range appends {
		if ctx.Err() != nil {
			break
		}
		extended := prefix.Extend()
		for i := base; i < base+k; i++ {
			if err := extended.AppendWeighted(full.Queries[i], 1); err != nil {
				panic(err)
			}
		}

		var fullSec, deltaSec float64
		ok := true
		for rep := 0; rep < reps && ok; rep++ {
			// Fresh prev each rep so the delta path always starts from the same
			// single-segment state rather than an ever-taller tower.
			prev, err := core.PrepareLogContext(ctx, prefix)
			if err != nil {
				ok = false
				break
			}
			start := time.Now()
			if _, err := core.PrepareLogContext(ctx, extended); err != nil {
				ok = false
				break
			}
			fullSec += time.Since(start).Seconds()

			start = time.Now()
			p, err := core.PrepareLogFromContext(ctx, prev, extended)
			if err != nil || !p.Delta() {
				ok = false // a silent full-rebuild fallback would fake the speedup
				break
			}
			deltaSec += time.Since(start).Seconds()
		}
		row := Row{X: fmt.Sprintf("%d", k)}
		if ok {
			fullSec /= float64(reps)
			deltaSec /= float64(reps)
			row.Values = []float64{fullSec, deltaSec, fullSec / deltaSec}
		} else {
			row.Values = []float64{Missing, Missing, Missing}
		}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}

// CompactSolve measures what weighted log compaction buys at solve time on a
// duplicate-heavy workload: each row is one solver timed over the same tuples
// against the raw log and against its compacted weighted equivalent (answers
// are identical — the differential suite pins that; only the log length
// differs). The title reports the fold ratio the workload actually achieved.
func CompactSolve(cfg Config) Result { return CompactSolveContext(context.Background(), cfg) }

// CompactSolveContext is CompactSolve under a context; see All for
// cancellation semantics.
func CompactSolveContext(ctx context.Context, cfg Config) Result {
	cfg = cfg.withDefaults()
	rawSize, distinct, ntuples := compactBaseLog, compactDistinct, 16
	if cfg.Quick {
		rawSize, distinct, ntuples = 1500, 150, 4
	}
	tab := gen.Cars(cfg.Seed, cfg.CarsN)
	pool := gen.SyntheticWorkload(tab.Schema, cfg.Seed+1, distinct, gen.WorkloadOptions{})
	r := rand.New(rand.NewSource(cfg.Seed + 2))
	raw := dataset.NewQueryLog(tab.Schema)
	for i := 0; i < rawSize; i++ {
		if err := raw.Append(pool.Queries[r.Intn(pool.Size())]); err != nil {
			panic(err)
		}
	}
	compacted, st := compact.Compact(raw)
	tuples := gen.PickTuples(tab, cfg.Seed+3, ntuples)

	res := Result{
		Name: "CompactSolve",
		Title: fmt.Sprintf("Solve time on a duplicate-heavy log, raw vs compacted-weighted (%d → %d entries, %.0f%% of raw, %d tuples, m = 5)",
			st.InputQueries, st.OutputQueries, 100*st.Ratio(), ntuples),
		XLabel: "solver", YLabel: "seconds for all tuples",
		Columns: []string{"raw", "compacted", "speedup"},
	}

	const m = 5
	timeAll := func(log *dataset.QueryLog, s core.Solver) (float64, bool) {
		start := time.Now()
		for _, tuple := range tuples {
			if _, err := s.SolveContext(ctx, core.Instance{Log: log, Tuple: tuple, M: m}); err != nil {
				return 0, false
			}
		}
		return time.Since(start).Seconds(), true
	}

	solvers := []struct {
		label string
		s     core.Solver
	}{
		{"MaxFreqItemSets", core.MaxFreqItemSets{Backend: core.BackendTwoPhaseWalk, Seed: cfg.Seed}},
		{"ConsumeAttr", core.ConsumeAttr{}},
		{"ConsumeAttrCumul", core.ConsumeAttrCumul{}},
		{"ConsumeQueries", core.ConsumeQueries{}},
	}
	for _, spec := range solvers {
		if ctx.Err() != nil {
			break
		}
		row := Row{X: spec.label}
		rawSec, okR := timeAll(raw, spec.s)
		compSec, okC := timeAll(compacted, spec.s)
		switch {
		case okR && okC:
			row.Values = []float64{rawSec, compSec, rawSec / compSec}
		case okR:
			row.Values = []float64{rawSec, Missing, Missing}
		case okC:
			row.Values = []float64{Missing, compSec, Missing}
		default:
			row.Values = []float64{Missing, Missing, Missing}
		}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}
