package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/estimate"
	"standout/internal/gen"
)

// estimateFamily is one generator family of the estimator sweep: a query log
// plus the tuples whose compressions get scored against it.
type estimateFamily struct {
	name   string
	log    *dataset.QueryLog
	tuples []bitvec.Vector
	ms     []int // budget per tuple, parallel to tuples
}

// Workload scale for the estimator sweep. The large size is where the
// estimator's log-free scoring has to pay off: the ISSUE's acceptance bar is
// a ≥10× speedup over the greedy baseline on these rows.
const (
	estimateSmallLog = 2000
	estimateLargeLog = 200000
)

// EstimateSweep measures the itemset+LP estimator; see EstimateSweepContext.
func EstimateSweep(cfg Config) Result { return EstimateSweepContext(context.Background(), cfg) }

// EstimateSweepContext measures the estimate solver (DESIGN.md §16) against
// the exact weighted Satisfied count across every generator family: uniform
// and attribute-skewed synthetic logs at small and large sizes, duplicate-
// weighted logs, the real-workload cars log, and the planted-clique
// adversarial instance. Each row scores the estimator's own kept set, so the
// certified interval is tested exactly where it is served: containment must
// be 100% (the soundness invariant the differential tests pin), the error
// quantiles report how tight the point estimate runs, and the timing columns
// compare one model-backed Estimate call — which touches neither the log nor
// the index — to one greedy ConsumeAttrCumul solve through the shared
// prepared index. Model build time is paid once per log generation and
// reported separately (BENCH_estimate.json).
func EstimateSweepContext(ctx context.Context, cfg Config) Result {
	cfg = cfg.withDefaults()
	res := Result{
		Name:    "estimate",
		Title:   "Itemset+LP estimator vs exact Satisfied and the greedy baseline, per generator family",
		XLabel:  "family",
		YLabel:  "timing / certified-interval quality",
		Columns: []string{"queries", "build_ms", "est_us", "greedy_us", "speedup", "contain_pct", "p50_err_pct", "p95_err_pct", "width_pct"},
		Notes: []string{
			"est_us is one Keep+Estimate call on a prebuilt model (no log, no index); greedy_us is one ConsumeAttrCumul solve through a shared prepared index",
			"errors are |point-exact|/max(1,exact) on the estimator's own kept set; contain_pct must be 100 (certified interval soundness)",
			"width_pct is the certified interval width relative to the log's total weight",
		},
	}

	reps := cfg.Tuples
	if reps > 24 {
		reps = 24
	}
	large := estimateLargeLog
	if cfg.Quick {
		large = 20000
		res.Notes = append(res.Notes, "quick run: large logs shrunk to 20000 queries")
	}

	for _, fam := range estimateFamilies(cfg, reps, large) {
		if ctx.Err() != nil {
			noteInterrupted(ctx, &res)
			break
		}
		row, err := estimateCell(ctx, fam)
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("%s: %v", fam.name, err))
			row = Row{X: fam.name, Values: missingValues(len(res.Columns))}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// estimateFamilies builds the sweep's workloads: every generator family the
// repository has, at the sizes where the estimator's trade-off shows.
func estimateFamilies(cfg Config, reps, large int) []estimateFamily {
	tab := gen.Cars(cfg.Seed, cfg.CarsN)
	schema := tab.Schema
	width := schema.Width()

	// Power-law attribute skew: the regime where dropped attributes overlap
	// heavily and the LP's joint constraints earn their keep.
	skew := make([]float64, width)
	for i := range skew {
		skew[i] = 1 / float64((i%width)+1)
	}

	randomTuples := func(seedOff int64) ([]bitvec.Vector, []int) {
		tuples := make([]bitvec.Vector, 0, reps)
		ms := make([]int, 0, reps)
		for i := 0; len(tuples) < reps; i++ {
			t := gen.RandomTuple(schema, cfg.Seed+seedOff+int64(i), 0.5)
			if t.Count() < 2 {
				continue
			}
			tuples = append(tuples, t)
			ms = append(ms, 1+t.Count()/2)
		}
		return tuples, ms
	}

	var fams []estimateFamily
	for _, size := range []int{estimateSmallLog, large} {
		uni := gen.SyntheticWorkload(schema, cfg.Seed+1, size, gen.WorkloadOptions{})
		tuples, ms := randomTuples(100)
		fams = append(fams, estimateFamily{fmt.Sprintf("uniform-%d", size), uni, tuples, ms})

		sk := gen.SyntheticWorkload(schema, cfg.Seed+2, size, gen.WorkloadOptions{AttrWeights: skew})
		tuples, ms = randomTuples(200)
		fams = append(fams, estimateFamily{fmt.Sprintf("skewed-%d", size), sk, tuples, ms})

		// Duplicate-weighted: the same skewed queries folded with weights
		// 1..9, the compacted-log regime the estimator must stay sound on.
		wl := dataset.NewQueryLog(schema)
		for i, q := range sk.Queries {
			if err := wl.AppendWeighted(q, 1+i%9); err != nil {
				panic(err)
			}
		}
		tuples, ms = randomTuples(300)
		fams = append(fams, estimateFamily{fmt.Sprintf("weighted-%d", size), wl, tuples, ms})
	}

	real := gen.RealWorkload(tab, cfg.Seed+3, 400)
	carTuples := gen.PickTuples(tab, cfg.Seed+4, reps)
	ms := make([]int, len(carTuples))
	for i, t := range carTuples {
		ms[i] = 1 + t.Count()/2
	}
	fams = append(fams, estimateFamily{"cars-real", real, carTuples, ms})

	g, _ := gen.PlantedCliqueGraph(cfg.Seed+5, 48, 8, 0.25)
	clog, ctuple := gen.CliqueInstance(g)
	ctuples := make([]bitvec.Vector, reps)
	cms := make([]int, reps)
	for i := range ctuples {
		ctuples[i] = ctuple
		cms[i] = 1 + i%ctuple.Count()
	}
	fams = append(fams, estimateFamily{"clique", clog, ctuples, cms})
	return fams
}

// estimateCell measures one family: model build once, then per-tuple paired
// estimate/greedy timings and the estimate-vs-exact error distribution.
func estimateCell(ctx context.Context, fam estimateFamily) (Row, error) {
	buildStart := time.Now()
	model, err := estimate.BuildContext(ctx, fam.log, estimate.Options{})
	if err != nil {
		return Row{}, fmt.Errorf("building model: %w", err)
	}
	buildMS := float64(time.Since(buildStart)) / float64(time.Millisecond)

	prep, err := core.PrepareLogContext(ctx, fam.log)
	if err != nil {
		return Row{}, fmt.Errorf("preparing log: %w", err)
	}
	pctx := core.WithPrepared(ctx, prep)
	greedySolver := core.ConsumeAttrCumul{}

	var estNS, greedyNS, contained float64
	var errs, widths []float64
	total := fam.log.TotalWeight()
	for i, tuple := range fam.tuples {
		if ctx.Err() != nil {
			return Row{}, ctx.Err()
		}
		m := fam.ms[i]

		start := time.Now()
		kept := model.Keep(tuple, m)
		iv, err := model.Estimate(ctx, kept)
		estNS += float64(time.Since(start))
		if err != nil {
			return Row{}, fmt.Errorf("estimating tuple %d: %w", i, err)
		}

		start = time.Now()
		if _, err := greedySolver.SolveContext(pctx, core.Instance{Log: fam.log, Tuple: tuple, M: m}); err != nil {
			return Row{}, fmt.Errorf("greedy solve %d: %w", i, err)
		}
		greedyNS += float64(time.Since(start))

		exact := fam.log.Satisfied(kept)
		if iv.Contains(exact) {
			contained++
		}
		ref := exact
		if ref < 1 {
			ref = 1
		}
		diff := iv.Point - exact
		if diff < 0 {
			diff = -diff
		}
		errs = append(errs, 100*float64(diff)/float64(ref))
		ref = total
		if ref < 1 {
			ref = 1
		}
		widths = append(widths, 100*float64(iv.Hi-iv.Lo)/float64(ref))
	}

	n := float64(len(fam.tuples))
	estUS := estNS / n / float64(time.Microsecond)
	greedyUS := greedyNS / n / float64(time.Microsecond)
	speedup := Missing
	if estUS > 0 {
		speedup = greedyUS / estUS
	}
	return Row{X: fam.name, Values: []float64{
		float64(fam.log.Size()), buildMS, estUS, greedyUS, speedup,
		100 * contained / n, pctlOf(errs, 0.50), pctlOf(errs, 0.95), mean(widths),
	}}, nil
}

// pctlOf is the nearest-rank q-quantile of v (v is not modified).
func pctlOf(v []float64, q float64) float64 {
	if len(v) == 0 {
		return Missing
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return Missing
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

func missingValues(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = Missing
	}
	return vals
}
