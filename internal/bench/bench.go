// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (§VII, Figs 6–11) on the synthesized surrogates of
// its datasets. Each FigN function returns a Result — a labeled table of
// series — that cmd/socbench prints as text or CSV; bench_test.go at the
// repository root exposes the same runs as testing.B benchmarks.
//
// Absolute times differ from the paper's 2008 hardware; the comparisons the
// paper draws (who wins, where ILP becomes infeasible, where the
// ILP/MaxFreqItemSets crossover sits) are what EXPERIMENTS.md records.
package bench

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/gen"
	"standout/internal/obsv"
)

// Config tunes the harness. The zero value reproduces the paper's settings;
// Quick shrinks the averaging for fast CI runs.
type Config struct {
	// Seed drives all data generation; fixed default 1.
	Seed int64
	// CarsN is the cars-table size; 0 means the paper's 15,211.
	CarsN int
	// Tuples is how many random to-be-advertised cars to average over;
	// 0 means the paper's 100.
	Tuples int
	// ILPTimeout bounds each single ILP solve; expired solves are reported
	// as missing values, mirroring the paper's missing ILP points. 0 means
	// 30s.
	ILPTimeout time.Duration
	// Quick, if true, divides Tuples by 10 (minimum 3) for fast runs.
	Quick bool
	// Trace records a per-cell solve-trace summary (phase breakdown, solver
	// counters) into Result.CellTraces. Only the JSON rendering emits them.
	Trace bool
	// Prepare runs every figure's solves through a PreparedLog (the shared
	// bitmap index; memoization stays off so every solve is really measured).
	// Satisfied-query figures are bit-identical either way — the index is an
	// accelerator, not a different algorithm — which the golden CLI tests
	// assert; timing figures measure the indexed path instead.
	Prepare bool
	// Workers is the per-solve worker count handed to the parallel-capable
	// solvers (BruteForce, ILP, exact-DFS MFI) in every experiment; ≤ 1
	// means sequential. Satisfied-query figures are bit-identical at any
	// setting (the parallel engines are deterministic, DESIGN.md §11); only
	// timings move.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CarsN == 0 {
		c.CarsN = gen.CarsSize
	}
	if c.Tuples == 0 {
		c.Tuples = 100
	}
	if c.ILPTimeout == 0 {
		c.ILPTimeout = 30 * time.Second
	}
	if c.Quick {
		c.Tuples /= 10
		if c.Tuples < 3 {
			c.Tuples = 3
		}
	}
	return c
}

// Missing marks absent measurements (e.g. ILP beyond its feasible range),
// rendered as "-" like the paper's missing points.
var Missing = math.NaN()

// Row is one x-position of a figure with one value per column.
type Row struct {
	X      string
	Values []float64
}

// Result is a reproduced figure: labeled columns over labeled rows.
type Result struct {
	Name    string
	Title   string
	XLabel  string
	YLabel  string
	Columns []string
	Rows    []Row
	Notes   []string
	// CellTraces maps "x|column" to the aggregated solve trace of that
	// cell's measurements, populated when Config.Trace is set.
	CellTraces map[string]obsv.Summary
}

// Format renders the result as an aligned text table.
func (r Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", r.Name, r.Title)
	fmt.Fprintf(&sb, "x = %s, y = %s\n", r.XLabel, r.YLabel)
	widths := make([]int, len(r.Columns)+1)
	widths[0] = len(r.XLabel)
	if widths[0] < 6 {
		widths[0] = 6
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(r.Columns)+1)
		cells[i][0] = row.X
		if len(row.X) > widths[0] {
			widths[0] = len(row.X)
		}
		for j, v := range row.Values {
			s := formatValue(v)
			cells[i][j+1] = s
			if len(s) > widths[j+1] {
				widths[j+1] = len(s)
			}
		}
	}
	for j, c := range r.Columns {
		if len(c) > widths[j+1] {
			widths[j+1] = len(c)
		}
	}
	fmt.Fprintf(&sb, "%-*s", widths[0], r.XLabel)
	for j, c := range r.Columns {
		fmt.Fprintf(&sb, "  %*s", widths[j+1], c)
	}
	sb.WriteByte('\n')
	for i := range cells {
		fmt.Fprintf(&sb, "%-*s", widths[0], cells[i][0])
		for j := 1; j < len(cells[i]); j++ {
			fmt.Fprintf(&sb, "  %*s", widths[j], cells[i][j])
		}
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the result as comma-separated values with a header row.
func (r Result) CSV() string {
	var sb strings.Builder
	sb.WriteString(csvEscape(r.XLabel))
	for _, c := range r.Columns {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(c))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		sb.WriteString(csvEscape(row.X))
		for _, v := range row.Values {
			sb.WriteByte(',')
			if !math.IsNaN(v) {
				fmt.Fprintf(&sb, "%g", v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.001:
		return fmt.Sprintf("%.2e", v)
	case v == math.Trunc(v) && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// workloadSetup bundles the data of one experiment environment. prep, when
// non-nil, carries the shared index every measurement attaches to its context
// (Config.Prepare).
type workloadSetup struct {
	log    *dataset.QueryLog
	tuples []bitvec.Vector
	prep   *core.PreparedLog
}

// withPrep attaches the shared index when cfg.Prepare asks for it. The
// solution memo is disabled: measuring a cache hit would report the memo's
// latency, not the solver's.
func (w workloadSetup) withPrep(cfg Config) workloadSetup {
	if !cfg.Prepare {
		return w
	}
	p, err := core.PrepareLog(w.log)
	if err != nil {
		return w // invalid logs fall back to the direct path
	}
	p.SetSolutionCache(0)
	w.prep = p
	return w
}

// carsSetup builds the cars table, a workload and the averaged tuple set.
func carsSetup(cfg Config, synthetic bool, logSize int) workloadSetup {
	tab := gen.Cars(cfg.Seed, cfg.CarsN)
	var log *dataset.QueryLog
	if synthetic {
		log = gen.SyntheticWorkload(tab.Schema, cfg.Seed+1, logSize, gen.WorkloadOptions{})
	} else {
		log = gen.RealWorkload(tab, cfg.Seed+1, logSize)
	}
	return workloadSetup{log: log, tuples: gen.PickTuples(tab, cfg.Seed+2, cfg.Tuples)}.withPrep(cfg)
}

// timeSolver measures the mean wall-clock seconds per tuple and the mean
// satisfied-query count for a solver across the setup's tuples. Any error —
// including ctx cancellation, which every solver surfaces promptly — marks
// the measurement missing (timeout), so an interrupted figure finishes fast
// with "-" cells instead of hanging.
func timeSolver(ctx context.Context, s core.Solver, setup workloadSetup, m int) (secs, quality float64, ok bool) {
	if setup.prep != nil {
		ctx = core.WithPrepared(ctx, setup.prep)
	}
	start := time.Now()
	total := 0
	for _, tuple := range setup.tuples {
		sol, err := s.SolveContext(ctx, core.Instance{Log: setup.log, Tuple: tuple, M: m})
		if err != nil {
			return 0, 0, false
		}
		total += sol.Satisfied
	}
	elapsed := time.Since(start).Seconds() / float64(len(setup.tuples))
	return elapsed, float64(total) / float64(len(setup.tuples)), true
}

// measure is timeSolver plus per-cell tracing: when cfg.Trace is set, the
// cell's solves run under a fresh Trace whose summary lands in
// res.CellTraces under the key "x|col".
func measure(ctx context.Context, cfg Config, res *Result, x, col string, s core.Solver, setup workloadSetup, m int) (secs, quality float64, ok bool) {
	if !cfg.Trace {
		return timeSolver(ctx, s, setup, m)
	}
	tr := obsv.NewTrace()
	secs, quality, ok = timeSolver(obsv.WithTrace(ctx, tr), s, setup, m)
	if res.CellTraces == nil {
		res.CellTraces = map[string]obsv.Summary{}
	}
	res.CellTraces[x+"|"+col] = tr.Snapshot()
	return secs, quality, ok
}

// noteInterrupted appends a note when the harness context expired mid-figure:
// the remaining cells were reported missing without being measured.
func noteInterrupted(ctx context.Context, res *Result) {
	if err := ctx.Err(); err != nil {
		res.Notes = append(res.Notes,
			fmt.Sprintf("interrupted (%v): unmeasured cells reported as missing", err))
	}
}

// paperSolvers returns the five §IV algorithms with the configured limits.
func paperSolvers(cfg Config) []core.Solver {
	return []core.Solver{
		core.ILP{Timeout: cfg.ILPTimeout, Workers: cfg.Workers},
		core.MaxFreqItemSets{Backend: core.BackendTwoPhaseWalk, Seed: cfg.Seed},
		core.ConsumeAttr{},
		core.ConsumeAttrCumul{},
		core.ConsumeQueries{},
	}
}

// shortName strips the -SOC-CB-QL suffix like the paper's graphs do.
func shortName(s core.Solver) string {
	return strings.TrimSuffix(s.Name(), "-SOC-CB-QL")
}

// mRange is the m sweep of Figs 6–9.
var mRange = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

// Fig6 reproduces "Execution times for SOC-CB-QL for varying m, for real
// workload": all five algorithms, the 185-query real-workload surrogate,
// averaged over the configured number of cars.
func Fig6(cfg Config) Result { return Fig6Context(context.Background(), cfg) }

// Fig6Context is Fig6 under a context; see All for cancellation semantics.
func Fig6Context(ctx context.Context, cfg Config) Result {
	cfg = cfg.withDefaults()
	setup := carsSetup(cfg, false, gen.RealWorkloadSize)
	solvers := paperSolvers(cfg)
	res := Result{
		Name:   "Fig 6",
		Title:  "Execution times for SOC-CB-QL for varying m, real workload",
		XLabel: "m", YLabel: "seconds per tuple",
	}
	for _, s := range solvers {
		res.Columns = append(res.Columns, shortName(s))
	}
	for _, m := range mRange {
		row := Row{X: fmt.Sprintf("%d", m)}
		for _, s := range solvers {
			secs, _, ok := measure(ctx, cfg, &res, row.X, shortName(s), s, setup, m)
			if !ok {
				secs = Missing
			}
			row.Values = append(row.Values, secs)
		}
		res.Rows = append(res.Rows, row)
	}

	// The paper notes MaxFreqItemSets costs ~0.015s once preprocessing is
	// hoisted out; measure the prepared variant the same way.
	mfi := core.MaxFreqItemSets{Backend: core.BackendTwoPhaseWalk, Seed: cfg.Seed}
	prep, err := mfi.Preprocess(setup.log)
	if err == nil {
		start := time.Now()
		n := 0
		for _, m := range mRange {
			for _, tuple := range setup.tuples {
				if _, err := prep.SolvePreparedContext(ctx, tuple, m); err == nil {
					n++
				}
			}
		}
		if n > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"MaxFreqItemSets with preprocessing hoisted out: %.4fs per tuple (paper: ~0.015s)",
				time.Since(start).Seconds()/float64(n)))
		}
	}
	noteInterrupted(ctx, &res)
	return res
}

// Fig7 reproduces "Satisfied queries for SOC-CB-QL for varying m, real
// workload": the three greedy algorithms against the optimal count.
func Fig7(cfg Config) Result { return Fig7Context(context.Background(), cfg) }

// Fig7Context is Fig7 under a context.
func Fig7Context(ctx context.Context, cfg Config) Result {
	cfg = cfg.withDefaults()
	setup := carsSetup(cfg, false, gen.RealWorkloadSize)
	return qualityFigure(ctx, cfg, setup, "Fig 7",
		"Satisfied queries for SOC-CB-QL for varying m, real workload")
}

// Fig8 reproduces "Execution times for varying m, synthetic workload of 2000
// queries". The paper drops ILP here because it is too slow beyond 1000
// queries; so does this run.
func Fig8(cfg Config) Result { return Fig8Context(context.Background(), cfg) }

// Fig8Context is Fig8 under a context.
func Fig8Context(ctx context.Context, cfg Config) Result { return fig8At(ctx, cfg, 2000) }

func fig8At(ctx context.Context, cfg Config, logSize int) Result {
	cfg = cfg.withDefaults()
	setup := carsSetup(cfg, true, logSize)
	solvers := paperSolvers(cfg)[1:] // no ILP
	res := Result{
		Name:   "Fig 8",
		Title:  "Execution times for SOC-CB-QL for varying m, synthetic workload (2000 queries)",
		XLabel: "m", YLabel: "seconds per tuple",
		Notes: []string{"ILP omitted: infeasible beyond 1000 queries (see Fig 10)"},
	}
	for _, s := range solvers {
		res.Columns = append(res.Columns, shortName(s))
	}
	for _, m := range mRange {
		row := Row{X: fmt.Sprintf("%d", m)}
		for _, s := range solvers {
			secs, _, ok := measure(ctx, cfg, &res, row.X, shortName(s), s, setup, m)
			if !ok {
				secs = Missing
			}
			row.Values = append(row.Values, secs)
		}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}

// Fig9 reproduces "Satisfied queries for varying m, synthetic workload of
// 2000 queries".
func Fig9(cfg Config) Result { return Fig9Context(context.Background(), cfg) }

// Fig9Context is Fig9 under a context.
func Fig9Context(ctx context.Context, cfg Config) Result { return fig9At(ctx, cfg, 2000) }

func fig9At(ctx context.Context, cfg Config, logSize int) Result {
	cfg = cfg.withDefaults()
	setup := carsSetup(cfg, true, logSize)
	return qualityFigure(ctx, cfg, setup, "Fig 9",
		fmt.Sprintf("Satisfied queries for SOC-CB-QL for varying m, synthetic workload (%d queries)", logSize))
}

// qualityFigure measures optimal and greedy satisfied-query counts per m.
func qualityFigure(ctx context.Context, cfg Config, setup workloadSetup, name, title string) Result {
	optimal := core.MaxFreqItemSets{Backend: core.BackendTwoPhaseWalk, Seed: cfg.Seed}
	greedy := []core.Solver{core.ConsumeAttr{}, core.ConsumeAttrCumul{}, core.ConsumeQueries{}}
	res := Result{
		Name: name, Title: title,
		XLabel: "m", YLabel: "satisfied queries (avg)",
		Columns: []string{"Optimal"},
	}
	for _, s := range greedy {
		res.Columns = append(res.Columns, shortName(s))
	}
	for _, m := range mRange {
		row := Row{X: fmt.Sprintf("%d", m)}
		_, q, ok := measure(ctx, cfg, &res, row.X, "Optimal", optimal, setup, m)
		if !ok {
			q = Missing
		}
		row.Values = append(row.Values, q)
		for _, s := range greedy {
			_, q, ok := measure(ctx, cfg, &res, row.X, shortName(s), s, setup, m)
			if !ok {
				q = Missing
			}
			row.Values = append(row.Values, q)
		}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}

// fig10Sizes is the query-log-size sweep of Fig 10.
var fig10Sizes = []int{250, 500, 1000, 2000, 4000}

// fig10ILPCap mirrors the paper's protocol: ILP is not run beyond 1000
// queries ("very slow for more than 1000 queries").
const fig10ILPCap = 1000

// Fig10 reproduces "Execution times for varying query log size, m = 5".
func Fig10(cfg Config) Result { return Fig10Context(context.Background(), cfg) }

// Fig10Context is Fig10 under a context.
func Fig10Context(ctx context.Context, cfg Config) Result { return fig10At(ctx, cfg, fig10Sizes) }

func fig10At(ctx context.Context, cfg Config, sizes []int) Result {
	cfg = cfg.withDefaults()
	solvers := paperSolvers(cfg)
	res := Result{
		Name:   "Fig 10",
		Title:  "Execution times for SOC-CB-QL for varying query log size, m = 5",
		XLabel: "queries", YLabel: "seconds per tuple",
		Notes: []string{fmt.Sprintf("ILP not run beyond %d queries, as in the paper", fig10ILPCap)},
	}
	for _, s := range solvers {
		res.Columns = append(res.Columns, shortName(s))
	}
	const m = 5
	for _, size := range sizes {
		setup := carsSetup(cfg, true, size)
		row := Row{X: fmt.Sprintf("%d", size)}
		for _, s := range solvers {
			if _, isILP := s.(core.ILP); isILP && size > fig10ILPCap {
				row.Values = append(row.Values, Missing)
				continue
			}
			secs, _, ok := measure(ctx, cfg, &res, row.X, shortName(s), s, setup, m)
			if !ok {
				secs = Missing
			}
			row.Values = append(row.Values, secs)
		}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}

// fig11Widths is the attribute-count sweep of Fig 11.
var fig11Widths = []int{16, 24, 32, 40, 48, 64}

// Fig11 reproduces "Execution times for varying M, synthetic workload of 200
// queries, m = 5": the two optimal algorithms only.
func Fig11(cfg Config) Result { return Fig11Context(context.Background(), cfg) }

// Fig11Context is Fig11 under a context.
func Fig11Context(ctx context.Context, cfg Config) Result {
	return fig11At(ctx, cfg, fig11Widths, 200)
}

func fig11At(ctx context.Context, cfg Config, widths []int, logSize int) Result {
	cfg = cfg.withDefaults()
	ilpSolver := core.ILP{Timeout: cfg.ILPTimeout, Workers: cfg.Workers}
	mfiSolver := core.MaxFreqItemSets{Backend: core.BackendTwoPhaseWalk, Seed: cfg.Seed}
	res := Result{
		Name:   "Fig 11",
		Title:  "Execution times for SOC-CB-QL for varying M, synthetic workload (200 queries), m = 5",
		XLabel: "M", YLabel: "seconds per tuple",
		Columns: []string{shortName(ilpSolver), shortName(mfiSolver)},
	}
	const m = 5
	for _, width := range widths {
		schema := dataset.GenericSchema(width)
		log := gen.SyntheticWorkload(schema, cfg.Seed+1, logSize, gen.WorkloadOptions{})
		tuples := make([]bitvec.Vector, cfg.Tuples)
		for i := range tuples {
			tuples[i] = gen.RandomTuple(schema, cfg.Seed+10+int64(i), 0.5)
		}
		setup := workloadSetup{log: log, tuples: tuples}.withPrep(cfg)
		row := Row{X: fmt.Sprintf("%d", width)}
		for _, s := range []core.Solver{ilpSolver, mfiSolver} {
			secs, _, ok := measure(ctx, cfg, &res, row.X, shortName(s), s, setup, m)
			if !ok {
				secs = Missing
			}
			row.Values = append(row.Values, secs)
		}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}

// All runs every figure in order.
func All(cfg Config) []Result { return AllContext(context.Background(), cfg) }

// AllContext runs every figure in order under a context. When ctx is
// cancelled or expires mid-run, each remaining measurement fails fast (the
// solvers surface the cancellation promptly), so the slice still contains one
// Result per figure — interrupted ones carry missing cells and an
// "interrupted" note instead of blocking.
func AllContext(ctx context.Context, cfg Config) []Result {
	return []Result{
		Fig6Context(ctx, cfg), Fig7Context(ctx, cfg), Fig8Context(ctx, cfg),
		Fig9Context(ctx, cfg), Fig10Context(ctx, cfg), Fig11Context(ctx, cfg),
	}
}
