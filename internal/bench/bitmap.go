package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/gen"
	"standout/internal/index"
)

// bitmapScales are the wide sparse schemas the sweep measures: attribute
// counts in the tens of thousands (text-derived keyword schemas), far past
// the point where a dense bitmap per attribute column is affordable. Each
// row of the result is one (M, S) scale.
var bitmapScales = []struct{ m, s int }{
	{10000, 20000},
	{20000, 24000},
	{40000, 24000},
}

// bitmapZipfExponent shapes the attribute popularity of the synthetic
// workload: weight(i) ∝ 1/(i+1)^s puts a handful of hot attributes in almost
// every query (those columns stay dense under Auto) over a long tail of
// attributes that appear a few times each (those compress).
const bitmapZipfExponent = 1.1

// BitmapSweep measures the compressed-bitmap backend on wide sparse
// schemas: per scale, the index memory footprint under ForceDense, Auto and
// ForceCompressed, and SatisfiedDropping scoring throughput dense vs Auto.
// Scores are bit-identical in every mode (the differential sweep pins
// that); this table records only the memory/speed trade, and generates
// BENCH_bitmap.json via `make bench-bitmap`.
func BitmapSweep(cfg Config) Result { return BitmapSweepContext(context.Background(), cfg) }

// BitmapSweepContext is BitmapSweep under a context; see All for
// cancellation semantics.
func BitmapSweepContext(ctx context.Context, cfg Config) Result {
	cfg = cfg.withDefaults()
	scales := bitmapScales
	if cfg.Quick {
		scales = []struct{ m, s int }{{10000, 2048}}
	}
	res := Result{
		Name:   "Bitmap",
		Title:  "Compressed-bitmap backend on wide sparse schemas: index memory and SatisfiedDropping throughput, dense vs per-column compression",
		XLabel: "schema", YLabel: "MiB / scores per second",
		Columns: []string{"dense MiB", "auto MiB", "forced MiB", "mem ratio", "dense scores/s", "auto scores/s", "speedup"},
	}

	for _, sc := range scales {
		row := Row{X: fmt.Sprintf("M=%d S=%d", sc.m, sc.s)}
		if ctx.Err() != nil {
			row.Values = []float64{Missing, Missing, Missing, Missing, Missing, Missing, Missing}
			res.Rows = append(res.Rows, row)
			continue
		}

		schema := dataset.GenericSchema(sc.m)
		attrW := make([]float64, sc.m)
		for i := range attrW {
			attrW[i] = 1 / math.Pow(float64(i+1), bitmapZipfExponent)
		}
		log := gen.SyntheticWorkload(schema, cfg.Seed+3, sc.s, gen.WorkloadOptions{AttrWeights: attrW})

		// Tuples are unions of a few log queries plus noise attributes, so
		// every tuple has a non-trivial candidate set to peel.
		rng := rand.New(rand.NewSource(cfg.Seed + 4))
		const ntuples = 24
		tuples := make([]bitvec.Vector, ntuples)
		drops := make([][]int, ntuples)
		for i := range tuples {
			t := bitvec.New(sc.m)
			for k := 0; k < 6; k++ {
				q := log.Queries[rng.Intn(sc.s)]
				for _, a := range q.Ones() {
					t.Set(a)
				}
			}
			for k := 0; k < 4; k++ {
				t.Set(rng.Intn(sc.m))
			}
			tuples[i] = t
			// Drop roughly half the tuple's attributes — the shape of one
			// solver score at budget m ≈ |t|/2.
			for j, a := range t.Ones() {
				if j%2 == 0 {
					drops[i] = append(drops[i], a)
				}
			}
		}

		build := func(mode index.Mode) (*index.Index, float64) {
			ix, err := index.BuildWith(log, index.Options{Mode: mode})
			if err != nil {
				return nil, Missing
			}
			return ix, float64(ix.Mem().Bytes) / (1 << 20)
		}
		throughput := func(ix *index.Index) float64 {
			cands := make([]bitvec.Bits, ntuples)
			for i, t := range tuples {
				cands[i] = ix.CandidateSet(t)
			}
			scratch := ix.NewScratch()
			rounds := 400
			if cfg.Quick {
				rounds = 50
			}
			// Warm-up pass, then the timed rounds.
			for i := range tuples {
				ix.SatisfiedDroppingBits(cands[i], drops[i], scratch)
			}
			start := time.Now()
			ops := 0
			for r := 0; r < rounds && ctx.Err() == nil; r++ {
				for i := range tuples {
					ix.SatisfiedDroppingBits(cands[i], drops[i], scratch)
					ops++
				}
			}
			secs := time.Since(start).Seconds()
			if ops == 0 || secs == 0 {
				return Missing
			}
			return float64(ops) / secs
		}

		dx, denseMiB := build(index.ForceDense)
		ax, autoMiB := build(index.Auto)
		_, forcedMiB := build(index.ForceCompressed)
		memRatio, denseTP, autoTP, speedup := Missing, Missing, Missing, Missing
		if dx != nil && ax != nil {
			memRatio = denseMiB / autoMiB
			denseTP = throughput(dx)
			autoTP = throughput(ax)
			if denseTP > 0 && autoTP > 0 {
				speedup = autoTP / denseTP
			}
		}
		row.Values = []float64{denseMiB, autoMiB, forcedMiB, memRatio, denseTP, autoTP, speedup}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}
