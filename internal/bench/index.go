package bench

import (
	"context"
	"fmt"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/gen"
)

// indexBatchLogSize and indexBatchTuples set the IndexBatch workload scale:
// one 10,000-query synthetic log shared by a 64-tuple batch, the marketplace
// regime the shared index targets. Quick shrinks both for CI.
const (
	indexBatchLogSize = 10000
	indexBatchTuples  = 64
)

// IndexBatch measures batch throughput with the shared query-log index and
// solution memo on versus off: each row is one solver, each measurement one
// SolveBatch over the same tuples, the "indexed" column using the automatic
// per-batch PrepareLog and the "unindexed" column forcing the direct-scan
// path with WithoutPreparation. The final row repeats each tuple several
// times, the case the solution memo exists for. Both paths return identical
// solutions (the differential test sweep pins that); only the time differs.
func IndexBatch(cfg Config) Result { return IndexBatchContext(context.Background(), cfg) }

// IndexBatchContext is IndexBatch under a context; see All for cancellation
// semantics.
func IndexBatchContext(ctx context.Context, cfg Config) Result {
	cfg = cfg.withDefaults()
	logSize, ntuples := indexBatchLogSize, indexBatchTuples
	if cfg.Quick {
		logSize, ntuples = 1500, 16
	}
	tab := gen.Cars(cfg.Seed, cfg.CarsN)
	log := gen.SyntheticWorkload(tab.Schema, cfg.Seed+1, logSize, gen.WorkloadOptions{})
	tuples := gen.PickTuples(tab, cfg.Seed+2, ntuples)

	// Each tuple four times, shuffle-free: repeats within one batch are what
	// the memo converts into cache hits.
	repeated := make([]bitvec.Vector, 0, len(tuples)*4)
	for rep := 0; rep < 4; rep++ {
		repeated = append(repeated, tuples...)
	}

	res := Result{
		Name:   "Index",
		Title:  fmt.Sprintf("Batch throughput with shared index/cache on vs off (%d queries, %d tuples, m = 5)", logSize, ntuples),
		XLabel: "solver", YLabel: "seconds per batch",
		Columns: []string{"indexed", "unindexed", "speedup"},
	}

	const m = 5
	timeBatch := func(ctx context.Context, s core.Solver, batch []bitvec.Vector) (float64, bool) {
		start := time.Now()
		_, _, err := core.SolveBatchContext(ctx, s, log, batch, m, 0)
		if err != nil {
			return 0, false
		}
		return time.Since(start).Seconds(), true
	}

	type rowSpec struct {
		label string
		s     core.Solver
		batch []bitvec.Vector
	}
	rows := []rowSpec{
		{"MaxFreqItemSets", core.MaxFreqItemSets{Backend: core.BackendTwoPhaseWalk, Seed: cfg.Seed}, tuples},
		{"ConsumeAttr", core.ConsumeAttr{}, tuples},
		{"ConsumeAttrCumul", core.ConsumeAttrCumul{}, tuples},
		{"ConsumeQueries", core.ConsumeQueries{}, tuples},
		{"ConsumeAttrCumul ×4 repeats", core.ConsumeAttrCumul{}, repeated},
	}
	for _, spec := range rows {
		row := Row{X: spec.label}
		indexed, okI := timeBatch(ctx, spec.s, spec.batch)
		unindexed, okU := timeBatch(core.WithoutPreparation(ctx), spec.s, spec.batch)
		switch {
		case okI && okU:
			row.Values = []float64{indexed, unindexed, unindexed / indexed}
		case okI:
			row.Values = []float64{indexed, Missing, Missing}
		case okU:
			row.Values = []float64{Missing, unindexed, Missing}
		default:
			row.Values = []float64{Missing, Missing, Missing}
		}
		res.Rows = append(res.Rows, row)
	}
	noteInterrupted(ctx, &res)
	return res
}
