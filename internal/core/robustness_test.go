package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"standout/internal/bitvec"
	"standout/internal/fault"
	"standout/internal/gen"
)

// panickySolver panics whenever the instance tuple equals trigger, and
// otherwise delegates to ConsumeAttr. It models a solver bug (e.g. a bitvec
// width mismatch reached past validation) that takes out one tuple.
type panickySolver struct {
	trigger bitvec.Vector
}

func (p panickySolver) Name() string { return "panicky" }
func (p panickySolver) Solve(in Instance) (Solution, error) {
	return p.SolveContext(context.Background(), in)
}
func (p panickySolver) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	if in.Tuple.Equal(p.trigger) {
		panic("panicky: poisoned tuple")
	}
	return ConsumeAttr{}.SolveContext(ctx, in)
}

func TestBatchRecoversPerTuplePanic(t *testing.T) {
	tab := gen.Cars(1, 200)
	log := gen.RealWorkload(tab, 2, 60)
	tuples := gen.PickTuples(tab, 3, 16)
	poison := tuples[7]

	out, errs, err := SolveBatchContext(context.Background(),
		panickySolver{trigger: poison}, log, tuples, 4, 4)

	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("batch error %v (%T), want *BatchError", err, err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("batch error %v does not unwrap to *PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError captured no stack")
	}
	// The poisoned tuple is attributed exactly; siblings either completed
	// with correct results or were skipped by the first-error cancellation —
	// never poisoned, and the process never died.
	foundPoison := false
	for i := range tuples {
		if tuples[i].Equal(poison) {
			if errs[i] == nil || !errors.As(errs[i], &pe) {
				t.Fatalf("tuple %d (poisoned): err=%v, want *PanicError", i, errs[i])
			}
			foundPoison = true
			continue
		}
		if errs[i] != nil {
			t.Fatalf("tuple %d: unexpected error %v", i, errs[i])
		}
		if out[i].Kept.Width() == 0 {
			continue // skipped after cancellation: zero Solution is fine
		}
		want, werr := (ConsumeAttr{}).Solve(Instance{Log: log, Tuple: tuples[i], M: 4})
		if werr != nil {
			t.Fatal(werr)
		}
		if out[i].Satisfied != want.Satisfied {
			t.Fatalf("tuple %d: satisfied %d, want %d", i, out[i].Satisfied, want.Satisfied)
		}
	}
	if !foundPoison {
		t.Fatal("poisoned tuple not found in batch")
	}
}

func TestBatchInjectedPanicIsRecovered(t *testing.T) {
	tab := gen.Cars(1, 100)
	log := gen.RealWorkload(tab, 2, 30)
	tuples := gen.PickTuples(tab, 3, 8)

	inj := fault.New(1, fault.Rule{Site: "core.batch.tuple", Every: 5, Count: 1, Kind: fault.KindPanic, Msg: "chaos"})
	ctx := fault.WithInjector(context.Background(), inj)
	_, errs, err := SolveBatchContext(ctx, ConsumeAttr{}, log, tuples, 3, 2)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("batch error %v, want *PanicError via *BatchError", err)
	}
	if inj.Fires("core.batch.tuple") != 1 {
		t.Fatalf("fires = %d, want 1", inj.Fires("core.batch.tuple"))
	}
	n := 0
	for _, e := range errs {
		if e != nil && errors.As(e, &pe) {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d tuples attributed a panic, want 1", n)
	}
}

func TestErrStalePrepSentinel(t *testing.T) {
	tab := gen.Cars(1, 100)
	log := gen.RealWorkload(tab, 2, 30)
	tuple := tab.Rows[0]
	p, err := PrepareLog(log)
	if err != nil {
		t.Fatal(err)
	}
	log.Touch()
	_, err = p.Solve(ConsumeAttr{}, tuple, 3)
	if !errors.Is(err, ErrStalePrep) {
		t.Fatalf("stale solve error %v does not wrap ErrStalePrep", err)
	}

	// Injected staleness surfaces through the same sentinel.
	p2, err := PrepareLog(log)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(1, fault.Rule{Site: "core.prep.stale", Kind: fault.KindError})
	ctx := fault.WithInjector(context.Background(), inj)
	if _, err := p2.SolveContext(ctx, ConsumeAttr{}, tuple, 3); !errors.Is(err, ErrStalePrep) {
		t.Fatalf("injected staleness error %v does not wrap ErrStalePrep", err)
	}
}

func TestInjectedPrepBuildFailure(t *testing.T) {
	tab := gen.Cars(1, 100)
	log := gen.RealWorkload(tab, 2, 30)
	inj := fault.New(1, fault.Rule{Site: "core.prep.build", Kind: fault.KindError})
	ctx := fault.WithInjector(context.Background(), inj)
	if _, err := PrepareLogContext(ctx, log); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("got %v, want injected build failure", err)
	}
}

// TestBatchConsistentUnderConcurrentTouch drives the satellite requirement:
// a QueryLog.Touch landing while a SolveBatchContext is in flight over a
// shared prep must leave every per-tuple outcome either fully pre-mutation
// consistent (a correct Solution for the log contents, which Touch does not
// change) or cleanly post-mutation (an error wrapping ErrStalePrep, a
// cancellation, or an untouched zero Solution) — never a mixed or corrupted
// result. Run under -race this also proves Touch/Version need no external
// locking against staleness checks.
func TestBatchConsistentUnderConcurrentTouch(t *testing.T) {
	tab := gen.Cars(1, 300)
	log := gen.RealWorkload(tab, 2, 60)
	tuples := gen.PickTuples(tab, 3, 48)
	const m = 4

	want := make([]int, len(tuples))
	for i, tuple := range tuples {
		sol, err := (ConsumeAttrCumul{}).Solve(Instance{Log: log, Tuple: tuple, M: m})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sol.Satisfied
	}

	for round := 0; round < 20; round++ {
		prep, err := PrepareLog(log)
		if err != nil {
			t.Fatal(err)
		}
		ctx := WithPrepared(context.Background(), prep)

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Stagger the Touch across rounds so it lands at different points
			// of the batch: before dispatch, mid-flight, after completion.
			time.Sleep(time.Duration(round*50) * time.Microsecond)
			log.Touch()
		}()

		out, errs, batchErr := SolveBatchContext(ctx, ConsumeAttrCumul{}, log, tuples, m, 8)
		wg.Wait()

		for i := range tuples {
			switch {
			case errs[i] != nil:
				if !errors.Is(errs[i], ErrStalePrep) && !errors.Is(errs[i], context.Canceled) {
					t.Fatalf("round %d tuple %d: unexpected error %v", round, i, errs[i])
				}
			case out[i].Kept.Width() != 0:
				if out[i].Satisfied != want[i] {
					t.Fatalf("round %d tuple %d: satisfied %d, want %d (mixed result)",
						round, i, out[i].Satisfied, want[i])
				}
			}
		}
		if batchErr != nil {
			var be *BatchError
			if !errors.As(batchErr, &be) {
				t.Fatalf("round %d: batch error %v (%T), want *BatchError", round, batchErr, batchErr)
			}
			if !errors.Is(batchErr, ErrStalePrep) && !errors.Is(batchErr, context.Canceled) {
				t.Fatalf("round %d: batch error %v neither stale nor canceled", round, batchErr)
			}
		}
		// Restore a fresh prep's view for the next round (Touch only bumped
		// the version; contents are unchanged, so expectations hold).
	}
}
