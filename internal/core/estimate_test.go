package core

import (
	"context"
	"errors"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/estimate"
	"standout/internal/gen"
)

// estimateTestLog builds a moderately structured log for the solver tests.
func estimateTestLog(t *testing.T) *dataset.QueryLog {
	t.Helper()
	log := gen.SyntheticWorkload(dataset.GenericSchema(12), 11, 300, gen.WorkloadOptions{})
	return log
}

func TestEstimateSolverDirect(t *testing.T) {
	log := estimateTestLog(t)
	tuple := gen.RandomTuple(log.Schema, 21, 0.5)
	in := Instance{Log: log, Tuple: tuple, M: 3}

	sol, err := Estimate{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Estimated {
		t.Fatal("Estimate solution not marked Estimated")
	}
	exact := log.Satisfied(sol.Kept)
	if exact < sol.EstLo || exact > sol.EstHi {
		t.Fatalf("interval [%d,%d] misses exact %d", sol.EstLo, sol.EstHi, exact)
	}
	if sol.Satisfied < sol.EstLo || sol.Satisfied > sol.EstHi {
		t.Fatalf("point %d outside own interval [%d,%d]", sol.Satisfied, sol.EstLo, sol.EstHi)
	}
	// The selection rule is ConsumeAttr's: same kept set, no log scan needed.
	ca, err := ConsumeAttr{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Kept.Equal(ca.Kept) {
		t.Fatalf("Estimate kept %s, ConsumeAttr kept %s", sol.Kept, ca.Kept)
	}
}

func TestEstimateSolverValidatesInstance(t *testing.T) {
	log := estimateTestLog(t)
	if _, err := (Estimate{}).Solve(Instance{Log: log, Tuple: bitvec.New(12), M: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// TestEstimateUsesPreparedModel pins the memoization path: with a prepared
// log in context and default options, the solver builds the shared model
// once and every later solve reuses it.
func TestEstimateUsesPreparedModel(t *testing.T) {
	log := estimateTestLog(t)
	p, err := PrepareLog(log)
	if err != nil {
		t.Fatal(err)
	}
	if p.EstimatorModelReady() != nil {
		t.Fatal("model built before any estimate solve")
	}
	ctx := WithPrepared(context.Background(), p)
	tuple := gen.RandomTuple(log.Schema, 22, 0.5)
	if _, err := (Estimate{}).SolveContext(ctx, Instance{Log: log, Tuple: tuple, M: 4}); err != nil {
		t.Fatal(err)
	}
	m1 := p.EstimatorModelReady()
	if m1 == nil {
		t.Fatal("solve through prep did not populate the shared model")
	}
	if _, err := (Estimate{}).SolveContext(ctx, Instance{Log: log, Tuple: tuple, M: 2}); err != nil {
		t.Fatal(err)
	}
	if m2 := p.EstimatorModelReady(); m2 != m1 {
		t.Fatal("second solve rebuilt the shared model")
	}
}

// TestEstimateCustomOptsSkipsSharedModel: non-default options must not
// poison (or use) the prep's canonical zero-options model.
func TestEstimateCustomOptsSkipsSharedModel(t *testing.T) {
	log := estimateTestLog(t)
	p, err := PrepareLog(log)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithPrepared(context.Background(), p)
	tuple := gen.RandomTuple(log.Schema, 23, 0.5)
	if _, err := (Estimate{Opts: estimate.Options{MaxAtomAttrs: 2}}).SolveContext(ctx, Instance{Log: log, Tuple: tuple, M: 3}); err != nil {
		t.Fatal(err)
	}
	if p.EstimatorModelReady() != nil {
		t.Fatal("custom-options solve populated the shared zero-options model")
	}
}

func TestEstimateInjectedModelWidthMismatch(t *testing.T) {
	log := estimateTestLog(t)
	other := dataset.NewQueryLog(dataset.GenericSchema(5))
	m, err := estimate.Build(other, estimate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tuple := gen.RandomTuple(log.Schema, 24, 0.5)
	if _, err := (Estimate{Model: m}).Solve(Instance{Log: log, Tuple: tuple, M: 2}); err == nil {
		t.Fatal("width-mismatched injected model accepted")
	}
}

// TestEstimateStalePrep: the staleness gate runs before the solver, so an
// estimate solve through a touched prep surfaces ErrStalePrep like every
// other solver — the serve ladder's retry path depends on it.
func TestEstimateStalePrep(t *testing.T) {
	log := estimateTestLog(t)
	p, err := PrepareLog(log)
	if err != nil {
		t.Fatal(err)
	}
	log.Touch()
	tuple := gen.RandomTuple(log.Schema, 25, 0.5)
	if _, err := p.SolveContext(context.Background(), Estimate{}, tuple, 3); !errors.Is(err, ErrStalePrep) {
		t.Fatalf("err = %v, want ErrStalePrep", err)
	}
}

// TestEstimateCacheID pins the memo key: default and tuned options are
// cacheable with distinct ids; an injected model is not cacheable (its
// provenance is outside the prep's lifecycle).
func TestEstimateCacheID(t *testing.T) {
	idDefault, ok := solverCacheID(Estimate{})
	if !ok {
		t.Fatal("default Estimate not cacheable")
	}
	idTuned, ok := solverCacheID(Estimate{Opts: estimate.Options{MaxAtomAttrs: 3}})
	if !ok {
		t.Fatal("tuned Estimate not cacheable")
	}
	if idDefault == idTuned {
		t.Fatal("distinct options share a cache id")
	}
	other := dataset.NewQueryLog(dataset.GenericSchema(3))
	m, err := estimate.Build(other, estimate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := solverCacheID(Estimate{Model: m}); ok {
		t.Fatal("model-injected Estimate reported cacheable")
	}
}

// TestEstimatorModelErrorSticky: a non-context build failure is recorded and
// returned to later callers; a cancellation is retried.
func TestEstimatorModelErrorSticky(t *testing.T) {
	log := estimateTestLog(t)
	p, err := PrepareLog(log)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.EstimatorModel(cancelled); err == nil {
		t.Fatal("cancelled build succeeded")
	}
	// Not sticky: a live context builds fine afterwards.
	if _, err := p.EstimatorModel(context.Background()); err != nil {
		t.Fatalf("build after cancellation: %v", err)
	}
}
