//go:build !race

package core

// deadlineSlack bounds how far past a context deadline a solver may return
// in TestDeadlineHonoredOnAdversarialInstance: 2× is the acceptance
// criterion for uninstrumented builds.
const deadlineSlack = 2
