package core

import (
	"context"
	"fmt"

	"standout/internal/estimate"
)

// Estimate is the shed-of-last-resort solver (DESIGN.md §16): it never scans
// the query log at solve time. Selection copies ConsumeAttr's rule — the m
// most frequent tuple attributes, ties to the lower index — evaluated on an
// itemset-frequency model's stored counts, and the satisfied count is a
// certified [lo, hi] interval plus a point estimate from a small LP over the
// same counts (package estimate). The Solution carries Estimated=true with
// the interval in EstLo/EstHi; Satisfied is the point estimate.
//
// The model comes from, in order: the Model field (injected by the serving
// layer's shed path), the context's PreparedLog when it is usable for the
// instance log and Opts is zero (EstimatorModel, built lazily once per
// prep), else a fresh build from the instance log — the only case that
// touches the log, and only at preparation granularity.
type Estimate struct {
	// Opts tunes a freshly built model; the zero value selects the defaults
	// (and is required for the solve to use a PreparedLog's shared model).
	Opts estimate.Options
	// Model, when non-nil, answers every solve without any log access; the
	// instance log is only checked for width compatibility. Solves with an
	// injected model are never memoized — the model's provenance is the
	// caller's business.
	Model *estimate.Model
}

// Name implements Solver.
func (Estimate) Name() string { return "EstimateLP-SOC-CB-QL" }

// Solve is SolveContext with a background context.
func (s Estimate) Solve(in Instance) (Solution, error) {
	return s.SolveContext(context.Background(), in)
}

// SolveContext implements Solver.
func (s Estimate) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	obs := beginSolve(ctx, s.Name(), in)
	sol, err := s.solve(ctx, in)
	return obs.end(ctx, sol, err)
}

func (s Estimate) solve(ctx context.Context, in Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	model := s.Model
	if model == nil {
		if p := preparedFromContext(ctx); p.usableFor(in.Log) && s.Opts == (estimate.Options{}) {
			if m, err := p.EstimatorModel(ctx); err == nil {
				model = m
			} else if ctx.Err() != nil {
				return Solution{}, err
			}
			// A non-context model failure falls through to the direct build,
			// mirroring how WithPrepared solves never fail on accelerator loss.
		}
	}
	if model == nil {
		var err error
		if model, err = estimate.BuildContext(ctx, in.Log, s.Opts); err != nil {
			return Solution{}, err
		}
	}
	if model.Width() != in.Tuple.Width() {
		return Solution{}, fmt.Errorf("core: estimate model width %d, tuple width %d", model.Width(), in.Tuple.Width())
	}
	kept := model.Keep(in.Tuple, in.M)
	iv, err := model.Estimate(ctx, kept)
	if err != nil {
		return Solution{}, err
	}
	return Solution{
		Kept:      kept,
		Satisfied: iv.Point,
		Estimated: true,
		EstLo:     iv.Lo,
		EstHi:     iv.Hi,
	}, nil
}
