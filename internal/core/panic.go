package core

import (
	"fmt"
	"runtime/debug"

	"standout/internal/obsv"
)

// PanicError is a solver panic converted to an error at a recovery boundary:
// the per-tuple workers of SolveBatchContext recover panics into it (so one
// malformed tuple cannot take down its siblings), and serving layers use it
// to turn a panicking solve into a response instead of a dead process. The
// original panic value and the stack at recovery are preserved for
// diagnosis.
type PanicError struct {
	// Value is the value the solver panicked with.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: solver panicked: %v", e.Value)
}

var mSolvePanics = obsv.Default.Counter("standout_solve_panics_total",
	"Solver panics recovered into PanicError at a batch or serving boundary.")

// RecoverPanic converts an in-flight panic into a *PanicError assigned to
// *errp, for use as `defer core.RecoverPanic(&err)` around a solve that must
// not take down its caller. It leaves *errp alone when there is no panic.
// The recovered stack is captured at the deferred call.
func RecoverPanic(errp *error) {
	if r := recover(); r != nil {
		mSolvePanics.Add(1)
		*errp = &PanicError{Value: r, Stack: debug.Stack()}
	}
}
