package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/index"
)

// These tests hammer one shared PreparedLog (index + solution memo) from many
// goroutines. They pass under plain `go test` but exist for `go test -race`,
// where the detector checks the index's read-only sharing, the LRU's locking,
// and the batch path's coordination around a single prepared state.

// raceWorkload builds a moderately sized log and a tuple set with repeats, so
// concurrent solves exercise hits, misses, and (with a small cache) evictions.
func raceWorkload(t *testing.T, nq, ntuples int) (*dataset.QueryLog, []bitvec.Vector) {
	t.Helper()
	const width = 12
	r := rand.New(rand.NewSource(42))
	log := dataset.NewQueryLog(dataset.GenericSchema(width))
	for i := 0; i < nq; i++ {
		q := bitvec.New(width)
		k := 1 + r.Intn(4)
		for q.Count() < k {
			q.Set(r.Intn(width))
		}
		if err := log.Append(q); err != nil {
			t.Fatal(err)
		}
	}
	tuples := make([]bitvec.Vector, ntuples)
	for i := range tuples {
		if i%3 == 2 {
			tuples[i] = tuples[i-1].Clone() // repeats feed the memo
			continue
		}
		v := bitvec.New(width)
		for j := 0; j < width; j++ {
			if r.Intn(2) == 0 {
				v.Set(j)
			}
		}
		tuples[i] = v
	}
	return log, tuples
}

func TestSharedPreparedLogConcurrentSolves(t *testing.T) {
	log, tuples := raceWorkload(t, 300, 48)
	p, err := PrepareLog(log)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: capacity large enough that nothing is ever evicted. Each
	// goroutine sticks to one solver, so the workload's adjacent repeated
	// tuples (raceWorkload makes every third a copy of its predecessor) are
	// guaranteed memo hits — deterministically, since entries cannot churn.
	solvers := []Solver{BruteForce{}, ConsumeAttr{}, ConsumeAttrCumul{}, MaxFreqItemSets{Backend: BackendExactDFS}}
	hammer := func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				s := solvers[g%len(solvers)]
				for i, tuple := range tuples {
					sol, err := p.SolveContext(context.Background(), s, tuple, 4)
					if err != nil {
						t.Errorf("g%d tuple %d: %v", g, i, err)
						return
					}
					if got := log.Satisfied(sol.Kept); got != sol.Satisfied {
						t.Errorf("g%d tuple %d: reported %d, recount %d", g, i, sol.Satisfied, got)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
	hammer()
	st := p.CacheStats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("phase 1 did not exercise the memo: %+v", st)
	}
	if st.Evictions != 0 {
		t.Fatalf("phase 1 evicted below DefaultSolutionCacheSize: %+v", st)
	}

	// Phase 2: shrink the memo mid-flight and hammer again — concurrent
	// solves against a small cache exercise the eviction path under load.
	p.SetSolutionCache(8)
	hammer()
	if st := p.CacheStats(); st.Evictions == 0 {
		t.Fatalf("capacity-8 memo never evicted: %+v", st)
	}
}

// TestSharedCompressedPrepConcurrentSolves hammers one force-compressed
// PreparedLog from many goroutines and checks every solution against a
// sequentially-solved dense prep. Under -race this proves the compressed
// index's read-only sharing: columns, buckets and candidate sets are shared
// across workers while each shard peels through its own Scratch.
func TestSharedCompressedPrepConcurrentSolves(t *testing.T) {
	log, tuples := raceWorkload(t, 300, 48)
	cp, err := PrepareLogWith(log, index.Options{Mode: index.ForceCompressed})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := PrepareLogWith(log, index.Options{Mode: index.ForceDense})
	if err != nil {
		t.Fatal(err)
	}

	// Dense reference solutions, computed sequentially.
	want := make([]Solution, len(tuples))
	for i, tuple := range tuples {
		want[i], err = dp.SolveContext(context.Background(), BruteForce{}, tuple, 4)
		if err != nil {
			t.Fatal(err)
		}
	}

	ctx := WithPrepared(context.Background(), cp)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, tuple := range tuples {
				sol, err := BruteForce{}.SolveContext(ctx, Instance{Log: log, Tuple: tuple, M: 4})
				if err != nil {
					t.Errorf("g%d tuple %d: %v", g, i, err)
					return
				}
				if sol.Satisfied != want[i].Satisfied {
					t.Errorf("g%d tuple %d: compressed %d, dense %d", g, i, sol.Satisfied, want[i].Satisfied)
					return
				}
			}
		}(g)
	}
	// A concurrent parallel batch shares the same compressed prep.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sols, errs, err := SolveBatchContext(ctx, ConsumeAttrCumul{}, log, tuples, 4, 4)
		if err != nil {
			t.Error(err)
			return
		}
		for i := range sols {
			if errs[i] != nil {
				t.Errorf("batch tuple %d: %v", i, errs[i])
				return
			}
			if got := log.Satisfied(sols[i].Kept); got != sols[i].Satisfied {
				t.Errorf("batch tuple %d: reported %d, recount %d", i, sols[i].Satisfied, got)
				return
			}
		}
	}()
	wg.Wait()
}

func TestBatchSharesOnePreparedLog(t *testing.T) {
	log, tuples := raceWorkload(t, 200, 32)
	p, err := PrepareLog(log)
	if err != nil {
		t.Fatal(err)
	}
	// Two concurrent batches share the same explicit PreparedLog.
	ctx := WithPrepared(context.Background(), p)
	var wg sync.WaitGroup
	for b := 0; b < 2; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sols, errs, err := SolveBatchContext(ctx, ConsumeAttrCumul{}, log, tuples, 4, 4)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range sols {
				if errs[i] != nil {
					t.Errorf("tuple %d: %v", i, errs[i])
					return
				}
				if got := log.Satisfied(sols[i].Kept); got != sols[i].Satisfied {
					t.Errorf("tuple %d: reported %d, recount %d", i, sols[i].Satisfied, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := p.CacheStats(); st.Hits == 0 {
		t.Fatalf("repeated tuples across two batches produced no memo hits: %+v", st)
	}
}

func TestBatchCancellationWithSharedPrep(t *testing.T) {
	log, tuples := raceWorkload(t, 300, 64)
	p, err := PrepareLog(log)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(WithPrepared(context.Background(), p))

	done := make(chan struct{})
	var sols []Solution
	var errs []error
	var batchErr error
	go func() {
		defer close(done)
		sols, errs, batchErr = SolveBatchContext(ctx, BruteForce{}, log, tuples, 6, 4)
	}()
	cancel() // mid-batch (possibly before the first dequeue — both are legal)
	<-done

	if batchErr != nil && !errors.Is(batchErr, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled or nil", batchErr)
	}
	for i := range sols {
		if errs[i] != nil && !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("tuple %d: unexpected error %v", i, errs[i])
		}
		// A tuple either completed with a valid solution or was skipped.
		if errs[i] == nil && sols[i].Kept.Width() != 0 {
			if got := log.Satisfied(sols[i].Kept); got != sols[i].Satisfied {
				t.Fatalf("tuple %d: reported %d, recount %d", i, sols[i].Satisfied, got)
			}
		}
	}
}
