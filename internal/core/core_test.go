package core

import (
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/gen"
)

// example1 is the running example of §II.A (Fig 1).
func example1(t *testing.T) Instance {
	t.Helper()
	schema := dataset.MustSchema([]string{"AC", "FourDoor", "Turbo", "PowerDoors", "AutoTrans", "PowerBrakes"})
	log := dataset.NewQueryLog(schema)
	for _, row := range []string{"110000", "100100", "010100", "000101", "001010"} {
		v, err := bitvec.FromString(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	tuple, err := bitvec.FromString("110111")
	if err != nil {
		t.Fatal(err)
	}
	return Instance{Log: log, Tuple: tuple, M: 3}
}

func exactSolvers() map[string]Solver {
	return map[string]Solver{
		"BruteForce": BruteForce{},
		"ILP":        ILP{},
		"MFI-walk":   MaxFreqItemSets{Backend: BackendTwoPhaseWalk},
		"MFI-bottom": MaxFreqItemSets{Backend: BackendBottomUpWalk},
		"MFI-dfs":    MaxFreqItemSets{Backend: BackendExactDFS},
	}
}

func greedySolvers() map[string]Solver {
	return map[string]Solver{
		"ConsumeAttr":      ConsumeAttr{},
		"ConsumeAttrCumul": ConsumeAttrCumul{},
		"ConsumeQueries":   ConsumeQueries{},
	}
}

func allSolvers() map[string]Solver {
	out := exactSolvers()
	for k, v := range greedySolvers() {
		out[k] = v
	}
	return out
}

func TestExample1AllExactSolversFindOptimum(t *testing.T) {
	in := example1(t)
	for name, s := range exactSolvers() {
		t.Run(name, func(t *testing.T) {
			sol, err := s.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Satisfied != 3 {
				t.Fatalf("satisfied=%d, want 3", sol.Satisfied)
			}
			// The unique optimum keeps AC, FourDoor, PowerDoors.
			if sol.Kept.String() != "110100" {
				t.Fatalf("kept=%v, want 110100", sol.Kept)
			}
			if sol.Kept.Count() != 3 {
				t.Fatalf("kept %d attrs", sol.Kept.Count())
			}
		})
	}
}

func TestExample1SolutionValidity(t *testing.T) {
	in := example1(t)
	for name, s := range allSolvers() {
		t.Run(name, func(t *testing.T) {
			sol, err := s.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			if !sol.Kept.SubsetOf(in.Tuple) {
				t.Errorf("kept %v not a subset of tuple %v", sol.Kept, in.Tuple)
			}
			if sol.Kept.Count() > in.M {
				t.Errorf("kept %d attrs, budget %d", sol.Kept.Count(), in.M)
			}
			if got := in.Log.Satisfied(sol.Kept); got != sol.Satisfied {
				t.Errorf("reported %d satisfied, recount %d", sol.Satisfied, got)
			}
		})
	}
}

// randomInstance builds a random SOC-CB-QL instance.
func randomInstance(r *rand.Rand) Instance {
	width := 4 + r.Intn(8)
	schema := dataset.GenericSchema(width)
	log := dataset.NewQueryLog(schema)
	nq := 1 + r.Intn(25)
	for i := 0; i < nq; i++ {
		k := 1 + r.Intn(4)
		if k > width {
			k = width
		}
		q := bitvec.New(width)
		for q.Count() < k {
			q.Set(r.Intn(width))
		}
		log.Queries = append(log.Queries, q)
	}
	tuple := bitvec.New(width)
	for j := 0; j < width; j++ {
		if r.Float64() < 0.6 {
			tuple.Set(j)
		}
	}
	m := r.Intn(width + 2)
	return Instance{Log: log, Tuple: tuple, M: m}
}

func TestExactSolversAgreeOnRandomInstances(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	brute := BruteForce{}
	for trial := 0; trial < 120; trial++ {
		in := randomInstance(r)
		want, err := brute.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		for name, s := range exactSolvers() {
			if name == "BruteForce" {
				continue
			}
			sol, err := s.Solve(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if sol.Satisfied != want.Satisfied {
				t.Fatalf("trial %d %s: satisfied=%d, brute force=%d (m=%d tuple=%v)",
					trial, name, sol.Satisfied, want.Satisfied, in.M, in.Tuple)
			}
			if !sol.Kept.SubsetOf(in.Tuple) || sol.Kept.Count() > in.M {
				t.Fatalf("trial %d %s: invalid solution %v", trial, name, sol.Kept)
			}
		}
	}
}

func TestGreedyNeverBeatsOptimalAndIsValid(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	brute := BruteForce{}
	for trial := 0; trial < 120; trial++ {
		in := randomInstance(r)
		want, err := brute.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		for name, s := range greedySolvers() {
			sol, err := s.Solve(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if sol.Satisfied > want.Satisfied {
				t.Fatalf("trial %d %s: greedy %d beats optimum %d",
					trial, name, sol.Satisfied, want.Satisfied)
			}
			if !sol.Kept.SubsetOf(in.Tuple) || sol.Kept.Count() > in.M {
				t.Fatalf("trial %d %s: invalid solution", trial, name)
			}
			if got := in.Log.Satisfied(sol.Kept); got != sol.Satisfied {
				t.Fatalf("trial %d %s: satisfied miscounted", trial, name)
			}
		}
	}
}

func TestGreedyUsesFullBudget(t *testing.T) {
	// Greedy solvers should not leave budget unused when attributes remain.
	r := rand.New(rand.NewSource(303))
	for trial := 0; trial < 50; trial++ {
		in := randomInstance(r)
		wantKeep := in.M
		if c := in.Tuple.Count(); c < wantKeep {
			wantKeep = c
		}
		for name, s := range greedySolvers() {
			sol, err := s.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Kept.Count() != wantKeep {
				t.Fatalf("trial %d %s: kept %d, budget allows %d",
					trial, name, sol.Kept.Count(), wantKeep)
			}
		}
	}
}

func TestCliqueReduction(t *testing.T) {
	// Theorem 1: a compression with m=r attributes satisfies r(r−1)/2 queries
	// iff the graph has an r-clique. Plant one and verify all exact solvers
	// find it.
	g, _ := gen.PlantedCliqueGraph(7, 12, 4, 0.15)
	log, tuple := gen.CliqueInstance(g)
	in := Instance{Log: log, Tuple: tuple, M: 4}
	for name, s := range exactSolvers() {
		sol, err := s.Solve(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Satisfied < 4*3/2 {
			t.Errorf("%s: satisfied=%d, want ≥ 6 (planted 4-clique)", name, sol.Satisfied)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	schema := dataset.GenericSchema(5)
	emptyLog := dataset.NewQueryLog(schema)
	logWithEmptyQuery := dataset.NewQueryLog(schema)
	if err := logWithEmptyQuery.Append(bitvec.New(5)); err != nil {
		t.Fatal(err)
	}
	if err := logWithEmptyQuery.Append(bitvec.FromIndices(5, 0, 1)); err != nil {
		t.Fatal(err)
	}
	tuple := bitvec.FromIndices(5, 0, 1, 3)

	cases := []struct {
		name string
		in   Instance
		want int
	}{
		{"empty log", Instance{Log: emptyLog, Tuple: tuple, M: 2}, 0},
		{"m=0 counts empty queries", Instance{Log: logWithEmptyQuery, Tuple: tuple, M: 0}, 1},
		{"m covers everything", Instance{Log: logWithEmptyQuery, Tuple: tuple, M: 5}, 2},
		{"zero tuple", Instance{Log: logWithEmptyQuery, Tuple: bitvec.New(5), M: 3}, 1},
	}
	for _, tc := range cases {
		for name, s := range allSolvers() {
			sol, err := s.Solve(tc.in)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, name, err)
			}
			isExact := false
			for en := range exactSolvers() {
				if en == name {
					isExact = true
				}
			}
			if isExact && sol.Satisfied != tc.want {
				t.Errorf("%s/%s: satisfied=%d, want %d", tc.name, name, sol.Satisfied, tc.want)
			}
			if !isExact && sol.Satisfied > tc.want {
				t.Errorf("%s/%s: greedy %d beats optimum %d", tc.name, name, sol.Satisfied, tc.want)
			}
		}
	}
}

func TestValidationErrors(t *testing.T) {
	schema := dataset.GenericSchema(4)
	log := dataset.NewQueryLog(schema)
	bad := []Instance{
		{Log: nil, Tuple: bitvec.New(4), M: 1},
		{Log: log, Tuple: bitvec.New(3), M: 1},
		{Log: log, Tuple: bitvec.New(4), M: -1},
	}
	for i, in := range bad {
		for name, s := range allSolvers() {
			if _, err := s.Solve(in); err == nil {
				t.Errorf("case %d: %s accepted invalid instance", i, name)
			}
		}
	}
}

func TestMFIPreprocessingMatchesDirectSolve(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(r)
		s := MaxFreqItemSets{Backend: BackendExactDFS}
		direct, err := s.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := s.Preprocess(in.Log)
		if err != nil {
			t.Fatal(err)
		}
		// Solve several tuples against the same prep, including the original.
		for probe := 0; probe < 3; probe++ {
			tuple := in.Tuple
			if probe > 0 {
				tuple = bitvec.New(in.Log.Width())
				for j := 0; j < tuple.Width(); j++ {
					if r.Float64() < 0.5 {
						tuple.Set(j)
					}
				}
			}
			want, err := BruteForce{}.Solve(Instance{Log: in.Log, Tuple: tuple, M: in.M})
			if err != nil {
				t.Fatal(err)
			}
			got, err := prep.SolvePrepared(tuple, in.M)
			if err != nil {
				t.Fatal(err)
			}
			if got.Satisfied != want.Satisfied {
				t.Fatalf("trial %d probe %d: prepared %d, brute %d",
					trial, probe, got.Satisfied, want.Satisfied)
			}
		}
		if direct.Satisfied != in.Log.Satisfied(direct.Kept) {
			t.Fatal("direct solve inconsistent")
		}
	}
}

func TestMFIFixedThreshold(t *testing.T) {
	in := example1(t)
	// Optimum satisfies 3 of 5 queries. A fixed threshold of 3 still finds it.
	s := MaxFreqItemSets{Backend: BackendExactDFS, Threshold: 3}
	sol, err := s.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied != 3 {
		t.Fatalf("threshold 3: satisfied=%d", sol.Satisfied)
	}
	// A fixed threshold of 4 exceeds the optimum: the paper says the mining
	// returns empty; our solver falls back to the frequency-greedy choice.
	s.Threshold = 4
	sol, err = s.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied > 3 {
		t.Fatalf("fallback beats optimum: %d", sol.Satisfied)
	}
	if sol.Kept.Count() != 3 {
		t.Fatalf("fallback kept %d attrs", sol.Kept.Count())
	}
}

func TestMFIAdaptiveInitialThreshold(t *testing.T) {
	in := example1(t)
	s := MaxFreqItemSets{Backend: BackendExactDFS, InitialThreshold: 2}
	sol, err := s.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied != 3 || sol.Stats.Threshold != 2 {
		t.Fatalf("satisfied=%d threshold=%d", sol.Satisfied, sol.Stats.Threshold)
	}
}

func TestMFIDeterministicWithSeed(t *testing.T) {
	in := example1(t)
	a, err := MaxFreqItemSets{Seed: 5}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaxFreqItemSets{Seed: 5}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Kept.Equal(b.Kept) || a.Satisfied != b.Satisfied {
		t.Error("same seed, different solutions")
	}
}

func TestILPStatsAndOptimalFlag(t *testing.T) {
	in := example1(t)
	sol, err := ILP{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal {
		t.Error("ILP solution not flagged optimal")
	}
	if sol.Stats.Nodes < 1 {
		t.Errorf("nodes=%d", sol.Stats.Nodes)
	}
}

func TestBruteForceCandidateCount(t *testing.T) {
	in := example1(t)
	sol, err := BruteForce{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// C(5,3) = 10 candidates (tuple has 5 attributes).
	if sol.Stats.Candidates != 10 {
		t.Errorf("candidates=%d, want 10", sol.Stats.Candidates)
	}
}

func TestSolverNames(t *testing.T) {
	want := map[string]string{
		"BruteForce-SOC-CB-QL":       BruteForce{}.Name(),
		"ILP-SOC-CB-QL":              ILP{}.Name(),
		"MaxFreqItemSets-SOC-CB-QL":  MaxFreqItemSets{}.Name(),
		"ConsumeAttr-SOC-CB-QL":      ConsumeAttr{}.Name(),
		"ConsumeAttrCumul-SOC-CB-QL": ConsumeAttrCumul{}.Name(),
		"ConsumeQueries-SOC-CB-QL":   ConsumeQueries{}.Name(),
	}
	for expected, got := range want {
		if got != expected {
			t.Errorf("Name()=%q, want %q", got, expected)
		}
	}
}

func TestBackendString(t *testing.T) {
	for b, want := range map[MiningBackend]string{
		BackendTwoPhaseWalk: "two-phase-walk",
		BackendBottomUpWalk: "bottom-up-walk",
		BackendExactDFS:     "exact-dfs",
		MiningBackend(9):    "unknown",
	} {
		if b.String() != want {
			t.Errorf("String()=%q, want %q", b.String(), want)
		}
	}
}

func TestAttrNames(t *testing.T) {
	in := example1(t)
	sol, err := BruteForce{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	names := sol.AttrNames(in.Log.Schema)
	if len(names) != 3 || names[0] != "AC" || names[1] != "FourDoor" || names[2] != "PowerDoors" {
		t.Errorf("names=%v", names)
	}
}

// TestRealisticCarsInstance is an integration test on the generated cars
// data at small scale: all exact solvers must agree.
func TestRealisticCarsInstance(t *testing.T) {
	tab := gen.Cars(1, 500)
	log := gen.RealWorkload(tab, 2, 60)
	tuples := gen.PickTuples(tab, 3, 5)
	for _, m := range []int{4, 6} {
		for _, tuple := range tuples {
			in := Instance{Log: log, Tuple: tuple, M: m}
			want, err := BruteForce{}.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			for name, s := range exactSolvers() {
				sol, err := s.Solve(in)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if sol.Satisfied != want.Satisfied {
					t.Fatalf("%s: %d != brute %d (m=%d)", name, sol.Satisfied, want.Satisfied, m)
				}
			}
		}
	}
}

// TestTheorem1Equivalence checks the full NP-completeness correspondence on
// random graphs: the optimal SOC value at budget r equals the maximum number
// of edges among r-vertex induced subgraphs, and it reaches r(r−1)/2 exactly
// when an r-clique exists.
func TestTheorem1Equivalence(t *testing.T) {
	r := rand.New(rand.NewSource(555))
	for trial := 0; trial < 25; trial++ {
		n := 5 + r.Intn(5)
		g := gen.Graph{N: n}
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.5 {
					adj[i][j] = true
					g.Edges = append(g.Edges, [2]int{i, j})
				}
			}
		}
		if len(g.Edges) == 0 {
			continue
		}
		log, tuple := gen.CliqueInstance(g)
		budget := 2 + r.Intn(n-1)

		sol, err := BruteForce{}.Solve(Instance{Log: log, Tuple: tuple, M: budget})
		if err != nil {
			t.Fatal(err)
		}

		// Direct maximum over induced subgraphs of size ≤ budget.
		best := 0
		hasClique := false
		for mask := 0; mask < 1<<n; mask++ {
			verts := []int{}
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					verts = append(verts, v)
				}
			}
			if len(verts) > budget {
				continue
			}
			edges := 0
			for a := 0; a < len(verts); a++ {
				for b := a + 1; b < len(verts); b++ {
					if adj[verts[a]][verts[b]] {
						edges++
					}
				}
			}
			if edges > best {
				best = edges
			}
			if len(verts) == budget && edges == budget*(budget-1)/2 {
				hasClique = true
			}
		}
		if sol.Satisfied != best {
			t.Fatalf("trial %d: SOC=%d, max induced edges=%d", trial, sol.Satisfied, best)
		}
		if wantFull := budget * (budget - 1) / 2; (sol.Satisfied == wantFull) != hasClique && wantFull > 0 {
			t.Fatalf("trial %d: clique correspondence broken: satisfied=%d full=%d clique=%v",
				trial, sol.Satisfied, wantFull, hasClique)
		}
	}
}

func TestIPSolverAgreesWithBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	for trial := 0; trial < 120; trial++ {
		in := randomInstance(r)
		want, err := BruteForce{}.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := IP{}.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if got.Satisfied != want.Satisfied {
			t.Fatalf("trial %d: IP %d != brute %d", trial, got.Satisfied, want.Satisfied)
		}
		if !got.Kept.SubsetOf(in.Tuple) || got.Kept.Count() > in.M {
			t.Fatalf("trial %d: invalid solution", trial)
		}
		if !got.Optimal {
			t.Fatalf("trial %d: not flagged optimal: %+v", trial, got)
		}
		if in.M < in.Tuple.Count() && got.Stats.Nodes < 1 {
			t.Fatalf("trial %d: no nodes recorded: %+v", trial, got)
		}
	}
}

func TestIPSolverExample1(t *testing.T) {
	in := example1(t)
	sol, err := IP{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied != 3 || sol.Kept.String() != "110100" {
		t.Fatalf("sol=%+v", sol)
	}
	if (IP{}).Name() != "IP-SOC-CB-QL" {
		t.Fatal("name")
	}
}

func TestIPSolverEdgeCases(t *testing.T) {
	schema := dataset.GenericSchema(4)
	log := dataset.NewQueryLog(schema)
	if err := log.Append(bitvec.New(4)); err != nil {
		t.Fatal(err)
	}
	sol, err := IP{}.Solve(Instance{Log: log, Tuple: bitvec.New(4), M: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied != 1 { // the empty query
		t.Fatalf("satisfied=%d", sol.Satisfied)
	}
	if _, err := (IP{}).Solve(Instance{Log: nil, Tuple: bitvec.New(4), M: 1}); err == nil {
		t.Fatal("nil log accepted")
	}
}
