package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/estimate"
)

// TestEstimateSharedPrepConcurrent hammers one shared estimator model from 8
// solver goroutines while a writer publishes new log generations — weighted
// appends via copy-on-write Extend plus periodic Touch calls that void
// in-flight preps. Exists for `go test -race`: the estimate rung's whole
// premise is one immutable model shared lock-free across solves, and the
// ErrStalePrep retry path must hand readers a fresh generation (with a fresh
// model) exactly like the serving ladder does. Every successful solve's
// certified interval is recounted against the immutable log generation it
// actually solved — the soundness invariant under churn.
func TestEstimateSharedPrepConcurrent(t *testing.T) {
	log, tuples := raceWorkload(t, 150, 24)

	type generation struct {
		prep *PreparedLog
	}
	var cur atomic.Pointer[generation]
	p0, err := PrepareLog(log)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the first model up front so readers start on the shared path.
	if _, err := p0.EstimatorModel(context.Background()); err != nil {
		t.Fatal(err)
	}
	cur.Store(&generation{prep: p0})

	const (
		readers   = 8
		solvesPer = 40
		appends   = 30
	)
	var staleRetries atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(17))
		width := log.Width()
		for round := 0; round < appends; round++ {
			g := cur.Load()
			old := g.prep.Log()
			if round%4 == 3 {
				old.Touch() // voids in-flight solves: readers hit ErrStalePrep
			}
			next := old.Extend()
			for k := 0; k < 1+r.Intn(3); k++ {
				q := bitvec.New(width)
				for q.Count() < 2 {
					q.Set(r.Intn(width))
				}
				if err := next.AppendWeighted(q, 1+r.Intn(4)); err != nil {
					t.Errorf("writer round %d: %v", round, err)
					return
				}
			}
			p, err := PrepareLogFromContext(context.Background(), g.prep, next)
			if err != nil {
				t.Errorf("writer round %d: rebuild: %v", round, err)
				return
			}
			cur.Store(&generation{prep: p})
		}
	}()

	for gid := 0; gid < readers; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			for i := 0; i < solvesPer; i++ {
				tuple := tuples[(gid*solvesPer+i)%len(tuples)]
				for attempt := 0; ; attempt++ {
					g := cur.Load()
					ctx := WithPrepared(context.Background(), g.prep)
					sol, err := g.prep.SolveContext(ctx, Estimate{}, tuple, 4)
					if err != nil {
						if errors.Is(err, ErrStalePrep) && attempt < 100 {
							staleRetries.Add(1)
							continue // reload the latest generation, like serve does
						}
						t.Errorf("g%d solve %d: %v", gid, i, err)
						return
					}
					if !sol.Estimated {
						t.Errorf("g%d solve %d: not marked Estimated", gid, i)
						return
					}
					// The generation's log is immutable (writers only Extend),
					// so the recount is race-free and must land in the interval.
					if exact := g.prep.Log().Satisfied(sol.Kept); exact < sol.EstLo || exact > sol.EstHi {
						t.Errorf("g%d solve %d: interval [%d,%d] misses exact %d",
							gid, i, sol.EstLo, sol.EstHi, exact)
						return
					}
					break
				}
			}
		}(gid)
	}
	wg.Wait()

	// Deterministic coverage of the retry path (the concurrent hammer above
	// only hits it when a Touch lands inside a solve window): void the final
	// generation mid-use, observe ErrStalePrep, rebuild, and solve clean —
	// exactly the serve ladder's recovery sequence.
	g := cur.Load()
	g.prep.Log().Touch()
	tuple := tuples[0]
	if _, err := g.prep.SolveContext(context.Background(), Estimate{}, tuple, 4); !errors.Is(err, ErrStalePrep) {
		t.Fatalf("touched prep: err = %v, want ErrStalePrep", err)
	}
	staleRetries.Add(1)
	fresh, err := PrepareLog(g.prep.Log())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := fresh.SolveContext(context.Background(), Estimate{}, tuple, 4)
	if err != nil {
		t.Fatalf("retry on rebuilt prep: %v", err)
	}
	if exact := fresh.Log().Satisfied(sol.Kept); exact < sol.EstLo || exact > sol.EstHi {
		t.Fatalf("retry interval [%d,%d] misses exact %d", sol.EstLo, sol.EstHi, exact)
	}
	t.Logf("%d solves, %d stale retries", readers*solvesPer, staleRetries.Load())
}

// TestEstimatorModelSingleFlight: concurrent first callers of EstimatorModel
// must fold into one build and share the identical model pointer.
func TestEstimatorModelSingleFlight(t *testing.T) {
	log, _ := raceWorkload(t, 120, 1)
	p, err := PrepareLog(log)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	models := make([]*estimate.Model, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := p.EstimatorModel(context.Background())
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if models[i] != models[0] {
			t.Fatalf("caller %d got a different model pointer", i)
		}
	}
}
