package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/fault"
)

// TestSegmentedPrepConcurrentAppendAndCompaction hammers one shared
// segmented prep chain from 8 solver goroutines while a writer keeps
// publishing new generations: copy-on-write Extend + weighted appends,
// incremental PrepareLogFrom rebuilds, size-tiered compaction firing (and
// randomly failing, via the core.prep.compact fault site) mid-solve, and
// occasional Touch calls that void in-flight preps so readers exercise the
// ErrStalePrep retry loop. Exists for `go test -race`: old generations must
// keep scoring their immutable snapshots while segments are merged and
// shared structurally underneath.
func TestSegmentedPrepConcurrentAppendAndCompaction(t *testing.T) {
	log, tuples := raceWorkload(t, 200, 32)

	// Compaction fails every other rebuild: segment layouts diverge between
	// generations, so solves cross single- and multi-segment preps.
	buildCtx := fault.WithInjector(context.Background(),
		fault.New(7, fault.Rule{Site: "core.prep.compact", Every: 2, Kind: fault.KindError, Msg: "chaos compaction"}))

	type generation struct {
		prep *PreparedLog
	}
	var cur atomic.Pointer[generation]
	p0, err := PrepareLog(log)
	if err != nil {
		t.Fatal(err)
	}
	cur.Store(&generation{prep: p0})

	const (
		readers   = 8
		solvesPer = 60
		appends   = 40
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: each round extends the current generation with a few weighted
	// queries and publishes an incrementally rebuilt prep. Every fifth round
	// first Touches the outgoing generation — in-flight SolveContext calls on
	// it observe ErrStalePrep, and the lineage certificate is voided so the
	// rebuild falls back to a full build (both paths must serve identically).
	var deltaBuilds, fullBuilds atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		r := rand.New(rand.NewSource(99))
		width := log.Width()
		for round := 0; round < appends; round++ {
			g := cur.Load()
			old := g.prep.Log()
			if round%5 == 4 {
				old.Touch()
			}
			next := old.Extend()
			for k := 0; k < 1+r.Intn(3); k++ {
				q := bitvec.New(width)
				for q.Count() < 2 {
					q.Set(r.Intn(width))
				}
				if err := next.AppendWeighted(q, 1+r.Intn(3)); err != nil {
					t.Errorf("writer round %d: %v", round, err)
					return
				}
			}
			p, err := PrepareLogFromContext(buildCtx, g.prep, next)
			if err != nil {
				t.Errorf("writer round %d: rebuild: %v", round, err)
				return
			}
			if p.Delta() {
				deltaBuilds.Add(1)
			} else {
				fullBuilds.Add(1)
			}
			cur.Store(&generation{prep: p})
		}
	}()

	solvers := []Solver{BruteForce{}, ConsumeAttr{}, ConsumeAttrCumul{}, ConsumeQueries{}, MaxFreqItemSets{Backend: BackendExactDFS}}
	for gid := 0; gid < readers; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			s := solvers[gid%len(solvers)]
			for i := 0; i < solvesPer; i++ {
				tuple := tuples[(gid*solvesPer+i)%len(tuples)]
				// Retry loop: a Touch racing the solve surfaces ErrStalePrep;
				// the recovery is to reload the latest generation — exactly
				// what the serving layer's retry does.
				for attempt := 0; ; attempt++ {
					g := cur.Load()
					sol, err := g.prep.SolveContext(context.Background(), s, tuple, 4)
					if err != nil {
						if errors.Is(err, ErrStalePrep) && attempt < 50 {
							continue
						}
						t.Errorf("g%d solve %d: %v", gid, i, err)
						return
					}
					// Recount over the generation actually solved. Its log is
					// immutable (writers only Extend), so this is race-free even
					// though newer generations exist by now.
					if got := g.prep.Log().Satisfied(sol.Kept); got != sol.Satisfied {
						t.Errorf("g%d solve %d: reported %d, recount %d", gid, i, sol.Satisfied, got)
						return
					}
					break
				}
			}
		}(gid)
	}
	wg.Wait()
	<-stop

	final := cur.Load().prep
	if final.Segments() < 1 {
		t.Fatalf("final prep has %d segments", final.Segments())
	}
	// Both rebuild flavours must have run: Touch rounds void the lineage
	// certificate (full re-index), every other round extends incrementally.
	if deltaBuilds.Load() == 0 {
		t.Error("no incremental delta builds observed")
	}
	if fullBuilds.Load() == 0 {
		t.Error("no full rebuilds observed (Touch should void the lineage)")
	}
	t.Logf("final generation: %d queries, %d segments; %d delta / %d full rebuilds",
		final.Log().Size(), final.Segments(), deltaBuilds.Load(), fullBuilds.Load())
}
