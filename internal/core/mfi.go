package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/itemsets"
	"standout/internal/obsv"
)

// MiningBackend selects how MaxFreqItemSets mines maximal frequent itemsets
// of the complemented query log.
type MiningBackend int

const (
	// BackendTwoPhaseWalk is the paper's top-down/bottom-up two-phase random
	// walk (§IV.C, Fig 3). Fast on the dense complement tables; complete with
	// high probability but not guaranteed.
	BackendTwoPhaseWalk MiningBackend = iota
	// BackendBottomUpWalk is the bottom-up random walk of Gunopulos et al.
	// [11], included as the ablation baseline the paper argues against.
	BackendBottomUpWalk
	// BackendExactDFS mines maximal sets exactly by depth-first search;
	// slower but turns the solver into a guaranteed-optimal algorithm.
	BackendExactDFS
)

func (b MiningBackend) String() string {
	switch b {
	case BackendTwoPhaseWalk:
		return "two-phase-walk"
	case BackendBottomUpWalk:
		return "bottom-up-walk"
	case BackendExactDFS:
		return "exact-dfs"
	}
	return "unknown"
}

// MaxFreqItemSets is the scalable exact algorithm of §IV.C. The query log is
// complemented (queries become ~q), maximal frequent itemsets of the dense
// complement are mined, and the best compression is found among the
// level-(M−m) subsets of those maximal sets that are supersets of ~t.
//
// The support threshold follows the paper's adaptive procedure: start high
// and halve until a solution appears (guaranteed at threshold 1 whenever any
// compression satisfies at least one query). A fixed threshold can be set to
// reproduce the paper's "1% of the query log" heuristic, in which case the
// solver reports the best compression satisfying at least that many queries
// or falls back to a frequency-greedy choice when there is none.
type MaxFreqItemSets struct {
	// Backend selects the miner; the zero value is the paper's two-phase walk.
	Backend MiningBackend
	// Threshold fixes the support threshold; 0 means adaptive halving.
	Threshold int
	// InitialThreshold seeds adaptive halving; 0 means |restricted log|.
	InitialThreshold int
	// Walk tunes the random-walk backends.
	Walk itemsets.WalkOptions
	// Seed drives the walk RNG when Walk.Rng is nil; two solves with the same
	// seed are identical.
	Seed int64
	// Workers parallelizes the mining of the exact-DFS backend (the DFS
	// root's branches fan out over internal/par); ≤ 1 mines sequentially.
	// Results are bit-identical for any worker count: the mined maximal-set
	// list is canonicalized to a total order either way (DESIGN.md §11). The
	// walk backends ignore Workers — a walk consumes one shared RNG stream,
	// which parallel consumption would reorder, changing results.
	Workers int
}

// Name implements Solver.
func (MaxFreqItemSets) Name() string { return "MaxFreqItemSets-SOC-CB-QL" }

// Solve implements Solver. For repeated solves over the same log (the
// regime the paper's preprocessing discussion targets), use Preprocess once
// and SolvePrepared per tuple.
func (s MaxFreqItemSets) Solve(in Instance) (Solution, error) {
	return s.SolveContext(context.Background(), in)
}

// SolveContext implements Solver. Cancellation is polled inside the mining
// backend (per DFS call or walk iteration) and throughout the level-(M−m)
// candidate enumeration.
func (s MaxFreqItemSets) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	obs := beginSolve(ctx, s.Name(), in)
	sol, err := s.solve(ctx, in)
	return obs.end(ctx, sol, err)
}

func (s MaxFreqItemSets) solve(ctx context.Context, in Instance) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, fmt.Errorf("core: mfi: %w", err)
	}
	n, err := normalize(ctx, in)
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		return n.full(), nil
	}
	// Mining always runs per tuple, on the log projected to the tuple's
	// attributes, even when a PreparedLog is attached: projection bounds the
	// mining dimension by popcount(t), and exact DFS over the full schema
	// width is exponentially worse — sharing full-complement mining across a
	// batch loses far more than it amortizes (and the walk backends would
	// additionally change results by consuming randomness differently). The
	// attached index still accelerates normalize and scoring, and repeated
	// tuples hit the PreparedLog's solution memo above this call.
	return s.solveNormalized(ctx, n, nil)
}

// Prep is the reusable preprocessing state of §IV.C: the complemented query
// log's miner and, per threshold already explored, the mined maximal
// frequent itemsets. It is safe to reuse across tuples and budgets for the
// same query log; it is not safe for concurrent use.
type Prep struct {
	s     MaxFreqItemSets
	log   *dataset.QueryLog
	miner *itemsets.Miner

	mu     sync.Mutex // guards perThr and deduplicates concurrent mining
	perThr map[int][]itemsets.ItemsetCount
}

// Preprocess mines nothing yet but builds the complement representation;
// maximal itemsets are mined lazily per threshold and cached. Passing the
// whole query log here (rather than a per-tuple restriction) is what makes
// the cache reusable across tuples.
func (s MaxFreqItemSets) Preprocess(log *dataset.QueryLog) (*Prep, error) {
	if err := log.Validate(); err != nil {
		return nil, err
	}
	return &Prep{
		s:      s,
		log:    log,
		miner:  itemsets.NewMinerWeighted(log.AsTable().Complement(), log.Weights),
		perThr: map[int][]itemsets.ItemsetCount{},
	}, nil
}

// SolvePrepared solves an instance over the preprocessed log. in.Log must be
// the same log passed to Preprocess.
func (p *Prep) SolvePrepared(tuple bitvec.Vector, m int) (Solution, error) {
	return p.SolvePreparedContext(context.Background(), tuple, m)
}

// SolvePreparedContext is SolvePrepared under a context. A solve interrupted
// mid-mining leaves the per-threshold cache untouched (partial mining results
// are never cached), so a later solve at the same threshold starts clean.
func (p *Prep) SolvePreparedContext(ctx context.Context, tuple bitvec.Vector, m int) (Solution, error) {
	obs := beginSolve(ctx, PreparedSolver{}.Name(), Instance{Log: p.log, Tuple: tuple, M: m})
	sol, err := p.solvePrepared(ctx, tuple, m)
	return obs.end(ctx, sol, err)
}

func (p *Prep) solvePrepared(ctx context.Context, tuple bitvec.Vector, m int) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, fmt.Errorf("core: mfi prepared: %w", err)
	}
	n, err := normalize(ctx, Instance{Log: p.log, Tuple: tuple, M: m})
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		return n.full(), nil
	}
	return p.s.solveNormalized(ctx, n, p)
}

// solveNormalized dispatches a one-shot solve to the projected sub-problem
// over the tuple's own attributes, or a prepared solve to the shared
// full-width miner.
//
// The projection is an exact reduction: every row of the restricted
// complement contains ~t, so the bits outside the tuple are constant across
// the mined table; dropping them shrinks the lattice from M to |t|
// dimensions without changing the set of maximal frequent itemsets (each
// projected set corresponds to its union with ~t).
func (s MaxFreqItemSets) solveNormalized(ctx context.Context, n normalized, prep *Prep) (Solution, error) {
	if prep != nil {
		return s.solveCore(ctx, n, prep)
	}
	width := n.in.Tuple.Width()
	proj := dataset.NewQueryLog(dataset.GenericSchema(len(n.ones)))
	pos := make(map[int]int, len(n.ones)) // original attr → projected index
	for i, j := range n.ones {
		pos[j] = i
	}
	for qi, q := range n.log.Queries {
		pq := bitvec.New(len(n.ones))
		for _, j := range q.Ones() {
			pq.Set(pos[j])
		}
		proj.Queries = append(proj.Queries, pq)
		if n.log.Weights != nil {
			proj.Weights = append(proj.Weights, n.log.Weights[qi])
		}
	}
	pn, err := normalize(ctx, Instance{Log: proj, Tuple: bitvec.New(len(n.ones)).Not(), M: n.m})
	if err != nil {
		return Solution{}, err
	}
	sol, err := s.solveCore(ctx, pn, nil)
	if err != nil {
		return Solution{}, err
	}
	attrs := make([]int, 0, sol.Kept.Count())
	for _, i := range sol.Kept.Ones() {
		attrs = append(attrs, n.ones[i])
	}
	sol.Kept = bitvec.FromIndices(width, attrs...)
	sol.Satisfied = n.score(sol.Kept) // identical count, recomputed in original space
	return sol, nil
}

// solveCore runs the MFI search. When prep is non-nil the mining runs on the
// full log's complement with caching; otherwise on the (projected)
// restricted log's complement.
func (s MaxFreqItemSets) solveCore(ctx context.Context, n normalized, prep *Prep) (Solution, error) {
	mineLog := n.log
	if prep != nil {
		mineLog = prep.log
	}
	// Support thresholds are in weight units: the miner counts weighted
	// support, the greedy seed below is a weighted score, and a hit at any
	// threshold proves a weighted-OPT bound — the optimality argument carries
	// over verbatim with "queries" read as "total weight".
	size := mineLog.TotalWeight()
	stats := Stats{}
	tr := obsv.FromContext(ctx)

	var oneShotMiner *itemsets.Miner // built lazily, shared across thresholds
	runMiner := func(miner *itemsets.Miner, thr int) ([]itemsets.ItemsetCount, error) {
		sp := tr.StartSpan("mine")
		defer sp.End()
		switch s.Backend {
		case BackendExactDFS:
			return miner.MaximalDFSParallelContext(ctx, thr, s.Workers)
		case BackendBottomUpWalk:
			return miner.MaximalRandomWalkBottomUpContext(ctx, thr, s.walkOpts())
		default:
			return miner.MaximalRandomWalkContext(ctx, thr, s.walkOpts())
		}
	}
	mine := func(thr int) ([]itemsets.ItemsetCount, error) {
		if prep != nil {
			// The lock is held across mining so concurrent SolvePrepared
			// callers hitting the same threshold mine it exactly once.
			prep.mu.Lock()
			defer prep.mu.Unlock()
			if cached, ok := prep.perThr[thr]; ok {
				return cached, nil
			}
			out, err := runMiner(prep.miner, thr)
			if err != nil {
				// Mining was interrupted: the itemsets gathered so far are an
				// incomplete sample and must not poison the shared cache.
				return nil, err
			}
			prep.perThr[thr] = out
			return out, nil
		}
		if oneShotMiner == nil {
			oneShotMiner = itemsets.NewMinerWeighted(mineLog.AsTable().Complement(), mineLog.Weights)
		}
		return runMiner(oneShotMiner, thr)
	}

	search := func(thr int) (Solution, bool, error) {
		tr.Count("mfi.rounds", 1)
		tr.Event("mfi.threshold", int64(thr))
		mfis, err := mine(thr)
		if err != nil {
			return Solution{}, false, fmt.Errorf("core: mfi: %w", err)
		}
		stats.MFIs += len(mfis)
		stats.Threshold = thr
		tr.Count("mfi.itemsets", int64(len(mfis)))
		before := stats.Candidates
		sp := tr.StartSpan("enumerate")
		sol, ok, err := s.bestAtLevel(ctx, n, mfis, &stats)
		sp.End()
		tr.Count("mfi.candidates", int64(stats.Candidates-before))
		return sol, ok, err
	}

	if size == 0 {
		// No satisfiable queries at all: fall back immediately.
		return s.fallback(n, stats), nil
	}

	// Why a hit at any threshold is already optimal (given complete mining):
	// every level-(M−m) candidate inside a maximal frequent itemset has
	// support ≥ thr, so a hit proves OPT ≥ thr; and the optimal I* = ~t* is
	// then itself frequent at thr, hence inside some mined maximal set and
	// enumerated. So the first threshold that yields anything yields OPT.
	if s.Threshold > 0 {
		sol, ok, err := search(s.Threshold)
		if err != nil {
			return Solution{}, err
		}
		if ok {
			sol.Optimal = s.Backend == BackendExactDFS
			sol.Stats = stats
			return sol, nil
		}
		return s.fallback(n, stats), nil
	}

	thr := s.InitialThreshold
	if thr <= 0 || thr > size {
		// Adaptive default: seed the threshold with a greedy lower bound
		// instead of the paper's "high value". Any search hit is already
		// optimal (see above), and the bound guarantees a hit on the first
		// round whenever any compression satisfies ≥ 1 query — the halving
		// loop below remains only as the safety net for walk-backend misses
		// and explicit InitialThreshold choices.
		thr = s.greedyLowerBound(n)
		if thr < 1 {
			thr = 1
		}
		if thr > size {
			thr = size
		}
		if prep != nil {
			// Quantize to a power of two so repeated solves over the same log
			// hit the per-threshold mining cache instead of mining afresh for
			// every tuple's distinct greedy bound. Lowering the threshold
			// never loses the optimum (any hit is optimal; see above).
			thr = floorPow2(thr)
		}
	}
	for {
		sol, ok, err := search(thr)
		if err != nil {
			return Solution{}, err
		}
		if ok {
			sol.Optimal = s.Backend == BackendExactDFS
			sol.Stats = stats
			return sol, nil
		}
		if thr == 1 {
			return s.fallback(n, stats), nil
		}
		thr /= 2
		if thr < 1 {
			thr = 1
		}
	}
}

func (s MaxFreqItemSets) walkOpts() itemsets.WalkOptions {
	opts := s.Walk
	if opts.Rng == nil {
		opts.Rng = rand.New(rand.NewSource(s.Seed + 1))
	}
	return opts
}

// floorPow2 returns the largest power of two ≤ x (x ≥ 1).
func floorPow2(x int) int {
	p := 1
	for p*2 <= x {
		p *= 2
	}
	return p
}

// greedyLowerBound scores the frequency-greedy compression over the
// restricted log, giving a cheap valid lower bound on the optimum used to
// seed the adaptive threshold.
func (s MaxFreqItemSets) greedyLowerBound(n normalized) int {
	freq := n.log.AttrFrequencies()
	return n.score(n.keep(topByFreq(n.ones, freq, n.m)))
}

// bestAtLevel implements the level-(M−m) search of §IV.C (Fig 4): among all
// subsets I with |I| = M−m, I ⊇ ~t, of any mined maximal frequent itemset,
// find the one with maximum frequency; the compression is ~I. In direct
// (un-complemented) terms: for each maximal set J ⊇ ~t with |J| ≥ M−m, the
// candidates are the compressions t' with ~J ⊆ t' ⊆ t∧J, |t'| = m, scored by
// their exact satisfied-query count. The enumeration mutates one shared
// vector (no allocation per candidate); duplicate candidates across maximal
// sets are rescored rather than deduplicated — scoring is cheaper than
// tracking.
//
// Cancellation is polled once per maximal set while bounding and every
// pollMask+1 scored candidates while enumerating.
func (s MaxFreqItemSets) bestAtLevel(ctx context.Context, n normalized, mfis []itemsets.ItemsetCount, stats *Stats) (Solution, bool, error) {
	width := n.in.Tuple.Width()
	notT := n.in.Tuple.Not()
	levelSize := width - n.m

	// First pass: per maximal set, compute an upper bound on what any of its
	// level-(M−m) subsets can satisfy — the number of queries fitting inside
	// required ∪ pool with at most `need` pool attributes. Sets are then
	// searched in descending bound order and the enumeration stops as soon
	// as the bound cannot beat the incumbent; with thousands of maximal sets
	// (wide tuples, low thresholds) this prunes nearly all of them without
	// giving up exactness.
	type cand struct {
		required bitvec.Vector
		pool     []int
		need     int
		ub       int
	}
	cands := make([]cand, 0, len(mfis))
	for mi, mfi := range mfis {
		if mi&pollMask == 0 {
			if err := pollCtx(ctx); err != nil {
				return Solution{}, false, fmt.Errorf("core: mfi: %w", err)
			}
		}
		j := mfi.Items
		if j.Count() < levelSize || !notT.SubsetOf(j) {
			continue
		}
		required := j.Not()
		poolVec := n.in.Tuple.And(j)
		need := n.m - required.Count()
		if need < 0 || need > poolVec.Count() {
			continue // cannot hit level M−m inside this maximal set
		}
		ub := 0
		for qi, q := range n.log.Queries {
			outside := q.AndNot(required)
			if !outside.SubsetOf(poolVec) {
				continue // needs an attribute no subset of this set keeps
			}
			if outside.Count() <= need {
				ub += n.log.Weight(qi)
			}
		}
		cands = append(cands, cand{required: required, pool: poolVec.Ones(), need: need, ub: ub})
	}
	// Stable on ub ties, so the search order — and with it the first-maximum
	// tie-break — is a pure function of the mined list's canonical order, not
	// of sorting internals (the determinism contract of DESIGN.md §11 rests
	// on this).
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].ub > cands[b].ub })

	best := Solution{}
	found := false
	var ctxErr error
	for _, c := range cands {
		if found && c.ub <= best.Satisfied {
			break // sorted descending: nothing below can improve
		}
		kept := c.required // mutated in place by the recursion
		var rec func(start, depth int)
		rec = func(start, depth int) {
			if ctxErr != nil {
				return
			}
			if depth == c.need {
				if stats.Candidates&pollMask == 0 {
					if ctxErr = pollCtx(ctx); ctxErr != nil {
						return
					}
				}
				stats.Candidates++
				sat := n.score(kept)
				if !found || sat > best.Satisfied {
					best = Solution{Kept: kept.Clone(), Satisfied: sat}
					found = true
				}
				return
			}
			for i := start; i <= len(c.pool)-(c.need-depth); i++ {
				kept.Set(c.pool[i])
				rec(i+1, depth+1)
				kept.Clear(c.pool[i])
			}
		}
		rec(0, 0)
		if ctxErr != nil {
			return Solution{}, false, fmt.Errorf("core: mfi: %w", ctxErr)
		}
	}
	return best, found, nil
}

// fallback returns the frequency-greedy compression used when no compression
// satisfies even one query (or none meets a fixed threshold): the m most
// frequent attributes of the tuple. Satisfied is computed exactly (usually
// zero in the adaptive case).
func (s MaxFreqItemSets) fallback(n normalized, stats Stats) Solution {
	freq := n.fullFreq()
	kept := n.keep(topByFreq(n.ones, freq, n.m))
	return Solution{Kept: kept, Satisfied: n.score(kept), Stats: stats}
}
