package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// contextSolvers is every solver of the package, including the ones the
// shared helpers leave out (IP; PreparedSolver is covered separately because
// it needs per-log preprocessing).
func contextSolvers() map[string]Solver {
	out := allSolvers()
	out["IP"] = IP{}
	return out
}

// TestSolveContextBackgroundIdentical: with a background context SolveContext
// must return exactly what Solve returns — same compression, same count, same
// stats — for every solver on random instances.
func TestSolveContextBackgroundIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(901))
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(r)
		for name, s := range contextSolvers() {
			plain, err1 := s.Solve(in)
			ctxed, err2 := s.SolveContext(context.Background(), in)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("trial %d %s: Solve err=%v, SolveContext err=%v", trial, name, err1, err2)
			}
			if !reflect.DeepEqual(plain, ctxed) {
				t.Fatalf("trial %d %s: Solve=%+v, SolveContext=%+v", trial, name, plain, ctxed)
			}
		}
	}
}

// TestSolveContextPreCancelled: a context cancelled before the call must make
// every solver return context.Canceled immediately — no panic, no work, no
// partial solution.
func TestSolveContextPreCancelled(t *testing.T) {
	r := rand.New(rand.NewSource(902))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(r)
		for name, s := range contextSolvers() {
			sol, err := s.SolveContext(ctx, in)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("trial %d %s: err=%v, want context.Canceled", trial, name, err)
			}
			if sol.Kept.Width() != 0 || sol.Satisfied != 0 {
				t.Fatalf("trial %d %s: non-zero solution %+v alongside cancellation", trial, name, sol)
			}
		}
	}
}

// TestPreparedSolveContext covers the Prep path: background identical to
// SolvePrepared, pre-cancelled returns context.Canceled and leaves the
// mining cache empty so a later solve is not poisoned.
func TestPreparedSolveContext(t *testing.T) {
	r := rand.New(rand.NewSource(903))
	in := randomInstance(r)
	mfi := MaxFreqItemSets{Backend: BackendExactDFS}

	prep, err := mfi.Preprocess(in.Log)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prep.SolvePreparedContext(cancelled, in.Tuple, in.M); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if len(prep.perThr) != 0 {
		t.Fatalf("cancelled solve cached %d thresholds", len(prep.perThr))
	}

	want, err := prep.SolvePrepared(in.Tuple, in.M)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prep.SolvePreparedContext(context.Background(), in.Tuple, in.M)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("SolvePrepared=%+v, SolvePreparedContext=%+v", want, got)
	}
}

// adversarialInstance is the acceptance-criteria stress case: a width-40
// tuple with every attribute present against a 50,000-query log (300
// distinct patterns of 2–4 attributes, duplicated), m = 12. Without a
// deadline every exact solver churns on it for far longer than the test
// deadline: brute force faces C(40,12) ≈ 5.6e9 candidates, the IP/ILP
// branch-and-bounds search a 40-deep tree, and MFI mines a dense 40-wide
// complement lattice.
func adversarialInstance(t testing.TB) Instance {
	t.Helper()
	const (
		width    = 40
		distinct = 300
		total    = 50000
	)
	r := rand.New(rand.NewSource(904))
	patterns := make([]bitvec.Vector, distinct)
	for i := range patterns {
		q := bitvec.New(width)
		k := 2 + r.Intn(3)
		for q.Count() < k {
			q.Set(r.Intn(width))
		}
		patterns[i] = q
	}
	log := dataset.NewQueryLog(dataset.GenericSchema(width))
	for i := 0; i < total; i++ {
		log.Queries = append(log.Queries, patterns[i%distinct])
	}
	return Instance{Log: log, Tuple: bitvec.New(width).Not(), M: 12}
}

// TestDeadlineHonoredOnAdversarialInstance: every exact solver given 100ms on
// the adversarial instance must come back with context.DeadlineExceeded
// within deadlineSlack× the deadline (2× normally — the acceptance bound;
// polling granularity and instance setup are the only slack — wider under
// the race detector, see race_on_test.go).
func TestDeadlineHonoredOnAdversarialInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-query stress instance")
	}
	in := adversarialInstance(t)
	const deadline = 100 * time.Millisecond
	solvers := map[string]Solver{
		"BruteForce": BruteForce{},
		"IP":         IP{},
		"ILP":        ILP{},
		"MFI-dfs":    MaxFreqItemSets{Backend: BackendExactDFS},
	}
	for name, s := range solvers {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			start := time.Now()
			_, err := s.SolveContext(ctx, in)
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err=%v after %v, want context.DeadlineExceeded", err, elapsed)
			}
			if elapsed > deadlineSlack*deadline {
				t.Fatalf("returned after %v, want ≤ %v", elapsed, deadlineSlack*deadline)
			}
		})
	}
}

// TestILPInternalTimeoutKeepsIncumbent: the ILP solver's own Timeout field
// preserves the documented anytime contract — incumbent with Optimal=false
// and nil error — while an external context deadline is always an error.
func TestILPInternalTimeoutKeepsIncumbent(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-query stress instance")
	}
	in := adversarialInstance(t)
	sol, err := ILP{Timeout: 100 * time.Millisecond}.Solve(in)
	if err != nil {
		// No incumbent in time: the error must at least be typed.
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err=%v, want nil or context.DeadlineExceeded", err)
		}
		return
	}
	if sol.Optimal {
		t.Fatal("timeout-limited solve claims optimality")
	}
	if sol.Kept.Count() > in.M {
		t.Fatalf("incumbent keeps %d > m=%d attributes", sol.Kept.Count(), in.M)
	}
}
