package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"standout/internal/gen"
)

// countingSolver wraps a Solver and counts SolveContext invocations, for
// asserting how much work a cancelled batch actually performed.
type countingSolver struct {
	inner Solver
	n     *atomic.Int64
}

func (c countingSolver) Name() string { return "counting" }

func (c countingSolver) Solve(in Instance) (Solution, error) {
	return c.SolveContext(context.Background(), in)
}

func (c countingSolver) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	c.n.Add(1)
	return c.inner.SolveContext(ctx, in)
}

// failingAt fails for one specific tuple (matched by pointer-free index
// lookup: the tuple value itself) and succeeds otherwise.
type failingAt struct {
	bad Instance
}

func (f failingAt) Name() string { return "failing-at" }

func (f failingAt) Solve(in Instance) (Solution, error) {
	return f.SolveContext(context.Background(), in)
}

func (f failingAt) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	if in.Tuple.Equal(f.bad.Tuple) {
		return Solution{}, errSentinel
	}
	return ConsumeAttr{}.SolveContext(ctx, in)
}

// TestSolveBatchStopsDispatchingOnFirstError is the regression test for the
// contract bug: a 1000-tuple batch whose very first solves fail must not
// dispatch the remaining work. The counting wrapper proves the number of
// attempted solves stays bounded by the worker count, not the batch size.
func TestSolveBatchStopsDispatchingOnFirstError(t *testing.T) {
	tab := gen.Cars(1, 1000)
	log := gen.RealWorkload(tab, 2, 20)
	tuples := tab.Rows
	if len(tuples) != 1000 {
		t.Fatalf("want 1000 tuples, have %d", len(tuples))
	}
	const workers = 8
	var n atomic.Int64
	s := countingSolver{inner: failingSolver{}, n: &n}

	_, err := SolveBatch(s, log, tuples, 2, workers)
	if !errors.Is(err, errSentinel) {
		t.Fatalf("err=%v, want wrapped sentinel", err)
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err=%T, want *BatchError", err)
	}
	solves := n.Load()
	if solves >= int64(len(tuples)) {
		t.Fatalf("batch attempted %d solves of %d after first error", solves, len(tuples))
	}
	// Every worker may have had one tuple in flight plus one dequeued before
	// observing cancellation; anything near the batch size means the producer
	// kept dispatching.
	if solves > 4*workers {
		t.Fatalf("batch attempted %d solves, want ≤ %d (≈ workers)", solves, 4*workers)
	}
}

// TestSolveBatchContextExternalCancel: a pre-cancelled context performs no
// solves at all and reports the context's own error.
func TestSolveBatchContextExternalCancel(t *testing.T) {
	tab := gen.Cars(1, 50)
	log := gen.RealWorkload(tab, 2, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n atomic.Int64
	s := countingSolver{inner: ConsumeAttr{}, n: &n}
	_, _, err := SolveBatchContext(ctx, s, log, tab.Rows, 2, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if got := n.Load(); got != 0 {
		t.Fatalf("cancelled batch still ran %d solves", got)
	}
}

// TestSolveBatchContextPartialResults: with one worker and a failure planted
// mid-batch, everything before the failure is returned solved, the failing
// index carries its error, and everything after is untouched.
func TestSolveBatchContextPartialResults(t *testing.T) {
	tab := gen.Cars(1, 50)
	log := gen.RealWorkload(tab, 2, 10)
	tuples := tab.Rows[:20]
	const failIdx = 10
	s := failingAt{bad: Instance{Tuple: tuples[failIdx]}}

	out, errs, err := SolveBatchContext(context.Background(), s, log, tuples, 2, 1)
	var be *BatchError
	if !errors.As(err, &be) || be.Index != failIdx {
		t.Fatalf("err=%v, want *BatchError at index %d", err, failIdx)
	}
	if !errors.Is(err, errSentinel) {
		t.Fatalf("err=%v does not unwrap to the sentinel", err)
	}
	for i := 0; i < failIdx; i++ {
		if errs[i] != nil || out[i].Kept.Width() == 0 {
			t.Fatalf("tuple %d before the failure: errs=%v out=%+v", i, errs[i], out[i])
		}
	}
	if !errors.Is(errs[failIdx], errSentinel) {
		t.Fatalf("errs[%d]=%v, want sentinel", failIdx, errs[failIdx])
	}
	for i := failIdx + 1; i < len(tuples); i++ {
		if errs[i] != nil || out[i].Kept.Width() != 0 {
			t.Fatalf("tuple %d after the failure was attempted: errs=%v out=%+v", i, errs[i], out[i])
		}
	}
}

// TestSolveBatchContextBackgroundMatchesSolveBatch: the context variant with
// a background context returns the same solutions as the legacy API.
func TestSolveBatchContextBackgroundMatchesSolveBatch(t *testing.T) {
	tab := gen.Cars(1, 100)
	log := gen.RealWorkload(tab, 2, 30)
	tuples := tab.Rows[:15]
	want, err := SolveBatch(ConsumeAttrCumul{}, log, tuples, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, errs, err := SolveBatchContext(context.Background(), ConsumeAttrCumul{}, log, tuples, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tuples {
		if errs[i] != nil {
			t.Fatalf("tuple %d: unexpected error %v", i, errs[i])
		}
		if got[i].Satisfied != want[i].Satisfied || !got[i].Kept.Equal(want[i].Kept) {
			t.Fatalf("tuple %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
