package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"standout/internal/gen"
)

// countingSolver wraps a Solver and counts SolveContext invocations, for
// asserting how much work a cancelled batch actually performed.
type countingSolver struct {
	inner Solver
	n     *atomic.Int64
}

func (c countingSolver) Name() string { return "counting" }

func (c countingSolver) Solve(in Instance) (Solution, error) {
	return c.SolveContext(context.Background(), in)
}

func (c countingSolver) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	c.n.Add(1)
	return c.inner.SolveContext(ctx, in)
}

// failingAt fails for one specific tuple (matched by pointer-free index
// lookup: the tuple value itself) and succeeds otherwise.
type failingAt struct {
	bad Instance
}

func (f failingAt) Name() string { return "failing-at" }

func (f failingAt) Solve(in Instance) (Solution, error) {
	return f.SolveContext(context.Background(), in)
}

func (f failingAt) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	if in.Tuple.Equal(f.bad.Tuple) {
		return Solution{}, errSentinel
	}
	return ConsumeAttr{}.SolveContext(ctx, in)
}

// TestSolveBatchStopsDispatchingOnFirstError is the regression test for the
// contract bug: a 1000-tuple batch whose very first solves fail must not
// dispatch the remaining work. The counting wrapper proves the number of
// attempted solves stays bounded by the worker count, not the batch size.
func TestSolveBatchStopsDispatchingOnFirstError(t *testing.T) {
	tab := gen.Cars(1, 1000)
	log := gen.RealWorkload(tab, 2, 20)
	tuples := tab.Rows
	if len(tuples) != 1000 {
		t.Fatalf("want 1000 tuples, have %d", len(tuples))
	}
	const workers = 8
	var n atomic.Int64
	s := countingSolver{inner: failingSolver{}, n: &n}

	_, err := SolveBatch(s, log, tuples, 2, workers)
	if !errors.Is(err, errSentinel) {
		t.Fatalf("err=%v, want wrapped sentinel", err)
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err=%T, want *BatchError", err)
	}
	solves := n.Load()
	if solves >= int64(len(tuples)) {
		t.Fatalf("batch attempted %d solves of %d after first error", solves, len(tuples))
	}
	// Every worker may have had one tuple in flight plus one dequeued before
	// observing cancellation; anything near the batch size means the producer
	// kept dispatching.
	if solves > 4*workers {
		t.Fatalf("batch attempted %d solves, want ≤ %d (≈ workers)", solves, 4*workers)
	}
}

// TestSolveBatchContextExternalCancel: a pre-cancelled context performs no
// solves at all and reports the context's own error.
func TestSolveBatchContextExternalCancel(t *testing.T) {
	tab := gen.Cars(1, 50)
	log := gen.RealWorkload(tab, 2, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n atomic.Int64
	s := countingSolver{inner: ConsumeAttr{}, n: &n}
	_, _, err := SolveBatchContext(ctx, s, log, tab.Rows, 2, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if got := n.Load(); got != 0 {
		t.Fatalf("cancelled batch still ran %d solves", got)
	}
}

// TestSolveBatchContextPartialResults: with one worker and a failure planted
// mid-batch, everything before the failure is returned solved, the failing
// index carries its error, and everything after is untouched.
func TestSolveBatchContextPartialResults(t *testing.T) {
	tab := gen.Cars(1, 50)
	log := gen.RealWorkload(tab, 2, 10)
	tuples := tab.Rows[:20]
	const failIdx = 10
	s := failingAt{bad: Instance{Tuple: tuples[failIdx]}}

	out, errs, err := SolveBatchContext(context.Background(), s, log, tuples, 2, 1)
	var be *BatchError
	if !errors.As(err, &be) || be.Index != failIdx {
		t.Fatalf("err=%v, want *BatchError at index %d", err, failIdx)
	}
	if !errors.Is(err, errSentinel) {
		t.Fatalf("err=%v does not unwrap to the sentinel", err)
	}
	for i := 0; i < failIdx; i++ {
		if errs[i] != nil || out[i].Kept.Width() == 0 {
			t.Fatalf("tuple %d before the failure: errs=%v out=%+v", i, errs[i], out[i])
		}
	}
	if !errors.Is(errs[failIdx], errSentinel) {
		t.Fatalf("errs[%d]=%v, want sentinel", failIdx, errs[failIdx])
	}
	for i := failIdx + 1; i < len(tuples); i++ {
		if errs[i] != nil || out[i].Kept.Width() != 0 {
			t.Fatalf("tuple %d after the failure was attempted: errs=%v out=%+v", i, errs[i], out[i])
		}
	}
}

// TestSolveBatchContextBackgroundMatchesSolveBatch: the context variant with
// a background context returns the same solutions as the legacy API.
func TestSolveBatchContextBackgroundMatchesSolveBatch(t *testing.T) {
	tab := gen.Cars(1, 100)
	log := gen.RealWorkload(tab, 2, 30)
	tuples := tab.Rows[:15]
	want, err := SolveBatch(ConsumeAttrCumul{}, log, tuples, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, errs, err := SolveBatchContext(context.Background(), ConsumeAttrCumul{}, log, tuples, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tuples {
		if errs[i] != nil {
			t.Fatalf("tuple %d: unexpected error %v", i, errs[i])
		}
		if got[i].Satisfied != want[i].Satisfied || !got[i].Kept.Equal(want[i].Kept) {
			t.Fatalf("tuple %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// blockThenFail coordinates two tuples: the "block" tuple parks on its
// context until the batch cancels it, every other tuple waits until the
// block tuple is in flight and then fails with the sentinel. This pins the
// exact interleaving where a real failure and a cancellation race.
type blockThenFail struct {
	block    Instance
	blocking chan struct{}
}

func (b blockThenFail) Name() string { return "block-then-fail" }

func (b blockThenFail) Solve(in Instance) (Solution, error) {
	return b.SolveContext(context.Background(), in)
}

func (b blockThenFail) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	if in.Tuple.Equal(b.block.Tuple) {
		close(b.blocking)
		<-ctx.Done()
		return Solution{}, fmt.Errorf("interrupted: %w", ctx.Err())
	}
	<-b.blocking
	return Solution{}, errSentinel
}

// TestSolveBatchContextErrorAttribution: when tuple 1 fails with a real
// (non-context) error while tuple 0 is still in flight, the batch must
// report the sentinel at index 1, the induced cancellation at index 0, and
// the batch-level error must identify the genuinely failing index — not the
// cancelled bystander.
func TestSolveBatchContextErrorAttribution(t *testing.T) {
	tab := gen.Cars(1, 10)
	log := gen.RealWorkload(tab, 2, 10)
	tuples := tab.Rows[:2]
	s := blockThenFail{
		block:    Instance{Tuple: tuples[0]},
		blocking: make(chan struct{}),
	}

	_, errs, err := SolveBatchContext(context.Background(), s, log, tuples, 2, 2)

	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err=%T (%v), want *BatchError", err, err)
	}
	if be.Index != 1 || !errors.Is(be, errSentinel) {
		t.Fatalf("batch error attributes index %d (%v), want the sentinel at index 1", be.Index, be)
	}
	if !errors.Is(errs[1], errSentinel) {
		t.Fatalf("errs[1]=%v, want the sentinel", errs[1])
	}
	if !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("errs[0]=%v, want context.Canceled from the induced cancellation", errs[0])
	}
}
