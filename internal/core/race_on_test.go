//go:build race

package core

// Race-detector instrumentation slows the enumeration loops 5–20×, which
// stretches the work done between two ctx polls by the same factor. The
// typed-error contract is still asserted exactly; only the wall-clock bound
// is widened.
const deadlineSlack = 10
