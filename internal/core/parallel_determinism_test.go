package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// This file is the differential determinism suite of the parallel solving
// engine: for every parallelized solver, any worker count must yield results
// bit-identical to the sequential run — same chosen attribute set under the
// documented tie-break, same Satisfied count, same work statistics. The suite
// runs under -race in CI (see Makefile test-race), so it doubles as the data
// race proof for the scheduler wiring.

// parallelSolver builds the workers-parameterized variant of one solver
// family plus the fields that must match bit-for-bit.
type parallelSolver struct {
	name  string
	build func(workers int) Solver
}

func parallelSolvers() []parallelSolver {
	return []parallelSolver{
		{"BruteForce", func(w int) Solver { return BruteForce{Workers: w} }},
		{"ILP", func(w int) Solver { return ILP{Workers: w} }},
		{"MFI-dfs", func(w int) Solver { return MaxFreqItemSets{Backend: BackendExactDFS, Workers: w} }},
	}
}

// solutionFingerprint flattens the comparable content of a Solution. Two runs are
// bit-identical iff their keys are equal: kept set, score, optimality flag
// and every work statistic (candidates scored, nodes expanded, itemsets
// considered, threshold reached).
func solutionFingerprint(sol Solution) string {
	return fmt.Sprintf("kept=%s sat=%d opt=%t stats=%+v", sol.Kept, sol.Satisfied, sol.Optimal, sol.Stats)
}

// TestParallelDeterminismSweep sweeps seeded random instances through every
// parallelized solver at 2, 4 and 8 workers and demands the exact sequential
// answer each time. Solvers rotate across instances so the sweep stays fast
// enough for -race CI while every solver still sees hundreds of instances.
func TestParallelDeterminismSweep(t *testing.T) {
	instances := 1000
	if testing.Short() {
		instances = 100
	}
	solvers := parallelSolvers()
	r := rand.New(rand.NewSource(20260806))
	for i := 0; i < instances; i++ {
		in := randomInstance(r)
		ps := solvers[i%len(solvers)]
		seq, err := ps.build(1).Solve(in)
		if err != nil {
			t.Fatalf("instance %d %s sequential: %v", i, ps.name, err)
		}
		want := solutionFingerprint(seq)
		for _, w := range []int{2, 4, 8} {
			got, err := ps.build(w).Solve(in)
			if err != nil {
				t.Fatalf("instance %d %s workers=%d: %v", i, ps.name, w, err)
			}
			if key := solutionFingerprint(got); key != want {
				t.Fatalf("instance %d %s workers=%d diverged\nseq: %s\npar: %s", i, ps.name, w, want, key)
			}
		}
	}
}

// skewedBatch builds the adversarial load-balance shape: one huge tuple
// (every attribute set, the costliest to solve) buried among tiny ones, so a
// static split would pin all the work on one worker and stealing is forced.
func skewedBatch(r *rand.Rand) (*dataset.QueryLog, []bitvec.Vector, int) {
	width := 12
	schema := dataset.GenericSchema(width)
	log := dataset.NewQueryLog(schema)
	for i := 0; i < 40; i++ {
		q := bitvec.New(width)
		for q.Count() < 1+r.Intn(3) {
			q.Set(r.Intn(width))
		}
		log.Queries = append(log.Queries, q)
	}
	tuples := make([]bitvec.Vector, 33)
	for i := range tuples {
		tu := bitvec.New(width)
		if i == 7 {
			for j := 0; j < width; j++ {
				tu.Set(j) // the huge tuple: C(12, m) enumeration
			}
		} else {
			tu.Set(r.Intn(width))
			tu.Set(r.Intn(width))
		}
		tuples[i] = tu
	}
	return log, tuples, 3
}

// TestParallelDeterminismSkewedBatch runs the skewed batch through
// SolveBatchContext at several worker counts and checks every element
// against the 1-worker run.
func TestParallelDeterminismSkewedBatch(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	log, tuples, m := skewedBatch(r)
	for _, ps := range parallelSolvers() {
		seq, seqErrs, err := SolveBatchContext(context.Background(), ps.build(1), log, tuples, m, 1)
		if err != nil {
			t.Fatalf("%s sequential batch: %v", ps.name, err)
		}
		for i, e := range seqErrs {
			if e != nil {
				t.Fatalf("%s sequential tuple %d: %v", ps.name, i, e)
			}
		}
		for _, w := range []int{2, 4, 8} {
			got, gotErrs, err := SolveBatchContext(context.Background(), ps.build(w), log, tuples, m, w)
			if err != nil {
				t.Fatalf("%s workers=%d batch: %v", ps.name, w, err)
			}
			for i := range tuples {
				if gotErrs[i] != nil {
					t.Fatalf("%s workers=%d tuple %d: %v", ps.name, w, i, gotErrs[i])
				}
				if a, b := solutionFingerprint(got[i]), solutionFingerprint(seq[i]); a != b {
					t.Fatalf("%s workers=%d tuple %d diverged\nseq: %s\npar: %s", ps.name, w, i, b, a)
				}
			}
		}
	}
}

// TestParallelDeterminismMidSweepCancellation cancels a batch mid-flight and
// checks the partial results stay trustworthy: every tuple either carries a
// cancellation-rooted error, or was never attempted (zero value, nil error),
// or — when it did complete — matches the uncancelled sequential answer
// exactly. Cancellation may reorder *which* tuples finish, never *what* a
// finished tuple contains.
func TestParallelDeterminismMidSweepCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	log, tuples, m := skewedBatch(r)
	solver := BruteForce{Workers: 2}

	seq, seqErrs, err := SolveBatchContext(context.Background(), solver, log, tuples, m, 1)
	if err != nil {
		t.Fatalf("reference batch: %v", err)
	}
	for i, e := range seqErrs {
		if e != nil {
			t.Fatalf("reference tuple %d: %v", i, e)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var (
		out  []Solution
		errs []error
		berr error
	)
	go func() {
		defer close(done)
		out, errs, berr = SolveBatchContext(ctx, solver, log, tuples, m, 4)
	}()
	cancel() // races the batch start on purpose: any interleaving must hold up
	<-done

	if berr != nil && !errors.Is(berr, context.Canceled) {
		t.Fatalf("batch error = %v, want nil or context.Canceled", berr)
	}
	zero := Solution{}
	for i := range tuples {
		switch {
		case errs[i] != nil:
			if !errors.Is(errs[i], context.Canceled) {
				t.Fatalf("tuple %d error = %v, want context.Canceled chain", i, errs[i])
			}
		case solutionFingerprint(out[i]) == solutionFingerprint(zero):
			// Never attempted (or cancelled before scoring): fine.
		default:
			if a, b := solutionFingerprint(out[i]), solutionFingerprint(seq[i]); a != b {
				t.Fatalf("tuple %d completed with wrong answer\nseq: %s\ngot: %s", i, b, a)
			}
		}
	}
}

// TestBatchEmptyAndSingleSpawnNothing is the regression test for the batch
// normalization fix: an empty batch must return before any scheduler or
// preparation work (even with an absurd worker request), and a single-tuple
// batch must solve on the caller's goroutine. Both are observable through
// par's sequential guarantee — covered directly in internal/par — so here we
// pin the core-level contract: immediate return, aligned empty slices, and
// ctx error passthrough.
func TestBatchEmptyAndSingleSpawnNothing(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	in := randomInstance(r)

	out, errs, err := SolveBatchContext(context.Background(), BruteForce{}, in.Log, nil, in.M, 1<<20)
	if err != nil || len(out) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch: out=%d errs=%d err=%v, want 0/0/nil", len(out), len(errs), err)
	}

	// An already-cancelled context on an empty batch reports the ctx error
	// without touching the solver or spawning anything.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = SolveBatchContext(ctx, nil, in.Log, nil, in.M, 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled empty batch err = %v, want context.Canceled", err)
	}

	// Single tuple, many workers: must match the direct solve bit-for-bit.
	direct, err := BruteForce{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	out, errs, err = SolveBatchContext(context.Background(), BruteForce{}, in.Log, []bitvec.Vector{in.Tuple}, in.M, 8)
	if err != nil || errs[0] != nil {
		t.Fatalf("single-tuple batch: err=%v errs[0]=%v", err, errs[0])
	}
	if a, b := solutionFingerprint(out[0]), solutionFingerprint(direct); a != b {
		t.Fatalf("single-tuple batch diverged\ndirect: %s\nbatch:  %s", b, a)
	}
}
