package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/gen"
)

func TestSolveBatchMatchesSequential(t *testing.T) {
	tab := gen.Cars(1, 400)
	log := gen.RealWorkload(tab, 2, 80)
	tuples := gen.PickTuples(tab, 3, 20)
	for _, workers := range []int{0, 1, 4, 64} {
		got, err := SolveBatch(MaxFreqItemSets{}, log, tuples, 5, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(tuples) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, tuple := range tuples {
			want, err := (MaxFreqItemSets{}).Solve(Instance{Log: log, Tuple: tuple, M: 5})
			if err != nil {
				t.Fatal(err)
			}
			if got[i].Satisfied != want.Satisfied {
				t.Fatalf("workers=%d tuple %d: batch %d, sequential %d",
					workers, i, got[i].Satisfied, want.Satisfied)
			}
		}
	}
}

func TestSolveBatchEmpty(t *testing.T) {
	tab := gen.Cars(1, 50)
	log := gen.RealWorkload(tab, 2, 10)
	got, err := SolveBatch(ConsumeAttr{}, log, nil, 3, 4)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestSolveBatchPropagatesErrors(t *testing.T) {
	tab := gen.Cars(1, 50)
	log := gen.RealWorkload(tab, 2, 10)
	// A tuple of the wrong width makes that instance invalid.
	tuples := []bitvec.Vector{tab.Rows[0], bitvec.New(3)}
	if _, err := SolveBatch(ConsumeAttr{}, log, tuples, 3, 2); err == nil {
		t.Fatal("batch swallowed an error")
	}
}

func TestPreparedSolverConcurrent(t *testing.T) {
	tab := gen.Cars(1, 400)
	log := gen.RealWorkload(tab, 2, 80)
	tuples := gen.PickTuples(tab, 3, 30)
	mfi := MaxFreqItemSets{Backend: BackendExactDFS}
	prep, err := mfi.Preprocess(log)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveBatch(PreparedSolver{Prep: prep}, log, tuples, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, tuple := range tuples {
		want, err := BruteForce{}.Solve(Instance{Log: log, Tuple: tuple, M: 5})
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Satisfied != want.Satisfied {
			t.Fatalf("tuple %d: prepared batch %d, brute %d", i, got[i].Satisfied, want.Satisfied)
		}
	}
}

func TestPreparedSolverGuards(t *testing.T) {
	tab := gen.Cars(1, 50)
	log := gen.RealWorkload(tab, 2, 10)
	other := gen.RealWorkload(tab, 9, 10)
	prep, err := (MaxFreqItemSets{}).Preprocess(log)
	if err != nil {
		t.Fatal(err)
	}
	ps := PreparedSolver{Prep: prep}
	if _, err := ps.Solve(Instance{Log: other, Tuple: tab.Rows[0], M: 2}); err == nil {
		t.Error("mismatched log accepted")
	}
	if _, err := (PreparedSolver{}).Solve(Instance{Log: log, Tuple: tab.Rows[0], M: 2}); err == nil {
		t.Error("nil prep accepted")
	}
	if (PreparedSolver{}).Name() == "" {
		t.Error("empty name")
	}
}

func TestSolveBatchRandomizedAgainstBrute(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	in := randomInstance(r)
	tuples := make([]bitvec.Vector, 10)
	for i := range tuples {
		v := bitvec.New(in.Log.Width())
		for j := 0; j < v.Width(); j++ {
			if r.Float64() < 0.5 {
				v.Set(j)
			}
		}
		tuples[i] = v
	}
	batch, err := SolveBatch(ILP{}, in.Log, tuples, in.M, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, tuple := range tuples {
		want, err := BruteForce{}.Solve(Instance{Log: in.Log, Tuple: tuple, M: in.M})
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Satisfied != want.Satisfied {
			t.Fatalf("tuple %d: %d vs %d", i, batch[i].Satisfied, want.Satisfied)
		}
	}
}

var errSentinel = errors.New("sentinel")

type failingSolver struct{}

func (failingSolver) Name() string                     { return "failing" }
func (failingSolver) Solve(Instance) (Solution, error) { return Solution{}, errSentinel }
func (failingSolver) SolveContext(context.Context, Instance) (Solution, error) {
	return Solution{}, errSentinel
}

func TestSolveBatchFirstErrorWrapped(t *testing.T) {
	tab := gen.Cars(1, 20)
	log := gen.RealWorkload(tab, 2, 5)
	_, err := SolveBatch(failingSolver{}, log, tab.Rows[:3], 2, 2)
	if !errors.Is(err, errSentinel) {
		t.Fatalf("err=%v, want wrapped sentinel", err)
	}
}

func TestSolveBatchWorkerNormalization(t *testing.T) {
	tab := gen.Cars(3, 60)
	log := gen.RealWorkload(tab, 3, 40)
	tuples := tab.Rows[:6]
	want, err := SolveBatch(ConsumeAttr{}, log, tuples, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Zero and negative select GOMAXPROCS; a worker count far beyond the
	// tuple count is clamped. All must produce the sequential results.
	for _, workers := range []int{-5, 0, len(tuples), 1000} {
		got, err := SolveBatch(ConsumeAttr{}, log, tuples, 3, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i].Satisfied != want[i].Satisfied || got[i].Kept.String() != want[i].Kept.String() {
				t.Fatalf("workers=%d tuple %d: (%d, %v) != (%d, %v)", workers, i,
					got[i].Satisfied, got[i].Kept, want[i].Satisfied, want[i].Kept)
			}
		}
	}
}

func TestSolveBatchContextZeroTuples(t *testing.T) {
	tab := gen.Cars(1, 50)
	log := gen.RealWorkload(tab, 2, 10)
	for _, tuples := range [][]bitvec.Vector{nil, {}} {
		sols, errs, err := SolveBatchContext(context.Background(), ConsumeAttr{}, log, tuples, 3, 4)
		if err != nil {
			t.Fatalf("zero-tuple batch errored: %v", err)
		}
		if sols == nil || errs == nil {
			t.Fatal("zero-tuple batch returned nil slices")
		}
		if len(sols) != 0 || len(errs) != 0 {
			t.Fatalf("zero-tuple batch returned %d solutions, %d errors", len(sols), len(errs))
		}
	}

	// An already-cancelled context surfaces through even the empty batch.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := SolveBatchContext(ctx, ConsumeAttr{}, log, nil, 3, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled empty batch err = %v, want context.Canceled", err)
	}
}
