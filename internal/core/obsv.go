package core

import (
	"context"
	"errors"
	"log/slog"
	"time"

	"standout/internal/obsv"
)

// Process-level metrics, recorded into the obsv default registry for every
// solve that runs through this package regardless of whether a trace or
// logger is attached. All updates are atomic or a single short mutex hold —
// nothing here allocates, keeping the untraced hot path unchanged.
var (
	mSolves = obsv.Default.Counter("standout_solves_total",
		"Solves started through the core solvers.")
	mSolveErrors = obsv.Default.Counter("standout_solve_errors_total",
		"Solves that returned a non-cancellation error.")
	mSolveCancels = obsv.Default.Counter("standout_solve_cancels_total",
		"Solves that ended with context cancellation or deadline expiry.")
	mSolveDuration = obsv.Default.Histogram("standout_solve_duration_seconds",
		"Wall time of one solve.", nil)
	mBatchQueueWait = obsv.Default.Histogram("standout_batch_queue_wait_seconds",
		"Time a batch tuple waited between batch start and dequeue by a worker.", nil)
	mIndexBuilds = obsv.Default.Counter("standout_index_builds_total",
		"Shared query-log indexes built by PrepareLog (including batch auto-builds).")
	mDeltaBuilds = obsv.Default.Counter("standout_index_delta_builds_total",
		"Incremental delta-segment builds by PrepareLogFrom (appended queries only).")
	mCompactions = obsv.Default.Counter("standout_index_compactions_total",
		"Size-tiered segment compactions performed after a delta build.")
	mCompactionsSkipped = obsv.Default.Counter("standout_index_compactions_skipped_total",
		"Segment compactions skipped because of an injected or real failure; serving continues on the unmerged segments.")
	mPrepCacheHits = obsv.Default.Counter("standout_prep_cache_hits_total",
		"Solves answered from a PreparedLog's solution memo.")
	mPrepCacheMisses = obsv.Default.Counter("standout_prep_cache_misses_total",
		"Memoizable solves that missed a PreparedLog's solution memo.")
	mPrepCacheEvictions = obsv.Default.Counter("standout_prep_cache_evictions_total",
		"Solutions evicted from PreparedLog memos by capacity pressure.")
	// The standout_cache_* family mirrors internal/cache's own Stats counters
	// into the registry via the LRU's OnHit/OnMiss/OnEvict hooks, so cache
	// behavior is scrapeable without a code path into CacheStats.
	mCacheHits = obsv.Default.Counter("standout_cache_hits_total",
		"LRU cache hits across the core caches (solution memos).")
	mCacheMisses = obsv.Default.Counter("standout_cache_misses_total",
		"LRU cache misses across the core caches (solution memos).")
	mCacheEvictions = obsv.Default.Counter("standout_cache_evictions_total",
		"LRU cache evictions across the core caches (solution memos).")
)

// solveObs ties one SolveContext call to the observability stack: the
// context-attached trace (nil when absent), the structured event logger (nil
// when absent), and the registry metrics above. Constructed by beginSolve at
// the top of every solver's SolveContext and closed by end, which also
// stamps the trace into the returned Solution.
type solveObs struct {
	tr      *obsv.Trace
	log     *slog.Logger
	span    obsv.Span
	name    string
	traceID string
	start   time.Time
}

func beginSolve(ctx context.Context, name string, in Instance) solveObs {
	mSolves.Add(1)
	o := solveObs{
		tr:    obsv.FromContext(ctx),
		log:   obsv.Logger(ctx),
		name:  name,
		start: time.Now(),
	}
	o.span = o.tr.StartSpan("solve")
	if o.log != nil {
		// The distributed trace ID (when the request carries one) rides every
		// solve log line, attributing solver work to the originating request.
		o.traceID = obsv.TraceIDStringFromContext(ctx)
		queries := 0
		if in.Log != nil {
			queries = in.Log.Size()
		}
		o.logAttrs(ctx, slog.LevelInfo, "solve.start",
			slog.String("solver", name),
			slog.Int("queries", queries),
			slog.Int("width", in.Tuple.Width()),
			slog.Int("m", in.M))
	}
	return o
}

// logAttrs forwards to the solve's logger, appending the trace_id attr when
// the request carries one.
func (o solveObs) logAttrs(ctx context.Context, level slog.Level, msg string, attrs ...slog.Attr) {
	if o.traceID != "" {
		attrs = append(attrs, slog.String("trace_id", o.traceID))
	}
	o.log.LogAttrs(ctx, level, msg, attrs...)
}

// end closes the solve's observability scope and passes (sol, err) through,
// so every SolveContext can finish with `return obs.end(ctx, sol, err)`.
func (o solveObs) end(ctx context.Context, sol Solution, err error) (Solution, error) {
	d := time.Since(o.start)
	mSolveDuration.ObserveExemplar(d.Seconds(), obsv.TraceIDStringFromContext(ctx))
	o.span.End()
	sol.trace = o.tr
	switch {
	case err == nil:
		if o.log != nil {
			o.logAttrs(ctx, slog.LevelInfo, "solve.finish",
				slog.String("solver", o.name),
				slog.Int("satisfied", sol.Satisfied),
				slog.Bool("optimal", sol.Optimal),
				slog.Duration("elapsed", d))
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		mSolveCancels.Add(1)
		if o.log != nil {
			o.logAttrs(ctx, slog.LevelWarn, "solve.cancel",
				slog.String("solver", o.name),
				slog.Duration("elapsed", d),
				slog.String("error", err.Error()))
		}
	default:
		mSolveErrors.Add(1)
		if o.log != nil {
			o.logAttrs(ctx, slog.LevelError, "solve.error",
				slog.String("solver", o.name),
				slog.Duration("elapsed", d),
				slog.String("error", err.Error()))
		}
	}
	return sol, err
}
