package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// FuzzExactSolversAgree derives a small instance from the fuzz inputs and
// cross-checks every exact solver against brute force. Run with
// `go test -fuzz FuzzExactSolversAgree ./internal/core` to explore; the seed
// corpus runs in ordinary `go test`.
func FuzzExactSolversAgree(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(6), uint8(2))
	f.Add(int64(2), uint8(8), uint8(15), uint8(4))
	f.Add(int64(99), uint8(4), uint8(1), uint8(0))
	f.Add(int64(7), uint8(10), uint8(20), uint8(10))
	f.Fuzz(func(t *testing.T, seed int64, width, nq, m uint8) {
		w := int(width%10) + 2 // 2..11 attributes
		q := int(nq%20) + 1    // 1..20 queries
		budget := int(m % 12)  // 0..11
		r := rand.New(rand.NewSource(seed))
		log := dataset.NewQueryLog(dataset.GenericSchema(w))
		for i := 0; i < q; i++ {
			query := bitvec.New(w)
			k := 1 + r.Intn(3)
			if k > w {
				k = w // a query can demand at most every attribute
			}
			for query.Count() < k {
				query.Set(r.Intn(w))
			}
			log.Queries = append(log.Queries, query)
		}
		tuple := bitvec.New(w)
		for j := 0; j < w; j++ {
			if r.Intn(2) == 0 {
				tuple.Set(j)
			}
		}
		in := Instance{Log: log, Tuple: tuple, M: budget}
		want, err := BruteForce{}.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		done, cancel := context.WithCancel(context.Background())
		cancel()
		for _, s := range []Solver{
			ILP{},
			MaxFreqItemSets{Backend: BackendExactDFS},
			MaxFreqItemSets{Backend: BackendTwoPhaseWalk},
		} {
			sol, err := s.Solve(in)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if sol.Satisfied != want.Satisfied {
				t.Fatalf("%s: %d != brute %d (w=%d q=%d m=%d seed=%d)",
					s.Name(), sol.Satisfied, want.Satisfied, w, q, budget, seed)
			}
			if !sol.Kept.SubsetOf(tuple) || sol.Kept.Count() > budget {
				t.Fatalf("%s: invalid solution", s.Name())
			}
			// Context contract, on the same fuzzed instance: a background
			// context changes nothing, a cancelled one returns its error
			// without panicking or producing a solution.
			ctxSol, err := s.SolveContext(context.Background(), in)
			if err != nil || !reflect.DeepEqual(sol, ctxSol) {
				t.Fatalf("%s: SolveContext(background)=%+v/%v diverges from Solve=%+v",
					s.Name(), ctxSol, err, sol)
			}
			if _, err := s.SolveContext(done, in); !errors.Is(err, context.Canceled) {
				t.Fatalf("%s: cancelled SolveContext err=%v, want context.Canceled", s.Name(), err)
			}
		}
	})
}

// FuzzIndexedSolveAgrees derives an instance from the fuzz inputs, prepares
// the log, and asserts the indexed/memoized paths agree with the direct scan
// path. The seed corpus stresses the index's corners: an empty log, heavy
// query duplication, an all-ones tuple, and budgets at or above popcount(t).
func FuzzIndexedSolveAgrees(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(0), uint8(2), uint8(0))  // empty log
	f.Add(int64(2), uint8(6), uint8(12), uint8(3), uint8(1)) // duplicate queries
	f.Add(int64(3), uint8(7), uint8(9), uint8(4), uint8(2))  // all-ones tuple
	f.Add(int64(4), uint8(5), uint8(8), uint8(15), uint8(3)) // m ≥ popcount(t)
	f.Fuzz(func(t *testing.T, seed int64, width, nq, m, mode uint8) {
		w := int(width%10) + 2
		q := int(nq % 20) // 0..19: the empty log is in scope here
		budget := int(m % 14)
		r := rand.New(rand.NewSource(seed))
		log := dataset.NewQueryLog(dataset.GenericSchema(w))
		var base bitvec.Vector
		for i := 0; i < q; i++ {
			if mode%4 == 1 && i > 0 && base.Width() == w {
				// Duplicate-heavy log: most queries repeat the first.
				if r.Intn(4) != 0 {
					log.Queries = append(log.Queries, base.Clone())
					continue
				}
			}
			query := bitvec.New(w)
			k := 1 + r.Intn(3)
			for query.Count() < k {
				query.Set(r.Intn(w))
			}
			if i == 0 {
				base = query
			}
			log.Queries = append(log.Queries, query)
		}
		tuple := bitvec.New(w)
		if mode%4 == 2 {
			for j := 0; j < w; j++ {
				tuple.Set(j)
			}
		} else {
			for j := 0; j < w; j++ {
				if r.Intn(2) == 0 {
					tuple.Set(j)
				}
			}
		}
		if mode%4 == 3 {
			budget = tuple.Count() + r.Intn(3) // at or above popcount(t)
		}
		in := Instance{Log: log, Tuple: tuple, M: budget}

		p, err := PrepareLog(log)
		if err != nil {
			t.Fatal(err)
		}
		prepCtx := WithPrepared(context.Background(), p)
		for _, s := range []Solver{BruteForce{}, ConsumeAttr{}, ConsumeAttrCumul{}, ConsumeQueries{}} {
			direct, err := s.Solve(in)
			if err != nil {
				t.Fatalf("%s/direct: %v", s.Name(), err)
			}
			indexed, err := s.SolveContext(prepCtx, in)
			if err != nil {
				t.Fatalf("%s/indexed: %v", s.Name(), err)
			}
			if direct.Satisfied != indexed.Satisfied || direct.Kept.String() != indexed.Kept.String() {
				t.Fatalf("%s: direct (%d, %v) != indexed (%d, %v)",
					s.Name(), direct.Satisfied, direct.Kept, indexed.Satisfied, indexed.Kept)
			}
			for pass := 0; pass < 2; pass++ { // second pass is a memo hit
				memo, err := p.SolveContext(context.Background(), s, tuple, budget)
				if err != nil {
					t.Fatalf("%s/memo: %v", s.Name(), err)
				}
				if memo.Satisfied != direct.Satisfied || memo.Kept.String() != direct.Kept.String() {
					t.Fatalf("%s/memo pass %d: (%d, %v) != direct (%d, %v)",
						s.Name(), pass, memo.Satisfied, memo.Kept, direct.Satisfied, direct.Kept)
				}
			}
		}
	})
}
