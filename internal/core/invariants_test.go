package core

import (
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// Invariant tests: structural properties every correct solver must satisfy,
// checked on random instances.

// TestOptimalMonotoneInBudget: the optimal satisfied count never decreases
// as the budget m grows (any m-compression is also an (m+1)-compression).
func TestOptimalMonotoneInBudget(t *testing.T) {
	r := rand.New(rand.NewSource(808))
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(r)
		prev := -1
		for m := 0; m <= in.Tuple.Count()+1; m++ {
			sol, err := BruteForce{}.Solve(Instance{Log: in.Log, Tuple: in.Tuple, M: m})
			if err != nil {
				t.Fatal(err)
			}
			if sol.Satisfied < prev {
				t.Fatalf("trial %d: optimal dropped from %d to %d at m=%d",
					trial, prev, sol.Satisfied, m)
			}
			prev = sol.Satisfied
		}
	}
}

// TestUnsatisfiableQueriesIrrelevant: adding queries the tuple cannot
// satisfy never changes the exact solvers' satisfied count — even "mixed"
// queries that mention attributes the tuple has. Greedy solvers are checked
// only against purely-outside pollution: per §IV.D they rank attributes by
// FULL-log frequency, so a mixed unsatisfiable query may legitimately sway
// their (heuristic) choice.
func TestUnsatisfiableQueriesIrrelevant(t *testing.T) {
	r := rand.New(rand.NewSource(809))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(r)
		if in.Tuple.Count() == in.Log.Width() {
			continue // no attribute outside the tuple to poison with
		}
		missing := in.Tuple.Not().Ones()[0]

		pure := dataset.NewQueryLog(in.Log.Schema)
		pure.Queries = append(pure.Queries, in.Log.Queries...)
		mixed := dataset.NewQueryLog(in.Log.Schema)
		mixed.Queries = append(mixed.Queries, in.Log.Queries...)
		for i := 0; i < 5; i++ {
			q := bitvec.FromIndices(in.Log.Width(), missing)
			pure.Queries = append(pure.Queries, q)
			mq := q.Clone()
			if i%2 == 0 && in.Tuple.Count() > 0 {
				mq.Set(in.Tuple.Ones()[0])
			}
			mixed.Queries = append(mixed.Queries, mq)
		}

		for name, s := range allSolvers() {
			a, err := s.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Solve(Instance{Log: pure, Tuple: in.Tuple, M: in.M})
			if err != nil {
				t.Fatal(err)
			}
			if a.Satisfied != b.Satisfied {
				t.Fatalf("trial %d %s: outside-only pollution changed count %d → %d",
					trial, name, a.Satisfied, b.Satisfied)
			}
		}
		for name, s := range exactSolvers() {
			a, err := s.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			c, err := s.Solve(Instance{Log: mixed, Tuple: in.Tuple, M: in.M})
			if err != nil {
				t.Fatal(err)
			}
			if a.Satisfied != c.Satisfied {
				t.Fatalf("trial %d %s: mixed pollution changed exact count %d → %d",
					trial, name, a.Satisfied, c.Satisfied)
			}
		}
	}
}

// TestDuplicatedLogDoublesOptimum: duplicating every query exactly doubles
// the optimal satisfied count.
func TestDuplicatedLogDoublesOptimum(t *testing.T) {
	r := rand.New(rand.NewSource(810))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(r)
		doubled := dataset.NewQueryLog(in.Log.Schema)
		doubled.Queries = append(doubled.Queries, in.Log.Queries...)
		doubled.Queries = append(doubled.Queries, in.Log.Queries...)
		for name, s := range exactSolvers() {
			a, err := s.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Solve(Instance{Log: doubled, Tuple: in.Tuple, M: in.M})
			if err != nil {
				t.Fatal(err)
			}
			if b.Satisfied != 2*a.Satisfied {
				t.Fatalf("trial %d %s: doubled log gives %d, want %d",
					trial, name, b.Satisfied, 2*a.Satisfied)
			}
		}
	}
}

// TestAttributePermutationInvariance: relabeling attributes permutes the
// solution but never changes the optimal count.
func TestAttributePermutationInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(811))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(r)
		w := in.Log.Width()
		perm := r.Perm(w)
		permuteVec := func(v bitvec.Vector) bitvec.Vector {
			out := bitvec.New(w)
			for _, j := range v.Ones() {
				out.Set(perm[j])
			}
			return out
		}
		plog := dataset.NewQueryLog(dataset.GenericSchema(w))
		for _, q := range in.Log.Queries {
			plog.Queries = append(plog.Queries, permuteVec(q))
		}
		pin := Instance{Log: plog, Tuple: permuteVec(in.Tuple), M: in.M}
		for name, s := range exactSolvers() {
			a, err := s.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Solve(pin)
			if err != nil {
				t.Fatal(err)
			}
			if a.Satisfied != b.Satisfied {
				t.Fatalf("trial %d %s: permutation changed optimum %d → %d",
					trial, name, a.Satisfied, b.Satisfied)
			}
		}
	}
}

// TestSupersetTupleNeverWorse: giving the seller a product with strictly
// more attributes can never reduce optimal visibility.
func TestSupersetTupleNeverWorse(t *testing.T) {
	r := rand.New(rand.NewSource(812))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(r)
		if in.Tuple.Count() == in.Log.Width() {
			continue
		}
		richer := in.Tuple.Clone()
		richer.Set(richer.Not().Ones()[0])
		a, err := BruteForce{}.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BruteForce{}.Solve(Instance{Log: in.Log, Tuple: richer, M: in.M})
		if err != nil {
			t.Fatal(err)
		}
		if b.Satisfied < a.Satisfied {
			t.Fatalf("trial %d: richer tuple reduced optimum %d → %d",
				trial, a.Satisfied, b.Satisfied)
		}
	}
}
