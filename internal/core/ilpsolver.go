package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"standout/internal/bitvec"
	"standout/internal/ilp"
	"standout/internal/lp"
	"standout/internal/obsv"
)

// ILP is the exact algorithm of §IV.B. It encodes the instance as the
// paper's linearized 0/1 program
//
//	maximize   Σᵢ yᵢ
//	subject to Σⱼ xⱼ ≤ m
//	           yᵢ ≤ xⱼ          for every attribute j of query qᵢ
//	           xⱼ = 0            where the tuple lacks attribute j
//	           xⱼ ∈ {0,1},  yᵢ ∈ [0,1]
//
// and solves it with the branch-and-bound solver of package ilp (the paper
// used the off-the-shelf lpsolve library; see DESIGN.md §3). The yᵢ stay
// continuous: with integral x, maximizing forces every yᵢ to its integral
// upper envelope, so only the x need branching.
//
// Two reductions shrink the program before solving: queries not contained in
// the tuple are dropped (their yᵢ is forced to 0 by the fixed xⱼ anyway),
// and duplicate queries are collapsed with multiplicities as objective
// weights.
type ILP struct {
	// Timeout bounds the branch-and-bound wall clock; 0 means none. It is
	// implemented as a context deadline layered over the caller's context. On
	// expiry Solve returns the incumbent with Solution.Optimal=false, or, when
	// no incumbent was found, an error satisfying
	// errors.Is(err, context.DeadlineExceeded).
	Timeout time.Duration
	// MaxNodes bounds branch-and-bound nodes; 0 means the ilp default.
	MaxNodes int
	// Presolve enables LP presolve at every branch-and-bound node. Folding
	// branch-fixed variables shrinks deep-node LPs, but the per-node program
	// rebuild costs more than it saves on small instances; off by default.
	Presolve bool
	// Workers parallelizes the branch-and-bound search with speculative LP
	// workers; ≤ 1 (the zero value) searches sequentially. Results are
	// bit-identical for any worker count (see ilp.Options.Workers and
	// DESIGN.md §11).
	Workers int
}

// Name implements Solver.
func (ILP) Name() string { return "ILP-SOC-CB-QL" }

// Solve implements Solver.
func (s ILP) Solve(in Instance) (Solution, error) {
	return s.SolveContext(context.Background(), in)
}

// SolveContext implements Solver. Cancellation is polled before every
// branch-and-bound node and inside the simplex hot loops of each LP solve.
//
// The two deadline sources are reported differently: when the caller's ctx is
// cancelled or expires, SolveContext always returns an error (the caller
// asked to stop; a silent partial answer would masquerade as a full one).
// When only the solver's own Timeout expires, the incumbent — if any — is
// returned with Optimal=false and a nil error, preserving Solve's documented
// anytime behavior.
func (s ILP) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	obs := beginSolve(ctx, s.Name(), in)
	sol, err := s.solve(ctx, in, obs.tr)
	return obs.end(ctx, sol, err)
}

func (s ILP) solve(ctx context.Context, in Instance, tr *obsv.Trace) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, fmt.Errorf("core: ILP solve: %w", err)
	}
	n, err := normalize(ctx, in)
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		return n.full(), nil
	}
	encodeSpan := tr.StartSpan("encode")
	log, weights := n.log.Dedup()

	prob := lp.NewProblem(lp.Maximize)
	// One x per tuple attribute (absent attributes are simply not modeled —
	// equivalent to fixing them to 0 as in the paper's formulation).
	xVar := make(map[int]int, len(n.ones)) // attribute index → LP variable
	intVars := make([]int, 0, len(n.ones))
	budget := make([]lp.Term, 0, len(n.ones))
	for _, j := range n.ones {
		v := prob.AddBinaryVar(0, fmt.Sprintf("x%d", j))
		xVar[j] = v
		intVars = append(intVars, v)
		budget = append(budget, lp.Term{Var: v, Coeff: 1})
	}
	prob.AddConstraint(budget, lp.LE, float64(n.m))

	for qi, q := range log.Queries {
		y := prob.AddVar(0, 1, float64(weights[qi]), fmt.Sprintf("y%d", qi))
		for _, j := range q.Ones() {
			prob.AddConstraint(
				[]lp.Term{{Var: y, Coeff: 1}, {Var: xVar[j], Coeff: -1}}, lp.LE, 0)
		}
	}
	encodeSpan.End()

	// Rounding heuristic: keep the m attributes with the largest fractional
	// xⱼ and score the resulting compression exactly. This gives the
	// branch-and-bound search strong incumbents early.
	heuristic := func(x []float64) ([]float64, float64, bool) {
		kept := s.roundTopM(n, xVar, x)
		sat := n.score(kept)
		sol := make([]float64, len(x))
		for _, j := range kept.Ones() {
			sol[xVar[j]] = 1
		}
		// y variables were created in query order right after the x block.
		yBase := len(n.ones)
		for qi, q := range log.Queries {
			if q.SubsetOf(kept) {
				sol[yBase+qi] = 1
			}
		}
		return sol, float64(sat), true
	}

	bnbSpan := tr.StartSpan("branch_bound")
	res, err := ilp.SolveContext(ctx, prob, intVars, ilp.Options{
		MaxNodes:    s.MaxNodes,
		Timeout:     s.Timeout,
		ObjIntegral: true,
		Heuristic:   heuristic,
		LP:          lp.Options{Presolve: s.Presolve},
		Workers:     s.Workers,
	})
	bnbSpan.End()
	tr.Count("ilp.nodes", int64(res.Nodes))
	if err != nil {
		if ctx.Err() != nil || !res.HasIncumbent {
			// The caller's context fired, or the solver's own Timeout expired
			// with nothing to show: propagate the typed error.
			return Solution{}, fmt.Errorf("core: ILP solve: %w", err)
		}
		// Only the solver's Timeout fired and an incumbent exists: fall
		// through and return it below with Optimal=false.
	}

	switch res.Status {
	case ilp.StatusOptimal:
	case ilp.StatusLimit:
		if !res.HasIncumbent {
			return Solution{}, fmt.Errorf("core: ILP hit its limit with no incumbent (nodes=%d)", res.Nodes)
		}
	case ilp.StatusInfeasible:
		// Cannot happen: keeping nothing is always feasible. Guard anyway.
		return Solution{}, fmt.Errorf("core: ILP reported infeasible")
	default:
		return Solution{}, fmt.Errorf("core: ILP status %v", res.Status)
	}

	var attrs []int
	for _, j := range n.ones {
		if res.X[xVar[j]] > 0.5 {
			attrs = append(attrs, j)
		}
	}
	kept := n.keep(attrs)
	return Solution{
		Kept:      kept,
		Satisfied: n.score(kept),
		Optimal:   res.Status == ilp.StatusOptimal,
		Stats:     Stats{Nodes: res.Nodes},
	}, nil
}

// roundTopM keeps the m attributes with the largest fractional values.
func (s ILP) roundTopM(n normalized, xVar map[int]int, x []float64) bitvec.Vector {
	type fx struct {
		attr int
		v    float64
	}
	vals := make([]fx, 0, len(n.ones))
	for _, j := range n.ones {
		vals = append(vals, fx{j, x[xVar[j]]})
	}
	// Selection by partial sort.
	for i := 0; i < n.m && i < len(vals); i++ {
		maxI := i
		for k := i + 1; k < len(vals); k++ {
			if vals[k].v > vals[maxI].v+1e-12 ||
				(math.Abs(vals[k].v-vals[maxI].v) <= 1e-12 && vals[k].attr < vals[maxI].attr) {
				maxI = k
			}
		}
		vals[i], vals[maxI] = vals[maxI], vals[i]
	}
	attrs := make([]int, 0, n.m)
	for i := 0; i < n.m && i < len(vals); i++ {
		attrs = append(attrs, vals[i].attr)
	}
	return n.keep(attrs)
}
