package core

import (
	"math/rand"
	"testing"
)

func TestILPWithPresolveAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(r)
		want, err := BruteForce{}.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := ILP{Presolve: true}.Solve(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Satisfied != want.Satisfied {
			t.Fatalf("trial %d: presolved ILP %d != brute %d (nodes=%d)",
				trial, sol.Satisfied, want.Satisfied, sol.Stats.Nodes)
		}
	}
}
