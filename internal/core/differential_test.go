package core

import (
	"context"
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/index"
)

// The differential sweep pins the index/caching layer to the pre-index
// semantics: on randomized small instances, every exact solver — direct,
// through a PreparedLog (index + memo), and under WithPrepared (index only)
// — must report the same optimal visibility count, and every greedy must
// return bit-identical solutions with and without the index. One instance of
// disagreement here means the fast path changed results, which the whole
// design forbids.

// assertValid checks the Solution invariants every path must uphold.
func assertValid(t *testing.T, in Instance, sol Solution, path string) {
	t.Helper()
	if !sol.Kept.SubsetOf(in.Tuple) {
		t.Fatalf("%s: kept %v not a subset of tuple %v", path, sol.Kept, in.Tuple)
	}
	if sol.Kept.Count() > in.M {
		t.Fatalf("%s: kept %d attrs, budget %d", path, sol.Kept.Count(), in.M)
	}
	if got := in.Log.Satisfied(sol.Kept); got != sol.Satisfied {
		t.Fatalf("%s: reported %d satisfied, recount %d", path, sol.Satisfied, got)
	}
}

func runDifferential(t *testing.T, in Instance) {
	t.Helper()
	p, err := PrepareLog(in.Log)
	if err != nil {
		t.Fatal(err)
	}
	// A second prep with every column and bucket force-compressed: the sweep
	// instances are far too small for Auto to compress anything, so this is
	// how the Roaring-backed scoring paths face the same 1000 instances.
	cp, err := PrepareLogWith(in.Log, index.Options{Mode: index.ForceCompressed})
	if err != nil {
		t.Fatal(err)
	}
	mfiPrep, err := MaxFreqItemSets{Backend: BackendExactDFS}.Preprocess(in.Log)
	if err != nil {
		t.Fatal(err)
	}
	prepCtx := WithPrepared(context.Background(), p)
	compCtx := WithPrepared(context.Background(), cp)

	want, err := BruteForce{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	assertValid(t, in, want, "BruteForce/direct")

	exact := map[string]Solver{
		"BruteForce": BruteForce{},
		"IP":         IP{},
		"ILP":        ILP{},
		"MFI-dfs":    MaxFreqItemSets{Backend: BackendExactDFS},
		"Prepared":   PreparedSolver{Prep: mfiPrep},
	}
	for name, s := range exact {
		direct, err := s.Solve(in)
		if err != nil {
			t.Fatalf("%s/direct: %v", name, err)
		}
		assertValid(t, in, direct, name+"/direct")
		if direct.Satisfied != want.Satisfied {
			t.Fatalf("%s/direct satisfied %d, BruteForce %d", name, direct.Satisfied, want.Satisfied)
		}

		indexed, err := s.SolveContext(prepCtx, in)
		if err != nil {
			t.Fatalf("%s/indexed: %v", name, err)
		}
		assertValid(t, in, indexed, name+"/indexed")
		if indexed.Satisfied != want.Satisfied {
			t.Fatalf("%s/indexed satisfied %d, BruteForce %d", name, indexed.Satisfied, want.Satisfied)
		}

		compressed, err := s.SolveContext(compCtx, in)
		if err != nil {
			t.Fatalf("%s/compressed: %v", name, err)
		}
		assertValid(t, in, compressed, name+"/compressed")
		if compressed.Satisfied != want.Satisfied {
			t.Fatalf("%s/compressed satisfied %d, BruteForce %d", name, compressed.Satisfied, want.Satisfied)
		}

		// Twice through the memoizing path: second call is a cache hit and
		// must still agree.
		for pass := 0; pass < 2; pass++ {
			memo, err := p.SolveContext(context.Background(), s, in.Tuple, in.M)
			if err != nil {
				t.Fatalf("%s/memo pass %d: %v", name, pass, err)
			}
			assertValid(t, in, memo, name+"/memo")
			if memo.Satisfied != want.Satisfied {
				t.Fatalf("%s/memo pass %d satisfied %d, BruteForce %d",
					name, pass, memo.Satisfied, want.Satisfied)
			}
		}
	}

	// Greedies are not optimal, but the indexed paths — dense and compressed
	// alike — must be bit-for-bit the same heuristic: identical kept set, not
	// just identical count.
	for name, s := range greedySolvers() {
		direct, err := s.Solve(in)
		if err != nil {
			t.Fatalf("%s/direct: %v", name, err)
		}
		for path, ctx := range map[string]context.Context{"indexed": prepCtx, "compressed": compCtx} {
			indexed, err := s.SolveContext(ctx, in)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, path, err)
			}
			assertValid(t, in, indexed, name+"/"+path)
			if direct.Satisfied != indexed.Satisfied || direct.Kept.String() != indexed.Kept.String() {
				t.Fatalf("%s/%s: direct (%d, %v) != %s (%d, %v)",
					name, path, direct.Satisfied, direct.Kept, path, indexed.Satisfied, indexed.Kept)
			}
		}
	}
}

func TestDifferentialSweep(t *testing.T) {
	trials := 1000
	if testing.Short() {
		trials = 100
	}
	r := rand.New(rand.NewSource(20080406))
	for trial := 0; trial < trials; trial++ {
		in := randomInstance(r)
		runDifferential(t, in)
	}
}

// TestDifferentialEdgeInstances covers the corners the random sweep reaches
// only by luck: empty logs, fully duplicated logs, all-ones tuples, budgets
// at or above the tuple size, and zero budgets.
func TestDifferentialEdgeInstances(t *testing.T) {
	width := 7
	schema := dataset.GenericSchema(width)

	mkLog := func(qs ...[]int) *dataset.QueryLog {
		log := dataset.NewQueryLog(schema)
		for _, q := range qs {
			if err := log.Append(bitvec.FromIndices(width, q...)); err != nil {
				t.Fatal(err)
			}
		}
		return log
	}
	allOnes := bitvec.New(width)
	for i := 0; i < width; i++ {
		allOnes.Set(i)
	}

	cases := map[string]Instance{
		"empty log": {Log: mkLog(), Tuple: bitvec.FromIndices(width, 0, 2, 4), M: 2},
		"duplicate queries": {
			Log:   mkLog([]int{1, 2}, []int{1, 2}, []int{1, 2}, []int{0}, []int{0}),
			Tuple: bitvec.FromIndices(width, 0, 1, 2), M: 2,
		},
		"all-ones tuple": {
			Log:   mkLog([]int{0, 6}, []int{3}, []int{2, 4, 5}),
			Tuple: allOnes, M: 3,
		},
		"budget equals tuple size": {
			Log:   mkLog([]int{0, 1}, []int{1, 3}),
			Tuple: bitvec.FromIndices(width, 0, 1, 3), M: 3,
		},
		"budget exceeds tuple size": {
			Log:   mkLog([]int{0, 1}, []int{1, 3}, []int{5}),
			Tuple: bitvec.FromIndices(width, 0, 1), M: width + 5,
		},
		"zero budget": {
			Log:   mkLog([]int{0}, []int{}),
			Tuple: bitvec.FromIndices(width, 0, 1), M: 0,
		},
		"empty tuple": {
			Log:   mkLog([]int{0}, []int{1, 2}),
			Tuple: bitvec.New(width), M: 2,
		},
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) { runDifferential(t, in) })
	}
}
