package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/itemsets"
)

func TestPrepareLogBasics(t *testing.T) {
	in := example1(t)
	p, err := PrepareLog(in.Log)
	if err != nil {
		t.Fatal(err)
	}
	if p.Log() != in.Log {
		t.Fatal("Log() is not the prepared log")
	}
	if p.Fingerprint() != in.Log.Fingerprint() {
		t.Fatal("Fingerprint() does not match the log")
	}
	if p.Stale() {
		t.Fatal("fresh PreparedLog reports stale")
	}
	if !p.usableFor(in.Log) {
		t.Fatal("not usable for its own log")
	}
	other := dataset.NewQueryLog(dataset.GenericSchema(6))
	if p.usableFor(other) {
		t.Fatal("usable for a different log")
	}
	var nilP *PreparedLog
	if nilP.usableFor(in.Log) {
		t.Fatal("nil PreparedLog claims usability")
	}
}

func TestPreparedSolveMatchesDirect(t *testing.T) {
	in := example1(t)
	p, err := PrepareLog(in.Log)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range allSolvers() {
		t.Run(name, func(t *testing.T) {
			direct, err := s.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			prepped, err := p.Solve(s, in.Tuple, in.M)
			if err != nil {
				t.Fatal(err)
			}
			if prepped.Satisfied != direct.Satisfied || prepped.Kept.String() != direct.Kept.String() {
				t.Fatalf("prepared (%d, %v) != direct (%d, %v)",
					prepped.Satisfied, prepped.Kept, direct.Satisfied, direct.Kept)
			}

			// WithPrepared (index only, no memo) must agree too.
			ctx := WithPrepared(context.Background(), p)
			viaCtx, err := s.SolveContext(ctx, in)
			if err != nil {
				t.Fatal(err)
			}
			if viaCtx.Satisfied != direct.Satisfied || viaCtx.Kept.String() != direct.Kept.String() {
				t.Fatalf("WithPrepared (%d, %v) != direct (%d, %v)",
					viaCtx.Satisfied, viaCtx.Kept, direct.Satisfied, direct.Kept)
			}
		})
	}
}

func TestPreparedSolutionMemo(t *testing.T) {
	in := example1(t)
	p, err := PrepareLog(in.Log)
	if err != nil {
		t.Fatal(err)
	}
	s := BruteForce{}

	first, err := p.Solve(s, in.Tuple, in.M)
	if err != nil {
		t.Fatal(err)
	}
	st := p.CacheStats()
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("after first solve: %+v", st)
	}

	second, err := p.Solve(s, in.Tuple, in.M)
	if err != nil {
		t.Fatal(err)
	}
	st = p.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after repeat solve: %+v", st)
	}
	if second.Satisfied != first.Satisfied || second.Kept.String() != first.Kept.String() {
		t.Fatal("memoized solution differs")
	}

	// Hits must return an independent vector: corrupting one caller's copy
	// must not poison the memo.
	second.Kept.Clear(0)
	third, err := p.Solve(s, in.Tuple, in.M)
	if err != nil {
		t.Fatal(err)
	}
	if third.Kept.String() != first.Kept.String() {
		t.Fatal("memo entry aliased a caller's vector")
	}

	// Different m is a different key.
	if _, err := p.Solve(s, in.Tuple, in.M-1); err != nil {
		t.Fatal(err)
	}
	if st := p.CacheStats(); st.Misses != 2 {
		t.Fatalf("distinct m shared a key: %+v", st)
	}

	// Different solver configuration is a different key.
	if _, err := p.Solve(MaxFreqItemSets{Backend: BackendExactDFS}, in.Tuple, in.M); err != nil {
		t.Fatal(err)
	}
	if st := p.CacheStats(); st.Misses != 3 {
		t.Fatalf("distinct solver shared a key: %+v", st)
	}
}

func TestPreparedMemoEvictionAndDisable(t *testing.T) {
	in := example1(t)
	p, err := PrepareLog(in.Log)
	if err != nil {
		t.Fatal(err)
	}
	p.SetSolutionCache(1)
	s := ConsumeAttr{}
	t1 := in.Tuple
	t2 := bitvec.FromIndices(6, 0, 1, 2)
	for _, tuple := range []bitvec.Vector{t1, t2, t1} {
		if _, err := p.Solve(s, tuple, 2); err != nil {
			t.Fatal(err)
		}
	}
	st := p.CacheStats()
	// Capacity 1: t2 displaces t1, then t1's re-solve displaces t2 —
	// three misses, two evictions, no hits.
	if st.Hits != 0 || st.Misses != 3 || st.Evictions != 2 {
		t.Fatalf("capacity-1 stats: %+v", st)
	}

	p.SetSolutionCache(0) // disable: everything misses, nothing stored
	if _, err := p.Solve(s, t1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(s, t1, 2); err != nil {
		t.Fatal(err)
	}
	if st := p.CacheStats(); st.Hits != 0 {
		t.Fatalf("disabled memo produced a hit: %+v", st)
	}
}

func TestPreparedStaleDetection(t *testing.T) {
	in := example1(t)
	p, err := PrepareLog(in.Log)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Log.Append(bitvec.FromIndices(6, 5)); err != nil {
		t.Fatal(err)
	}
	if !p.Stale() {
		t.Fatal("not stale after Append")
	}
	if _, err := p.Solve(BruteForce{}, in.Tuple, in.M); !errors.Is(err, ErrStalePrep) {
		t.Fatalf("stale SolveContext returned %v, want ErrStalePrep", err)
	}

	// The WithPrepared path degrades silently: solvers fall back to the
	// direct scan and still return correct results.
	ctx := WithPrepared(context.Background(), p)
	sol, err := BruteForce{}.SolveContext(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied != want.Satisfied {
		t.Fatalf("stale-fallback satisfied %d, want %d", sol.Satisfied, want.Satisfied)
	}
}

// unkeyableSolver is a Solver from outside this package's concrete types.
type unkeyableSolver struct{ BruteForce }

func TestSolverCacheIdentity(t *testing.T) {
	keyable := []Solver{
		BruteForce{}, IP{}, ILP{}, ConsumeAttr{}, ConsumeAttrCumul{}, ConsumeQueries{},
		MaxFreqItemSets{}, MaxFreqItemSets{Backend: BackendExactDFS, Threshold: 3},
		PreparedSolver{Prep: &Prep{}},
	}
	ids := map[string]bool{}
	for _, s := range keyable {
		id, ok := solverCacheID(s)
		if !ok {
			t.Fatalf("%T not keyable", s)
		}
		if ids[id] {
			t.Fatalf("%T shares cache id %q with another configuration", s, id)
		}
		ids[id] = true
	}
	for _, s := range []Solver{
		unkeyableSolver{},
		MaxFreqItemSets{Walk: itemsets.WalkOptions{Rng: rand.New(rand.NewSource(1))}},
		PreparedSolver{},
	} {
		if id, ok := solverCacheID(s); ok {
			t.Fatalf("%T keyable as %q; must not be memoized", s, id)
		}
	}
}

func TestUnkeyableSolverNotMemoized(t *testing.T) {
	in := example1(t)
	p, err := PrepareLog(in.Log)
	if err != nil {
		t.Fatal(err)
	}
	s := unkeyableSolver{}
	want, err := BruteForce{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		sol, err := p.Solve(s, in.Tuple, in.M)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Satisfied != want.Satisfied {
			t.Fatalf("satisfied %d, want %d", sol.Satisfied, want.Satisfied)
		}
	}
	if st := p.CacheStats(); st.Hits+st.Misses != 0 {
		t.Fatalf("unkeyable solver touched the memo: %+v", st)
	}
}

func TestPreparedFromContext(t *testing.T) {
	if PreparedFromContext(context.Background()) != nil {
		t.Fatal("background context carries a PreparedLog")
	}
	in := example1(t)
	p, err := PrepareLog(in.Log)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithPrepared(context.Background(), p)
	if PreparedFromContext(ctx) != p {
		t.Fatal("WithPrepared round-trip failed")
	}
	if !preparationDisabled(WithoutPreparation(context.Background())) {
		t.Fatal("WithoutPreparation not recorded")
	}
}
