package core

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/fault"
	"standout/internal/obsv"
)

// BatchError records which tuple of a batch failed and why. It is the error
// type SolveBatchContext aggregates per tuple and returns as the batch-level
// error; errors.Is/As unwrap to the solver's underlying error.
type BatchError struct {
	Index int // index into the tuples slice
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("core: batch tuple %d: %v", e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// SolveBatch solves the same (log, m) problem for many tuples concurrently —
// the marketplace regime the paper's preprocessing discussion targets, where
// one workload is shared by a stream of new listings. Results align with
// tuples by index. workers ≤ 0 selects GOMAXPROCS. The first error cancels
// the batch: dispatch stops, in-flight solves are interrupted through their
// context, and the error is returned.
//
// Per-log work is built once and shared: the batch prepares the query log
// (inverted attribute→query bitmap index plus a solution memo for repeated
// tuples) and every worker solves through it. Results are identical to the
// unshared path — only faster. See SolveBatchContext for the knobs.
//
// Every Solver in this package is safe for concurrent use by value.
func SolveBatch(s Solver, log *dataset.QueryLog, tuples []bitvec.Vector, m, workers int) ([]Solution, error) {
	out, _, err := SolveBatchContext(context.Background(), s, log, tuples, m, workers)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SolveBatchContext is SolveBatch under a context, with partial-result
// reporting. Solutions and per-tuple errors align with tuples by index:
// errs[i] carries tuple i's failure (including a cancellation that landed
// mid-solve), and a tuple that was never attempted has a zero Solution and a
// nil error.
//
// Every tuple solves behind a panic boundary: a panicking solver is
// recovered into a *PanicError attributed to its tuple (wrapped by the
// returned *BatchError like any other failure) instead of crashing the
// process, so one malformed tuple cannot take down its siblings.
//
// Cancellation is prompt in both directions. When ctx is done, the producer
// stops handing out work, every in-flight solve is interrupted through the
// context it was given, and the external ctx error is returned. When a solve
// fails, the failure cancels an internal context with the same effect and the
// batch error — a *BatchError identifying the first failing tuple observed —
// is returned. Either way at most the already-dispatched tuples (bounded by
// the number of workers) run to completion; everything else is skipped.
//
// Shared per-log state: unless the context disables it (WithoutPreparation)
// or already carries a matching PreparedLog (WithPrepared — e.g. to reuse
// one across batches), a multi-tuple batch prepares the log once — building
// the shared bitmap index under an "index.build" span on the batch trace —
// and every worker solves through it, memoizing solutions for repeated
// tuples. A context-attached PreparedLog for a different log is ignored.
func SolveBatchContext(ctx context.Context, s Solver, log *dataset.QueryLog, tuples []bitvec.Vector, m, workers int) ([]Solution, []error, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tuples) {
		workers = len(tuples)
	}
	out := make([]Solution, len(tuples))
	errs := make([]error, len(tuples))
	if len(tuples) == 0 {
		return out, errs, ctx.Err()
	}

	pl := preparedFromContext(ctx)
	if pl != nil && !pl.usableFor(log) {
		pl = nil // prepared for some other (or mutated) log: ignore
	}
	if pl == nil && !preparationDisabled(ctx) && len(tuples) > 1 {
		// Build failures are not fatal here: an invalid log will produce the
		// same validation error from the solver itself, attributed per tuple.
		if built, err := PrepareLogContext(ctx, log); err == nil {
			pl = built
		}
	}

	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Batch-level observability: a shared "batch" span, per-tuple queue-wait
	// samples (time from batch start to a worker dequeuing the index), and
	// per-tuple outcome counters. The trace is shared by every worker — Trace
	// is concurrency-safe — so each tuple's solver phases aggregate into one
	// batch-wide breakdown.
	tr := obsv.FromContext(ctx)
	batchSpan := tr.StartSpan("batch")
	t0 := time.Now()
	tr.Count("batch.tuples", int64(len(tuples)))
	var solved, failed, skipped atomic.Int64

	var (
		wg         sync.WaitGroup
		errOnce    sync.Once
		firstErr   error
		next       = make(chan int)
		dispatched int
	)
	fail := func(i int, err error) {
		errs[i] = err
		errOnce.Do(func() {
			firstErr = &BatchError{Index: i, Err: err}
			cancel() // first failure stops the producer and in-flight solves
		})
	}
	// solveOne isolates one tuple's solve behind a panic boundary: a solver
	// panic (a malformed tuple tripping a bitvec width check, an injected
	// chaos panic) becomes a *PanicError attributed to that tuple through the
	// normal *BatchError path instead of taking down the whole batch — and
	// the process with it.
	solveOne := func(i int) (sol Solution, err error) {
		defer RecoverPanic(&err)
		if ferr := fault.Hit(bctx, "core.batch.tuple"); ferr != nil {
			return Solution{}, ferr
		}
		if pl != nil {
			return pl.SolveContext(bctx, s, tuples[i], m)
		}
		return s.SolveContext(bctx, Instance{Log: log, Tuple: tuples[i], M: m})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				wait := time.Since(t0)
				mBatchQueueWait.Observe(wait.Seconds())
				tr.Count("batch.queue_wait_ns", wait.Nanoseconds())
				// Between dequeue and solve the batch may have been cancelled;
				// skip rather than start work that is doomed to be interrupted.
				if bctx.Err() != nil {
					skipped.Add(1)
					continue
				}
				sol, err := solveOne(i)
				if err != nil {
					failed.Add(1)
					fail(i, err)
					continue
				}
				solved.Add(1)
				out[i] = sol
			}
		}()
	}
	// The producer competes sends against cancellation so it can never block
	// on workers that have stopped receiving.
producer:
	for i := range tuples {
		select {
		case next <- i:
			dispatched++
		case <-bctx.Done():
			break producer
		}
	}
	close(next)
	wg.Wait()

	skipped.Add(int64(len(tuples) - dispatched)) // never handed to a worker
	batchSpan.End()
	tr.Count("batch.solved", solved.Load())
	tr.Count("batch.failed", failed.Load())
	tr.Count("batch.skipped", skipped.Load())
	if lg := obsv.Logger(ctx); lg != nil {
		lg.LogAttrs(ctx, slog.LevelInfo, "batch.finish",
			slog.String("solver", s.Name()),
			slog.Int("tuples", len(tuples)),
			slog.Int64("solved", solved.Load()),
			slog.Int64("failed", failed.Load()),
			slog.Int64("skipped", skipped.Load()),
			slog.Duration("elapsed", time.Since(t0)))
	}

	// The external context outranks any per-tuple failure it caused.
	if err := ctx.Err(); err != nil {
		return out, errs, err
	}
	return out, errs, firstErr
}

// PreparedSolver adapts MaxFreqItemSets preprocessing state to the Solver
// interface so it can be used with SolveBatch and the experiment harness.
// Instances must reference the exact query log the Prep was built from.
type PreparedSolver struct {
	Prep *Prep
}

// Name implements Solver.
func (p PreparedSolver) Name() string { return "MaxFreqItemSets-SOC-CB-QL (prepared)" }

// Solve implements Solver.
func (p PreparedSolver) Solve(in Instance) (Solution, error) {
	return p.SolveContext(context.Background(), in)
}

// SolveContext implements Solver, delegating to Prep.SolvePreparedContext.
func (p PreparedSolver) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	if p.Prep == nil {
		return Solution{}, fmt.Errorf("core: PreparedSolver with nil Prep")
	}
	if in.Log != p.Prep.log {
		return Solution{}, fmt.Errorf("core: PreparedSolver used with a different query log")
	}
	return p.Prep.SolvePreparedContext(ctx, in.Tuple, in.M)
}
