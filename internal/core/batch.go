package core

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"time"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/fault"
	"standout/internal/obsv"
	"standout/internal/par"
)

// BatchError records which tuple of a batch failed and why. It is the error
// type SolveBatchContext aggregates per tuple and returns as the batch-level
// error; errors.Is/As unwrap to the solver's underlying error.
type BatchError struct {
	Index int // index into the tuples slice
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("core: batch tuple %d: %v", e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// SolveBatch solves the same (log, m) problem for many tuples concurrently —
// the marketplace regime the paper's preprocessing discussion targets, where
// one workload is shared by a stream of new listings. Results align with
// tuples by index. workers ≤ 0 selects GOMAXPROCS. The first error cancels
// the batch: dispatch stops, in-flight solves are interrupted through their
// context, and the error is returned.
//
// Per-log work is built once and shared: the batch prepares the query log
// (inverted attribute→query bitmap index plus a solution memo for repeated
// tuples) and every worker solves through it. Results are identical to the
// unshared path — only faster. See SolveBatchContext for the knobs.
//
// Every Solver in this package is safe for concurrent use by value.
func SolveBatch(s Solver, log *dataset.QueryLog, tuples []bitvec.Vector, m, workers int) ([]Solution, error) {
	out, _, err := SolveBatchContext(context.Background(), s, log, tuples, m, workers)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SolveBatchContext is SolveBatch under a context, with partial-result
// reporting. Solutions and per-tuple errors align with tuples by index:
// errs[i] carries tuple i's failure (including a cancellation that landed
// mid-solve), and a tuple that was never attempted has a zero Solution and a
// nil error.
//
// Every tuple solves behind a panic boundary: a panicking solver is
// recovered into a *PanicError attributed to its tuple (wrapped by the
// returned *BatchError like any other failure) instead of crashing the
// process, so one malformed tuple cannot take down its siblings.
//
// Cancellation is prompt in both directions. When ctx is done, the producer
// stops handing out work, every in-flight solve is interrupted through the
// context it was given, and the external ctx error is returned. When a solve
// fails, the failure cancels an internal context with the same effect and the
// batch error — a *BatchError identifying the first failing tuple observed —
// is returned. Either way at most the already-dispatched tuples (bounded by
// the number of workers) run to completion; everything else is skipped.
//
// Shared per-log state: unless the context disables it (WithoutPreparation)
// or already carries a matching PreparedLog (WithPrepared — e.g. to reuse
// one across batches), a multi-tuple batch prepares the log once — building
// the shared bitmap index under an "index.build" span on the batch trace —
// and every worker solves through it, memoizing solutions for repeated
// tuples. A context-attached PreparedLog for a different log is ignored.
//
// Scheduling runs on the work-stealing engine of internal/par: tuples start
// evenly range-split across workers and idle workers steal from the busiest
// range, so one pathologically slow tuple cannot strand the cheap tuples
// queued behind it. Results are written by tuple index, so the schedule is
// invisible in the output (DESIGN.md §11). The batch is normalized before
// any worker sizing: an empty batch returns before the scheduler is even
// constructed, and a single-tuple or single-worker batch runs entirely on
// the calling goroutine — zero goroutines spawned either way.
func SolveBatchContext(ctx context.Context, s Solver, log *dataset.QueryLog, tuples []bitvec.Vector, m, workers int) ([]Solution, []error, error) {
	// Normalize the batch shape first; worker sizing comes after, so a batch
	// with nothing to do never consults the scheduler at all.
	out := make([]Solution, len(tuples))
	errs := make([]error, len(tuples))
	if len(tuples) == 0 {
		return out, errs, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tuples) {
		workers = len(tuples)
	}

	pl := preparedFromContext(ctx)
	if pl != nil && !pl.usableFor(log) {
		pl = nil // prepared for some other (or mutated) log: ignore
	}
	if pl == nil && !preparationDisabled(ctx) && len(tuples) > 1 {
		// Build failures are not fatal here: an invalid log will produce the
		// same validation error from the solver itself, attributed per tuple.
		if built, err := PrepareLogContext(ctx, log); err == nil {
			pl = built
		}
	}

	// Batch-level observability: a shared "batch" span, per-tuple queue-wait
	// samples (time from batch start to a worker claiming the index), and
	// per-tuple outcome counters. The trace is shared by every worker — Trace
	// is concurrency-safe — so each tuple's solver phases aggregate into one
	// batch-wide breakdown.
	tr := obsv.FromContext(ctx)
	batchSpan := tr.StartSpan("batch")
	t0 := time.Now()
	tr.Count("batch.tuples", int64(len(tuples)))

	res := par.Run(ctx, len(tuples), par.Options{
		Workers: workers,
		// A solver panic (a malformed tuple tripping a bitvec width check, an
		// injected chaos panic) becomes a *PanicError attributed to its tuple
		// through the normal *BatchError path instead of taking down the
		// whole batch — and the process with it.
		WrapPanic: wrapBatchPanic,
	}, func(bctx context.Context, i int) error {
		wait := time.Since(t0)
		mBatchQueueWait.Observe(wait.Seconds())
		tr.Count("batch.queue_wait_ns", wait.Nanoseconds())
		if ferr := fault.Hit(bctx, "core.batch.tuple"); ferr != nil {
			return ferr
		}
		var sol Solution
		var err error
		if pl != nil {
			sol, err = pl.SolveContext(bctx, s, tuples[i], m)
		} else {
			sol, err = s.SolveContext(bctx, Instance{Log: log, Tuple: tuples[i], M: m})
		}
		if err != nil {
			return err
		}
		out[i] = sol
		return nil
	})
	copy(errs, res.Errs)

	var firstErr error
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if res.First != nil {
		firstErr = &BatchError{Index: res.First.Index, Err: res.First.Err}
	}
	solved := res.Attempted - failed
	skipped := len(tuples) - res.Attempted

	batchSpan.End()
	tr.Count("batch.solved", int64(solved))
	tr.Count("batch.failed", int64(failed))
	tr.Count("batch.skipped", int64(skipped))
	tr.Count("batch.steals", res.Steals)
	if lg := obsv.Logger(ctx); lg != nil {
		attrs := []slog.Attr{
			slog.String("solver", s.Name()),
			slog.Int("tuples", len(tuples)),
			slog.Int("solved", solved),
			slog.Int("failed", failed),
			slog.Int("skipped", skipped),
			slog.Int64("steals", res.Steals),
			slog.Duration("elapsed", time.Since(t0)),
		}
		if id := obsv.TraceIDStringFromContext(ctx); id != "" {
			attrs = append(attrs, slog.String("trace_id", id))
		}
		lg.LogAttrs(ctx, slog.LevelInfo, "batch.finish", attrs...)
	}

	// The external context outranks any per-tuple failure it caused.
	if err := ctx.Err(); err != nil {
		return out, errs, err
	}
	return out, errs, firstErr
}

// wrapBatchPanic is the par.Options.WrapPanic hook of batch solving: it
// converts a recovered worker panic into the package's *PanicError, keeping
// the panic-counter metric accurate.
func wrapBatchPanic(v any, stack []byte) error {
	mSolvePanics.Add(1)
	return &PanicError{Value: v, Stack: stack}
}

// PreparedSolver adapts MaxFreqItemSets preprocessing state to the Solver
// interface so it can be used with SolveBatch and the experiment harness.
// Instances must reference the exact query log the Prep was built from.
type PreparedSolver struct {
	Prep *Prep
}

// Name implements Solver.
func (p PreparedSolver) Name() string { return "MaxFreqItemSets-SOC-CB-QL (prepared)" }

// Solve implements Solver.
func (p PreparedSolver) Solve(in Instance) (Solution, error) {
	return p.SolveContext(context.Background(), in)
}

// SolveContext implements Solver, delegating to Prep.SolvePreparedContext.
func (p PreparedSolver) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	if p.Prep == nil {
		return Solution{}, fmt.Errorf("core: PreparedSolver with nil Prep")
	}
	if in.Log != p.Prep.log {
		return Solution{}, fmt.Errorf("core: PreparedSolver used with a different query log")
	}
	return p.Prep.SolvePreparedContext(ctx, in.Tuple, in.M)
}
