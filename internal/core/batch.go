package core

import (
	"fmt"
	"runtime"
	"sync"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// SolveBatch solves the same (log, m) problem for many tuples concurrently —
// the marketplace regime the paper's preprocessing discussion targets, where
// one workload is shared by a stream of new listings. Results align with
// tuples by index. workers ≤ 0 selects GOMAXPROCS. The first error cancels
// the batch.
//
// Every Solver in this package is safe for concurrent use by value; to share
// MaxFreqItemSets preprocessing across the batch, pass a PreparedSolver.
func SolveBatch(s Solver, log *dataset.QueryLog, tuples []bitvec.Vector, m, workers int) ([]Solution, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tuples) {
		workers = len(tuples)
	}
	out := make([]Solution, len(tuples))
	if len(tuples) == 0 {
		return out, nil
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				sol, err := s.Solve(Instance{Log: log, Tuple: tuples[i], M: m})
				if err != nil {
					errOnce.Do(func() { firstErr = fmt.Errorf("core: batch tuple %d: %w", i, err) })
					continue
				}
				out[i] = sol
			}
		}()
	}
	for i := range tuples {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// PreparedSolver adapts MaxFreqItemSets preprocessing state to the Solver
// interface so it can be used with SolveBatch and the experiment harness.
// Instances must reference the exact query log the Prep was built from.
type PreparedSolver struct {
	Prep *Prep
}

// Name implements Solver.
func (p PreparedSolver) Name() string { return "MaxFreqItemSets-SOC-CB-QL (prepared)" }

// Solve implements Solver.
func (p PreparedSolver) Solve(in Instance) (Solution, error) {
	if p.Prep == nil {
		return Solution{}, fmt.Errorf("core: PreparedSolver with nil Prep")
	}
	if in.Log != p.Prep.log {
		return Solution{}, fmt.Errorf("core: PreparedSolver used with a different query log")
	}
	return p.Prep.SolvePrepared(in.Tuple, in.M)
}
