package core

import (
	"context"
	"fmt"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// Batch counting oracles for the sharded scatter-gather layer
// (internal/shard). The SOC-CB-QL objective is additive over queries, so a
// coordinator holding only per-shard counts can reconstruct every global
// quantity the solvers need: CountSatisfied is the objective itself (queries
// retrieving a candidate compression), CountContaining is the co-occurrence
// score ConsumeAttrCumul ranks candidates by (and, on singleton candidates,
// the per-attribute frequency ConsumeAttr sorts on). Summing the per-shard
// results of either function over a partition of a log equals calling it on
// the unpartitioned log — the exactness argument of DESIGN.md §15.

// CountSatisfied returns, for each candidate compression, the total weight of
// log queries retrieving it (queries q with q ⊆ cand) — the plain count for
// an unweighted log. When the context carries a usable PreparedLog for log
// (WithPrepared), candidates are answered from the shared attribute→query
// index; results are bit-identical either way.
func CountSatisfied(ctx context.Context, log *dataset.QueryLog, cands []bitvec.Vector) ([]int, error) {
	if err := validateCands(log, cands); err != nil {
		return nil, err
	}
	counts := make([]int, len(cands))
	if p := preparedFromContext(ctx); p != nil && p.usableFor(log) {
		seg := p.seg
		for ci, cand := range cands {
			if ci&pollMask == 0 {
				if err := pollCtx(ctx); err != nil {
					return nil, fmt.Errorf("core: count satisfied: %w", err)
				}
			}
			total := 0
			for si := 0; si < seg.Segments(); si++ {
				ix, off := seg.Segment(si), seg.Offset(si)
				cs := ix.CandidateSet(cand)
				if log.Weights == nil {
					total += cs.Count()
				} else {
					cs.Range(func(qi int) bool {
						total += log.Weights[off+qi]
						return true
					})
				}
			}
			counts[ci] = total
		}
		return counts, nil
	}
	for ci, cand := range cands {
		if ci&pollMask == 0 {
			if err := pollCtx(ctx); err != nil {
				return nil, fmt.Errorf("core: count satisfied: %w", err)
			}
		}
		counts[ci] = log.Satisfied(cand)
	}
	return counts, nil
}

// CountContaining returns, for each candidate, the total weight of log
// queries containing it (queries q with q ⊇ cand). A single pass over the
// log scores every candidate, so a greedy selection round costs one scan
// regardless of how many candidates it weighs.
func CountContaining(ctx context.Context, log *dataset.QueryLog, cands []bitvec.Vector) ([]int, error) {
	if err := validateCands(log, cands); err != nil {
		return nil, err
	}
	counts := make([]int, len(cands))
	for qi, q := range log.Queries {
		if qi&pollMask == 0 {
			if err := pollCtx(ctx); err != nil {
				return nil, fmt.Errorf("core: count containing: %w", err)
			}
		}
		w := log.Weight(qi)
		for ci, cand := range cands {
			if cand.SubsetOf(q) {
				counts[ci] += w
			}
		}
	}
	return counts, nil
}

func validateCands(log *dataset.QueryLog, cands []bitvec.Vector) error {
	if log == nil {
		return fmt.Errorf("core: nil query log")
	}
	for i, cand := range cands {
		if cand.Width() != log.Width() {
			return fmt.Errorf("core: candidate %d width %d, query log width %d",
				i, cand.Width(), log.Width())
		}
	}
	return nil
}
