package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/compact"
	"standout/internal/dataset"
	"standout/internal/fault"
)

// Weighted/segmented differential suite: for every seeded instance, the same
// tuple is solved over (a) the raw log, (b) the compacted weighted log, and
// (c) segmented preps assembled by randomized append/compact schedules
// (including runs where tiered compaction is fault-injected to fail, leaving
// unmerged deltas). Every deterministic solver must return a bit-identical
// Solution — same Kept vector, same Satisfied count — across all
// representations. This is the executable form of DESIGN.md §14's exactness
// argument: duplicate folding preserves the objective pointwise, and segment
// boundaries are invisible to scoring.
//
// The random-walk MFI backends are excluded: they are exact-by-certificate
// but consume their RNG stream differently per representation (duplicate rows
// change the walk's draws), so their equality is only in distribution, not
// bit-for-bit.
func weightedDiffSolvers() []Solver {
	return []Solver{
		BruteForce{},
		IP{},
		ILP{},
		MaxFreqItemSets{Backend: BackendExactDFS},
		ConsumeAttr{},
		ConsumeAttrCumul{},
		ConsumeQueries{},
	}
}

// diffInstance is one generated case: a raw unit-weight log (duplicates
// likely), a tuple, and a budget.
type diffInstance struct {
	raw   *dataset.QueryLog
	tuple bitvec.Vector
	m     int
	kind  string
}

// genDiffInstance builds instance i. Most instances sample queries from a
// small pool so exact duplicates are frequent; two adversarial shapes are
// interleaved: all-duplicate logs (compaction collapses the whole log into a
// single weighted entry) and subsumption chains q_1 ⊂ q_2 ⊂ … ⊂ q_k — the
// shape where folding would be tempting and wrong, so compaction must keep
// every chain link as its own weighted entry.
func genDiffInstance(i int) diffInstance {
	r := rand.New(rand.NewSource(int64(i)*7919 + 13))
	width := 5 + r.Intn(6)
	log := dataset.NewQueryLog(dataset.GenericSchema(width))
	size := 6 + r.Intn(30)
	kind := "pooled"

	randQuery := func(maxOnes int) bitvec.Vector {
		q := bitvec.New(width)
		k := 1 + r.Intn(maxOnes)
		for q.Count() < k {
			q.Set(r.Intn(width))
		}
		return q
	}
	mustAppend := func(q bitvec.Vector) {
		if err := log.Append(q); err != nil {
			panic(err)
		}
	}

	switch i % 10 {
	case 7: // one query repeated size times
		kind = "all-dup"
		q := randQuery(4)
		for j := 0; j < size; j++ {
			mustAppend(q)
		}
	case 8: // subsumption chain, links repeated in random order
		kind = "chain"
		k := 2 + r.Intn(width-1)
		chain := make([]bitvec.Vector, k)
		q := bitvec.New(width)
		perm := r.Perm(width)
		for c := 0; c < k; c++ {
			q.Set(perm[c])
			chain[c] = q.Clone()
		}
		for j := 0; j < size; j++ {
			mustAppend(chain[r.Intn(k)])
		}
	default: // sample from a small pool → duplicates likely
		pool := make([]bitvec.Vector, 2+r.Intn(6))
		for p := range pool {
			pool[p] = randQuery(4)
		}
		for j := 0; j < size; j++ {
			mustAppend(pool[r.Intn(len(pool))])
		}
	}

	tuple := bitvec.New(width)
	for tuple.Count() < 2+r.Intn(width-1) {
		tuple.Set(r.Intn(width))
	}
	return diffInstance{raw: log, tuple: tuple, m: 1 + r.Intn(4), kind: kind}
}

// buildSegPrepRandomized reassembles full as a segmented PreparedLog through a
// randomized schedule: a random prefix is built one-shot, the remainder lands
// in random-sized appended chunks, each going through the real incremental
// path (Extend → AppendWeighted → PrepareLogFromContext). Half the schedules
// run with the core.prep.compact fault site erroring periodically, so the
// final prep may hold any segment layout from fully merged to
// one-segment-per-chunk — all of which must score identically.
func buildSegPrepRandomized(t *testing.T, r *rand.Rand, full *dataset.QueryLog) *PreparedLog {
	t.Helper()
	ctx := context.Background()
	if r.Intn(2) == 0 {
		ctx = fault.WithInjector(ctx, fault.New(r.Int63(),
			fault.Rule{Site: "core.prep.compact", Every: uint64(1 + r.Intn(3)), Kind: fault.KindError, Msg: "diff compaction fault"}))
	}

	n := full.Size()
	cut := 1 + r.Intn(n)
	cur := dataset.NewQueryLog(full.Schema)
	for i := 0; i < cut; i++ {
		if err := cur.AppendWeighted(full.Queries[i], full.Weight(i)); err != nil {
			t.Fatal(err)
		}
	}
	prep, err := PrepareLogContext(ctx, cur)
	if err != nil {
		t.Fatal(err)
	}
	for i := cut; i < n; {
		chunk := 1 + r.Intn(n-i)
		next := cur.Extend()
		for j := 0; j < chunk; j++ {
			if err := next.AppendWeighted(full.Queries[i+j], full.Weight(i+j)); err != nil {
				t.Fatal(err)
			}
		}
		i += chunk
		prep, err = PrepareLogFromContext(ctx, prep, next)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	if got, want := prep.Log().Size(), full.Size(); got != want {
		t.Fatalf("segmented reassembly lost queries: %d != %d", got, want)
	}
	return prep
}

// diffSolutionMismatch describes how a and b differ, or "" when bit-identical.
func diffSolutionMismatch(a, b Solution) string {
	if !a.Kept.Equal(b.Kept) {
		return fmt.Sprintf("kept %v vs %v", a.Kept, b.Kept)
	}
	if a.Satisfied != b.Satisfied {
		return fmt.Sprintf("satisfied %d vs %d", a.Satisfied, b.Satisfied)
	}
	return ""
}

func TestDifferentialRawCompactedSegmented(t *testing.T) {
	instances := 1000
	if testing.Short() {
		instances = 150
	}
	solvers := weightedDiffSolvers()
	kinds := map[string]int{}
	for i := 0; i < instances; i++ {
		di := genDiffInstance(i)
		kinds[di.kind]++
		r := rand.New(rand.NewSource(int64(i)*104729 + 7))

		compacted, st := compact.Compact(di.raw)
		if st.InputWeight != st.OutputWeight {
			t.Fatalf("inst %d: compaction changed total weight %d → %d", i, st.InputWeight, st.OutputWeight)
		}
		segRaw := buildSegPrepRandomized(t, r, di.raw)
		segCompacted := buildSegPrepRandomized(t, r, compacted)

		for _, s := range solvers {
			rawSol, err := s.Solve(Instance{Log: di.raw, Tuple: di.tuple, M: di.m})
			if err != nil {
				t.Fatalf("inst %d (%s) %s raw: %v", i, di.kind, s.Name(), err)
			}
			compSol, err := s.Solve(Instance{Log: compacted, Tuple: di.tuple, M: di.m})
			if err != nil {
				t.Fatalf("inst %d (%s) %s compacted: %v", i, di.kind, s.Name(), err)
			}
			segSol, err := segRaw.Solve(s, di.tuple, di.m)
			if err != nil {
				t.Fatalf("inst %d (%s) %s segmented: %v", i, di.kind, s.Name(), err)
			}
			segCompSol, err := segCompacted.Solve(s, di.tuple, di.m)
			if err != nil {
				t.Fatalf("inst %d (%s) %s segmented-compacted: %v", i, di.kind, s.Name(), err)
			}
			if d := diffSolutionMismatch(rawSol, compSol); d != "" {
				t.Fatalf("inst %d (%s) %s: raw vs compacted differ: %s", i, di.kind, s.Name(), d)
			}
			if d := diffSolutionMismatch(rawSol, segSol); d != "" {
				t.Fatalf("inst %d (%s) %s: raw vs segmented differ (%d segs): %s",
					i, di.kind, s.Name(), segRaw.Segments(), d)
			}
			if d := diffSolutionMismatch(rawSol, segCompSol); d != "" {
				t.Fatalf("inst %d (%s) %s: raw vs segmented-compacted differ (%d segs): %s",
					i, di.kind, s.Name(), segCompacted.Segments(), d)
			}
			// Recount independently of every solver and representation: the
			// reported count must hold over the raw unit-weight log too.
			if got := di.raw.Satisfied(rawSol.Kept); got != rawSol.Satisfied {
				t.Fatalf("inst %d (%s) %s: reported %d, raw recount %d", i, di.kind, s.Name(), rawSol.Satisfied, got)
			}
		}
	}
	t.Logf("%d instances: %v", instances, kinds)
}
