package core

import (
	"context"
	"fmt"
	"sort"

	"standout/internal/bitvec"
	"standout/internal/obsv"
)

// The three greedy heuristics of §IV.D. None is guaranteed optimal; the
// paper's evaluation (and ours, Figs 7/9) shows ConsumeAttr and
// ConsumeAttrCumul are near-optimal in practice while ConsumeQueries is both
// slower and worse.

// ConsumeAttr selects the m attributes of the tuple with the highest
// individual frequencies in the query log.
type ConsumeAttr struct{}

// Name implements Solver.
func (ConsumeAttr) Name() string { return "ConsumeAttr-SOC-CB-QL" }

// Solve implements Solver.
func (s ConsumeAttr) Solve(in Instance) (Solution, error) {
	return s.SolveContext(context.Background(), in)
}

// SolveContext implements Solver. ConsumeAttr does a constant number of
// linear passes over the log, so a single up-front cancellation check is the
// only one needed.
func (s ConsumeAttr) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	obs := beginSolve(ctx, s.Name(), in)
	sol, err := s.solve(ctx, in, obs.tr)
	return obs.end(ctx, sol, err)
}

func (ConsumeAttr) solve(ctx context.Context, in Instance, tr *obsv.Trace) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, fmt.Errorf("core: consume-attr: %w", err)
	}
	n, err := normalize(ctx, in)
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		sol := n.full()
		sol.Optimal = true
		return sol, nil
	}
	// Per §IV.D the frequencies come from the full query log, not just the
	// queries the tuple can satisfy; an attached index has them precomputed.
	sp := tr.StartSpan("select")
	freq := n.fullFreq()
	picked := topByFreq(n.ones, freq, n.m)
	kept := n.keep(picked)
	sp.End()
	tr.Count("greedy.rescans", 1) // one frequency pass over the whole log
	return Solution{Kept: kept, Satisfied: n.score(kept)}, nil
}

// topByFreq returns the k attributes among candidates with the highest
// freq values, ties broken by lower attribute index.
func topByFreq(candidates []int, freq []int, k int) []int {
	sorted := append([]int(nil), candidates...)
	sort.SliceStable(sorted, func(a, b int) bool { return freq[sorted[a]] > freq[sorted[b]] })
	return sorted[:k]
}

// ConsumeAttrCumul is the cumulative variant: it starts from the attribute
// with the highest individual frequency and repeatedly adds the attribute
// co-occurring most frequently with everything selected so far (the number
// of log queries containing all selected attributes plus the candidate).
// When no remaining attribute co-occurs with the current selection, the
// remaining slots fall back to individual frequency order.
//
// The co-occurrence counts are maintained incrementally: one vertical bitmap
// per candidate attribute (the set of queries containing it) plus a running
// bitmap of the queries satisfied by the current selection. Scoring a
// candidate is then one AND-popcount over ⌈S/64⌉ words instead of cloning the
// selection and rescanning every query, taking a step from O(m·|t|·S)
// attribute-word operations with an allocation per candidate to
// O(m·|t|·S/64) with none.
type ConsumeAttrCumul struct{}

// Name implements Solver.
func (ConsumeAttrCumul) Name() string { return "ConsumeAttrCumul-SOC-CB-QL" }

// Solve implements Solver.
func (s ConsumeAttrCumul) Solve(in Instance) (Solution, error) {
	return s.SolveContext(context.Background(), in)
}

// SolveContext implements Solver. Cancellation is polled once per selection
// step; a step costs at most |t| AND-popcount passes over the query rowset.
func (s ConsumeAttrCumul) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	obs := beginSolve(ctx, s.Name(), in)
	sol, err := s.solve(ctx, in, obs.tr)
	return obs.end(ctx, sol, err)
}

func (ConsumeAttrCumul) solve(ctx context.Context, in Instance, tr *obsv.Trace) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, fmt.Errorf("core: consume-attr-cumul: %w", err)
	}
	n, err := normalize(ctx, in)
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		return n.full(), nil
	}
	freq := n.fullFreq()

	// Vertical bitmaps over the full log: cols[i] marks the queries that
	// contain candidate attribute n.ones[i] (§IV.D scores co-occurrence
	// against the whole log, like the individual frequencies). An attached
	// index already holds exactly these columns — in whichever representation
	// its density heuristic picked, which is why the rows are bitvec.Bits: a
	// compressed column scores in O(members), never materializing the dense
	// form. Without an index the columns are built densely in a single pass.
	nq := len(in.Log.Queries)
	words := (nq + 63) / 64
	cols := make([]bitvec.Bits, len(n.ones))
	colOf := make(map[int]int, len(n.ones)) // attribute index → cols row
	if len(n.segs) == 1 && n.segs[0].off == 0 {
		// A single segment at offset zero covers the whole log, so its columns
		// use global query ids and can be shared directly. Multi-segment preps
		// hold columns in segment-local ids; stitching them per candidate would
		// cost more than the dense rebuild below, so they take the else branch.
		for i, j := range n.ones {
			cols[i] = n.segs[0].idx.Column(j) // read-only shared storage
			colOf[j] = i
		}
	} else {
		backing := make([]uint64, len(n.ones)*words)
		dense := make([][]uint64, len(n.ones))
		for i, j := range n.ones {
			dense[i] = backing[i*words : (i+1)*words]
			colOf[j] = i
		}
		for qi, q := range in.Log.Queries {
			for _, j := range q.Ones() {
				if i, ok := colOf[j]; ok {
					dense[i][qi/64] |= 1 << (qi % 64)
				}
			}
		}
		for i := range dense {
			cols[i] = bitvec.FromWords(nq, dense[i])
		}
	}

	// satQ is the running set of queries containing every selected attribute;
	// scoring candidate j is the weight of satQ ∧ cols[j] — a plain popcount
	// dispatched on the column's representation when the log is unweighted,
	// a membership-filtered weight sum otherwise. Both agree with the
	// individual frequencies' units, so the tie-break against freq is
	// comparing like with like.
	satQ := bitvec.New(nq)
	countAnd := func(col bitvec.Bits) int { return satQ.AndCount(col) }
	if in.Log.Weights != nil {
		wts := in.Log.Weights
		countAnd = func(col bitvec.Bits) int {
			t := 0
			col.Range(func(qi int) bool {
				if satQ.Get(qi) {
					t += wts[qi]
				}
				return true
			})
			return t
		}
	}

	remaining := append([]int(nil), n.ones...)
	var picked []int

	pickBest := func(score func(j int) int) int {
		bestIdx, bestScore, bestFreq := -1, -1, -1
		for i, j := range remaining {
			s := score(j)
			if s > bestScore || (s == bestScore && freq[j] > bestFreq) {
				bestIdx, bestScore, bestFreq = i, s, freq[j]
			}
		}
		return bestIdx
	}

	sp := tr.StartSpan("select")
	rescans := 0
	for len(picked) < n.m {
		if err := pollCtx(ctx); err != nil {
			sp.End()
			return Solution{}, fmt.Errorf("core: consume-attr-cumul: %w", err)
		}
		rescans++ // each step rescans every remaining candidate attribute
		var idx int
		if len(picked) == 0 {
			idx = pickBest(func(j int) int { return freq[j] })
		} else {
			idx = pickBest(func(j int) int { return countAnd(cols[colOf[j]]) })
		}
		j := remaining[idx]
		picked = append(picked, j)
		col := cols[colOf[j]]
		if len(picked) == 1 {
			col.Range(func(qi int) bool { satQ.Set(qi); return true })
		} else {
			satQ.AndWith(col)
		}
		remaining = append(remaining[:idx], remaining[idx+1:]...)
	}
	sp.End()
	tr.Count("greedy.rescans", int64(rescans))

	kept := n.keep(picked)
	return Solution{Kept: kept, Satisfied: n.score(kept)}, nil
}

// ConsumeQueries greedily swallows whole queries: it repeatedly picks the
// satisfiable query introducing the fewest new attributes and retains those
// attributes, until m attributes are selected (the last query may be taken
// partially). §IV.D; the paper's evaluation shows it is generally a bad
// choice, which Figs 7–10 of our harness reproduce.
type ConsumeQueries struct{}

// Name implements Solver.
func (ConsumeQueries) Name() string { return "ConsumeQueries-SOC-CB-QL" }

// Solve implements Solver.
func (s ConsumeQueries) Solve(in Instance) (Solution, error) {
	return s.SolveContext(context.Background(), in)
}

// SolveContext implements Solver. Cancellation is polled once per consumed
// query; each iteration costs one pass over the restricted log.
func (s ConsumeQueries) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	obs := beginSolve(ctx, s.Name(), in)
	sol, err := s.solve(ctx, in, obs.tr)
	return obs.end(ctx, sol, err)
}

func (ConsumeQueries) solve(ctx context.Context, in Instance, tr *obsv.Trace) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, fmt.Errorf("core: consume-queries: %w", err)
	}
	n, err := normalize(ctx, in)
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		return n.full(), nil
	}

	selected := bitvec.New(in.Tuple.Width())
	count := 0
	used := make([]bool, n.log.Size())

	sp := tr.StartSpan("select")
	rescans := 0
	for count < n.m {
		if err := pollCtx(ctx); err != nil {
			sp.End()
			return Solution{}, fmt.Errorf("core: consume-queries: %w", err)
		}
		rescans++
		// Pass over the whole workload to find the query adding fewest new
		// attributes — this full rescan per iteration is what makes
		// ConsumeQueries the slowest greedy in Fig 10.
		bestQ, bestNew := -1, -1
		for qi, q := range n.log.Queries {
			if used[qi] {
				continue
			}
			nw := q.AndNot(selected).Count()
			if bestQ < 0 || nw < bestNew {
				bestQ, bestNew = qi, nw
			}
		}
		if bestQ < 0 {
			break // every satisfiable query already consumed
		}
		used[bestQ] = true
		for _, j := range n.log.Queries[bestQ].AndNot(selected).Ones() {
			if count >= n.m {
				break
			}
			selected.Set(j)
			count++
		}
	}
	sp.End()
	tr.Count("greedy.rescans", int64(rescans))

	// Left-over budget (fewer satisfiable queries than budget): fill with the
	// most frequent unselected tuple attributes, never hurting the solution.
	if count < n.m {
		freq := in.Log.AttrFrequencies()
		var rest []int
		for _, j := range n.ones {
			if !selected.Get(j) {
				rest = append(rest, j)
			}
		}
		for _, j := range topByFreq(rest, freq, min(n.m-count, len(rest))) {
			selected.Set(j)
		}
	}

	return Solution{Kept: selected, Satisfied: n.score(selected)}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
