package core

import (
	"sort"

	"standout/internal/bitvec"
)

// The three greedy heuristics of §IV.D. None is guaranteed optimal; the
// paper's evaluation (and ours, Figs 7/9) shows ConsumeAttr and
// ConsumeAttrCumul are near-optimal in practice while ConsumeQueries is both
// slower and worse.

// ConsumeAttr selects the m attributes of the tuple with the highest
// individual frequencies in the query log.
type ConsumeAttr struct{}

// Name implements Solver.
func (ConsumeAttr) Name() string { return "ConsumeAttr-SOC-CB-QL" }

// Solve implements Solver.
func (ConsumeAttr) Solve(in Instance) (Solution, error) {
	n, err := normalize(in)
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		sol := n.full()
		sol.Optimal = true
		return sol, nil
	}
	// Per §IV.D the frequencies come from the full query log, not just the
	// queries the tuple can satisfy.
	freq := in.Log.AttrFrequencies()
	picked := topByFreq(n.ones, freq, n.m)
	kept := n.keep(picked)
	return Solution{Kept: kept, Satisfied: n.score(kept)}, nil
}

// topByFreq returns the k attributes among candidates with the highest
// freq values, ties broken by lower attribute index.
func topByFreq(candidates []int, freq []int, k int) []int {
	sorted := append([]int(nil), candidates...)
	sort.SliceStable(sorted, func(a, b int) bool { return freq[sorted[a]] > freq[sorted[b]] })
	return sorted[:k]
}

// ConsumeAttrCumul is the cumulative variant: it starts from the attribute
// with the highest individual frequency and repeatedly adds the attribute
// co-occurring most frequently with everything selected so far (the number
// of log queries containing all selected attributes plus the candidate).
// When no remaining attribute co-occurs with the current selection, the
// remaining slots fall back to individual frequency order.
type ConsumeAttrCumul struct{}

// Name implements Solver.
func (ConsumeAttrCumul) Name() string { return "ConsumeAttrCumul-SOC-CB-QL" }

// Solve implements Solver.
func (ConsumeAttrCumul) Solve(in Instance) (Solution, error) {
	n, err := normalize(in)
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		return n.full(), nil
	}
	freq := in.Log.AttrFrequencies()

	selected := bitvec.New(in.Tuple.Width())
	remaining := append([]int(nil), n.ones...)
	var picked []int

	pickBest := func(score func(j int) int) int {
		bestIdx, bestScore, bestFreq := -1, -1, -1
		for i, j := range remaining {
			s := score(j)
			if s > bestScore || (s == bestScore && freq[j] > bestFreq) {
				bestIdx, bestScore, bestFreq = i, s, freq[j]
			}
		}
		return bestIdx
	}

	for len(picked) < n.m {
		var idx int
		if len(picked) == 0 {
			idx = pickBest(func(j int) int { return freq[j] })
		} else {
			idx = pickBest(func(j int) int {
				withJ := selected.Clone()
				withJ.Set(j)
				// Co-occurrence of the selected set with j across the log.
				count := 0
				for _, q := range in.Log.Queries {
					if withJ.SubsetOf(q) {
						count++
					}
				}
				return count
			})
		}
		j := remaining[idx]
		picked = append(picked, j)
		selected.Set(j)
		remaining = append(remaining[:idx], remaining[idx+1:]...)
	}

	kept := n.keep(picked)
	return Solution{Kept: kept, Satisfied: n.score(kept)}, nil
}

// ConsumeQueries greedily swallows whole queries: it repeatedly picks the
// satisfiable query introducing the fewest new attributes and retains those
// attributes, until m attributes are selected (the last query may be taken
// partially). §IV.D; the paper's evaluation shows it is generally a bad
// choice, which Figs 7–10 of our harness reproduce.
type ConsumeQueries struct{}

// Name implements Solver.
func (ConsumeQueries) Name() string { return "ConsumeQueries-SOC-CB-QL" }

// Solve implements Solver.
func (ConsumeQueries) Solve(in Instance) (Solution, error) {
	n, err := normalize(in)
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		return n.full(), nil
	}

	selected := bitvec.New(in.Tuple.Width())
	count := 0
	used := make([]bool, n.log.Size())

	for count < n.m {
		// Pass over the whole workload to find the query adding fewest new
		// attributes — this full rescan per iteration is what makes
		// ConsumeQueries the slowest greedy in Fig 10.
		bestQ, bestNew := -1, -1
		for qi, q := range n.log.Queries {
			if used[qi] {
				continue
			}
			nw := q.AndNot(selected).Count()
			if bestQ < 0 || nw < bestNew {
				bestQ, bestNew = qi, nw
			}
		}
		if bestQ < 0 {
			break // every satisfiable query already consumed
		}
		used[bestQ] = true
		for _, j := range n.log.Queries[bestQ].AndNot(selected).Ones() {
			if count >= n.m {
				break
			}
			selected.Set(j)
			count++
		}
	}

	// Left-over budget (fewer satisfiable queries than budget): fill with the
	// most frequent unselected tuple attributes, never hurting the solution.
	if count < n.m {
		freq := in.Log.AttrFrequencies()
		var rest []int
		for _, j := range n.ones {
			if !selected.Get(j) {
				rest = append(rest, j)
			}
		}
		for _, j := range topByFreq(rest, freq, min(n.m-count, len(rest))) {
			selected.Set(j)
		}
	}

	return Solution{Kept: selected, Satisfied: n.score(selected)}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
