// Package core implements the paper's primary contribution: algorithms for
// Problem SOC-CB-QL ("Stand Out in a Crowd — Conjunctive Boolean — Query
// Log", §II.A). Given a query log Q of conjunctive Boolean queries, a new
// tuple t, and a budget m, compute a compression t' of t retaining at most m
// attributes that maximizes the number of queries retrieving t'.
//
// Five solvers are provided, mirroring §IV:
//
//   - BruteForce        — exact, enumerates all C(|t|, m) compressions (§IV.A)
//   - ILP               — exact, the paper's integer linear program solved by
//     branch-and-bound over an LP relaxation (§IV.B)
//   - MaxFreqItemSets   — exact via maximal-frequent-itemset mining on the
//     complemented query log (§IV.C), with a random-walk
//     or exact-DFS mining backend and preprocessing
//   - ConsumeAttr       — greedy on attribute frequencies (§IV.D)
//   - ConsumeAttrCumul  — greedy on cumulative co-occurrence (§IV.D)
//   - ConsumeQueries    — greedy on cheapest-next-query (§IV.D)
//
// All satisfy the Solver interface; the exact ones return provably optimal
// solutions, the greedy ones return heuristic solutions quickly.
package core

import (
	"context"
	"errors"
	"fmt"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/index"
	"standout/internal/obsv"
)

// Instance is one SOC-CB-QL problem: choose at most M attributes of Tuple to
// retain so that the number of queries in Log retrieving the compressed
// tuple is maximized.
type Instance struct {
	Log   *dataset.QueryLog
	Tuple bitvec.Vector
	M     int
}

// Validate checks structural consistency.
func (in Instance) Validate() error {
	if in.Log == nil {
		return errors.New("core: instance has nil query log")
	}
	if err := in.Log.Validate(); err != nil {
		return err
	}
	if in.Tuple.Width() != in.Log.Width() {
		return fmt.Errorf("core: tuple width %d, query log width %d",
			in.Tuple.Width(), in.Log.Width())
	}
	if in.M < 0 {
		return fmt.Errorf("core: negative budget m=%d", in.M)
	}
	return nil
}

// Solution is a compressed tuple and its visibility.
type Solution struct {
	// Kept is the compressed tuple t' (a subset of the instance tuple with at
	// most m attributes).
	Kept bitvec.Vector
	// Satisfied is the number of log queries that retrieve Kept.
	Satisfied int
	// Optimal records whether the producing solver guarantees optimality.
	Optimal bool
	// Estimated reports that Satisfied is a certified point estimate from the
	// itemset+LP estimator (Estimate, DESIGN.md §16) rather than an exact
	// count; EstLo and EstHi then bound the exact count: EstLo ≤ exact ≤ EstHi.
	Estimated bool
	// EstLo and EstHi carry the certified interval when Estimated is set.
	EstLo, EstHi int
	// Stats carries solver-specific diagnostics.
	Stats Stats

	// trace is the obsv.Trace the producing solve ran under (the one attached
	// to its context via obsv.WithTrace), or nil.
	trace *obsv.Trace
}

// Trace returns the observability trace the producing solve recorded into,
// or nil when the solve ran without one. Solutions of one batch share the
// batch's trace.
func (s Solution) Trace() *obsv.Trace { return s.trace }

// Stats reports solver work; fields are zero when not applicable.
type Stats struct {
	Candidates int // compressions evaluated (brute force, MFI enumeration)
	Nodes      int // branch-and-bound nodes (ILP)
	MFIs       int // maximal frequent itemsets considered (MFI)
	Threshold  int // final support threshold used (MFI)
}

// Solver is the common interface of all SOC-CB-QL algorithms.
//
// Every solver in this package implements Solve as
// SolveContext(context.Background(), in), so the two methods always agree;
// third-party implementations should preserve that identity.
type Solver interface {
	// Name returns the paper's name for the algorithm, e.g. "ILP-SOC-CB-QL".
	Name() string
	// Solve computes a compression for the instance. Exact solvers return an
	// optimal Solution; greedy solvers a heuristic one.
	Solve(in Instance) (Solution, error)
	// SolveContext is Solve under a context: every potentially-unbounded
	// inner loop polls ctx, and when ctx is cancelled or its deadline expires
	// the solver stops promptly and returns an error satisfying errors.Is
	// against context.Canceled or context.DeadlineExceeded. With a background
	// context the result is identical to Solve's. Cancellation latency is
	// bounded by one polling interval — a few hundred candidate evaluations
	// at most, microseconds to low milliseconds of work.
	SolveContext(ctx context.Context, in Instance) (Solution, error)
}

// pollCtx reports a pending cancellation without blocking; solvers call it
// from their inner loops, typically every pollMask+1 iterations.
func pollCtx(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// pollMask throttles cancellation polls in hot enumeration loops: iterations
// whose counter&pollMask != 0 skip the check. 63 keeps the poll overhead
// unmeasurable while every loop body that scans a query log still checks at
// sub-millisecond granularity.
const pollMask = 63

// AttrNames renders the kept attributes of a solution against a schema,
// convenience for presenting results.
func (s Solution) AttrNames(schema *dataset.Schema) []string {
	return schema.Names(s.Kept)
}

// normalized holds the reduced form of an instance shared by all solvers:
// queries not contained in the tuple are dropped (no compression can ever
// satisfy them — the tuple itself cannot), and the effective budget is
// clamped to the tuple size.
//
// When the solve's context carries a PreparedLog for the instance's log (see
// WithPrepared and SolveBatchContext), normalize additionally attaches the
// shared attribute→query bitmap index: the restricted log is materialized
// from the index's candidate bitmap instead of a full scan, and score runs
// word-parallel over dropped-attribute columns instead of rescanning
// queries. Results are bit-identical either way — the differential sweep in
// differential_test.go pins that.
type normalized struct {
	in    Instance
	log   *dataset.QueryLog // queries ⊆ tuple
	ones  []int             // indices of the tuple's attributes
	m     int               // min(M, |tuple|)
	exact bool              // true when the whole tuple fits the budget

	segs    []segref // shared per-log index segments, or nil
	freq    []int    // weighted attribute frequencies (segs path only)
	dropbuf []int    // scoring workspace (segs path only)
}

// segref is one index segment of the attached PreparedLog with this solve's
// per-segment state: the candidate bitmap of the segment's queries contained
// in the tuple (in segment-local ids) and a scoring scratch.
type segref struct {
	idx     *index.Index
	off     int // global id of the segment's first query
	cand    bitvec.Bits
	scratch *index.Scratch
}

func normalize(ctx context.Context, in Instance) (normalized, error) {
	if err := in.Validate(); err != nil {
		return normalized{}, err
	}
	n := normalized{
		in:   in,
		ones: in.Tuple.Ones(),
		m:    in.M,
	}
	if p := preparedFromContext(ctx); p != nil && p.usableFor(in.Log) {
		seg := p.seg
		n.freq = seg.AttrFrequencies()
		n.segs = make([]segref, seg.Segments())
		n.dropbuf = make([]int, 0, len(n.ones))
		// Materialize the restricted log from the per-segment candidate sets.
		// Segments cover contiguous windows in log order and member iteration
		// is ascending, so walking them in order preserves global query order
		// — greedy tie-breaking matches the scan path exactly. CandidateSet
		// keeps each segment's candidates in whatever representation its size
		// bucket uses — compressed candidates stay compressed through every
		// subsequent score.
		restricted := dataset.NewQueryLog(in.Log.Schema)
		for si := range n.segs {
			ix, off := seg.Segment(si), seg.Offset(si)
			cand := ix.CandidateSet(in.Tuple)
			n.segs[si] = segref{idx: ix, off: off, cand: cand, scratch: ix.NewScratch()}
			cand.Range(func(qi int) bool {
				restricted.Queries = append(restricted.Queries, in.Log.Queries[off+qi])
				if in.Log.Weights != nil {
					restricted.Weights = append(restricted.Weights, in.Log.Weights[off+qi])
				}
				return true
			})
		}
		n.log = restricted
	} else {
		n.log = in.Log.Restrict(in.Tuple)
	}
	if n.m >= len(n.ones) {
		n.m = len(n.ones)
		n.exact = true
	}
	return n, nil
}

// shard returns a copy of n with independent scoring workspaces (per-segment
// scratch bitmaps and the drop buffer), for parallel enumeration: score
// mutates those buffers, so concurrent shards must not share them. Everything
// else — the restricted log, the indexes, the candidate bitmaps — is
// read-only after normalize and stays shared.
func (n normalized) shard() normalized {
	if n.segs != nil {
		segs := make([]segref, len(n.segs))
		copy(segs, n.segs)
		for i := range segs {
			segs[i].scratch = segs[i].idx.NewScratch()
		}
		n.segs = segs
		n.dropbuf = make([]int, 0, len(n.ones))
	}
	return n
}

// full returns the trivial solution that keeps the entire tuple.
func (n normalized) full() Solution {
	kept := n.in.Tuple.Clone()
	return Solution{Kept: kept, Satisfied: n.log.TotalWeight(), Optimal: true}
}

// score returns the total weight of queries satisfied by a candidate
// compression kept ⊆ tuple (the count, for unweighted logs). The sum over the
// restricted log equals the sum over the original log because dropped queries
// are unsatisfiable by any subset of the tuple. With an index attached the
// scoring runs word-parallel per segment — each segment's candidate bitmap
// minus the columns of the tuple attributes kept drops — and the per-segment
// sums add up exactly because every query lives in exactly one segment.
func (n normalized) score(kept bitvec.Vector) int {
	if n.segs != nil {
		drop := n.dropbuf[:0]
		for _, a := range n.ones {
			if !kept.Get(a) {
				drop = append(drop, a)
			}
		}
		total := 0
		for i := range n.segs {
			s := &n.segs[i]
			total += s.idx.SatisfiedDroppingBits(s.cand, drop, s.scratch)
		}
		return total
	}
	return n.log.Satisfied(kept)
}

// fullFreq returns per-attribute weighted frequencies over the whole
// (unrestricted) log — precomputed by the index when one is attached.
func (n normalized) fullFreq() []int {
	if n.segs != nil {
		return n.freq
	}
	return n.in.Log.AttrFrequencies()
}

// keep materializes a compression from a subset of tuple-attribute indices.
func (n normalized) keep(attrs []int) bitvec.Vector {
	return bitvec.FromIndices(n.in.Tuple.Width(), attrs...)
}
