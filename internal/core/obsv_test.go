package core

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/obsv"
)

// TestEverySolverPopulatesTrace is the acceptance test of the observability
// layer: every solver in the library's portfolio (including both mining
// backends and the IP form) records at least one phase span and at least one
// solver-specific counter into a context-attached trace.
func TestEverySolverPopulatesTrace(t *testing.T) {
	cases := []struct {
		name    string
		solver  Solver
		phase   string // a span name the solver must aggregate
		counter string // a solver-specific counter it must touch
	}{
		{"BruteForce", BruteForce{}, "enumerate", "bruteforce.candidates"},
		{"IP", IP{}, "branch_bound", "ip.nodes"},
		{"ILP", ILP{}, "branch_bound", "ilp.nodes"},
		{"MFI-dfs", MaxFreqItemSets{Backend: BackendExactDFS}, "mine", "itemsets.dfs_nodes"},
		{"MFI-walk", MaxFreqItemSets{Backend: BackendTwoPhaseWalk}, "mine", "itemsets.walks"},
		{"MFI-bottom", MaxFreqItemSets{Backend: BackendBottomUpWalk}, "enumerate", "mfi.rounds"},
		{"ConsumeAttr", ConsumeAttr{}, "select", "greedy.rescans"},
		{"ConsumeAttrCumul", ConsumeAttrCumul{}, "select", "greedy.rescans"},
		{"ConsumeQueries", ConsumeQueries{}, "select", "greedy.rescans"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := example1(t)
			tr := obsv.NewTrace()
			ctx := obsv.WithTrace(context.Background(), tr)
			sol, err := tc.solver.SolveContext(ctx, in)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Trace() != tr {
				t.Fatal("Solution.Trace() does not return the context trace")
			}
			sum := tr.Snapshot()
			phases := map[string]bool{}
			for _, p := range sum.Phases {
				phases[p.Name] = true
			}
			if !phases["solve"] {
				t.Errorf("missing common %q span; phases: %v", "solve", sum.Phases)
			}
			if !phases[tc.phase] {
				t.Errorf("missing phase span %q; phases: %v", tc.phase, sum.Phases)
			}
			if _, ok := sum.Counters[tc.counter]; !ok {
				t.Errorf("missing counter %q; counters: %v", tc.counter, sum.Counters)
			}
		})
	}
}

// The ILP drives the lp package; its trace must include simplex-level
// counters, and with Presolve enabled also the presolve eliminations.
func TestILPTraceIncludesLPCounters(t *testing.T) {
	for _, presolve := range []bool{false, true} {
		in := example1(t)
		tr := obsv.NewTrace()
		ctx := obsv.WithTrace(context.Background(), tr)
		if _, err := (ILP{Presolve: presolve}).SolveContext(ctx, in); err != nil {
			t.Fatal(err)
		}
		sum := tr.Snapshot()
		if sum.Counters["lp.solves"] == 0 {
			t.Fatalf("presolve=%v: lp.solves not recorded: %v", presolve, sum.Counters)
		}
		if _, ok := sum.Counters["lp.pivots"]; !ok {
			t.Fatalf("presolve=%v: lp.pivots not recorded: %v", presolve, sum.Counters)
		}
		if presolve {
			if _, ok := sum.Counters["lp.presolve.fixed_vars"]; !ok {
				t.Fatalf("lp.presolve.fixed_vars not recorded: %v", sum.Counters)
			}
		}
		if sum.Counters["ilp.nodes_expanded"] == 0 {
			t.Fatalf("presolve=%v: ilp.nodes_expanded not recorded: %v", presolve, sum.Counters)
		}
	}
}

func TestPreparedSolveTraced(t *testing.T) {
	in := example1(t)
	prep, err := MaxFreqItemSets{Backend: BackendExactDFS}.Preprocess(in.Log)
	if err != nil {
		t.Fatal(err)
	}
	tr := obsv.NewTrace()
	ctx := obsv.WithTrace(context.Background(), tr)
	sol, err := prep.SolvePreparedContext(ctx, in.Tuple, in.M)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Trace() != tr {
		t.Fatal("prepared solve did not attach the trace")
	}
	if tr.Counter("mfi.rounds") == 0 {
		t.Fatalf("prepared solve recorded no mining rounds: %v", tr.Snapshot().Counters)
	}
}

func TestBatchTraceCounters(t *testing.T) {
	in := example1(t)
	tuples := []bitvec.Vector{in.Tuple, in.Tuple, in.Tuple}
	tr := obsv.NewTrace()
	ctx := obsv.WithTrace(context.Background(), tr)
	_, errs, err := SolveBatchContext(ctx, ConsumeAttr{}, in.Log, tuples, in.M, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("tuple %d: %v", i, e)
		}
	}
	sum := tr.Snapshot()
	if sum.Counters["batch.tuples"] != 3 || sum.Counters["batch.solved"] != 3 {
		t.Fatalf("batch counters: %v", sum.Counters)
	}
	if sum.Counters["batch.failed"] != 0 || sum.Counters["batch.skipped"] != 0 {
		t.Fatalf("batch counters: %v", sum.Counters)
	}
	if _, ok := sum.Counters["batch.queue_wait_ns"]; !ok {
		t.Fatalf("batch.queue_wait_ns missing: %v", sum.Counters)
	}
	phases := map[string]bool{}
	for _, p := range sum.Phases {
		phases[p.Name] = true
	}
	if !phases["batch"] || !phases["solve"] {
		t.Fatalf("batch phases: %v", sum.Phases)
	}
}

// TestNilTracePathAddsNoAllocations pins the cardinal obsv design rule at
// the solver level: the begin/end wrapper around every SolveContext performs
// zero heap allocations when the context carries no trace and no logger.
func TestNilTracePathAddsNoAllocations(t *testing.T) {
	in := example1(t)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		obs := beginSolve(ctx, "BruteForce-SOC-CB-QL", in)
		_, _ = obs.end(ctx, Solution{}, nil)
	})
	if allocs != 0 {
		t.Fatalf("untraced begin/end allocates %v per solve, want 0", allocs)
	}
}

func TestSlogEventsEmitted(t *testing.T) {
	in := example1(t)
	var buf bytes.Buffer
	lg := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ctx := obsv.WithLogger(context.Background(), lg)
	if _, err := (ConsumeAttr{}).SolveContext(ctx, in); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"solve.start", "solve.finish", "ConsumeAttr-SOC-CB-QL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := (ConsumeAttr{}).SolveContext(cctx, in); err == nil {
		t.Fatal("expected cancellation error")
	}
	if !strings.Contains(buf.String(), "solve.cancel") {
		t.Fatalf("log output missing solve.cancel:\n%s", buf.String())
	}

	buf.Reset()
	bad := in
	bad.M = -1
	if _, err := (ConsumeAttr{}).SolveContext(ctx, bad); err == nil {
		t.Fatal("expected validation error")
	}
	if !strings.Contains(buf.String(), "solve.error") {
		t.Fatalf("log output missing solve.error:\n%s", buf.String())
	}
}

func TestSolveMetricsRegistered(t *testing.T) {
	in := example1(t)
	before := mSolves.Value()
	if _, err := (ConsumeAttr{}).Solve(in); err != nil {
		t.Fatal(err)
	}
	if mSolves.Value() != before+1 {
		t.Fatalf("standout_solves_total did not increment (%d -> %d)", before, mSolves.Value())
	}
	var sb strings.Builder
	if err := obsv.Default.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if err := obsv.LintProm(sb.String()); err != nil {
		t.Fatalf("default registry output fails lint: %v", err)
	}
	if !strings.Contains(sb.String(), "standout_solve_duration_seconds_bucket") {
		t.Fatalf("duration histogram missing:\n%s", sb.String())
	}
}
