package core

import (
	"context"
	"fmt"
	"sort"

	"standout/internal/bitvec"
	"standout/internal/obsv"
)

// IP is the exact algorithm for the paper's first, nonlinear integer-program
// formulation (§IV.B):
//
//	maximize  Σᵢ Πⱼ∈qᵢ xⱼ   subject to  Σⱼ xⱼ ≤ m,  xⱼ ∈ {0,1}
//
// The product objective cannot be handed to an LP-relaxation solver, so IP
// performs branch-and-bound directly on the attribute decisions:
//
//   - nodes keep or drop one attribute at a time (hottest attributes first);
//   - the bound counts the queries whose attributes are all kept-or-undecided
//     and whose undecided attributes fit in the remaining budget — the
//     tightest bound available without linearizing;
//   - partial assignments are themselves feasible, supplying incumbents at
//     every node.
//
// IP and ILP always return equally good compressions; the ILP's linearized
// relaxation usually prunes better on large logs (the reason the paper
// emphasizes the ILP form: "the integer linear formulation is particularly
// attractive"), which ablation A7 quantifies.
type IP struct{}

// Name implements Solver.
func (IP) Name() string { return "IP-SOC-CB-QL" }

// Solve implements Solver.
func (s IP) Solve(in Instance) (Solution, error) {
	return s.SolveContext(context.Background(), in)
}

// SolveContext implements Solver. The branch-and-bound recursion polls ctx
// every 256 nodes; each node costs two weighted log scans (evaluate + bound),
// so cancellation latency stays well under a millisecond per 10k queries.
func (s IP) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	obs := beginSolve(ctx, s.Name(), in)
	sol, err := s.solve(ctx, in, obs.tr)
	return obs.end(ctx, sol, err)
}

func (IP) solve(ctx context.Context, in Instance, tr *obsv.Trace) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, fmt.Errorf("core: ip: %w", err)
	}
	n, err := normalize(ctx, in)
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		return n.full(), nil
	}

	// Deduplicate queries; weights preserve the objective.
	log, weights := n.log.Dedup()

	// Branch order: attributes by descending weighted frequency.
	freq := make(map[int]int)
	for qi, q := range log.Queries {
		for _, j := range q.Ones() {
			freq[j] += weights[qi]
		}
	}
	order := append([]int(nil), n.ones...)
	sort.SliceStable(order, func(a, b int) bool { return freq[order[a]] > freq[order[b]] })

	kept := bitvec.New(in.Tuple.Width())
	dropped := bitvec.New(in.Tuple.Width())
	best := Solution{Optimal: true, Satisfied: -1}
	nodes, pruned := 0, 0

	evaluate := func() int {
		sat := 0
		for qi, q := range log.Queries {
			if q.SubsetOf(kept) {
				sat += weights[qi]
			}
		}
		return sat
	}
	bound := func(used int) int {
		remaining := n.m - used
		total := 0
		for qi, q := range log.Queries {
			if q.Intersects(dropped) {
				continue
			}
			if q.AndNot(kept).Count() <= remaining {
				total += weights[qi]
			}
		}
		return total
	}

	var ctxErr error
	var rec func(pos, used int)
	rec = func(pos, used int) {
		if ctxErr != nil {
			return
		}
		if nodes&255 == 0 {
			if ctxErr = pollCtx(ctx); ctxErr != nil {
				return
			}
		}
		nodes++
		if sat := evaluate(); sat > best.Satisfied {
			best.Kept = kept.Clone()
			best.Satisfied = sat
			tr.Event("ip.incumbent", int64(sat))
		}
		if pos == len(order) || used == n.m {
			return
		}
		if bound(used) <= best.Satisfied {
			pruned++
			return
		}
		j := order[pos]
		if used < n.m {
			kept.Set(j)
			rec(pos+1, used+1)
			kept.Clear(j)
		}
		dropped.Set(j)
		rec(pos+1, used)
		dropped.Clear(j)
	}
	sp := tr.StartSpan("branch_bound")
	rec(0, 0)
	sp.End()
	tr.Count("ip.nodes", int64(nodes))
	tr.Count("ip.pruned", int64(pruned))
	if ctxErr != nil {
		return Solution{}, fmt.Errorf("core: ip: %w", ctxErr)
	}

	if best.Satisfied < 0 { // empty attribute set
		best.Kept = kept.Clone()
		best.Satisfied = evaluate()
	}
	best.Stats = Stats{Nodes: nodes}
	return best, nil
}
