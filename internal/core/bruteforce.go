package core

import (
	"context"
	"fmt"

	"standout/internal/obsv"
)

// BruteForce is the optimal baseline of §IV.A: it enumerates every
// combination of m attributes of the new tuple and keeps the best. Its cost
// is C(|t|, m) query-log scans, which is only viable for small tuples; it is
// the ground truth against which every other solver is tested.
type BruteForce struct{}

// Name implements Solver.
func (BruteForce) Name() string { return "BruteForce-SOC-CB-QL" }

// Solve implements Solver.
func (b BruteForce) Solve(in Instance) (Solution, error) {
	return b.SolveContext(context.Background(), in)
}

// SolveContext implements Solver. The combination enumeration polls ctx every
// pollMask+1 evaluated candidates, so cancellation latency is bounded by 64
// log scans regardless of how large C(|t|, m) is.
func (s BruteForce) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	obs := beginSolve(ctx, s.Name(), in)
	sol, err := s.solve(ctx, in, obs.tr)
	return obs.end(ctx, sol, err)
}

func (BruteForce) solve(ctx context.Context, in Instance, tr *obsv.Trace) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, fmt.Errorf("core: brute force: %w", err)
	}
	n, err := normalize(ctx, in)
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		return n.full(), nil
	}

	best := Solution{Optimal: true}
	first := true
	comb := make([]int, n.m)
	attrs := make([]int, n.m)
	candidates := 0
	var ctxErr error

	// Enumerate m-combinations of n.ones in lexicographic order.
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if ctxErr != nil {
			return
		}
		if depth == n.m {
			if candidates&pollMask == 0 {
				if ctxErr = pollCtx(ctx); ctxErr != nil {
					return
				}
			}
			for i, idx := range comb {
				attrs[i] = n.ones[idx]
			}
			kept := n.keep(attrs)
			sat := n.score(kept)
			candidates++
			if first || sat > best.Satisfied {
				best.Kept = kept
				best.Satisfied = sat
				first = false
			}
			return
		}
		for i := start; i <= len(n.ones)-(n.m-depth); i++ {
			comb[depth] = i
			rec(i+1, depth+1)
		}
	}
	sp := tr.StartSpan("enumerate")
	rec(0, 0)
	sp.End()
	tr.Count("bruteforce.candidates", int64(candidates))
	if ctxErr != nil {
		return Solution{}, fmt.Errorf("core: brute force: %w", ctxErr)
	}

	if first { // m == 0: the empty compression is the only candidate
		kept := n.keep(nil)
		best.Kept = kept
		best.Satisfied = n.score(kept)
		candidates++
		tr.Count("bruteforce.candidates", 1)
	}
	best.Stats.Candidates = candidates
	return best, nil
}
