package core

// BruteForce is the optimal baseline of §IV.A: it enumerates every
// combination of m attributes of the new tuple and keeps the best. Its cost
// is C(|t|, m) query-log scans, which is only viable for small tuples; it is
// the ground truth against which every other solver is tested.
type BruteForce struct{}

// Name implements Solver.
func (BruteForce) Name() string { return "BruteForce-SOC-CB-QL" }

// Solve implements Solver.
func (BruteForce) Solve(in Instance) (Solution, error) {
	n, err := normalize(in)
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		return n.full(), nil
	}

	best := Solution{Optimal: true}
	first := true
	comb := make([]int, n.m)
	attrs := make([]int, n.m)
	candidates := 0

	// Enumerate m-combinations of n.ones in lexicographic order.
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == n.m {
			for i, idx := range comb {
				attrs[i] = n.ones[idx]
			}
			kept := n.keep(attrs)
			sat := n.score(kept)
			candidates++
			if first || sat > best.Satisfied {
				best.Kept = kept
				best.Satisfied = sat
				first = false
			}
			return
		}
		for i := start; i <= len(n.ones)-(n.m-depth); i++ {
			comb[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)

	if first { // m == 0: the empty compression is the only candidate
		kept := n.keep(nil)
		best.Kept = kept
		best.Satisfied = n.score(kept)
		candidates++
	}
	best.Stats.Candidates = candidates
	return best, nil
}
