package core

import (
	"context"
	"fmt"
	"sync"

	"standout/internal/obsv"
	"standout/internal/par"
)

// BruteForce is the optimal baseline of §IV.A: it enumerates every
// combination of m attributes of the new tuple and keeps the best. Its cost
// is C(|t|, m) query-log scans, which is only viable for small tuples; it is
// the ground truth against which every other solver is tested.
type BruteForce struct {
	// Workers parallelizes the enumeration by sharding the candidate space on
	// its leading combination elements; ≤ 1 (the zero value) enumerates
	// sequentially. Any worker count returns results bit-identical to the
	// sequential enumeration: shards are merged in lexicographic shard order
	// under the same strict-improvement rule the sequential loop uses, so the
	// winner is the first candidate in lexicographic order achieving the
	// maximum either way (DESIGN.md §11).
	Workers int
}

// Name implements Solver.
func (BruteForce) Name() string { return "BruteForce-SOC-CB-QL" }

// Solve implements Solver.
func (b BruteForce) Solve(in Instance) (Solution, error) {
	return b.SolveContext(context.Background(), in)
}

// SolveContext implements Solver. The combination enumeration polls ctx every
// pollMask+1 evaluated candidates, so cancellation latency is bounded by 64
// log scans regardless of how large C(|t|, m) is.
func (s BruteForce) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	obs := beginSolve(ctx, s.Name(), in)
	sol, err := s.solve(ctx, in, obs.tr)
	return obs.end(ctx, sol, err)
}

// bfShard enumerates the m-combinations of n.ones sharing one fixed
// lexicographic prefix (indices into n.ones), tracking the shard's
// first-maximum candidate.
type bfShard struct {
	prefix [2]int // comb[0] (and comb[1] when m ≥ 2), as indices into ones
	plen   int

	best       Solution
	found      bool
	candidates int
}

func (s BruteForce) solve(ctx context.Context, in Instance, tr *obsv.Trace) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, fmt.Errorf("core: brute force: %w", err)
	}
	n, err := normalize(ctx, in)
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		return n.full(), nil
	}
	if n.m == 0 {
		// The empty compression is the only candidate.
		kept := n.keep(nil)
		sol := Solution{Kept: kept, Satisfied: n.score(kept), Optimal: true}
		sol.Stats.Candidates = 1
		tr.Count("bruteforce.candidates", 1)
		return sol, nil
	}

	// Shard the combination space on its leading elements: one shard per
	// feasible comb[0] (m == 1) or (comb[0], comb[1]) pair (m ≥ 2). Shards
	// are generated — and later merged — in lexicographic order, which is
	// exactly the order the sequential recursion visits them.
	var shards []bfShard
	if s.Workers > 1 {
		if n.m == 1 {
			for i := 0; i <= len(n.ones)-1; i++ {
				shards = append(shards, bfShard{prefix: [2]int{i}, plen: 1})
			}
		} else {
			for i := 0; i <= len(n.ones)-n.m; i++ {
				for j := i + 1; j <= len(n.ones)-(n.m-1); j++ {
					shards = append(shards, bfShard{prefix: [2]int{i, j}, plen: 2})
				}
			}
		}
	}

	sp := tr.StartSpan("enumerate")
	var best Solution
	var candidates int
	if len(shards) < 2 {
		best, candidates, err = s.enumerate(ctx, n, bfShard{})
	} else {
		best, candidates, err = s.enumerateSharded(ctx, n, shards)
	}
	sp.End()
	tr.Count("bruteforce.candidates", int64(candidates))
	if err != nil {
		return Solution{}, fmt.Errorf("core: brute force: %w", err)
	}
	best.Optimal = true
	best.Stats.Candidates = candidates
	return best, nil
}

// enumerate walks the m-combinations of n.ones in lexicographic order —
// restricted to sh's prefix when sh.plen > 0 — and returns the first-maximum
// candidate plus the number of candidates scored. It owns its comb/attrs
// buffers and must be given a normalized with unshared scoring scratch when
// called concurrently (see normalized.shard).
func (BruteForce) enumerate(ctx context.Context, n normalized, sh bfShard) (Solution, int, error) {
	best := Solution{}
	first := true
	comb := make([]int, n.m)
	attrs := make([]int, n.m)
	candidates := 0
	var ctxErr error

	var rec func(start, depth int)
	rec = func(start, depth int) {
		if ctxErr != nil {
			return
		}
		if depth == n.m {
			if candidates&pollMask == 0 {
				if ctxErr = pollCtx(ctx); ctxErr != nil {
					return
				}
			}
			for i, idx := range comb {
				attrs[i] = n.ones[idx]
			}
			kept := n.keep(attrs)
			sat := n.score(kept)
			candidates++
			if first || sat > best.Satisfied {
				best.Kept = kept
				best.Satisfied = sat
				first = false
			}
			return
		}
		for i := start; i <= len(n.ones)-(n.m-depth); i++ {
			comb[depth] = i
			rec(i+1, depth+1)
		}
	}
	start := 0
	for d := 0; d < sh.plen; d++ {
		comb[d] = sh.prefix[d]
		start = sh.prefix[d] + 1
	}
	rec(start, sh.plen)
	if ctxErr != nil {
		return Solution{}, candidates, ctxErr
	}
	return best, candidates, nil
}

// enumerateSharded fans the prefix shards over internal/par workers, then
// folds the shard-local bests in lexicographic shard order with the same
// strict-improvement rule the sequential loop applies per candidate — an
// exact reconstruction of the sequential first-maximum winner.
func (s BruteForce) enumerateSharded(ctx context.Context, n normalized, shards []bfShard) (Solution, int, error) {
	workers := s.Workers
	if workers > len(shards) {
		workers = len(shards)
	}
	// Per-goroutine scoring scratch: normalized.score writes into shared
	// buffers on the indexed path, so each concurrent shard scores through
	// its own copy, pooled so a worker reuses one across its shards.
	scratch := sync.Pool{New: func() any {
		sc := n.shard()
		return &sc
	}}
	res := par.Run(ctx, len(shards), par.Options{Workers: workers}, func(ctx context.Context, i int) error {
		sh := &shards[i]
		sc := scratch.Get().(*normalized)
		defer scratch.Put(sc)
		best, cands, err := s.enumerate(ctx, *sc, *sh)
		if err != nil {
			return err
		}
		sh.best = best
		sh.found = true
		sh.candidates = cands
		return nil
	})
	if res.First != nil {
		return Solution{}, 0, res.First.Err
	}
	var best Solution
	first := true
	candidates := 0
	for _, sh := range shards {
		candidates += sh.candidates
		if !sh.found {
			continue
		}
		if first || sh.best.Satisfied > best.Satisfied {
			best = sh.best
			first = false
		}
	}
	return best, candidates, nil
}
