package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"standout/internal/bitvec"
)

// cumulNaive is the pre-optimization ConsumeAttrCumul, kept verbatim as a
// reference: per candidate it clones the selected set and rescans the entire
// log (O(m·|t|·S) with a fresh allocation per candidate). The rewritten
// solver must make byte-identical picks.
func cumulNaive(in Instance) (Solution, error) {
	n, err := normalize(context.Background(), in)
	if err != nil {
		return Solution{}, err
	}
	if n.exact {
		return n.full(), nil
	}
	freq := in.Log.AttrFrequencies()

	selected := bitvec.New(in.Tuple.Width())
	remaining := append([]int(nil), n.ones...)
	var picked []int

	pickBest := func(score func(j int) int) int {
		bestIdx, bestScore, bestFreq := -1, -1, -1
		for i, j := range remaining {
			s := score(j)
			if s > bestScore || (s == bestScore && freq[j] > bestFreq) {
				bestIdx, bestScore, bestFreq = i, s, freq[j]
			}
		}
		return bestIdx
	}

	for len(picked) < n.m {
		var idx int
		if len(picked) == 0 {
			idx = pickBest(func(j int) int { return freq[j] })
		} else {
			idx = pickBest(func(j int) int {
				withJ := selected.Clone()
				withJ.Set(j)
				count := 0
				for _, q := range in.Log.Queries {
					if withJ.SubsetOf(q) {
						count++
					}
				}
				return count
			})
		}
		j := remaining[idx]
		picked = append(picked, j)
		selected.Set(j)
		remaining = append(remaining[:idx], remaining[idx+1:]...)
	}

	kept := n.keep(picked)
	return Solution{Kept: kept, Satisfied: n.score(kept)}, nil
}

// TestConsumeAttrCumulMatchesNaive proves the incremental-bitset rewrite is a
// pure performance change: on seeded random instances it must return exactly
// the same solution (same attributes kept, same score, same tie-breaks) as
// the clone-and-rescan original.
func TestConsumeAttrCumulMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(905))
	for trial := 0; trial < 100; trial++ {
		in := randomInstance(r)
		want, err1 := cumulNaive(in)
		got, err2 := ConsumeAttrCumul{}.Solve(in)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: naive err=%v, rewritten err=%v", trial, err1, err2)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: naive=%+v, rewritten=%+v (instance m=%d tuple=%s, %d queries)",
				trial, want, got, in.M, in.Tuple, len(in.Log.Queries))
		}
	}
}
