package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"standout/internal/bitvec"
	"standout/internal/cache"
	"standout/internal/dataset"
	"standout/internal/estimate"
	"standout/internal/fault"
	"standout/internal/index"
	"standout/internal/obsv"
)

// ErrStalePrep reports that a PreparedLog's query log has visibly changed
// since PrepareLog (its version counter moved through Append or Touch, or
// its length differs). Errors returned by PreparedLog.SolveContext on a
// stale prep wrap it: test with errors.Is(err, ErrStalePrep), then rebuild
// with PrepareLog and retry.
var ErrStalePrep = errors.New("core: prepared log modified since PrepareLog")

// DefaultSolutionCacheSize bounds the per-PreparedLog solution memo when the
// caller does not choose a capacity. Solutions are small (one bit vector and
// a few ints), so a thousand entries cost well under a megabyte.
const DefaultSolutionCacheSize = 1024

// PreparedLog is the shared, concurrency-safe per-log solve state of the
// batch path: the inverted attribute→query bitmap index (package index), the
// log's content fingerprint, and a size-bounded LRU memoizing solutions for
// repeated (solver, tuple, m) triples. Build one with PrepareLog, then
// either attach it to a context with WithPrepared (every solver picks the
// index up transparently) or solve through SolveContext to also get
// memoization. SolveBatchContext builds one automatically per batch and
// shares it across its workers.
//
// A PreparedLog is tied to the exact log contents at PrepareLog time. The
// log must not be mutated while the PreparedLog is in use; mutations made
// through QueryLog.Append or announced with QueryLog.Touch are detected, and
// the two solve paths react differently:
//
//   - SolveContext (and Solve) refuses to use a stale prep and returns an
//     error wrapping ErrStalePrep. The caller decides the recovery — usually
//     rebuild with PrepareLog and retry, which is what the serving layer's
//     single-flight rebuild does.
//   - The WithPrepared context path (normalize picking the index up
//     transparently, including inside SolveBatchContext) silently ignores a
//     stale or mismatched prep and falls back to the direct scan: results
//     are identical, only slower, so a library solve never fails because an
//     accelerator aged out.
//
// In-place bit flips that bypass Touch are undetectable on either path.
//
// Internally the prepared state is a segmented index (index.Segmented): a
// full PrepareLog builds one base segment, and PrepareLogFrom extends a
// previous generation's index with a small delta segment over only the
// appended queries — O(append) work — followed by size-tiered compaction
// that keeps the segment count logarithmic. Solutions are bit-identical
// across any segment layout; the differential suite pins that.
type PreparedLog struct {
	log     *dataset.QueryLog
	seg     *index.Segmented
	fp      uint64
	version uint64
	nq      int
	delta   bool // built incrementally by PrepareLogFrom

	sols *cache.LRU[solutionKey, Solution]

	// Lazily built itemset-frequency model for the Estimate solver
	// (DESIGN.md §16). Guarded by estMu; built at most once per prep
	// generation, shared by every solve through this prep.
	estMu  sync.Mutex
	est    *estimate.Model
	estErr error
}

// solutionKey identifies one memoizable solve: the log contents (by
// fingerprint), the solver's configuration identity, and the instance.
type solutionKey struct {
	fp     uint64
	solver string
	m      int
	tuple  string
}

// PrepareLog validates the log and builds its shared index. The returned
// PreparedLog has solution memoization enabled at DefaultSolutionCacheSize;
// use SetSolutionCache to resize or disable it.
func PrepareLog(log *dataset.QueryLog) (*PreparedLog, error) {
	return PrepareLogContext(context.Background(), log)
}

// PrepareLogWith is PrepareLog under explicit index build options —
// typically to force a column representation (index.ForceDense /
// index.ForceCompressed) for measurement or testing. Solutions are
// bit-identical across modes; only memory and speed differ.
func PrepareLogWith(log *dataset.QueryLog, opts index.Options) (*PreparedLog, error) {
	return PrepareLogContextWith(context.Background(), log, opts)
}

// PrepareLogContext is PrepareLog under a context: the index build is
// recorded as an "index.build" span on the context's trace and counted in
// the process metrics. The build itself is not interruptible — it is one
// pass over the log, far below cancellation granularity.
func PrepareLogContext(ctx context.Context, log *dataset.QueryLog) (*PreparedLog, error) {
	return PrepareLogContextWith(ctx, log, index.Options{})
}

// PrepareLogContextWith is PrepareLogWith under a context.
func PrepareLogContextWith(ctx context.Context, log *dataset.QueryLog, opts index.Options) (*PreparedLog, error) {
	if err := fault.Hit(ctx, "core.prep.build"); err != nil {
		return nil, fmt.Errorf("core: prepare log: %w", err)
	}
	tr := obsv.FromContext(ctx)
	sp := tr.StartSpan("index.build")
	seg, err := index.BuildSegmented(log, opts)
	sp.End()
	if err != nil {
		return nil, err
	}
	mIndexBuilds.Add(1)
	tr.Count("index.queries", int64(seg.NumQueries()))
	return newPrepared(log, seg, false), nil
}

// newPrepared wraps a built segmented index into the shared solve state.
func newPrepared(log *dataset.QueryLog, seg *index.Segmented, delta bool) *PreparedLog {
	p := &PreparedLog{
		log:     log,
		seg:     seg,
		fp:      seg.Fingerprint(),
		version: seg.Version(),
		nq:      seg.NumQueries(),
		delta:   delta,
		sols:    cache.NewLRU[solutionKey, Solution](DefaultSolutionCacheSize),
	}
	p.sols.OnEvict = func(solutionKey, Solution) {
		mPrepCacheEvictions.Add(1)
		mCacheEvictions.Add(1)
	}
	p.sols.OnHit = func() { mCacheHits.Add(1) }
	p.sols.OnMiss = func() { mCacheMisses.Add(1) }
	return p
}

// PrepareLogFrom is PrepareLogFromContext with a background context.
func PrepareLogFrom(prev *PreparedLog, log *dataset.QueryLog) (*PreparedLog, error) {
	return PrepareLogFromContext(context.Background(), prev, log)
}

// PrepareLogFromContext prepares log reusing prev's index wherever lineage
// allows: when log provably extends the exact contents prev indexed
// (QueryLog.ExtendsFrom against prev's version/size snapshot), the previous
// segments are kept as-is and one delta segment is built over only the
// appended queries — O(append) instead of O(total) — then size-tiered
// compaction bounds the segment count. Any other history (nil prev, a Touch,
// a different log family) falls back to a full build. Solutions are
// bit-identical on every path.
//
// A failure during the compaction step (fault site "core.prep.compact") is
// absorbed, not returned: the delta-extended prep is valid without merging —
// compaction only re-tiers segments — so serving continues on the
// pre-compaction layout and the skip is counted in the process metrics.
func PrepareLogFromContext(ctx context.Context, prev *PreparedLog, log *dataset.QueryLog) (*PreparedLog, error) {
	if prev == nil || !log.ExtendsFrom(prev.log, prev.version, prev.nq) {
		var opts index.Options
		if prev != nil {
			opts.Mode = prev.seg.Mode()
		}
		return PrepareLogContextWith(ctx, log, opts)
	}
	if err := fault.Hit(ctx, "core.prep.build"); err != nil {
		return nil, fmt.Errorf("core: prepare log: %w", err)
	}
	tr := obsv.FromContext(ctx)
	sp := tr.StartSpan("index.delta")
	seg, err := prev.seg.Extend(log)
	sp.End()
	if err != nil {
		return nil, err
	}
	mDeltaBuilds.Add(1)
	tr.Count("index.delta.queries", int64(seg.NumQueries()-prev.nq))

	if ferr := fault.Hit(ctx, "core.prep.compact"); ferr != nil {
		// Injected (or simulated) compaction failure: serve from the unmerged
		// segments — exactness does not depend on the merge schedule.
		mCompactionsSkipped.Add(1)
		tr.Count("index.compaction.skipped", 1)
		return newPrepared(log, seg, true), nil
	}
	sp = tr.StartSpan("index.compact")
	merged, nmerged, err := seg.CompactTiered()
	sp.End()
	if err != nil {
		mCompactionsSkipped.Add(1)
		tr.Count("index.compaction.skipped", 1)
		return newPrepared(log, seg, true), nil
	}
	if nmerged > 0 {
		mCompactions.Add(1)
		tr.Count("index.compaction.segments", int64(nmerged))
	}
	return newPrepared(log, merged, true), nil
}

// Log returns the prepared query log.
func (p *PreparedLog) Log() *dataset.QueryLog { return p.log }

// Fingerprint returns the log's content hash at PrepareLog time.
func (p *PreparedLog) Fingerprint() uint64 { return p.fp }

// Segments returns the number of index segments backing this prep: 1 after a
// full PrepareLog, possibly more after incremental PrepareLogFrom builds.
func (p *PreparedLog) Segments() int { return p.seg.Segments() }

// Delta reports whether this prep was built incrementally by PrepareLogFrom
// (a delta extension of a previous generation) rather than by a full build.
func (p *PreparedLog) Delta() bool { return p.delta }

// Stale reports whether the log has visibly changed since PrepareLog (its
// version counter moved or its length differs). A stale PreparedLog must be
// rebuilt; SolveContext refuses to use one.
func (p *PreparedLog) Stale() bool {
	return p.log.Version() != p.version || p.log.Size() != p.nq
}

// usableFor reports whether the prepared state may serve instances over log:
// same log object, not stale.
func (p *PreparedLog) usableFor(log *dataset.QueryLog) bool {
	return p != nil && p.log == log && !p.Stale()
}

// EstimatorModel returns the prep's shared itemset-frequency model for the
// Estimate solver, building it on first use (single-flight under a mutex:
// concurrent first callers fold into one build). The model summarizes the
// exact log generation this prep indexed; staleness is the caller's business
// — SolveContext's staleness check happens before any solver runs, so the
// model a successful solve uses always matches the prep's snapshot. A
// context-cancellation failure is not sticky (the next caller rebuilds); any
// other build failure is recorded and returned to every later caller.
func (p *PreparedLog) EstimatorModel(ctx context.Context) (*estimate.Model, error) {
	p.estMu.Lock()
	defer p.estMu.Unlock()
	if p.est != nil {
		return p.est, nil
	}
	if p.estErr != nil {
		return nil, p.estErr
	}
	m, err := estimate.BuildContext(ctx, p.log, estimate.Options{})
	if err != nil {
		if ctx.Err() == nil {
			p.estErr = err
		}
		return nil, err
	}
	p.est = m
	return m, nil
}

// EstimatorModelReady returns the shared estimator model if one has already
// been built for this prep, else nil — a non-building probe for ladder and
// shed decisions that must not pay a mining pass.
func (p *PreparedLog) EstimatorModelReady() *estimate.Model {
	p.estMu.Lock()
	defer p.estMu.Unlock()
	return p.est
}

// SetSolutionCache bounds the solution memo to capacity entries; ≤ 0
// disables memoization (the index keeps working). Resizing down evicts
// oldest entries. Safe to call concurrently with solves.
func (p *PreparedLog) SetSolutionCache(capacity int) { p.sols.Resize(capacity) }

// CacheStats snapshots the solution memo's hit/miss/eviction counters.
func (p *PreparedLog) CacheStats() cache.Stats { return p.sols.Stats() }

// Solve is SolveContext with a background context.
func (p *PreparedLog) Solve(s Solver, tuple bitvec.Vector, m int) (Solution, error) {
	return p.SolveContext(context.Background(), s, tuple, m)
}

// SolveContext solves (log, tuple, m) with s through the shared state: the
// solver runs with the index attached, and — for solvers with a stable
// configuration identity (every solver in this package) — successful
// solutions are memoized so a repeated tuple returns without solving.
// Memoized hits return a defensive clone of the kept vector and re-stamp the
// current context's trace. Solvers of unknown concrete type are never
// memoized (their configuration cannot be keyed), only accelerated.
func (p *PreparedLog) SolveContext(ctx context.Context, s Solver, tuple bitvec.Vector, m int) (Solution, error) {
	if p.Stale() {
		return Solution{}, fmt.Errorf(
			"%w (version %d → %d, size %d → %d); re-prepare",
			ErrStalePrep, p.version, p.log.Version(), p.nq, p.log.Size())
	}
	// Chaos hook: an injected fault here simulates the log aging out between
	// the staleness check and the solve, the race a serving layer must absorb.
	if ferr := fault.Hit(ctx, "core.prep.stale"); ferr != nil {
		return Solution{}, fmt.Errorf("%w (injected: %v); re-prepare", ErrStalePrep, ferr)
	}
	ctx = withPrepared(ctx, p)
	tr := obsv.FromContext(ctx)

	id, cacheable := solverCacheID(s)
	var key solutionKey
	if cacheable {
		key = solutionKey{fp: p.fp, solver: id, m: m, tuple: tuple.Key()}
		if sol, ok := p.sols.Get(key); ok {
			mPrepCacheHits.Add(1)
			tr.Count("prep.cache.hit", 1)
			sol.Kept = sol.Kept.Clone()
			sol.trace = tr
			return sol, nil
		}
		mPrepCacheMisses.Add(1)
		tr.Count("prep.cache.miss", 1)
	}

	sol, err := s.SolveContext(ctx, Instance{Log: p.log, Tuple: tuple, M: m})
	if err == nil && cacheable {
		p.sols.Put(key, sol)
	}
	return sol, err
}

// solverCacheID maps a solver to a stable identity string covering its
// result-relevant configuration. Only solvers of this package's concrete
// types are keyable; unknown implementations report false and are never
// memoized. A MaxFreqItemSets with a caller-supplied RNG is also unkeyable:
// its walk results depend on external mutable state.
func solverCacheID(s Solver) (string, bool) {
	switch v := s.(type) {
	case BruteForce:
		return "brute", true
	case IP:
		return "ip", true
	case ILP:
		return fmt.Sprintf("ilp;timeout=%s;maxnodes=%d;presolve=%t", v.Timeout, v.MaxNodes, v.Presolve), true
	case ConsumeAttr:
		return "consume-attr", true
	case ConsumeAttrCumul:
		return "consume-attr-cumul", true
	case ConsumeQueries:
		return "consume-queries", true
	case MaxFreqItemSets:
		return mfiCacheID(v)
	case Estimate:
		if v.Model != nil {
			// An injected model's provenance is outside the (fingerprint,
			// solver, instance) key: never memoize.
			return "", false
		}
		return fmt.Sprintf("estimate;L=%d;sup=%d;k=%d;lp=%d,%g,%t",
			v.Opts.MaxItemset, v.Opts.MinSupport, v.Opts.MaxAtomAttrs,
			v.Opts.LP.MaxIters, v.Opts.LP.Tol, v.Opts.LP.Presolve), true
	case PreparedSolver:
		if v.Prep == nil {
			return "", false
		}
		id, ok := mfiCacheID(v.Prep.s)
		return "prepared;" + id, ok
	default:
		return "", false
	}
}

func mfiCacheID(v MaxFreqItemSets) (string, bool) {
	if v.Walk.Rng != nil {
		return "", false
	}
	return fmt.Sprintf("mfi;backend=%d;thr=%d;init=%d;seed=%d;walk=%d,%d,%d",
		v.Backend, v.Threshold, v.InitialThreshold, v.Seed,
		v.Walk.MaxIters, v.Walk.MinIters, v.Walk.MinConfirm), true
}

// Context plumbing. The prepared log rides the context so the whole solver
// stack — down to normalize — can pick up the shared index without changing
// the Solver interface.

type preparedCtxKey struct{}
type noPrepCtxKey struct{}

// withPrepared returns a context carrying p for the solvers underneath.
func withPrepared(ctx context.Context, p *PreparedLog) context.Context {
	return context.WithValue(ctx, preparedCtxKey{}, p)
}

// WithPrepared returns a context under which every solve of p's log uses
// the shared index (solves of other logs are unaffected). Unlike
// PreparedLog.SolveContext it does not memoize solutions.
func WithPrepared(ctx context.Context, p *PreparedLog) context.Context {
	return withPrepared(ctx, p)
}

// preparedFromContext returns the attached PreparedLog, or nil.
func preparedFromContext(ctx context.Context) *PreparedLog {
	p, _ := ctx.Value(preparedCtxKey{}).(*PreparedLog)
	return p
}

// PreparedFromContext returns the PreparedLog attached by WithPrepared (or
// built by SolveBatchContext), or nil.
func PreparedFromContext(ctx context.Context) *PreparedLog { return preparedFromContext(ctx) }

// WithoutPreparation returns a context under which SolveBatchContext skips
// its automatic index build and runs the direct scan path — the pre-index
// behavior, kept reachable for A/B measurement and differential testing. An
// explicitly attached PreparedLog (WithPrepared further down the chain)
// still wins.
func WithoutPreparation(ctx context.Context) context.Context {
	return context.WithValue(ctx, noPrepCtxKey{}, true)
}

func preparationDisabled(ctx context.Context) bool {
	disabled, _ := ctx.Value(noPrepCtxKey{}).(bool)
	return disabled
}
