// Package sim simulates a marketplace end to end to quantify the paper's
// closing caveat (§VIII): "a query log is only an approximate surrogate of
// real user preferences". A fixed buyer-preference model generates both the
// training query log the optimizer sees and a fresh test workload of future
// buyers; the gap between predicted visibility (on the log) and realized
// visibility (on the test workload) measures how well log-optimized
// attribute selection generalizes — and how fast the gap closes as the log
// grows.
package sim

import (
	"fmt"
	"math/rand"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/gen"
)

// BuyerModel is a stationary distribution over conjunctive buyer queries:
// query sizes follow SizeWeights and attributes are drawn with probability
// proportional to AttrWeights, without replacement.
type BuyerModel struct {
	Schema      *dataset.Schema
	AttrWeights []float64
	SizeWeights []float64
}

// NewCarBuyerModel derives a buyer model from a car inventory: attribute
// popularity follows the square of the option's market share (buyers ask for
// common options), sizes follow the paper's synthetic mixture.
func NewCarBuyerModel(tab *dataset.Table) *BuyerModel {
	freq := tab.AttrFrequencies()
	w := make([]float64, len(freq))
	for i, f := range freq {
		share := float64(f) / float64(tab.Size())
		w[i] = share*share + 0.01
	}
	return &BuyerModel{
		Schema:      tab.Schema,
		AttrWeights: w,
		SizeWeights: gen.PaperSizeMixture,
	}
}

// Sample draws n queries from the model.
func (m *BuyerModel) Sample(seed int64, n int) *dataset.QueryLog {
	return gen.SyntheticWorkload(m.Schema, seed, n, gen.WorkloadOptions{
		SizeWeights: m.SizeWeights,
		AttrWeights: m.AttrWeights,
	})
}

// ExpectedVisibility estimates, by Monte-Carlo with the given sample size,
// the probability that a random buyer query retrieves the compression.
func (m *BuyerModel) ExpectedVisibility(seed int64, kept bitvec.Vector, samples int) float64 {
	test := m.Sample(seed, samples)
	return float64(test.Satisfied(kept)) / float64(samples)
}

// Config controls one simulation run.
type Config struct {
	// TrainQueries is the size of the query log the optimizer sees.
	TrainQueries int
	// TestQueries is the size of the held-out future workload.
	TestQueries int
	// M is the compression budget.
	M int
	// Solver picks the attributes; nil means MaxFreqItemSets with the
	// paper's two-phase walk — whp-optimal and fast at any training size
	// (exact DFS mining is exponential on tuples with many options).
	Solver core.Solver
	// Seed drives all sampling.
	Seed int64
}

// Outcome reports predicted versus realized visibility for one run.
type Outcome struct {
	// Kept is the compression chosen on the training log.
	Kept bitvec.Vector
	// PredictedRate is satisfied/|train| on the training log.
	PredictedRate float64
	// RealizedRate is satisfied/|test| on the held-out workload.
	RealizedRate float64
	// NaiveRate is the realized rate of the naive first-m-attributes
	// baseline, for reference.
	NaiveRate float64
}

// Gap returns PredictedRate − RealizedRate: positive values mean the
// training log overstated future visibility (overfitting to the log).
func (o Outcome) Gap() float64 { return o.PredictedRate - o.RealizedRate }

// Run samples a training log, optimizes the tuple against it, and evaluates
// the choice on a fresh test workload from the same buyer model.
func Run(cfg Config, model *BuyerModel, tuple bitvec.Vector) (Outcome, error) {
	if cfg.TrainQueries <= 0 || cfg.TestQueries <= 0 {
		return Outcome{}, fmt.Errorf("sim: train and test sizes must be positive")
	}
	solver := cfg.Solver
	if solver == nil {
		solver = core.MaxFreqItemSets{Backend: core.BackendTwoPhaseWalk, Seed: cfg.Seed}
	}
	train := model.Sample(cfg.Seed, cfg.TrainQueries)
	test := model.Sample(cfg.Seed+1, cfg.TestQueries)

	sol, err := solver.Solve(core.Instance{Log: train, Tuple: tuple, M: cfg.M})
	if err != nil {
		return Outcome{}, fmt.Errorf("sim: %w", err)
	}

	naive := naiveCompression(tuple, cfg.M)
	return Outcome{
		Kept:          sol.Kept,
		PredictedRate: float64(sol.Satisfied) / float64(train.Size()),
		RealizedRate:  float64(test.Satisfied(sol.Kept)) / float64(test.Size()),
		NaiveRate:     float64(test.Satisfied(naive)) / float64(test.Size()),
	}, nil
}

// Sweep runs the simulation across training-log sizes, averaging each point
// over the given tuples; it reports the mean predicted/realized rates per
// size. This is the generalization experiment behind ablation A5.
func Sweep(cfg Config, model *BuyerModel, tuples []bitvec.Vector, sizes []int) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(sizes))
	for _, size := range sizes {
		var pred, real, naive float64
		for i, tuple := range tuples {
			c := cfg
			c.TrainQueries = size
			c.Seed = cfg.Seed + int64(i*len(sizes))
			o, err := Run(c, model, tuple)
			if err != nil {
				return nil, err
			}
			pred += o.PredictedRate
			real += o.RealizedRate
			naive += o.NaiveRate
		}
		n := float64(len(tuples))
		out = append(out, SweepPoint{
			TrainQueries: size,
			Predicted:    pred / n,
			Realized:     real / n,
			Naive:        naive / n,
		})
	}
	return out, nil
}

// SweepPoint is one training-size point of a generalization sweep.
type SweepPoint struct {
	TrainQueries int
	Predicted    float64
	Realized     float64
	Naive        float64
}

// naiveCompression keeps the first m attributes the tuple happens to have.
func naiveCompression(tuple bitvec.Vector, m int) bitvec.Vector {
	ones := tuple.Ones()
	if m > len(ones) {
		m = len(ones)
	}
	return bitvec.FromIndices(tuple.Width(), ones[:m]...)
}

// RandomModel builds an arbitrary buyer model for tests and experiments:
// Zipf-like attribute weights over a random permutation.
func RandomModel(schema *dataset.Schema, seed int64) *BuyerModel {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, schema.Width())
	perm := rng.Perm(schema.Width())
	for rank, attr := range perm {
		w[attr] = 1.0 / float64(rank+1)
	}
	return &BuyerModel{Schema: schema, AttrWeights: w, SizeWeights: gen.PaperSizeMixture}
}
