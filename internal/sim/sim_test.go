package sim

import (
	"math"
	"testing"

	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/gen"
)

func carModel(t *testing.T) (*BuyerModel, *dataset.Table) {
	t.Helper()
	tab := gen.Cars(1, 1500)
	return NewCarBuyerModel(tab), tab
}

func TestRunBasics(t *testing.T) {
	model, tab := carModel(t)
	tuple := gen.PickTuples(tab, 2, 1)[0]
	out, err := Run(Config{TrainQueries: 400, TestQueries: 2000, M: 5, Seed: 3}, model, tuple)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kept.Count() > 5 || !out.Kept.SubsetOf(tuple) {
		t.Fatalf("invalid compression %v", out.Kept)
	}
	for _, rate := range []float64{out.PredictedRate, out.RealizedRate, out.NaiveRate} {
		if rate < 0 || rate > 1 {
			t.Fatalf("rate %v out of [0,1]", rate)
		}
	}
}

func TestRunValidation(t *testing.T) {
	model, tab := carModel(t)
	tuple := tab.Rows[0]
	if _, err := Run(Config{TrainQueries: 0, TestQueries: 10, M: 3}, model, tuple); err == nil {
		t.Error("zero train size accepted")
	}
	if _, err := Run(Config{TrainQueries: 10, TestQueries: 0, M: 3}, model, tuple); err == nil {
		t.Error("zero test size accepted")
	}
}

func TestGeneralizationGapShrinksWithLogSize(t *testing.T) {
	// The paper's §VIII caveat, quantified: with a tiny log the optimizer
	// overfits (predicted ≫ realized); with a large log the gap closes.
	model, tab := carModel(t)
	tuples := gen.PickTuples(tab, 5, 8)
	points, err := Sweep(Config{TestQueries: 4000, M: 5, Seed: 11}, model, tuples,
		[]int{20, 200, 2000})
	if err != nil {
		t.Fatal(err)
	}
	small := math.Abs(points[0].Predicted - points[0].Realized)
	large := math.Abs(points[2].Predicted - points[2].Realized)
	if large >= small {
		t.Errorf("gap did not shrink: |gap(20)|=%.4f |gap(2000)|=%.4f", small, large)
	}
}

func TestOptimizerBeatsNaiveOutOfSample(t *testing.T) {
	model, tab := carModel(t)
	tuples := gen.PickTuples(tab, 7, 8)
	points, err := Sweep(Config{TestQueries: 3000, M: 5, Seed: 23}, model, tuples, []int{1000})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Realized <= points[0].Naive {
		t.Errorf("optimizer realized %.4f did not beat naive %.4f",
			points[0].Realized, points[0].Naive)
	}
}

func TestExpectedVisibilityConsistency(t *testing.T) {
	model, tab := carModel(t)
	tuple := gen.PickTuples(tab, 4, 1)[0]
	out, err := Run(Config{TrainQueries: 1500, TestQueries: 1500, M: 6, Seed: 31}, model, tuple)
	if err != nil {
		t.Fatal(err)
	}
	mc := model.ExpectedVisibility(97, out.Kept, 8000)
	if math.Abs(mc-out.RealizedRate) > 0.05 {
		t.Errorf("Monte-Carlo %.4f vs realized %.4f differ beyond sampling noise",
			mc, out.RealizedRate)
	}
}

func TestRandomModelShape(t *testing.T) {
	schema := dataset.GenericSchema(12)
	m := RandomModel(schema, 5)
	if len(m.AttrWeights) != 12 {
		t.Fatalf("weights=%d", len(m.AttrWeights))
	}
	log := m.Sample(1, 500)
	if log.Size() != 500 {
		t.Fatalf("size=%d", log.Size())
	}
	// Zipf weights: some attribute should clearly dominate.
	freq := log.AttrFrequencies()
	max, min := freq[0], freq[0]
	for _, f := range freq {
		if f > max {
			max = f
		}
		if f < min {
			min = f
		}
	}
	if max < 3*min+3 {
		t.Errorf("weights not skewed: max=%d min=%d", max, min)
	}
}

func TestRunWithExplicitSolver(t *testing.T) {
	model, tab := carModel(t)
	tuple := gen.PickTuples(tab, 8, 1)[0]
	cfg := Config{TrainQueries: 300, TestQueries: 300, M: 4, Seed: 7,
		Solver: core.ConsumeAttr{}}
	out, err := Run(cfg, model, tuple)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(Config{TrainQueries: 300, TestQueries: 300, M: 4, Seed: 7}, model, tuple)
	if err != nil {
		t.Fatal(err)
	}
	if out.PredictedRate > exact.PredictedRate+1e-12 {
		t.Error("greedy predicted rate beats exact on the same log")
	}
}

func TestOutcomeGap(t *testing.T) {
	o := Outcome{PredictedRate: 0.3, RealizedRate: 0.2}
	if math.Abs(o.Gap()-0.1) > 1e-12 {
		t.Errorf("Gap=%v", o.Gap())
	}
}
