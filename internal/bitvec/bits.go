package bitvec

// Bits is the representation-polymorphic bit-set interface shared by the
// dense Vector and the Roaring-style Compressed type. It covers exactly the
// operations the solver stack needs from a set of bit indices — cardinality,
// point access, containment, intersection/difference algebra (including the
// in-place forms the index's peel/SatisfiedDropping hot loop runs on),
// ordered iteration, fingerprinting, and cloning — so the inverted index can
// choose a representation per column without the solvers noticing.
//
// Aliasing and mutation contract (mirroring Vector's): implementations may
// share storage with the value they were derived from — Vector views over
// index-owned words and Column handles are read-only unless documented
// otherwise. The in-place operations (Set, AndWith, AndNotWith) mutate the
// receiver and must only be used on sets the caller owns (a CloneBits result,
// a scratch set); binary operands are never mutated. The pure operations
// (AndBits, AndNotBits) allocate a fresh set and never alias either operand.
//
// Two Bits of any representation are interchangeable when they hold the same
// width and members: Key returns the same canonical encoding and Hash64 the
// same value for equal sets regardless of representation, so representation
// never leaks into memo keys or fingerprints.
//
// All binary operations panic when the operand widths differ, like Vector's
// concrete algebra.
type Bits interface {
	// Width returns the number of addressable bits.
	Width() int
	// Count returns the number of set bits.
	Count() int
	// Get reports whether bit i is set. Panics if i is out of range.
	Get(i int) bool
	// Set sets bit i in place. Panics if i is out of range.
	Set(i int)
	// Ones returns the indices of all set bits in increasing order.
	Ones() []int
	// Range calls yield on each set bit in increasing order until yield
	// returns false. It never allocates.
	Range(yield func(i int) bool)
	// SubsetOfBits reports whether every set bit of the receiver is set in u.
	SubsetOfBits(u Bits) bool
	// AndBits returns the intersection as a fresh set of the receiver's
	// representation.
	AndBits(u Bits) Bits
	// AndNotBits returns the difference (receiver minus u) as a fresh set of
	// the receiver's representation.
	AndNotBits(u Bits) Bits
	// AndWith intersects in place and returns the resulting Count.
	AndWith(u Bits) int
	// AndNotWith removes u's bits in place and returns how many bits were
	// cleared — the form the index's peel loop uses to maintain a running
	// live count without rescanning the working set.
	AndNotWith(u Bits) int
	// AndCount returns the size of the intersection without allocating.
	AndCount(u Bits) int
	// Hash64 returns the same fingerprint Vector.Hash64 returns for the
	// equivalent dense vector.
	Hash64(seed uint64) uint64
	// Key returns the same canonical map key Vector.Key returns for the
	// equivalent dense vector.
	Key() string
	// CloneBits returns an independent, mutable copy.
	CloneBits() Bits
}

// Compile-time interface checks for both representations.
var (
	_ Bits = Vector{}
	_ Bits = (*Compressed)(nil)
)

// bitsWidthCheck panics when two Bits have different widths, matching the
// concrete Vector algebra's behavior.
func bitsWidthCheck(a, b Bits) {
	if a.Width() != b.Width() {
		panic(widthMismatch(a.Width(), b.Width()))
	}
}

// Vector's Bits implementation. Width, Count, Get, Set, Ones, Hash64 and Key
// are the concrete methods in bitvec.go; the methods below add the
// cross-representation algebra. Each type-switches on the operand so the
// dense×dense case stays the plain word loop and the dense×compressed case
// touches only the compressed operand's members.

// Range implements Bits.
func (v Vector) Range(yield func(i int) bool) {
	for wi, w := range v.words {
		for w != 0 {
			b := wi*wordBits + trailingZeros(w)
			if !yield(b) {
				return
			}
			w &= w - 1
		}
	}
}

// SubsetOfBits implements Bits.
func (v Vector) SubsetOfBits(u Bits) bool {
	switch u := u.(type) {
	case Vector:
		return v.SubsetOf(u)
	case *Compressed:
		bitsWidthCheck(v, u)
		ok := true
		wi := 0
		u.denseWords(func(w uint64) bool {
			if v.words[wi]&^w != 0 {
				ok = false
				return false
			}
			wi++
			return true
		})
		return ok
	default:
		bitsWidthCheck(v, u)
		ok := true
		v.Range(func(i int) bool {
			ok = u.Get(i)
			return ok
		})
		return ok
	}
}

// AndBits implements Bits.
func (v Vector) AndBits(u Bits) Bits {
	out := v.Clone()
	out.AndWith(u)
	return out
}

// AndNotBits implements Bits.
func (v Vector) AndNotBits(u Bits) Bits {
	out := v.Clone()
	out.AndNotWith(u)
	return out
}

// AndWith implements Bits: v ∩= u, returning the resulting Count.
func (v Vector) AndWith(u Bits) int {
	bitsWidthCheck(v, u)
	n := 0
	switch u := u.(type) {
	case Vector:
		for i := range v.words {
			v.words[i] &= u.words[i]
			n += onesCount(v.words[i])
		}
	case *Compressed:
		wi := 0
		u.denseWords(func(w uint64) bool {
			v.words[wi] &= w
			n += onesCount(v.words[wi])
			wi++
			return true
		})
	default:
		for wi, w := range v.words {
			for m := w; m != 0; m &= m - 1 {
				i := wi*wordBits + trailingZeros(m)
				if !u.Get(i) {
					v.words[wi] &^= 1 << (uint(i) % wordBits)
				}
			}
			n += onesCount(v.words[wi])
		}
	}
	return n
}

// AndNotWith implements Bits: v \= u, returning the number of bits cleared.
// The dense×compressed case touches only u's members — O(|u|) instead of
// O(width/64) — which is what makes peeling a sparse column cheap.
func (v Vector) AndNotWith(u Bits) int {
	bitsWidthCheck(v, u)
	switch u := u.(type) {
	case Vector:
		removed := 0
		for i := range v.words {
			old := v.words[i]
			v.words[i] = old &^ u.words[i]
			removed += onesCount(old &^ v.words[i])
		}
		return removed
	case *Compressed:
		return u.clearDense(v.words)
	default:
		removed := 0
		u.Range(func(i int) bool {
			w, bit := i/wordBits, uint64(1)<<(uint(i)%wordBits)
			if v.words[w]&bit != 0 {
				v.words[w] &^= bit
				removed++
			}
			return true
		})
		return removed
	}
}

// AndCount implements Bits.
func (v Vector) AndCount(u Bits) int {
	bitsWidthCheck(v, u)
	switch u := u.(type) {
	case Vector:
		return v.CountAnd(u)
	case *Compressed:
		return u.andCountDense(v.words)
	default:
		n := 0
		u.Range(func(i int) bool {
			if v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0 {
				n++
			}
			return true
		})
		return n
	}
}

// CloneBits implements Bits.
func (v Vector) CloneBits() Bits { return v.Clone() }
