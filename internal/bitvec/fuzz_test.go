package bitvec

import (
	"encoding/binary"
	"testing"
)

// vectorsFromFuzz decodes the fuzz input into a width and two vectors of
// that width. The first byte picks the width (1..128 — spanning the one-word
// and multi-word layouts); the rest is split between the two bit patterns.
func vectorsFromFuzz(data []byte) (Vector, Vector, bool) {
	if len(data) < 1 {
		return Vector{}, Vector{}, false
	}
	width := 1 + int(data[0])%128
	data = data[1:]
	build := func(bits []byte) Vector {
		v := New(width)
		for i := 0; i < width; i++ {
			if i/8 < len(bits) && bits[i/8]&(1<<(i%8)) != 0 {
				v.Set(i)
			}
		}
		return v
	}
	half := len(data) / 2
	return build(data[:half]), build(data[half:]), true
}

// FuzzVectorAlgebra checks the boolean-algebra identities the solvers lean
// on: complement round-trips, subset/domination consistency across the three
// ways the codebase tests containment (SubsetOf, Dominates, AndNot-empty),
// and the String parse/print round-trip.
func FuzzVectorAlgebra(f *testing.F) {
	f.Add([]byte{6, 0b101101, 0b110100})
	f.Add([]byte{64, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55})
	f.Add([]byte{128, 1, 2, 3, 4})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, u, ok := vectorsFromFuzz(data)
		if !ok {
			return
		}
		width := v.Width()

		// Complement round-trips.
		if !v.Not().Not().Equal(v) {
			t.Fatalf("double complement of %s is %s", v, v.Not().Not())
		}
		if n := v.And(v.Not()).Count(); n != 0 {
			t.Fatalf("v AND NOT v has %d ones", n)
		}
		if n := v.Or(v.Not()).Count(); n != width {
			t.Fatalf("v OR NOT v has %d ones, width %d", n, width)
		}
		if v.Count()+v.Not().Count() != width {
			t.Fatalf("|v| + |¬v| = %d + %d ≠ width %d", v.Count(), v.Not().Count(), width)
		}

		// The three containment formulations must agree.
		bySubset := v.SubsetOf(u)
		byDominates := u.Dominates(v)
		byAndNot := v.AndNot(u).Count() == 0
		if bySubset != byDominates || bySubset != byAndNot {
			t.Fatalf("containment disagrees for v=%s u=%s: SubsetOf=%t Dominates=%t AndNot=%t",
				v, u, bySubset, byDominates, byAndNot)
		}

		// Meet and join bracket both operands.
		meet, join := v.And(u), v.Or(u)
		if !meet.SubsetOf(v) || !meet.SubsetOf(u) {
			t.Fatalf("v AND u = %s not below both operands", meet)
		}
		if !v.SubsetOf(join) || !u.SubsetOf(join) {
			t.Fatalf("v OR u = %s not above both operands", join)
		}
		if meet.Count()+join.Count() != v.Count()+u.Count() {
			t.Fatalf("inclusion–exclusion broken: |meet|+|join| = %d+%d, |v|+|u| = %d+%d",
				meet.Count(), join.Count(), v.Count(), u.Count())
		}
		if got := v.CountAnd(u); got != meet.Count() {
			t.Fatalf("CountAnd = %d, And().Count() = %d", got, meet.Count())
		}

		// String round-trip: parse(print(v)) == v, and Key agrees with Equal.
		back, err := FromString(v.String())
		if err != nil {
			t.Fatalf("FromString(%q): %v", v.String(), err)
		}
		if !back.Equal(v) {
			t.Fatalf("round-trip %s -> %s", v, back)
		}
		if (v.Key() == u.Key()) != v.Equal(u) {
			t.Fatalf("Key equality disagrees with Equal for %s vs %s", v, u)
		}
	})
}

// FuzzCompressedAlgebra round-trips fuzzer-shaped sets between the dense and
// Roaring-style compressed representations and checks every cross-
// representation operation of the Bits interface against the dense word
// algebra. Widths span multiple 2¹⁶-bit chunks so array, bitmap and run
// containers (and their boundaries) are all reachable.
//
// Input layout: 3 bytes of width (1 .. ~200k), then alternating 3-byte
// big-endian indices assigned to v and u; an index's top bit picks a short
// run of consecutive bits instead of a single bit, steering the corpus
// toward run containers.
func FuzzCompressedAlgebra(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 0, 3, 0, 0, 9})
	f.Add([]byte{2, 0, 0, 0, 255, 255, 1, 0, 0, 0, 0, 64})
	f.Add([]byte{3, 4, 5, 128, 0, 100, 0, 200, 7, 128, 0, 101})
	f.Add([]byte{0, 0, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		width := 1 + int(binary.BigEndian.Uint32(append([]byte{0}, data[:3]...))%200000)
		data = data[3:]

		v, u := New(width), New(width)
		for n := 0; len(data) >= 3; n++ {
			raw := binary.BigEndian.Uint32(append([]byte{0}, data[:3]...))
			data = data[3:]
			run := 1
			if raw&0x800000 != 0 {
				run = 97 // spill across word boundaries
			}
			target := v
			if n%2 == 1 {
				target = u
			}
			start := int(raw & 0x7fffff)
			for j := 0; j < run; j++ {
				target.Set((start + j) % width)
			}
		}

		cv, cu := CompressedFrom(v), CompressedFrom(u)

		// Conversion round-trips exactly, including fingerprints.
		if !cv.Dense().Equal(v) {
			t.Fatalf("dense→compressed→dense changed the set (width %d)", width)
		}
		if cv.Count() != v.Count() || cv.Key() != v.Key() || cv.Hash64(7) != v.Hash64(7) {
			t.Fatalf("compressed fingerprints diverge from dense (width %d)", width)
		}

		// Cross-representation algebra against the dense oracle.
		wantAnd, wantNot := v.And(u), v.AndNot(u)
		for _, op := range []struct {
			name string
			a, b Bits
		}{
			{"comp/comp", cv, cu},
			{"comp/dense", cv, u},
			{"dense/comp", v, cu},
		} {
			if got := op.a.AndCount(op.b); got != wantAnd.Count() {
				t.Fatalf("%s AndCount = %d, want %d", op.name, got, wantAnd.Count())
			}
			if got := op.a.SubsetOfBits(op.b); got != v.SubsetOf(u) {
				t.Fatalf("%s SubsetOfBits = %t, want %t", op.name, got, v.SubsetOf(u))
			}
			diff := op.a.CloneBits()
			if removed := diff.AndNotWith(op.b); removed != v.Count()-wantNot.Count() {
				t.Fatalf("%s AndNotWith removed %d, want %d",
					op.name, removed, v.Count()-wantNot.Count())
			}
			if diff.Key() != wantNot.Key() {
				t.Fatalf("%s AndNotWith content diverges from dense AndNot", op.name)
			}
			meet := op.a.CloneBits()
			if n := meet.AndWith(op.b); n != wantAnd.Count() || meet.Key() != wantAnd.Key() {
				t.Fatalf("%s AndWith diverges from dense And", op.name)
			}
		}

		// Ones agrees across representations, and Get agrees on every member.
		co, vo := cv.Ones(), v.Ones()
		if len(co) != len(vo) {
			t.Fatalf("Ones length %d vs dense %d", len(co), len(vo))
		}
		for i := range co {
			if co[i] != vo[i] || !cv.Get(vo[i]) {
				t.Fatalf("member iteration diverges at %d", i)
			}
		}
	})
}
