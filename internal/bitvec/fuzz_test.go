package bitvec

import (
	"testing"
)

// vectorsFromFuzz decodes the fuzz input into a width and two vectors of
// that width. The first byte picks the width (1..128 — spanning the one-word
// and multi-word layouts); the rest is split between the two bit patterns.
func vectorsFromFuzz(data []byte) (Vector, Vector, bool) {
	if len(data) < 1 {
		return Vector{}, Vector{}, false
	}
	width := 1 + int(data[0])%128
	data = data[1:]
	build := func(bits []byte) Vector {
		v := New(width)
		for i := 0; i < width; i++ {
			if i/8 < len(bits) && bits[i/8]&(1<<(i%8)) != 0 {
				v.Set(i)
			}
		}
		return v
	}
	half := len(data) / 2
	return build(data[:half]), build(data[half:]), true
}

// FuzzVectorAlgebra checks the boolean-algebra identities the solvers lean
// on: complement round-trips, subset/domination consistency across the three
// ways the codebase tests containment (SubsetOf, Dominates, AndNot-empty),
// and the String parse/print round-trip.
func FuzzVectorAlgebra(f *testing.F) {
	f.Add([]byte{6, 0b101101, 0b110100})
	f.Add([]byte{64, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55})
	f.Add([]byte{128, 1, 2, 3, 4})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, u, ok := vectorsFromFuzz(data)
		if !ok {
			return
		}
		width := v.Width()

		// Complement round-trips.
		if !v.Not().Not().Equal(v) {
			t.Fatalf("double complement of %s is %s", v, v.Not().Not())
		}
		if n := v.And(v.Not()).Count(); n != 0 {
			t.Fatalf("v AND NOT v has %d ones", n)
		}
		if n := v.Or(v.Not()).Count(); n != width {
			t.Fatalf("v OR NOT v has %d ones, width %d", n, width)
		}
		if v.Count()+v.Not().Count() != width {
			t.Fatalf("|v| + |¬v| = %d + %d ≠ width %d", v.Count(), v.Not().Count(), width)
		}

		// The three containment formulations must agree.
		bySubset := v.SubsetOf(u)
		byDominates := u.Dominates(v)
		byAndNot := v.AndNot(u).Count() == 0
		if bySubset != byDominates || bySubset != byAndNot {
			t.Fatalf("containment disagrees for v=%s u=%s: SubsetOf=%t Dominates=%t AndNot=%t",
				v, u, bySubset, byDominates, byAndNot)
		}

		// Meet and join bracket both operands.
		meet, join := v.And(u), v.Or(u)
		if !meet.SubsetOf(v) || !meet.SubsetOf(u) {
			t.Fatalf("v AND u = %s not below both operands", meet)
		}
		if !v.SubsetOf(join) || !u.SubsetOf(join) {
			t.Fatalf("v OR u = %s not above both operands", join)
		}
		if meet.Count()+join.Count() != v.Count()+u.Count() {
			t.Fatalf("inclusion–exclusion broken: |meet|+|join| = %d+%d, |v|+|u| = %d+%d",
				meet.Count(), join.Count(), v.Count(), u.Count())
		}
		if got := v.CountAnd(u); got != meet.Count() {
			t.Fatalf("CountAnd = %d, And().Count() = %d", got, meet.Count())
		}

		// String round-trip: parse(print(v)) == v, and Key agrees with Equal.
		back, err := FromString(v.String())
		if err != nil {
			t.Fatalf("FromString(%q): %v", v.String(), err)
		}
		if !back.Equal(v) {
			t.Fatalf("round-trip %s -> %s", v, back)
		}
		if (v.Key() == u.Key()) != v.Equal(u) {
			t.Fatalf("Key equality disagrees with Equal for %s vs %s", v, u)
		}
	})
}
