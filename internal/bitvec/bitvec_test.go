package bitvec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewIsEmpty(t *testing.T) {
	for _, width := range []int{0, 1, 63, 64, 65, 128, 200} {
		v := New(width)
		if v.Width() != width {
			t.Errorf("width %d: got Width()=%d", width, v.Width())
		}
		if v.Count() != 0 {
			t.Errorf("width %d: new vector has %d set bits", width, v.Count())
		}
		if got := v.Ones(); len(got) != 0 {
			t.Errorf("width %d: Ones()=%v, want empty", width, got)
		}
	}
}

func TestNewPanicsOnNegativeWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"Get negative", func() { New(10).Get(-1) }},
		{"Get beyond", func() { New(10).Get(10) }},
		{"Set beyond", func() { New(10).Set(10) }},
		{"Clear beyond", func() { New(10).Clear(11) }},
		{"And width mismatch", func() { New(10).And(New(11)) }},
		{"SubsetOf width mismatch", func() { New(10).SubsetOf(New(11)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.f()
		})
	}
}

func TestFromIndices(t *testing.T) {
	v := FromIndices(6, 0, 1, 3)
	if got, want := v.String(), "110100"; got != want {
		t.Errorf("String()=%q, want %q", got, want)
	}
	if got := v.Ones(); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Errorf("Ones()=%v", got)
	}
	if got := v.Zeros(); !reflect.DeepEqual(got, []int{2, 4, 5}) {
		t.Errorf("Zeros()=%v", got)
	}
}

func TestFromString(t *testing.T) {
	v, err := FromString("1 1 0 1 0 0")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(FromIndices(6, 0, 1, 3)) {
		t.Errorf("FromString mismatch: %v", v)
	}
	if _, err := FromString("10x"); err == nil {
		t.Error("FromString accepted invalid rune")
	}
	empty, err := FromString("")
	if err != nil || empty.Width() != 0 {
		t.Errorf("FromString(\"\") = %v, %v", empty, err)
	}
}

func TestFromBools(t *testing.T) {
	v := FromBools([]bool{true, false, true})
	if v.Width() != 3 || !v.Get(0) || v.Get(1) || !v.Get(2) {
		t.Errorf("FromBools wrong: %v", v)
	}
}

// TestPaperExample1 checks the subset/domination semantics against the worked
// example in Fig 1 of the paper.
func TestPaperExample1(t *testing.T) {
	// Attributes: AC, FourDoor, Turbo, PowerDoors, AutoTrans, PowerBrakes.
	tNew := FromIndices(6, 0, 1, 3, 4, 5) // new car t = [1,1,0,1,1,1]
	q1 := FromIndices(6, 0, 1)
	q2 := FromIndices(6, 0, 3)
	q3 := FromIndices(6, 1, 3)
	q4 := FromIndices(6, 3, 5)
	q5 := FromIndices(6, 2, 4)

	// Compression keeping AC, FourDoor, PowerDoors satisfies q1,q2,q3 only.
	tPrime := FromIndices(6, 0, 1, 3)
	wantSat := []bool{true, true, true, false, false}
	for i, q := range []Vector{q1, q2, q3, q4, q5} {
		if got := q.SubsetOf(tPrime); got != wantSat[i] {
			t.Errorf("q%d satisfied=%v, want %v", i+1, got, wantSat[i])
		}
	}
	if !tPrime.SubsetOf(tNew) {
		t.Error("compression must be a subset of the original tuple")
	}

	// SOC-CB-D part: t' = AC, FourDoor, PowerDoors, PowerBrakes dominates
	// t1, t4, t5, t6 of the database.
	db := []Vector{
		FromIndices(6, 1, 3),       // t1
		FromIndices(6, 1, 2),       // t2
		FromIndices(6, 0, 3, 4, 5), // t3
		FromIndices(6, 0, 1, 3, 5), // t4
		FromIndices(6, 0, 1),       // t5
		FromIndices(6, 1, 3),       // t6
		FromIndices(6, 2, 3),       // t7
	}
	tPrimeD := FromIndices(6, 0, 1, 3, 5)
	wantDom := []bool{true, false, false, true, true, true, false}
	for i, row := range db {
		if got := tPrimeD.Dominates(row); got != wantDom[i] {
			t.Errorf("t%d dominated=%v, want %v", i+1, got, wantDom[i])
		}
	}
}

func randVector(r *rand.Rand, width int) Vector {
	v := New(width)
	for i := 0; i < width; i++ {
		if r.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

// pair generates two random vectors of the same random width for quick checks.
type pair struct{ A, B Vector }

func (pair) Generate(r *rand.Rand, size int) reflect.Value {
	width := r.Intn(200)
	return reflect.ValueOf(pair{randVector(r, width), randVector(r, width)})
}

func TestQuickComplementInvolution(t *testing.T) {
	f := func(p pair) bool { return p.A.Not().Not().Equal(p.A) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickComplementCount(t *testing.T) {
	f := func(p pair) bool {
		return p.A.Count()+p.A.Not().Count() == p.A.Width()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	f := func(p pair) bool {
		left := p.A.And(p.B).Not()
		right := p.A.Not().Or(p.B.Not())
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetAntisymmetry(t *testing.T) {
	f := func(p pair) bool {
		if p.A.SubsetOf(p.B) && p.B.SubsetOf(p.A) {
			return p.A.Equal(p.B)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetComplementDuality(t *testing.T) {
	// A ⊆ B  ⇔  ~B ⊆ ~A — the identity the MFI reduction in §IV.C rests on.
	f := func(p pair) bool {
		return p.A.SubsetOf(p.B) == p.B.Not().SubsetOf(p.A.Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAndIsIntersection(t *testing.T) {
	f := func(p pair) bool {
		got := p.A.And(p.B)
		for i := 0; i < p.A.Width(); i++ {
			if got.Get(i) != (p.A.Get(i) && p.B.Get(i)) {
				return false
			}
		}
		return got.Count() == p.A.CountAnd(p.B)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOnesRoundTrip(t *testing.T) {
	f := func(p pair) bool {
		return FromIndices(p.A.Width(), p.A.Ones()...).Equal(p.A)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(p pair) bool {
		v, err := FromString(p.A.String())
		return err == nil && v.Equal(p.A)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyAgreesWithEqual(t *testing.T) {
	f := func(p pair) bool {
		return (p.A.Key() == p.B.Key()) == p.A.Equal(p.B)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAndNotDisjoint(t *testing.T) {
	f := func(p pair) bool {
		diff := p.A.AndNot(p.B)
		return !diff.Intersects(p.B) || diff.Count() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := FromIndices(10, 1, 2, 3)
	w := v.Clone()
	w.Set(9)
	if v.Get(9) {
		t.Error("Clone shares storage with original")
	}
	if !w.Get(1) {
		t.Error("Clone lost a bit")
	}
}

func TestEqualWidthMismatch(t *testing.T) {
	if New(10).Equal(New(11)) {
		t.Error("vectors of different widths compared equal")
	}
}

func TestIntersects(t *testing.T) {
	a := FromIndices(100, 3, 70)
	b := FromIndices(100, 70)
	c := FromIndices(100, 4)
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(c) {
		t.Error("a should not intersect c")
	}
}

func TestNotTrimsTailBits(t *testing.T) {
	// Complement of an empty 65-bit vector must have exactly 65 ones,
	// not 128 (i.e. padding bits in the last word must stay clear).
	v := New(65).Not()
	if v.Count() != 65 {
		t.Errorf("Not() of empty 65-bit vector has %d ones", v.Count())
	}
	ones := v.Ones()
	if ones[len(ones)-1] != 64 {
		t.Errorf("highest one = %d, want 64", ones[len(ones)-1])
	}
}

func BenchmarkSubsetOf(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randVector(r, 512)
	c := a.Or(randVector(r, 512))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.SubsetOf(c)
	}
}

func BenchmarkCountAnd(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randVector(r, 512)
	c := randVector(r, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.CountAnd(c)
	}
}
