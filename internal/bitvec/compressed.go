package bitvec

import (
	"fmt"
	"math/bits"
	"sort"
)

// Compressed is a Roaring-style compressed bit set (Chambi, Lemire et al.;
// see also Kaser & Lemire, "Compressed bitmap indexes: beyond unions and
// intersections"): the index space is partitioned into 2¹⁶-bit chunks and
// each non-empty chunk is stored in whichever of three container formats is
// smallest —
//
//   - array:  the sorted uint16 low bits of the members (≤ arrayMaxCard of
//     them, 2 bytes each) — the sparse workhorse;
//   - bitmap: a plain 1024-word dense bitmap (8 KiB) for busy chunks;
//   - run:    sorted (start, last) interval pairs for chunks whose members
//     cluster into few runs (e.g. an almost-full chunk).
//
// A Compressed of width M with n members costs O(n) memory instead of the
// dense Vector's O(M/64) words, and its set algebra visits only the stored
// members, which is what lets the inverted index scale to schemas with tens
// of thousands of attributes (DESIGN.md §12).
//
// Compressed is a pointer type: all methods are on *Compressed, the zero
// value of which is not usable — construct with NewCompressed,
// CompressedFrom, or CompressedFromIndices. Unlike Vector, copying the
// struct value is not supported; pass the pointer. Mutating methods (Set,
// Clear, AndWith, AndNotWith, CopyFrom, Optimize) keep containers in array
// or bitmap form — run containers are produced only by Optimize and are
// transparently expanded the moment a mutation needs them, so read-optimized
// index columns stay compact while scratch sets stay cheap to update.
//
// Compressed implements Bits; Key and Hash64 return exactly what the
// equivalent dense Vector returns, so equal sets are interchangeable across
// representations.
type Compressed struct {
	width int
	keys  []int       // sorted chunk numbers (bit index >> 16), one per container
	cs    []container // cs[i] holds the members of chunk keys[i]; never empty
}

const (
	chunkBits    = 1 << 16        // bit indices per chunk
	chunkWords   = chunkBits / 64 // dense words per full chunk (1024)
	arrayMaxCard = chunkBits / 16 // array containers hold at most 4096 members
	bitmapBytes  = chunkWords * 8 // container cost of a bitmap chunk
	containerFix = 48             // approximate per-container struct overhead
)

type ctype uint8

const (
	carray ctype = iota
	cbitmap
	cruns
)

// container holds one chunk's members. card is maintained by every
// operation; arr carries array elements or run pairs depending on typ.
type container struct {
	typ  ctype
	card int
	arr  []uint16 // carray: sorted members; cruns: (start, last) inclusive pairs
	bmp  []uint64 // cbitmap: chunkWords words
}

func onesCount(w uint64) int     { return bits.OnesCount64(w) }
func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }

func widthMismatch(a, b int) string {
	return fmt.Sprintf("bitvec: width mismatch %d vs %d", a, b)
}

// NewCompressed returns an empty compressed set of the given width.
// It panics if width is negative.
func NewCompressed(width int) *Compressed {
	if width < 0 {
		panic(fmt.Sprintf("bitvec: negative width %d", width))
	}
	return &Compressed{width: width}
}

// CompressedFrom converts a dense vector, choosing the smallest container
// format per chunk (Optimize is applied).
func CompressedFrom(v Vector) *Compressed {
	c := NewCompressed(v.width)
	for wi, w := range v.words {
		for w != 0 {
			c.Set(wi*wordBits + trailingZeros(w))
			w &= w - 1
		}
	}
	c.Optimize()
	return c
}

// CompressedFromIndices returns a compressed set of the given width with
// exactly the bits at the given indices set. It panics if any index is out
// of [0, width).
func CompressedFromIndices(width int, indices ...int) *Compressed {
	c := NewCompressed(width)
	for _, i := range indices {
		c.Set(i)
	}
	return c
}

// Width implements Bits.
func (c *Compressed) Width() int { return c.width }

// Count implements Bits.
func (c *Compressed) Count() int {
	n := 0
	for i := range c.cs {
		n += c.cs[i].card
	}
	return n
}

func (c *Compressed) check(i int) {
	if i < 0 || i >= c.width {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, c.width))
	}
}

// chunkOf returns the position of chunk key in c.keys and whether it exists.
func (c *Compressed) chunkOf(key int) (int, bool) {
	i := sort.SearchInts(c.keys, key)
	return i, i < len(c.keys) && c.keys[i] == key
}

// Get implements Bits.
func (c *Compressed) Get(i int) bool {
	c.check(i)
	ci, ok := c.chunkOf(i >> 16)
	return ok && c.cs[ci].has(uint16(i&0xffff))
}

// Set implements Bits.
func (c *Compressed) Set(i int) {
	c.check(i)
	key := i >> 16
	ci, ok := c.chunkOf(key)
	if !ok {
		c.keys = append(c.keys, 0)
		copy(c.keys[ci+1:], c.keys[ci:])
		c.keys[ci] = key
		c.cs = append(c.cs, container{})
		copy(c.cs[ci+1:], c.cs[ci:])
		c.cs[ci] = container{typ: carray}
	}
	c.cs[ci].set(uint16(i & 0xffff))
}

// Clear clears bit i in place. It panics if i is out of range.
func (c *Compressed) Clear(i int) {
	c.check(i)
	ci, ok := c.chunkOf(i >> 16)
	if !ok {
		return
	}
	c.cs[ci].clear(uint16(i & 0xffff))
	if c.cs[ci].card == 0 {
		c.removeChunk(ci)
	}
}

func (c *Compressed) removeChunk(ci int) {
	c.keys = append(c.keys[:ci], c.keys[ci+1:]...)
	c.cs = append(c.cs[:ci], c.cs[ci+1:]...)
}

// compact drops containers emptied by an in-place operation, swapping rather
// than overwriting so retired containers keep their buffers for reuse.
func (c *Compressed) compact() {
	j := 0
	for i := range c.cs {
		if c.cs[i].card > 0 {
			if i != j {
				c.keys[j] = c.keys[i]
				c.cs[j], c.cs[i] = c.cs[i], c.cs[j]
			}
			j++
		}
	}
	c.keys = c.keys[:j]
	c.cs = c.cs[:j]
}

// Ones implements Bits.
func (c *Compressed) Ones() []int {
	out := make([]int, 0, c.Count())
	c.Range(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Range implements Bits.
func (c *Compressed) Range(yield func(i int) bool) {
	for ci := range c.cs {
		if !c.cs[ci].iterate(c.keys[ci]<<16, yield) {
			return
		}
	}
}

// Clone returns an independent copy of c, preserving container formats.
func (c *Compressed) Clone() *Compressed {
	out := &Compressed{
		width: c.width,
		keys:  append([]int(nil), c.keys...),
		cs:    make([]container, len(c.cs)),
	}
	for i := range c.cs {
		src := &c.cs[i]
		dst := &out.cs[i]
		dst.typ, dst.card = src.typ, src.card
		dst.arr = append([]uint16(nil), src.arr...)
		if src.bmp != nil {
			dst.bmp = append([]uint64(nil), src.bmp...)
		}
	}
	return out
}

// CloneBits implements Bits.
func (c *Compressed) CloneBits() Bits { return c.Clone() }

// CopyFrom makes c an exact copy of u's member set, reusing c's existing
// container storage where capacity allows — after a warm-up copy the
// operation is allocation-free, which is what keeps the index's compressed
// scoring scratch out of the allocator. Run containers of u are expanded to
// array or bitmap form so the copy is cheap to mutate. Panics if widths
// differ.
func (c *Compressed) CopyFrom(u *Compressed) {
	if c.width != u.width {
		panic(widthMismatch(c.width, u.width))
	}
	n := len(u.cs)
	if cap(c.keys) < n {
		c.keys = append(c.keys[:cap(c.keys)], make([]int, n-cap(c.keys))...)
	}
	c.keys = c.keys[:n]
	if cap(c.cs) < n {
		grown := make([]container, n)
		copy(grown, c.cs[:cap(c.cs)])
		c.cs = grown
	}
	c.cs = c.cs[:n]
	copy(c.keys, u.keys)
	for i := range u.cs {
		c.cs[i].copyFrom(&u.cs[i])
	}
}

// Dense materializes the equivalent dense Vector.
func (c *Compressed) Dense() Vector {
	out := New(c.width)
	wi := 0
	c.denseWords(func(w uint64) bool {
		out.words[wi] = w
		wi++
		return true
	})
	return out
}

// denseWords yields every 64-bit word of the equivalent dense vector in
// order (exactly wordsFor(width) of them, zeros included) until yield
// returns false. The scratch chunk buffer lives on the stack.
func (c *Compressed) denseWords(yield func(w uint64) bool) {
	total := wordsFor(c.width)
	var buf [chunkWords]uint64
	wi := 0
	for ci := range c.cs {
		base := c.keys[ci] * chunkWords
		for ; wi < base; wi++ {
			if wi >= total || !yield(0) {
				return
			}
		}
		n := chunkWords
		if total-wi < n {
			n = total - wi
		}
		c.cs[ci].words(buf[:])
		for j := 0; j < n; j++ {
			if !yield(buf[j]) {
				return
			}
		}
		wi += n
	}
	for ; wi < total; wi++ {
		if !yield(0) {
			return
		}
	}
}

// SubsetOfBits implements Bits.
func (c *Compressed) SubsetOfBits(u Bits) bool {
	bitsWidthCheck(c, u)
	switch u := u.(type) {
	case Vector:
		for ci := range c.cs {
			if !c.cs[ci].subsetOfWords(chunkSlice(u.words, c.keys[ci])) {
				return false
			}
		}
		return true
	case *Compressed:
		for ci := range c.cs {
			uj, ok := u.chunkOf(c.keys[ci])
			if !ok || !c.cs[ci].subsetOfContainer(&u.cs[uj]) {
				return false
			}
		}
		return true
	default:
		ok := true
		c.Range(func(i int) bool {
			ok = u.Get(i)
			return ok
		})
		return ok
	}
}

// AndBits implements Bits.
func (c *Compressed) AndBits(u Bits) Bits {
	out := c.Clone()
	out.AndWith(u)
	return out
}

// AndNotBits implements Bits.
func (c *Compressed) AndNotBits(u Bits) Bits {
	out := c.Clone()
	out.AndNotWith(u)
	return out
}

// AndWith implements Bits: c ∩= u, returning the resulting Count. Only c's
// own containers are visited.
func (c *Compressed) AndWith(u Bits) int {
	bitsWidthCheck(c, u)
	switch u := u.(type) {
	case Vector:
		for ci := range c.cs {
			c.cs[ci].andWords(chunkSlice(u.words, c.keys[ci]))
		}
	case *Compressed:
		for ci := range c.cs {
			if uj, ok := u.chunkOf(c.keys[ci]); ok {
				c.cs[ci].andContainer(&u.cs[uj])
			} else {
				c.cs[ci].card = 0
			}
		}
	default:
		for ci := range c.cs {
			base := c.keys[ci] << 16
			c.cs[ci].filter(func(lo uint16) bool { return u.Get(base | int(lo)) })
		}
	}
	c.compact()
	return c.Count()
}

// AndNotWith implements Bits: c \= u, returning the number of bits cleared.
// Only c's own containers are visited, so peeling a scratch set that has
// already shrunk to a few members costs a few membership tests no matter how
// big the operand column is.
func (c *Compressed) AndNotWith(u Bits) int {
	bitsWidthCheck(c, u)
	before := c.Count()
	switch u := u.(type) {
	case Vector:
		for ci := range c.cs {
			c.cs[ci].andNotWords(chunkSlice(u.words, c.keys[ci]))
		}
	case *Compressed:
		for ci := range c.cs {
			if uj, ok := u.chunkOf(c.keys[ci]); ok {
				c.cs[ci].andNotContainer(&u.cs[uj])
			}
		}
	default:
		for ci := range c.cs {
			base := c.keys[ci] << 16
			c.cs[ci].filter(func(lo uint16) bool { return !u.Get(base | int(lo)) })
		}
	}
	c.compact()
	return before - c.Count()
}

// AndCount implements Bits.
func (c *Compressed) AndCount(u Bits) int {
	bitsWidthCheck(c, u)
	n := 0
	switch u := u.(type) {
	case Vector:
		for ci := range c.cs {
			n += c.cs[ci].andCountWords(chunkSlice(u.words, c.keys[ci]))
		}
	case *Compressed:
		for ci := range c.cs {
			if uj, ok := u.chunkOf(c.keys[ci]); ok {
				n += c.cs[ci].andCountContainer(&u.cs[uj])
			}
		}
	default:
		c.Range(func(i int) bool {
			if u.Get(i) {
				n++
			}
			return true
		})
	}
	return n
}

// clearDense removes c's members from the dense word slice (the receiver
// side of Vector.AndNotWith against a compressed operand), returning how
// many bits were actually cleared. O(|c|), not O(len(words)).
func (c *Compressed) clearDense(words []uint64) int {
	removed := 0
	for ci := range c.cs {
		ws := chunkSlice(words, c.keys[ci])
		removed += c.cs[ci].clearFromWords(ws)
	}
	return removed
}

// andCountDense counts c's members present in the dense word slice.
func (c *Compressed) andCountDense(words []uint64) int {
	n := 0
	for ci := range c.cs {
		n += c.cs[ci].andCountWords(chunkSlice(words, c.keys[ci]))
	}
	return n
}

// Hash64 implements Bits; the result equals Vector.Hash64 on the equivalent
// dense vector.
func (c *Compressed) Hash64(seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := seed ^ offset
	h = (h ^ uint64(c.width)) * prime
	c.denseWords(func(w uint64) bool {
		h = (h ^ w) * prime
		return true
	})
	return h
}

// Key implements Bits; the result equals Vector.Key on the equivalent dense
// vector (see Vector.Key for the encoding), so memo keys never depend on
// representation. Note the key is dense-sized — O(width/8) bytes — and meant
// for the narrow tuples the solution memo stores, not for fingerprinting
// wide scratch sets (use Hash64 there).
func (c *Compressed) Key() string {
	buf := make([]byte, 0, 8*wordsFor(c.width)+4)
	buf = append(buf,
		byte(c.width), byte(c.width>>8), byte(c.width>>16), byte(c.width>>24))
	c.denseWords(func(w uint64) bool {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>uint(s)))
		}
		return true
	})
	return string(buf)
}

// SizeBytes estimates the heap footprint of the set: container payloads plus
// a fixed per-container overhead for the header and chunk key. It is the
// quantity the density heuristic in package index minimizes.
func (c *Compressed) SizeBytes() int {
	n := 0
	for i := range c.cs {
		switch c.cs[i].typ {
		case cbitmap:
			n += bitmapBytes
		default:
			n += 2 * len(c.cs[i].arr)
		}
		n += containerFix
	}
	return n
}

// Optimize converts every container to its smallest format: array versus
// bitmap by cardinality, and run encoding when the members cluster into few
// enough intervals that (start, last) pairs beat both. Mutating operations
// undo run encoding on demand, so Optimize is typically called once after a
// set reaches its final read-mostly state (index Build does).
func (c *Compressed) Optimize() {
	for i := range c.cs {
		c.cs[i].optimize()
	}
}

// chunkSlice returns the dense words of chunk key within words — possibly
// short (the final chunk of a width that is not a multiple of 2¹⁶) or empty.
func chunkSlice(words []uint64, key int) []uint64 {
	lo := key * chunkWords
	if lo >= len(words) {
		return nil
	}
	hi := lo + chunkWords
	if hi > len(words) {
		hi = len(words)
	}
	return words[lo:hi]
}

// wordBit tests bit lo of a chunk-local dense word slice; bits beyond the
// slice are absent.
func wordBit(words []uint64, lo uint16) bool {
	wi := int(lo) >> 6
	return wi < len(words) && words[wi]&(1<<(lo&63)) != 0
}

// Container operations. Mutating receivers are always array or bitmap
// (makeMutable expands runs first); operands may be any of the three.

// has reports membership of the chunk-local value lo.
func (ct *container) has(lo uint16) bool {
	switch ct.typ {
	case carray:
		i := sort.Search(len(ct.arr), func(i int) bool { return ct.arr[i] >= lo })
		return i < len(ct.arr) && ct.arr[i] == lo
	case cbitmap:
		return ct.bmp[lo>>6]&(1<<(lo&63)) != 0
	default: // cruns
		n := len(ct.arr) / 2
		i := sort.Search(n, func(i int) bool { return ct.arr[2*i] > lo })
		return i > 0 && lo <= ct.arr[2*(i-1)+1]
	}
}

// set inserts lo, converting array→bitmap past arrayMaxCard.
func (ct *container) set(lo uint16) {
	ct.makeMutable()
	switch ct.typ {
	case carray:
		i := sort.Search(len(ct.arr), func(i int) bool { return ct.arr[i] >= lo })
		if i < len(ct.arr) && ct.arr[i] == lo {
			return
		}
		if len(ct.arr) >= arrayMaxCard {
			ct.toBitmap()
			ct.set(lo)
			return
		}
		ct.arr = append(ct.arr, 0)
		copy(ct.arr[i+1:], ct.arr[i:])
		ct.arr[i] = lo
		ct.card++
	case cbitmap:
		if ct.bmp[lo>>6]&(1<<(lo&63)) == 0 {
			ct.bmp[lo>>6] |= 1 << (lo & 63)
			ct.card++
		}
	}
}

// clear removes lo. Bitmap containers are not shrunk back to arrays
// automatically; Optimize does that.
func (ct *container) clear(lo uint16) {
	ct.makeMutable()
	switch ct.typ {
	case carray:
		i := sort.Search(len(ct.arr), func(i int) bool { return ct.arr[i] >= lo })
		if i < len(ct.arr) && ct.arr[i] == lo {
			ct.arr = append(ct.arr[:i], ct.arr[i+1:]...)
			ct.card--
		}
	case cbitmap:
		if ct.bmp[lo>>6]&(1<<(lo&63)) != 0 {
			ct.bmp[lo>>6] &^= 1 << (lo & 63)
			ct.card--
		}
	}
}

// makeMutable expands a run container into array or bitmap form so in-place
// mutation stays simple; array and bitmap receivers are untouched.
func (ct *container) makeMutable() {
	if ct.typ != cruns {
		return
	}
	runs := ct.arr
	if ct.card <= arrayMaxCard {
		arr := make([]uint16, 0, ct.card)
		for i := 0; i+1 < len(runs); i += 2 {
			for v := int(runs[i]); v <= int(runs[i+1]); v++ {
				arr = append(arr, uint16(v))
			}
		}
		ct.typ, ct.arr = carray, arr
		return
	}
	bmp := make([]uint64, chunkWords)
	setWordRanges(bmp, runs)
	ct.typ, ct.arr, ct.bmp = cbitmap, nil, bmp
}

// toBitmap converts an array container to bitmap form.
func (ct *container) toBitmap() {
	bmp := ct.bmp
	if len(bmp) != chunkWords {
		bmp = make([]uint64, chunkWords)
	} else {
		for i := range bmp {
			bmp[i] = 0
		}
	}
	for _, lo := range ct.arr {
		bmp[lo>>6] |= 1 << (lo & 63)
	}
	ct.typ, ct.bmp, ct.arr = cbitmap, bmp, ct.arr[:0]
}

// copyFrom overwrites ct with src's members, reusing buffers; run sources
// are expanded to a mutable form.
func (ct *container) copyFrom(src *container) {
	switch src.typ {
	case carray:
		ct.typ, ct.card = carray, src.card
		ct.arr = append(ct.arr[:0], src.arr...)
	case cbitmap:
		if len(ct.bmp) != chunkWords {
			ct.bmp = make([]uint64, chunkWords)
		}
		copy(ct.bmp, src.bmp)
		ct.typ, ct.card = cbitmap, src.card
		ct.arr = ct.arr[:0]
	case cruns:
		if src.card <= arrayMaxCard {
			ct.typ, ct.card = carray, src.card
			ct.arr = ct.arr[:0]
			runs := src.arr
			for i := 0; i+1 < len(runs); i += 2 {
				for v := int(runs[i]); v <= int(runs[i+1]); v++ {
					ct.arr = append(ct.arr, uint16(v))
				}
			}
		} else {
			if len(ct.bmp) != chunkWords {
				ct.bmp = make([]uint64, chunkWords)
			} else {
				for i := range ct.bmp {
					ct.bmp[i] = 0
				}
			}
			setWordRanges(ct.bmp, src.arr)
			ct.typ, ct.card = cbitmap, src.card
			ct.arr = ct.arr[:0]
		}
	}
}

// iterate yields base+member for each member in increasing order.
func (ct *container) iterate(base int, yield func(i int) bool) bool {
	switch ct.typ {
	case carray:
		for _, lo := range ct.arr {
			if !yield(base | int(lo)) {
				return false
			}
		}
	case cbitmap:
		for wi, w := range ct.bmp {
			for w != 0 {
				if !yield(base | wi<<6 | trailingZeros(w)) {
					return false
				}
				w &= w - 1
			}
		}
	default: // cruns
		for i := 0; i+1 < len(ct.arr); i += 2 {
			for v := int(ct.arr[i]); v <= int(ct.arr[i+1]); v++ {
				if !yield(base | v) {
					return false
				}
			}
		}
	}
	return true
}

// words writes the container's dense chunk image into buf (chunkWords long).
func (ct *container) words(buf []uint64) {
	for i := range buf {
		buf[i] = 0
	}
	switch ct.typ {
	case carray:
		for _, lo := range ct.arr {
			buf[lo>>6] |= 1 << (lo & 63)
		}
	case cbitmap:
		copy(buf, ct.bmp)
	default:
		setWordRanges(buf, ct.arr)
	}
}

// setWordRanges sets the inclusive (start, last) run pairs into dense words.
func setWordRanges(words []uint64, runs []uint16) {
	for i := 0; i+1 < len(runs); i += 2 {
		s, e := int(runs[i]), int(runs[i+1])
		for w := s >> 6; w <= e>>6; w++ {
			mask := ^uint64(0)
			if w == s>>6 {
				mask &= ^uint64(0) << (s & 63)
			}
			if w == e>>6 {
				mask &= ^uint64(0) >> (63 - e&63)
			}
			words[w] |= mask
		}
	}
}

// filter keeps only the members for which keep returns true; any receiver
// format is handled (runs via makeMutable).
func (ct *container) filter(keep func(lo uint16) bool) {
	ct.makeMutable()
	switch ct.typ {
	case carray:
		out := ct.arr[:0]
		for _, lo := range ct.arr {
			if keep(lo) {
				out = append(out, lo)
			}
		}
		ct.arr = out
		ct.card = len(out)
	case cbitmap:
		for wi, w := range ct.bmp {
			for m := w; m != 0; m &= m - 1 {
				lo := uint16(wi<<6 | trailingZeros(m))
				if !keep(lo) {
					ct.bmp[wi] &^= 1 << (lo & 63)
					ct.card--
				}
			}
		}
	}
}

// andWords intersects in place with a chunk-local dense word slice.
func (ct *container) andWords(words []uint64) {
	ct.makeMutable()
	switch ct.typ {
	case carray:
		out := ct.arr[:0]
		for _, lo := range ct.arr {
			if wordBit(words, lo) {
				out = append(out, lo)
			}
		}
		ct.arr = out
		ct.card = len(out)
	case cbitmap:
		card := 0
		for wi := range ct.bmp {
			if wi < len(words) {
				ct.bmp[wi] &= words[wi]
			} else {
				ct.bmp[wi] = 0
			}
			card += onesCount(ct.bmp[wi])
		}
		ct.card = card
	}
}

// andNotWords subtracts a chunk-local dense word slice in place.
func (ct *container) andNotWords(words []uint64) {
	ct.makeMutable()
	switch ct.typ {
	case carray:
		out := ct.arr[:0]
		for _, lo := range ct.arr {
			if !wordBit(words, lo) {
				out = append(out, lo)
			}
		}
		ct.arr = out
		ct.card = len(out)
	case cbitmap:
		card := 0
		n := len(words)
		if n > len(ct.bmp) {
			n = len(ct.bmp)
		}
		for wi := 0; wi < n; wi++ {
			ct.bmp[wi] &^= words[wi]
			card += onesCount(ct.bmp[wi])
		}
		for wi := n; wi < len(ct.bmp); wi++ {
			card += onesCount(ct.bmp[wi])
		}
		ct.card = card
	}
}

// andContainer intersects in place with another container.
func (ct *container) andContainer(o *container) {
	if o.typ == cbitmap {
		ct.andWords(o.bmp)
		return
	}
	ct.filter(o.has)
}

// andNotContainer subtracts another container in place.
func (ct *container) andNotContainer(o *container) {
	switch {
	case o.typ == cbitmap:
		ct.andNotWords(o.bmp)
	case ct.typ == cbitmap && o.typ == carray:
		// Clear o's few members directly instead of walking ct's bits.
		for _, lo := range o.arr {
			if ct.bmp[lo>>6]&(1<<(lo&63)) != 0 {
				ct.bmp[lo>>6] &^= 1 << (lo & 63)
				ct.card--
			}
		}
	default:
		ct.filter(func(lo uint16) bool { return !o.has(lo) })
	}
}

// clearFromWords clears ct's members out of a chunk-local dense word slice,
// returning how many bits were actually cleared. ct is read-only here.
func (ct *container) clearFromWords(words []uint64) int {
	removed := 0
	switch ct.typ {
	case carray:
		for _, lo := range ct.arr {
			wi := int(lo) >> 6
			if wi < len(words) && words[wi]&(1<<(lo&63)) != 0 {
				words[wi] &^= 1 << (lo & 63)
				removed++
			}
		}
	case cbitmap:
		n := len(words)
		if n > chunkWords {
			n = chunkWords
		}
		for wi := 0; wi < n; wi++ {
			old := words[wi]
			words[wi] = old &^ ct.bmp[wi]
			removed += onesCount(old &^ words[wi])
		}
	default: // cruns
		for i := 0; i+1 < len(ct.arr); i += 2 {
			s, e := int(ct.arr[i]), int(ct.arr[i+1])
			for w := s >> 6; w <= e>>6 && w < len(words); w++ {
				mask := ^uint64(0)
				if w == s>>6 {
					mask &= ^uint64(0) << (s & 63)
				}
				if w == e>>6 {
					mask &= ^uint64(0) >> (63 - e&63)
				}
				removed += onesCount(words[w] & mask)
				words[w] &^= mask
			}
		}
	}
	return removed
}

// andCountWords counts ct's members present in a chunk-local dense slice.
func (ct *container) andCountWords(words []uint64) int {
	n := 0
	switch ct.typ {
	case carray:
		for _, lo := range ct.arr {
			if wordBit(words, lo) {
				n++
			}
		}
	case cbitmap:
		m := len(words)
		if m > chunkWords {
			m = chunkWords
		}
		for wi := 0; wi < m; wi++ {
			n += onesCount(ct.bmp[wi] & words[wi])
		}
	default: // cruns
		for i := 0; i+1 < len(ct.arr); i += 2 {
			s, e := int(ct.arr[i]), int(ct.arr[i+1])
			for w := s >> 6; w <= e>>6 && w < len(words); w++ {
				mask := ^uint64(0)
				if w == s>>6 {
					mask &= ^uint64(0) << (s & 63)
				}
				if w == e>>6 {
					mask &= ^uint64(0) >> (63 - e&63)
				}
				n += onesCount(words[w] & mask)
			}
		}
	}
	return n
}

// andCountContainer counts the intersection of two containers.
func (ct *container) andCountContainer(o *container) int {
	if ct.typ == cbitmap && o.typ != cbitmap {
		return o.andCountContainer(ct) // walk the smaller side
	}
	if o.typ == cbitmap {
		return ct.andCountWords(o.bmp)
	}
	n := 0
	ct.iterate(0, func(i int) bool {
		if o.has(uint16(i)) {
			n++
		}
		return true
	})
	return n
}

// subsetOfWords reports whether every member is set in the chunk-local
// dense word slice.
func (ct *container) subsetOfWords(words []uint64) bool {
	if ct.typ == cbitmap {
		for wi, w := range ct.bmp {
			uw := uint64(0)
			if wi < len(words) {
				uw = words[wi]
			}
			if w&^uw != 0 {
				return false
			}
		}
		return true
	}
	ok := true
	ct.iterate(0, func(i int) bool {
		ok = wordBit(words, uint16(i))
		return ok
	})
	return ok
}

// subsetOfContainer reports whether every member of ct is in o.
func (ct *container) subsetOfContainer(o *container) bool {
	if ct.card > o.card {
		return false
	}
	if o.typ == cbitmap {
		return ct.subsetOfWords(o.bmp)
	}
	ok := true
	ct.iterate(0, func(i int) bool {
		ok = o.has(uint16(i))
		return ok
	})
	return ok
}

// numRuns counts the maximal runs of consecutive members.
func (ct *container) numRuns() int {
	switch ct.typ {
	case carray:
		r, prev := 0, -2
		for _, lo := range ct.arr {
			if int(lo) != prev+1 {
				r++
			}
			prev = int(lo)
		}
		return r
	case cbitmap:
		r := 0
		carry := uint64(0)
		for _, w := range ct.bmp {
			r += onesCount(w &^ (w<<1 | carry))
			carry = w >> 63
		}
		return r
	default:
		return len(ct.arr) / 2
	}
}

// optimize rewrites the container in its smallest format.
func (ct *container) optimize() {
	if ct.card == 0 {
		return
	}
	runBytes := 4 * ct.numRuns()
	arrBytes := 2 * ct.card
	best := bitmapBytes
	if ct.card <= arrayMaxCard && arrBytes < best {
		best = arrBytes
	}
	if runBytes < best {
		ct.toRuns()
		return
	}
	switch {
	case ct.card <= arrayMaxCard && ct.typ != carray:
		ct.toArray()
	case ct.card > arrayMaxCard && ct.typ != cbitmap:
		ct.makeMutable() // runs with high cardinality and many runs → bitmap
		if ct.typ == carray {
			ct.toBitmap()
		}
	}
}

// toArray rewrites any container as a sorted element array.
func (ct *container) toArray() {
	if ct.typ == carray {
		return
	}
	arr := make([]uint16, 0, ct.card)
	ct.iterate(0, func(i int) bool {
		arr = append(arr, uint16(i))
		return true
	})
	ct.typ, ct.arr, ct.bmp = carray, arr, nil
}

// toRuns rewrites any container as inclusive (start, last) run pairs.
func (ct *container) toRuns() {
	if ct.typ == cruns {
		return
	}
	runs := make([]uint16, 0, 2*ct.numRuns())
	start, prev := -2, -2
	ct.iterate(0, func(i int) bool {
		if i != prev+1 {
			if start >= 0 {
				runs = append(runs, uint16(start), uint16(prev))
			}
			start = i
		}
		prev = i
		return true
	})
	if start >= 0 {
		runs = append(runs, uint16(start), uint16(prev))
	}
	ct.typ, ct.arr, ct.bmp = cruns, runs, nil
}
