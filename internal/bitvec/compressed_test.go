package bitvec

import (
	"math/rand"
	"testing"
)

// randomSparse returns a dense vector with n random bits set, plus the
// compressed equivalent built two ways (conversion and incremental Set).
func randomSparse(t *testing.T, rng *rand.Rand, width, n int) (Vector, *Compressed) {
	t.Helper()
	v := New(width)
	for i := 0; i < n; i++ {
		v.Set(rng.Intn(width))
	}
	c := CompressedFrom(v)
	inc := NewCompressed(width)
	for _, i := range v.Ones() {
		inc.Set(i)
	}
	if c.Key() != inc.Key() {
		t.Fatalf("conversion and incremental construction disagree (width %d)", width)
	}
	return v, c
}

func TestCompressedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []int{1, 63, 64, 65, 1000, chunkBits - 1, chunkBits, chunkBits + 1, 3 * chunkBits, 200000} {
		for _, n := range []int{0, 1, 7, 100, 5000} {
			if n > width {
				continue
			}
			v, c := randomSparse(t, rng, width, n)
			if c.Width() != width {
				t.Fatalf("width %d, got %d", width, c.Width())
			}
			if c.Count() != v.Count() {
				t.Fatalf("width %d: Count %d, dense %d", width, c.Count(), v.Count())
			}
			if !c.Dense().Equal(v) {
				t.Fatalf("width %d n %d: Dense round-trip mismatch", width, n)
			}
			if c.Key() != v.Key() {
				t.Fatalf("width %d: Key differs across representations", width)
			}
			if c.Hash64(42) != v.Hash64(42) {
				t.Fatalf("width %d: Hash64 differs across representations", width)
			}
			ones := c.Ones()
			want := v.Ones()
			if len(ones) != len(want) {
				t.Fatalf("Ones length %d, want %d", len(ones), len(want))
			}
			for i := range ones {
				if ones[i] != want[i] {
					t.Fatalf("Ones[%d] = %d, want %d", i, ones[i], want[i])
				}
				if !c.Get(ones[i]) {
					t.Fatalf("Get(%d) false for a member", ones[i])
				}
			}
		}
	}
}

// TestCompressedContainerForms drives each chunk through all three container
// formats: sparse (array), dense (bitmap), and clustered (runs).
func TestCompressedContainerForms(t *testing.T) {
	width := 2 * chunkBits

	// All-ones first chunk plus a sparse tail: Optimize should produce a run
	// container for chunk 0 and an array for chunk 1.
	v := New(width)
	for i := 0; i < chunkBits; i++ {
		v.Set(i)
	}
	v.Set(chunkBits + 10)
	v.Set(chunkBits + 7000)
	c := CompressedFrom(v)
	if c.cs[0].typ != cruns {
		t.Fatalf("full chunk stored as %v, want runs", c.cs[0].typ)
	}
	if c.cs[1].typ != carray {
		t.Fatalf("sparse chunk stored as %v, want array", c.cs[1].typ)
	}
	if got := c.SizeBytes(); got >= bitmapBytes {
		t.Fatalf("run+array encoding costs %d bytes, expected below one bitmap (%d)", got, bitmapBytes)
	}
	if !c.Dense().Equal(v) {
		t.Fatal("round trip through runs+array broke the contents")
	}

	// Mutating a run container must expand it transparently and stay correct.
	c.Clear(5)
	v.Clear(5)
	c.Set(5)
	v.Set(5)
	if !c.Dense().Equal(v) {
		t.Fatal("mutation through run expansion broke the contents")
	}

	// Half-full random chunk: bitmap container.
	rng := rand.New(rand.NewSource(2))
	u := New(width)
	for i := 0; i < chunkBits/2; i++ {
		u.Set(rng.Intn(chunkBits))
	}
	cu := CompressedFrom(u)
	if cu.cs[0].typ != cbitmap {
		t.Fatalf("half-full random chunk stored as %v, want bitmap", cu.cs[0].typ)
	}

	// Growing an array container past arrayMaxCard converts it to a bitmap.
	g := NewCompressed(width)
	for i := 0; i < arrayMaxCard+1; i++ {
		g.Set(2 * i) // every other bit: incompressible as runs
	}
	if g.cs[0].typ != cbitmap {
		t.Fatalf("array grew to %d members but is %v, want bitmap", g.Count(), g.cs[0].typ)
	}
	if g.Count() != arrayMaxCard+1 {
		t.Fatalf("Count %d after conversion, want %d", g.Count(), arrayMaxCard+1)
	}
	// And Optimize shrinks a sparse bitmap back down.
	for i := g.Count(); i > 10; i-- {
		g.Clear(2 * (i - 1))
	}
	g.Optimize()
	if g.cs[0].typ != carray {
		t.Fatalf("sparse container after Optimize is %v, want array", g.cs[0].typ)
	}
}

func TestCompressedAlgebraMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.Intn(3*chunkBits)
		nv, nu := rng.Intn(2000), rng.Intn(2000)
		v, cv := randomSparse(t, rng, width, nv%width+1)
		u, cu := randomSparse(t, rng, width, nu%width+1)

		type pair struct {
			name string
			a, b Bits
		}
		// Every representation pairing must agree with the dense oracle.
		for _, p := range []pair{
			{"dense/dense", v.CloneBits(), u},
			{"dense/comp", v.CloneBits(), cu},
			{"comp/dense", cv.CloneBits(), u},
			{"comp/comp", cv.CloneBits(), cu},
		} {
			wantAnd := v.And(u)
			wantNot := v.AndNot(u)
			if got := p.a.AndCount(p.b); got != wantAnd.Count() {
				t.Fatalf("%s AndCount = %d, want %d", p.name, got, wantAnd.Count())
			}
			if got := p.a.SubsetOfBits(p.b); got != v.SubsetOf(u) {
				t.Fatalf("%s SubsetOfBits = %t, want %t", p.name, got, v.SubsetOf(u))
			}
			if got := p.a.AndBits(p.b); got.Key() != wantAnd.Key() {
				t.Fatalf("%s AndBits mismatch", p.name)
			}
			if got := p.a.AndNotBits(p.b); got.Key() != wantNot.Key() {
				t.Fatalf("%s AndNotBits mismatch", p.name)
			}

			work := p.a.CloneBits()
			if removed := work.AndNotWith(p.b); removed != v.Count()-wantNot.Count() {
				t.Fatalf("%s AndNotWith removed %d, want %d", p.name, removed, v.Count()-wantNot.Count())
			} else if work.Key() != wantNot.Key() {
				t.Fatalf("%s AndNotWith content mismatch", p.name)
			}
			work = p.a.CloneBits()
			if n := work.AndWith(p.b); n != wantAnd.Count() || work.Key() != wantAnd.Key() {
				t.Fatalf("%s AndWith = %d (want %d) or content mismatch", p.name, n, wantAnd.Count())
			}
		}
	}
}

func TestCompressedCopyFromReusesStorage(t *testing.T) {
	width := 2 * chunkBits
	rng := rand.New(rand.NewSource(4))
	_, src1 := randomSparse(t, rng, width, 500)
	_, src2 := randomSparse(t, rng, width, 300)

	sc := NewCompressed(width)
	sc.CopyFrom(src1)
	if sc.Key() != src1.Key() {
		t.Fatal("CopyFrom missed members")
	}
	// Warm: copying a set of similar shape must not allocate.
	allocs := testing.AllocsPerRun(20, func() {
		sc.CopyFrom(src2)
		sc.CopyFrom(src1)
	})
	if allocs != 0 {
		t.Fatalf("warm CopyFrom allocates %.1f times per run, want 0", allocs)
	}
	// The copy must be independent of the source.
	one := src1.Ones()[0]
	sc.Clear(one)
	if !src1.Get(one) {
		t.Fatal("CopyFrom aliased the source")
	}

	// Copying from a run-encoded source expands to mutable containers.
	full := New(width)
	for i := 0; i < chunkBits+100; i++ {
		full.Set(i)
	}
	cf := CompressedFrom(full)
	if cf.cs[0].typ != cruns {
		t.Fatalf("setup: expected run container, got %v", cf.cs[0].typ)
	}
	sc.CopyFrom(cf)
	if sc.Key() != full.Key() {
		t.Fatal("CopyFrom(run source) missed members")
	}
	for i := range sc.cs {
		if sc.cs[i].typ == cruns {
			t.Fatal("CopyFrom left a run container in a mutable copy")
		}
	}
	sc.Clear(0)
	if sc.Count() != full.Count()-1 {
		t.Fatal("mutating the expanded copy failed")
	}
}

func TestCompressedWidthChecks(t *testing.T) {
	c := NewCompressed(100)
	v := New(200)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic on width mismatch", name)
			}
		}()
		f()
	}
	mustPanic("AndCount", func() { c.AndCount(v) })
	mustPanic("AndNotWith", func() { c.AndNotWith(v) })
	mustPanic("AndWith", func() { c.AndWith(v) })
	mustPanic("SubsetOfBits", func() { c.SubsetOfBits(v) })
	mustPanic("CopyFrom", func() { c.CopyFrom(NewCompressed(99)) })
	mustPanic("Get range", func() { c.Get(100) })
	mustPanic("Set range", func() { c.Set(-1) })
	mustPanic("negative width", func() { NewCompressed(-1) })
	mustPanic("vector AndNotWith", func() { New(10).AndNotWith(c) })
	mustPanic("FromWords length", func() { FromWords(65, make([]uint64, 1)) })
	mustPanic("FromWords stray bits", func() { FromWords(3, []uint64{0xff}) })
}

// TestVectorKeyWidthUniqueness pins the Key encoding satellite: widths that
// share trailing words with identical low bits must still get distinct keys,
// because the 32-bit little-endian width prefix disambiguates them.
func TestVectorKeyWidthUniqueness(t *testing.T) {
	mk := func(width int) Vector {
		v := New(width)
		for _, i := range []int{0, 5, 17, 40, 62} {
			v.Set(i) // identical low-word bits at every width
		}
		return v
	}
	v63, v64, v65 := mk(63), mk(64), mk(65)
	keys := map[string]int{v63.Key(): 63, v64.Key(): 64, v65.Key(): 65}
	if len(keys) != 3 {
		t.Fatalf("widths 63/64/65 with identical low bits produced %d distinct keys, want 3", len(keys))
	}
	// The width prefix is explicitly 32-bit little-endian.
	k := v65.Key()
	if k[0] != 65 || k[1] != 0 || k[2] != 0 || k[3] != 0 {
		t.Fatalf("width prefix bytes = %v, want [65 0 0 0]", []byte(k[:4]))
	}
	if len(k) != 4+8*2 {
		t.Fatalf("key length %d, want width prefix + 2 words", len(k))
	}
	// Representation independence at every width.
	for _, v := range []Vector{v63, v64, v65} {
		if CompressedFrom(v).Key() != v.Key() {
			t.Fatalf("compressed key differs at width %d", v.Width())
		}
	}
}

func TestCompressedRangeEarlyExit(t *testing.T) {
	c := CompressedFromIndices(200000, 3, 70000, 150000)
	var seen []int
	c.Range(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 3 || seen[1] != 70000 {
		t.Fatalf("early-exit Range saw %v", seen)
	}
}

func TestCompressedClearRemovesEmptyChunks(t *testing.T) {
	c := CompressedFromIndices(200000, 5, 100000)
	c.Clear(100000)
	if len(c.keys) != 1 || c.Count() != 1 {
		t.Fatalf("chunk not removed: keys %v, count %d", c.keys, c.Count())
	}
	c.Clear(100000) // clearing an absent bit in an absent chunk is a no-op
	if c.Count() != 1 {
		t.Fatal("repeated Clear changed the set")
	}
}

// mixedSet builds width-3·chunkBits sets whose chunks land in all three
// container formats at once: a run chunk, a dense random (bitmap) chunk, and
// a sparse (array) chunk — so the container-pair algebra (run∧bitmap,
// bitmap∧array, …) is exercised, not just array∧array.
func mixedSet(rng *rand.Rand, kind int) Vector {
	width := 3 * chunkBits
	v := New(width)
	switch kind % 3 {
	case 0: // run chunk 0
		start := rng.Intn(chunkBits / 2)
		for i := start; i < start+chunkBits/2; i++ {
			v.Set(i)
		}
	case 1: // bitmap chunk 0
		for i := 0; i < chunkBits/2; i++ {
			v.Set(rng.Intn(chunkBits))
		}
	default: // array chunk 0
		for i := 0; i < 100; i++ {
			v.Set(rng.Intn(chunkBits))
		}
	}
	// Chunk 1 dense-random, chunk 2 sparse, with occasional gaps.
	if rng.Intn(4) > 0 {
		for i := 0; i < chunkBits/3; i++ {
			v.Set(chunkBits + rng.Intn(chunkBits))
		}
	}
	if rng.Intn(4) > 0 {
		for i := 0; i < 50; i++ {
			v.Set(2*chunkBits + rng.Intn(chunkBits))
		}
	}
	return v
}

func TestCompressedAlgebraContainerMix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		v := mixedSet(rng, trial)
		u := mixedSet(rng, trial+1)
		cv, cu := CompressedFrom(v), CompressedFrom(u)
		cv.Optimize()
		cu.Optimize()

		wantAnd, wantNot := v.And(u), v.AndNot(u)
		if got := cv.AndCount(cu); got != wantAnd.Count() {
			t.Fatalf("trial %d: AndCount %d, want %d", trial, got, wantAnd.Count())
		}
		if got := cv.SubsetOfBits(cu); got != v.SubsetOf(u) {
			t.Fatalf("trial %d: SubsetOfBits %t, want %t", trial, got, v.SubsetOf(u))
		}
		work := cv.CloneBits()
		if removed := work.AndNotWith(cu); removed != v.Count()-wantNot.Count() || work.Key() != wantNot.Key() {
			t.Fatalf("trial %d: AndNotWith diverges from dense AndNot", trial)
		}
		work = cv.CloneBits()
		if n := work.AndWith(cu); n != wantAnd.Count() || work.Key() != wantAnd.Key() {
			t.Fatalf("trial %d: AndWith diverges from dense And", trial)
		}
		// Mixed-representation forms against run/bitmap operands.
		if got := v.AndCount(cu); got != wantAnd.Count() {
			t.Fatalf("trial %d: dense AndCount(comp) %d, want %d", trial, got, wantAnd.Count())
		}
		if got := cv.AndCount(u); got != wantAnd.Count() {
			t.Fatalf("trial %d: comp AndCount(dense) %d, want %d", trial, got, wantAnd.Count())
		}
		// Subset with an actual subset: v∧u ⊆ u in every pairing.
		meet := CompressedFrom(wantAnd)
		if !meet.SubsetOfBits(cu) || !meet.SubsetOfBits(u) || !wantAnd.SubsetOfBits(cu) {
			t.Fatalf("trial %d: meet not a subset of its operand", trial)
		}
	}
}

// opaqueBits hides a Bits value's concrete type so the representation type
// switches in the polymorphic operations fall through to their generic
// Range-based arms.
type opaqueBits struct{ Bits }

func TestGenericBitsFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		width := 1 + rng.Intn(2*chunkBits)
		v, cv := randomSparse(t, rng, width, rng.Intn(300)+1)
		u, cu := randomSparse(t, rng, width, rng.Intn(300)+1)
		ou := opaqueBits{u}
		wantAnd, wantNot := v.And(u), v.AndNot(u)

		for _, a := range []Bits{v.CloneBits(), cv.CloneBits()} {
			if got := a.AndCount(ou); got != wantAnd.Count() {
				t.Fatalf("AndCount via opaque operand = %d, want %d", got, wantAnd.Count())
			}
			if got := a.SubsetOfBits(ou); got != v.SubsetOf(u) {
				t.Fatalf("SubsetOfBits via opaque operand = %t, want %t", got, v.SubsetOf(u))
			}
			work := a.CloneBits()
			if removed := work.AndNotWith(ou); removed != v.Count()-wantNot.Count() || work.Key() != wantNot.Key() {
				t.Fatal("AndNotWith via opaque operand diverges")
			}
			work = a.CloneBits()
			if n := work.AndWith(ou); n != wantAnd.Count() || work.Key() != wantAnd.Key() {
				t.Fatal("AndWith via opaque operand diverges")
			}
			if got := a.AndBits(ou); got.Key() != wantAnd.Key() {
				t.Fatal("AndBits via opaque operand diverges")
			}
			if got := a.AndNotBits(ou); got.Key() != wantNot.Key() {
				t.Fatal("AndNotBits via opaque operand diverges")
			}
		}
		_ = cu
	}
}

func TestVectorRangeAndSuperset(t *testing.T) {
	v := FromIndices(150, 3, 70, 149)
	var seen []int
	v.Range(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 3 || seen[1] != 70 {
		t.Fatalf("early-exit Range saw %v", seen)
	}
	u := FromIndices(150, 3, 70)
	if !v.SupersetOf(u) || u.SupersetOf(v) {
		t.Fatal("SupersetOf disagrees with SubsetOf")
	}
	if w := v.Words(); len(w) != 3 || w[0]&(1<<3) == 0 {
		t.Fatalf("Words view wrong: %v", w)
	}
}
