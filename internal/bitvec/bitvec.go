// Package bitvec implements fixed-width packed bit vectors used throughout the
// library to represent Boolean tuples and conjunctive queries.
//
// A tuple over an attribute set {a_0 .. a_{M-1}} is a Vector of width M where
// bit i set means attribute a_i is present. A conjunctive Boolean query is the
// same representation: the query {a_1, a_3} is a Vector with bits 1 and 3 set,
// and a tuple t satisfies the query q exactly when q.SubsetOf(t) — equivalently
// when t dominates q in the paper's terminology.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-width bit vector. The zero value is an empty vector of
// width 0; use New or FromIndices to construct vectors of a given width.
// Vectors of different widths are never equal and must not be combined with
// the binary operations.
//
// Vector is a value type with reference semantics for its bits: copying a
// Vector (assignment, passing by value, storing in a slice) shares the
// underlying word storage, so an in-place mutation (Set, Clear) through
// either copy is visible through both. Use Clone before mutating when the
// original must stay intact. The pure operations (And, Or, AndNot, Not)
// allocate a fresh vector and never alias their operands.
type Vector struct {
	width int
	words []uint64
}

// New returns an all-zero vector of the given width (number of bits).
// It panics if width is negative.
func New(width int) Vector {
	if width < 0 {
		panic(fmt.Sprintf("bitvec: negative width %d", width))
	}
	return Vector{width: width, words: make([]uint64, wordsFor(width))}
}

// FromIndices returns a vector of the given width with exactly the bits at the
// given indices set. It panics if any index is out of [0, width).
func FromIndices(width int, indices ...int) Vector {
	v := New(width)
	for _, i := range indices {
		v.Set(i)
	}
	return v
}

// FromBools returns a vector whose width is len(b) with bit i set iff b[i].
func FromBools(b []bool) Vector {
	v := New(len(b))
	for i, set := range b {
		if set {
			v.Set(i)
		}
	}
	return v
}

// FromString parses a vector from a string of '0' and '1' runes in index
// order: s[i] is bit i (attribute a_i), exactly the layout String produces,
// so FromString(v.String()) round-trips. Whitespace is ignored. It returns
// an error on any other rune.
func FromString(s string) (Vector, error) {
	var cleaned []rune
	for _, r := range s {
		switch r {
		case '0', '1':
			cleaned = append(cleaned, r)
		case ' ', '\t', '\n', '\r':
		default:
			return Vector{}, fmt.Errorf("bitvec: invalid rune %q in %q", r, s)
		}
	}
	v := New(len(cleaned))
	for i, r := range cleaned {
		if r == '1' {
			v.Set(i)
		}
	}
	return v, nil
}

func wordsFor(width int) int { return (width + wordBits - 1) / wordBits }

// Width returns the number of bits in the vector.
func (v Vector) Width() int { return v.width }

// Words returns the vector's backing storage, least-significant word first;
// bits past Width in the final word are always zero. The slice aliases the
// vector: writes through it mutate the vector (and any copies sharing its
// storage). It exists so adjacent packages can run word-parallel loops over
// vectors they own without a copy; treat it as read-only otherwise.
func (v Vector) Words() []uint64 { return v.words }

// FromWords wraps words as a Vector of the given width without copying: the
// returned vector aliases the slice, so mutations flow both ways. It panics
// unless len(words) is exactly the storage size for width and all bits past
// width in the final word are zero — the invariant every Vector maintains.
func FromWords(width int, words []uint64) Vector {
	if width < 0 {
		panic(fmt.Sprintf("bitvec: negative width %d", width))
	}
	if len(words) != wordsFor(width) {
		panic(fmt.Sprintf("bitvec: %d words for width %d (want %d)",
			len(words), width, wordsFor(width)))
	}
	if width%wordBits != 0 && len(words) > 0 &&
		words[len(words)-1]&^((1<<(uint(width)%wordBits))-1) != 0 {
		panic(fmt.Sprintf("bitvec: stray bits beyond width %d in final word", width))
	}
	return Vector{width: width, words: words}
}

// Set sets bit i. It panics if i is out of range.
func (v Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i. It panics if i is out of range.
func (v Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set. It panics if i is out of range.
func (v Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (v Vector) check(i int) {
	if i < 0 || i >= v.width {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.width))
	}
}

// Count returns the number of set bits (the cardinality of the attribute set).
func (v Vector) Count() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Ones returns the indices of all set bits in increasing order.
func (v Vector) Ones() []int {
	out := make([]int, 0, v.Count())
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// Zeros returns the indices of all clear bits in increasing order.
func (v Vector) Zeros() []int {
	out := make([]int, 0, v.width-v.Count())
	for i := 0; i < v.width; i++ {
		if !v.Get(i) {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := Vector{width: v.width, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Equal reports whether v and u have the same width and the same bits.
func (v Vector) Equal(u Vector) bool {
	if v.width != u.width {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every bit set in v is also set in u.
// In the paper's terms: if v is a query and u a tuple, u retrieves v;
// if both are tuples, u dominates v. Panics if widths differ.
func (v Vector) SubsetOf(u Vector) bool {
	v.sameWidth(u)
	for i := range v.words {
		if v.words[i]&^u.words[i] != 0 {
			return false
		}
	}
	return true
}

// SupersetOf reports whether every bit set in u is also set in v.
func (v Vector) SupersetOf(u Vector) bool { return u.SubsetOf(v) }

// Dominates is the paper's tuple-domination relation: v dominates u when for
// every attribute set in u, v is also set. It is an alias for SupersetOf.
func (v Vector) Dominates(u Vector) bool { return u.SubsetOf(v) }

// Intersects reports whether v and u share at least one set bit.
func (v Vector) Intersects(u Vector) bool {
	v.sameWidth(u)
	for i := range v.words {
		if v.words[i]&u.words[i] != 0 {
			return true
		}
	}
	return false
}

func (v Vector) sameWidth(u Vector) {
	if v.width != u.width {
		panic(fmt.Sprintf("bitvec: width mismatch %d vs %d", v.width, u.width))
	}
}

// And returns the bitwise intersection of v and u as a new vector.
func (v Vector) And(u Vector) Vector {
	v.sameWidth(u)
	out := New(v.width)
	for i := range v.words {
		out.words[i] = v.words[i] & u.words[i]
	}
	return out
}

// Or returns the bitwise union of v and u as a new vector.
func (v Vector) Or(u Vector) Vector {
	v.sameWidth(u)
	out := New(v.width)
	for i := range v.words {
		out.words[i] = v.words[i] | u.words[i]
	}
	return out
}

// AndNot returns the set difference v \ u as a new vector.
func (v Vector) AndNot(u Vector) Vector {
	v.sameWidth(u)
	out := New(v.width)
	for i := range v.words {
		out.words[i] = v.words[i] &^ u.words[i]
	}
	return out
}

// Not returns the complement of v within its width: bits set in v become
// clear and vice versa. This is the paper's ~t / ~q operation used by the
// maximal-frequent-itemset reduction.
func (v Vector) Not() Vector {
	out := New(v.width)
	for i := range v.words {
		out.words[i] = ^v.words[i]
	}
	out.trim()
	return out
}

// trim clears any bits beyond width in the final word.
func (v *Vector) trim() {
	if v.width%wordBits != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << (uint(v.width) % wordBits)) - 1
	}
}

// CountAnd returns v.And(u).Count() without allocating.
func (v Vector) CountAnd(u Vector) int {
	v.sameWidth(u)
	n := 0
	for i := range v.words {
		n += bits.OnesCount64(v.words[i] & u.words[i])
	}
	return n
}

// Hash64 returns a 64-bit FNV-1a-style hash of the vector's width and bits,
// folded with seed. Two Equal vectors always hash identically under the same
// seed; the value is an in-process fingerprint only and is not stable across
// library versions.
func (v Vector) Hash64(seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := seed ^ offset
	h = (h ^ uint64(v.width)) * prime
	for _, w := range v.words {
		h = (h ^ w) * prime
	}
	return h
}

// String renders the vector as a string of '0'/'1' runes in index order,
// matching the tabular presentation in the paper (e.g. "110100").
func (v Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.width)
	for i := 0; i < v.width; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Key returns a compact string usable as a map key. Two vectors have the
// same key iff they are Equal.
//
// The encoding is the width as an explicit 32-bit little-endian prefix
// (widths above 2³²−1 are unsupported and would collide; nothing in this
// library approaches that), followed by each storage word least-significant
// byte first. Because the width is encoded up front — not inferable from the
// payload length — vectors of different widths that share trailing words
// (e.g. widths 63, 64 and 65 with identical low bits) always get distinct
// keys, and Compressed.Key reproduces the identical encoding so keys are
// representation-independent.
func (v Vector) Key() string {
	buf := make([]byte, 0, 8*len(v.words)+4)
	buf = append(buf,
		byte(v.width), byte(v.width>>8), byte(v.width>>16), byte(v.width>>24))
	for _, w := range v.words {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>uint(s)))
		}
	}
	return string(buf)
}
