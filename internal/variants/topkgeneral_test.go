package variants

import (
	"math"
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/topk"
)

// bruteTopKGeneral enumerates every compression and evaluates the true
// top-k objective directly — the oracle for TopKGeneral.
func bruteTopKGeneral(v TopKGeneral, log *dataset.QueryLog, tuple bitvec.Vector, m int) int {
	ones := tuple.Ones()
	if m > len(ones) {
		m = len(ones)
	}
	best := 0
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		kept := bitvec.FromIndices(tuple.Width(), chosen...)
		sat := 0
		for _, q := range log.Queries {
			if !q.SubsetOf(kept) {
				continue
			}
			s := v.Score(q, kept)
			better := 0
			for _, row := range v.DB.Rows {
				if q.SubsetOf(row) && v.Score(q, row) > s {
					better++
				}
			}
			if better < v.K {
				sat++
			}
		}
		if sat > best {
			best = sat
		}
		if len(chosen) == m || start == len(ones) {
			return
		}
		for i := start; i < len(ones); i++ {
			rec(i+1, append(chosen, ones[i]))
		}
	}
	rec(0, nil)
	return best
}

func randomTopKInstance(r *rand.Rand) (*dataset.Table, *dataset.QueryLog, bitvec.Vector, int, int) {
	width := 4 + r.Intn(4)
	schema := dataset.GenericSchema(width)
	db := dataset.NewTable(schema)
	for i := 0; i < 3+r.Intn(6); i++ {
		row := bitvec.New(width)
		for j := 0; j < width; j++ {
			if r.Float64() < 0.5 {
				row.Set(j)
			}
		}
		if err := db.Append(row, ""); err != nil {
			panic(err)
		}
	}
	log := dataset.NewQueryLog(schema)
	for i := 0; i < 2+r.Intn(10); i++ {
		q := bitvec.New(width)
		for q.Count() < 1+r.Intn(3) {
			q.Set(r.Intn(width))
		}
		log.Queries = append(log.Queries, q)
	}
	tuple := bitvec.New(width)
	for j := 0; j < width; j++ {
		if r.Float64() < 0.7 {
			tuple.Set(j)
		}
	}
	return db, log, tuple, 1 + r.Intn(width), 1 + r.Intn(3)
}

func TestTopKGeneralMatchesBruteForceMonotoneScore(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		db, log, tuple, m, k := randomTopKInstance(r)
		v := TopKGeneral{DB: db, K: k,
			Score: func(q, tup bitvec.Vector) float64 { return topk.AttrCount(tup) }}
		sol, err := v.Solve(log, tuple, m)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteTopKGeneral(v, log, tuple, m)
		if sol.Satisfied != want {
			t.Fatalf("trial %d: got %d, brute %d", trial, sol.Satisfied, want)
		}
	}
}

func TestTopKGeneralMatchesBruteForceQueryDependentScore(t *testing.T) {
	// Query-dependent, non-monotone score: overlap with the query minus a
	// penalty for extra attributes — the regime where the global-score
	// reduction of TopK is invalid and only the general solver is exact.
	r := rand.New(rand.NewSource(37))
	score := func(q, tup bitvec.Vector) float64 {
		return 2*float64(q.CountAnd(tup)) - 0.5*float64(tup.Count())
	}
	for trial := 0; trial < 25; trial++ {
		db, log, tuple, m, k := randomTopKInstance(r)
		v := TopKGeneral{DB: db, K: k, Score: score}
		sol, err := v.Solve(log, tuple, m)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteTopKGeneral(v, log, tuple, m)
		if sol.Satisfied != want {
			t.Fatalf("trial %d: got %d, brute %d (m=%d k=%d)", trial, sol.Satisfied, want, m, k)
		}
		if !sol.Kept.SubsetOf(tuple) || sol.Kept.Count() > m {
			t.Fatalf("trial %d: invalid solution", trial)
		}
	}
}

func TestTopKGeneralAgreesWithReductionOnGlobalScores(t *testing.T) {
	// For budget-determined global scores the TopK reduction is exact, so
	// both solvers must agree.
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		db, log, tuple, m, k := randomTopKInstance(r)
		// The general Score below identifies "the new tuple" structurally
		// (subset of tuple, within budget); skip instances where a DB row
		// would collide with that test, as the two solvers would then be
		// scoring genuinely different problems.
		collision := false
		for _, row := range db.Rows {
			if row.SubsetOf(tuple) && row.Count() <= m {
				collision = true
				break
			}
		}
		if collision {
			continue
		}
		myScore := float64(r.Intn(6))
		scores := make([]float64, db.Size())
		for i, row := range db.Rows {
			scores[i] = topk.AttrCount(row)
		}
		gen := TopKGeneral{DB: db, K: k, Score: func(q, tup bitvec.Vector) float64 {
			// Existing rows keep their feature count; the new tuple has a
			// constant score regardless of kept set.
			if tup.SubsetOf(tuple) && tup.Count() <= m {
				return myScore
			}
			return topk.AttrCount(tup)
		}}
		red := TopK{DB: db, K: k,
			NewTupleScore: func(bitvec.Vector) float64 { return myScore },
			RowScores:     scores}
		gotGen, err := gen.Solve(log, tuple, m)
		if err != nil {
			t.Fatal(err)
		}
		gotRed, err := red.Solve(core.BruteForce{}, log, tuple, m)
		if err != nil {
			t.Fatal(err)
		}
		if gotGen.Satisfied != gotRed.Satisfied {
			t.Fatalf("trial %d: general %d, reduction %d", trial, gotGen.Satisfied, gotRed.Satisfied)
		}
	}
}

func TestTopKGeneralValidation(t *testing.T) {
	schema := dataset.GenericSchema(3)
	log := dataset.NewQueryLog(schema)
	tuple := bitvec.New(3)
	if _, err := (TopKGeneral{}).Solve(log, tuple, 1); err == nil {
		t.Error("zero-value accepted")
	}
	db := dataset.NewTable(dataset.GenericSchema(4))
	v := TopKGeneral{DB: db, K: 1, Score: func(q, t bitvec.Vector) float64 { return 0 }}
	if _, err := v.Solve(log, tuple, 1); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestTopKGeneralNothingWinnable(t *testing.T) {
	// The competitor always outscores the new tuple: zero queries winnable.
	schema := dataset.GenericSchema(3)
	db := dataset.NewTable(schema)
	if err := db.Append(bitvec.New(3).Not(), ""); err != nil {
		t.Fatal(err)
	}
	log := dataset.NewQueryLog(schema)
	if err := log.Append(bitvec.FromIndices(3, 0)); err != nil {
		t.Fatal(err)
	}
	v := TopKGeneral{DB: db, K: 1, Score: func(q, tup bitvec.Vector) float64 {
		if tup.Count() == 3 {
			return 100 // the full competitor row
		}
		return 1
	}}
	sol, err := v.Solve(log, bitvec.FromIndices(3, 0, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied != 0 {
		t.Fatalf("satisfied=%d, want 0", sol.Satisfied)
	}
	if math.Signbit(float64(sol.Satisfied)) {
		t.Fatal("negative")
	}
}
