package variants

import (
	"errors"
	"fmt"
	"sort"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
)

// TopKGeneral solves SOC-Topk for arbitrary — possibly query-dependent and
// non-monotone — scoring functions, the case §V of the paper notes "can be
// formulated as a non-linear integer program" and leaves open. Since no
// linearization exists in general, this solver searches the attribute-subset
// space directly with branch-and-bound:
//
//   - nodes fix a prefix of the tuple's attributes to kept/dropped;
//   - the bound counts queries that could still possibly match the final
//     compression (all their attributes undecided-or-kept and within the
//     remaining budget), which is admissible for every scoring function
//     because ranking can only remove queries from the matched set;
//   - leaves evaluate the true top-k objective.
//
// Worst-case exponential in |t| (the problem is NP-hard); intended for
// moderate tuple widths. For global scoring functions prefer TopK, whose
// reduction solves large instances through any SOC-CB-QL algorithm.
type TopKGeneral struct {
	// DB is the competition.
	DB *dataset.Table
	// K is the result-list size of every query.
	K int
	// Score returns the score of an (existing or compressed) tuple for a
	// query. Ties between the new tuple and competitors resolve in the new
	// tuple's favor.
	Score func(q, tuple bitvec.Vector) float64
}

// Solve computes the optimal compression under general SOC-Topk semantics.
func (v TopKGeneral) Solve(log *dataset.QueryLog, tuple bitvec.Vector, m int) (core.Solution, error) {
	if v.DB == nil || v.K <= 0 || v.Score == nil {
		return core.Solution{}, errors.New("variants: TopKGeneral requires DB, K>0 and Score")
	}
	in := core.Instance{Log: log, Tuple: tuple, M: m}
	if err := in.Validate(); err != nil {
		return core.Solution{}, err
	}
	if v.DB.Width() != log.Width() {
		return core.Solution{}, fmt.Errorf("variants: database width %d, log width %d",
			v.DB.Width(), log.Width())
	}

	// Only queries the full tuple can match are ever winnable.
	var queries []bitvec.Vector
	for _, q := range log.Queries {
		if q.SubsetOf(tuple) {
			queries = append(queries, q)
		}
	}

	ones := tuple.Ones()
	if m > len(ones) {
		m = len(ones)
	}

	// Branch on attributes in descending query frequency: decisions about
	// hot attributes move the bound the most.
	freq := make(map[int]int)
	for _, q := range queries {
		for _, j := range q.Ones() {
			freq[j]++
		}
	}
	order := append([]int(nil), ones...)
	sort.SliceStable(order, func(a, b int) bool { return freq[order[a]] > freq[order[b]] })

	evaluate := func(kept bitvec.Vector) int {
		sat := 0
		for _, q := range queries {
			if !q.SubsetOf(kept) {
				continue
			}
			s := v.Score(q, kept)
			better := 0
			for _, row := range v.DB.Rows {
				if q.SubsetOf(row) && v.Score(q, row) > s {
					better++
					if better >= v.K {
						break
					}
				}
			}
			if better < v.K {
				sat++
			}
		}
		return sat
	}

	best := core.Solution{Optimal: true, Satisfied: -1}
	kept := bitvec.New(tuple.Width())
	decided := bitvec.New(tuple.Width())
	nodes := 0

	// bound counts queries whose attributes are all kept-or-undecided and
	// whose undecided attributes fit in the remaining budget — an admissible
	// upper bound on any completion of this node.
	bound := func(used int) int {
		remaining := m - used
		n := 0
		for _, q := range queries {
			need := 0
			ok := true
			for _, j := range q.Ones() {
				if kept.Get(j) {
					continue
				}
				if decided.Get(j) {
					ok = false // branched to dropped
					break
				}
				need++
			}
			if ok && need <= remaining {
				n++
			}
		}
		return n
	}

	var rec func(pos, used int)
	rec = func(pos, used int) {
		nodes++
		if sat := evaluate(kept); sat > best.Satisfied {
			best.Kept = kept.Clone()
			best.Satisfied = sat
		}
		if pos == len(order) || used == m {
			return
		}
		if bound(used) <= best.Satisfied {
			return
		}
		j := order[pos]
		decided.Set(j)
		// Include branch first: greedier incumbents prune more.
		if used < m {
			kept.Set(j)
			rec(pos+1, used+1)
			kept.Clear(j)
		}
		rec(pos+1, used)
		decided.Clear(j)
	}
	rec(0, 0)

	best.Stats = core.Stats{Nodes: nodes}
	if best.Satisfied < 0 {
		best.Satisfied = 0
		best.Kept = bitvec.New(tuple.Width())
	}
	return best, nil
}
