package variants

import (
	"math"
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/topk"
)

func example1Log(t *testing.T) (*dataset.QueryLog, bitvec.Vector) {
	t.Helper()
	schema := dataset.MustSchema([]string{"AC", "FourDoor", "Turbo", "PowerDoors", "AutoTrans", "PowerBrakes"})
	log := dataset.NewQueryLog(schema)
	for _, row := range []string{"110000", "100100", "010100", "000101", "001010"} {
		v, err := bitvec.FromString(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	tuple, _ := bitvec.FromString("110111")
	return log, tuple
}

func example1DB(t *testing.T) *dataset.Table {
	t.Helper()
	schema := dataset.MustSchema([]string{"AC", "FourDoor", "Turbo", "PowerDoors", "AutoTrans", "PowerBrakes"})
	db := dataset.NewTable(schema)
	for _, row := range []string{"010100", "011000", "100111", "110101", "110000", "010100", "001100"} {
		v, err := bitvec.FromString(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Append(v, ""); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestDatabaseVariantExample1(t *testing.T) {
	// §II.B: with m=4, keeping AC, FourDoor, PowerDoors, PowerBrakes
	// dominates 4 tuples (t1, t4, t5, t6); no choice does better.
	db := example1DB(t)
	tuple, _ := bitvec.FromString("110111")
	sol, err := Database(core.BruteForce{}, db, tuple, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied != 4 {
		t.Fatalf("dominated=%d, want 4", sol.Satisfied)
	}
	if sol.Kept.String() != "110101" {
		t.Fatalf("kept=%v, want 110101", sol.Kept)
	}
}

func TestDatabaseEqualsDominationCount(t *testing.T) {
	db := example1DB(t)
	tuple, _ := bitvec.FromString("110111")
	sol, err := Database(core.ILP{}, db, tuple, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db.DominatedBy(sol.Kept)); got != sol.Satisfied {
		t.Fatalf("solution says %d, table says %d", sol.Satisfied, got)
	}
}

func TestPerAttribute(t *testing.T) {
	log, tuple := example1Log(t)
	sol, err := PerAttribute(core.BruteForce{}, log, tuple)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Ratio <= 0 {
		t.Fatalf("ratio=%v", sol.Ratio)
	}
	// Verify the ratio is the max over all budgets (recompute directly).
	best := -1.0
	for m := 1; m <= tuple.Count(); m++ {
		s, err := core.BruteForce{}.Solve(core.Instance{Log: log, Tuple: tuple, M: m})
		if err != nil {
			t.Fatal(err)
		}
		if s.Kept.Count() > 0 {
			r := float64(s.Satisfied) / float64(s.Kept.Count())
			if r > best {
				best = r
			}
		}
	}
	if math.Abs(sol.Ratio-best) > 1e-12 {
		t.Fatalf("ratio=%v, want %v", sol.Ratio, best)
	}
	if sol.Ratio != float64(sol.Satisfied)/float64(sol.Kept.Count()) {
		t.Fatal("ratio inconsistent with solution")
	}
}

func TestPerAttributeEmptyTuple(t *testing.T) {
	log, _ := example1Log(t)
	if _, err := PerAttribute(core.BruteForce{}, log, bitvec.New(6)); err == nil {
		t.Fatal("empty tuple accepted")
	}
}

func TestPerAttributeDatabase(t *testing.T) {
	db := example1DB(t)
	tuple, _ := bitvec.FromString("110111")
	sol, err := PerAttributeDatabase(core.BruteForce{}, db, tuple)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Ratio <= 0 || sol.Kept.Count() == 0 {
		t.Fatalf("sol=%+v", sol)
	}
}

func TestCategoricalVariant(t *testing.T) {
	cs, err := dataset.NewCatSchema(
		[]string{"Make", "Color", "Trans"},
		[][]string{{"Honda", "Toyota"}, {"Red", "Blue"}, {"Auto", "Manual"}})
	if err != nil {
		t.Fatal(err)
	}
	log := &dataset.CatLog{Schema: cs, Queries: []dataset.CatQuery{
		{0, -1, -1},  // Make=Honda
		{0, 1, -1},   // Make=Honda, Color=Blue
		{-1, 1, 0},   // Color=Blue, Trans=Auto
		{1, -1, -1},  // Make=Toyota (hopeless for our tuple)
		{-1, -1, 0},  // Trans=Auto
		{-1, -1, -1}, // unconstrained
	}}
	tuple := dataset.CatTuple{0, 1, 0} // Honda, Blue, Auto

	sol, err := Categorical(core.BruteForce{}, log, tuple, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Keeping Make+Color satisfies queries 0,1,5 → 3. Keeping Color+Trans
	// satisfies 2,4,5 → 3. Keeping Make+Trans satisfies 0,4,5 → 3.
	if sol.Satisfied != 3 {
		t.Fatalf("satisfied=%d, want 3", sol.Satisfied)
	}

	// Brute-force the categorical objective directly to confirm.
	best := 0
	for mask := 0; mask < 8; mask++ {
		if popcount3(mask) != 2 {
			continue
		}
		sat := 0
		for _, q := range log.Queries {
			ok := true
			for i, v := range q {
				if v < 0 {
					continue
				}
				if mask&(1<<i) == 0 || tuple[i] != v {
					ok = false
					break
				}
			}
			if ok {
				sat++
			}
		}
		if sat > best {
			best = sat
		}
	}
	if sol.Satisfied != best {
		t.Fatalf("reduction optimum %d != direct optimum %d", sol.Satisfied, best)
	}
}

func popcount3(mask int) int {
	n := 0
	for mask > 0 {
		n += mask & 1
		mask >>= 1
	}
	return n
}

func TestCategoricalValidation(t *testing.T) {
	cs, _ := dataset.NewCatSchema([]string{"A"}, [][]string{{"x", "y"}})
	log := &dataset.CatLog{Schema: cs, Queries: []dataset.CatQuery{{0}}}
	if _, err := Categorical(core.BruteForce{}, log, dataset.CatTuple{5}, 1); err == nil {
		t.Error("bad tuple accepted")
	}
	log.Queries = append(log.Queries, dataset.CatQuery{7})
	if _, err := Categorical(core.BruteForce{}, log, dataset.CatTuple{0}, 1); err == nil {
		t.Error("bad query accepted")
	}
}

func TestNumericVariant(t *testing.T) {
	s := dataset.MustSchema([]string{"Price", "Miles", "Year"})
	nl := &dataset.NumLog{Schema: s}
	add := func(build func(*dataset.RangeQuery)) {
		q := dataset.NewRangeQuery(3)
		build(&q)
		nl.Queries = append(nl.Queries, q)
	}
	add(func(q *dataset.RangeQuery) { q.SetRange(0, 5000, 10000) })                            // passes
	add(func(q *dataset.RangeQuery) { q.SetRange(0, 5000, 10000); q.SetRange(2, 2000, 2010) }) // passes both
	add(func(q *dataset.RangeQuery) { q.SetRange(1, 0, 10000) })                               // fails (50k miles)
	add(func(q *dataset.RangeQuery) { q.SetRange(2, 2004, 2006) })                             // passes

	values := []float64{8000, 50000, 2005}

	strict, err := Numeric(core.BruteForce{}, nl, values, 2, NumericStrict)
	if err != nil {
		t.Fatal(err)
	}
	// Keep Price+Year: queries 0,1,3 satisfied.
	if strict.Satisfied != 3 {
		t.Fatalf("strict satisfied=%d, want 3", strict.Satisfied)
	}

	literal, err := Numeric(core.BruteForce{}, nl, values, 2, NumericLiteral)
	if err != nil {
		t.Fatal(err)
	}
	// Literal mode also counts query 2 (its failing condition vanishes).
	if literal.Satisfied != 4 {
		t.Fatalf("literal satisfied=%d, want 4", literal.Satisfied)
	}
	if literal.Satisfied < strict.Satisfied {
		t.Fatal("literal must never count fewer queries than strict")
	}
}

func TestNumericValidation(t *testing.T) {
	nl := &dataset.NumLog{Schema: dataset.GenericSchema(2),
		Queries: []dataset.RangeQuery{dataset.NewRangeQuery(3)}}
	if _, err := Numeric(core.BruteForce{}, nl, []float64{1, 2}, 1, NumericStrict); err == nil {
		t.Error("invalid log accepted")
	}
	nl2 := &dataset.NumLog{Schema: dataset.GenericSchema(2)}
	if _, err := Numeric(core.BruteForce{}, nl2, []float64{1}, 1, NumericStrict); err == nil {
		t.Error("short tuple accepted")
	}
}

func topKFixture(t *testing.T) (*dataset.Table, *dataset.QueryLog, bitvec.Vector) {
	t.Helper()
	schema := dataset.GenericSchema(5)
	db := dataset.NewTable(schema)
	for _, row := range []string{"11100", "11110", "11000", "10000", "11111"} {
		v, err := bitvec.FromString(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Append(v, ""); err != nil {
			t.Fatal(err)
		}
	}
	log := dataset.NewQueryLog(schema)
	for _, row := range []string{"11000", "10100", "00011", "10000"} {
		v, err := bitvec.FromString(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	tuple, _ := bitvec.FromString("11011")
	return db, log, tuple
}

func TestTopKAttrCount(t *testing.T) {
	db, log, tuple := topKFixture(t)
	scores := make([]float64, db.Size())
	for i, row := range db.Rows {
		scores[i] = topk.AttrCount(row)
	}
	v := TopK{
		DB:            db,
		K:             2,
		NewTupleScore: func(kept bitvec.Vector) float64 { return topk.AttrCount(kept) },
		RowScores:     scores,
	}
	sol, err := v.Solve(core.BruteForce{}, log, tuple, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force the true SOC-Topk objective over all C(4,3) compressions.
	engine, err := topk.NewWithRowScores(db, scores)
	if err != nil {
		t.Fatal(err)
	}
	best := -1
	ones := tuple.Ones()
	for a := 0; a < len(ones); a++ {
		for b := a + 1; b < len(ones); b++ {
			for c := b + 1; c < len(ones); c++ {
				kept := bitvec.FromIndices(5, ones[a], ones[b], ones[c])
				sat := 0
				for _, q := range log.Queries {
					if engine.WouldRetrieve(q, kept, topk.AttrCount(kept), 2) {
						sat++
					}
				}
				if sat > best {
					best = sat
				}
			}
		}
	}
	if sol.Satisfied != best {
		t.Fatalf("TopK solve=%d, direct optimum=%d", sol.Satisfied, best)
	}
	if !sol.Optimal {
		t.Error("AttrCount is budget-determined: solution should be optimal")
	}
}

func TestTopKConstantScore(t *testing.T) {
	// Constant score (e.g. fixed price): reduction exact; compare against
	// direct enumeration on random instances.
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		width := 4 + r.Intn(4)
		schema := dataset.GenericSchema(width)
		db := dataset.NewTable(schema)
		nrows := 3 + r.Intn(8)
		scores := make([]float64, nrows)
		for i := 0; i < nrows; i++ {
			v := bitvec.New(width)
			for j := 0; j < width; j++ {
				if r.Float64() < 0.5 {
					v.Set(j)
				}
			}
			if err := db.Append(v, ""); err != nil {
				t.Fatal(err)
			}
			scores[i] = float64(r.Intn(10))
		}
		log := dataset.NewQueryLog(schema)
		for i := 0; i < 2+r.Intn(10); i++ {
			q := bitvec.New(width)
			for q.Count() < 1+r.Intn(3) {
				q.Set(r.Intn(width))
			}
			log.Queries = append(log.Queries, q)
		}
		tuple := bitvec.New(width)
		for j := 0; j < width; j++ {
			if r.Float64() < 0.7 {
				tuple.Set(j)
			}
		}
		if tuple.Count() == 0 {
			continue
		}
		m := 1 + r.Intn(width)
		k := 1 + r.Intn(3)
		myScore := float64(r.Intn(10))

		v := TopK{DB: db, K: k,
			NewTupleScore: func(bitvec.Vector) float64 { return myScore },
			RowScores:     scores}
		sol, err := v.Solve(core.BruteForce{}, log, tuple, m)
		if err != nil {
			t.Fatal(err)
		}

		engine, err := topk.NewWithRowScores(db, scores)
		if err != nil {
			t.Fatal(err)
		}
		best := 0
		var rec func(start int, chosen []int)
		ones := tuple.Ones()
		rec = func(start int, chosen []int) {
			if len(chosen) == m || start == len(ones) {
				kept := bitvec.FromIndices(width, chosen...)
				sat := 0
				for _, q := range log.Queries {
					if engine.WouldRetrieve(q, kept, myScore, k) {
						sat++
					}
				}
				if sat > best {
					best = sat
				}
				return
			}
			rec(start+1, append(chosen, ones[start]))
			rec(start+1, chosen)
		}
		rec(0, nil)
		if sol.Satisfied != best {
			t.Fatalf("trial %d: TopK=%d, direct=%d", trial, sol.Satisfied, best)
		}
	}
}

func TestTopKValidation(t *testing.T) {
	db, log, tuple := topKFixture(t)
	if _, err := (TopK{}).Solve(core.BruteForce{}, log, tuple, 2); err == nil {
		t.Error("zero-value TopK accepted")
	}
	v := TopK{DB: db, K: 1, NewTupleScore: topk.AttrCount, RowScores: []float64{1}}
	if _, err := v.Solve(core.BruteForce{}, log, tuple, 2); err == nil {
		t.Error("mismatched RowScores accepted")
	}
}

func TestDisjunctiveSolversAgree(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	for trial := 0; trial < 40; trial++ {
		width := 3 + r.Intn(7)
		schema := dataset.GenericSchema(width)
		log := dataset.NewQueryLog(schema)
		for i := 0; i < 1+r.Intn(15); i++ {
			q := bitvec.New(width)
			for q.Count() < 1+r.Intn(3) {
				q.Set(r.Intn(width))
			}
			log.Queries = append(log.Queries, q)
		}
		tuple := bitvec.New(width)
		for j := 0; j < width; j++ {
			if r.Float64() < 0.6 {
				tuple.Set(j)
			}
		}
		m := r.Intn(width + 1)

		brute, err := DisjunctiveBrute(log, tuple, m)
		if err != nil {
			t.Fatal(err)
		}
		viaILP, err := DisjunctiveILP(log, tuple, m)
		if err != nil {
			t.Fatal(err)
		}
		if viaILP.Satisfied != brute.Satisfied {
			t.Fatalf("trial %d: ILP %d != brute %d", trial, viaILP.Satisfied, brute.Satisfied)
		}
		greedy, err := DisjunctiveGreedy(log, tuple, m)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Satisfied > brute.Satisfied {
			t.Fatalf("trial %d: greedy beats optimum", trial)
		}
		// Max-coverage greedy guarantee: ≥ (1−1/e)·OPT.
		if float64(greedy.Satisfied) < (1-1/math.E)*float64(brute.Satisfied)-1e-9 {
			t.Fatalf("trial %d: greedy %d below (1-1/e) of %d",
				trial, greedy.Satisfied, brute.Satisfied)
		}
	}
}

func TestDisjunctiveEmptyQueryNeverMatches(t *testing.T) {
	schema := dataset.GenericSchema(3)
	log := dataset.NewQueryLog(schema)
	if err := log.Append(bitvec.New(3)); err != nil { // empty query
		t.Fatal(err)
	}
	if err := log.Append(bitvec.FromIndices(3, 0)); err != nil {
		t.Fatal(err)
	}
	tuple := bitvec.FromIndices(3, 0, 1)
	for name, f := range map[string]func(*dataset.QueryLog, bitvec.Vector, int) (core.Solution, error){
		"brute": DisjunctiveBrute, "greedy": DisjunctiveGreedy, "ilp": DisjunctiveILP,
	} {
		sol, err := f(log, tuple, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Satisfied != 1 {
			t.Errorf("%s: satisfied=%d, want 1 (empty query matches nothing)", name, sol.Satisfied)
		}
	}
}
