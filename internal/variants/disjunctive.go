package variants

import (
	"fmt"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/ilp"
	"standout/internal/lp"
)

// Disjunctive Boolean retrieval (§II.B): a query retrieves a tuple when they
// share at least one attribute, so choosing t' is maximum coverage — pick m
// attributes covering as many queries as possible. Three solvers mirror the
// conjunctive trio: brute force, ILP, and the classic greedy (which carries
// the (1−1/e) coverage guarantee).

// DisjunctiveBrute enumerates all budget-m compressions. Exact; cost
// C(|t|, m) log scans.
func DisjunctiveBrute(log *dataset.QueryLog, tuple bitvec.Vector, m int) (core.Solution, error) {
	if err := (core.Instance{Log: log, Tuple: tuple, M: m}).Validate(); err != nil {
		return core.Solution{}, err
	}
	ones := tuple.Ones()
	if m > len(ones) {
		m = len(ones)
	}
	best := core.Solution{Optimal: true}
	first := true
	comb := make([]int, m)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == m {
			attrs := make([]int, m)
			for i, idx := range comb {
				attrs[i] = ones[idx]
			}
			kept := bitvec.FromIndices(tuple.Width(), attrs...)
			sat := disjunctiveSatisfied(log, kept)
			best.Stats.Candidates++
			if first || sat > best.Satisfied {
				best.Kept = kept
				best.Satisfied = sat
				first = false
			}
			return
		}
		for i := start; i <= len(ones)-(m-depth); i++ {
			comb[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	if first {
		kept := bitvec.New(tuple.Width())
		best.Kept = kept
		best.Satisfied = disjunctiveSatisfied(log, kept)
	}
	return best, nil
}

// DisjunctiveGreedy runs the standard max-coverage greedy: repeatedly keep
// the attribute covering the most still-uncovered queries.
func DisjunctiveGreedy(log *dataset.QueryLog, tuple bitvec.Vector, m int) (core.Solution, error) {
	if err := (core.Instance{Log: log, Tuple: tuple, M: m}).Validate(); err != nil {
		return core.Solution{}, err
	}
	ones := tuple.Ones()
	if m > len(ones) {
		m = len(ones)
	}
	covered := make([]bool, log.Size())
	kept := bitvec.New(tuple.Width())
	remaining := append([]int(nil), ones...)
	for picked := 0; picked < m && len(remaining) > 0; picked++ {
		bestIdx, bestGain := 0, -1
		for i, j := range remaining {
			gain := 0
			for qi, q := range log.Queries {
				if !covered[qi] && q.Get(j) {
					gain++
				}
			}
			if gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		j := remaining[bestIdx]
		kept.Set(j)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		for qi, q := range log.Queries {
			if q.Get(j) {
				covered[qi] = true
			}
		}
	}
	return core.Solution{Kept: kept, Satisfied: disjunctiveSatisfied(log, kept)}, nil
}

// DisjunctiveILP solves max coverage exactly:
//
//	maximize Σ yᵢ  s.t.  yᵢ ≤ Σ_{j∈qᵢ} xⱼ,  Σ xⱼ ≤ m,  x ∈ {0,1}, y ∈ [0,1].
func DisjunctiveILP(log *dataset.QueryLog, tuple bitvec.Vector, m int) (core.Solution, error) {
	if err := (core.Instance{Log: log, Tuple: tuple, M: m}).Validate(); err != nil {
		return core.Solution{}, err
	}
	ones := tuple.Ones()
	prob := lp.NewProblem(lp.Maximize)
	xVar := map[int]int{}
	var intVars []int
	budget := make([]lp.Term, 0, len(ones))
	for _, j := range ones {
		v := prob.AddBinaryVar(0, fmt.Sprintf("x%d", j))
		xVar[j] = v
		intVars = append(intVars, v)
		budget = append(budget, lp.Term{Var: v, Coeff: 1})
	}
	prob.AddConstraint(budget, lp.LE, float64(m))
	for qi, q := range log.Queries {
		y := prob.AddVar(0, 1, 1, fmt.Sprintf("y%d", qi))
		terms := []lp.Term{{Var: y, Coeff: 1}}
		touches := false
		for _, j := range q.Ones() {
			if v, ok := xVar[j]; ok {
				terms = append(terms, lp.Term{Var: v, Coeff: -1})
				touches = true
			}
		}
		if !touches && q.Count() > 0 {
			// The tuple shares no attribute with q: y is forced to 0.
			prob.SetBounds(y, 0, 0)
			continue
		}
		if q.Count() == 0 {
			// Empty query: disjunctive semantics can never match it (no
			// shared attribute exists); force y to 0.
			prob.SetBounds(y, 0, 0)
			continue
		}
		prob.AddConstraint(terms, lp.LE, 0) // y − Σ_{j∈q} x_j ≤ 0
	}
	res, err := ilp.Solve(prob, intVars, ilp.Options{ObjIntegral: true})
	if err != nil {
		return core.Solution{}, fmt.Errorf("variants: disjunctive ILP: %w", err)
	}
	if res.Status != ilp.StatusOptimal {
		return core.Solution{}, fmt.Errorf("variants: disjunctive ILP status %v", res.Status)
	}
	var attrs []int
	for _, j := range ones {
		if res.X[xVar[j]] > 0.5 {
			attrs = append(attrs, j)
		}
	}
	kept := bitvec.FromIndices(tuple.Width(), attrs...)
	return core.Solution{
		Kept:      kept,
		Satisfied: disjunctiveSatisfied(log, kept),
		Optimal:   true,
		Stats:     core.Stats{Nodes: res.Nodes},
	}, nil
}

// disjunctiveSatisfied counts queries sharing at least one attribute with
// the compression.
func disjunctiveSatisfied(log *dataset.QueryLog, kept bitvec.Vector) int {
	n := 0
	for _, q := range log.Queries {
		if q.Intersects(kept) {
			n++
		}
	}
	return n
}

// DisjunctiveSatisfied is the exported objective, used by examples/tests.
func DisjunctiveSatisfied(log *dataset.QueryLog, kept bitvec.Vector) int {
	return disjunctiveSatisfied(log, kept)
}
