// Package variants implements the problem variants of §II.B and their
// reductions to SOC-CB-QL (§V): the per-attribute objective, SOC-CB-D over a
// database instead of a query log, disjunctive retrieval semantics,
// SOC-Topk under global scoring functions, and the categorical and numeric
// wrappers around the reductions in package dataset.
//
// Every variant delegates the combinatorial core to a core.Solver, so each
// of the paper's five algorithms is usable for each variant.
package variants

import (
	"errors"
	"fmt"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/topk"
)

// PerAttributeSolution augments a Solution with the per-attribute objective
// value satisfied/|t'| and the budget that achieved it.
type PerAttributeSolution struct {
	core.Solution
	M     int     // the budget that maximized the ratio
	Ratio float64 // Satisfied / |Kept|
}

// PerAttribute solves the per-attribute variant of SOC-CB-QL (§II.B): with
// no fixed budget, maximize the number of satisfied queries divided by the
// number of retained attributes — buyers per unit advertising cost. Per §V
// it makes M calls to the underlying solver, one per candidate budget.
func PerAttribute(s core.Solver, log *dataset.QueryLog, tuple bitvec.Vector) (PerAttributeSolution, error) {
	maxM := tuple.Count()
	if maxM == 0 {
		return PerAttributeSolution{}, errors.New("variants: tuple has no attributes")
	}
	best := PerAttributeSolution{Ratio: -1}
	for m := 1; m <= maxM; m++ {
		sol, err := s.Solve(core.Instance{Log: log, Tuple: tuple, M: m})
		if err != nil {
			return PerAttributeSolution{}, fmt.Errorf("variants: per-attribute at m=%d: %w", m, err)
		}
		kept := sol.Kept.Count()
		if kept == 0 {
			continue
		}
		ratio := float64(sol.Satisfied) / float64(kept)
		if ratio > best.Ratio {
			best = PerAttributeSolution{Solution: sol, M: m, Ratio: ratio}
		}
	}
	return best, nil
}

// Database solves SOC-CB-D (§II.B): retain m attributes of the tuple so that
// the number of database tuples dominated by the compression is maximized.
// Per §V this is SOC-CB-QL with the database rows standing in for queries.
func Database(s core.Solver, db *dataset.Table, tuple bitvec.Vector, m int) (core.Solution, error) {
	sol, err := s.Solve(core.Instance{Log: dataset.LogFromTable(db), Tuple: tuple, M: m})
	if err != nil {
		return core.Solution{}, fmt.Errorf("variants: SOC-CB-D: %w", err)
	}
	return sol, nil
}

// PerAttributeDatabase is the per-attribute version of SOC-CB-D (§II.B).
func PerAttributeDatabase(s core.Solver, db *dataset.Table, tuple bitvec.Vector) (PerAttributeSolution, error) {
	return PerAttribute(s, dataset.LogFromTable(db), tuple)
}

// Categorical solves the categorical-data variant (§II.B): queries constrain
// attributes to values; the reduction of dataset.CatLog.ReduceForTuple turns
// the instance into a width-M Boolean one that any solver accepts.
func Categorical(s core.Solver, log *dataset.CatLog, tuple dataset.CatTuple, m int) (core.Solution, error) {
	if err := log.Schema.Validate(tuple); err != nil {
		return core.Solution{}, err
	}
	for i, q := range log.Queries {
		if err := log.Schema.ValidateQuery(q); err != nil {
			return core.Solution{}, fmt.Errorf("variants: categorical query %d: %w", i, err)
		}
	}
	reduced, _ := log.ReduceForTuple(tuple)
	full := bitvec.New(reduced.Width()).Not()
	sol, err := s.Solve(core.Instance{Log: reduced, Tuple: full, M: m})
	if err != nil {
		return core.Solution{}, fmt.Errorf("variants: categorical: %w", err)
	}
	return sol, nil
}

// NumericMode selects the numeric reduction (§V, last paragraph).
type NumericMode int

const (
	// NumericStrict drops queries with any failing range condition: they can
	// never retrieve the tuple (recommended).
	NumericStrict NumericMode = iota
	// NumericLiteral is the paper's construction verbatim: failing conditions
	// become unconstrained bits.
	NumericLiteral
)

// Numeric solves the numeric-data variant: the workload consists of range
// queries; the tuple carries numeric values. The reduction produces a
// Boolean instance relative to the tuple; retained bits name the numeric
// attributes to advertise.
func Numeric(s core.Solver, log *dataset.NumLog, values []float64, m int, mode NumericMode) (core.Solution, error) {
	if err := log.Validate(); err != nil {
		return core.Solution{}, err
	}
	var (
		reduced *dataset.QueryLog
		tuple   bitvec.Vector
		err     error
	)
	if mode == NumericLiteral {
		reduced, tuple, _, err = log.ReduceLiteral(values)
	} else {
		reduced, tuple, _, err = log.ReduceStrict(values)
	}
	if err != nil {
		return core.Solution{}, err
	}
	sol, err := s.Solve(core.Instance{Log: reduced, Tuple: tuple, M: m})
	if err != nil {
		return core.Solution{}, fmt.Errorf("variants: numeric: %w", err)
	}
	return sol, nil
}

// TopK solves SOC-Topk (§II.B) for global scoring functions: each query
// retrieves the k highest-scoring matching tuples, and the compression t'
// must both match a query and beat enough of the existing competition to
// enter its top-k. With a global score the new tuple's score is a constant
// s₀ for a fixed budget, so each query is either winnable (fewer than k
// better-scoring matches in D) or hopeless — the winnable subset is an
// ordinary SOC-CB-QL instance (§V). Ties resolve in the new tuple's favor.
type TopK struct {
	// DB is the competition.
	DB *dataset.Table
	// K is the result-list size of every query.
	K int
	// NewTupleScore returns the global score of the compressed tuple given
	// its kept attribute set. For AttrCount semantics use
	// func(kept bitvec.Vector) float64 { return topk.AttrCount(kept) }.
	NewTupleScore func(kept bitvec.Vector) float64
	// RowScores are the scores of the existing tuples, one per DB row.
	RowScores []float64
}

// Solve reduces the SOC-Topk instance to SOC-CB-QL and delegates to s.
//
// When NewTupleScore depends only on the budget (true for AttrCount, where
// score = m, and for constant scores such as the new product's price), the
// reduction is exact. Score functions that vary with WHICH attributes are
// kept make the retrieval condition non-separable; for those the reduction
// uses the score of the full budget-m best case and is an upper-bound
// relaxation — the returned Solution.Satisfied is re-verified against the
// true semantics, so the reported count is always achievable.
func (v TopK) Solve(s core.Solver, log *dataset.QueryLog, tuple bitvec.Vector, m int) (core.Solution, error) {
	if v.DB == nil || v.K <= 0 || v.NewTupleScore == nil {
		return core.Solution{}, errors.New("variants: TopK requires DB, K>0 and NewTupleScore")
	}
	if len(v.RowScores) != v.DB.Size() {
		return core.Solution{}, fmt.Errorf("variants: %d row scores for %d rows", len(v.RowScores), v.DB.Size())
	}
	engine, err := topk.NewWithRowScores(v.DB, v.RowScores)
	if err != nil {
		return core.Solution{}, err
	}

	// Score of the compressed tuple under the best case (full budget m kept
	// from the tuple): for budget-determined scores this is exact.
	refKept := bestCaseKept(tuple, m)
	s0 := v.NewTupleScore(refKept)

	winnable := dataset.NewQueryLog(log.Schema)
	for _, q := range log.Queries {
		if engine.CountBetter(q, s0) < v.K {
			winnable.Queries = append(winnable.Queries, q)
		}
	}
	sol, err := s.Solve(core.Instance{Log: winnable, Tuple: tuple, M: m})
	if err != nil {
		return core.Solution{}, fmt.Errorf("variants: SOC-Topk: %w", err)
	}

	// Re-verify against the true top-k semantics with the actual kept set.
	trueScore := v.NewTupleScore(sol.Kept)
	sat := 0
	for _, q := range log.Queries {
		if engine.WouldRetrieve(q, sol.Kept, trueScore, v.K) {
			sat++
		}
	}
	sol.Satisfied = sat
	sol.Optimal = sol.Optimal && scoreIsBudgetDetermined(v.NewTupleScore, tuple, m)
	return sol, nil
}

// bestCaseKept returns an arbitrary budget-m subset of the tuple, used only
// to evaluate budget-determined score functions.
func bestCaseKept(tuple bitvec.Vector, m int) bitvec.Vector {
	ones := tuple.Ones()
	if m > len(ones) {
		m = len(ones)
	}
	return bitvec.FromIndices(tuple.Width(), ones[:m]...)
}

// scoreIsBudgetDetermined spot-checks whether the score function yields the
// same value on a few different budget-m subsets; only then is the reduction
// provably exact. (AttrCount and constant scores pass; content-dependent
// scores fail and the solution is flagged non-optimal.)
func scoreIsBudgetDetermined(score func(bitvec.Vector) float64, tuple bitvec.Vector, m int) bool {
	ones := tuple.Ones()
	if m > len(ones) {
		m = len(ones)
	}
	if m == 0 || len(ones) == m {
		return true
	}
	a := bitvec.FromIndices(tuple.Width(), ones[:m]...)
	b := bitvec.FromIndices(tuple.Width(), ones[len(ones)-m:]...)
	return score(a) == score(b)
}
