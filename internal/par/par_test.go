package par

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"standout/internal/fault"
)

// markOnce returns a Func that records each processed index and fails the
// test on a duplicate run — the exactly-once property every other assertion
// builds on.
func markOnce(t *testing.T, ran []atomic.Int32) Func {
	t.Helper()
	return func(ctx context.Context, i int) error {
		if n := ran[i].Add(1); n != 1 {
			t.Errorf("item %d ran %d times", i, n)
		}
		return nil
	}
}

func TestRunCoversEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			ran := make([]atomic.Int32, n)
			res := Run(context.Background(), n, Options{Workers: workers}, markOnce(t, ran))
			for i := range ran {
				if ran[i].Load() != 1 {
					t.Fatalf("workers=%d n=%d: item %d ran %d times", workers, n, i, ran[i].Load())
				}
			}
			if res.Attempted != n {
				t.Fatalf("workers=%d n=%d: attempted %d", workers, n, res.Attempted)
			}
			if res.First != nil || len(res.Errs) != n {
				t.Fatalf("workers=%d n=%d: unexpected errors %+v", workers, n, res)
			}
		}
	}
}

func TestRunSequentialSpawnsNoGoroutines(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 8}, {1, 8}, {5, 1}, {1, 1}, {0, 0},
	} {
		res := Run(context.Background(), tc.n, Options{Workers: tc.workers},
			func(ctx context.Context, i int) error { return nil })
		if res.Spawned != 0 {
			t.Errorf("n=%d workers=%d: spawned %d goroutines, want 0", tc.n, tc.workers, res.Spawned)
		}
	}
	// And a genuinely parallel job reports its spawns.
	res := Run(context.Background(), 16, Options{Workers: 4},
		func(ctx context.Context, i int) error { return nil })
	if res.Spawned != 3 {
		t.Errorf("parallel job spawned %d, want 3", res.Spawned)
	}
}

func TestRunFirstErrorCancelsRest(t *testing.T) {
	const n = 500
	boom := errors.New("boom")
	var started atomic.Int32
	res := Run(context.Background(), n, Options{Workers: 4}, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 3 {
			return boom
		}
		// Late items should be skipped once the failure lands; stall a bit so
		// cancellation can actually beat the drain.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Microsecond):
			return nil
		}
	})
	if res.First == nil {
		t.Fatal("no First error recorded")
	}
	if !errors.Is(res.First, boom) {
		t.Fatalf("First = %v, want wrapped %v", res.First, boom)
	}
	if !errors.Is(res.Errs[res.First.Index], boom) {
		t.Fatalf("Errs[%d] = %v", res.First.Index, res.Errs[res.First.Index])
	}
	if res.Attempted >= n {
		t.Fatalf("cancellation skipped nothing (attempted %d of %d)", res.Attempted, n)
	}
	// Every item is accounted for exactly once: error, success, or skip.
	failed := 0
	for _, err := range res.Errs {
		if err != nil {
			failed++
		}
	}
	if failed == 0 || failed > res.Attempted {
		t.Fatalf("failed=%d attempted=%d", failed, res.Attempted)
	}
}

func TestRunExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var attempted atomic.Int32
	go func() {
		for attempted.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	res := Run(ctx, 10_000, Options{Workers: 4}, func(ctx context.Context, i int) error {
		attempted.Add(1)
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if res.Attempted == 10_000 {
		t.Fatal("external cancel skipped nothing")
	}
	if res.First != nil {
		t.Fatalf("external cancel must not synthesize an item error, got %v", res.First)
	}
}

func TestRunPanicCapture(t *testing.T) {
	res := Run(context.Background(), 8, Options{Workers: 2}, func(ctx context.Context, i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	if res.First == nil || res.First.Index != 5 {
		t.Fatalf("First = %+v, want index 5", res.First)
	}
	var pe *PanicError
	if !errors.As(res.Errs[5], &pe) || pe.Value != "kaboom" {
		t.Fatalf("Errs[5] = %v", res.Errs[5])
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
}

func TestRunWrapPanicHook(t *testing.T) {
	wrapped := errors.New("wrapped panic")
	res := Run(context.Background(), 2, Options{
		Workers:   2,
		WrapPanic: func(v any, stack []byte) error { return fmt.Errorf("%w: %v", wrapped, v) },
	}, func(ctx context.Context, i int) error {
		if i == 1 {
			panic("custom")
		}
		return nil
	})
	if !errors.Is(res.Errs[1], wrapped) {
		t.Fatalf("Errs[1] = %v, want custom wrapping", res.Errs[1])
	}
}

func TestRunSkewedWorkSteals(t *testing.T) {
	// One huge item at the front of worker 0's range, many cheap ones behind
	// it: the other workers must steal worker 0's leftovers or the job would
	// serialize. Steal counting proves the mechanism engages.
	const n = 4096
	var slow sync.WaitGroup
	slow.Add(1)
	done := make(chan struct{})
	go func() { defer close(done); slow.Wait() }()
	res := Run(context.Background(), n, Options{Workers: 4}, func(ctx context.Context, i int) error {
		if i == 0 {
			defer slow.Done()
			// Hold until someone else has stolen (bounded so a regression
			// fails fast instead of hanging).
			deadline := time.Now().Add(2 * time.Second)
			for mSteals.Value() == 0 && time.Now().Before(deadline) {
				time.Sleep(50 * time.Microsecond)
			}
		}
		return nil
	})
	<-done
	if res.Attempted != n {
		t.Fatalf("attempted %d of %d", res.Attempted, n)
	}
	if res.Steals == 0 {
		t.Fatal("skewed job recorded no steals")
	}
}

func TestRunFaultSiteInjectsErrors(t *testing.T) {
	inj := fault.New(1, fault.Rule{Site: "par.worker", Every: 3, Kind: fault.KindError})
	ctx := fault.WithInjector(context.Background(), inj)
	res := Run(ctx, 9, Options{Workers: 1}, func(ctx context.Context, i int) error { return nil })
	if res.First == nil || !errors.Is(res.First, fault.ErrInjected) {
		t.Fatalf("First = %v, want injected error", res.First)
	}
}

func TestPoolForEachBasics(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for trial := 0; trial < 10; trial++ {
		n := trial * 17
		ran := make([]atomic.Int32, n)
		res := p.ForEach(context.Background(), n, Options{}, markOnce(t, ran))
		if res.Attempted != n || res.First != nil {
			t.Fatalf("trial %d: %+v", trial, res)
		}
		for i := range ran {
			if ran[i].Load() != 1 {
				t.Fatalf("trial %d: item %d ran %d times", trial, i, ran[i].Load())
			}
		}
	}
}

func TestPoolConcurrentJobs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 50 + g*13
			ran := make([]atomic.Int32, n)
			res := p.ForEach(context.Background(), n, Options{}, markOnce(t, ran))
			if res.Attempted != n {
				t.Errorf("job %d: attempted %d of %d", g, res.Attempted, n)
			}
			for i := range ran {
				if ran[i].Load() != 1 {
					t.Errorf("job %d: item %d ran %d times", g, i, ran[i].Load())
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPoolResizeStorm is the scheduler stress test of ISSUE 5: eight
// goroutines hammer ForEach while another thrashes Resize across [1, 8] and
// a fault injector panics inside par.worker. Every item must still be
// attributed exactly once — run, or failed with an attributed error — and
// every panic must surface as an *ItemError-compatible entry, never a crash.
func TestPoolResizeStorm(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	inj := fault.New(42, fault.Rule{Site: "par.worker", Every: 97, Kind: fault.KindPanic, Msg: "storm"})
	ctx := fault.WithInjector(context.Background(), inj)

	stop := make(chan struct{})
	var resizer sync.WaitGroup
	resizer.Add(1)
	go func() {
		defer resizer.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
				p.Resize(1 + rng.Intn(8))
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for round := 0; round < 20; round++ {
				n := 30 + rng.Intn(200)
				ran := make([]atomic.Int32, n)
				res := p.ForEach(ctx, n, Options{}, func(ctx context.Context, i int) error {
					ran[i].Add(1)
					return nil
				})
				// Exactly-once attribution: every index is in exactly one
				// state — succeeded (fn ran once, no error), failed (error
				// recorded; the injected panic fires before fn, so fn may
				// not have run), or skipped by the cancellation (neither).
				attempted, failed := 0, 0
				for i := range ran {
					runs := int(ran[i].Load())
					if runs > 1 {
						t.Errorf("job %d/%d: item %d ran %d times", g, round, i, runs)
					}
					errSet := res.Errs[i] != nil
					if errSet {
						failed++
						var pe *PanicError
						if !errors.As(res.Errs[i], &pe) {
							t.Errorf("job %d/%d: item %d failed with %v, want panic", g, round, i, res.Errs[i])
						}
						if runs != 0 {
							t.Errorf("job %d/%d: item %d both ran and failed at the fault site", g, round, i)
						}
					}
					if runs == 1 || errSet {
						attempted++
					}
				}
				if attempted != res.Attempted {
					t.Errorf("job %d/%d: attempted %d, result says %d", g, round, attempted, res.Attempted)
				}
				if res.First != nil && res.Errs[res.First.Index] == nil {
					t.Errorf("job %d/%d: First points at index %d with nil error", g, round, res.First.Index)
				}
				if failed > 0 && res.First == nil {
					t.Errorf("job %d/%d: %d failures but no First", g, round, failed)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	resizer.Wait()

	if fires := inj.Fires("par.worker"); fires == 0 {
		t.Fatal("storm never triggered the par.worker fault site")
	}
}

// TestPoolForEachCompletionLatch hammers the done latch with tiny two-item
// jobs — the regime where one worker finishes its item at the instant the
// other claims the last one. A premature close would return control to the
// submitter while fn is still in flight; a double close would panic.
func TestPoolForEachCompletionLatch(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	p := NewPool(2)
	defer p.Close()
	for trial := 0; trial < 3000; trial++ {
		var inFlight atomic.Int32
		res := p.ForEach(context.Background(), 2, Options{}, func(ctx context.Context, i int) error {
			inFlight.Add(1)
			runtime.Gosched()
			inFlight.Add(-1)
			return nil
		})
		if got := inFlight.Load(); got != 0 {
			t.Fatalf("trial %d: ForEach returned with %d items in flight", trial, got)
		}
		if res.Attempted != 2 {
			t.Fatalf("trial %d: attempted %d of 2", trial, res.Attempted)
		}
	}
}

// TestPoolCloseForEachRace races Close against concurrent ForEach calls: each
// job must either be rejected up front (and run on the caller) or be enqueued
// where Close waits for it — never appended to a pool whose workers are all
// gone, which would strand the submitter on the done latch forever.
func TestPoolCloseForEachRace(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		p := NewPool(2)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ran := make([]atomic.Int32, 8)
				res := p.ForEach(context.Background(), 8, Options{}, markOnce(t, ran))
				if res.Attempted != 8 || res.First != nil {
					t.Errorf("trial %d: %+v", trial, res)
				}
			}()
		}
		runtime.Gosched()
		p.Close()
		wg.Wait()
	}
}

// TestPoolShrinkTakesEffectMidJob pins the Resize contract: a retiring worker
// finishes the item it is running and exits at the next item boundary, not at
// the end of the whole job. All four workers park inside an item, the pool
// shrinks to one, and every item run after the gate opens must then execute
// with single-worker concurrency.
func TestPoolShrinkTakesEffectMidJob(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 24
	var started, after, peak atomic.Int32
	gate := make(chan struct{})
	resized := make(chan struct{})
	done := make(chan Result, 1)
	go func() {
		done <- p.ForEach(context.Background(), n, Options{}, func(ctx context.Context, i int) error {
			if started.Add(1) <= 4 {
				<-gate
				return nil
			}
			<-resized
			c := after.Add(1)
			defer after.Add(-1)
			for {
				if pk := peak.Load(); c <= pk || peak.CompareAndSwap(pk, c) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			return nil
		})
	}()
	// Wait until every worker is parked inside an item, then shrink.
	for started.Load() < 4 {
		time.Sleep(50 * time.Microsecond)
	}
	p.Resize(1)
	close(resized)
	close(gate)
	res := <-done
	if res.Attempted != n || res.First != nil {
		t.Fatalf("job after shrink: %+v", res)
	}
	if got := peak.Load(); got != 1 {
		t.Fatalf("post-shrink items ran %d-wide, want 1 (retirement deferred to job end?)", got)
	}
}

func TestPoolResizeBounds(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Resize(0) // clamps to 1
	if got := p.Workers(); got != 1 {
		t.Fatalf("Workers after Resize(0) = %d", got)
	}
	p.Resize(6)
	if got := p.Workers(); got != 6 {
		t.Fatalf("Workers after Resize(6) = %d", got)
	}
	res := p.ForEach(context.Background(), 100, Options{},
		func(ctx context.Context, i int) error { return nil })
	if res.Attempted != 100 {
		t.Fatalf("attempted %d", res.Attempted)
	}
}

func TestPoolClosedFallsBackToCaller(t *testing.T) {
	p := NewPool(2)
	p.Close()
	ran := make([]atomic.Int32, 10)
	res := p.ForEach(context.Background(), 10, Options{}, markOnce(t, ran))
	if res.Attempted != 10 {
		t.Fatalf("closed-pool fallback attempted %d", res.Attempted)
	}
	// Close is idempotent.
	p.Close()
}

func TestItemErrorUnwrap(t *testing.T) {
	base := errors.New("cause")
	e := &ItemError{Index: 3, Err: base}
	if !errors.Is(e, base) {
		t.Fatal("ItemError does not unwrap")
	}
	if e.Error() == "" || (&PanicError{Value: "v"}).Error() == "" {
		t.Fatal("empty error strings")
	}
}
