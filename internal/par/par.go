// Package par is the repository's parallel execution engine: a bounded
// worker pool running indexed work items with work stealing, context
// cancellation, per-item panic capture and deterministic result placement.
//
// The unit of scheduling is a contiguous index range, not a single item. A
// job over n items starts as W range cells, one per worker; a worker pops
// items off the front of its own cell, and when the cell drains it steals the
// upper half of the fullest remaining cell. Ranges live in the job — never in
// a worker goroutine — so a pool that shrinks mid-job strands no items, and
// the stealing granularity halves itself toward single items exactly where
// the work is skewed (the "one huge tuple among tiny ones" regime).
//
// Determinism contract: the scheduler never reorders observable results.
// Item i's effects go to slot i of caller-owned storage; which goroutine runs
// item i, and when, is invisible as long as the item function is a pure
// function of i plus read-only shared state. Everything concurrency-related
// that IS observable — first-error selection, skip accounting — is resolved
// by explicit rules (first failure observed wins and cancels the rest),
// matching what core.SolveBatchContext documented before this package
// existed. See DESIGN.md §11.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"standout/internal/fault"
	"standout/internal/obsv"
)

// Pool-level process metrics, shared by every job in the process.
var (
	mItems = obsv.Default.Counter("standout_par_items_total",
		"Work items executed by the parallel scheduler.")
	mSteals = obsv.Default.Counter("standout_par_steals_total",
		"Range steals between workers of the parallel scheduler.")
	mBusy = obsv.Default.Gauge("standout_par_busy_workers",
		"Workers currently executing a work item.")
	mQueued = obsv.Default.Gauge("standout_par_queue_depth",
		"Work items claimed by no worker yet, summed over active jobs.")
)

// Func is one work item: process item i under ctx. A non-nil error fails the
// item; the first failure of a job cancels the job's context.
type Func func(ctx context.Context, i int) error

// ItemError attributes a failure to the item that caused it.
type ItemError struct {
	Index int
	Err   error
}

func (e *ItemError) Error() string { return fmt.Sprintf("par: item %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ItemError) Unwrap() error { return e.Err }

// PanicError is the default wrapping of a recovered item panic when
// Options.WrapPanic is nil. Callers with their own panic type (core uses
// *core.PanicError) install a WrapPanic hook instead.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("par: item panicked: %v", e.Value) }

// Options tunes one job.
type Options struct {
	// Workers is the total concurrency including the calling goroutine in
	// Run (Run spawns Workers−1 goroutines); ≤ 0 means GOMAXPROCS. ForEach
	// ignores it — the pool's workers are the concurrency.
	Workers int
	// WrapPanic converts a recovered panic value and stack into the item's
	// error; nil wraps into *PanicError.
	WrapPanic func(v any, stack []byte) error
}

// Result reports how a job ended.
type Result struct {
	// Errs holds each failed item's error at its index; nil entries are items
	// that succeeded or were skipped. The slice always has the job's length.
	Errs []error
	// First is the first failure observed (the one that cancelled the job),
	// nil when every item succeeded or the job was cancelled from outside.
	First *ItemError
	// Attempted counts items whose Func actually ran; len(Errs)−Attempted
	// items were skipped by cancellation.
	Attempted int
	// Steals counts range steals within this job (0 on an unskewed job whose
	// initial split was already balanced).
	Steals int64
	// Spawned counts goroutines started for this job: Workers−1 for Run
	// (0 when the job is sequential), 0 for ForEach (the pool's workers are
	// long-lived).
	Spawned int
}

// cell is one claimable index range [next, end). Workers pop the front of
// their own cell and steal the back half of someone else's.
type cell struct {
	mu        sync.Mutex
	next, end int
}

// job is one parallel loop: the cells, the per-item bookkeeping and the
// completion latch.
type job struct {
	ctx    context.Context
	cancel context.CancelFunc
	fn     Func
	wrap   func(v any, stack []byte) error

	cells      []cell
	unclaimed  atomic.Int64 // items no worker has claimed yet
	unfinished atomic.Int64 // items not yet run or skipped; 0 closes done
	attempted  atomic.Int64
	steals     atomic.Int64

	errs    []error
	firstMu sync.Mutex
	first   *ItemError

	done chan struct{} // closed when every item is finished
}

func newJob(ctx context.Context, n, cells int, opts Options, fn Func) *job {
	jctx, cancel := context.WithCancel(ctx)
	if cells > n {
		cells = n
	}
	if cells < 1 {
		cells = 1
	}
	j := &job{
		ctx:    jctx,
		cancel: cancel,
		fn:     fn,
		wrap:   opts.WrapPanic,
		cells:  make([]cell, cells),
		errs:   make([]error, n),
		done:   make(chan struct{}),
	}
	// Initial split: n items over `cells` contiguous ranges, remainder spread
	// one-per-cell from the front, so cell boundaries are a pure function of
	// (n, cells).
	base, rem := n/cells, n%cells
	start := 0
	for c := range j.cells {
		size := base
		if c < rem {
			size++
		}
		j.cells[c].next, j.cells[c].end = start, start+size
		start += size
	}
	j.unclaimed.Store(int64(n))
	j.unfinished.Store(int64(n))
	mQueued.Add(float64(n))
	if n == 0 {
		close(j.done)
	}
	return j
}

// claim hands out one item index, preferring the worker's own cell and
// stealing otherwise. ok=false means the job has no unclaimed items left —
// for this worker or anyone else.
func (j *job) claim(pref int) (int, bool) {
	ownIdx := pref % len(j.cells)
	own := &j.cells[ownIdx]
	own.mu.Lock()
	if own.next < own.end {
		i := own.next
		own.next++
		own.mu.Unlock()
		j.claimed()
		return i, true
	}
	own.mu.Unlock()

	// Steal: find the victim with the most unclaimed work. Sizes are read
	// under each cell's lock but the choice races benignly — any nonempty
	// victim keeps the worker busy.
	for {
		victim, most := -1, 0
		for c := range j.cells {
			cl := &j.cells[c]
			cl.mu.Lock()
			if size := cl.end - cl.next; size > most {
				victim, most = c, size
			}
			cl.mu.Unlock()
		}
		if victim < 0 {
			return 0, false
		}
		v := &j.cells[victim]
		// Lock victim and own together — in cell-index order, so two workers
		// stealing from each other's cells cannot deadlock — because moving
		// the stolen remainder into the own cell must re-check that the own
		// cell is still empty (pool workers can share a preferred cell).
		lo, hi := v, own
		if victim > ownIdx {
			lo, hi = own, v
		}
		lo.mu.Lock()
		if hi != lo {
			hi.mu.Lock()
		}
		size := v.end - v.next
		var i int
		switch {
		case size == 0:
			if hi != lo {
				hi.mu.Unlock()
			}
			lo.mu.Unlock()
			continue // lost the race, rescan
		case size == 1 || v == own || own.next < own.end:
			i = v.next
			v.next++
		default:
			// Take the upper half of the victim's range: run its first item
			// now, park the rest in our own (empty) cell for future pops.
			mid := v.next + size/2
			i = mid
			own.next, own.end = mid+1, v.end
			v.end = mid
		}
		if hi != lo {
			hi.mu.Unlock()
		}
		lo.mu.Unlock()
		j.steals.Add(1)
		mSteals.Add(1)
		j.claimed()
		return i, true
	}
}

func (j *job) claimed() {
	j.unclaimed.Add(-1)
	mQueued.Add(-1)
}

// runItem executes one claimed item behind the panic boundary and settles the
// completion latch. Items claimed after cancellation are skipped, which is
// how a cancelled job still drains to completion promptly.
func (j *job) runItem(i int) {
	if j.ctx.Err() == nil {
		j.attempted.Add(1)
		mItems.Add(1)
		mBusy.Add(1)
		err := j.protected(i)
		mBusy.Add(-1)
		if err != nil {
			j.errs[i] = err
			j.fail(i, err)
		}
	}
	// unfinished only ever decreases, one decrement per item, so exactly one
	// goroutine observes zero — after all n items have run or been skipped —
	// and done closes exactly once, never while an item is still in flight.
	if j.unfinished.Add(-1) == 0 {
		close(j.done)
	}
}

// protected runs item i with panic recovery and the par.worker fault site
// (DESIGN.md §10) in front of it.
func (j *job) protected(i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			stack := debug.Stack()
			if j.wrap != nil {
				err = j.wrap(v, stack)
			} else {
				err = &PanicError{Value: v, Stack: stack}
			}
		}
	}()
	if ferr := fault.Hit(j.ctx, "par.worker"); ferr != nil {
		return ferr
	}
	return j.fn(j.ctx, i)
}

func (j *job) fail(i int, err error) {
	j.firstMu.Lock()
	if j.first == nil {
		j.first = &ItemError{Index: i, Err: err}
		j.cancel() // first failure stops everything still unclaimed
	}
	j.firstMu.Unlock()
}

// work claims and runs items until the job has none left to claim, or until
// retire (when non-nil) reports the worker should stop between items. Unclaimed
// items left behind by a retiring worker stay in the cells for other workers.
func (j *job) work(pref int, retire func() bool) {
	for {
		if retire != nil && retire() {
			return
		}
		i, ok := j.claim(pref)
		if !ok {
			return
		}
		j.runItem(i)
	}
}

func (j *job) result(spawned int) Result {
	return Result{
		Errs:      j.errs,
		First:     j.first,
		Attempted: int(j.attempted.Load()),
		Steals:    j.steals.Load(),
		Spawned:   spawned,
	}
}

// Run executes fn for every i in [0, n) with up to opts.Workers-way
// concurrency and blocks until all items finish. The calling goroutine is
// worker zero: a sequential job (Workers ≤ 1, or n ≤ 1) spawns no goroutines
// at all, and a parallel one spawns Workers−1.
//
// Cancellation and failure follow one rule: the first item error observed
// cancels the job's context (derived from ctx), items claimed afterwards are
// skipped without running, and items already in flight see the cancellation
// through their context. Run never returns early — even a cancelled job
// drains before Result comes back, so fn is never running after Run returns.
func Run(ctx context.Context, n int, opts Options, fn Func) Result {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	j := newJob(ctx, n, workers, opts, fn)
	defer j.cancel()
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			j.work(w, nil)
		}(w)
	}
	j.work(0, nil)
	wg.Wait()
	if n > 0 {
		<-j.done
	}
	return j.result(workers - 1)
}

// Pool is a persistent worker pool for callers that run many jobs and want
// goroutine reuse plus live resizing. Jobs submitted with ForEach share the
// pool's workers; ranges live in the job, so Resize — even to fewer workers
// than there are jobs in flight — strands no items.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*job
	target int // desired worker count
	live   int // workers currently running (slots 0..live-1)
	closed bool
}

// NewPool starts a pool with the given number of workers (≤ 0 means
// GOMAXPROCS). Close it when done.
func NewPool(workers int) *Pool {
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p.Resize(workers)
	return p
}

// Workers returns the current target worker count.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// Resize sets the worker count to n (clamped to ≥ 1), spawning or retiring
// workers as needed. Retiring is graceful: a worker finishes the item it is
// running, then exits. Safe to call concurrently with ForEach.
func (p *Pool) Resize(n int) {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.target = n
	for p.live < p.target {
		slot := p.live
		p.live++
		go p.worker(slot)
	}
	p.cond.Broadcast() // surplus workers notice target < slot and exit
}

// Close retires every worker and rejects future jobs. In-flight ForEach
// calls complete first — Close waits for their jobs to drain before pulling
// workers, then blocks until all workers have exited.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	for len(p.jobs) > 0 {
		p.cond.Wait()
	}
	p.target = 0
	p.cond.Broadcast()
	for p.live > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// worker is one pool goroutine occupying a slot. Slots retire from the top
// (slot ≥ target exits first), so live slots always form a prefix and a later
// grow re-fills exactly the retired slots.
func (p *Pool) worker(slot int) {
	p.mu.Lock()
	for {
		if slot >= p.target {
			p.live--
			p.cond.Broadcast() // Close waits on live reaching zero
			p.mu.Unlock()
			return
		}
		var j *job
		for _, cand := range p.jobs {
			if cand.unclaimed.Load() > 0 {
				j = cand
				break
			}
		}
		if j == nil {
			p.cond.Wait()
			continue
		}
		p.mu.Unlock()
		// Retire between items, not at the job boundary: a shrink takes
		// effect as soon as the worker finishes the item it is running.
		j.work(slot, func() bool {
			p.mu.Lock()
			retired := slot >= p.target
			p.mu.Unlock()
			return retired
		})
		p.mu.Lock()
	}
}

// ForEach runs fn for every i in [0, n) on the pool's workers and blocks
// until the job completes. Error and cancellation semantics match Run. Many
// goroutines may call ForEach concurrently; their jobs interleave over the
// same workers in submission order (workers drain earlier jobs' claims
// first). A closed pool runs the job on the calling goroutine — callers
// never lose items to shutdown.
func (p *Pool) ForEach(ctx context.Context, n int, opts Options, fn Func) Result {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		opts.Workers = 1
		return Run(ctx, n, opts, fn)
	}
	// Create and enqueue the job without dropping the lock: a racing Close
	// either wins the closed check above or sees the enqueued job and waits
	// for it to drain — there is no window where an enqueued job is left with
	// no workers to run it.
	j := newJob(ctx, n, p.target, opts, fn)
	if n == 0 {
		p.mu.Unlock()
		j.cancel()
		return j.result(0)
	}
	p.jobs = append(p.jobs, j)
	p.cond.Broadcast()
	p.mu.Unlock()
	defer j.cancel()

	<-j.done

	p.mu.Lock()
	for k, cand := range p.jobs {
		if cand == j {
			p.jobs = append(p.jobs[:k], p.jobs[k+1:]...)
			break
		}
	}
	p.cond.Broadcast() // Close may be waiting for the job list to empty
	p.mu.Unlock()
	return j.result(0)
}
