package shard

// Robustness-layer tests: breaker state machine, hedging, retries, and the
// restart-on-mid-request-loss protocol — all against deterministic scripted
// backends, no real clocks where avoidable.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
)

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	br := newBreaker(2, 100*time.Millisecond)
	br.now = func() time.Time { return now }

	if !br.allow() {
		t.Fatal("closed breaker denied a call")
	}
	br.failure(errors.New("e1"))
	if st, _, _, _, _ := br.snapshot(); st != stateClosed {
		t.Fatalf("one failure under threshold 2 opened the circuit: %v", st)
	}
	br.failure(errors.New("e2"))
	if st, lastErr, _, _, trips := br.snapshot(); st != stateOpen || trips != 1 || lastErr != "e2" {
		t.Fatalf("after threshold failures: state=%v trips=%d lastErr=%q", st, trips, lastErr)
	}
	if br.allow() {
		t.Fatal("open breaker admitted a call inside cooloff")
	}
	if br.available() {
		t.Fatal("open breaker inside cooloff reports available")
	}

	now = now.Add(150 * time.Millisecond)
	if !br.available() {
		t.Fatal("open breaker past cooloff reports unavailable")
	}
	if !br.allow() {
		t.Fatal("open breaker past cooloff denied the probe")
	}
	if st, _, _, _, _ := br.snapshot(); st != stateHalfOpen {
		t.Fatalf("probe admission left state %v", st)
	}
	if br.allow() {
		t.Fatal("second concurrent probe admitted")
	}
	br.failure(errors.New("probe failed"))
	if st, _, _, _, trips := br.snapshot(); st != stateOpen || trips != 2 {
		t.Fatalf("failed probe: state=%v trips=%d", st, trips)
	}

	now = now.Add(150 * time.Millisecond)
	if !br.allow() {
		t.Fatal("re-probe denied")
	}
	br.success()
	if st, lastErr, _, _, _ := br.snapshot(); st != stateClosed || lastErr != "" {
		t.Fatalf("successful probe: state=%v lastErr=%q", st, lastErr)
	}
	if !br.allow() {
		t.Fatal("closed breaker denied a call after recovery")
	}
}

func TestLatencyWindowQuantile(t *testing.T) {
	w := &latencyWindow{}
	if _, ok := w.quantile(0.95); ok {
		t.Fatal("empty window returned a quantile")
	}
	for i := 1; i <= 7; i++ {
		w.observe(time.Duration(i) * time.Millisecond)
	}
	if _, ok := w.quantile(0.95); ok {
		t.Fatal("7-sample window returned a quantile")
	}
	w.observe(8 * time.Millisecond)
	q, ok := w.quantile(0.95)
	if !ok {
		t.Fatal("8-sample window returned no quantile")
	}
	if q < 6*time.Millisecond || q > 8*time.Millisecond {
		t.Fatalf("p95 of 1..8ms = %v", q)
	}
	q50, _ := w.quantile(0.5)
	if q50 >= q {
		t.Fatalf("p50 %v not below p95 %v", q50, q)
	}
	// Overflow the ring: old samples fall out.
	for i := 0; i < 200; i++ {
		w.observe(time.Millisecond)
	}
	if q, _ := w.quantile(0.99); q != time.Millisecond {
		t.Fatalf("saturated window p99 = %v, want 1ms", q)
	}
}

// hookBackend wraps a Backend with a per-call hook; the call counter is
// shared across hedged duplicates (atomic).
type hookBackend struct {
	inner Backend
	calls atomic.Int64
	hook  func(ctx context.Context, call int64) error
}

func (h *hookBackend) ID() string { return h.inner.ID() }
func (h *hookBackend) Score(ctx context.Context, mode Mode, cands []bitvec.Vector) ([]int, error) {
	n := h.calls.Add(1)
	if h.hook != nil {
		if err := h.hook(ctx, n); err != nil {
			return nil, err
		}
	}
	return h.inner.Score(ctx, mode, cands)
}

// fixedCase builds a deterministic instance whose greedy solve needs at
// least three scatters (freqs, one cumulative round, final subset count).
func fixedCase(t *testing.T) diffCase {
	t.Helper()
	c := genCase(42)
	c.tuple = bitvec.New(c.log.Width())
	for i := 0; i < 4; i++ {
		c.tuple.Set(i)
	}
	c.m = 2
	return c
}

func TestRetriesRecoverTransientFailure(t *testing.T) {
	c := fixedCase(t)
	backends := localBackends(t, c.log, 2)
	flaky := &hookBackend{inner: backends[1], hook: func(_ context.Context, call int64) error {
		if call == 1 {
			return errors.New("transient")
		}
		return nil
	}}
	cfg := testConfig([]Backend{backends[0], flaky}, c.log.Schema)
	cfg.Retries = 2
	cfg.RetryBackoff = time.Millisecond
	co, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got, err := co.Solve(context.Background(), c.tuple, c.m, "greedy")
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want, err := core.ConsumeAttrCumul{}.Solve(core.Instance{Log: c.log, Tuple: c.tuple, M: c.m})
	if err != nil {
		t.Fatalf("unsharded: %v", err)
	}
	checkIdentical(t, "retry-recovered", got, want)
	if co.met.retries.Value() == 0 {
		t.Error("transient failure recovered without a recorded retry")
	}
}

func TestMidRequestLossRestartsOverSurvivors(t *testing.T) {
	c := fixedCase(t)
	parts, err := Partition(context.Background(), c.log, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	l0, err := NewLocal(context.Background(), "s0", parts[0])
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	l1, err := NewLocal(context.Background(), "s1", parts[1])
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	// s1 answers the first two scatters, then dies: the solve is mid-request
	// when the loss hits, so merged counts from mixed shard sets would be
	// inconsistent — the coordinator must restart over s0 alone.
	dying := &hookBackend{inner: l1, hook: func(_ context.Context, call int64) error {
		if call > 2 {
			return errors.New("late death")
		}
		return nil
	}}
	co, err := New(testConfig([]Backend{l0, dying}, c.log.Schema))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got, err := co.Solve(context.Background(), c.tuple, c.m, "greedy")
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !got.Partial {
		t.Fatal("mid-request loss did not produce a partial result")
	}
	if got.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", got.Restarts)
	}
	if len(got.Responded) != 1 || got.Responded[0] != "s0" || len(got.Missing) != 1 || got.Missing[0] != "s1" {
		t.Errorf("responded=%v missing=%v", got.Responded, got.Missing)
	}
	want, err := core.ConsumeAttrCumul{}.Solve(core.Instance{Log: parts[0], Tuple: c.tuple, M: c.m})
	if err != nil {
		t.Fatalf("survivor unsharded: %v", err)
	}
	if !got.Solution.Kept.Equal(want.Kept) || got.Solution.Satisfied != want.Satisfied {
		t.Errorf("partial (%s, %d) != survivor unsharded (%s, %d)",
			got.Solution.Kept, got.Solution.Satisfied, want.Kept, want.Satisfied)
	}
}

func TestBreakerOpensAndRecoversThroughProbe(t *testing.T) {
	c := fixedCase(t)
	backends := localBackends(t, c.log, 2)
	var down atomic.Bool
	down.Store(true)
	flappy := &hookBackend{inner: backends[1], hook: func(context.Context, int64) error {
		if down.Load() {
			return errors.New("shard down")
		}
		return nil
	}}
	cfg := testConfig([]Backend{backends[0], flappy}, c.log.Schema)
	cfg.Retries = 2 // 3 attempts ≥ threshold: the circuit opens within one request
	cfg.RetryBackoff = time.Millisecond
	cfg.BreakerFailures = 3
	cfg.BreakerCooloff = 50 * time.Millisecond
	co, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	got, err := co.Solve(context.Background(), c.tuple, c.m, "greedy")
	if err != nil {
		t.Fatalf("Solve with one shard down: %v", err)
	}
	if !got.Partial {
		t.Fatal("one shard hard-down: response not partial")
	}
	h := co.Health()
	if h[1].State != "open" {
		t.Fatalf("shard s1 circuit = %q after retry budget, want open (health: %+v)", h[1].State, h)
	}
	if h[1].Trips == 0 || h[1].LastError == "" {
		t.Errorf("open circuit with trips=%d lastErr=%q", h[1].Trips, h[1].LastError)
	}

	// While open, the shard is excluded up front — still partial, no probe
	// slot consumed.
	got, err = co.Solve(context.Background(), c.tuple, c.m, "greedy")
	if err != nil || !got.Partial {
		t.Fatalf("solve during cooloff: partial=%v err=%v", got.Partial, err)
	}

	// Shard heals; after the cooloff the half-open probe closes the circuit
	// and answers go back to full and bit-identical to unsharded.
	down.Store(false)
	time.Sleep(60 * time.Millisecond)
	got, err = co.Solve(context.Background(), c.tuple, c.m, "greedy")
	if err != nil {
		t.Fatalf("Solve after recovery: %v", err)
	}
	want, err := core.ConsumeAttrCumul{}.Solve(core.Instance{Log: c.log, Tuple: c.tuple, M: c.m})
	if err != nil {
		t.Fatalf("unsharded: %v", err)
	}
	checkIdentical(t, "post-recovery", got, want)
	if h := co.Health(); h[1].State != "closed" {
		t.Errorf("recovered shard circuit = %q, want closed", h[1].State)
	}
}

func TestAllShardsLostIsErrNoShards(t *testing.T) {
	c := fixedCase(t)
	cfg := testConfig([]Backend{failBackend{id: "s0"}, failBackend{id: "s1"}}, c.log.Schema)
	cfg.BreakerFailures = 1
	cfg.BreakerCooloff = time.Hour
	co, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := co.Solve(context.Background(), c.tuple, c.m, "greedy"); !errors.Is(err, ErrNoShards) {
		t.Fatalf("all shards failing: err = %v, want ErrNoShards", err)
	}
	// Second call: both circuits are open, the pre-filter short-circuits.
	if _, err := co.Solve(context.Background(), c.tuple, c.m, "greedy"); !errors.Is(err, ErrNoShards) {
		t.Fatalf("all circuits open: err = %v, want ErrNoShards", err)
	}
}

func TestHedgeRacesSlowPrimary(t *testing.T) {
	c := fixedCase(t)
	backends := localBackends(t, c.log, 1)
	// The first invocation stalls; its hedge (a fresh call) answers fast.
	slowOnce := &hookBackend{inner: backends[0], hook: func(ctx context.Context, call int64) error {
		if call == 1 {
			select {
			case <-time.After(2 * time.Second):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}}
	cfg := testConfig([]Backend{slowOnce}, c.log.Schema)
	cfg.DisableHedge = false
	cfg.HedgeAfter = 5 * time.Millisecond
	co, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	start := time.Now()
	got, err := co.Solve(context.Background(), c.tuple, c.m, "greedy")
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not race the stalled primary: solve took %v", elapsed)
	}
	want, err := core.ConsumeAttrCumul{}.Solve(core.Instance{Log: c.log, Tuple: c.tuple, M: c.m})
	if err != nil {
		t.Fatalf("unsharded: %v", err)
	}
	checkIdentical(t, "hedged", got, want)
	if co.met.hedges.Value() == 0 || co.met.hedgeWins.Value() == 0 {
		t.Errorf("hedges=%d hedgeWins=%d, want both > 0", co.met.hedges.Value(), co.met.hedgeWins.Value())
	}
}

func TestSolveValidationErrors(t *testing.T) {
	c := genCase(7)
	co, err := New(testConfig(localBackends(t, c.log, 2), c.log.Schema))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := co.Solve(context.Background(), c.tuple, c.m, "quantum"); err == nil {
		t.Error("unknown algo accepted")
	}
	if _, err := co.Solve(context.Background(), bitvec.New(c.log.Width()+1), c.m, "greedy"); err == nil {
		t.Error("wrong-width tuple accepted")
	}
	if _, err := co.Solve(context.Background(), c.tuple, -1, "greedy"); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestBruteBudgetLadderDegradesToGreedy(t *testing.T) {
	c := fixedCase(t)
	cfg := testConfig(localBackends(t, c.log, 2), c.log.Schema)
	cfg.ExactBudget = time.Hour // brute never fits
	co, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := co.Solve(ctx, c.tuple, c.m, "brute")
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !got.Degraded || got.Solver != "greedy" {
		t.Fatalf("degraded=%v solver=%q, want degraded greedy", got.Degraded, got.Solver)
	}
	want, err := core.ConsumeAttrCumul{}.Solve(core.Instance{Log: c.log, Tuple: c.tuple, M: c.m})
	if err != nil {
		t.Fatalf("unsharded: %v", err)
	}
	checkIdentical(t, "ladder-degraded", got, want)
	// Without a deadline the ladder has nothing to clamp: brute runs.
	got, err = co.Solve(context.Background(), c.tuple, c.m, "brute")
	if err != nil || got.Degraded || got.Solver != "brute" {
		t.Fatalf("no-deadline brute: degraded=%v solver=%q err=%v", got.Degraded, got.Solver, err)
	}
}

func TestNewValidation(t *testing.T) {
	c := genCase(9)
	if _, err := New(Config{Schema: c.log.Schema}); err == nil {
		t.Error("New without backends succeeded")
	}
	if _, err := New(Config{Backends: localBackends(t, c.log, 1)}); err == nil {
		t.Error("New without schema succeeded")
	}
	dup := localBackends(t, c.log, 1)
	if _, err := New(testConfig([]Backend{dup[0], dup[0]}, c.log.Schema)); err == nil {
		t.Error("duplicate shard ids accepted")
	}
	names := AlgoNames()
	if len(names) != 5 {
		t.Errorf("AlgoNames = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("AlgoNames not sorted: %v", names)
		}
	}
	_ = fmt.Sprintf("%v", names)
}
