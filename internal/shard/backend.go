package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/fault"
	"standout/internal/obsv"
)

// Mode selects which additive counting oracle a Score call runs.
type Mode int

const (
	// Subset counts, for each candidate compression v, the total weight of
	// shard queries q with q ⊆ v — the SOC-CB-QL objective itself.
	Subset Mode = iota
	// Superset counts queries q with q ⊇ v — the co-occurrence score of the
	// cumulative greedy; on singleton candidates it is the attribute
	// frequency.
	Superset
)

func (m Mode) String() string {
	if m == Subset {
		return "subset"
	}
	return "superset"
}

// Backend is one shard of the query log viewed as an additive counting
// oracle. Implementations must be safe for concurrent Score calls — the
// coordinator hedges, so two identical calls can run at once.
type Backend interface {
	// ID names the shard in health reports, metrics and trace events.
	ID() string
	// Score returns one weighted count per candidate, aligned with cands.
	Score(ctx context.Context, mode Mode, cands []bitvec.Vector) ([]int, error)
}

// Local is an in-process shard: a partition of the query log scored directly,
// through a shared PreparedLog index when one could be built.
type Local struct {
	id   string
	log  *dataset.QueryLog
	prep *core.PreparedLog // nil → plain scans (bit-identical)
}

// NewLocal builds an in-process shard over its partition of the log. The
// index build is best-effort: on failure the shard serves scans.
func NewLocal(ctx context.Context, id string, log *dataset.QueryLog) (*Local, error) {
	if err := log.Validate(); err != nil {
		return nil, fmt.Errorf("shard %s: %w", id, err)
	}
	l := &Local{id: id, log: log}
	if p, err := core.PrepareLogContext(ctx, log); err == nil {
		l.prep = p
	}
	return l, nil
}

// ID implements Backend.
func (l *Local) ID() string { return l.id }

// Log returns the shard's partition (read-only), for tests and stats.
func (l *Local) Log() *dataset.QueryLog { return l.log }

// Score implements Backend.
func (l *Local) Score(ctx context.Context, mode Mode, cands []bitvec.Vector) ([]int, error) {
	switch mode {
	case Subset:
		if l.prep != nil && !l.prep.Stale() {
			ctx = core.WithPrepared(ctx, l.prep)
		}
		return core.CountSatisfied(ctx, l.log, cands)
	case Superset:
		return core.CountContaining(ctx, l.log, cands)
	}
	return nil, fmt.Errorf("shard %s: unknown mode %d", l.id, int(mode))
}

// HTTP is a remote shard: a socserve instance holding one partition of the
// log, spoken to over the internal/serve JSON protocol (POST /score). The
// request's trace context propagates in the traceparent header with a fresh
// span per outbound call, so the shard's own flight recorder joins the
// coordinator's trace.
type HTTP struct {
	id     string
	base   string
	client *http.Client
}

// NewHTTP builds a remote-shard backend for a base URL like
// "http://10.0.0.7:8080". A nil client uses http.DefaultClient; per-call
// deadlines come from the Score context, not the client.
func NewHTTP(id, baseURL string, client *http.Client) *HTTP {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTP{id: id, base: baseURL, client: client}
}

// ID implements Backend.
func (h *HTTP) ID() string { return h.id }

// httpScoreRequest mirrors internal/serve's scoreRequest wire form.
type httpScoreRequest struct {
	Mode       string   `json:"mode"`
	Candidates []string `json:"candidates"`
}

type httpScoreResponse struct {
	Counts []int  `json:"counts"`
	Width  int    `json:"width"`
	Error  string `json:"error"`
}

type httpSchemaResponse struct {
	Attrs []string `json:"attrs"`
	Width int      `json:"width"`
	Error string   `json:"error"`
}

// Score implements Backend.
func (h *HTTP) Score(ctx context.Context, mode Mode, cands []bitvec.Vector) ([]int, error) {
	if err := fault.Hit(ctx, "shard.dial"); err != nil {
		return nil, fmt.Errorf("shard %s: dial: %w", h.id, err)
	}
	specs := make([]string, len(cands))
	for i, c := range cands {
		specs[i] = c.String()
	}
	body, err := json.Marshal(httpScoreRequest{Mode: mode.String(), Candidates: specs})
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", h.id, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/score", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", h.id, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tid, _, ok := obsv.IDsFromContext(ctx); ok {
		req.Header.Set("traceparent", obsv.FormatTraceparent(tid, obsv.NewSpanID()))
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", h.id, err)
	}
	defer resp.Body.Close()
	var sr httpScoreResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&sr); err != nil {
		return nil, fmt.Errorf("shard %s: status %d: %w", h.id, resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := sr.Error
		if msg == "" {
			msg = http.StatusText(resp.StatusCode)
		}
		return nil, fmt.Errorf("shard %s: status %d: %s", h.id, resp.StatusCode, msg)
	}
	if len(sr.Counts) != len(cands) {
		return nil, fmt.Errorf("shard %s: %d counts for %d candidates", h.id, len(sr.Counts), len(cands))
	}
	for i, c := range sr.Counts {
		if c < 0 {
			return nil, fmt.Errorf("shard %s: negative count %d at %d", h.id, c, i)
		}
	}
	return sr.Counts, nil
}

// Schema fetches the remote shard's serving schema (GET /schema) — how a
// coordinator bootstraps without holding any workload of its own.
func (h *HTTP) Schema(ctx context.Context) (*dataset.Schema, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.base+"/schema", nil)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", h.id, err)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", h.id, err)
	}
	defer resp.Body.Close()
	var sr httpSchemaResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&sr); err != nil {
		return nil, fmt.Errorf("shard %s: status %d: %w", h.id, resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard %s: schema: status %d: %s", h.id, resp.StatusCode, sr.Error)
	}
	schema, err := dataset.NewSchema(sr.Attrs)
	if err != nil {
		return nil, fmt.Errorf("shard %s: schema: %w", h.id, err)
	}
	return schema, nil
}
