package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"standout/internal/dataset"
	"standout/internal/fault"
	"standout/internal/obsv"
)

// Server is the coordinator as an HTTP service: the same JSON dialect as
// internal/serve's /solve, plus partial-result fields, over a scatter-gather
// Coordinator. A coordinator process holds no query log — only shard
// addresses and the schema.
//
// Endpoints: POST /solve, GET /healthz, GET /readyz (per-shard circuit
// health), GET /metrics, GET /debug/requests.
type Server struct {
	cfg    Config
	co     *Coordinator
	mux    *http.ServeMux
	flight *obsv.Flight
	gate   *gate

	baseCtx context.Context
	stop    context.CancelFunc
}

// NewServer builds a coordinator HTTP server over cfg (see New for the
// required fields).
func NewServer(cfg Config) (*Server, error) {
	co, err := New(cfg)
	if err != nil {
		return nil, err
	}
	cfg = co.cfg // defaults resolved
	baseCtx, stop := context.WithCancel(context.Background())
	if cfg.Injector != nil {
		baseCtx = fault.WithInjector(baseCtx, cfg.Injector)
	}
	s := &Server{
		cfg:     cfg,
		co:      co,
		flight:  obsv.NewFlight(cfg.FlightSize, cfg.SlowThreshold, cfg.SampleEvery),
		gate:    newGate(cfg.MaxConcurrent, cfg.MaxQueue),
		baseCtx: baseCtx,
		stop:    stop,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/solve", s.traced("/solve", s.recovered(s.handleSolve)))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.Handle("/metrics", obsv.Handler(cfg.Registry))
	s.mux.Handle("/debug/requests", s.flight.Handler())
	s.mux.Handle("/debug/requests/", s.flight.Handler())
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Coordinator returns the underlying coordinator, for tests and embedders.
func (s *Server) Coordinator() *Coordinator { return s.co }

// Flight returns the server's flight recorder.
func (s *Server) Flight() *obsv.Flight { return s.flight }

// Close stops background work.
func (s *Server) Close() { s.stop() }

// gate is the coordinator's bounded two-stage admission: MaxConcurrent
// in-flight solves, MaxQueue waiters, everything beyond shed with 429
// (mirroring internal/serve's admission, DESIGN.md §10).
type gate struct {
	slots    chan struct{}
	waiting  atomic.Int64
	maxQueue int64
}

var errShed = errors.New("shard: admission queue full, request shed")

func newGate(concurrent, maxQueue int) *gate {
	return &gate{slots: make(chan struct{}, concurrent), maxQueue: int64(maxQueue)}
}

func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if n := g.waiting.Add(1); n > g.maxQueue {
		g.waiting.Add(-1)
		return errShed
	}
	defer g.waiting.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gate) release() { <-g.slots }

// Request/response bodies — the serve dialect plus the partial-result fields.

type solveRequest struct {
	Tuple     string `json:"tuple"`
	M         int    `json:"m"`
	Algo      string `json:"algo,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

type solveResponse struct {
	TraceID   string   `json:"trace_id,omitempty"`
	Kept      []string `json:"kept"`
	KeptBits  string   `json:"kept_bits"`
	Satisfied int      `json:"satisfied"`
	Optimal   bool     `json:"optimal"`
	// Estimated marks Satisfied as the estimator rung's certified point
	// estimate (DESIGN.md §16); EstLo ≤ exact ≤ EstHi then brackets the exact
	// weighted count over the union of the responded shards' partitions.
	Estimated bool   `json:"estimated,omitempty"`
	EstLo     int    `json:"est_lo,omitempty"`
	EstHi     int    `json:"est_hi,omitempty"`
	Degraded  bool   `json:"degraded"`
	Solver    string `json:"solver"`
	// Partial reports a response computed over the Responded shard subset
	// only: Satisfied is then the exact optimum (or greedy answer) of the
	// sub-problem those shards hold — a lower bound on the full answer.
	Partial   bool     `json:"partial"`
	Shards    int      `json:"shards"`
	Responded []string `json:"responded,omitempty"`
	Missing   []string `json:"missing,omitempty"`
	Restarts  int      `json:"restarts,omitempty"`
	ElapsedMS float64  `json:"elapsed_ms"`
}

type errorResponse struct {
	TraceID      string `json:"trace_id,omitempty"`
	Error        string `json:"error"`
	Panic        bool   `json:"panic,omitempty"`
	RetryAfterMS int    `json:"retry_after_ms,omitempty"`
}

// reqInfo accumulates per-request facts for the flight record.
type reqInfo struct {
	algo     string
	solver   string
	degraded bool
	partial  bool
	shed     bool
	panicked bool
	errMsg   string
}

type infoKey struct{}

func noteInfo(ctx context.Context) *reqInfo {
	if i, ok := ctx.Value(infoKey{}).(*reqInfo); ok {
		return i
	}
	return &reqInfo{}
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// traced mirrors internal/serve's tracing middleware: honor or mint a W3C
// trace context, thread it through the coordinator (whose outbound shard
// calls propagate it further), and leave a flight record — with the Partial
// flag, so /debug/requests surfaces degraded fan-outs.
func (s *Server) traced(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tid, _, err := obsv.ParseTraceparent(r.Header.Get("traceparent"))
		if err != nil {
			tid = obsv.NewTraceID()
		}
		span := obsv.NewSpanID()

		tr := obsv.NewTrace()
		tr.SetTraceID(tid)
		info := &reqInfo{}
		ctx := obsv.WithIDs(r.Context(), tid, span)
		ctx = obsv.WithTrace(ctx, tr)
		ctx = context.WithValue(ctx, infoKey{}, info)

		w.Header().Set("X-Request-Id", tid.String())
		w.Header().Set("traceparent", obsv.FormatTraceparent(tid, span))

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r.WithContext(ctx))
		elapsed := time.Since(start)

		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		summary := tr.Snapshot()
		s.flight.Record(&obsv.Record{
			TraceID:   tid.String(),
			Route:     route,
			Status:    sw.status,
			Start:     start,
			LatencyMS: float64(elapsed) / float64(time.Millisecond),
			Algo:      info.algo,
			Solver:    info.solver,
			Degraded:  info.degraded,
			Partial:   info.partial,
			Shed:      info.shed || sw.status == http.StatusTooManyRequests,
			Panic:     info.panicked,
			Fault:     tr.Counter("fault.fired") > 0,
			Slow:      s.cfg.SlowThreshold > 0 && elapsed >= s.cfg.SlowThreshold,
			Error:     info.errMsg,
			Trace:     &summary,
		})
	}
}

// recovered is the outermost panic boundary, as in internal/serve.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.co.met.failures.Add(1)
				info := noteInfo(r.Context())
				info.panicked = true
				info.errMsg = fmt.Sprintf("panic: %v", rec)
				writeJSON(r.Context(), w, http.StatusInternalServerError, errorResponse{
					Error: fmt.Sprintf("panic: %v", rec), Panic: true,
				})
				_ = debug.Stack()
			}
		}()
		h(w, r)
	}
}

func writeJSON(ctx context.Context, w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(stamp(ctx, v))
}

func stamp(ctx context.Context, v any) any {
	if t, ok := v.(errorResponse); ok {
		if info := noteInfo(ctx); info.errMsg == "" {
			info.errMsg = t.Error
		}
	}
	id := obsv.TraceIDStringFromContext(ctx)
	if id == "" {
		return v
	}
	switch t := v.(type) {
	case errorResponse:
		t.TraceID = id
		return t
	case solveResponse:
		t.TraceID = id
		return t
	}
	return v
}

func (s *Server) timeoutFor(ms int) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(r.Context(), w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	s.co.met.requests.Add(1)
	var req solveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Algo == "" {
		req.Algo = "greedy"
	}
	if !coordinatorAlgos[req.Algo] {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("unknown algo %q (have %v)", req.Algo, AlgoNames())})
		return
	}
	if req.M < 0 {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("negative budget m=%d", req.M)})
		return
	}
	tuple, err := dataset.ParseTuple(s.cfg.Schema, req.Tuple)
	if err != nil {
		writeJSON(r.Context(), w, http.StatusBadRequest, errorResponse{Error: "bad tuple: " + err.Error()})
		return
	}

	ctx := r.Context()
	if s.cfg.Injector != nil {
		ctx = fault.WithInjector(ctx, s.cfg.Injector)
	}
	if err := fault.Hit(ctx, "serve.admit"); err != nil {
		s.co.met.failures.Add(1)
		noteInfo(ctx).errMsg = err.Error()
		writeJSON(ctx, w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	if err := s.gate.acquire(ctx); err != nil {
		if errors.Is(err, errShed) {
			s.co.met.shed.Add(1)
			noteInfo(ctx).shed = true
			w.Header().Set("Retry-After", "1")
			writeJSON(ctx, w, http.StatusTooManyRequests, errorResponse{
				Error: "overloaded: admission queue full", RetryAfterMS: 1000,
			})
		} else {
			noteInfo(ctx).errMsg = err.Error()
			writeJSON(ctx, w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		}
		return
	}
	defer s.gate.release()

	ctx, cancel := context.WithTimeout(ctx, s.timeoutFor(req.TimeoutMS))
	defer cancel()

	start := time.Now()
	res, err := s.co.Solve(ctx, tuple, req.M, req.Algo)
	elapsed := time.Since(start)
	s.co.met.latency.ObserveExemplar(elapsed.Seconds(), obsv.TraceIDStringFromContext(ctx))
	info := noteInfo(ctx)
	info.algo = req.Algo
	if err != nil {
		s.writeSolveError(ctx, w, err)
		return
	}
	info.solver, info.degraded, info.partial = res.Solver, res.Degraded, res.Partial
	if res.Degraded {
		s.co.met.degraded.Add(1)
	}
	if res.Partial {
		s.co.met.partials.Add(1)
	}
	writeJSON(r.Context(), w, http.StatusOK, solveResponse{
		Kept:      res.Solution.AttrNames(s.cfg.Schema),
		KeptBits:  res.Solution.Kept.String(),
		Satisfied: res.Solution.Satisfied,
		Optimal:   res.Solution.Optimal,
		Estimated: res.Solution.Estimated,
		EstLo:     res.Solution.EstLo,
		EstHi:     res.Solution.EstHi,
		Degraded:  res.Degraded,
		Solver:    res.Solver,
		Partial:   res.Partial,
		Shards:    len(s.co.shards),
		Responded: res.Responded,
		Missing:   res.Missing,
		Restarts:  res.Restarts,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	})
}

// writeSolveError maps a coordinated-solve failure: deadline exhaustion is
// 504, caller cancellation 503, total shard loss 503 (partial results are
// 200s and never reach here; DESIGN.md §15), anything else 500 — always a
// well-formed JSON body.
func (s *Server) writeSolveError(ctx context.Context, w http.ResponseWriter, err error) {
	info := noteInfo(ctx)
	info.errMsg = err.Error()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.co.met.timeouts.Add(1)
		writeJSON(ctx, w, http.StatusGatewayTimeout, errorResponse{Error: "deadline exceeded before the scatter completed"})
	case errors.Is(err, context.Canceled):
		writeJSON(ctx, w, http.StatusServiceUnavailable, errorResponse{Error: "request canceled"})
	case errors.Is(err, ErrNoShards):
		s.co.met.failures.Add(1)
		writeJSON(ctx, w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		s.co.met.failures.Add(1)
		writeJSON(ctx, w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(r.Context(), w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyzResponse is the coordinator's readiness report: per-shard circuit
// health in backend order (satellite of DESIGN.md §15).
type readyzResponse struct {
	Status string        `json:"status"`
	Shards []ShardHealth `json:"shards"`
}

// handleReadyz reports ready while at least one shard's circuit admits
// traffic — the coordinator still serves exact partial answers then — and
// 503 only when every shard is open (nothing could be answered).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := s.baseCtx.Err(); err != nil {
		writeJSON(r.Context(), w, http.StatusServiceUnavailable, readyzResponse{Status: "shutting down"})
		return
	}
	health := s.co.Health()
	avail := 0
	for _, sh := range s.co.shards {
		if sh.br.available() {
			avail++
		}
	}
	if avail == 0 {
		writeJSON(r.Context(), w, http.StatusServiceUnavailable, readyzResponse{Status: "no shards available", Shards: health})
		return
	}
	status := "ready"
	if avail < len(s.co.shards) {
		status = "degraded"
	}
	writeJSON(r.Context(), w, http.StatusOK, readyzResponse{Status: status, Shards: health})
}
