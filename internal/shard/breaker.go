package shard

import (
	"sort"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit: closed (normal service) →
// open (fail fast, no backend traffic) → half-open (one probe in flight;
// success closes the circuit, failure re-opens it and restarts the cooloff).
type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stateClosed:
		return "closed"
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one shard's circuit breaker. Counting failures per attempt (not
// per request) means a shard that is hard-down trips the circuit within a
// single request's retry budget.
type breaker struct {
	threshold int           // consecutive failures that open the circuit
	cooloff   time.Duration // open → half-open delay
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	consec   int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	lastErr  string
	calls    uint64 // attempts admitted to the backend
	failures uint64 // attempts that failed
	trips    uint64 // closed/half-open → open transitions
}

func newBreaker(threshold int, cooloff time.Duration) *breaker {
	return &breaker{threshold: threshold, cooloff: cooloff, now: time.Now}
}

// allow reports whether a call may proceed. In the open state it admits
// nothing until the cooloff elapses, then transitions to half-open and admits
// exactly one probe; further calls fail fast until the probe resolves.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		b.calls++
		return true
	case stateOpen:
		if b.now().Sub(b.openedAt) < b.cooloff {
			return false
		}
		b.state = stateHalfOpen
		b.probing = true
		b.calls++
		return true
	case stateHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		b.calls++
		return true
	}
	return false
}

// available reports whether allow would (eventually) admit traffic right now
// — false only while the circuit is open inside its cooloff window. It never
// transitions state, so request planning can exclude dead shards up front
// without consuming the half-open probe slot.
func (b *breaker) available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != stateOpen || b.now().Sub(b.openedAt) >= b.cooloff
}

// success reports a completed call: the circuit closes from any state.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = stateClosed
	b.consec = 0
	b.probing = false
	b.lastErr = ""
	b.mu.Unlock()
}

// failure reports a failed attempt. A half-open probe failure re-opens
// immediately; closed-state failures open after threshold consecutive ones.
func (b *breaker) failure(err error) {
	b.mu.Lock()
	b.failures++
	if err != nil {
		b.lastErr = err.Error()
	}
	switch b.state {
	case stateHalfOpen:
		b.state = stateOpen
		b.openedAt = b.now()
		b.probing = false
		b.trips++
	case stateClosed:
		b.consec++
		if b.consec >= b.threshold {
			b.state = stateOpen
			b.openedAt = b.now()
			b.trips++
		}
	}
	b.mu.Unlock()
}

// snapshot returns the breaker's state for health reports and gauges.
func (b *breaker) snapshot() (state breakerState, lastErr string, calls, failures, trips uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.lastErr, b.calls, b.failures, b.trips
}

// latencyWindow is a small ring of recent successful-call latencies, backing
// the adaptive hedge delay ("hedge after the p95 of this shard's recent
// latency"). Reads copy and sort 64 values — cheap next to a network call.
type latencyWindow struct {
	mu  sync.Mutex
	buf [64]time.Duration
	n   int // total observations; buf index wraps
}

func (w *latencyWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.n%len(w.buf)] = d
	w.n++
	w.mu.Unlock()
}

// quantile returns the q-quantile of the window, or false while fewer than 8
// calls have been observed (too little signal to beat the configured floor).
func (w *latencyWindow) quantile(q float64) (time.Duration, bool) {
	w.mu.Lock()
	n := w.n
	if n > len(w.buf) {
		n = len(w.buf)
	}
	if n < 8 {
		w.mu.Unlock()
		return 0, false
	}
	vals := make([]time.Duration, n)
	copy(vals, w.buf[:n])
	w.mu.Unlock()
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	idx := int(q * float64(n-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return vals[idx], true
}
