package shard

import (
	"context"
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/fault"
)

// testLog builds a deterministic weighted log: width attrs, size queries
// sampled from a pool (duplicates likely), every third append weighted.
func testLog(t *testing.T, seed int64, width, size int) *dataset.QueryLog {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	log := dataset.NewQueryLog(dataset.GenericSchema(width))
	pool := make([]bitvec.Vector, 3+r.Intn(6))
	for p := range pool {
		q := bitvec.New(width)
		k := 1 + r.Intn(3)
		for q.Count() < k {
			q.Set(r.Intn(width))
		}
		pool[p] = q
	}
	for j := 0; j < size; j++ {
		w := 1
		if j%3 == 0 {
			w = 1 + r.Intn(5)
		}
		if err := log.AppendWeighted(pool[r.Intn(len(pool))], w); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	return log
}

func TestShardOfDeterministicAndInRange(t *testing.T) {
	log := testLog(t, 1, 8, 60)
	for _, n := range []int{1, 2, 3, 8} {
		for _, q := range log.Queries {
			i := ShardOf(q, n)
			if i < 0 || i >= n {
				t.Fatalf("ShardOf(%s, %d) = %d out of range", q, n, i)
			}
			if j := ShardOf(q, n); j != i {
				t.Fatalf("ShardOf not deterministic: %d then %d", i, j)
			}
		}
	}
}

func TestPartitionPreservesWeightsAndUnion(t *testing.T) {
	log := testLog(t, 2, 9, 80)
	for _, n := range []int{1, 2, 4, 8} {
		parts, err := Partition(context.Background(), log, n)
		if err != nil {
			t.Fatalf("Partition(%d): %v", n, err)
		}
		if len(parts) != n {
			t.Fatalf("Partition(%d) returned %d parts", n, len(parts))
		}
		totalW, totalQ := 0, 0
		union := map[string]int{} // query bits → total weight
		for _, p := range parts {
			totalW += p.TotalWeight()
			totalQ += p.Size()
			for qi, q := range p.Queries {
				union[q.String()] += p.Weight(qi)
			}
		}
		if totalW != log.TotalWeight() {
			t.Errorf("n=%d: shard weights sum %d, log %d", n, totalW, log.TotalWeight())
		}
		if totalQ != log.Size() {
			t.Errorf("n=%d: shard sizes sum %d, log %d", n, totalQ, log.Size())
		}
		want := map[string]int{}
		for qi, q := range log.Queries {
			want[q.String()] += log.Weight(qi)
		}
		for k, w := range want {
			if union[k] != w {
				t.Errorf("n=%d: query %s has shard weight %d, log weight %d", n, k, union[k], w)
			}
		}
		// A query's duplicates land on one shard (hash of the bits).
		for _, p := range parts {
			for _, q := range p.Queries {
				for _, other := range parts {
					if other == p {
						continue
					}
					for _, oq := range other.Queries {
						if q.Equal(oq) {
							t.Fatalf("n=%d: query %s present on two shards", n, q)
						}
					}
				}
			}
		}
	}
}

func TestPartitionOneMatchesPartition(t *testing.T) {
	log := testLog(t, 3, 7, 50)
	for _, n := range []int{1, 2, 4} {
		parts, err := Partition(context.Background(), log, n)
		if err != nil {
			t.Fatalf("Partition: %v", err)
		}
		for i := 0; i < n; i++ {
			one, err := PartitionOne(context.Background(), log, i, n)
			if err != nil {
				t.Fatalf("PartitionOne(%d/%d): %v", i, n, err)
			}
			if one.Size() != parts[i].Size() || one.TotalWeight() != parts[i].TotalWeight() {
				t.Fatalf("PartitionOne(%d/%d): size/weight %d/%d, Partition %d/%d",
					i, n, one.Size(), one.TotalWeight(), parts[i].Size(), parts[i].TotalWeight())
			}
			for qi, q := range one.Queries {
				if !q.Equal(parts[i].Queries[qi]) || one.Weight(qi) != parts[i].Weight(qi) {
					t.Fatalf("PartitionOne(%d/%d): query %d differs", i, n, qi)
				}
			}
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	log := testLog(t, 4, 6, 20)
	if _, err := Partition(context.Background(), log, 0); err == nil {
		t.Error("Partition(0) succeeded")
	}
	if _, err := PartitionOne(context.Background(), log, 2, 2); err == nil {
		t.Error("PartitionOne(2/2) succeeded")
	}
	if _, err := PartitionOne(context.Background(), log, -1, 2); err == nil {
		t.Error("PartitionOne(-1/2) succeeded")
	}
}

func TestPartitionFaultSite(t *testing.T) {
	log := testLog(t, 5, 6, 20)
	inj := fault.New(1, fault.Rule{Site: "shard.partition", Every: 1, Kind: fault.KindError, Msg: "boom"})
	ctx := fault.WithInjector(context.Background(), inj)
	if _, err := Partition(ctx, log, 2); err == nil {
		t.Error("Partition under shard.partition fault succeeded")
	}
	if _, err := PartitionOne(ctx, log, 0, 2); err == nil {
		t.Error("PartitionOne under shard.partition fault succeeded")
	}
}
