package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/gen"
	"standout/internal/obsv"
	"standout/internal/serve"
)

// coordFixture is a full two-tier deployment under httptest: n serve.Server
// shard processes plus a coordinator Server scattering over them via HTTP.
type coordFixture struct {
	srv    *Server
	ts     *httptest.Server
	shards []*serve.Server
	log    *dataset.QueryLog
	tuples []bitvec.Vector
}

func newCoordFixture(t *testing.T, n int, mut func(*Config)) *coordFixture {
	t.Helper()
	tab := gen.Cars(1, 120)
	log := gen.RealWorkload(tab, 2, 40)
	tuples := gen.PickTuples(tab, 3, 6)

	parts, err := Partition(context.Background(), log, n)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	f := &coordFixture{log: log, tuples: tuples}
	backends := make([]Backend, n)
	for i, p := range parts {
		ss, err := serve.New(serve.Config{Log: p, Registry: obsv.NewRegistry()})
		if err != nil {
			t.Fatalf("serve.New: %v", err)
		}
		sts := httptest.NewServer(ss.Handler())
		t.Cleanup(func() { sts.Close(); ss.Close() })
		f.shards = append(f.shards, ss)
		backends[i] = NewHTTP(fmt.Sprintf("s%d", i), sts.URL, sts.Client())
	}
	cfg := Config{
		Backends: backends,
		Schema:   log.Schema,
		Registry: obsv.NewRegistry(),
	}
	if mut != nil {
		mut(&cfg)
	}
	f.srv, err = NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	f.ts = httptest.NewServer(f.srv.Handler())
	t.Cleanup(func() { f.ts.Close(); f.srv.Close() })
	return f
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func decode[T any](t *testing.T, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	return v
}

// TestCoordinatorSolveMatchesUnsharded: the coordinator's /solve over HTTP
// shards answers bit-identically to a single unsharded serve instance given
// the same algorithm.
func TestCoordinatorSolveMatchesUnsharded(t *testing.T) {
	f := newCoordFixture(t, 3, nil)
	un, err := serve.New(serve.Config{Log: f.log, Registry: obsv.NewRegistry()})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	uts := httptest.NewServer(un.Handler())
	t.Cleanup(func() { uts.Close(); un.Close() })

	for _, algo := range []string{"greedy", "consumeattr", "brute"} {
		for _, tuple := range f.tuples[:3] {
			body := solveRequest{Tuple: tuple.String(), M: 4, Algo: algo, TimeoutMS: 10000}
			status, raw := postJSON(t, f.ts.URL+"/solve", body)
			if status != http.StatusOK {
				t.Fatalf("%s: coordinator status %d body %s", algo, status, raw)
			}
			got := decode[solveResponse](t, raw)
			ustatus, uraw := postJSON(t, uts.URL+"/solve", body)
			if ustatus != http.StatusOK {
				t.Fatalf("%s: unsharded status %d body %s", algo, ustatus, uraw)
			}
			var want struct {
				KeptBits  string `json:"kept_bits"`
				Satisfied int    `json:"satisfied"`
				Optimal   bool   `json:"optimal"`
			}
			if err := json.Unmarshal(uraw, &want); err != nil {
				t.Fatalf("decode unsharded: %v", err)
			}
			if got.KeptBits != want.KeptBits || got.Satisfied != want.Satisfied || got.Optimal != want.Optimal {
				t.Errorf("%s %s: coordinator (%s, %d, %v) != unsharded (%s, %d, %v)",
					algo, tuple, got.KeptBits, got.Satisfied, got.Optimal, want.KeptBits, want.Satisfied, want.Optimal)
			}
			if got.Partial {
				t.Errorf("%s: partial with all shards up", algo)
			}
			if got.Shards != 3 || len(got.Responded) != 3 || len(got.Missing) != 0 {
				t.Errorf("%s: shards=%d responded=%v missing=%v", algo, got.Shards, got.Responded, got.Missing)
			}
			if got.Solver != algo || got.Degraded {
				t.Errorf("%s: solver=%q degraded=%v", algo, got.Solver, got.Degraded)
			}
		}
	}
}

func TestCoordinatorValidation(t *testing.T) {
	f := newCoordFixture(t, 2, nil)
	cases := []struct {
		name string
		req  solveRequest
	}{
		{"unknown algo", solveRequest{Tuple: f.tuples[0].String(), M: 2, Algo: "quantum"}},
		{"bad tuple", solveRequest{Tuple: "NotAnAttr,AlsoNot", M: 2}},
		{"wrong width", solveRequest{Tuple: "101", M: 2}},
		{"negative m", solveRequest{Tuple: f.tuples[0].String(), M: -1}},
	}
	for _, tc := range cases {
		status, raw := postJSON(t, f.ts.URL+"/solve", tc.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d body %s", tc.name, status, raw)
		}
		if e := decode[errorResponse](t, raw); e.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
	}
	resp, err := http.Get(f.ts.URL + "/solve")
	if err != nil {
		t.Fatalf("GET /solve: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: status %d", resp.StatusCode)
	}
}

func TestCoordinatorReadyzReportsShardHealth(t *testing.T) {
	f := newCoordFixture(t, 3, nil)
	resp, err := http.Get(f.ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d body %s", resp.StatusCode, raw)
	}
	rz := decode[readyzResponse](t, raw)
	if rz.Status != "ready" || len(rz.Shards) != 3 {
		t.Fatalf("readyz = %+v", rz)
	}
	for i, sh := range rz.Shards {
		if sh.ID != fmt.Sprintf("s%d", i) || sh.State != "closed" {
			t.Errorf("shard %d health = %+v", i, sh)
		}
	}

	// Degraded: trip one shard's breaker manually.
	for i := 0; i < f.srv.cfg.BreakerFailures; i++ {
		f.srv.co.shards[1].br.failure(fmt.Errorf("induced %d", i))
	}
	resp, err = http.Get(f.ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded readyz status %d body %s", resp.StatusCode, raw)
	}
	rz = decode[readyzResponse](t, raw)
	if rz.Status != "degraded" || rz.Shards[1].State != "open" || rz.Shards[1].LastError == "" {
		t.Fatalf("degraded readyz = %+v", rz)
	}

	// Unavailable: every circuit open.
	for _, sh := range f.srv.co.shards {
		for i := 0; i < f.srv.cfg.BreakerFailures; i++ {
			sh.br.failure(fmt.Errorf("induced %d", i))
		}
	}
	resp, err = http.Get(f.ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-open readyz status %d body %s", resp.StatusCode, raw)
	}
}

// TestCoordinatorTracePropagation: a caller-supplied traceparent flows
// through the coordinator into every shard's flight recorder, so one trace
// id joins the whole fan-out.
func TestCoordinatorTracePropagation(t *testing.T) {
	f := newCoordFixture(t, 2, nil)
	tid := obsv.NewTraceID()
	parent := obsv.FormatTraceparent(tid, obsv.NewSpanID())

	body, _ := json.Marshal(solveRequest{Tuple: f.tuples[0].String(), M: 3, Algo: "greedy", TimeoutMS: 10000})
	req, err := http.NewRequest(http.MethodPost, f.ts.URL+"/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Request-Id"); got != tid.String() {
		t.Errorf("X-Request-Id = %q, want %q", got, tid)
	}
	sr := decode[solveResponse](t, raw)
	if sr.TraceID != tid.String() {
		t.Errorf("body trace_id = %q, want %q", sr.TraceID, tid)
	}

	// Coordinator flight record exists and is not partial.
	rec, ok := f.srv.Flight().Find(tid.String())
	if !ok {
		t.Fatal("coordinator flight recorder has no record for the trace")
	}
	if rec.Partial {
		t.Error("full response recorded partial")
	}
	// Every shard served at least one /score under the same trace id: the
	// fan-out is visible end to end.
	for i, ss := range f.shards {
		if _, ok := ss.Flight().Find(tid.String()); !ok {
			t.Errorf("shard %d flight recorder has no record for trace %s", i, tid)
		}
	}
}

// TestCoordinatorPartialFlagInFlight: a down shard yields 200 partial:true,
// and the flight record carries Partial for /debug/requests tailing.
func TestCoordinatorPartialFlagInFlight(t *testing.T) {
	c := fixedCase(t)
	backends := localBackends(t, c.log, 2)
	cfg := testConfig([]Backend{backends[0], failBackend{id: "s1"}}, c.log.Schema)
	cfg.Registry = obsv.NewRegistry()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	status, raw := postJSON(t, ts.URL+"/solve", solveRequest{Tuple: c.tuple.String(), M: c.m, Algo: "greedy", TimeoutMS: 10000})
	if status != http.StatusOK {
		t.Fatalf("partial solve status %d body %s", status, raw)
	}
	sr := decode[solveResponse](t, raw)
	if !sr.Partial || len(sr.Missing) != 1 || sr.Missing[0] != "s1" {
		t.Fatalf("partial=%v missing=%v", sr.Partial, sr.Missing)
	}
	rec, ok := srv.Flight().Find(sr.TraceID)
	if !ok {
		t.Fatal("no flight record for partial response")
	}
	if !rec.Partial {
		t.Error("flight record of a partial response has Partial=false")
	}
	if srv.co.met.partials.Value() == 0 {
		t.Error("partial counter not incremented")
	}
}

// TestCoordinatorShedsUnderOverload: gate capacity 1+0 and a slow shard →
// concurrent requests shed 429 with a well-formed body.
func TestCoordinatorShedsUnderOverload(t *testing.T) {
	c := fixedCase(t)
	backends := localBackends(t, c.log, 1)
	slow := &hookBackend{inner: backends[0], hook: func(ctx context.Context, _ int64) error {
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
		return nil
	}}
	cfg := testConfig([]Backend{slow}, c.log.Schema)
	cfg.MaxConcurrent = 1
	cfg.MaxQueue = 1
	cfg.Registry = obsv.NewRegistry()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	results := make(chan int, 8)
	for i := 0; i < 8; i++ {
		go func() {
			status, _ := postJSON(t, ts.URL+"/solve", solveRequest{Tuple: c.tuple.String(), M: c.m, TimeoutMS: 10000})
			results <- status
		}()
	}
	shed := 0
	for i := 0; i < 8; i++ {
		switch status := <-results; status {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected status %d under overload", status)
		}
	}
	if shed == 0 {
		t.Error("8 concurrent requests against capacity 2 shed nothing")
	}
	if srv.co.met.shed.Value() != int64(shed) {
		t.Errorf("shed counter %d, observed %d", srv.co.met.shed.Value(), shed)
	}
}
