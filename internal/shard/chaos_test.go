package shard

// Chaos suite for the sharded deployment (acceptance criteria of DESIGN.md
// §15): a coordinator over HTTP shards with one shard killed and restored
// mid-storm. Invariants:
//
//  1. Shard loss is never a 5xx: every response is 200 or 429.
//  2. Every 200 is well-formed, and is bit-identical to the unsharded
//     greedy answer over exactly the shard subset it reports responding —
//     partial:false means the full log, partial:true the surviving subset.
//  3. The dead shard's circuit opens within the retry budget, and after
//     restoration the half-open probe closes it and full (partial:false)
//     answers resume.
//
// `make soak-shard` loops the storm for -soak under -race.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/gen"
	"standout/internal/obsv"
	"standout/internal/serve"
)

var soakFor = flag.Duration("soak", 0, "run the shard chaos storm in a loop for this long (0 = single storm)")

// flakyShard wraps a shard's handler with a kill switch: while down, every
// request is refused with 503 — the same failure shape as a crashed process
// behind a load balancer.
type flakyShard struct {
	h    http.Handler
	down atomic.Bool
}

func (f *flakyShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"shard killed by chaos"}`))
		return
	}
	f.h.ServeHTTP(w, r)
}

// chaosFixture is the storm deployment: two HTTP shards (shard 1 killable)
// under one coordinator, plus the expected greedy answer for every tuple,
// budget, and responding-shard subset.
type chaosFixture struct {
	srv      *Server
	ts       *httptest.Server
	kill     *flakyShard
	tuples   []bitvec.Vector
	expected map[string]core.Solution // "subset|tuple|m" → unsharded greedy
}

func expectKey(responded []string, tuple string, m int) string {
	r := append([]string(nil), responded...)
	sort.Strings(r)
	return strings.Join(r, ",") + "|" + tuple + "|" + fmt.Sprint(m)
}

func newChaosFixture(t *testing.T, seed int64) *chaosFixture {
	t.Helper()
	tab := gen.Cars(seed, 150)
	log := gen.RealWorkload(tab, seed+1, 60)
	tuples := gen.PickTuples(tab, seed+2, 6)

	parts, err := Partition(context.Background(), log, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	f := &chaosFixture{tuples: tuples, expected: map[string]core.Solution{}}

	// Expected greedy answers for every responding subset the storm can see.
	subsets := map[string]*dataset.QueryLog{
		"s0":    parts[0],
		"s1":    parts[1],
		"s0,s1": log,
	}
	for name, sl := range subsets {
		for _, tuple := range tuples {
			for m := 2; m <= 3; m++ {
				sol, err := core.ConsumeAttrCumul{}.Solve(core.Instance{Log: sl, Tuple: tuple, M: m})
				if err != nil {
					t.Fatalf("expected solve: %v", err)
				}
				f.expected[name+"|"+tuple.String()+"|"+fmt.Sprint(m)] = sol
			}
		}
	}

	backends := make([]Backend, 2)
	for i, p := range parts {
		ss, err := serve.New(serve.Config{Log: p, Registry: obsv.NewRegistry()})
		if err != nil {
			t.Fatalf("serve.New: %v", err)
		}
		var h http.Handler = ss.Handler()
		if i == 1 {
			f.kill = &flakyShard{h: h}
			h = f.kill
		}
		sts := httptest.NewServer(h)
		t.Cleanup(func() { sts.Close(); ss.Close() })
		backends[i] = NewHTTP(fmt.Sprintf("s%d", i), sts.URL, sts.Client())
	}

	srv, err := NewServer(Config{
		Backends:        backends,
		Schema:          log.Schema,
		Registry:        obsv.NewRegistry(),
		ShardTimeout:    2 * time.Second,
		Retries:         2,
		RetryBackoff:    time.Millisecond,
		HedgeAfter:      20 * time.Millisecond,
		BreakerFailures: 3, // ≤ one request's attempt budget
		BreakerCooloff:  150 * time.Millisecond,
		MaxConcurrent:   8,
		MaxQueue:        32,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	f.srv = srv
	f.ts = httptest.NewServer(srv.Handler())
	t.Cleanup(func() { f.ts.Close(); srv.Close() })
	return f
}

// stormPhase fires clients×perClient greedy solves and checks invariants 1–2
// on every response. It returns how many responses were partial.
func (f *chaosFixture) stormPhase(t *testing.T, seed int64, clients, perClient int) (full, partial int) {
	t.Helper()
	var mu sync.Mutex
	var wg sync.WaitGroup
	client := f.ts.Client()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for i := 0; i < perClient; i++ {
				tuple := f.tuples[rng.Intn(len(f.tuples))]
				m := 2 + rng.Intn(2)
				body, _ := json.Marshal(solveRequest{Tuple: tuple.String(), M: m, Algo: "greedy", TimeoutMS: 10000})
				resp, err := client.Post(f.ts.URL+"/solve", "application/json", strings.NewReader(string(body)))
				if err != nil {
					t.Errorf("POST /solve: %v", err)
					continue
				}
				raw := json.NewDecoder(resp.Body)
				switch resp.StatusCode {
				case http.StatusOK:
					var sr solveResponse
					if err := raw.Decode(&sr); err != nil {
						t.Errorf("malformed 200 body: %v", err)
						resp.Body.Close()
						continue
					}
					want, ok := f.expected[expectKey(sr.Responded, tuple.String(), m)]
					if !ok {
						t.Errorf("200 with unexpected responded set %v", sr.Responded)
					} else if sr.KeptBits != want.Kept.String() || sr.Satisfied != want.Satisfied {
						t.Errorf("responded=%v tuple=%s m=%d: got (%s, %d), want (%s, %d)",
							sr.Responded, tuple, m, sr.KeptBits, sr.Satisfied, want.Kept, want.Satisfied)
					}
					mu.Lock()
					if sr.Partial {
						partial++
					} else {
						full++
					}
					mu.Unlock()
				case http.StatusTooManyRequests:
					var er errorResponse
					if err := raw.Decode(&er); err != nil || er.Error == "" {
						t.Errorf("malformed 429 body: %v", err)
					}
				default:
					// Invariant 1: shard loss must never surface as 5xx.
					t.Errorf("unexpected status %d during storm", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	return full, partial
}

func runShardChaosStorm(t *testing.T, seed int64) {
	f := newChaosFixture(t, seed)

	// Phase 1: all shards up — every answer full and bit-identical.
	full, partial := f.stormPhase(t, seed, 6, 8)
	if full == 0 {
		t.Fatal("healthy phase produced no full answers")
	}
	if partial != 0 {
		t.Errorf("healthy phase produced %d partial answers", partial)
	}

	// Phase 2: kill shard 1 permanently (for this phase). Every answer must
	// still be 200/429, partials exact over s0, and the circuit must open.
	f.kill.down.Store(true)
	_, partial = f.stormPhase(t, seed+100, 6, 8)
	if partial == 0 {
		t.Error("dead-shard phase produced no partial answers")
	}
	h := f.srv.co.Health()
	if h[1].State == "closed" {
		t.Errorf("shard s1 circuit still closed after sustained loss (health %+v)", h)
	}
	if h[1].Trips == 0 {
		t.Error("shard s1 circuit never tripped")
	}

	// Phase 3: restore the shard. After the cooloff the half-open probe must
	// close the circuit and full bit-identical answers must resume.
	f.kill.down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		status, raw := postJSON(t, f.ts.URL+"/solve", solveRequest{
			Tuple: f.tuples[0].String(), M: 2, Algo: "greedy", TimeoutMS: 10000})
		if status != http.StatusOK {
			continue
		}
		sr := decode[solveResponse](t, raw)
		if !sr.Partial {
			want := f.expected[expectKey([]string{"s0", "s1"}, f.tuples[0].String(), 2)]
			if sr.KeptBits != want.Kept.String() || sr.Satisfied != want.Satisfied {
				t.Fatalf("post-recovery full answer (%s, %d) != unsharded (%s, %d)",
					sr.KeptBits, sr.Satisfied, want.Kept, want.Satisfied)
			}
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("shard restored but full answers never resumed")
	}
	full, _ = f.stormPhase(t, seed+200, 4, 6)
	if full == 0 {
		t.Error("post-recovery phase produced no full answers")
	}
	if st := f.srv.co.Health()[1].State; st != "closed" {
		t.Errorf("recovered shard circuit = %q, want closed", st)
	}
	t.Logf("storm: requests=%d partial=%d restarts=%d retries=%d fastfails=%d hedges=%d",
		f.srv.co.met.requests.Value(), f.srv.co.met.partials.Value(), f.srv.co.met.restarts.Value(),
		f.srv.co.met.retries.Value(), f.srv.co.met.fastFails.Value(), f.srv.co.met.hedges.Value())
}

// TestShardChaosStorm is the single-pass acceptance storm.
func TestShardChaosStorm(t *testing.T) {
	runShardChaosStorm(t, 1)
}

// TestSoakShard loops the kill/restore storm for -soak. `make soak-shard`
// runs it for 30s under -race; with the default -soak=0 it skips.
func TestSoakShard(t *testing.T) {
	if *soakFor <= 0 {
		t.Skip("soak disabled; run with -soak=30s (see `make soak-shard`)")
	}
	deadline := time.Now().Add(*soakFor)
	round := int64(0)
	for time.Now().Before(deadline) {
		round++
		runShardChaosStorm(t, round)
	}
	if round == 0 {
		t.Fatal("soak deadline passed without a single round")
	}
	t.Logf("soak: %d rounds", round)
}
