// Package shard implements horizontal scale-out for SOC-CB-QL serving: a
// deterministic query-log partitioner, shard backends (in-process and HTTP),
// and a scatter-gather coordinator whose merged answers are bit-identical to
// the unsharded solvers.
//
// The composition leans on the objective being additive over queries: for any
// candidate compression v, the weighted count of queries retrieving v over a
// partitioned log is the sum of the per-shard counts, and the same holds for
// the co-occurrence counts the greedy solvers rank candidates by. So the
// coordinator runs the solver's control flow itself — candidate generation,
// tie-breaking, the exact-budget shortcut — and treats shards purely as
// additive counting oracles (core.CountSatisfied / core.CountContaining).
// Merging locally-optimal solutions instead would be wrong: a global optimum
// need not be any shard's local optimum.
//
// The robustness layer wraps every scatter call: per-shard deadlines clamped
// from the request deadline, hedged requests after a latency quantile,
// bounded retries with seeded-jitter backoff, and a per-shard circuit
// breaker. Shards lost past that budget degrade the response to an exact
// lower bound over the responding subset — reported as partial, never as a
// 5xx (DESIGN.md §15).
package shard

import (
	"context"
	"fmt"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/fault"
)

// partitionSeed fixes the hash every partitioning uses, so separate processes
// (socserve -shard-of on different hosts) agree on the assignment.
const partitionSeed = 0x70a3d70a3d70a3d7

// ShardOf returns the shard index in [0, n) a query belongs to. The
// assignment hashes the query's attribute set, so duplicate queries (and
// their weights) land on one shard and the per-shard logs stay skew-free for
// typical workloads.
func ShardOf(q bitvec.Vector, n int) int {
	return int(q.Hash64(partitionSeed) % uint64(n))
}

// Partition splits log into n per-shard logs by deterministic query hash,
// preserving weights. Every query lands in exactly one shard, so the shards'
// weighted counts sum to the original log's for any counting oracle.
func Partition(ctx context.Context, log *dataset.QueryLog, n int) ([]*dataset.QueryLog, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: partition into %d shards", n)
	}
	if err := log.Validate(); err != nil {
		return nil, fmt.Errorf("shard: partition: %w", err)
	}
	parts := make([]*dataset.QueryLog, n)
	for i := range parts {
		if err := fault.Hit(ctx, "shard.partition"); err != nil {
			return nil, fmt.Errorf("shard: partition: %w", err)
		}
		parts[i] = dataset.NewQueryLog(log.Schema)
	}
	for qi, q := range log.Queries {
		if err := parts[ShardOf(q, n)].AppendWeighted(q, log.Weight(qi)); err != nil {
			return nil, fmt.Errorf("shard: partition: %w", err)
		}
	}
	return parts, nil
}

// PartitionOne builds only shard i of an n-way partition — what a
// `socserve -shard-of i/n` instance serves. PartitionOne(ctx, log, i, n)
// equals Partition(ctx, log, n)[i] for every i.
func PartitionOne(ctx context.Context, log *dataset.QueryLog, i, n int) (*dataset.QueryLog, error) {
	if n <= 0 || i < 0 || i >= n {
		return nil, fmt.Errorf("shard: shard %d of %d is out of range", i, n)
	}
	if err := log.Validate(); err != nil {
		return nil, fmt.Errorf("shard: partition: %w", err)
	}
	if err := fault.Hit(ctx, "shard.partition"); err != nil {
		return nil, fmt.Errorf("shard: partition: %w", err)
	}
	part := dataset.NewQueryLog(log.Schema)
	for qi, q := range log.Queries {
		if ShardOf(q, n) != i {
			continue
		}
		if err := part.AppendWeighted(q, log.Weight(qi)); err != nil {
			return nil, fmt.Errorf("shard: partition: %w", err)
		}
	}
	return part, nil
}
