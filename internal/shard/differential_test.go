package shard

// Differential proof of the scatter-gather merge (DESIGN.md §15): over
// seeded random weighted instances, the coordinator's answer equals the
// corresponding unsharded core solver bit for bit — same kept vector, same
// satisfied weight, same optimality flag — at every shard count, for both
// in-process and HTTP backends. With a shard permanently failing, every
// answer is partial, equals the unsharded solve over the responding shards'
// merged partitions exactly, and never exceeds the full exact optimum.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/obsv"
	"standout/internal/serve"
)

// diffCase is one seeded instance of the differential suite.
type diffCase struct {
	log   *dataset.QueryLog
	tuple bitvec.Vector
	m     int
}

// genCase builds instance i: width 5–10, 6–36 queries pooled so duplicates
// are likely, a third of appends weighted, tuple of 2+ attributes, budget
// 0–4 (crossing the exact-shortcut boundary on small tuples).
func genCase(i int) diffCase {
	r := rand.New(rand.NewSource(int64(i)*7919 + 37))
	width := 5 + r.Intn(6)
	log := dataset.NewQueryLog(dataset.GenericSchema(width))
	size := 6 + r.Intn(30)
	pool := make([]bitvec.Vector, 2+r.Intn(6))
	for p := range pool {
		q := bitvec.New(width)
		k := 1 + r.Intn(4)
		for q.Count() < k {
			q.Set(r.Intn(width))
		}
		pool[p] = q
	}
	for j := 0; j < size; j++ {
		w := 1
		if j%3 == 0 {
			w = 1 + r.Intn(5)
		}
		if err := log.AppendWeighted(pool[r.Intn(len(pool))], w); err != nil {
			panic(err)
		}
	}
	tuple := bitvec.New(width)
	for tuple.Count() < 2+r.Intn(width-1) {
		tuple.Set(r.Intn(width))
	}
	return diffCase{log: log, tuple: tuple, m: r.Intn(5)}
}

// diffAlgos pairs each coordinator algo with its core reference solver.
var diffAlgos = []struct {
	name   string
	solver core.Solver
}{
	{"greedy", core.ConsumeAttrCumul{}},
	{"consumeattrcumul", core.ConsumeAttrCumul{}},
	{"consumeattr", core.ConsumeAttr{}},
	{"brute", core.BruteForce{}},
}

// testConfig is the deterministic coordinator config for differential runs:
// no hedging, no retries, no breaker interference.
func testConfig(backends []Backend, schema *dataset.Schema) Config {
	return Config{
		Backends:        backends,
		Schema:          schema,
		Registry:        obsv.NewRegistry(),
		DisableHedge:    true,
		Retries:         -1,
		ShardTimeout:    time.Minute,
		BreakerFailures: 1 << 30,
	}
}

// localBackends partitions log n ways into in-process shards.
func localBackends(t *testing.T, log *dataset.QueryLog, n int) []Backend {
	t.Helper()
	parts, err := Partition(context.Background(), log, n)
	if err != nil {
		t.Fatalf("Partition(%d): %v", n, err)
	}
	backends := make([]Backend, n)
	for i, p := range parts {
		l, err := NewLocal(context.Background(), fmt.Sprintf("s%d", i), p)
		if err != nil {
			t.Fatalf("NewLocal: %v", err)
		}
		backends[i] = l
	}
	return backends
}

func checkIdentical(t *testing.T, label string, got Result, want core.Solution) {
	t.Helper()
	if !got.Solution.Kept.Equal(want.Kept) {
		t.Errorf("%s: kept %s, unsharded %s", label, got.Solution.Kept, want.Kept)
	}
	if got.Solution.Satisfied != want.Satisfied {
		t.Errorf("%s: satisfied %d, unsharded %d", label, got.Solution.Satisfied, want.Satisfied)
	}
	if got.Solution.Optimal != want.Optimal {
		t.Errorf("%s: optimal %v, unsharded %v", label, got.Solution.Optimal, want.Optimal)
	}
	if got.Partial {
		t.Errorf("%s: partial with every shard responding", label)
	}
}

// TestDifferentialLocal: 1000 seeded instances (150 under -short), every
// coordinator algorithm, shard counts 1/2/4/8 — bit-identical to unsharded.
func TestDifferentialLocal(t *testing.T) {
	instances := 1000
	if testing.Short() {
		instances = 150
	}
	for i := 0; i < instances; i++ {
		c := genCase(i)
		algo := diffAlgos[i%len(diffAlgos)]
		want, err := algo.solver.Solve(core.Instance{Log: c.log, Tuple: c.tuple, M: c.m})
		if err != nil {
			t.Fatalf("case %d: unsharded %s: %v", i, algo.name, err)
		}
		for _, n := range []int{1, 2, 4, 8} {
			co, err := New(testConfig(localBackends(t, c.log, n), c.log.Schema))
			if err != nil {
				t.Fatalf("case %d: New: %v", i, err)
			}
			got, err := co.Solve(context.Background(), c.tuple, c.m, algo.name)
			if err != nil {
				t.Fatalf("case %d n=%d %s: %v", i, n, algo.name, err)
			}
			checkIdentical(t, fmt.Sprintf("case %d n=%d %s", i, n, algo.name), got, want)
		}
	}
}

// TestDifferentialAllAlgosAllCounts runs every algo (not one per case) on a
// smaller instance set, catching algo-specific merge bugs the rotation in
// TestDifferentialLocal could mask.
func TestDifferentialAllAlgosAllCounts(t *testing.T) {
	instances := 60
	if testing.Short() {
		instances = 20
	}
	for i := 0; i < instances; i++ {
		c := genCase(100000 + i)
		for _, algo := range diffAlgos {
			want, err := algo.solver.Solve(core.Instance{Log: c.log, Tuple: c.tuple, M: c.m})
			if err != nil {
				t.Fatalf("case %d: unsharded %s: %v", i, algo.name, err)
			}
			for _, n := range []int{2, 4} {
				co, err := New(testConfig(localBackends(t, c.log, n), c.log.Schema))
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				got, err := co.Solve(context.Background(), c.tuple, c.m, algo.name)
				if err != nil {
					t.Fatalf("case %d n=%d %s: %v", i, n, algo.name, err)
				}
				checkIdentical(t, fmt.Sprintf("case %d n=%d %s", i, n, algo.name), got, want)
			}
		}
	}
}

// httpShards spins up real serve.Server instances (one per partition) behind
// httptest and returns HTTP backends speaking the /score protocol to them.
func httpShards(t *testing.T, log *dataset.QueryLog, n int) []Backend {
	t.Helper()
	parts, err := Partition(context.Background(), log, n)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	backends := make([]Backend, n)
	for i, p := range parts {
		srv, err := serve.New(serve.Config{Log: p, Registry: obsv.NewRegistry()})
		if err != nil {
			t.Fatalf("serve.New: %v", err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		backends[i] = NewHTTP(fmt.Sprintf("s%d", i), ts.URL, ts.Client())
	}
	return backends
}

// TestDifferentialHTTP: the same bit-identity over real HTTP shards running
// the internal/serve /score protocol.
func TestDifferentialHTTP(t *testing.T) {
	instances := 30
	if testing.Short() {
		instances = 8
	}
	for i := 0; i < instances; i++ {
		c := genCase(200000 + i)
		algo := diffAlgos[i%len(diffAlgos)]
		want, err := algo.solver.Solve(core.Instance{Log: c.log, Tuple: c.tuple, M: c.m})
		if err != nil {
			t.Fatalf("case %d: unsharded %s: %v", i, algo.name, err)
		}
		co, err := New(testConfig(httpShards(t, c.log, 3), c.log.Schema))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		got, err := co.Solve(context.Background(), c.tuple, c.m, algo.name)
		if err != nil {
			t.Fatalf("case %d %s: %v", i, algo.name, err)
		}
		checkIdentical(t, fmt.Sprintf("http case %d %s", i, algo.name), got, want)
		// The HTTP schema bootstrap agrees with the source schema.
		if i == 0 {
			schema, err := backends0Schema(co)
			if err != nil {
				t.Fatalf("Schema: %v", err)
			}
			if schema.Width() != c.log.Schema.Width() {
				t.Errorf("schema width %d, want %d", schema.Width(), c.log.Schema.Width())
			}
		}
	}
}

func backends0Schema(co *Coordinator) (*dataset.Schema, error) {
	h, ok := co.shards[0].be.(*HTTP)
	if !ok {
		return nil, errors.New("not an HTTP backend")
	}
	return h.Schema(context.Background())
}

// failBackend wraps a Backend and fails every call.
type failBackend struct {
	id string
}

func (f failBackend) ID() string { return f.id }
func (f failBackend) Score(context.Context, Mode, []bitvec.Vector) ([]int, error) {
	return nil, errors.New("injected: shard down")
}

// mergeParts rebuilds the unsharded log a responding shard subset holds.
func mergeParts(t *testing.T, schema *dataset.Schema, parts []*dataset.QueryLog) *dataset.QueryLog {
	t.Helper()
	merged := dataset.NewQueryLog(schema)
	for _, p := range parts {
		for qi, q := range p.Queries {
			if err := merged.AppendWeighted(q, p.Weight(qi)); err != nil {
				t.Fatalf("merge: %v", err)
			}
		}
	}
	return merged
}

// TestDifferentialPartialLoss: with one of four shards permanently failing,
// every answer is partial, bit-identical to the unsharded solve over the
// three responding partitions, and never above the full exact optimum.
func TestDifferentialPartialLoss(t *testing.T) {
	instances := 120
	if testing.Short() {
		instances = 30
	}
	for i := 0; i < instances; i++ {
		c := genCase(300000 + i)
		algo := diffAlgos[i%len(diffAlgos)]
		parts, err := Partition(context.Background(), c.log, 4)
		if err != nil {
			t.Fatalf("Partition: %v", err)
		}
		down := i % 4
		backends := make([]Backend, 4)
		var respParts []*dataset.QueryLog
		for si, p := range parts {
			if si == down {
				backends[si] = failBackend{id: fmt.Sprintf("s%d", si)}
				continue
			}
			l, err := NewLocal(context.Background(), fmt.Sprintf("s%d", si), p)
			if err != nil {
				t.Fatalf("NewLocal: %v", err)
			}
			backends[si] = l
			respParts = append(respParts, p)
		}
		co, err := New(testConfig(backends, c.log.Schema))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		got, err := co.Solve(context.Background(), c.tuple, c.m, algo.name)
		if err != nil {
			t.Fatalf("case %d %s: %v", i, algo.name, err)
		}
		if !got.Partial {
			t.Fatalf("case %d: shard %d down but response not partial", i, down)
		}
		if len(got.Missing) != 1 || got.Missing[0] != fmt.Sprintf("s%d", down) {
			t.Errorf("case %d: missing = %v, want [s%d]", i, got.Missing, down)
		}
		if len(got.Responded) != 3 {
			t.Errorf("case %d: responded = %v", i, got.Responded)
		}

		// Exact over the responding subset: identical to unsharded on the
		// merged surviving partitions.
		sub := mergeParts(t, c.log.Schema, respParts)
		want, err := algo.solver.Solve(core.Instance{Log: sub, Tuple: c.tuple, M: c.m})
		if err != nil {
			t.Fatalf("case %d: subset solve: %v", i, err)
		}
		if !got.Solution.Kept.Equal(want.Kept) || got.Solution.Satisfied != want.Satisfied || got.Solution.Optimal != want.Optimal {
			t.Errorf("case %d %s: partial (%s, %d, %v) != subset unsharded (%s, %d, %v)",
				i, algo.name, got.Solution.Kept, got.Solution.Satisfied, got.Solution.Optimal,
				want.Kept, want.Satisfied, want.Optimal)
		}

		// Lower bound: never above the full exact optimum.
		full, err := core.BruteForce{}.Solve(core.Instance{Log: c.log, Tuple: c.tuple, M: c.m})
		if err != nil {
			t.Fatalf("case %d: full brute: %v", i, err)
		}
		if got.Solution.Satisfied > full.Satisfied {
			t.Errorf("case %d: partial satisfied %d exceeds full exact %d", i, got.Solution.Satisfied, full.Satisfied)
		}
	}
}
