package shard

import (
	"strings"

	"standout/internal/obsv"
)

// metrics is the coordinator's instrument set, registered get-or-create so
// multiple coordinators in one process share counters. Per-shard breaker
// states are gauges named by shard id (the registry has no label support):
// 0 = closed, 1 = half-open, 2 = open.
type metrics struct {
	requests    *obsv.Counter
	partials    *obsv.Counter
	degraded    *obsv.Counter
	failures    *obsv.Counter
	timeouts    *obsv.Counter
	shed        *obsv.Counter
	restarts    *obsv.Counter
	shardCalls  *obsv.Counter
	shardErrors *obsv.Counter
	retries     *obsv.Counter
	hedges      *obsv.Counter
	hedgeWins   *obsv.Counter
	trips       *obsv.Counter
	fastFails   *obsv.Counter
	latency     *obsv.Histogram
}

func newMetrics(r *obsv.Registry) *metrics {
	return &metrics{
		requests: r.Counter("standout_shard_requests_total",
			"Coordinated solve requests accepted for parsing."),
		partials: r.Counter("standout_shard_partial_total",
			"Responses computed over a reduced shard set (exact lower bounds)."),
		degraded: r.Counter("standout_shard_degraded_total",
			"Responses served by a cheaper algorithm than requested (budget ladder)."),
		failures: r.Counter("standout_shard_failures_total",
			"Requests answered 5xx (every shard lost, or coordinator faults)."),
		timeouts: r.Counter("standout_shard_timeouts_total",
			"Requests whose whole deadline budget expired (504)."),
		shed: r.Counter("standout_shard_shed_total",
			"Requests rejected with 429 because the admission queue was full."),
		restarts: r.Counter("standout_shard_solve_restarts_total",
			"Solves restarted over a reduced shard set after mid-request shard loss."),
		shardCalls: r.Counter("standout_shard_calls_total",
			"Scatter attempts dispatched to shard backends (including hedges and retries)."),
		shardErrors: r.Counter("standout_shard_call_errors_total",
			"Scatter attempts that failed."),
		retries: r.Counter("standout_shard_retries_total",
			"Scatter attempts beyond a call's first (backoff retries)."),
		hedges: r.Counter("standout_shard_hedges_total",
			"Hedge requests launched after the per-shard latency quantile."),
		hedgeWins: r.Counter("standout_shard_hedge_wins_total",
			"Hedge requests that answered before the primary."),
		trips: r.Counter("standout_shard_breaker_trips_total",
			"Circuit-breaker transitions into the open state."),
		fastFails: r.Counter("standout_shard_breaker_fastfail_total",
			"Calls failed immediately because a shard's circuit was open."),
		latency: r.Histogram("standout_shard_request_seconds",
			"Wall time of one coordinated solve request.", nil),
	}
}

// gaugeName derives a per-shard metric name from the shard id, sanitized to
// the Prometheus name alphabet.
func gaugeName(id string) string {
	var sb strings.Builder
	sb.WriteString("standout_shard_breaker_state_")
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
