package shard

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"standout/internal/core"
	"standout/internal/dataset"
)

// TestEstimateAlgoSoundAcrossPartitions: the coordinator's two-scatter
// estimate rung, over every shard count, picks the same kept set as the
// unsharded core.Estimate solver (the selection rule is shared) and returns
// a certified interval containing the exact weighted Satisfied count of the
// union log. Itemset supports are additive across disjoint partitions, so
// sharding must never cost soundness — only tightness.
func TestEstimateAlgoSoundAcrossPartitions(t *testing.T) {
	instances := 60
	if testing.Short() {
		instances = 12
	}
	for i := 0; i < instances; i++ {
		c := genCase(i)
		want, err := (core.Estimate{}).Solve(core.Instance{Log: c.log, Tuple: c.tuple, M: c.m})
		if err != nil {
			t.Fatalf("case %d: unsharded estimate: %v", i, err)
		}
		exact := c.log.Satisfied(want.Kept)
		for _, shards := range []int{1, 2, 4} {
			co, err := New(testConfig(localBackends(t, c.log, shards), c.log.Schema))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			got, err := co.Solve(context.Background(), c.tuple, c.m, "estimate")
			if err != nil {
				t.Fatalf("case %d/%d shards: %v", i, shards, err)
			}
			if !got.Solution.Estimated {
				// The whole tuple fit the budget: the coordinator's exact
				// shortcut answers before any rung — it must then be exact.
				if c.m < c.tuple.Count() || !got.Solution.Optimal {
					t.Fatalf("case %d/%d shards: unestimated non-shortcut answer %+v", i, shards, got.Solution)
				}
				if want := c.log.Satisfied(got.Solution.Kept); got.Solution.Satisfied != want {
					t.Fatalf("case %d/%d shards: shortcut satisfied %d ≠ exact %d", i, shards, got.Solution.Satisfied, want)
				}
				continue
			}
			if !got.Solution.Kept.Equal(want.Kept) {
				t.Fatalf("case %d/%d shards: kept %s, unsharded %s", i, shards, got.Solution.Kept, want.Kept)
			}
			lo, hi := got.Solution.EstLo, got.Solution.EstHi
			if exact < lo || exact > hi {
				t.Fatalf("case %d/%d shards: interval [%d,%d] misses exact %d", i, shards, lo, hi, exact)
			}
			if p := got.Solution.Satisfied; p < lo || p > hi {
				t.Fatalf("case %d/%d shards: point %d outside [%d,%d]", i, shards, p, lo, hi)
			}
			if lo < 0 || hi > c.log.TotalWeight() {
				t.Fatalf("case %d/%d shards: interval [%d,%d] outside [0,%d]", i, shards, lo, hi, c.log.TotalWeight())
			}
		}
	}
}

// TestEstimateBudgetLadderDegradesToEstimate: when the remaining deadline
// sits below GreedyBudget, every requested rung — exact and greedy alike —
// degrades to the two-scatter estimate instead of failing the request.
func TestEstimateBudgetLadderDegradesToEstimate(t *testing.T) {
	c := fixedCase(t)
	cfg := testConfig(localBackends(t, c.log, 2), c.log.Schema)
	cfg.ExactBudget = time.Hour
	cfg.GreedyBudget = time.Hour // greedy never fits either
	co, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, algo := range []string{"brute", "greedy", "consumeattr"} {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		got, err := co.Solve(ctx, c.tuple, c.m, algo)
		cancel()
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !got.Degraded || got.Solver != "estimate" || !got.Solution.Estimated {
			t.Fatalf("%s: degraded=%v solver=%q estimated=%v, want estimate rung",
				algo, got.Degraded, got.Solver, got.Solution.Estimated)
		}
		if exact := c.log.Satisfied(got.Solution.Kept); exact < got.Solution.EstLo || exact > got.Solution.EstHi {
			t.Fatalf("%s: interval [%d,%d] misses exact %d", algo, got.Solution.EstLo, got.Solution.EstHi, exact)
		}
	}
	// Without a deadline nothing degrades: the requested rung runs exactly.
	got, err := co.Solve(context.Background(), c.tuple, c.m, "greedy")
	if err != nil || got.Degraded || got.Solution.Estimated {
		t.Fatalf("no-deadline greedy: degraded=%v estimated=%v err=%v", got.Degraded, got.Solution.Estimated, err)
	}
}

// TestEstimateHTTPCarriesBounds: the coordinator's /solve surfaces the
// estimate rung's marker and interval through the HTTP tier, sound against
// the union log.
func TestEstimateHTTPCarriesBounds(t *testing.T) {
	f := newCoordFixture(t, 3, nil)
	tuple := f.tuples[0]
	status, raw := postJSON(t, f.ts.URL+"/solve",
		solveRequest{Tuple: tuple.String(), M: 4, Algo: "estimate", TimeoutMS: 5000})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	resp := decode[solveResponse](t, raw)
	if resp.Solver != "estimate" || !resp.Estimated {
		t.Fatalf("solver %q estimated %v, want estimate/true", resp.Solver, resp.Estimated)
	}
	kept, err := dataset.ParseTuple(f.log.Schema, resp.KeptBits)
	if err != nil {
		t.Fatalf("parse kept_bits %q: %v", resp.KeptBits, err)
	}
	exact := f.log.Satisfied(kept)
	if exact < resp.EstLo || exact > resp.EstHi {
		t.Fatalf("interval [%d,%d] misses exact %d", resp.EstLo, resp.EstHi, exact)
	}
	if resp.Satisfied < resp.EstLo || resp.Satisfied > resp.EstHi {
		t.Fatalf("point %d outside interval [%d,%d]", resp.Satisfied, resp.EstLo, resp.EstHi)
	}
	// Exact rungs over the same fixture stay unmarked: no estimate leakage.
	status, raw = postJSON(t, f.ts.URL+"/solve",
		solveRequest{Tuple: tuple.String(), M: 4, Algo: "greedy", TimeoutMS: 5000})
	if status != http.StatusOK {
		t.Fatalf("greedy status %d, body %s", status, raw)
	}
	if g := decode[solveResponse](t, raw); g.Estimated || g.EstLo != 0 || g.EstHi != 0 {
		t.Fatalf("greedy response carries estimate fields: %+v", g)
	}
}

// TestEstimateSurvivesShardLoss: losing a shard mid-request restarts the
// estimate over the survivors; the interval is then certified against the
// surviving partitions' union, exactly like exact partial results.
func TestEstimateSurvivesShardLoss(t *testing.T) {
	c := fixedCase(t)
	backends := localBackends(t, c.log, 3)
	lossy := &hookBackend{inner: backends[2], hook: func(_ context.Context, _ int64) error {
		return errors.New("shard down") // this shard never answers
	}}
	cfg := testConfig([]Backend{backends[0], backends[1], lossy}, c.log.Schema)
	co, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got, err := co.Solve(context.Background(), c.tuple, c.m, "estimate")
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !got.Partial || got.Restarts == 0 {
		t.Fatalf("partial=%v restarts=%d, want a restarted partial result", got.Partial, got.Restarts)
	}
	// Recount against the union of the two surviving partitions only.
	parts, err := Partition(context.Background(), c.log, 3)
	if err != nil {
		t.Fatal(err)
	}
	survivors := dataset.NewQueryLog(c.log.Schema)
	for _, p := range parts[:2] {
		for qi, q := range p.Queries {
			if err := survivors.AppendWeighted(q, p.Weight(qi)); err != nil {
				t.Fatal(err)
			}
		}
	}
	exact := survivors.Satisfied(got.Solution.Kept)
	if exact < got.Solution.EstLo || exact > got.Solution.EstHi {
		t.Fatalf("survivor interval [%d,%d] misses survivor exact %d", got.Solution.EstLo, got.Solution.EstHi, exact)
	}
}
