package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/estimate"
	"standout/internal/fault"
	"standout/internal/obsv"
)

// Config tunes a Coordinator (and its HTTP Server). The zero value of every
// field selects a sensible default; Backends and Schema are required.
type Config struct {
	// Backends are the shards, one per query-log partition. Order fixes the
	// shard ids reported by readyz and the responded/missing sets.
	Backends []Backend
	// Schema is the serving schema every shard partition shares; the
	// coordinator parses tuples and renders kept-attribute names against it.
	// socserve -shards bootstraps it from a backend's GET /schema.
	Schema *dataset.Schema

	// ShardTimeout clamps each scatter attempt's deadline; the effective
	// per-attempt deadline is min(request deadline, ShardTimeout). Default 1s.
	ShardTimeout time.Duration
	// Retries bounds scatter attempts beyond a call's first; default 2.
	Retries int
	// RetryBackoff is the base backoff between attempts (doubled per attempt,
	// plus up to 100% seeded jitter); default 2ms.
	RetryBackoff time.Duration
	// HedgeAfter is the hedge delay before a shard has latency history;
	// default 25ms. DisableHedge turns hedging off entirely.
	HedgeAfter time.Duration
	// HedgeQuantile is the per-shard latency quantile after which a second
	// identical request is launched (first response wins, the loser is
	// cancelled); default 0.95.
	HedgeQuantile float64
	DisableHedge  bool
	// BreakerFailures is the consecutive-failure threshold that opens a
	// shard's circuit; default 5. BreakerCooloff is the open → half-open
	// delay; default 2s.
	BreakerFailures int
	BreakerCooloff  time.Duration

	// Serving knobs, used by the HTTP Server (NewServer).
	MaxConcurrent  int
	MaxQueue       int
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// ExactBudget is the minimum remaining deadline for which the brute rung
	// is attempted; below it the request degrades to greedy. Default 250ms.
	ExactBudget time.Duration
	// GreedyBudget is the minimum remaining deadline for which the greedy
	// rungs (greedy/consumeattr/consumeattrcumul, and brute already degraded
	// to greedy) are attempted; below it the request degrades to the
	// two-round estimate rung (DESIGN.md §16), whose response carries
	// estimated:true with a certified interval. Default 25ms.
	GreedyBudget time.Duration

	// Seed drives backoff jitter; default 1.
	Seed int64
	// Registry receives the shard metrics; default obsv.Default.
	Registry *obsv.Registry
	// Injector attaches deterministic fault injection to every request.
	Injector *fault.Injector
	// Flight-recorder knobs, mirroring internal/serve.
	FlightSize    int
	SlowThreshold time.Duration
	SampleEvery   int
}

func (c Config) withDefaults() Config {
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 25 * time.Millisecond
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerCooloff <= 0 {
		c.BreakerCooloff = 2 * time.Second
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 16
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.ExactBudget <= 0 {
		c.ExactBudget = 250 * time.Millisecond
	}
	if c.GreedyBudget <= 0 {
		c.GreedyBudget = 25 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Registry == nil {
		c.Registry = obsv.Default
	}
	if c.FlightSize == 0 {
		c.FlightSize = 256
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 500 * time.Millisecond
	}
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
	return c
}

// ErrNoShards reports that no shard could serve any part of the request —
// the only shard-loss shape that surfaces as an error (503) instead of a
// partial result.
var ErrNoShards = errors.New("shard: no shards available")

// shardState is one backend plus its robustness state.
type shardState struct {
	id    string
	be    Backend
	br    *breaker
	lat   *latencyWindow
	gauge *obsv.Gauge
}

func (s *shardState) updateGauge() {
	st, _, _, _, _ := s.br.snapshot()
	s.gauge.Set(float64(st))
}

// Coordinator scatter-gathers solves across shard backends, merging additive
// counts bit-identically to the unsharded solvers.
type Coordinator struct {
	cfg    Config
	shards []*shardState
	met    *metrics

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New validates cfg and builds a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("shard: Config.Backends is required")
	}
	if cfg.Schema == nil {
		return nil, errors.New("shard: Config.Schema is required")
	}
	c := &Coordinator{
		cfg: cfg,
		met: newMetrics(cfg.Registry),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	seen := map[string]bool{}
	for _, be := range cfg.Backends {
		id := be.ID()
		if id == "" || seen[id] {
			return nil, fmt.Errorf("shard: backend id %q is empty or duplicated", id)
		}
		seen[id] = true
		s := &shardState{
			id:    id,
			be:    be,
			br:    newBreaker(cfg.BreakerFailures, cfg.BreakerCooloff),
			lat:   &latencyWindow{},
			gauge: cfg.Registry.Gauge(gaugeName(id), "Circuit state of shard "+id+" (0 closed, 1 half-open, 2 open)."),
		}
		s.updateGauge()
		c.shards = append(c.shards, s)
	}
	return c, nil
}

// Shards returns the shard ids in backend order.
func (c *Coordinator) Shards() []string {
	out := make([]string, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.id
	}
	return out
}

// ShardHealth is one shard's health as the coordinator's readyz reports it.
type ShardHealth struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	LastError string `json:"last_error,omitempty"`
	// Calls counts attempts admitted to the backend (hits); Failures the
	// attempts that failed and Trips the circuit openings (fires).
	Calls    uint64 `json:"calls"`
	Failures uint64 `json:"failures"`
	Trips    uint64 `json:"trips"`
}

// Health snapshots every shard's circuit state, in backend order.
func (c *Coordinator) Health() []ShardHealth {
	out := make([]ShardHealth, len(c.shards))
	for i, s := range c.shards {
		st, lastErr, calls, failures, trips := s.br.snapshot()
		out[i] = ShardHealth{
			ID: s.id, State: st.String(), LastError: lastErr,
			Calls: calls, Failures: failures, Trips: trips,
		}
	}
	return out
}

// Algorithms the coordinator can run distributed. The solvers that need full
// query enumeration (mfi, ilp, consumequeries — the last is tie-broken by
// log order, which partitioning destroys) are deliberately absent: shards
// only ever answer additive counting calls.
var coordinatorAlgos = map[string]bool{
	"brute": true, "greedy": true, "consumeattr": true, "consumeattrcumul": true,
	"estimate": true,
}

// AlgoNames lists the accepted algo values, sorted.
func AlgoNames() []string {
	out := make([]string, 0, len(coordinatorAlgos))
	for n := range coordinatorAlgos {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Result is one coordinated solve.
type Result struct {
	Solution core.Solution
	// Solver names the algorithm that answered; Degraded reports that the
	// budget ladder fell back from the requested one (brute → greedy).
	Solver   string
	Degraded bool
	// Partial reports that at least one shard was excluded: the Solution is
	// the exact answer over the Responded subset — a lower bound on (never
	// above) the full answer. Optimal then refers to that sub-problem.
	Partial   bool
	Responded []string
	Missing   []string
	// Restarts counts mid-request shard losses that forced the solve to rerun
	// over the surviving set (count consistency; DESIGN.md §15).
	Restarts int
}

// shardLoss aborts a solve epoch when shards fail past the retry/hedge
// budget: the coordinator removes them and reruns over the survivors, because
// counts merged across different shard subsets would be additive garbage.
type shardLoss struct {
	lost  []*shardState
	cause error
}

func (e *shardLoss) Error() string {
	return fmt.Sprintf("shard: %d shard(s) lost: %v", len(e.lost), e.cause)
}

// Solve runs one coordinated solve. The answer is bit-identical to the
// corresponding unsharded core solver over the union of the responding
// shards' partitions; when every shard responds that union is the whole log.
func (c *Coordinator) Solve(ctx context.Context, tuple bitvec.Vector, m int, algo string) (Result, error) {
	if algo == "" {
		algo = "greedy"
	}
	if !coordinatorAlgos[algo] {
		return Result{}, fmt.Errorf("shard: unknown algo %q (have %v)", algo, AlgoNames())
	}
	if tuple.Width() != c.cfg.Schema.Width() {
		return Result{}, fmt.Errorf("shard: tuple width %d, schema width %d", tuple.Width(), c.cfg.Schema.Width())
	}
	if m < 0 {
		return Result{}, fmt.Errorf("shard: negative budget m=%d", m)
	}

	// Plan over the shards whose circuit admits traffic right now: open
	// circuits inside their cooloff are excluded up front (their loss is
	// already known), which saves a doomed first epoch.
	var live []*shardState
	for _, s := range c.shards {
		if s.br.available() {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return Result{}, ErrNoShards
	}

	res := Result{}
	for {
		// The budget ladder re-evaluates per epoch: a restart may have eaten
		// the budget that justified brute. Below ExactBudget brute degrades
		// to greedy; below GreedyBudget every rung degrades to the two-round
		// estimate — the cheapest answer the coordinator can still certify.
		used, degraded := algo, false
		if dl, ok := ctx.Deadline(); ok {
			remaining := time.Until(dl)
			if used == "brute" && remaining < c.cfg.ExactBudget {
				used, degraded = "greedy", true
			}
			if used != "estimate" && remaining < c.cfg.GreedyBudget {
				used, degraded = "estimate", true
			}
		}
		sol, err := c.solveOnce(ctx, tuple, m, used, live)
		if err == nil {
			res.Solution = sol
			res.Solver = used
			res.Degraded = degraded
			res.Partial = len(live) < len(c.shards)
			res.Responded = ids(live)
			res.Missing = missingIDs(c.shards, live)
			if tr := obsv.FromContext(ctx); tr != nil {
				tr.Count("shard.responded", int64(len(live)))
				if res.Partial {
					tr.Count("shard.partial", 1)
				}
			}
			return res, nil
		}
		var loss *shardLoss
		if !errors.As(err, &loss) {
			return Result{}, err
		}
		live = subtract(live, loss.lost)
		if len(live) == 0 {
			if ctx.Err() != nil {
				return Result{}, ctx.Err()
			}
			return Result{}, fmt.Errorf("%w: last error: %v", ErrNoShards, loss.cause)
		}
		res.Restarts++
		c.met.restarts.Add(1)
		if tr := obsv.FromContext(ctx); tr != nil {
			tr.Count("shard.restarts", 1)
		}
	}
}

func ids(shards []*shardState) []string {
	out := make([]string, len(shards))
	for i, s := range shards {
		out[i] = s.id
	}
	return out
}

func missingIDs(all, live []*shardState) []string {
	in := map[*shardState]bool{}
	for _, s := range live {
		in[s] = true
	}
	var out []string
	for _, s := range all {
		if !in[s] {
			out = append(out, s.id)
		}
	}
	return out
}

func subtract(live, lost []*shardState) []*shardState {
	drop := map[*shardState]bool{}
	for _, s := range lost {
		drop[s] = true
	}
	var out []*shardState
	for _, s := range live {
		if !drop[s] {
			out = append(out, s)
		}
	}
	return out
}

// solveOnce runs one epoch of the requested algorithm against a fixed shard
// set. Any shard failing a scatter past its retry/hedge budget aborts the
// epoch with *shardLoss. The control flow mirrors the core solvers exactly —
// same candidate order, same tie-breaks — so summed counts reproduce their
// answers bit for bit.
func (c *Coordinator) solveOnce(ctx context.Context, tuple bitvec.Vector, m int, algo string, live []*shardState) (core.Solution, error) {
	width := tuple.Width()
	ones := tuple.Ones()
	em := m
	exact := false
	if em >= len(ones) {
		em = len(ones)
		exact = true
	}
	if exact {
		// The whole tuple fits the budget: one subset count settles it
		// (normalize's shortcut in core).
		cnt, err := c.scatter(ctx, live, Subset, []bitvec.Vector{tuple})
		if err != nil {
			return core.Solution{}, err
		}
		return core.Solution{Kept: tuple.Clone(), Satisfied: cnt[0], Optimal: true}, nil
	}

	switch algo {
	case "brute":
		return c.bruteOnce(ctx, tuple, ones, em, live)
	case "consumeattr":
		return c.consumeAttrOnce(ctx, width, ones, em, live)
	case "estimate":
		return c.estimateOnce(ctx, width, ones, em, live)
	default: // "greedy", "consumeattrcumul"
		return c.cumulOnce(ctx, width, ones, em, live)
	}
}

// freqs fetches the weighted full-log frequency of each candidate attribute:
// superset counts of the singleton vectors, summed across shards.
func (c *Coordinator) freqs(ctx context.Context, width int, ones []int, live []*shardState) (map[int]int, error) {
	sing := make([]bitvec.Vector, len(ones))
	for i, j := range ones {
		sing[i] = bitvec.FromIndices(width, j)
	}
	counts, err := c.scatter(ctx, live, Superset, sing)
	if err != nil {
		return nil, err
	}
	freq := make(map[int]int, len(ones))
	for i, j := range ones {
		freq[j] = counts[i]
	}
	return freq, nil
}

// cumulOnce mirrors core.ConsumeAttrCumul: first pick by frequency, then m-1
// rounds adding the attribute whose full-log co-occurrence with everything
// picked is highest, frequency breaking ties, candidates scanned in
// ascending-attribute order.
func (c *Coordinator) cumulOnce(ctx context.Context, width int, ones []int, em int, live []*shardState) (core.Solution, error) {
	freq, err := c.freqs(ctx, width, ones, live)
	if err != nil {
		return core.Solution{}, err
	}
	remaining := append([]int(nil), ones...)
	var picked []int
	for len(picked) < em {
		scores := make([]int, len(remaining))
		if len(picked) == 0 {
			for i, j := range remaining {
				scores[i] = freq[j]
			}
		} else {
			cands := make([]bitvec.Vector, len(remaining))
			for i, j := range remaining {
				cands[i] = bitvec.FromIndices(width, append(append([]int(nil), picked...), j)...)
			}
			scores, err = c.scatter(ctx, live, Superset, cands)
			if err != nil {
				return core.Solution{}, err
			}
		}
		bestIdx, bestScore, bestFreq := -1, -1, -1
		for i, j := range remaining {
			if s := scores[i]; s > bestScore || (s == bestScore && freq[j] > bestFreq) {
				bestIdx, bestScore, bestFreq = i, s, freq[j]
			}
		}
		picked = append(picked, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	kept := bitvec.FromIndices(width, picked...)
	cnt, err := c.scatter(ctx, live, Subset, []bitvec.Vector{kept})
	if err != nil {
		return core.Solution{}, err
	}
	return core.Solution{Kept: kept, Satisfied: cnt[0]}, nil
}

// consumeAttrOnce mirrors core.ConsumeAttr: the em individually most
// frequent tuple attributes, ties to the lower index (stable sort).
func (c *Coordinator) consumeAttrOnce(ctx context.Context, width int, ones []int, em int, live []*shardState) (core.Solution, error) {
	freq, err := c.freqs(ctx, width, ones, live)
	if err != nil {
		return core.Solution{}, err
	}
	sorted := append([]int(nil), ones...)
	sort.SliceStable(sorted, func(a, b int) bool { return freq[sorted[a]] > freq[sorted[b]] })
	kept := bitvec.FromIndices(width, sorted[:em]...)
	cnt, err := c.scatter(ctx, live, Subset, []bitvec.Vector{kept})
	if err != nil {
		return core.Solution{}, err
	}
	return core.Solution{Kept: kept, Satisfied: cnt[0]}, nil
}

// estimateOnce is the coordinator's shed-of-last-resort rung (DESIGN.md
// §16): exactly two scatter rounds regardless of the budget m, then a local
// LP. Round one gathers the total weight (superset count of the empty
// vector) and every attribute's full-log frequency; selection is then the
// ConsumeAttr rule on those additive frequencies — bit-identical to
// core.Estimate's Keep on an unsharded model, since frequencies sum across
// shards. Round two gathers the pairwise supports of the heaviest dropped
// attributes, and estimate.NewModel + Estimate turn them into a certified
// interval. The interval is generally looser than the unsharded estimator's
// (no mining-completeness certificate, pairs only) but is sound against the
// union of the live shards' partitions.
func (c *Coordinator) estimateOnce(ctx context.Context, width int, ones []int, em int, live []*shardState) (core.Solution, error) {
	cands := make([]bitvec.Vector, 0, width+1)
	cands = append(cands, bitvec.New(width)) // ⊆ every query: total weight
	for j := 0; j < width; j++ {
		cands = append(cands, bitvec.FromIndices(width, j))
	}
	counts, err := c.scatter(ctx, live, Superset, cands)
	if err != nil {
		return core.Solution{}, err
	}
	total, sing := counts[0], counts[1:]

	sorted := append([]int(nil), ones...)
	sort.SliceStable(sorted, func(a, b int) bool { return sing[sorted[a]] > sing[sorted[b]] })
	kept := bitvec.FromIndices(width, sorted[:em]...)

	// The heaviest dropped attributes get joint treatment: their pairwise
	// supports are one more scatter of C(k,2) superset counts.
	var dropped []int
	for j := 0; j < width; j++ {
		if !kept.Get(j) && sing[j] > 0 {
			dropped = append(dropped, j)
		}
	}
	sort.SliceStable(dropped, func(a, b int) bool { return sing[dropped[a]] > sing[dropped[b]] })
	if len(dropped) > estimate.DefaultMaxAtomAttrs {
		dropped = dropped[:estimate.DefaultMaxAtomAttrs]
	}
	var pairs []bitvec.Vector
	for i := 0; i < len(dropped); i++ {
		for j := i + 1; j < len(dropped); j++ {
			pairs = append(pairs, bitvec.FromIndices(width, dropped[i], dropped[j]))
		}
	}
	var known []estimate.ItemsetSupport
	if len(pairs) > 0 {
		pcounts, err := c.scatter(ctx, live, Superset, pairs)
		if err != nil {
			return core.Solution{}, err
		}
		known = make([]estimate.ItemsetSupport, len(pairs))
		for i, p := range pairs {
			known[i] = estimate.ItemsetSupport{Items: p, Support: pcounts[i]}
		}
	}

	model, err := estimate.NewModel(width, total, sing, known, estimate.Options{})
	if err != nil {
		return core.Solution{}, err
	}
	iv, err := model.Estimate(ctx, kept)
	if err != nil {
		return core.Solution{}, err
	}
	return core.Solution{
		Kept:      kept,
		Satisfied: iv.Point,
		Estimated: true,
		EstLo:     iv.Lo,
		EstHi:     iv.Hi,
	}, nil
}

// bruteBatch bounds candidates per scatter round — large enough to amortize
// the round trip, small enough to keep per-shard work slices preemptible.
const bruteBatch = 256

// bruteOnce mirrors core.BruteForce: lexicographic enumeration of the
// em-combinations of the tuple's attributes, first maximum wins (strict
// improvement), batched into scatter rounds of subset counts.
func (c *Coordinator) bruteOnce(ctx context.Context, tuple bitvec.Vector, ones []int, em int, live []*shardState) (core.Solution, error) {
	width := tuple.Width()
	if em == 0 {
		kept := bitvec.FromIndices(width)
		cnt, err := c.scatter(ctx, live, Subset, []bitvec.Vector{kept})
		if err != nil {
			return core.Solution{}, err
		}
		sol := core.Solution{Kept: kept, Satisfied: cnt[0], Optimal: true}
		sol.Stats.Candidates = 1
		return sol, nil
	}

	best := core.Solution{}
	first := true
	candidates := 0
	var batch []bitvec.Vector
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		counts, err := c.scatter(ctx, live, Subset, batch)
		if err != nil {
			return err
		}
		for i, sat := range counts {
			candidates++
			if first || sat > best.Satisfied {
				best.Kept = batch[i]
				best.Satisfied = sat
				first = false
			}
		}
		batch = batch[:0]
		return nil
	}

	comb := make([]int, em)
	attrs := make([]int, em)
	var rec func(start, depth int) error
	rec = func(start, depth int) error {
		if depth == em {
			for i, idx := range comb {
				attrs[i] = ones[idx]
			}
			batch = append(batch, bitvec.FromIndices(width, attrs...))
			if len(batch) >= bruteBatch {
				return flush()
			}
			return nil
		}
		for i := start; i <= len(ones)-(em-depth); i++ {
			comb[depth] = i
			if err := rec(i+1, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return core.Solution{}, err
	}
	if err := flush(); err != nil {
		return core.Solution{}, err
	}
	best.Optimal = true
	best.Stats.Candidates = candidates
	return best, nil
}

// scatter fans one counting call across the live shards and sums the
// per-shard results. Shards failing past their retry/hedge budget abort the
// round with *shardLoss (unless every shard failed, which is terminal).
func (c *Coordinator) scatter(ctx context.Context, live []*shardState, mode Mode, cands []bitvec.Vector) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type sres struct {
		counts []int
		err    error
	}
	results := make([]sres, len(live))
	var wg sync.WaitGroup
	for i, s := range live {
		wg.Add(1)
		go func(i int, s *shardState) {
			defer wg.Done()
			counts, err := c.callShard(ctx, s, mode, cands)
			results[i] = sres{counts, err}
		}(i, s)
	}
	wg.Wait()

	sums := make([]int, len(cands))
	var lost []*shardState
	var lastErr error
	for i, r := range results {
		if r.err != nil {
			lost = append(lost, live[i])
			lastErr = r.err
			continue
		}
		for ci, n := range r.counts {
			sums[ci] += n
		}
	}
	if len(lost) == 0 {
		return sums, nil
	}
	if tr := obsv.FromContext(ctx); tr != nil {
		for _, s := range lost {
			tr.Event("shard.lost."+s.id, 1)
		}
	}
	if len(lost) == len(live) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return nil, &shardLoss{lost: lost, cause: lastErr}
}

// callShard runs one scatter call against one shard under the full
// robustness stack: circuit breaker, per-attempt deadline clamp, bounded
// retries with seeded-jitter backoff, and a hedge per attempt.
func (c *Coordinator) callShard(ctx context.Context, s *shardState, mode Mode, cands []bitvec.Vector) ([]int, error) {
	if !s.br.allow() {
		c.met.fastFails.Add(1)
		return nil, fmt.Errorf("shard %s: circuit open", s.id)
	}
	defer s.updateGauge()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.met.retries.Add(1)
			if tr := obsv.FromContext(ctx); tr != nil {
				tr.Count("shard.retries", 1)
			}
			if err := sleepCtx(ctx, c.backoffFor(attempt)); err != nil {
				return nil, err
			}
			// Each retry is a fresh admission decision: the breaker may have
			// opened on this very call's earlier attempts.
			if !s.br.allow() {
				c.met.fastFails.Add(1)
				return nil, fmt.Errorf("shard %s: circuit open after %d attempts: %w", s.id, attempt, errOrInjected(lastErr))
			}
		}
		counts, err := c.attempt(ctx, s, mode, cands)
		if err == nil {
			s.br.success()
			s.updateGauge()
			return counts, nil
		}
		lastErr = err
		s.br.failure(err)
		s.updateGauge()
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if attempt >= c.cfg.Retries {
			return nil, lastErr
		}
	}
}

func errOrInjected(err error) error {
	if err == nil {
		return errors.New("no prior attempt")
	}
	return err
}

// attempt runs one (possibly hedged) shard call under the per-attempt
// deadline clamp. The hedge launches after the shard's recent latency
// quantile (or the configured cold-start delay); the first response wins and
// the loser's context is cancelled.
func (c *Coordinator) attempt(ctx context.Context, s *shardState, mode Mode, cands []bitvec.Vector) ([]int, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()

	type ares struct {
		counts []int
		err    error
		d      time.Duration
		hedged bool
	}
	ch := make(chan ares, 2)
	launch := func(hedged bool) {
		go func() {
			start := time.Now()
			counts, err := c.invoke(actx, s, mode, cands)
			ch <- ares{counts, err, time.Since(start), hedged}
		}()
	}

	launch(false)
	launched := 1
	hedgeC := (<-chan time.Time)(nil)
	var hedgeTimer *time.Timer
	if !c.cfg.DisableHedge {
		hedgeTimer = time.NewTimer(c.hedgeDelay(s))
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	var lastErr error
	for received := 0; received < launched; {
		select {
		case r := <-ch:
			received++
			if r.err == nil {
				s.lat.observe(r.d)
				if r.hedged {
					c.met.hedgeWins.Add(1)
					if tr := obsv.FromContext(actx); tr != nil {
						tr.Count("shard.hedge_wins", 1)
					}
				}
				cancel() // first response wins; the loser is cancelled
				return r.counts, nil
			}
			lastErr = r.err
		case <-hedgeC:
			hedgeC = nil
			if launched < 2 {
				launched++
				c.met.hedges.Add(1)
				if tr := obsv.FromContext(actx); tr != nil {
					tr.Count("shard.hedges", 1)
				}
				launch(true)
			}
		case <-actx.Done():
			// Deadline or caller cancellation: in-flight goroutines resolve
			// into the buffered channel and are garbage collected.
			return nil, actx.Err()
		}
	}
	return nil, lastErr
}

// invoke is the innermost shard call, carrying the fault sites every backend
// kind shares: shard.slow (delay rules here exercise hedging) and shard.solve
// (error rules exercise retries and the breaker).
func (c *Coordinator) invoke(ctx context.Context, s *shardState, mode Mode, cands []bitvec.Vector) ([]int, error) {
	c.met.shardCalls.Add(1)
	var sp obsv.Span
	if tr := obsv.FromContext(ctx); tr != nil {
		sp = tr.StartSpan("shard." + s.id)
		defer sp.End()
	}
	if err := fault.Hit(ctx, "shard.slow"); err != nil {
		c.met.shardErrors.Add(1)
		return nil, fmt.Errorf("shard %s: %w", s.id, err)
	}
	if err := fault.Hit(ctx, "shard.solve"); err != nil {
		c.met.shardErrors.Add(1)
		return nil, fmt.Errorf("shard %s: %w", s.id, err)
	}
	counts, err := s.be.Score(ctx, mode, cands)
	if err != nil {
		c.met.shardErrors.Add(1)
		return nil, err
	}
	if len(counts) != len(cands) {
		c.met.shardErrors.Add(1)
		return nil, fmt.Errorf("shard %s: %d counts for %d candidates", s.id, len(counts), len(cands))
	}
	return counts, nil
}

// hedgeDelay is the shard's recent latency quantile, or the configured
// cold-start delay while history is thin, clamped into the attempt deadline.
func (c *Coordinator) hedgeDelay(s *shardState) time.Duration {
	d, ok := s.lat.quantile(c.cfg.HedgeQuantile)
	if !ok {
		d = c.cfg.HedgeAfter
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > c.cfg.ShardTimeout {
		d = c.cfg.ShardTimeout
	}
	return d
}

// backoffFor is base<<(attempt-1) plus up to 100% seeded jitter, mirroring
// the serve layer's rebuild backoff.
func (c *Coordinator) backoffFor(attempt int) time.Duration {
	base := c.cfg.RetryBackoff << (attempt - 1)
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(base) + 1))
	c.rngMu.Unlock()
	return base + j
}

// sleepCtx blocks for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
