package dataset

import (
	"fmt"

	"standout/internal/bitvec"
)

// Categorical data model (§II.B): each attribute a_i takes one value from a
// multi-valued domain Dom_i. A categorical query specifies desired values for
// a subset of attributes, with conjunctive retrieval semantics. The paper
// treats this as "a straightforward generalization of Boolean data" (§V);
// the generalization is made concrete here by two reductions:
//
//   - Booleanize: expand every (attribute, value) pair into one Boolean
//     attribute "attr=value". A categorical tuple sets exactly one bit per
//     attribute; a query sets one bit per specified attribute. A compression
//     budget of m categorical attributes equals m Boolean bits because each
//     categorical attribute contributes at most one set bit to the tuple.
//
//   - ReduceForTuple: relative to a fixed new tuple t, a query condition
//     attr=v either matches t (retaining attr can satisfy it) or cannot ever
//     be satisfied; matching conditions become required bits on the original
//     M attributes, non-matching queries are dropped. This yields a smaller
//     SOC-CB-QL instance of width M.

// CatSchema describes categorical attributes and their domains.
type CatSchema struct {
	Attrs   []string
	Domains [][]string // Domains[i] lists the values of attribute i

	valueIndex []map[string]int
}

// NewCatSchema validates names/domains and builds value indexes.
func NewCatSchema(attrs []string, domains [][]string) (*CatSchema, error) {
	if len(attrs) != len(domains) {
		return nil, fmt.Errorf("dataset: %d attributes but %d domains", len(attrs), len(domains))
	}
	if _, err := NewSchema(attrs); err != nil {
		return nil, err
	}
	cs := &CatSchema{Attrs: attrs, Domains: domains, valueIndex: make([]map[string]int, len(attrs))}
	for i, dom := range domains {
		if len(dom) == 0 {
			return nil, fmt.Errorf("dataset: attribute %q has empty domain", attrs[i])
		}
		cs.valueIndex[i] = make(map[string]int, len(dom))
		for j, v := range dom {
			if _, dup := cs.valueIndex[i][v]; dup {
				return nil, fmt.Errorf("dataset: attribute %q has duplicate value %q", attrs[i], v)
			}
			cs.valueIndex[i][v] = j
		}
	}
	return cs, nil
}

// Width returns the number of categorical attributes.
func (cs *CatSchema) Width() int { return len(cs.Attrs) }

// ValueIndex returns the index of value v in attribute i's domain, or -1.
func (cs *CatSchema) ValueIndex(i int, v string) int {
	if j, ok := cs.valueIndex[i][v]; ok {
		return j
	}
	return -1
}

// CatTuple is a full assignment of one value per categorical attribute,
// stored as domain indexes.
type CatTuple []int

// CatQuery specifies desired values for a subset of attributes; -1 means the
// attribute is unconstrained.
type CatQuery []int

// Validate checks a tuple's values against the schema's domains.
func (cs *CatSchema) Validate(t CatTuple) error {
	if len(t) != cs.Width() {
		return fmt.Errorf("dataset: tuple has %d values, schema %d attributes", len(t), cs.Width())
	}
	for i, v := range t {
		if v < 0 || v >= len(cs.Domains[i]) {
			return fmt.Errorf("dataset: attribute %q value index %d out of domain size %d",
				cs.Attrs[i], v, len(cs.Domains[i]))
		}
	}
	return nil
}

// ValidateQuery checks a query's values against the schema's domains.
func (cs *CatSchema) ValidateQuery(q CatQuery) error {
	if len(q) != cs.Width() {
		return fmt.Errorf("dataset: query has %d values, schema %d attributes", len(q), cs.Width())
	}
	for i, v := range q {
		if v < -1 || v >= len(cs.Domains[i]) {
			return fmt.Errorf("dataset: attribute %q query value index %d out of domain size %d",
				cs.Attrs[i], v, len(cs.Domains[i]))
		}
	}
	return nil
}

// Retrieves reports whether the query retrieves the full tuple: every
// constrained attribute matches.
func (q CatQuery) Retrieves(t CatTuple) bool {
	for i, v := range q {
		if v >= 0 && t[i] != v {
			return false
		}
	}
	return true
}

// BooleanSchema returns the expanded Boolean schema with one attribute per
// (attribute, value) pair, named "attr=value", together with the offset of
// each categorical attribute's first bit.
func (cs *CatSchema) BooleanSchema() (*Schema, []int) {
	offsets := make([]int, cs.Width())
	var names []string
	for i, dom := range cs.Domains {
		offsets[i] = len(names)
		for _, v := range dom {
			names = append(names, cs.Attrs[i]+"="+v)
		}
	}
	return MustSchema(names), offsets
}

// BooleanizeTuple expands a categorical tuple into the Boolean schema:
// exactly one bit set per attribute.
func (cs *CatSchema) BooleanizeTuple(t CatTuple, offsets []int, width int) bitvec.Vector {
	v := bitvec.New(width)
	for i, val := range t {
		v.Set(offsets[i] + val)
	}
	return v
}

// BooleanizeQuery expands a categorical query into the Boolean schema: one
// bit per constrained attribute.
func (cs *CatSchema) BooleanizeQuery(q CatQuery, offsets []int, width int) bitvec.Vector {
	v := bitvec.New(width)
	for i, val := range q {
		if val >= 0 {
			v.Set(offsets[i] + val)
		}
	}
	return v
}

// CatLog is a workload of categorical queries.
type CatLog struct {
	Schema  *CatSchema
	Queries []CatQuery
}

// Size returns the number of categorical queries.
func (cl *CatLog) Size() int { return len(cl.Queries) }

// Booleanize converts the categorical log and a new tuple into an equivalent
// Boolean SOC-CB-QL instance over the expanded (attr=value) schema.
func (cl *CatLog) Booleanize(t CatTuple) (*QueryLog, bitvec.Vector, *Schema) {
	schema, offsets := cl.Schema.BooleanSchema()
	log := NewQueryLog(schema)
	for _, q := range cl.Queries {
		log.Queries = append(log.Queries,
			cl.Schema.BooleanizeQuery(q, offsets, schema.Width()))
	}
	bt := cl.Schema.BooleanizeTuple(t, offsets, schema.Width())
	return log, bt, schema
}

// ReduceForTuple converts the categorical instance into a width-M Boolean
// SOC-CB-QL instance relative to the new tuple t: each query becomes the set
// of attributes it constrains, and queries constraining any attribute to a
// value different from t's are dropped (no compression of t can ever satisfy
// them). The returned slice maps reduced-query index to original index.
func (cl *CatLog) ReduceForTuple(t CatTuple) (*QueryLog, []int) {
	schema := MustSchema(cl.Schema.Attrs)
	log := NewQueryLog(schema)
	var origin []int
	for qi, q := range cl.Queries {
		v := bitvec.New(schema.Width())
		ok := true
		for i, val := range q {
			if val < 0 {
				continue
			}
			if t[i] != val {
				ok = false
				break
			}
			v.Set(i)
		}
		if ok {
			log.Queries = append(log.Queries, v)
			origin = append(origin, qi)
		}
	}
	return log, origin
}
