package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTableCSV checks the CSV parser never panics and that every table
// it accepts survives a write/read round trip unchanged.
func FuzzReadTableCSV(f *testing.F) {
	f.Add("a,b\n1,0\n")
	f.Add("id,a\nrow,1\n")
	f.Add("")
	f.Add("a,a\n1,1\n")
	f.Add("a\n2\n")
	f.Add("id,x,y\nr1,1,1\nr2,0,0\nr3,1,0\n")
	f.Add("a,b\n1\n")
	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ReadTableCSV(strings.NewReader(input))
		if err != nil {
			return // rejected inputs just must not panic
		}
		var buf bytes.Buffer
		if err := WriteTableCSV(&buf, tab); err != nil {
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
		back, err := ReadTableCSV(&buf)
		if err != nil {
			t.Fatalf("serialized table failed to parse: %v\n%s", err, buf.String())
		}
		if back.Size() != tab.Size() || back.Width() != tab.Width() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				back.Size(), back.Width(), tab.Size(), tab.Width())
		}
		for i := range tab.Rows {
			if !back.Rows[i].Equal(tab.Rows[i]) {
				t.Fatalf("row %d changed in round trip", i)
			}
		}
	})
}

// FuzzParseTuple checks tuple parsing never panics and that accepted specs
// produce subsets of the schema.
func FuzzParseTuple(f *testing.F) {
	f.Add("101")
	f.Add("a0,a2")
	f.Add("")
	f.Add("  a1 ,  ")
	f.Add("111111111")
	f.Fuzz(func(t *testing.T, spec string) {
		s := GenericSchema(3)
		v, err := ParseTuple(s, spec)
		if err != nil {
			return
		}
		if v.Width() != 3 {
			t.Fatalf("accepted tuple has width %d", v.Width())
		}
	})
}
