package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"standout/internal/bitvec"
)

// CSV layout: the first record is a header of attribute names. If the first
// header cell is "id", the first column of every row is a row identifier and
// the remaining columns are attribute values; otherwise every column is an
// attribute. Attribute cells must be "0" or "1".

// ReadTableCSV parses a Boolean table from CSV.
func ReadTableCSV(r io.Reader) (*Table, error) {
	rows, ids, schema, err := readBoolCSV(r)
	if err != nil {
		return nil, err
	}
	t := &Table{Schema: schema, Rows: rows, IDs: ids}
	return t, t.Validate()
}

// WriteTableCSV writes a Boolean table as CSV in the layout ReadTableCSV reads.
func WriteTableCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	hasIDs := t.IDs != nil
	header := t.Schema.Attrs()
	if hasIDs {
		header = append([]string{"id"}, header...)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, row := range t.Rows {
		rec := make([]string, 0, len(header))
		if hasIDs {
			rec = append(rec, t.IDs[i])
		}
		for j := 0; j < t.Width(); j++ {
			if row.Get(j) {
				rec = append(rec, "1")
			} else {
				rec = append(rec, "0")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadQueryLogCSV parses a query log from CSV (same layout as a table; any
// "id" column is ignored). A trailing "weight" header column, when present,
// carries per-query integer multiplicities ≥ 1 — the weighted form written
// by WriteQueryLogCSV for compacted logs.
func ReadQueryLogCSV(r io.Reader) (*QueryLog, error) {
	rows, _, weights, schema, err := readBoolCSVWeighted(r)
	if err != nil {
		return nil, err
	}
	q := &QueryLog{Schema: schema, Queries: rows, Weights: weights}
	return q, q.Validate()
}

// WriteQueryLogCSV writes a query log as CSV. A weighted log gains a
// trailing "weight" column that ReadQueryLogCSV round-trips; unweighted logs
// keep the classic attribute-only layout.
func WriteQueryLogCSV(w io.Writer, q *QueryLog) error {
	if q.Weights == nil {
		return WriteTableCSV(w, q.AsTable())
	}
	cw := csv.NewWriter(w)
	header := append(append([]string(nil), q.Schema.Attrs()...), "weight")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, query := range q.Queries {
		rec := make([]string, 0, len(header))
		for j := 0; j < q.Width(); j++ {
			if query.Get(j) {
				rec = append(rec, "1")
			} else {
				rec = append(rec, "0")
			}
		}
		rec = append(rec, strconv.Itoa(q.Weights[i]))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func readBoolCSV(r io.Reader) (rows []bitvec.Vector, ids []string, schema *Schema, err error) {
	rows, ids, _, schema, err = readBoolCSVOpt(r, false)
	return rows, ids, schema, err
}

// readBoolCSVWeighted reads a query-log CSV where a trailing "weight" header
// column, when present, carries per-query multiplicities. Tables read with
// readBoolCSV keep "weight" as an ordinary attribute name.
func readBoolCSVWeighted(r io.Reader) (rows []bitvec.Vector, ids []string, weights []int, schema *Schema, err error) {
	return readBoolCSVOpt(r, true)
}

func readBoolCSVOpt(r io.Reader, allowWeights bool) (rows []bitvec.Vector, ids []string, weights []int, schema *Schema, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for better messages
	header, err := cr.Read()
	if err == io.EOF {
		return nil, nil, nil, nil, fmt.Errorf("dataset: empty CSV input")
	}
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	hasIDs := len(header) > 0 && strings.EqualFold(header[0], "id")
	attrStart := 0
	if hasIDs {
		attrStart = 1
		ids = []string{}
	}
	attrEnd := len(header)
	hasWeights := allowWeights && attrEnd > attrStart && strings.EqualFold(header[attrEnd-1], "weight")
	if hasWeights {
		attrEnd--
		weights = []int{}
	}
	schema, err = NewSchema(header[attrStart:attrEnd])
	if err != nil {
		return nil, nil, nil, nil, err
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, nil, nil, nil, fmt.Errorf("dataset: line %d has %d fields, header has %d",
				line, len(rec), len(header))
		}
		v := bitvec.New(schema.Width())
		for j, cell := range rec[attrStart:attrEnd] {
			switch strings.TrimSpace(cell) {
			case "1":
				v.Set(j)
			case "0":
			default:
				return nil, nil, nil, nil, fmt.Errorf(
					"dataset: line %d attribute %q: value %q is not 0 or 1",
					line, schema.Name(j), cell)
			}
		}
		rows = append(rows, v)
		if hasIDs {
			ids = append(ids, rec[0])
		}
		if hasWeights {
			w, err := strconv.Atoi(strings.TrimSpace(rec[len(rec)-1]))
			if err != nil || w < 1 {
				return nil, nil, nil, nil, fmt.Errorf(
					"dataset: line %d: weight %q is not an integer ≥ 1", line, rec[len(rec)-1])
			}
			weights = append(weights, w)
		}
	}
	return rows, ids, weights, schema, nil
}

// ParseTuple parses a tuple for a schema from either a 0/1 bit string of the
// schema's width (e.g. "110100") or a comma-separated list of attribute names
// (e.g. "AC,FourDoor,PowerDoors").
func ParseTuple(s *Schema, spec string) (bitvec.Vector, error) {
	trimmed := strings.TrimSpace(spec)
	if isBitString(trimmed) {
		v, err := bitvec.FromString(trimmed)
		if err != nil {
			return bitvec.Vector{}, err
		}
		if v.Width() != s.Width() {
			return bitvec.Vector{}, fmt.Errorf(
				"dataset: bit string has %d bits, schema has %d attributes",
				v.Width(), s.Width())
		}
		return v, nil
	}
	var names []string
	for _, part := range strings.Split(trimmed, ",") {
		if p := strings.TrimSpace(part); p != "" {
			names = append(names, p)
		}
	}
	return s.VectorOf(names...)
}

func isBitString(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r != '0' && r != '1' {
			return false
		}
	}
	return true
}
