package dataset

import (
	"bytes"
	"strings"
	"testing"

	"standout/internal/bitvec"
)

const carsCSV = `id,AC,FourDoor,Turbo
car1,1,0,1
car2,0,1,0
`

func TestReadTableCSV(t *testing.T) {
	tab, err := ReadTableCSV(strings.NewReader(carsCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Size() != 2 || tab.Width() != 3 {
		t.Fatalf("got %dx%d", tab.Size(), tab.Width())
	}
	if tab.IDs[0] != "car1" || tab.IDs[1] != "car2" {
		t.Errorf("IDs=%v", tab.IDs)
	}
	if tab.Rows[0].String() != "101" || tab.Rows[1].String() != "010" {
		t.Errorf("rows=%v %v", tab.Rows[0], tab.Rows[1])
	}
}

func TestTableCSVRoundTrip(t *testing.T) {
	tab, err := ReadTableCSV(strings.NewReader(carsCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTableCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTableCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != tab.Size() {
		t.Fatalf("round trip changed size")
	}
	for i := range tab.Rows {
		if !back.Rows[i].Equal(tab.Rows[i]) || back.IDs[i] != tab.IDs[i] {
			t.Errorf("row %d changed in round trip", i)
		}
	}
}

func TestTableCSVNoIDs(t *testing.T) {
	tab, err := ReadTableCSV(strings.NewReader("AC,Turbo\n1,1\n0,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.IDs != nil {
		t.Errorf("unexpected IDs: %v", tab.IDs)
	}
	var buf bytes.Buffer
	if err := WriteTableCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); !strings.HasPrefix(got, "AC,Turbo\n") {
		t.Errorf("header wrong: %q", got)
	}
}

func TestReadTableCSVErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad cell", "a,b\n1,2\n"},
		{"ragged row", "a,b\n1\n"},
		{"dup attrs", "a,a\n1,1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadTableCSV(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ReadTableCSV(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestReadQueryLogCSV(t *testing.T) {
	log, err := ReadQueryLogCSV(strings.NewReader("AC,Turbo\n1,0\n1,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if log.Size() != 2 {
		t.Fatalf("size=%d", log.Size())
	}
	var buf bytes.Buffer
	if err := WriteQueryLogCSV(&buf, log); err != nil {
		t.Fatal(err)
	}
	back, err := ReadQueryLogCSV(&buf)
	if err != nil || back.Size() != 2 {
		t.Fatalf("round trip: %v size=%d", err, back.Size())
	}
}

func TestParseTuple(t *testing.T) {
	s := MustSchema([]string{"AC", "FourDoor", "Turbo"})
	v, err := ParseTuple(s, "101")
	if err != nil || v.String() != "101" {
		t.Errorf("bit string parse: %v %v", v, err)
	}
	v, err = ParseTuple(s, "AC, Turbo")
	if err != nil || v.String() != "101" {
		t.Errorf("name parse: %v %v", v, err)
	}
	if _, err := ParseTuple(s, "10"); err == nil {
		t.Error("short bit string accepted")
	}
	if _, err := ParseTuple(s, "AC,Nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestParseTupleNameWidthAmbiguity(t *testing.T) {
	// A schema with a 0/1-looking attribute name: bit-string interpretation
	// wins only when the width matches.
	s := MustSchema([]string{"0"})
	v, err := ParseTuple(s, "0")
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != 0 {
		t.Errorf("expected bit-string parse, got %v", v)
	}
}

func catFixture(t *testing.T) (*CatSchema, CatTuple, *CatLog) {
	t.Helper()
	cs, err := NewCatSchema(
		[]string{"Make", "Color"},
		[][]string{{"Honda", "Toyota"}, {"Red", "Blue", "White"}})
	if err != nil {
		t.Fatal(err)
	}
	tuple := CatTuple{0, 2} // Honda, White
	log := &CatLog{Schema: cs, Queries: []CatQuery{
		{0, -1},  // Make=Honda
		{0, 2},   // Make=Honda, Color=White
		{1, -1},  // Make=Toyota — can never match the tuple
		{-1, -1}, // unconstrained
	}}
	return cs, tuple, log
}

func TestCatSchemaErrors(t *testing.T) {
	if _, err := NewCatSchema([]string{"a"}, nil); err == nil {
		t.Error("mismatched domains accepted")
	}
	if _, err := NewCatSchema([]string{"a"}, [][]string{{}}); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewCatSchema([]string{"a"}, [][]string{{"x", "x"}}); err == nil {
		t.Error("duplicate value accepted")
	}
}

func TestCatValidate(t *testing.T) {
	cs, tuple, log := catFixture(t)
	if err := cs.Validate(tuple); err != nil {
		t.Error(err)
	}
	if err := cs.Validate(CatTuple{0}); err == nil {
		t.Error("short tuple accepted")
	}
	if err := cs.Validate(CatTuple{0, 5}); err == nil {
		t.Error("out-of-domain value accepted")
	}
	for _, q := range log.Queries {
		if err := cs.ValidateQuery(q); err != nil {
			t.Error(err)
		}
	}
	if err := cs.ValidateQuery(CatQuery{-2, 0}); err == nil {
		t.Error("bad query value accepted")
	}
}

func TestCatRetrieves(t *testing.T) {
	_, tuple, log := catFixture(t)
	want := []bool{true, true, false, true}
	for i, q := range log.Queries {
		if got := q.Retrieves(tuple); got != want[i] {
			t.Errorf("query %d: Retrieves=%v, want %v", i, got, want[i])
		}
	}
}

func TestCatBooleanize(t *testing.T) {
	cs, tuple, log := catFixture(t)
	blog, bt, schema := log.Booleanize(tuple)
	if schema.Width() != 5 { // 2 makes + 3 colors
		t.Fatalf("expanded width=%d", schema.Width())
	}
	if schema.Index("Make=Honda") != 0 || schema.Index("Color=White") != 4 {
		t.Errorf("expanded names wrong: %v", schema.Attrs())
	}
	if bt.Count() != cs.Width() {
		t.Errorf("Booleanized tuple has %d bits, want one per attribute", bt.Count())
	}
	// Boolean satisfaction must coincide with categorical retrieval.
	for i, q := range log.Queries {
		if got := blog.Queries[i].SubsetOf(bt); got != q.Retrieves(tuple) {
			t.Errorf("query %d: boolean %v != categorical %v", i, got, q.Retrieves(tuple))
		}
	}
}

func TestCatReduceForTuple(t *testing.T) {
	_, tuple, log := catFixture(t)
	reduced, origin := log.ReduceForTuple(tuple)
	// Query 2 (Make=Toyota) is dropped.
	if reduced.Size() != 3 || len(origin) != 3 {
		t.Fatalf("reduced size=%d origin=%v", reduced.Size(), origin)
	}
	if origin[0] != 0 || origin[1] != 1 || origin[2] != 3 {
		t.Errorf("origin=%v", origin)
	}
	// Full tuple (all attributes retained) satisfies all kept queries.
	full := bitvec.New(reduced.Width()).Not()
	if reduced.Satisfied(full) != 3 {
		t.Errorf("full retention satisfies %d", reduced.Satisfied(full))
	}
}

func TestNumericReductions(t *testing.T) {
	s := MustSchema([]string{"Price", "Miles", "Year"})
	nl := &NumLog{Schema: s}
	q1 := NewRangeQuery(3)
	q1.SetRange(0, 5000, 10000) // contains
	q1.SetRange(2, 2000, 2010)  // contains
	q2 := NewRangeQuery(3)
	q2.SetRange(1, 0, 30000) // does not contain (50000)
	q2.SetRange(0, 0, 20000) // contains
	q3 := NewRangeQuery(3)   // unconstrained
	nl.Queries = []RangeQuery{q1, q2, q3}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}

	tuple := []float64{8000, 50000, 2005}
	if !q1.Passes(tuple) || q2.Passes(tuple) || !q3.Passes(tuple) {
		t.Fatal("Passes sanity check failed")
	}

	lit, litT, litOrigin, err := nl.ReduceLiteral(tuple)
	if err != nil {
		t.Fatal(err)
	}
	if lit.Size() != 3 || len(litOrigin) != 3 {
		t.Fatalf("literal size=%d", lit.Size())
	}
	if lit.Queries[0].String() != "101" {
		t.Errorf("literal q1=%v", lit.Queries[0])
	}
	if lit.Queries[1].String() != "100" { // failing Miles condition dropped to 0
		t.Errorf("literal q2=%v", lit.Queries[1])
	}
	if litT.Count() != 3 {
		t.Errorf("literal tuple not all ones: %v", litT)
	}

	strict, _, strictOrigin, err := nl.ReduceStrict(tuple)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Size() != 2 || strictOrigin[0] != 0 || strictOrigin[1] != 2 {
		t.Fatalf("strict size=%d origin=%v", strict.Size(), strictOrigin)
	}

	// Strict visibility never exceeds literal visibility for any compression.
	for _, v := range []bitvec.Vector{
		bitvec.FromIndices(3, 0), bitvec.FromIndices(3, 0, 2), bitvec.New(3).Not(),
	} {
		if strict.Satisfied(v) > lit.Satisfied(v) {
			t.Errorf("strict > literal for %v", v)
		}
	}

	if _, _, _, err := nl.ReduceLiteral([]float64{1}); err == nil {
		t.Error("short tuple accepted by ReduceLiteral")
	}
	if _, _, _, err := nl.ReduceStrict([]float64{1}); err == nil {
		t.Error("short tuple accepted by ReduceStrict")
	}
}

func TestIntervalAndUnbounded(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 2}
	if !iv.Contains(1) || !iv.Contains(2) || iv.Contains(2.1) {
		t.Error("closed interval semantics wrong")
	}
	if !Unbounded().Contains(1e300) || !Unbounded().Contains(-1e300) {
		t.Error("Unbounded not unbounded")
	}
}

func TestNumLogValidateCatchesWidth(t *testing.T) {
	nl := &NumLog{Schema: GenericSchema(2), Queries: []RangeQuery{NewRangeQuery(3)}}
	if err := nl.Validate(); err == nil {
		t.Error("width mismatch accepted")
	}
}
