package dataset

import (
	"fmt"
	"math"

	"standout/internal/bitvec"
)

// Numeric data model (§II.B, §V last paragraph): tuples carry numeric
// attribute values and queries specify ranges over a subset of attributes
// (e.g. price in [5000, 9000]). The paper reduces this to SOC-CB-QL relative
// to the new tuple t: for each query q and each attribute i, derive a Boolean
// value b_i that is 1 iff q ranges over attribute i and q's i-th range
// contains t's i-th value; the tuple becomes all-ones.
//
// Two reduction modes are provided:
//
//   - ReduceLiteral is the paper's construction verbatim: failing range
//     conditions become 0-bits, so a query with a failing condition remains
//     in the log as the (weaker) conjunction of its passing conditions.
//
//   - ReduceStrict additionally drops any query with a failing condition,
//     reflecting retrieval semantics where a tuple must pass every range of a
//     query to be returned: such a query can never retrieve any compression
//     of t, so keeping it would overcount visibility.
//
// Both produce instances any SOC-CB-QL solver accepts; tests pin down the
// relationship (strict count ≤ literal count).

// Interval is a closed numeric range [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x lies in the closed interval.
func (iv Interval) Contains(x float64) bool { return iv.Lo <= x && x <= iv.Hi }

// Unbounded returns the interval covering all reals.
func Unbounded() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// RangeQuery constrains a subset of numeric attributes. Active marks which
// attributes carry a range; Ranges is indexed by attribute.
type RangeQuery struct {
	Active bitvec.Vector
	Ranges []Interval
}

// NewRangeQuery returns a query of the given width with no active ranges.
func NewRangeQuery(width int) RangeQuery {
	return RangeQuery{Active: bitvec.New(width), Ranges: make([]Interval, width)}
}

// SetRange activates attribute i with range [lo, hi].
func (rq *RangeQuery) SetRange(i int, lo, hi float64) {
	rq.Active.Set(i)
	rq.Ranges[i] = Interval{Lo: lo, Hi: hi}
}

// Passes reports whether the numeric tuple values pass every active range.
func (rq RangeQuery) Passes(values []float64) bool {
	for _, i := range rq.Active.Ones() {
		if !rq.Ranges[i].Contains(values[i]) {
			return false
		}
	}
	return true
}

// NumLog is a workload of range queries over named numeric attributes.
type NumLog struct {
	Schema  *Schema // attribute names; values are numeric, not Boolean
	Queries []RangeQuery
}

// Size returns the number of range queries.
func (nl *NumLog) Size() int { return len(nl.Queries) }

// Validate checks query widths against the schema.
func (nl *NumLog) Validate() error {
	for i, q := range nl.Queries {
		if q.Active.Width() != nl.Schema.Width() || len(q.Ranges) != nl.Schema.Width() {
			return fmt.Errorf("dataset: range query %d has width %d/%d, schema width %d",
				i, q.Active.Width(), len(q.Ranges), nl.Schema.Width())
		}
	}
	return nil
}

// ReduceLiteral is the paper's reduction: query q maps to the Boolean query
// with bit i set iff q is active on attribute i and q's range contains t[i].
// The new tuple maps to all-ones. The returned slice maps reduced index to
// original index (here the identity, kept for symmetry with ReduceStrict).
func (nl *NumLog) ReduceLiteral(t []float64) (*QueryLog, bitvec.Vector, []int, error) {
	if len(t) != nl.Schema.Width() {
		return nil, bitvec.Vector{}, nil, fmt.Errorf(
			"dataset: tuple has %d values, schema %d attributes", len(t), nl.Schema.Width())
	}
	log := NewQueryLog(nl.Schema)
	origin := make([]int, 0, len(nl.Queries))
	for qi, q := range nl.Queries {
		v := bitvec.New(nl.Schema.Width())
		for _, i := range q.Active.Ones() {
			if q.Ranges[i].Contains(t[i]) {
				v.Set(i)
			}
		}
		log.Queries = append(log.Queries, v)
		origin = append(origin, qi)
	}
	return log, bitvec.New(nl.Schema.Width()).Not(), origin, nil
}

// ReduceStrict maps passing conditions to required bits and drops queries
// with any failing condition.
func (nl *NumLog) ReduceStrict(t []float64) (*QueryLog, bitvec.Vector, []int, error) {
	if len(t) != nl.Schema.Width() {
		return nil, bitvec.Vector{}, nil, fmt.Errorf(
			"dataset: tuple has %d values, schema %d attributes", len(t), nl.Schema.Width())
	}
	log := NewQueryLog(nl.Schema)
	var origin []int
	for qi, q := range nl.Queries {
		v := bitvec.New(nl.Schema.Width())
		ok := true
		for _, i := range q.Active.Ones() {
			if !q.Ranges[i].Contains(t[i]) {
				ok = false
				break
			}
			v.Set(i)
		}
		if ok {
			log.Queries = append(log.Queries, v)
			origin = append(origin, qi)
		}
	}
	return log, bitvec.New(nl.Schema.Width()).Not(), origin, nil
}
