// Package dataset defines the data model of the library: Boolean product
// tables and conjunctive query logs over a named attribute schema, together
// with the categorical and numeric data models of §II.B of the paper and
// their reductions to the Boolean model (§V).
//
// A Table holds the existing products D ("the competition"); a QueryLog holds
// the workload Q of past buyer queries. Both are collections of bit vectors
// over the same Schema, and the paper's SOC-CB-D variant exploits exactly this
// symmetry: a database is solved by treating its rows as queries.
package dataset

import (
	"fmt"
	"sort"
	"sync/atomic"

	"standout/internal/bitvec"
)

// Schema names the Boolean attributes a_0..a_{M-1} of a table or query log.
type Schema struct {
	attrs []string
	index map[string]int
}

// NewSchema builds a schema from attribute names. Names must be non-empty and
// unique.
func NewSchema(attrs []string) (*Schema, error) {
	s := &Schema{attrs: append([]string(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("dataset: empty attribute name at position %d", i)
		}
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", a)
		}
		s.index[a] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for tests and generators.
func MustSchema(attrs []string) *Schema {
	s, err := NewSchema(attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// GenericSchema returns a schema with M attributes named a0..a{M-1}.
func GenericSchema(m int) *Schema {
	attrs := make([]string, m)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	return MustSchema(attrs)
}

// Width returns the number of attributes M.
func (s *Schema) Width() int { return len(s.attrs) }

// Attrs returns the attribute names in index order. The caller must not
// modify the returned slice.
func (s *Schema) Attrs() []string { return s.attrs }

// Name returns the name of attribute i.
func (s *Schema) Name(i int) string { return s.attrs[i] }

// Index returns the index of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// VectorOf builds a bit vector with the named attributes set.
// It returns an error if any name is not in the schema.
func (s *Schema) VectorOf(names ...string) (bitvec.Vector, error) {
	v := bitvec.New(s.Width())
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return bitvec.Vector{}, fmt.Errorf("dataset: unknown attribute %q", n)
		}
		v.Set(i)
	}
	return v, nil
}

// Names returns the attribute names selected by the set bits of v.
func (s *Schema) Names(v bitvec.Vector) []string {
	ones := v.Ones()
	out := make([]string, len(ones))
	for i, b := range ones {
		out[i] = s.attrs[b]
	}
	return out
}

// Table is a collection of Boolean tuples over a shared schema.
type Table struct {
	Schema *Schema
	Rows   []bitvec.Vector
	IDs    []string // optional row identifiers; nil or len(Rows)
}

// NewTable returns an empty table over the schema.
func NewTable(s *Schema) *Table { return &Table{Schema: s} }

// Append adds a row, validating its width. id may be empty.
func (t *Table) Append(row bitvec.Vector, id string) error {
	if row.Width() != t.Schema.Width() {
		return fmt.Errorf("dataset: row width %d does not match schema width %d",
			row.Width(), t.Schema.Width())
	}
	if id != "" && t.IDs == nil && len(t.Rows) > 0 {
		return fmt.Errorf("dataset: cannot add identified row to unidentified table")
	}
	t.Rows = append(t.Rows, row)
	if id != "" || t.IDs != nil {
		t.IDs = append(t.IDs, id)
	}
	return nil
}

// Size returns the number of rows N.
func (t *Table) Size() int { return len(t.Rows) }

// Width returns the number of attributes M.
func (t *Table) Width() int { return t.Schema.Width() }

// Validate checks internal consistency (row widths, ID count).
func (t *Table) Validate() error {
	if t.Schema == nil {
		return fmt.Errorf("dataset: table has nil schema")
	}
	for i, r := range t.Rows {
		if r.Width() != t.Schema.Width() {
			return fmt.Errorf("dataset: row %d has width %d, schema width %d",
				i, r.Width(), t.Schema.Width())
		}
	}
	if t.IDs != nil && len(t.IDs) != len(t.Rows) {
		return fmt.Errorf("dataset: %d IDs for %d rows", len(t.IDs), len(t.Rows))
	}
	return nil
}

// AttrFrequencies returns, for each attribute, the number of rows in which it
// is set. This is the statistic driving the ConsumeAttr greedy heuristic.
func (t *Table) AttrFrequencies() []int {
	freq := make([]int, t.Width())
	for _, r := range t.Rows {
		for _, i := range r.Ones() {
			freq[i]++
		}
	}
	return freq
}

// Density returns the fraction of 1-bits in the table, in [0,1].
func (t *Table) Density() float64 {
	if t.Size() == 0 || t.Width() == 0 {
		return 0
	}
	ones := 0
	for _, r := range t.Rows {
		ones += r.Count()
	}
	return float64(ones) / float64(t.Size()*t.Width())
}

// Complement returns a new table whose rows are the bitwise complements of
// t's rows — the ~Q construction of §IV.C.
func (t *Table) Complement() *Table {
	out := &Table{Schema: t.Schema, Rows: make([]bitvec.Vector, len(t.Rows))}
	if t.IDs != nil {
		out.IDs = append([]string(nil), t.IDs...)
	}
	for i, r := range t.Rows {
		out.Rows[i] = r.Not()
	}
	return out
}

// Clone returns a deep copy of the table (schema shared — schemas are
// immutable after construction).
func (t *Table) Clone() *Table {
	out := &Table{Schema: t.Schema, Rows: make([]bitvec.Vector, len(t.Rows))}
	for i, r := range t.Rows {
		out.Rows[i] = r.Clone()
	}
	if t.IDs != nil {
		out.IDs = append([]string(nil), t.IDs...)
	}
	return out
}

// DominatedBy returns the indices of rows dominated by v: rows r with r ⊆ v.
// For SOC-CB-D this is the visibility of a compressed tuple v against D.
func (t *Table) DominatedBy(v bitvec.Vector) []int {
	var out []int
	for i, r := range t.Rows {
		if r.SubsetOf(v) {
			out = append(out, i)
		}
	}
	return out
}

// QueryLog is a workload of conjunctive Boolean queries over a schema.
// Each query is the set of attributes it requires (retrieval semantics:
// tuple t is returned for q iff q ⊆ t).
type QueryLog struct {
	Schema  *Schema
	Queries []bitvec.Vector

	// version counts mutations made through Append and Touch. Callers that
	// mutate Queries directly (appending to the slice, or flipping bits of a
	// query in place) must call Touch afterwards so index and cache layers
	// built over the log can notice the change. It is atomic so that Touch —
	// the announcement that a mutation happened — can race with concurrent
	// Version reads from staleness checks without tripping the race detector;
	// mutating Queries itself still requires external synchronization.
	version atomic.Uint64
}

// NewQueryLog returns an empty query log over the schema.
func NewQueryLog(s *Schema) *QueryLog { return &QueryLog{Schema: s} }

// Append adds a query, validating its width.
func (q *QueryLog) Append(query bitvec.Vector) error {
	if query.Width() != q.Schema.Width() {
		return fmt.Errorf("dataset: query width %d does not match schema width %d",
			query.Width(), q.Schema.Width())
	}
	q.Queries = append(q.Queries, query)
	q.version.Add(1)
	return nil
}

// Version is a cheap mutation counter: it changes whenever the log is
// modified through Append or Touch. Derived structures (indexes, caches)
// record it at build time and compare to detect staleness without rehashing
// the whole log. Direct mutation of Queries bypasses it — call Touch.
func (q *QueryLog) Version() uint64 { return q.version.Load() }

// Touch records an out-of-band mutation of Queries, invalidating any index
// or cache built over the previous contents. Touch and Version are safe to
// call concurrently with each other and with readers of the log; the
// mutation of Queries they announce is not.
func (q *QueryLog) Touch() { q.version.Add(1) }

// Fingerprint returns a 64-bit content hash of the log: the schema width and
// every query's bits, in order. Two logs with identical query sequences have
// identical fingerprints regardless of how they were built. It is computed
// from scratch on every call (O(S·M/64)) and is safe for concurrent use on
// an unmutated log; cache layers use it to key per-log state.
func (q *QueryLog) Fingerprint() uint64 {
	h := uint64(len(q.Queries))*0x9e3779b97f4a7c15 + uint64(q.Width())
	for _, query := range q.Queries {
		h = query.Hash64(h)
	}
	return h
}

// Size returns the number of queries S.
func (q *QueryLog) Size() int { return len(q.Queries) }

// Width returns the number of attributes M.
func (q *QueryLog) Width() int { return q.Schema.Width() }

// Validate checks internal consistency.
func (q *QueryLog) Validate() error {
	if q.Schema == nil {
		return fmt.Errorf("dataset: query log has nil schema")
	}
	for i, r := range q.Queries {
		if r.Width() != q.Schema.Width() {
			return fmt.Errorf("dataset: query %d has width %d, schema width %d",
				i, r.Width(), q.Schema.Width())
		}
	}
	return nil
}

// Satisfied returns how many queries retrieve the (possibly compressed)
// tuple v, i.e. |{q ∈ Q : q ⊆ v}| — the objective of SOC-CB-QL.
func (q *QueryLog) Satisfied(v bitvec.Vector) int {
	n := 0
	for _, query := range q.Queries {
		if query.SubsetOf(v) {
			n++
		}
	}
	return n
}

// SatisfiedBy returns the indices of the queries that retrieve v.
func (q *QueryLog) SatisfiedBy(v bitvec.Vector) []int {
	var out []int
	for i, query := range q.Queries {
		if query.SubsetOf(v) {
			out = append(out, i)
		}
	}
	return out
}

// AttrFrequencies returns per-attribute occurrence counts across queries.
func (q *QueryLog) AttrFrequencies() []int {
	freq := make([]int, q.Width())
	for _, r := range q.Queries {
		for _, i := range r.Ones() {
			freq[i]++
		}
	}
	return freq
}

// AsTable reinterprets the query log as a table (used by SOC-CB-D and by the
// itemset miners, which operate on generic Boolean tables).
func (q *QueryLog) AsTable() *Table {
	return &Table{Schema: q.Schema, Rows: q.Queries}
}

// LogFromTable reinterprets a database as a query log — the reduction that
// solves SOC-CB-D with any SOC-CB-QL algorithm (§V).
func LogFromTable(t *Table) *QueryLog {
	return &QueryLog{Schema: t.Schema, Queries: t.Rows}
}

// SizeHistogram returns a map from query size (number of attributes
// specified) to the count of such queries. Useful for workload diagnostics.
func (q *QueryLog) SizeHistogram() map[int]int {
	h := make(map[int]int)
	for _, r := range q.Queries {
		h[r.Count()]++
	}
	return h
}

// Restrict returns a new query log containing only the queries all of whose
// attributes appear in the tuple t. Queries that t itself cannot satisfy can
// never be satisfied by a compression of t, so solvers prune them up front.
func (q *QueryLog) Restrict(t bitvec.Vector) *QueryLog {
	out := NewQueryLog(q.Schema)
	for _, query := range q.Queries {
		if query.SubsetOf(t) {
			out.Queries = append(out.Queries, query)
		}
	}
	return out
}

// Dedup returns a new query log with duplicate queries collapsed and a
// parallel slice of multiplicities. Solvers that score candidate compressions
// repeatedly can use the weighted form to cut work on skewed workloads.
func (q *QueryLog) Dedup() (*QueryLog, []int) {
	seen := make(map[string]int)
	out := NewQueryLog(q.Schema)
	var weights []int
	for _, query := range q.Queries {
		k := query.Key()
		if idx, ok := seen[k]; ok {
			weights[idx]++
			continue
		}
		seen[k] = len(out.Queries)
		out.Queries = append(out.Queries, query)
		weights = append(weights, 1)
	}
	return out, weights
}

// TopAttrs returns the indices of the k most frequent attributes in the log,
// ties broken by lower index. If k exceeds the width it is clamped.
func (q *QueryLog) TopAttrs(k int) []int {
	freq := q.AttrFrequencies()
	idx := make([]int, len(freq))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return freq[idx[a]] > freq[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	if k < 0 {
		k = 0
	}
	return idx[:k]
}
