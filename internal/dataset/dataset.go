// Package dataset defines the data model of the library: Boolean product
// tables and conjunctive query logs over a named attribute schema, together
// with the categorical and numeric data models of §II.B of the paper and
// their reductions to the Boolean model (§V).
//
// A Table holds the existing products D ("the competition"); a QueryLog holds
// the workload Q of past buyer queries. Both are collections of bit vectors
// over the same Schema, and the paper's SOC-CB-D variant exploits exactly this
// symmetry: a database is solved by treating its rows as queries.
package dataset

import (
	"fmt"
	"sort"
	"sync/atomic"

	"standout/internal/bitvec"
)

// Schema names the Boolean attributes a_0..a_{M-1} of a table or query log.
type Schema struct {
	attrs []string
	index map[string]int
}

// NewSchema builds a schema from attribute names. Names must be non-empty and
// unique.
func NewSchema(attrs []string) (*Schema, error) {
	s := &Schema{attrs: append([]string(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("dataset: empty attribute name at position %d", i)
		}
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", a)
		}
		s.index[a] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for tests and generators.
func MustSchema(attrs []string) *Schema {
	s, err := NewSchema(attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// GenericSchema returns a schema with M attributes named a0..a{M-1}.
func GenericSchema(m int) *Schema {
	attrs := make([]string, m)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	return MustSchema(attrs)
}

// Width returns the number of attributes M.
func (s *Schema) Width() int { return len(s.attrs) }

// Attrs returns the attribute names in index order. The caller must not
// modify the returned slice.
func (s *Schema) Attrs() []string { return s.attrs }

// Name returns the name of attribute i.
func (s *Schema) Name(i int) string { return s.attrs[i] }

// Index returns the index of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// VectorOf builds a bit vector with the named attributes set.
// It returns an error if any name is not in the schema.
func (s *Schema) VectorOf(names ...string) (bitvec.Vector, error) {
	v := bitvec.New(s.Width())
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return bitvec.Vector{}, fmt.Errorf("dataset: unknown attribute %q", n)
		}
		v.Set(i)
	}
	return v, nil
}

// Names returns the attribute names selected by the set bits of v.
func (s *Schema) Names(v bitvec.Vector) []string {
	ones := v.Ones()
	out := make([]string, len(ones))
	for i, b := range ones {
		out[i] = s.attrs[b]
	}
	return out
}

// Table is a collection of Boolean tuples over a shared schema.
type Table struct {
	Schema *Schema
	Rows   []bitvec.Vector
	IDs    []string // optional row identifiers; nil or len(Rows)
}

// NewTable returns an empty table over the schema.
func NewTable(s *Schema) *Table { return &Table{Schema: s} }

// Append adds a row, validating its width. id may be empty.
func (t *Table) Append(row bitvec.Vector, id string) error {
	if row.Width() != t.Schema.Width() {
		return fmt.Errorf("dataset: row width %d does not match schema width %d",
			row.Width(), t.Schema.Width())
	}
	if id != "" && t.IDs == nil && len(t.Rows) > 0 {
		return fmt.Errorf("dataset: cannot add identified row to unidentified table")
	}
	t.Rows = append(t.Rows, row)
	if id != "" || t.IDs != nil {
		t.IDs = append(t.IDs, id)
	}
	return nil
}

// Size returns the number of rows N.
func (t *Table) Size() int { return len(t.Rows) }

// Width returns the number of attributes M.
func (t *Table) Width() int { return t.Schema.Width() }

// Validate checks internal consistency (row widths, ID count).
func (t *Table) Validate() error {
	if t.Schema == nil {
		return fmt.Errorf("dataset: table has nil schema")
	}
	for i, r := range t.Rows {
		if r.Width() != t.Schema.Width() {
			return fmt.Errorf("dataset: row %d has width %d, schema width %d",
				i, r.Width(), t.Schema.Width())
		}
	}
	if t.IDs != nil && len(t.IDs) != len(t.Rows) {
		return fmt.Errorf("dataset: %d IDs for %d rows", len(t.IDs), len(t.Rows))
	}
	return nil
}

// AttrFrequencies returns, for each attribute, the number of rows in which it
// is set. This is the statistic driving the ConsumeAttr greedy heuristic.
func (t *Table) AttrFrequencies() []int {
	freq := make([]int, t.Width())
	for _, r := range t.Rows {
		for _, i := range r.Ones() {
			freq[i]++
		}
	}
	return freq
}

// Density returns the fraction of 1-bits in the table, in [0,1].
func (t *Table) Density() float64 {
	if t.Size() == 0 || t.Width() == 0 {
		return 0
	}
	ones := 0
	for _, r := range t.Rows {
		ones += r.Count()
	}
	return float64(ones) / float64(t.Size()*t.Width())
}

// Complement returns a new table whose rows are the bitwise complements of
// t's rows — the ~Q construction of §IV.C.
func (t *Table) Complement() *Table {
	out := &Table{Schema: t.Schema, Rows: make([]bitvec.Vector, len(t.Rows))}
	if t.IDs != nil {
		out.IDs = append([]string(nil), t.IDs...)
	}
	for i, r := range t.Rows {
		out.Rows[i] = r.Not()
	}
	return out
}

// Clone returns a deep copy of the table (schema shared — schemas are
// immutable after construction).
func (t *Table) Clone() *Table {
	out := &Table{Schema: t.Schema, Rows: make([]bitvec.Vector, len(t.Rows))}
	for i, r := range t.Rows {
		out.Rows[i] = r.Clone()
	}
	if t.IDs != nil {
		out.IDs = append([]string(nil), t.IDs...)
	}
	return out
}

// DominatedBy returns the indices of rows dominated by v: rows r with r ⊆ v.
// For SOC-CB-D this is the visibility of a compressed tuple v against D.
func (t *Table) DominatedBy(v bitvec.Vector) []int {
	var out []int
	for i, r := range t.Rows {
		if r.SubsetOf(v) {
			out = append(out, i)
		}
	}
	return out
}

// QueryLog is a workload of conjunctive Boolean queries over a schema.
// Each query is the set of attributes it requires (retrieval semantics:
// tuple t is returned for q iff q ⊆ t).
//
// A query may carry an integer weight ≥ 1, the multiplicity with which it
// counts toward Satisfied and AttrFrequencies. A nil Weights slice means
// every query weighs 1 — the classic unweighted log — and the two forms are
// semantically identical wherever weights are all 1. Weighted logs are what
// compaction produces (internal/compact): folding duplicate queries into one
// weighted entry leaves every solver's objective value unchanged, because a
// satisfied count is just a weighted sum with unit weights.
type QueryLog struct {
	Schema  *Schema
	Queries []bitvec.Vector
	// Weights holds per-query multiplicities, parallel to Queries; nil means
	// all 1. Entries must be ≥ 1 (Validate enforces this): zero or negative
	// weights would break solver invariants that rely on weighted counts
	// being strictly monotone in set containment.
	Weights []int

	// version counts mutations made through Append and Touch. Callers that
	// mutate Queries directly (appending to the slice, or flipping bits of a
	// query in place) must call Touch afterwards so index and cache layers
	// built over the log can notice the change. It is atomic so that Touch —
	// the announcement that a mutation happened — can race with concurrent
	// Version reads from staleness checks without tripping the race detector;
	// mutating Queries itself still requires external synchronization.
	//
	// Append adds 1 per appended query while Touch adds 2, so a derived
	// structure that recorded (version, size) can certify an append-only
	// history: the log grew purely by appends iff the version advanced by
	// exactly the size delta. Any Touch breaks the equality and forces the
	// full-rebuild path.
	version atomic.Uint64

	// Extend lineage: a log built by Extend records its parent and the
	// parent's (version, size) at copy time, so index layers can prove that
	// this log's prefix equals a previously prepared generation and build a
	// delta over only the appended suffix (see ExtendsFrom).
	parent        *QueryLog
	parentVersion uint64
	parentSize    int
}

// NewQueryLog returns an empty query log over the schema.
func NewQueryLog(s *Schema) *QueryLog { return &QueryLog{Schema: s} }

// Append adds a query, validating its width.
func (q *QueryLog) Append(query bitvec.Vector) error {
	return q.AppendWeighted(query, 1)
}

// AppendWeighted adds a query with multiplicity weight ≥ 1. Appending a
// non-unit weight to a log with nil Weights materializes the slice with unit
// entries for the existing queries.
func (q *QueryLog) AppendWeighted(query bitvec.Vector, weight int) error {
	if query.Width() != q.Schema.Width() {
		return fmt.Errorf("dataset: query width %d does not match schema width %d",
			query.Width(), q.Schema.Width())
	}
	if weight < 1 {
		return fmt.Errorf("dataset: query weight %d is not ≥ 1", weight)
	}
	if q.Weights == nil && weight != 1 {
		q.Weights = make([]int, len(q.Queries), len(q.Queries)+1)
		for i := range q.Weights {
			q.Weights[i] = 1
		}
	}
	q.Queries = append(q.Queries, query)
	if q.Weights != nil {
		q.Weights = append(q.Weights, weight)
	}
	q.version.Add(1)
	return nil
}

// Weight returns the multiplicity of query i (1 when Weights is nil).
func (q *QueryLog) Weight(i int) int {
	if q.Weights == nil {
		return 1
	}
	return q.Weights[i]
}

// TotalWeight returns the sum of all query weights — the weighted log size,
// equal to Size() for an unweighted log. It is the upper bound of Satisfied.
func (q *QueryLog) TotalWeight() int {
	if q.Weights == nil {
		return len(q.Queries)
	}
	t := 0
	for _, w := range q.Weights {
		t += w
	}
	return t
}

// Version is a cheap mutation counter: it changes whenever the log is
// modified through Append or Touch. Derived structures (indexes, caches)
// record it at build time and compare to detect staleness without rehashing
// the whole log. Direct mutation of Queries bypasses it — call Touch.
func (q *QueryLog) Version() uint64 { return q.version.Load() }

// Touch records an out-of-band mutation of Queries, invalidating any index
// or cache built over the previous contents. Touch and Version are safe to
// call concurrently with each other and with readers of the log; the
// mutation of Queries they announce is not. Touch advances the version by 2
// where Append advances it by 1, so append-only growth is certifiable from
// (version, size) deltas alone.
func (q *QueryLog) Touch() { q.version.Add(2) }

// Extend returns a new log over the same schema whose queries (and weights)
// are a copy of q's, recording the lineage so derived structures can later
// prove with ExtendsFrom that the new log's prefix is exactly q's current
// contents. This is the copy-on-write append pattern of the serving layer:
// in-flight readers keep the old generation, the new generation takes the
// appends, and the index layer builds a delta over only the suffix.
func (q *QueryLog) Extend() *QueryLog {
	out := NewQueryLog(q.Schema)
	out.Queries = append(make([]bitvec.Vector, 0, len(q.Queries)+1), q.Queries...)
	if q.Weights != nil {
		out.Weights = append(make([]int, 0, len(q.Weights)+1), q.Weights...)
	}
	out.parent = q
	out.parentVersion = q.Version()
	out.parentSize = len(q.Queries)
	return out
}

// ExtendsFrom reports whether q's first `size` queries are provably the
// exact contents the ancestor log had at the given (version, size) snapshot
// — the precondition for building a delta index over q[size:] on top of an
// index built over that snapshot. The proof walks q's Extend lineage:
// each link certifies a prefix copy taken at a recorded parent version, and
// any version drift along the chain (a Touch, or an out-of-band mutation
// announced by one) voids the certificate and returns false.
func (q *QueryLog) ExtendsFrom(ancestor *QueryLog, version uint64, size int) bool {
	if ancestor == nil || size > len(q.Queries) {
		return false
	}
	for cur := q; cur != nil; {
		if cur == ancestor {
			// Same object: valid iff it has not mutated since the snapshot and
			// has only grown by appends (version delta == size delta).
			dv := cur.Version() - version
			ds := len(cur.Queries) - size
			return ds >= 0 && dv == uint64(ds)
		}
		if cur.parent == nil || cur.parentSize < size {
			return false
		}
		// cur itself must have only grown by appends since its Extend-creation
		// (version 0 at size parentSize): a Touch announcing an out-of-band
		// mutation voids the certificate even on the chain's head.
		if cur.Version() != uint64(len(cur.Queries)-cur.parentSize) {
			return false
		}
		if cur.parent == ancestor {
			// cur's prefix was copied from the ancestor at parentVersion; the
			// copy is the snapshot's contents iff the ancestor had at that
			// moment only grown by appends since the snapshot.
			dv := cur.parentVersion - version
			ds := cur.parentSize - size
			return dv == uint64(ds)
		}
		// Intermediate hop: cur's prefix equals parent's contents at
		// parentVersion; that equals parent's *current* contents only if the
		// parent has not mutated since the copy.
		if cur.parent.Version() != cur.parentVersion || len(cur.parent.Queries) != cur.parentSize {
			return false
		}
		cur = cur.parent
	}
	return false
}

// fingerprintSeed starts every log fingerprint; FoldFingerprint continues
// one and FinishFingerprint finalizes it.
const fingerprintSeed = 0x9e3779b97f4a7c15

// Fingerprint returns a 64-bit content hash of the log: every query's bits
// and non-unit weights in order, finalized with the log's length and schema
// width. Two logs with identical query and weight sequences have identical
// fingerprints regardless of how they were built; an explicit all-ones
// Weights slice fingerprints identically to nil. It is computed from scratch
// on every call (O(S·M/64)) and is safe for concurrent use on an unmutated
// log; cache layers use it to key per-log state.
//
// The hash folds queries left to right with the length mixed in at the end,
// so an incremental consumer (the segmented index) can keep the running
// pre-finalized state and extend it in O(appended) on append:
//
//	h := log.FoldFingerprint(FingerprintSeed(), 0, n)   // retained
//	... k queries appended ...
//	h = log.FoldFingerprint(h, n, n+k)
//	fp := FinishFingerprint(h, n+k, log.Width())        // == log.Fingerprint()
func (q *QueryLog) Fingerprint() uint64 {
	return FinishFingerprint(q.FoldFingerprint(FingerprintSeed(), 0, len(q.Queries)), len(q.Queries), q.Width())
}

// FingerprintSeed returns the initial rolling-fingerprint state.
func FingerprintSeed() uint64 { return fingerprintSeed }

// FoldFingerprint folds queries [lo, hi) — and their weights, when not 1 —
// into the rolling fingerprint state h.
func (q *QueryLog) FoldFingerprint(h uint64, lo, hi int) uint64 {
	for i := lo; i < hi; i++ {
		h = q.Queries[i].Hash64(h)
		if q.Weights != nil && q.Weights[i] != 1 {
			h = mix64(h ^ uint64(q.Weights[i])*0x9e3779b97f4a7c15)
		}
	}
	return h
}

// FinishFingerprint finalizes a rolling fingerprint state for a log of
// `size` queries over `width` attributes.
func FinishFingerprint(h uint64, size, width int) uint64 {
	return mix64(h ^ uint64(size)*0x9e3779b97f4a7c15 ^ uint64(width)*0xff51afd7ed558ccd)
}

// mix64 is the SplitMix64 finalizer: a cheap full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Size returns the number of queries S.
func (q *QueryLog) Size() int { return len(q.Queries) }

// Width returns the number of attributes M.
func (q *QueryLog) Width() int { return q.Schema.Width() }

// Validate checks internal consistency.
func (q *QueryLog) Validate() error {
	if q.Schema == nil {
		return fmt.Errorf("dataset: query log has nil schema")
	}
	for i, r := range q.Queries {
		if r.Width() != q.Schema.Width() {
			return fmt.Errorf("dataset: query %d has width %d, schema width %d",
				i, r.Width(), q.Schema.Width())
		}
	}
	if q.Weights != nil {
		if len(q.Weights) != len(q.Queries) {
			return fmt.Errorf("dataset: %d weights for %d queries", len(q.Weights), len(q.Queries))
		}
		for i, w := range q.Weights {
			if w < 1 {
				return fmt.Errorf("dataset: query %d has weight %d, must be ≥ 1", i, w)
			}
		}
	}
	return nil
}

// Satisfied returns the total weight of the queries retrieving the (possibly
// compressed) tuple v — |{q ∈ Q : q ⊆ v}| for an unweighted log, the
// objective of SOC-CB-QL. Over a compacted log (duplicates folded into
// weights) this equals the raw log's count exactly.
func (q *QueryLog) Satisfied(v bitvec.Vector) int {
	n := 0
	if q.Weights == nil {
		for _, query := range q.Queries {
			if query.SubsetOf(v) {
				n++
			}
		}
		return n
	}
	for i, query := range q.Queries {
		if query.SubsetOf(v) {
			n += q.Weights[i]
		}
	}
	return n
}

// SatisfiedBy returns the indices of the queries that retrieve v.
func (q *QueryLog) SatisfiedBy(v bitvec.Vector) []int {
	var out []int
	for i, query := range q.Queries {
		if query.SubsetOf(v) {
			out = append(out, i)
		}
	}
	return out
}

// AttrFrequencies returns per-attribute occurrence weight across queries —
// plain counts for an unweighted log. Compaction preserves these totals, so
// frequency-driven greedy heuristics are invariant under it.
func (q *QueryLog) AttrFrequencies() []int {
	freq := make([]int, q.Width())
	for qi, r := range q.Queries {
		w := 1
		if q.Weights != nil {
			w = q.Weights[qi]
		}
		for _, i := range r.Ones() {
			freq[i] += w
		}
	}
	return freq
}

// AsTable reinterprets the query log as a table (used by SOC-CB-D and by the
// itemset miners, which operate on generic Boolean tables).
func (q *QueryLog) AsTable() *Table {
	return &Table{Schema: q.Schema, Rows: q.Queries}
}

// LogFromTable reinterprets a database as a query log — the reduction that
// solves SOC-CB-D with any SOC-CB-QL algorithm (§V).
func LogFromTable(t *Table) *QueryLog {
	return &QueryLog{Schema: t.Schema, Queries: t.Rows}
}

// SizeHistogram returns a map from query size (number of attributes
// specified) to the count of such queries. Useful for workload diagnostics.
func (q *QueryLog) SizeHistogram() map[int]int {
	h := make(map[int]int)
	for _, r := range q.Queries {
		h[r.Count()]++
	}
	return h
}

// Restrict returns a new query log containing only the queries all of whose
// attributes appear in the tuple t, carrying their weights. Queries that t
// itself cannot satisfy can never be satisfied by a compression of t, so
// solvers prune them up front.
func (q *QueryLog) Restrict(t bitvec.Vector) *QueryLog {
	out := NewQueryLog(q.Schema)
	for qi, query := range q.Queries {
		if query.SubsetOf(t) {
			out.Queries = append(out.Queries, query)
			if q.Weights != nil {
				out.Weights = append(out.Weights, q.Weights[qi])
			}
		}
	}
	return out
}

// Dedup returns a new query log with duplicate queries collapsed — incoming
// weights folded into the survivor's multiplicity, first occurrence order
// preserved — and a parallel slice of the multiplicities. Solvers that score
// candidate compressions repeatedly use the weighted form to cut work on
// skewed workloads; internal/compact wraps this into the full compaction
// pipeline with statistics.
func (q *QueryLog) Dedup() (*QueryLog, []int) {
	seen := make(map[string]int)
	out := NewQueryLog(q.Schema)
	var weights []int
	for qi, query := range q.Queries {
		k := query.Key()
		if idx, ok := seen[k]; ok {
			weights[idx] += q.Weight(qi)
			continue
		}
		seen[k] = len(out.Queries)
		out.Queries = append(out.Queries, query)
		weights = append(weights, q.Weight(qi))
	}
	return out, weights
}

// Window returns a view log over queries [lo, hi), sharing q's backing
// storage (full slice expressions prevent appends from aliasing). The view
// is a private snapshot: its version counter starts at zero and nothing else
// holds it, so indexes built over it never go stale. The segmented index
// uses windows as its per-segment build inputs.
func (q *QueryLog) Window(lo, hi int) *QueryLog {
	out := NewQueryLog(q.Schema)
	out.Queries = q.Queries[lo:hi:hi]
	if q.Weights != nil {
		out.Weights = q.Weights[lo:hi:hi]
	}
	return out
}

// TopAttrs returns the indices of the k most frequent attributes in the log,
// ties broken by lower index. If k exceeds the width it is clamped.
func (q *QueryLog) TopAttrs(k int) []int {
	freq := q.AttrFrequencies()
	idx := make([]int, len(freq))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return freq[idx[a]] > freq[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	if k < 0 {
		k = 0
	}
	return idx[:k]
}
