package dataset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"standout/internal/bitvec"
)

// example1 builds the database, query log and new tuple of Fig 1.
func example1(t *testing.T) (*Table, *QueryLog, bitvec.Vector) {
	t.Helper()
	schema := MustSchema([]string{"AC", "FourDoor", "Turbo", "PowerDoors", "AutoTrans", "PowerBrakes"})
	db := NewTable(schema)
	for i, row := range []string{
		"010100", "011000", "100111", "110101", "110000", "010100", "001100",
	} {
		v, err := bitvec.FromString(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Append(v, ""); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	log := NewQueryLog(schema)
	for _, row := range []string{"110000", "100100", "010100", "000101", "001010"} {
		v, err := bitvec.FromString(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	newTuple, err := bitvec.FromString("110111")
	if err != nil {
		t.Fatal(err)
	}
	return db, log, newTuple
}

func TestSchemaBasics(t *testing.T) {
	s := MustSchema([]string{"AC", "Turbo"})
	if s.Width() != 2 {
		t.Errorf("Width=%d", s.Width())
	}
	if s.Index("Turbo") != 1 || s.Index("missing") != -1 {
		t.Error("Index lookups wrong")
	}
	v, err := s.VectorOf("AC")
	if err != nil || !v.Get(0) || v.Get(1) {
		t.Errorf("VectorOf: %v %v", v, err)
	}
	if _, err := s.VectorOf("nope"); err == nil {
		t.Error("VectorOf accepted unknown attribute")
	}
	if got := s.Names(v); !reflect.DeepEqual(got, []string{"AC"}) {
		t.Errorf("Names=%v", got)
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema([]string{"a", "a"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewSchema([]string{"a", ""}); err == nil {
		t.Error("empty attribute accepted")
	}
}

func TestGenericSchema(t *testing.T) {
	s := GenericSchema(3)
	if !reflect.DeepEqual(s.Attrs(), []string{"a0", "a1", "a2"}) {
		t.Errorf("attrs=%v", s.Attrs())
	}
}

func TestTableAppendValidates(t *testing.T) {
	s := GenericSchema(4)
	tab := NewTable(s)
	if err := tab.Append(bitvec.New(3), ""); err == nil {
		t.Error("width-mismatched row accepted")
	}
	if err := tab.Append(bitvec.New(4), "row1"); err != nil {
		t.Fatal(err)
	}
	if tab.Size() != 1 || tab.IDs[0] != "row1" {
		t.Error("append with id failed")
	}
}

func TestExample1Satisfied(t *testing.T) {
	_, log, _ := example1(t)
	best, err := log.Schema.VectorOf("AC", "FourDoor", "PowerDoors")
	if err != nil {
		t.Fatal(err)
	}
	if got := log.Satisfied(best); got != 3 {
		t.Errorf("Satisfied=%d, want 3 (q1,q2,q3)", got)
	}
	if got := log.SatisfiedBy(best); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("SatisfiedBy=%v", got)
	}
}

func TestExample1Domination(t *testing.T) {
	db, _, _ := example1(t)
	tPrime, err := db.Schema.VectorOf("AC", "FourDoor", "PowerDoors", "PowerBrakes")
	if err != nil {
		t.Fatal(err)
	}
	if got := db.DominatedBy(tPrime); !reflect.DeepEqual(got, []int{0, 3, 4, 5}) {
		t.Errorf("DominatedBy=%v, want [0 3 4 5] (t1,t4,t5,t6)", got)
	}
}

func TestAttrFrequencies(t *testing.T) {
	_, log, _ := example1(t)
	want := []int{2, 2, 1, 3, 1, 1}
	if got := log.AttrFrequencies(); !reflect.DeepEqual(got, want) {
		t.Errorf("AttrFrequencies=%v, want %v", got, want)
	}
}

func TestTopAttrs(t *testing.T) {
	_, log, _ := example1(t)
	// Frequencies: a3:3, a0:2, a1:2, rest 1; stable ties by index.
	if got := log.TopAttrs(3); !reflect.DeepEqual(got, []int{3, 0, 1}) {
		t.Errorf("TopAttrs=%v", got)
	}
	if got := log.TopAttrs(100); len(got) != 6 {
		t.Errorf("TopAttrs clamp failed: %v", got)
	}
	if got := log.TopAttrs(-1); len(got) != 0 {
		t.Errorf("TopAttrs(-1)=%v", got)
	}
}

func TestComplementInvolution(t *testing.T) {
	_, log, _ := example1(t)
	back := log.AsTable().Complement().Complement()
	for i, r := range back.Rows {
		if !r.Equal(log.Queries[i]) {
			t.Errorf("query %d changed after double complement", i)
		}
	}
}

func TestDensity(t *testing.T) {
	db, _, _ := example1(t)
	// 18 ones out of 42 cells.
	if got, want := db.Density(), 18.0/42.0; got != want {
		t.Errorf("Density=%v, want %v", got, want)
	}
	if NewTable(GenericSchema(3)).Density() != 0 {
		t.Error("empty table density should be 0")
	}
}

func TestRestrict(t *testing.T) {
	_, log, newTuple := example1(t)
	r := log.Restrict(newTuple)
	// t = 110111 satisfies-able queries: q1(110000)⊆t, q2(100100)⊆t,
	// q3(010100)⊆t, q4(000101)⊆t; q5(001010) needs Turbo which t lacks.
	if r.Size() != 4 {
		t.Errorf("Restrict kept %d queries, want 4", r.Size())
	}
}

func TestDedup(t *testing.T) {
	s := GenericSchema(3)
	log := NewQueryLog(s)
	q1 := bitvec.FromIndices(3, 0)
	q2 := bitvec.FromIndices(3, 1, 2)
	for _, q := range []bitvec.Vector{q1, q2, q1, q1} {
		if err := log.Append(q); err != nil {
			t.Fatal(err)
		}
	}
	d, w := log.Dedup()
	if d.Size() != 2 || !reflect.DeepEqual(w, []int{3, 1}) {
		t.Errorf("Dedup: size=%d weights=%v", d.Size(), w)
	}
}

func TestSizeHistogram(t *testing.T) {
	_, log, _ := example1(t)
	want := map[int]int{2: 5}
	if got := log.SizeHistogram(); !reflect.DeepEqual(got, want) {
		t.Errorf("SizeHistogram=%v, want %v", got, want)
	}
}

func TestLogFromTableRoundTrip(t *testing.T) {
	db, _, _ := example1(t)
	log := LogFromTable(db)
	if log.Size() != db.Size() || log.Width() != db.Width() {
		t.Error("LogFromTable changed dimensions")
	}
	// Satisfied on the log == DominatedBy count on the table, for any v.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := bitvec.New(db.Width())
		for i := 0; i < v.Width(); i++ {
			if r.Intn(2) == 1 {
				v.Set(i)
			}
		}
		return log.Satisfied(v) == len(db.DominatedBy(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	db, log, _ := example1(t)
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	db.Rows = append(db.Rows, bitvec.New(2))
	if err := db.Validate(); err == nil {
		t.Error("Validate missed bad row width")
	}
	log.Queries = append(log.Queries, bitvec.New(9))
	if err := log.Validate(); err == nil {
		t.Error("Validate missed bad query width")
	}
	bad := &Table{Schema: GenericSchema(2), Rows: []bitvec.Vector{bitvec.New(2), bitvec.New(2)}, IDs: []string{"only-one"}}
	if err := bad.Validate(); err == nil {
		t.Error("Validate missed ID/row count mismatch")
	}
}

func TestVersionAndFingerprint(t *testing.T) {
	log := NewQueryLog(GenericSchema(6))
	v0, f0 := log.Version(), log.Fingerprint()
	if err := log.Append(bitvec.FromIndices(6, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if log.Version() == v0 {
		t.Error("Append did not bump the version")
	}
	if log.Fingerprint() == f0 {
		t.Error("Append did not change the fingerprint")
	}

	// Fingerprint is a pure function of contents: an identical log matches,
	// and recomputation is stable.
	twin := NewQueryLog(GenericSchema(6))
	if err := twin.Append(bitvec.FromIndices(6, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if log.Fingerprint() != twin.Fingerprint() {
		t.Error("identical logs disagree on fingerprint")
	}
	if log.Fingerprint() != log.Fingerprint() {
		t.Error("fingerprint not deterministic")
	}

	// Order matters (the greedy heuristics are order-sensitive, so logs that
	// differ only by permutation must not share cached state).
	a := NewQueryLog(GenericSchema(6))
	b := NewQueryLog(GenericSchema(6))
	for _, idx := range [][]int{{0}, {1, 2}} {
		if err := a.Append(bitvec.FromIndices(6, idx...)); err != nil {
			t.Fatal(err)
		}
	}
	for _, idx := range [][]int{{1, 2}, {0}} {
		if err := b.Append(bitvec.FromIndices(6, idx...)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("permuted logs share a fingerprint")
	}

	// In-place mutation is invisible to Version until Touch announces it,
	// but always visible to Fingerprint.
	fBefore, vBefore := log.Fingerprint(), log.Version()
	log.Queries[0].Set(5)
	if log.Version() != vBefore {
		t.Error("in-place mutation bumped version without Touch")
	}
	if log.Fingerprint() == fBefore {
		t.Error("in-place mutation did not change fingerprint")
	}
	log.Touch()
	if log.Version() == vBefore {
		t.Error("Touch did not bump the version")
	}
}
