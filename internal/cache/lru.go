// Package cache provides a small, dependency-free, concurrency-safe LRU used
// to memoize per-log solver state (prepared indexes, solutions for repeated
// tuples) under the batch solve path. It is deliberately generic and knows
// nothing about solvers: callers own key construction and invalidation
// (typically by folding a content fingerprint into the key, so a mutated log
// simply stops hitting).
package cache

import (
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

type entry[K comparable, V any] struct {
	key        K
	value      V
	prev, next *entry[K, V] // intrusive LRU list; head = most recent
}

// LRU is a size-bounded least-recently-used map. All methods are safe for
// concurrent use. A capacity ≤ 0 disables storage entirely: Put is a no-op
// and Get always misses, which callers use as the "caching off" switch
// without branching at every call site.
type LRU[K comparable, V any] struct {
	// OnEvict, when non-nil, is called (with the cache's lock held — keep it
	// cheap, e.g. a counter bump) for every entry displaced by capacity
	// pressure, Resize, or Purge. Set it before first use.
	OnEvict func(key K, value V)
	// OnHit and OnMiss, when non-nil, observe every Get outcome (called
	// after the lock is released — still keep them cheap). Set before first
	// use; the typical use is exporting the cache's traffic into a metrics
	// registry.
	OnHit  func()
	OnMiss func()

	hits, misses, evictions atomic.Uint64

	mu         sync.Mutex
	capacity   int
	items      map[K]*entry[K, V]
	head, tail *entry[K, V]
}

// NewLRU returns an LRU bounded to capacity entries (≤ 0 disables storage).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	return &LRU[K, V]{capacity: capacity, items: make(map[K]*entry[K, V])}
}

// Get returns the cached value and marks it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	e, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		if c.OnMiss != nil {
			c.OnMiss()
		}
		var zero V
		return zero, false
	}
	c.moveToFront(e)
	v := e.value
	c.mu.Unlock()
	c.hits.Add(1)
	if c.OnHit != nil {
		c.OnHit()
	}
	return v, true
}

// Put inserts or refreshes key, evicting the least recently used entry when
// over capacity. It is a no-op on a disabled (capacity ≤ 0) cache.
func (c *LRU[K, V]) Put(key K, value V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return
	}
	if e, ok := c.items[key]; ok {
		e.value = value
		c.moveToFront(e)
		return
	}
	e := &entry[K, V]{key: key, value: value}
	c.items[key] = e
	c.pushFront(e)
	for len(c.items) > c.capacity {
		c.evictTail()
	}
}

// Remove drops key if present, without counting an eviction.
func (c *LRU[K, V]) Remove(key K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.unlink(e)
		delete(c.items, key)
	}
}

// Resize changes the capacity, evicting oldest entries as needed. A new
// capacity ≤ 0 disables the cache and evicts everything.
func (c *LRU[K, V]) Resize(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	if capacity < 0 {
		capacity = 0
	}
	for len(c.items) > capacity {
		c.evictTail()
	}
}

// Purge evicts every entry, keeping the capacity.
func (c *LRU[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.tail != nil {
		c.evictTail()
	}
}

// Len returns the current entry count.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Cap returns the configured capacity (≤ 0 means disabled).
func (c *LRU[K, V]) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// Stats snapshots the hit/miss/eviction counters.
func (c *LRU[K, V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// evictTail removes the least recently used entry. Caller holds mu.
func (c *LRU[K, V]) evictTail() {
	e := c.tail
	if e == nil {
		return
	}
	c.unlink(e)
	delete(c.items, e.key)
	c.evictions.Add(1)
	if c.OnEvict != nil {
		c.OnEvict(e.key, e.value)
	}
}

func (c *LRU[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *LRU[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *LRU[K, V]) moveToFront(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
