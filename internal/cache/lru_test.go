package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicGetPut(t *testing.T) {
	c := NewLRU[string, int](3)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	c.Put("a", 10) // refresh in place
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("Get(a) after refresh = %d", v)
	}
	if c.Len() != 2 || c.Cap() != 3 {
		t.Fatalf("Len=%d Cap=%d", c.Len(), c.Cap())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionOrder(t *testing.T) {
	var evicted []int
	c := NewLRU[int, string](2)
	c.OnEvict = func(k int, _ string) { evicted = append(evicted, k) }
	c.Put(1, "a")
	c.Put(2, "b")
	c.Get(1)      // 1 becomes most recent
	c.Put(3, "c") // displaces 2, the LRU entry
	if _, ok := c.Get(2); ok {
		t.Fatal("2 survived eviction")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 evicted despite recent use")
	}
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted = %v, want [2]", evicted)
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestDisabled(t *testing.T) {
	c := NewLRU[string, int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored a value")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestRemove(t *testing.T) {
	c := NewLRU[string, int](4)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Remove("a")
	c.Remove("missing") // no-op
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived Remove")
	}
	if c.Stats().Evictions != 0 {
		t.Fatal("Remove counted as eviction")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatal("b damaged by Remove(a)")
	}
}

func TestResizeAndPurge(t *testing.T) {
	c := NewLRU[int, int](4)
	for i := 0; i < 4; i++ {
		c.Put(i, i)
	}
	c.Get(0) // keep 0 warm
	c.Resize(2)
	if c.Len() != 2 || c.Cap() != 2 {
		t.Fatalf("after Resize: Len=%d Cap=%d", c.Len(), c.Cap())
	}
	if _, ok := c.Get(0); !ok {
		t.Fatal("most-recent entry evicted by Resize")
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("LRU entry survived Resize")
	}

	c.Purge()
	if c.Len() != 0 || c.Cap() != 2 {
		t.Fatalf("after Purge: Len=%d Cap=%d", c.Len(), c.Cap())
	}
	c.Put(7, 7)
	if _, ok := c.Get(7); !ok {
		t.Fatal("cache unusable after Purge")
	}

	c.Resize(-1) // disable
	if c.Len() != 0 {
		t.Fatal("Resize(-1) kept entries")
	}
	c.Put(8, 8)
	if c.Len() != 0 {
		t.Fatal("disabled cache accepted Put after Resize(-1)")
	}
}

// TestConcurrent hammers one cache from many goroutines; run under -race this
// is the memory-safety check, and the final Len must respect capacity.
func TestConcurrent(t *testing.T) {
	c := NewLRU[int, int](32)
	c.OnEvict = func(int, int) {}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 64
				c.Put(k, k)
				if v, ok := c.Get(k % 48); ok && v != k%48 {
					t.Errorf("Get(%d) = %d", k%48, v)
				}
				if i%97 == 0 {
					c.Remove(k)
				}
				if i%193 == 0 {
					c.Resize(16 + i%32)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("Len = %d exceeds any capacity used", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no gets recorded")
	}
}

func Example() {
	c := NewLRU[string, string](2)
	c.Put("k1", "v1")
	c.Put("k2", "v2")
	c.Put("k3", "v3") // evicts k1
	_, ok := c.Get("k1")
	fmt.Println(ok, c.Len())
	// Output: false 2
}
