// Package text implements the text-data variant of the paper (§II.B, §V):
// documents are bags of words, queries are keyword sets, and the
// keyword-selection problem — pick the m best keywords/title terms for a new
// ad so that it is visible to the most keyword queries — maps to SOC-CB-QL
// with one Boolean attribute per distinct keyword.
//
// Because the keyword dimension is enormous, §V notes the greedy approaches
// are the only feasible ones at scale; SelectKeywords therefore defaults to
// greedy but accepts any core.Solver for small vocabularies. The package
// also provides a BM25 top-k retrieval engine [19] used by the classifieds
// example to demonstrate the text SOC-Topk setting end to end.
package text

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
)

// Tokenize lowercases the input and splits it into maximal runs of letters
// and digits.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// SelectKeywords solves the keyword-selection problem: given a workload of
// keyword queries and the full keyword set of a new ad, retain m keywords
// maximizing the number of queries whose keywords are all retained.
//
// Only the ad's own keywords can be retained, so the Boolean schema is built
// over those (queries mentioning any other keyword are unsatisfiable and
// dropped), keeping the instance small regardless of corpus vocabulary.
// solver is any core.Solver; greedy solvers are the §V recommendation for
// large vocabularies.
func SelectKeywords(solver core.Solver, queries [][]string, ad []string, m int) ([]string, int, error) {
	return SelectKeywordsContext(context.Background(), solver, queries, ad, m)
}

// SelectKeywordsContext is SelectKeywords under a context, forwarded to the
// solver's SolveContext.
func SelectKeywordsContext(ctx context.Context, solver core.Solver, queries [][]string, ad []string, m int) ([]string, int, error) {
	if len(ad) == 0 {
		return nil, 0, fmt.Errorf("text: ad has no keywords")
	}
	// Vocabulary = distinct ad keywords, in first-seen order.
	var vocab []string
	index := map[string]int{}
	for _, w := range ad {
		if _, ok := index[w]; !ok {
			index[w] = len(vocab)
			vocab = append(vocab, w)
		}
	}
	schema := dataset.MustSchema(vocab)
	log := dataset.NewQueryLog(schema)
	for _, q := range queries {
		v := bitvec.New(len(vocab))
		ok := len(q) > 0
		for _, w := range q {
			j, found := index[w]
			if !found {
				ok = false // needs a keyword the ad does not have
				break
			}
			v.Set(j)
		}
		if ok {
			log.Queries = append(log.Queries, v)
		}
	}
	tuple := bitvec.New(len(vocab)).Not() // the ad has all of its own keywords
	sol, err := solver.SolveContext(ctx, core.Instance{Log: log, Tuple: tuple, M: m})
	if err != nil {
		return nil, 0, fmt.Errorf("text: %w", err)
	}
	return schema.Names(sol.Kept), sol.Satisfied, nil
}

// Corpus is a bag-of-words document collection with BM25 retrieval.
type Corpus struct {
	docs   []map[string]int // term frequencies per document
	lens   []int
	avgLen float64
	df     map[string]int
}

// NewCorpus builds a corpus from tokenized documents.
func NewCorpus(docs [][]string) *Corpus {
	c := &Corpus{df: map[string]int{}}
	total := 0
	for _, words := range docs {
		tf := map[string]int{}
		for _, w := range words {
			tf[w]++
		}
		c.docs = append(c.docs, tf)
		c.lens = append(c.lens, len(words))
		total += len(words)
		for w := range tf {
			c.df[w]++
		}
	}
	if len(docs) > 0 {
		c.avgLen = float64(total) / float64(len(docs))
	}
	return c
}

// Size returns the number of documents.
func (c *Corpus) Size() int { return len(c.docs) }

// BM25 parameters; the common defaults.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// BM25 scores document i against the query terms using the Robertson–Walker
// formulation [19] with non-negative IDF.
func (c *Corpus) BM25(i int, query []string) float64 {
	score := 0.0
	n := float64(len(c.docs))
	dl := float64(c.lens[i])
	for _, w := range query {
		tf := float64(c.docs[i][w])
		if tf == 0 {
			continue
		}
		df := float64(c.df[w])
		idf := math.Log(1 + (n-df+0.5)/(df+0.5))
		denom := tf + bm25K1*(1-bm25B+bm25B*dl/c.avgLen)
		score += idf * tf * (bm25K1 + 1) / denom
	}
	return score
}

// TopK returns the indices of the k highest-BM25 documents for the query,
// descending; documents with zero score are excluded.
func (c *Corpus) TopK(query []string, k int) []int {
	type scored struct {
		i int
		s float64
	}
	var all []scored
	for i := range c.docs {
		if s := c.BM25(i, query); s > 0 {
			all = append(all, scored{i, s})
		}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].s > all[b].s })
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].i
	}
	return out
}
