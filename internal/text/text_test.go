package text

import (
	"reflect"
	"sort"
	"testing"

	"standout/internal/core"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Two-bedroom apt., near TRAIN station! $950/mo")
	want := []string{"two", "bedroom", "apt", "near", "train", "station", "950", "mo"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize=%v", got)
	}
	if Tokenize("") != nil && len(Tokenize("")) != 0 {
		t.Error("empty input")
	}
}

func TestSelectKeywordsGreedy(t *testing.T) {
	queries := [][]string{
		{"apartment", "downtown"},
		{"apartment", "parking"},
		{"apartment", "downtown", "parking"},
		{"house", "pool"}, // ad has no "house": unsatisfiable
		{"downtown"},
	}
	ad := []string{"apartment", "downtown", "parking", "balcony", "laundry"}
	kept, sat, err := SelectKeywords(core.ConsumeAttr{}, queries, ad, 3)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(kept)
	want := []string{"apartment", "downtown", "parking"}
	if !reflect.DeepEqual(kept, want) {
		t.Errorf("kept=%v, want %v", kept, want)
	}
	if sat != 4 {
		t.Errorf("satisfied=%d, want 4", sat)
	}
}

func TestSelectKeywordsExactMatchesGreedyHere(t *testing.T) {
	queries := [][]string{
		{"cheap", "reliable"},
		{"cheap"},
		{"fast", "reliable"},
		{"fast"},
		{"fast"},
	}
	ad := []string{"cheap", "reliable", "fast", "red"}
	keptOpt, satOpt, err := SelectKeywords(core.BruteForce{}, queries, ad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if satOpt != 3 { // fast+reliable: queries 3,4,5... {fast,reliable},{fast},{fast} = 3
		t.Fatalf("optimal satisfied=%d kept=%v", satOpt, keptOpt)
	}
	_, satGreedy, err := SelectKeywords(core.ConsumeAttr{}, queries, ad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if satGreedy > satOpt {
		t.Fatalf("greedy %d beats optimal %d", satGreedy, satOpt)
	}
}

func TestSelectKeywordsDuplicateAdWords(t *testing.T) {
	// Duplicate keywords in the ad must not break the schema.
	kept, sat, err := SelectKeywords(core.BruteForce{},
		[][]string{{"a"}}, []string{"a", "b", "a", "b"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sat != 1 || len(kept) != 1 || kept[0] != "a" {
		t.Errorf("kept=%v sat=%d", kept, sat)
	}
}

func TestSelectKeywordsEmptyAd(t *testing.T) {
	if _, _, err := SelectKeywords(core.BruteForce{}, nil, nil, 1); err == nil {
		t.Error("empty ad accepted")
	}
}

func TestBM25RanksRelevanceSensibly(t *testing.T) {
	docs := [][]string{
		Tokenize("spacious two bedroom apartment near downtown train station"),
		Tokenize("one bedroom apartment quiet neighborhood"),
		Tokenize("luxury downtown penthouse apartment great view downtown living"),
		Tokenize("car for sale low miles"),
	}
	c := NewCorpus(docs)
	if c.Size() != 4 {
		t.Fatalf("size=%d", c.Size())
	}
	q := []string{"downtown", "apartment"}
	top := c.TopK(q, 4)
	if len(top) != 3 { // doc 3 scores zero
		t.Fatalf("TopK=%v", top)
	}
	if top[0] != 2 && top[0] != 0 {
		t.Errorf("top doc=%d, want an apartment doc", top[0])
	}
	if c.BM25(3, q) != 0 {
		t.Error("irrelevant doc scored nonzero")
	}
	if c.BM25(0, q) <= c.BM25(1, q) {
		t.Error("two-term match should outscore zero/one-term match")
	}
}

func TestBM25TermFrequencySaturation(t *testing.T) {
	docs := [][]string{
		{"x"},
		{"x", "x", "x", "x", "x", "x", "x", "x"},
		{"y"},
	}
	c := NewCorpus(docs)
	s1 := c.BM25(0, []string{"x"})
	s8 := c.BM25(1, []string{"x"})
	if s8 <= s1 {
		t.Error("more occurrences should score higher")
	}
	if s8 > s1*(bm25K1+1) {
		t.Error("BM25 saturation bound violated")
	}
}

func TestTopKZeroAndOverflow(t *testing.T) {
	c := NewCorpus([][]string{{"a"}, {"a", "b"}})
	if got := c.TopK([]string{"a"}, 0); len(got) != 0 {
		t.Errorf("k=0: %v", got)
	}
	if got := c.TopK([]string{"a"}, 10); len(got) != 2 {
		t.Errorf("k=10: %v", got)
	}
	if got := c.TopK([]string{"zzz"}, 3); len(got) != 0 {
		t.Errorf("no match: %v", got)
	}
}
