package itemsets

import (
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// table builds a dataset.Table from bit strings.
func table(t *testing.T, rows ...string) *dataset.Table {
	t.Helper()
	if len(rows) == 0 {
		t.Fatal("table needs rows")
	}
	tab := dataset.NewTable(dataset.GenericSchema(len(rows[0])))
	for _, r := range rows {
		v, err := bitvec.FromString(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.Append(v, ""); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// randomTable generates a random Boolean table with the given density.
func randomTable(r *rand.Rand, rows, cols int, density float64) *dataset.Table {
	tab := dataset.NewTable(dataset.GenericSchema(cols))
	for i := 0; i < rows; i++ {
		v := bitvec.New(cols)
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				v.Set(j)
			}
		}
		if err := tab.Append(v, ""); err != nil {
			panic(err)
		}
	}
	return tab
}

// bruteFrequent enumerates all frequent itemsets by scanning every subset.
func bruteFrequent(tab *dataset.Table, minSup int) map[string]int {
	m := NewMiner(tab)
	out := map[string]int{}
	width := tab.Width()
	for mask := 1; mask < 1<<width; mask++ {
		var items []int
		for j := 0; j < width; j++ {
			if mask&(1<<j) != 0 {
				items = append(items, j)
			}
		}
		v := bitvec.FromIndices(width, items...)
		if sup := m.Support(v); sup >= minSup {
			out[v.Key()] = sup
		}
	}
	return out
}

// bruteMaximal filters bruteFrequent down to maximal sets.
func bruteMaximal(tab *dataset.Table, minSup int) map[string]int {
	freq := bruteFrequent(tab, minSup)
	width := tab.Width()
	out := map[string]int{}
	for k, sup := range freq {
		v := keyToVector(k, width)
		maximal := true
		for j := 0; j < width && maximal; j++ {
			if !v.Get(j) {
				sup2 := v.Clone()
				sup2.Set(j)
				if _, ok := freq[sup2.Key()]; ok {
					maximal = false
				}
			}
		}
		if maximal {
			out[k] = sup
		}
	}
	// The empty itemset is maximal iff nothing else is frequent.
	if len(out) == 0 && len(freq) == 0 && tab.Size() >= minSup {
		out[bitvec.New(width).Key()] = tab.Size()
	}
	return out
}

// keyToVector reverses bitvec.Key for test use by scanning all masks — only
// usable for tiny widths, which is all the brute oracles handle anyway.
func keyToVector(key string, width int) bitvec.Vector {
	for mask := 0; mask < 1<<width; mask++ {
		v := bitvec.New(width)
		for j := 0; j < width; j++ {
			if mask&(1<<j) != 0 {
				v.Set(j)
			}
		}
		if v.Key() == key {
			return v
		}
	}
	panic("keyToVector: no match")
}

func toMap(sets []ItemsetCount) map[string]int {
	out := map[string]int{}
	for _, s := range sets {
		out[s.Items.Key()] = s.Support
	}
	return out
}

func sameSets(t *testing.T, label string, got []ItemsetCount, want map[string]int) {
	t.Helper()
	gm := toMap(got)
	if len(gm) != len(got) {
		t.Fatalf("%s: duplicate itemsets in output", label)
	}
	if len(gm) != len(want) {
		t.Fatalf("%s: %d itemsets, want %d", label, len(gm), len(want))
	}
	for k, sup := range want {
		if gm[k] != sup {
			t.Fatalf("%s: itemset support %d, want %d", label, gm[k], sup)
		}
	}
}

func TestSupportBasics(t *testing.T) {
	tab := table(t, "110", "101", "111", "000")
	m := NewMiner(tab)
	if got := m.Support(bitvec.New(3)); got != 4 {
		t.Errorf("empty itemset support=%d, want 4", got)
	}
	if got := m.Support(bitvec.FromIndices(3, 0)); got != 3 {
		t.Errorf("support(a0)=%d", got)
	}
	if got := m.Support(bitvec.FromIndices(3, 0, 1)); got != 2 {
		t.Errorf("support(a0,a1)=%d", got)
	}
	if got := m.Support(bitvec.FromIndices(3, 0, 1, 2)); got != 1 {
		t.Errorf("support(all)=%d", got)
	}
}

func TestSupportPanicsOnWidthMismatch(t *testing.T) {
	m := NewMiner(table(t, "10"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Support(bitvec.New(3))
}

func TestAprioriKnown(t *testing.T) {
	// Classic example: 4 transactions.
	tab := table(t,
		"11010",
		"01101",
		"11011",
		"01010",
	)
	got := toMap(NewMiner(tab).Apriori(2))
	want := bruteFrequent(tab, 2)
	if len(got) != len(want) {
		t.Fatalf("got %d frequent sets, want %d", len(got), len(want))
	}
	for k, sup := range want {
		if got[k] != sup {
			t.Fatalf("support mismatch: got %d want %d", got[k], sup)
		}
	}
}

func TestAprioriEqualsFPGrowthEqualsBrute(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		rows := 4 + r.Intn(12)
		cols := 2 + r.Intn(7)
		density := 0.2 + 0.5*r.Float64()
		tab := randomTable(r, rows, cols, density)
		minSup := 1 + r.Intn(3)
		want := bruteFrequent(tab, minSup)
		m := NewMiner(tab)
		sameSets(t, "Apriori", m.Apriori(minSup), want)
		sameSets(t, "FPGrowth", m.FPGrowth(minSup), want)
	}
}

func TestAprioriCapped(t *testing.T) {
	tab := table(t, "111", "111", "110")
	m := NewMiner(tab)
	capped := m.AprioriCapped(2, 1)
	for _, s := range capped {
		if s.Items.Count() > 1 {
			t.Errorf("capped at level 1 but emitted %v", s.Items)
		}
	}
	if len(capped) != 3 {
		t.Errorf("got %d singletons, want 3", len(capped))
	}
}

func TestMaximalDFSEqualsBrute(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		rows := 3 + r.Intn(12)
		cols := 2 + r.Intn(7)
		density := 0.2 + 0.6*r.Float64()
		tab := randomTable(r, rows, cols, density)
		minSup := 1 + r.Intn(3)
		want := bruteMaximal(tab, minSup)
		got := NewMiner(tab).MaximalDFS(minSup)
		sameSets(t, "MaximalDFS", got, want)
	}
}

func TestMaximalDFSDenseComplement(t *testing.T) {
	// Dense tables are the actual regime of §IV.C: complement a sparse table.
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		tab := randomTable(r, 3+r.Intn(10), 2+r.Intn(6), 0.15).Complement()
		minSup := 1 + r.Intn(2)
		want := bruteMaximal(tab, minSup)
		got := NewMiner(tab).MaximalDFS(minSup)
		sameSets(t, "MaximalDFS dense", got, want)
	}
}

func TestMaximalDFSMinSupTooHigh(t *testing.T) {
	tab := table(t, "11", "11")
	if got := NewMiner(tab).MaximalDFS(3); got != nil {
		t.Errorf("expected nil for unreachable minSup, got %v", got)
	}
}

func TestMaximalDFSEmptyOnlyMaximal(t *testing.T) {
	// Two disjoint singleton rows, minSup 2: no non-empty itemset is
	// frequent; the empty itemset is the unique maximal one.
	tab := table(t, "10", "01")
	got := NewMiner(tab).MaximalDFS(2)
	if len(got) != 1 || got[0].Items.Count() != 0 || got[0].Support != 2 {
		t.Errorf("got %v, want just the empty itemset with support 2", got)
	}
}

func TestRandomWalkMatchesDFS(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for trial := 0; trial < 25; trial++ {
		rows := 4 + r.Intn(10)
		cols := 3 + r.Intn(6)
		// Dense tables, as produced by complementing sparse query logs.
		tab := randomTable(r, rows, cols, 0.25).Complement()
		minSup := 1 + r.Intn(2)
		m := NewMiner(tab)
		want := toMap(m.MaximalDFS(minSup))
		opts := WalkOptions{MaxIters: 4000, Rng: rand.New(rand.NewSource(int64(trial)))}
		got := m.MaximalRandomWalk(minSup, opts)
		// Every walk result must be a genuinely maximal frequent itemset...
		gm := toMap(got)
		for k, sup := range gm {
			if want[k] != sup {
				t.Fatalf("trial %d: walk produced non-maximal or wrong-support set", trial)
			}
		}
		// ...and with this iteration budget on tiny instances it finds all.
		if len(gm) != len(want) {
			t.Fatalf("trial %d: walk found %d of %d maximal sets", trial, len(gm), len(want))
		}
	}
}

func TestBottomUpWalkMatchesDFS(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 15; trial++ {
		tab := randomTable(r, 4+r.Intn(10), 3+r.Intn(5), 0.5)
		minSup := 1 + r.Intn(2)
		m := NewMiner(tab)
		want := toMap(m.MaximalDFS(minSup))
		got := m.MaximalRandomWalkBottomUp(minSup,
			WalkOptions{MaxIters: 4000, Rng: rand.New(rand.NewSource(int64(trial)))})
		gm := toMap(got)
		for k, sup := range gm {
			if want[k] != sup {
				t.Fatalf("trial %d: bottom-up walk produced wrong set", trial)
			}
		}
		if len(gm) != len(want) {
			t.Fatalf("trial %d: bottom-up found %d of %d", trial, len(gm), len(want))
		}
	}
}

func TestWalkDeterministicWithSeed(t *testing.T) {
	tab := randomTable(rand.New(rand.NewSource(5)), 20, 8, 0.4)
	m := NewMiner(tab)
	a := m.MaximalRandomWalk(3, WalkOptions{Rng: rand.New(rand.NewSource(9))})
	b := m.MaximalRandomWalk(3, WalkOptions{Rng: rand.New(rand.NewSource(9))})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic walk: %d vs %d sets", len(a), len(b))
	}
	for i := range a {
		if !a[i].Items.Equal(b[i].Items) || a[i].Support != b[i].Support {
			t.Fatalf("non-deterministic walk at %d", i)
		}
	}
}

func TestWalkFullTableFrequent(t *testing.T) {
	// All rows identical: the full row is the unique maximal frequent set.
	tab := table(t, "1101", "1101", "1101")
	got := NewMiner(tab).MaximalRandomWalk(2, WalkOptions{})
	if len(got) != 1 || got[0].Items.String() != "1101" || got[0].Support != 3 {
		t.Errorf("got %v", got)
	}
}

func TestWalkMinSupAboveRows(t *testing.T) {
	tab := table(t, "11")
	if got := NewMiner(tab).MaximalRandomWalk(5, WalkOptions{}); got != nil {
		t.Errorf("expected nil, got %v", got)
	}
}

func TestGoodTuringUnseen(t *testing.T) {
	if got := GoodTuringUnseen(nil); got != 1 {
		t.Errorf("empty: %v", got)
	}
	if got := GoodTuringUnseen(map[string]int{"a": 1, "b": 1}); got != 1 {
		t.Errorf("all singletons: %v", got)
	}
	if got := GoodTuringUnseen(map[string]int{"a": 3, "b": 1}); got != 0.25 {
		t.Errorf("one of four walks novel: %v", got)
	}
	if got := GoodTuringUnseen(map[string]int{"a": 5}); got != 0 {
		t.Errorf("fully confirmed: %v", got)
	}
}

func TestSortBySizeOrdering(t *testing.T) {
	sets := []ItemsetCount{
		{Items: bitvec.FromIndices(4, 0), Support: 9},
		{Items: bitvec.FromIndices(4, 1, 2, 3), Support: 2},
		{Items: bitvec.FromIndices(4, 0, 1), Support: 5},
		{Items: bitvec.FromIndices(4, 2, 3), Support: 7},
	}
	SortBySize(sets)
	if sets[0].Items.Count() != 3 || sets[1].Support != 7 || sets[2].Support != 5 || sets[3].Items.Count() != 1 {
		t.Errorf("order wrong: %v", sets)
	}
}

func BenchmarkSupport32Attrs(b *testing.B) {
	tab := randomTable(rand.New(rand.NewSource(1)), 2000, 32, 0.3)
	m := NewMiner(tab)
	items := bitvec.FromIndices(32, 1, 5, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Support(items)
	}
}

func BenchmarkTwoPhaseWalkDense(b *testing.B) {
	// The regime of §IV.C: dense complement of a sparse 2000-query log.
	tab := randomTable(rand.New(rand.NewSource(1)), 2000, 32, 0.08).Complement()
	m := NewMiner(tab)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MaximalRandomWalk(20, WalkOptions{Rng: rand.New(rand.NewSource(int64(i)))})
	}
}

func BenchmarkBottomUpWalkDense(b *testing.B) {
	tab := randomTable(rand.New(rand.NewSource(1)), 2000, 32, 0.08).Complement()
	m := NewMiner(tab)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MaximalRandomWalkBottomUp(20, WalkOptions{Rng: rand.New(rand.NewSource(int64(i)))})
	}
}

func TestEclatEqualsBrute(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		rows := 4 + r.Intn(12)
		cols := 2 + r.Intn(7)
		tab := randomTable(r, rows, cols, 0.2+0.5*r.Float64())
		minSup := 1 + r.Intn(3)
		want := bruteFrequent(tab, minSup)
		sameSets(t, "Eclat", NewMiner(tab).Eclat(minSup), want)
	}
}

func TestThreeMinersAgreeOnDenseComplement(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for trial := 0; trial < 10; trial++ {
		tab := randomTable(r, 5+r.Intn(8), 2+r.Intn(5), 0.2).Complement()
		minSup := 1 + r.Intn(2)
		m := NewMiner(tab)
		a := toMap(m.Apriori(minSup))
		f := toMap(m.FPGrowth(minSup))
		e := toMap(m.Eclat(minSup))
		if len(a) != len(f) || len(a) != len(e) {
			t.Fatalf("trial %d: sizes differ: apriori=%d fpgrowth=%d eclat=%d",
				trial, len(a), len(f), len(e))
		}
		for k, sup := range a {
			if f[k] != sup || e[k] != sup {
				t.Fatalf("trial %d: support mismatch", trial)
			}
		}
	}
}

func TestEclatMinSupClamp(t *testing.T) {
	tab := table(t, "11", "10")
	got := NewMiner(tab).Eclat(0) // clamps to 1
	want := bruteFrequent(tab, 1)
	sameSets(t, "Eclat clamp", got, want)
}

func BenchmarkEclatSparse(b *testing.B) {
	tab := randomTable(rand.New(rand.NewSource(1)), 2000, 32, 0.08)
	m := NewMiner(tab)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Eclat(20)
	}
}
