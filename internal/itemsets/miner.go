// Package itemsets implements the frequent-itemset mining substrate of the
// paper's MaxFreqItemSets-SOC-CB-QL algorithm (§IV.C): level-wise Apriori,
// FP-Growth, an exact maximal-frequent-itemset DFS miner used as a
// verification oracle, the bottom-up random walk of Gunopulos et al. [11],
// and the paper's two-phase (down/up) random walk tuned for the dense
// complemented query logs the reduction produces, with the Good–Turing-style
// stopping rule of §IV.C.
//
// Transactions are rows of a dataset.Table; an itemset is a bitvec.Vector
// over the table's attributes; support(I) is the number of rows that are
// supersets of I.
package itemsets

import (
	"fmt"
	"math/bits"
	"sort"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// ItemsetCount pairs an itemset with its support in the mined table.
type ItemsetCount struct {
	Items   bitvec.Vector
	Support int
}

// Miner holds a vertical (column bitmap) representation of a Boolean table
// for fast support counting.
type Miner struct {
	width int
	nrows int
	words int
	cols  [][]uint64 // cols[item][w]: bitmap of rows containing item
}

// NewMiner builds the vertical representation of the table.
func NewMiner(tab *dataset.Table) *Miner {
	width := tab.Width()
	nrows := tab.Size()
	words := (nrows + 63) / 64
	m := &Miner{width: width, nrows: nrows, words: words, cols: make([][]uint64, width)}
	for j := 0; j < width; j++ {
		m.cols[j] = make([]uint64, words)
	}
	for r, row := range tab.Rows {
		for _, j := range row.Ones() {
			m.cols[j][r/64] |= 1 << (uint(r) % 64)
		}
	}
	return m
}

// Width returns the number of items (attributes).
func (m *Miner) Width() int { return m.width }

// NumRows returns the number of transactions.
func (m *Miner) NumRows() int { return m.nrows }

// Support returns the number of rows that contain every item of items.
func (m *Miner) Support(items bitvec.Vector) int {
	if items.Width() != m.width {
		panic(fmt.Sprintf("itemsets: itemset width %d, miner width %d", items.Width(), m.width))
	}
	ones := items.Ones()
	if len(ones) == 0 {
		return m.nrows
	}
	n := 0
	first := m.cols[ones[0]]
	for w := 0; w < m.words; w++ {
		acc := first[w]
		for _, j := range ones[1:] {
			acc &= m.cols[j][w]
			if acc == 0 {
				break
			}
		}
		n += bits.OnesCount64(acc)
	}
	return n
}

// rowset operations: a rowset is a bitmap over transactions.

func (m *Miner) fullRowset() []uint64 {
	rs := make([]uint64, m.words)
	for w := range rs {
		rs[w] = ^uint64(0)
	}
	if m.nrows%64 != 0 && m.words > 0 {
		rs[m.words-1] = (1 << (uint(m.nrows) % 64)) - 1
	}
	return rs
}

// rowsetOf materializes the set of rows supporting items.
func (m *Miner) rowsetOf(items bitvec.Vector) []uint64 {
	rs := m.fullRowset()
	for _, j := range items.Ones() {
		intersect(rs, m.cols[j])
	}
	return rs
}

func intersect(dst, src []uint64) {
	for w := range dst {
		dst[w] &= src[w]
	}
}

func popcount(rs []uint64) int {
	n := 0
	for _, w := range rs {
		n += bits.OnesCount64(w)
	}
	return n
}

// countAnd returns |rs ∩ col| without allocating.
func countAnd(rs, col []uint64) int {
	n := 0
	for w := range rs {
		n += bits.OnesCount64(rs[w] & col[w])
	}
	return n
}

// itemOrder returns item indices sorted by the given supports ascending
// (fail-first order for DFS miners), ties by index.
func itemOrder(supports []int) []int {
	idx := make([]int, len(supports))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return supports[idx[a]] < supports[idx[b]] })
	return idx
}

// singletonSupports returns the support of each single item.
func (m *Miner) singletonSupports() []int {
	out := make([]int, m.width)
	for j := 0; j < m.width; j++ {
		out[j] = popcount(m.cols[j])
	}
	return out
}

// SortBySize orders itemsets by descending size then descending support,
// ties by string form; useful for deterministic test assertions and output.
func SortBySize(sets []ItemsetCount) {
	sort.Slice(sets, func(a, b int) bool {
		ca, cb := sets[a].Items.Count(), sets[b].Items.Count()
		if ca != cb {
			return ca > cb
		}
		if sets[a].Support != sets[b].Support {
			return sets[a].Support > sets[b].Support
		}
		return sets[a].Items.String() < sets[b].Items.String()
	})
}
