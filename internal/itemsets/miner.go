// Package itemsets implements the frequent-itemset mining substrate of the
// paper's MaxFreqItemSets-SOC-CB-QL algorithm (§IV.C): level-wise Apriori,
// FP-Growth, an exact maximal-frequent-itemset DFS miner used as a
// verification oracle, the bottom-up random walk of Gunopulos et al. [11],
// and the paper's two-phase (down/up) random walk tuned for the dense
// complemented query logs the reduction produces, with the Good–Turing-style
// stopping rule of §IV.C.
//
// Transactions are rows of a dataset.Table; an itemset is a bitvec.Vector
// over the table's attributes; support(I) is the number of rows that are
// supersets of I.
package itemsets

import (
	"fmt"
	"math/bits"
	"sort"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// ItemsetCount pairs an itemset with its support in the mined table.
type ItemsetCount struct {
	Items   bitvec.Vector
	Support int
}

// Miner holds a vertical (column bitmap) representation of a Boolean table
// for fast support counting. A miner may be weighted (NewMinerWeighted):
// each transaction then carries a positive integer multiplicity and every
// support is the total weight of the supporting rows, so support thresholds
// are expressed in weight units. An unweighted miner is the weights-all-1
// special case and counts rows exactly as before.
type Miner struct {
	width       int
	nrows       int
	words       int
	cols        [][]uint64 // cols[item][w]: bitmap of rows containing item
	weights     []int      // per-row multiplicities; nil means all 1
	totalWeight int        // Σ weights, == nrows when unweighted
}

// NewMiner builds the vertical representation of the table.
func NewMiner(tab *dataset.Table) *Miner {
	return NewMinerWeighted(tab, nil)
}

// NewMinerWeighted builds the vertical representation of a weighted table:
// weights[r] is row r's multiplicity (each must be ≥ 1 so weighted support
// equality still certifies rowset equality, keeping parent-equivalence
// pruning sound). nil weights mean all rows count once.
func NewMinerWeighted(tab *dataset.Table, weights []int) *Miner {
	width := tab.Width()
	nrows := tab.Size()
	words := (nrows + 63) / 64
	m := &Miner{width: width, nrows: nrows, words: words, cols: make([][]uint64, width)}
	for j := 0; j < width; j++ {
		m.cols[j] = make([]uint64, words)
	}
	for r, row := range tab.Rows {
		for _, j := range row.Ones() {
			m.cols[j][r/64] |= 1 << (uint(r) % 64)
		}
	}
	m.totalWeight = nrows
	if weights != nil {
		if len(weights) != nrows {
			panic(fmt.Sprintf("itemsets: %d weights for %d rows", len(weights), nrows))
		}
		m.weights = weights
		m.totalWeight = 0
		for r, w := range weights {
			if w < 1 {
				panic(fmt.Sprintf("itemsets: weight %d at row %d, must be ≥ 1", w, r))
			}
			m.totalWeight += w
		}
	}
	return m
}

// Width returns the number of items (attributes).
func (m *Miner) Width() int { return m.width }

// NumRows returns the number of transactions.
func (m *Miner) NumRows() int { return m.nrows }

// TotalWeight returns the total row weight — the empty itemset's support.
func (m *Miner) TotalWeight() int { return m.totalWeight }

// pop returns the support of a rowset: its popcount when unweighted, the sum
// of its rows' weights otherwise.
func (m *Miner) pop(rs []uint64) int {
	if m.weights == nil {
		return popcount(rs)
	}
	n := 0
	for w, word := range rs {
		for ; word != 0; word &= word - 1 {
			n += m.weights[w*64+bits.TrailingZeros64(word)]
		}
	}
	return n
}

// and returns the support of rs ∩ col without materializing it.
func (m *Miner) and(rs, col []uint64) int {
	if m.weights == nil {
		return countAnd(rs, col)
	}
	n := 0
	for w := range rs {
		for word := rs[w] & col[w]; word != 0; word &= word - 1 {
			n += m.weights[w*64+bits.TrailingZeros64(word)]
		}
	}
	return n
}

// Support returns the total weight of rows that contain every item of items
// (the row count when the miner is unweighted).
func (m *Miner) Support(items bitvec.Vector) int {
	if items.Width() != m.width {
		panic(fmt.Sprintf("itemsets: itemset width %d, miner width %d", items.Width(), m.width))
	}
	ones := items.Ones()
	if len(ones) == 0 {
		return m.totalWeight
	}
	n := 0
	first := m.cols[ones[0]]
	for w := 0; w < m.words; w++ {
		acc := first[w]
		for _, j := range ones[1:] {
			acc &= m.cols[j][w]
			if acc == 0 {
				break
			}
		}
		if m.weights == nil {
			n += bits.OnesCount64(acc)
		} else {
			for ; acc != 0; acc &= acc - 1 {
				n += m.weights[w*64+bits.TrailingZeros64(acc)]
			}
		}
	}
	return n
}

// rowset operations: a rowset is a bitmap over transactions.

func (m *Miner) fullRowset() []uint64 {
	rs := make([]uint64, m.words)
	for w := range rs {
		rs[w] = ^uint64(0)
	}
	if m.nrows%64 != 0 && m.words > 0 {
		rs[m.words-1] = (1 << (uint(m.nrows) % 64)) - 1
	}
	return rs
}

// rowsetOf materializes the set of rows supporting items.
func (m *Miner) rowsetOf(items bitvec.Vector) []uint64 {
	rs := m.fullRowset()
	for _, j := range items.Ones() {
		intersect(rs, m.cols[j])
	}
	return rs
}

func intersect(dst, src []uint64) {
	for w := range dst {
		dst[w] &= src[w]
	}
}

func popcount(rs []uint64) int {
	n := 0
	for _, w := range rs {
		n += bits.OnesCount64(w)
	}
	return n
}

// countAnd returns |rs ∩ col| without allocating.
func countAnd(rs, col []uint64) int {
	n := 0
	for w := range rs {
		n += bits.OnesCount64(rs[w] & col[w])
	}
	return n
}

// itemOrder returns item indices sorted by the given supports ascending
// (fail-first order for DFS miners), ties by index.
func itemOrder(supports []int) []int {
	idx := make([]int, len(supports))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return supports[idx[a]] < supports[idx[b]] })
	return idx
}

// singletonSupports returns the (weighted) support of each single item.
func (m *Miner) singletonSupports() []int {
	out := make([]int, m.width)
	for j := 0; j < m.width; j++ {
		out[j] = m.pop(m.cols[j])
	}
	return out
}

// SortBySize orders itemsets by descending size then descending support,
// ties by string form; useful for deterministic test assertions and output.
func SortBySize(sets []ItemsetCount) {
	sort.Slice(sets, func(a, b int) bool {
		ca, cb := sets[a].Items.Count(), sets[b].Items.Count()
		if ca != cb {
			return ca > cb
		}
		if sets[a].Support != sets[b].Support {
			return sets[a].Support > sets[b].Support
		}
		return sets[a].Items.String() < sets[b].Items.String()
	})
}
