package itemsets

import (
	"math/rand"
	"testing"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// TestWeightedMinerMatchesExpansion pins the defining property of weighted
// mining: a miner over rows with multiplicities behaves exactly like an
// unweighted miner over the table with each row physically duplicated
// multiplicity times — same supports, same frequent sets, same maximal sets,
// for the same weight-unit threshold.
func TestWeightedMinerMatchesExpansion(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		width := 3 + r.Intn(6)
		nrows := 1 + r.Intn(12)
		tab := dataset.NewTable(dataset.GenericSchema(width))
		expanded := dataset.NewTable(dataset.GenericSchema(width))
		weights := make([]int, nrows)
		for i := 0; i < nrows; i++ {
			row := bitvec.New(width)
			for j := 0; j < width; j++ {
				if r.Intn(2) == 0 {
					row.Set(j)
				}
			}
			w := 1 + r.Intn(4)
			weights[i] = w
			tab.Rows = append(tab.Rows, row)
			for k := 0; k < w; k++ {
				expanded.Rows = append(expanded.Rows, row)
			}
		}

		wm := NewMinerWeighted(tab, weights)
		em := NewMiner(expanded)
		if wm.TotalWeight() != em.NumRows() {
			t.Fatalf("trial %d: TotalWeight %d, expanded rows %d", trial, wm.TotalWeight(), em.NumRows())
		}

		// Support agrees at every itemset of the lattice.
		for mask := 0; mask < 1<<width; mask++ {
			items := bitvec.New(width)
			for j := 0; j < width; j++ {
				if mask&(1<<j) != 0 {
					items.Set(j)
				}
			}
			if got, want := wm.Support(items), em.Support(items); got != want {
				t.Fatalf("trial %d mask %b: weighted support %d, expanded %d", trial, mask, got, want)
			}
		}

		minSup := 1 + r.Intn(wm.TotalWeight())
		wMax := wm.MaximalDFS(minSup)
		eMax := em.MaximalDFS(minSup)
		if len(wMax) != len(eMax) {
			t.Fatalf("trial %d minSup %d: %d maximal sets weighted, %d expanded", trial, minSup, len(wMax), len(eMax))
		}
		for i := range wMax {
			if !wMax[i].Items.Equal(eMax[i].Items) || wMax[i].Support != eMax[i].Support {
				t.Fatalf("trial %d minSup %d: maximal[%d] %v/%d vs %v/%d",
					trial, minSup, i, wMax[i].Items, wMax[i].Support, eMax[i].Items, eMax[i].Support)
			}
		}

		// The three all-frequent miners agree with each other on the weighted
		// miner (their mutual equivalence on unweighted miners is pinned
		// elsewhere).
		ap := wm.Apriori(minSup)
		fp := wm.FPGrowth(minSup)
		ec := wm.Eclat(minSup)
		SortBySize(ap)
		SortBySize(fp)
		SortBySize(ec)
		if len(ap) != len(fp) || len(ap) != len(ec) {
			t.Fatalf("trial %d minSup %d: frequent counts apriori %d, fpgrowth %d, eclat %d",
				trial, minSup, len(ap), len(fp), len(ec))
		}
		for i := range ap {
			if !ap[i].Items.Equal(fp[i].Items) || ap[i].Support != fp[i].Support {
				t.Fatalf("trial %d: apriori/fpgrowth diverge at %d: %v/%d vs %v/%d",
					trial, i, ap[i].Items, ap[i].Support, fp[i].Items, fp[i].Support)
			}
			if !ap[i].Items.Equal(ec[i].Items) || ap[i].Support != ec[i].Support {
				t.Fatalf("trial %d: apriori/eclat diverge at %d", trial, i)
			}
			if want := em.Support(ap[i].Items); ap[i].Support != want {
				t.Fatalf("trial %d: frequent set %v support %d, expanded %d", trial, ap[i].Items, ap[i].Support, want)
			}
		}
	}
}

// TestWeightedWalkMatchesDFS checks the random-walk miners respect weighted
// thresholds: every walk result is a maximal frequent itemset of the weighted
// DFS oracle.
func TestWeightedWalkMatchesDFS(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	width := 6
	tab := dataset.NewTable(dataset.GenericSchema(width))
	weights := make([]int, 0, 10)
	for i := 0; i < 10; i++ {
		row := bitvec.New(width)
		for j := 0; j < width; j++ {
			if r.Intn(3) != 0 { // dense, the §IV.C regime
				row.Set(j)
			}
		}
		tab.Rows = append(tab.Rows, row)
		weights = append(weights, 1+r.Intn(4))
	}
	m := NewMinerWeighted(tab, weights)
	minSup := m.TotalWeight() / 3

	oracle := map[string]int{}
	for _, it := range m.MaximalDFS(minSup) {
		oracle[it.Items.Key()] = it.Support
	}
	for _, it := range m.MaximalRandomWalk(minSup, WalkOptions{}) {
		sup, ok := oracle[it.Items.Key()]
		if !ok {
			t.Fatalf("walk found %v which the DFS oracle does not list as maximal", it.Items)
		}
		if sup != it.Support {
			t.Fatalf("walk support %d for %v, oracle %d", it.Support, it.Items, sup)
		}
	}
}
