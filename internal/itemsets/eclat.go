package itemsets

import (
	"standout/internal/bitvec"
)

// Eclat enumerates all frequent itemsets with support ≥ minSup by
// depth-first search over the vertical representation: each branch extends
// the current itemset with a later item and intersects the supporting
// rowsets (Zaki's Eclat). It explores exactly the frequent portion of the
// lattice, making it the cheapest of the three all-frequent-itemsets miners
// on inputs with long patterns, and a third independent oracle for the
// Apriori ≡ FP-Growth ≡ Eclat equivalence tests.
func (m *Miner) Eclat(minSup int) []ItemsetCount {
	if minSup < 1 {
		minSup = 1
	}
	var out []ItemsetCount

	type ext struct {
		item int
		rows []uint64
		sup  int
	}

	var rec func(prefix []int, exts []ext)
	rec = func(prefix []int, exts []ext) {
		for i, e := range exts {
			items := append(append([]int(nil), prefix...), e.item)
			out = append(out, ItemsetCount{
				Items:   bitvec.FromIndices(m.width, items...),
				Support: e.sup,
			})
			var next []ext
			for _, f := range exts[i+1:] {
				rows := make([]uint64, m.words)
				sup := 0
				for w := range rows {
					rows[w] = e.rows[w] & f.rows[w]
				}
				sup = m.pop(rows)
				if sup >= minSup {
					next = append(next, ext{item: f.item, rows: rows, sup: sup})
				}
			}
			if len(next) > 0 {
				rec(items, next)
			}
		}
	}

	var roots []ext
	for j := 0; j < m.width; j++ {
		if sup := m.pop(m.cols[j]); sup >= minSup {
			roots = append(roots, ext{item: j, rows: m.cols[j], sup: sup})
		}
	}
	rec(nil, roots)
	return out
}
