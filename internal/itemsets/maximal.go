package itemsets

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"standout/internal/bitvec"
	"standout/internal/obsv"
	"standout/internal/par"
)

// pollCtx reports a pending cancellation without blocking.
func pollCtx(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Maximal frequent itemset miners. A frequent itemset is maximal when no
// strict superset is frequent. On the dense complemented query logs of
// §IV.C, all maximal frequent itemsets sit near the top of the Boolean
// lattice, which is what makes the paper's top-down two-phase walk fast.

// MaximalDFS computes the exact set of maximal frequent itemsets with
// support ≥ minSup by depth-first search with tidset propagation, the
// all-candidates lookahead (as in MAFIA/GenMax) and subsumption pruning
// against already-found maximal sets. It is exponential in the worst case
// and serves as the verification oracle and as the exact backend of
// MaxFreqItemSets-SOC-CB-QL for moderate widths.
func (m *Miner) MaximalDFS(minSup int) []ItemsetCount {
	out, _ := m.MaximalDFSContext(context.Background(), minSup)
	return out
}

// MaximalDFSContext is MaximalDFS with cooperative cancellation: the DFS
// polls ctx on every recursive call (each call performs at least one support
// count, so the poll is amortized noise) and unwinds with ctx's error — the
// partial itemset list found so far is returned alongside it. The mining is
// worst-case exponential, which is exactly why a deadline belongs here.
//
// The returned list is canonically ordered by SortBySize — a total order —
// so equal inputs produce byte-equal output regardless of the mining
// schedule; MaximalDFSParallelContext returns the identical list.
func (m *Miner) MaximalDFSContext(ctx context.Context, minSup int) ([]ItemsetCount, error) {
	return m.MaximalDFSParallelContext(ctx, minSup, 1)
}

// MaximalDFSParallelContext is MaximalDFSContext fanned over up to `workers`
// goroutines: the DFS root is expanded once, then its top-level branches run
// concurrently on the scheduler of internal/par, sharing one found-set store
// for cross-branch subsumption pruning. The pruning stays sound under any
// interleaving — a subtree whose ceiling is contained in an already-found
// frequent set holds no new maximal set — and the final canonicalization
// (dedup, maximality filter, SortBySize) makes the returned list identical
// to the sequential one for any worker count. workers ≤ 1 mines on the
// calling goroutine with no synchronization in the store.
func (m *Miner) MaximalDFSParallelContext(ctx context.Context, minSup, workers int) ([]ItemsetCount, error) {
	if minSup < 1 {
		minSup = 1
	}
	if m.totalWeight < minSup {
		return nil, nil // not even the empty itemset is frequent
	}
	// Fail-first item order: least frequent items first.
	order := itemOrder(m.singletonSupports())

	d := &dfsRun{m: m, minSup: minSup, workers: workers}
	err := d.rec(ctx, bitvec.New(m.width), m.fullRowset(), m.totalWeight, order, 0)
	obsv.FromContext(ctx).Count("itemsets.dfs_nodes", d.nodes.Load())
	if err != nil {
		// Partial results: canonicalized, but incomplete — callers treat them
		// as a sample, never a cache-worthy answer.
		return canonicalMaximal(d.store.found), err
	}

	// The DFS can emit the empty itemset when nothing else is frequent; that
	// is the correct answer (the empty set is maximal) and callers handle it.
	return canonicalMaximal(d.store.found), nil
}

// dfsStore accumulates found itemsets, shared by concurrent DFS branches.
// Reads for subsumption racing against appends are sound: a stale read can
// only miss a pruning opportunity, never prune wrongly.
type dfsStore struct {
	mu     sync.Mutex
	locked bool // take mu (parallel run); sequential runs skip the lock
	found  []ItemsetCount
}

func (s *dfsStore) subsumed(items bitvec.Vector) bool {
	if s.locked {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	for _, f := range s.found {
		if items.SubsetOf(f.Items) {
			return true
		}
	}
	return false
}

func (s *dfsStore) add(it ItemsetCount) {
	if s.locked {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	s.found = append(s.found, it)
}

// dfsRun is one maximal-DFS mining run: the miner, the threshold, the shared
// store and the parallelism budget spent at the root.
type dfsRun struct {
	m       *Miner
	minSup  int
	workers int
	store   dfsStore
	nodes   atomic.Int64
}

type dfsExt struct {
	item int
	sup  int
}

func (d *dfsRun) rec(ctx context.Context, current bitvec.Vector, curRows []uint64, curSup int, cand []int, depth int) error {
	if err := pollCtx(ctx); err != nil {
		return err
	}
	d.nodes.Add(1)
	m := d.m
	// Filter candidates to those frequent in the current context, and
	// absorb parent-equivalent items on the way (PEP, as in MAFIA):
	// an item supported by every row of the current context belongs to
	// every maximal superset in this subtree, so it is added outright
	// instead of branched on. On dense tables (the §IV.C regime) this
	// collapses otherwise-exponential subtrees.
	var exts []dfsExt
	for _, j := range cand {
		s := m.and(curRows, m.cols[j])
		if s < d.minSup {
			continue
		}
		if s == curSup {
			if !current.Get(j) {
				current = current.Clone()
				current.Set(j)
			}
			continue
		}
		exts = append(exts, dfsExt{j, s})
	}
	if len(exts) == 0 {
		if !d.store.subsumed(current) {
			d.store.add(ItemsetCount{Items: current.Clone(), Support: curSup})
		}
		return nil
	}
	// Fail-first: least-supported extensions explored first.
	sort.Slice(exts, func(a, b int) bool {
		if exts[a].sup != exts[b].sup {
			return exts[a].sup < exts[b].sup
		}
		return exts[a].item < exts[b].item
	})

	// Lookahead: if current ∪ all viable extensions is frequent, it is the
	// unique maximal set below this node.
	all := current.Clone()
	allRows := append([]uint64(nil), curRows...)
	for _, e := range exts {
		all.Set(e.item)
		intersect(allRows, m.cols[e.item])
	}
	if s := m.pop(allRows); s >= d.minSup {
		if !d.store.subsumed(all) {
			d.store.add(ItemsetCount{Items: all, Support: s})
		}
		return nil
	}

	if depth == 0 && d.workers > 1 && len(exts) > 1 {
		return d.branchesParallel(ctx, current, curRows, exts)
	}
	for i, e := range exts {
		next := current.Clone()
		next.Set(e.item)
		// Subsumption pruning: if next plus every remaining candidate is
		// already inside a found maximal set, this subtree adds nothing.
		withRest := next.Clone()
		for _, e2 := range exts[i+1:] {
			withRest.Set(e2.item)
		}
		if d.store.subsumed(withRest) {
			continue
		}
		nextRows := append([]uint64(nil), curRows...)
		intersect(nextRows, m.cols[e.item])
		rest := make([]int, 0, len(exts)-i-1)
		for _, e2 := range exts[i+1:] {
			rest = append(rest, e2.item)
		}
		if err := d.rec(ctx, next, nextRows, e.sup, rest, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// branchesParallel distributes the root's branch subtrees over internal/par
// workers. Each branch owns its cloned itemset and rowset; only the found
// store is shared, behind its mutex.
func (d *dfsRun) branchesParallel(ctx context.Context, current bitvec.Vector, curRows []uint64, exts []dfsExt) error {
	d.store.locked = true
	res := par.Run(ctx, len(exts), par.Options{Workers: d.workers}, func(ctx context.Context, i int) error {
		e := exts[i]
		next := current.Clone()
		next.Set(e.item)
		withRest := next.Clone()
		for _, e2 := range exts[i+1:] {
			withRest.Set(e2.item)
		}
		if d.store.subsumed(withRest) {
			return nil
		}
		nextRows := append([]uint64(nil), curRows...)
		intersect(nextRows, d.m.cols[e.item])
		rest := make([]int, 0, len(exts)-i-1)
		for _, e2 := range exts[i+1:] {
			rest = append(rest, e2.item)
		}
		return d.rec(ctx, next, nextRows, e.sup, rest, 1)
	})
	d.store.locked = false
	if res.First != nil {
		return res.First.Err
	}
	return nil
}

// canonicalMaximal reduces a raw found list to the canonical answer: exact
// duplicates collapse, sets strictly contained in another survivor drop
// (concurrent branches can emit a set before its superset is known), and the
// result sorts by SortBySize — a total order, so the output is a pure
// function of the input SET of itemsets.
func canonicalMaximal(found []ItemsetCount) []ItemsetCount {
	if found == nil {
		return nil
	}
	seen := make(map[string]struct{}, len(found))
	uniq := found[:0]
	for _, f := range found {
		k := f.Items.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		uniq = append(uniq, f)
	}
	out := make([]ItemsetCount, 0, len(uniq))
	for i, f := range uniq {
		maximal := true
		for j, g := range uniq {
			if i != j && f.Items.SubsetOf(g.Items) && !g.Items.SubsetOf(f.Items) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, f)
		}
	}
	SortBySize(out)
	return out
}

// WalkOptions tunes the random-walk maximal miners.
type WalkOptions struct {
	// MaxIters caps the number of walks; 0 means 10_000.
	MaxIters int
	// MinIters is a floor on the number of walks before the stopping rule may
	// fire. The paper's rule alone can stop after two walks that happen to
	// land on the same maximal set; a floor proportional to the lattice width
	// makes missing a maximal set much less likely. 0 means max(32, 4·width);
	// set to 1 to reproduce the paper's rule verbatim.
	MinIters int
	// MinConfirm is the Good–Turing-style stopping rule of §IV.C: stop once
	// every discovered maximal itemset has been discovered at least this many
	// times. 0 means 2, matching the paper ("discovered at least twice").
	MinConfirm int
	// Rng drives the walks; nil means a fixed-seed source (deterministic).
	Rng *rand.Rand
}

func (o WalkOptions) withDefaults(width int) WalkOptions {
	if o.MaxIters == 0 {
		o.MaxIters = 10_000
	}
	if o.MinIters == 0 {
		o.MinIters = 4 * width
		if o.MinIters < 32 {
			o.MinIters = 32
		}
	}
	if o.MinConfirm == 0 {
		o.MinConfirm = 2
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	return o
}

// MaximalRandomWalk runs the paper's two-phase random walk (§IV.C, Fig 3):
// the Down Phase removes random items from the full itemset until it becomes
// frequent, the Up Phase adds random items while staying frequent, yielding
// one maximal frequent itemset per walk. Walks repeat until the stopping
// rule fires. With high probability all maximal sets are found when their
// number is small, but the result is not guaranteed complete — use
// MaximalDFS when exactness is required.
func (m *Miner) MaximalRandomWalk(minSup int, opts WalkOptions) []ItemsetCount {
	out, _ := m.walk(context.Background(), minSup, opts, true)
	return out
}

// MaximalRandomWalkContext is MaximalRandomWalk with cooperative
// cancellation, polled once per walk (a walk traverses the lattice in
// milliseconds at most). The walks completed so far are returned with ctx's
// error.
func (m *Miner) MaximalRandomWalkContext(ctx context.Context, minSup int, opts WalkOptions) ([]ItemsetCount, error) {
	return m.walk(ctx, minSup, opts, true)
}

// MaximalRandomWalkBottomUp is the bottom-up baseline of Gunopulos et al.
// [11]: start from a random frequent singleton and only walk up. On dense
// tables it traverses many more lattice levels per walk than the two-phase
// variant; the ablation bench quantifies exactly that.
func (m *Miner) MaximalRandomWalkBottomUp(minSup int, opts WalkOptions) []ItemsetCount {
	out, _ := m.walk(context.Background(), minSup, opts, false)
	return out
}

// MaximalRandomWalkBottomUpContext is MaximalRandomWalkBottomUp with
// cooperative cancellation, polled once per walk.
func (m *Miner) MaximalRandomWalkBottomUpContext(ctx context.Context, minSup int, opts WalkOptions) ([]ItemsetCount, error) {
	return m.walk(ctx, minSup, opts, false)
}

func (m *Miner) walk(ctx context.Context, minSup int, opts WalkOptions, topDown bool) ([]ItemsetCount, error) {
	if minSup < 1 {
		minSup = 1
	}
	if m.totalWeight < minSup {
		return nil, nil
	}
	opts = opts.withDefaults(m.width)

	type discovery struct {
		set   ItemsetCount
		times int
	}
	seen := map[string]*discovery{}
	needConfirm := 0 // number of discoveries with times < MinConfirm

	var ctxErr error
	scratch := newWalkScratch(m)
	walks := int64(0)
	for iter := 0; iter < opts.MaxIters; iter++ {
		if ctxErr = pollCtx(ctx); ctxErr != nil {
			break
		}
		walks++
		var items bitvec.Vector
		var rows []uint64
		if topDown {
			items, rows = m.downPhase(minSup, opts.Rng, scratch)
		} else {
			items, rows = m.randomFrequentSingleton(minSup, opts.Rng)
		}
		sup := m.upPhase(items, rows, minSup, opts.Rng, scratch)

		k := items.Key()
		if d, ok := seen[k]; ok {
			d.times++
			if d.times == opts.MinConfirm {
				needConfirm--
			}
		} else {
			seen[k] = &discovery{set: ItemsetCount{Items: items, Support: sup}, times: 1}
			if opts.MinConfirm > 1 {
				needConfirm++
			}
		}
		if needConfirm == 0 && iter+1 >= opts.MinIters {
			break
		}
	}

	obsv.FromContext(ctx).Count("itemsets.walks", walks)
	out := make([]ItemsetCount, 0, len(seen))
	for _, d := range seen {
		out = append(out, d.set)
	}
	SortBySize(out)
	return out, ctxErr
}

// walkScratch holds per-walk-sequence reusable buffers so the hot walk loop
// allocates only the final itemsets it returns.
type walkScratch struct {
	rows   []uint64 // current supporting rowset
	ones   []int    // current item list (down phase)
	viable []int    // frequent extensions (up phase)
}

func newWalkScratch(m *Miner) *walkScratch {
	return &walkScratch{
		rows:   make([]uint64, m.words),
		ones:   make([]int, 0, m.width),
		viable: make([]int, 0, m.width),
	}
}

// resetFull fills rows with the all-rows bitmap.
func (m *Miner) resetFull(rows []uint64) {
	for w := range rows {
		rows[w] = ^uint64(0)
	}
	if m.nrows%64 != 0 && m.words > 0 {
		rows[m.words-1] = (1 << (uint(m.nrows) % 64)) - 1
	}
}

// supportInto recomputes rows = ∩ cols[items] and returns its support.
func (m *Miner) supportInto(rows []uint64, items []int) int {
	m.resetFull(rows)
	for _, j := range items {
		intersect(rows, m.cols[j])
	}
	return m.pop(rows)
}

// downPhase walks from the full itemset down the lattice, removing uniformly
// random items until the itemset becomes frequent. Returns the itemset and
// its supporting rowset (owned by scratch; consumed before the next walk).
func (m *Miner) downPhase(minSup int, rng *rand.Rand, sc *walkScratch) (bitvec.Vector, []uint64) {
	items := bitvec.New(m.width).Not() // full itemset
	sc.ones = sc.ones[:0]
	for j := 0; j < m.width; j++ {
		sc.ones = append(sc.ones, j)
	}
	for {
		if m.supportInto(sc.rows, sc.ones) >= minSup {
			return items, sc.rows
		}
		if len(sc.ones) == 0 {
			// Empty itemset has support = nrows ≥ minSup (checked by caller).
			return items, sc.rows
		}
		i := rng.Intn(len(sc.ones))
		items.Clear(sc.ones[i])
		sc.ones[i] = sc.ones[len(sc.ones)-1]
		sc.ones = sc.ones[:len(sc.ones)-1]
	}
}

// randomFrequentSingleton picks a uniformly random frequent single item; it
// returns nil rows when no item is frequent (the walk then reports only the
// empty itemset via upPhase, matching [11] on degenerate inputs).
func (m *Miner) randomFrequentSingleton(minSup int, rng *rand.Rand) (bitvec.Vector, []uint64) {
	var frequent []int
	for j := 0; j < m.width; j++ {
		if m.pop(m.cols[j]) >= minSup {
			frequent = append(frequent, j)
		}
	}
	items := bitvec.New(m.width)
	if len(frequent) == 0 {
		return items, m.fullRowset() // empty itemset; up phase will confirm
	}
	j := frequent[rng.Intn(len(frequent))]
	items.Set(j)
	return items, m.rowsetOf(items)
}

// upPhase adds uniformly random items that keep the itemset frequent until
// none remains, mutating items in place; returns the final support. sc may
// be nil (a scratch is then allocated locally).
func (m *Miner) upPhase(items bitvec.Vector, rows []uint64, minSup int, rng *rand.Rand, sc *walkScratch) int {
	if sc == nil {
		sc = newWalkScratch(m)
	}
	for {
		sc.viable = sc.viable[:0]
		for j := 0; j < m.width; j++ {
			if items.Get(j) {
				continue
			}
			if m.and(rows, m.cols[j]) >= minSup {
				sc.viable = append(sc.viable, j)
			}
		}
		if len(sc.viable) == 0 {
			return m.pop(rows)
		}
		j := sc.viable[rng.Intn(len(sc.viable))]
		items.Set(j)
		intersect(rows, m.cols[j])
	}
}

// GoodTuringUnseen returns the Good–Turing estimate of the probability that
// the next random walk discovers a new maximal itemset: the fraction of
// walks whose result was seen exactly once [8]. timesSeen maps each
// discovered set to its discovery count. This is the estimator motivating
// the MinConfirm stopping rule; it is exposed for diagnostics and ablations.
func GoodTuringUnseen(timesSeen map[string]int) float64 {
	singletons, total := 0, 0
	for _, c := range timesSeen {
		if c == 1 {
			singletons++
		}
		total += c
	}
	if total == 0 {
		return 1
	}
	return float64(singletons) / float64(total)
}
