package itemsets

import (
	"standout/internal/bitvec"
)

// Apriori computes all frequent itemsets with support ≥ minSup using the
// classic level-wise algorithm of Agrawal & Srikant [2]: level k candidates
// are joins of level k−1 frequent itemsets sharing a (k−2)-prefix, pruned by
// the requirement that all (k−1)-subsets be frequent, then counted against
// the table.
//
// As §IV.C of the paper observes, level-wise mining collapses on dense
// tables (such as complemented query logs) because candidate sets explode;
// Apriori is provided as a baseline and verification oracle for sparse
// inputs, and MaxLevel allows capping the explosion in ablation experiments.
func (m *Miner) Apriori(minSup int) []ItemsetCount {
	return m.AprioriCapped(minSup, 0)
}

// AprioriCapped is Apriori stopped after level maxLevel (0 means no cap).
func (m *Miner) AprioriCapped(minSup, maxLevel int) []ItemsetCount {
	if minSup < 1 {
		minSup = 1
	}
	var out []ItemsetCount

	// Level 1.
	type entry struct {
		items   []int // sorted item indices
		support int
	}
	var level []entry
	for j, sup := range m.singletonSupports() {
		if sup >= minSup {
			level = append(level, entry{items: []int{j}, support: sup})
		}
	}
	emit := func(e entry) {
		out = append(out, ItemsetCount{Items: bitvec.FromIndices(m.width, e.items...), Support: e.support})
	}
	for _, e := range level {
		emit(e)
	}

	for k := 2; len(level) > 0 && (maxLevel == 0 || k <= maxLevel); k++ {
		// Index of frequent (k−1)-itemsets for subset pruning.
		freqPrev := make(map[string]bool, len(level))
		for _, e := range level {
			freqPrev[itemsKey(e.items)] = true
		}

		var next []entry
		// Join step: pairs sharing the first k−2 items. level is generated in
		// lexicographic order, so equal-prefix entries are adjacent.
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i].items, level[j].items
				if !samePrefix(a, b) {
					break
				}
				cand := append(append([]int(nil), a...), b[len(b)-1])
				if !allSubsetsFrequent(cand, freqPrev) {
					continue
				}
				sup := m.Support(bitvec.FromIndices(m.width, cand...))
				if sup >= minSup {
					next = append(next, entry{items: cand, support: sup})
				}
			}
		}
		level = next
		for _, e := range level {
			emit(e)
		}
	}
	return out
}

// samePrefix reports whether two sorted k-item slices agree on all but the
// last element.
func samePrefix(a, b []int) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent applies the Apriori pruning rule: every (k−1)-subset of
// cand must be frequent. Subsets formed by dropping the last two positions
// are covered by the join itself, so only the rest need checking — checking
// all is simpler and still linear in k.
func allSubsetsFrequent(cand []int, freqPrev map[string]bool) bool {
	buf := make([]int, 0, len(cand)-1)
	for drop := 0; drop < len(cand); drop++ {
		buf = buf[:0]
		for i, it := range cand {
			if i != drop {
				buf = append(buf, it)
			}
		}
		if !freqPrev[itemsKey(buf)] {
			return false
		}
	}
	return true
}

// itemsKey encodes a sorted item slice as a map key.
func itemsKey(items []int) string {
	buf := make([]byte, 0, 2*len(items))
	for _, it := range items {
		buf = append(buf, byte(it), byte(it>>8))
	}
	return string(buf)
}
