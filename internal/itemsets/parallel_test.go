package itemsets

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// listFingerprint flattens a mining result — order included, since the
// canonical ordering is part of the parallel determinism contract.
func listFingerprint(sets []ItemsetCount) string {
	s := ""
	for _, ic := range sets {
		s += fmt.Sprintf("%s:%d;", ic.Items, ic.Support)
	}
	return s
}

// TestMaximalDFSParallelBitIdentical checks the package-level determinism
// contract: the parallel DFS returns the exact canonical list — same sets,
// same supports, same order — as the sequential run, for every worker count.
func TestMaximalDFSParallelBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		rows := 3 + r.Intn(14)
		cols := 2 + r.Intn(8)
		density := 0.2 + 0.6*r.Float64()
		tab := randomTable(r, rows, cols, density)
		minSup := 1 + r.Intn(3)
		m := NewMiner(tab)
		seq, err := m.MaximalDFSContext(context.Background(), minSup)
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		want := listFingerprint(seq)
		for _, w := range []int{2, 4, 8} {
			got, err := m.MaximalDFSParallelContext(context.Background(), minSup, w)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			if key := listFingerprint(got); key != want {
				t.Fatalf("trial %d workers=%d diverged\nseq: %s\npar: %s", trial, w, want, key)
			}
		}
	}
}

// TestMaximalDFSParallelCancellation verifies the parallel miner honors a
// pre-cancelled context: it must return the context error promptly and leak
// no goroutines (the -race -count runs would trip on a stuck worker).
func TestMaximalDFSParallelCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	tab := randomTable(r, 30, 12, 0.5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewMiner(tab).MaximalDFSParallelContext(ctx, 1, 4); err == nil {
		t.Fatal("want context error from cancelled parallel mine")
	}
}
