package itemsets

import (
	"sort"

	"standout/internal/bitvec"
)

// FP-Growth (Han, Pei & Yin [14]): compress the transactions into a prefix
// tree ordered by descending item frequency, then mine frequent itemsets by
// recursively building conditional trees, with the single-path shortcut.
// Like Apriori it enumerates ALL frequent itemsets, which §IV.C notes is
// hopeless on dense complemented query logs; it serves as the second
// verification oracle and as the sparse-input miner.

type fpNode struct {
	item     int
	count    int
	parent   *fpNode
	children map[int]*fpNode
	nextLink *fpNode // header-table chain for this item
}

type fpTree struct {
	root    *fpNode
	heads   map[int]*fpNode // first node per item
	tails   map[int]*fpNode // last node per item (for O(1) link append)
	support map[int]int     // item support in this (conditional) database
}

func newFPTree() *fpTree {
	return &fpTree{
		root:    &fpNode{item: -1, children: map[int]*fpNode{}},
		heads:   map[int]*fpNode{},
		tails:   map[int]*fpNode{},
		support: map[int]int{},
	}
}

// insert adds a transaction (items already filtered and order-ranked) with a
// multiplicity count.
func (t *fpTree) insert(items []int, count int) {
	cur := t.root
	for _, it := range items {
		child, ok := cur.children[it]
		if !ok {
			child = &fpNode{item: it, parent: cur, children: map[int]*fpNode{}}
			cur.children[it] = child
			if t.heads[it] == nil {
				t.heads[it] = child
			} else {
				t.tails[it].nextLink = child
			}
			t.tails[it] = child
		}
		child.count += count
		cur = child
	}
}

// singlePath returns the unique root-to-leaf item/count chain if the tree is
// a single path, else nil.
func (t *fpTree) singlePath() []fpNode {
	var path []fpNode
	cur := t.root
	for len(cur.children) == 1 {
		for _, child := range cur.children {
			cur = child
		}
		path = append(path, fpNode{item: cur.item, count: cur.count})
	}
	if len(cur.children) > 0 {
		return nil
	}
	return path
}

// FPGrowth computes all frequent itemsets with support ≥ minSup.
func (m *Miner) FPGrowth(minSup int) []ItemsetCount {
	if minSup < 1 {
		minSup = 1
	}
	supports := m.singletonSupports()

	// Global frequency order: rank items by descending support.
	rank := make([]int, m.width)
	order := make([]int, m.width)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return supports[order[a]] > supports[order[b]] })
	for r, item := range order {
		rank[item] = r
	}

	tree := newFPTree()
	for item, sup := range supports {
		if sup >= minSup {
			tree.support[item] = sup
		}
	}
	// Re-walk the columns to reconstruct transactions row by row.
	for r := 0; r < m.nrows; r++ {
		var items []int
		for j := 0; j < m.width; j++ {
			if m.cols[j][r/64]&(1<<(uint(r)%64)) != 0 && supports[j] >= minSup {
				items = append(items, j)
			}
		}
		sort.Slice(items, func(a, b int) bool { return rank[items[a]] < rank[items[b]] })
		w := 1
		if m.weights != nil {
			w = m.weights[r]
		}
		tree.insert(items, w)
	}

	var out []ItemsetCount
	m.fpMine(tree, nil, minSup, &out)
	return out
}

// fpMine recursively mines tree; suffix is the itemset conditioned on.
func (m *Miner) fpMine(tree *fpTree, suffix []int, minSup int, out *[]ItemsetCount) {
	if path := tree.singlePath(); path != nil {
		// All combinations of path items, each joined with suffix; support is
		// the minimum count along the chosen prefix of the path.
		m.emitPathCombos(path, suffix, out)
		return
	}

	// Process header items in increasing support order (deepest-first).
	items := make([]int, 0, len(tree.support))
	for it := range tree.support {
		items = append(items, it)
	}
	sort.Slice(items, func(a, b int) bool {
		sa, sb := tree.support[items[a]], tree.support[items[b]]
		if sa != sb {
			return sa < sb
		}
		return items[a] < items[b]
	})

	for _, it := range items {
		newSuffix := append(append([]int(nil), suffix...), it)
		*out = append(*out, ItemsetCount{
			Items:   bitvec.FromIndices(m.width, newSuffix...),
			Support: tree.support[it],
		})

		// Build the conditional pattern base for it.
		cond := newFPTree()
		prefixSupport := map[int]int{}
		type prefix struct {
			items []int
			count int
		}
		var prefixes []prefix
		for node := tree.heads[it]; node != nil; node = node.nextLink {
			var path []int
			for p := node.parent; p != nil && p.item >= 0; p = p.parent {
				path = append(path, p.item)
			}
			// path is leaf→root; reverse to root→leaf.
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			prefixes = append(prefixes, prefix{items: path, count: node.count})
			for _, pi := range path {
				prefixSupport[pi] += node.count
			}
		}
		for item, sup := range prefixSupport {
			if sup >= minSup {
				cond.support[item] = sup
			}
		}
		if len(cond.support) == 0 {
			continue
		}
		for _, pf := range prefixes {
			var kept []int
			for _, pi := range pf.items {
				if _, ok := cond.support[pi]; ok {
					kept = append(kept, pi)
				}
			}
			// Order within the conditional tree follows the global rank,
			// which pf.items already respects (root→leaf order).
			cond.insert(kept, pf.count)
		}
		m.fpMine(cond, newSuffix, minSup, out)
	}
}

// emitPathCombos emits every non-empty subset of the single path joined with
// suffix; if suffix is non-empty it has already been emitted by the caller.
func (m *Miner) emitPathCombos(path []fpNode, suffix []int, out *[]ItemsetCount) {
	n := len(path)
	for mask := 1; mask < 1<<n; mask++ {
		items := append([]int(nil), suffix...)
		sup := -1
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				items = append(items, path[i].item)
				if sup < 0 || path[i].count < sup {
					sup = path[i].count
				}
			}
		}
		*out = append(*out, ItemsetCount{Items: bitvec.FromIndices(m.width, items...), Support: sup})
	}
}
