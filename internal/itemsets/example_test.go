package itemsets_test

import (
	"fmt"

	"standout/internal/bitvec"
	"standout/internal/dataset"
	"standout/internal/itemsets"
)

// ExampleMiner_MaximalRandomWalk mines the maximal frequent itemsets of a
// small dense table with the paper's two-phase random walk.
func ExampleMiner_MaximalRandomWalk() {
	tab := dataset.NewTable(dataset.GenericSchema(4))
	for _, row := range []string{"1110", "1110", "1011", "1111"} {
		v, err := bitvec.FromString(row)
		if err != nil {
			panic(err)
		}
		if err := tab.Append(v, ""); err != nil {
			panic(err)
		}
	}
	m := itemsets.NewMiner(tab)
	for _, mfi := range m.MaximalRandomWalk(2, itemsets.WalkOptions{}) {
		fmt.Printf("%s support=%d\n", mfi.Items, mfi.Support)
	}
	// Output:
	// 1110 support=3
	// 1011 support=2
}

// ExampleMiner_Support counts the rows containing an itemset.
func ExampleMiner_Support() {
	tab := dataset.NewTable(dataset.GenericSchema(3))
	for _, row := range []string{"110", "101", "111"} {
		v, err := bitvec.FromString(row)
		if err != nil {
			panic(err)
		}
		if err := tab.Append(v, ""); err != nil {
			panic(err)
		}
	}
	m := itemsets.NewMiner(tab)
	fmt.Println(m.Support(bitvec.FromIndices(3, 0, 2)))
	// Output: 2
}
