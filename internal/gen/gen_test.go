package gen

import (
	"math"
	"testing"

	"standout/internal/dataset"
)

func TestCarsShape(t *testing.T) {
	tab := Cars(1, 500)
	if tab.Size() != 500 || tab.Width() != 32 {
		t.Fatalf("got %dx%d", tab.Size(), tab.Width())
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if tab.IDs[0] != "car00000" {
		t.Errorf("IDs[0]=%q", tab.IDs[0])
	}
}

func TestCarsDeterministic(t *testing.T) {
	a := Cars(7, 100)
	b := Cars(7, 100)
	for i := range a.Rows {
		if !a.Rows[i].Equal(b.Rows[i]) {
			t.Fatalf("row %d differs across same-seed generations", i)
		}
	}
	c := Cars(8, 100)
	same := true
	for i := range a.Rows {
		if !a.Rows[i].Equal(c.Rows[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical tables")
	}
}

func TestCarsMarginalsAndCorrelation(t *testing.T) {
	tab := Cars(42, 8000)
	freq := tab.AttrFrequencies()
	n := float64(tab.Size())
	ac := tab.Schema.Index("AC")
	turbo := tab.Schema.Index("Turbo")
	if f := float64(freq[ac]) / n; f < 0.75 {
		t.Errorf("AC frequency %.2f, want common (>0.75)", f)
	}
	if f := float64(freq[turbo]) / n; f > 0.40 || f < 0.05 {
		t.Errorf("Turbo frequency %.2f, want uncommon", f)
	}

	// Options in the same package must be positively correlated:
	// P(Nav ∧ RearCam) > P(Nav)·P(RearCam).
	nav := tab.Schema.Index("Navigation")
	cam := tab.Schema.Index("RearCamera")
	both := 0
	for _, row := range tab.Rows {
		if row.Get(nav) && row.Get(cam) {
			both++
		}
	}
	pBoth := float64(both) / n
	pProd := float64(freq[nav]) / n * float64(freq[cam]) / n
	if pBoth <= pProd*1.5 {
		t.Errorf("package correlation too weak: P(both)=%.3f vs independent %.3f", pBoth, pProd)
	}
}

func TestSyntheticWorkloadMixture(t *testing.T) {
	schema := dataset.MustSchema(CarAttrs)
	log := SyntheticWorkload(schema, 3, 20000, WorkloadOptions{})
	if log.Size() != 20000 {
		t.Fatalf("size=%d", log.Size())
	}
	hist := log.SizeHistogram()
	want := PaperSizeMixture
	for k := 1; k <= 5; k++ {
		got := float64(hist[k]) / 20000
		if math.Abs(got-want[k-1]) > 0.02 {
			t.Errorf("P(size=%d)=%.3f, want %.2f±0.02", k, got, want[k-1])
		}
	}
	for k := range hist {
		if k < 1 || k > 5 {
			t.Errorf("unexpected query size %d", k)
		}
	}
}

func TestSyntheticWorkloadNarrowSchema(t *testing.T) {
	// Width 3 < max mixture size 5: sizes must clamp, never exceed width.
	schema := dataset.GenericSchema(3)
	log := SyntheticWorkload(schema, 1, 500, WorkloadOptions{})
	for i, q := range log.Queries {
		if q.Count() < 1 || q.Count() > 3 {
			t.Fatalf("query %d has %d attrs", i, q.Count())
		}
	}
}

func TestSyntheticWorkloadAttrBias(t *testing.T) {
	schema := dataset.GenericSchema(10)
	w := make([]float64, 10)
	w[0] = 100
	for i := 1; i < 10; i++ {
		w[i] = 1
	}
	log := SyntheticWorkload(schema, 5, 3000, WorkloadOptions{AttrWeights: w})
	freq := log.AttrFrequencies()
	for i := 1; i < 10; i++ {
		if freq[0] <= freq[i]*3 {
			t.Fatalf("attr 0 (weight 100) freq %d not dominant over attr %d freq %d",
				freq[0], i, freq[i])
		}
	}
}

func TestSyntheticWorkloadBadWeightsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong AttrWeights length")
		}
	}()
	SyntheticWorkload(dataset.GenericSchema(4), 1, 1, WorkloadOptions{AttrWeights: []float64{1}})
}

func TestRealWorkloadShape(t *testing.T) {
	tab := Cars(1, 2000)
	log := RealWorkload(tab, 9, RealWorkloadSize)
	if log.Size() != 185 {
		t.Fatalf("size=%d", log.Size())
	}
	for i, q := range log.Queries {
		if q.Count() < 4 {
			t.Fatalf("query %d has %d attrs; real workload has ≥4 (Fig 7, m=3 ⇒ 0 satisfied)", i, q.Count())
		}
	}
	// Popularity bias: queries should mention frequent options far more often.
	tabFreq := tab.AttrFrequencies()
	logFreq := log.AttrFrequencies()
	popular, rare := 0, 0
	for j := range tabFreq {
		if float64(tabFreq[j]) > 0.6*float64(tab.Size()) {
			popular += logFreq[j]
		} else if float64(tabFreq[j]) < 0.2*float64(tab.Size()) {
			rare += logFreq[j]
		}
	}
	if popular <= rare {
		t.Errorf("popular attrs mentioned %d times, rare %d: bias missing", popular, rare)
	}
}

func TestCliqueInstance(t *testing.T) {
	// Triangle plus a pendant vertex.
	g := Graph{N: 4, Edges: [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}}}
	log, tuple := CliqueInstance(g)
	if log.Size() != 4 || tuple.Count() != 4 {
		t.Fatalf("log size=%d tuple=%v", log.Size(), tuple)
	}
	// The 3-clique {0,1,2}: its compression satisfies 3 = 3·2/2 queries.
	tri := log.Queries[0].Or(log.Queries[1]).Or(log.Queries[2])
	if got := log.Satisfied(tri); got != 3 {
		t.Errorf("clique compression satisfies %d, want 3", got)
	}
}

func TestPlantedCliqueGraph(t *testing.T) {
	g, planted := PlantedCliqueGraph(11, 20, 5, 0.1)
	if len(planted) != 5 {
		t.Fatalf("planted %d vertices", len(planted))
	}
	has := map[[2]int]bool{}
	for _, e := range g.Edges {
		has[e] = true
	}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			i, j := planted[a], planted[b]
			if i > j {
				i, j = j, i
			}
			if !has[[2]int{i, j}] {
				t.Fatalf("planted edge (%d,%d) missing", i, j)
			}
		}
	}
}

func TestRandomTupleAndPickTuples(t *testing.T) {
	schema := dataset.GenericSchema(50)
	v := RandomTuple(schema, 3, 0.5)
	if v.Count() < 10 || v.Count() > 40 {
		t.Errorf("p=0.5 tuple has %d of 50 bits", v.Count())
	}
	if !RandomTuple(schema, 3, 0.5).Equal(v) {
		t.Error("RandomTuple not deterministic for a seed")
	}

	tab := Cars(1, 300)
	picks := PickTuples(tab, 5, 100)
	if len(picks) != 100 {
		t.Fatalf("picked %d", len(picks))
	}
	if got := PickTuples(tab, 5, 1000); len(got) != 300 {
		t.Errorf("over-request returned %d, want all 300", len(got))
	}
}
