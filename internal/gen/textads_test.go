package gen

import (
	"testing"
)

func TestTextVocabulary(t *testing.T) {
	v := TextVocabulary(3)
	if len(v) != 3 || v[0] != "w0000" || v[2] != "w0002" {
		t.Fatalf("vocab=%v", v)
	}
}

func TestTextAdsShape(t *testing.T) {
	ads := TextAds(1, 50, 500, 12)
	if len(ads) != 50 {
		t.Fatalf("ads=%d", len(ads))
	}
	for i, ad := range ads {
		if len(ad) != 12 {
			t.Fatalf("ad %d has %d words", i, len(ad))
		}
		seen := map[string]bool{}
		for _, w := range ad {
			if seen[w] {
				t.Fatalf("ad %d repeats %q", i, w)
			}
			seen[w] = true
		}
	}
}

func TestKeywordWorkloadZipfSkew(t *testing.T) {
	queries := KeywordWorkload(2, 5000, 500)
	if len(queries) != 5000 {
		t.Fatalf("size=%d", len(queries))
	}
	counts := map[string]int{}
	total := 0
	for _, q := range queries {
		if len(q) < 1 || len(q) > 3 {
			t.Fatalf("query size %d", len(q))
		}
		for _, w := range q {
			counts[w]++
			total++
		}
	}
	// Zipf: the most popular word should carry far more mass than average.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) < 10*float64(total)/500 {
		t.Errorf("no Zipf skew: max=%d total=%d distinct=%d", max, total, len(counts))
	}
}

func TestTextAdsDeterministic(t *testing.T) {
	a := TextAds(9, 5, 100, 8)
	b := TextAds(9, 5, 100, 8)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("not deterministic")
			}
		}
	}
}
