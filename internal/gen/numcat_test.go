package gen

import (
	"testing"

	"standout/internal/core"
	"standout/internal/variants"
)

func TestNumericCarsPlausibility(t *testing.T) {
	data := NumericCars(1, 2000)
	if len(data) != 2000 {
		t.Fatalf("rows=%d", len(data))
	}
	for i, row := range data {
		if len(row) != len(NumericCarAttrs) {
			t.Fatalf("row %d has %d values", i, len(row))
		}
		price, mileage, year, mpg := row[0], row[1], row[2], row[3]
		if price < 500 || price > 60000 {
			t.Fatalf("row %d price %v implausible", i, price)
		}
		if mileage < 0 || mileage > 400000 {
			t.Fatalf("row %d mileage %v implausible", i, mileage)
		}
		if year < 1998 || year > 2024 {
			t.Fatalf("row %d year %v out of range", i, year)
		}
		if mpg < 15 || mpg > 50 {
			t.Fatalf("row %d mpg %v implausible", i, mpg)
		}
	}

	// Correlation: newer cars should on average cost more and carry fewer miles.
	var oldPrice, newPrice, oldMiles, newMiles float64
	var oldN, newN int
	for _, row := range data {
		if row[2] < 2005 {
			oldPrice += row[0]
			oldMiles += row[1]
			oldN++
		} else if row[2] > 2018 {
			newPrice += row[0]
			newMiles += row[1]
			newN++
		}
	}
	if oldN == 0 || newN == 0 {
		t.Fatal("year distribution degenerate")
	}
	if newPrice/float64(newN) <= oldPrice/float64(oldN) {
		t.Error("newer cars should cost more on average")
	}
	if newMiles/float64(newN) >= oldMiles/float64(oldN) {
		t.Error("newer cars should have fewer miles on average")
	}
}

func TestRangeWorkloadSatisfiable(t *testing.T) {
	data := NumericCars(1, 500)
	log := RangeWorkload(2, 300, data)
	if err := log.Validate(); err != nil {
		t.Fatal(err)
	}
	if log.Size() != 300 {
		t.Fatalf("size=%d", log.Size())
	}
	// Each query is anchored at a real row, so a reasonable fraction of the
	// inventory passes each query; check the workload is not degenerate.
	totalPass := 0
	for _, q := range log.Queries {
		if q.Active.Count() < 1 || q.Active.Count() > 3 {
			t.Fatalf("query constrains %d attrs", q.Active.Count())
		}
		for _, row := range data {
			if q.Passes(row) {
				totalPass++
			}
		}
	}
	if frac := float64(totalPass) / float64(300*len(data)); frac < 0.1 || frac > 0.95 {
		t.Errorf("mean pass fraction %.2f looks degenerate", frac)
	}
}

func TestRangeWorkloadEmptyData(t *testing.T) {
	log := RangeWorkload(1, 10, nil)
	if log.Size() != 0 {
		t.Errorf("size=%d, want 0 for empty data", log.Size())
	}
}

func TestNumericEndToEnd(t *testing.T) {
	data := NumericCars(1, 200)
	log := RangeWorkload(2, 120, data)
	tuple := data[7]
	sol, err := variants.Numeric(core.BruteForce{}, log, tuple, 2, variants.NumericStrict)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Kept.Count() > 2 {
		t.Fatalf("kept %d attrs", sol.Kept.Count())
	}
	if sol.Satisfied <= 0 {
		t.Error("anchored workload should make some queries satisfiable")
	}
}

func TestCategoricalCarsDistribution(t *testing.T) {
	cs := CatCarSchema()
	tuples := CategoricalCars(1, 4000)
	counts := make([][]int, cs.Width())
	for a := range counts {
		counts[a] = make([]int, len(cs.Domains[a]))
	}
	for _, tuple := range tuples {
		if err := cs.Validate(tuple); err != nil {
			t.Fatal(err)
		}
		for a, v := range tuple {
			counts[a][v]++
		}
	}
	// Skew: the first value of each attribute is the most common.
	for a := range counts {
		for v := 1; v < len(counts[a]); v++ {
			if counts[a][0] < counts[a][v] {
				t.Errorf("attr %d: value 0 (%d) less common than value %d (%d)",
					a, counts[a][0], v, counts[a][v])
			}
		}
	}
}

func TestCategoricalWorkloadAndEndToEnd(t *testing.T) {
	log := CategoricalWorkload(3, 200)
	if len(log.Queries) != 200 {
		t.Fatalf("size=%d", len(log.Queries))
	}
	for i, q := range log.Queries {
		if err := log.Schema.ValidateQuery(q); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		conds := 0
		for _, v := range q {
			if v >= 0 {
				conds++
			}
		}
		if conds < 1 || conds > 2 {
			t.Fatalf("query %d constrains %d attrs", i, conds)
		}
	}

	// A popular car should satisfy plenty of queries with m=2.
	tuple := CategoricalCars(5, 1)[0]
	sol, err := variants.Categorical(core.BruteForce{}, log, tuple, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied < 0 {
		t.Error("negative satisfied")
	}
	direct := 0
	for _, q := range log.Queries {
		if q.Retrieves(tuple) {
			direct++
		}
	}
	if sol.Satisfied > direct {
		t.Errorf("compression satisfies %d > full tuple's %d", sol.Satisfied, direct)
	}
}
