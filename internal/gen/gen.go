// Package gen generates the datasets and query workloads of the paper's
// evaluation (§VII).
//
// The paper's experiments use (a) an online used-cars dataset scraped from
// autos.yahoo.com — 15,211 cars for sale in the Dallas area over 32 Boolean
// option attributes — (b) a real workload of 185 queries collected at UT
// Arlington, and (c) synthetic workloads of up to thousands of queries whose
// sizes follow the mixture 1 attribute 20%, 2 attrs 30%, 3 attrs 30%,
// 4 attrs 10%, 5 attrs 10%.
//
// Neither the scrape nor the collected workload is available, so this
// package synthesizes surrogates with the same shape (see DESIGN.md §3):
// Cars produces a 15,211×32 table whose options are correlated through trim
// levels and option packages, as real car inventories are; RealWorkload
// produces 185 popularity-biased queries of at least 4 attributes each
// (Fig 7's "no query is satisfied for m = 3 because all queries specify more
// than 3 attributes" pins that property of the original workload);
// SyntheticWorkload reproduces the published size mixture exactly.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"standout/internal/bitvec"
	"standout/internal/dataset"
)

// CarAttrs are the 32 Boolean option attributes of the cars surrogate.
var CarAttrs = []string{
	"AC", "PowerSteering", "PowerLocks", "PowerWindows",
	"PowerBrakes", "PowerSeats", "CruiseControl", "KeylessEntry",
	"RemoteStart", "ABS", "DriverAirbag", "PassengerAirbag",
	"SideAirbags", "TractionControl", "StabilityControl", "AlarmSystem",
	"LeatherSeats", "HeatedSeats", "SunRoof", "MoonRoof",
	"Navigation", "RearCamera", "ParkingSensors", "ClimateControl",
	"CDPlayer", "PremiumSound", "SatelliteRadio", "Bluetooth",
	"AlloyWheels", "Turbo", "TowPackage", "FourWheelDrive",
}

// CarsSize is the row count of the paper's cars dataset.
const CarsSize = 15211

// carPackage groups options that co-occur, with per-trim inclusion
// probabilities indexed by trim level (base, mid, luxury, sport).
type carPackage struct {
	attrs []int
	prob  [4]float64
}

// trim distribution: base 30%, mid 40%, luxury 15%, sport 15%.
var trimWeights = []float64{0.30, 0.40, 0.15, 0.15}

func carPackages() []carPackage {
	idx := func(names ...string) []int {
		out := make([]int, len(names))
		for i, n := range names {
			found := -1
			for j, a := range CarAttrs {
				if a == n {
					found = j
					break
				}
			}
			if found < 0 {
				panic("gen: unknown car attribute " + n)
			}
			out[i] = found
		}
		return out
	}
	return []carPackage{
		{idx("AC", "PowerSteering", "PowerBrakes"), [4]float64{0.85, 0.95, 0.99, 0.97}},
		{idx("PowerLocks", "PowerWindows", "KeylessEntry"), [4]float64{0.45, 0.80, 0.97, 0.90}},
		{idx("PowerSeats", "ClimateControl"), [4]float64{0.10, 0.35, 0.92, 0.50}},
		{idx("CruiseControl"), [4]float64{0.40, 0.75, 0.95, 0.85}},
		{idx("RemoteStart", "AlarmSystem"), [4]float64{0.08, 0.30, 0.75, 0.60}},
		{idx("ABS", "DriverAirbag", "PassengerAirbag"), [4]float64{0.55, 0.85, 0.98, 0.95}},
		{idx("SideAirbags", "TractionControl", "StabilityControl"), [4]float64{0.15, 0.45, 0.90, 0.80}},
		{idx("LeatherSeats", "HeatedSeats"), [4]float64{0.03, 0.18, 0.93, 0.55}},
		{idx("SunRoof"), [4]float64{0.05, 0.22, 0.65, 0.60}},
		{idx("MoonRoof"), [4]float64{0.03, 0.12, 0.45, 0.35}},
		{idx("Navigation", "RearCamera", "ParkingSensors"), [4]float64{0.02, 0.20, 0.85, 0.55}},
		{idx("CDPlayer"), [4]float64{0.60, 0.80, 0.90, 0.85}},
		{idx("PremiumSound", "SatelliteRadio", "Bluetooth"), [4]float64{0.08, 0.35, 0.88, 0.70}},
		{idx("AlloyWheels"), [4]float64{0.15, 0.45, 0.80, 0.95}},
		{idx("Turbo"), [4]float64{0.02, 0.08, 0.20, 0.75}},
		{idx("TowPackage"), [4]float64{0.10, 0.15, 0.10, 0.05}},
		{idx("FourWheelDrive"), [4]float64{0.12, 0.25, 0.35, 0.30}},
	}
}

// flipProb is per-attribute noise applied after package draws, so no option
// is perfectly correlated with its package.
const flipProb = 0.04

// Cars generates the used-cars dataset surrogate with n rows (use CarsSize
// for the paper's scale) over the CarAttrs schema. The same seed always
// yields the same table.
func Cars(seed int64, n int) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	schema := dataset.MustSchema(CarAttrs)
	tab := dataset.NewTable(schema)
	pkgs := carPackages()
	for i := 0; i < n; i++ {
		trim := sampleWeighted(rng, trimWeights)
		row := bitvec.New(schema.Width())
		for _, p := range pkgs {
			if rng.Float64() < p.prob[trim] {
				for _, a := range p.attrs {
					row.Set(a)
				}
			}
		}
		for j := 0; j < schema.Width(); j++ {
			if rng.Float64() < flipProb {
				if row.Get(j) {
					row.Clear(j)
				} else {
					row.Set(j)
				}
			}
		}
		if err := tab.Append(row, fmt.Sprintf("car%05d", i)); err != nil {
			panic(err) // row built over the same schema; cannot happen
		}
	}
	return tab
}

func sampleWeighted(rng *rand.Rand, weights []float64) int {
	x := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

// PaperSizeMixture is the query-size distribution of the paper's synthetic
// workload: P(size=k) for k = 1..5.
var PaperSizeMixture = []float64{0.20, 0.30, 0.30, 0.10, 0.10}

// WorkloadOptions tunes query-log generation.
type WorkloadOptions struct {
	// SizeWeights[k-1] is the probability of a query with k attributes.
	// Nil means PaperSizeMixture.
	SizeWeights []float64
	// AttrWeights biases attribute selection (need not be normalized).
	// Nil means uniform. Length must equal the schema width if set.
	AttrWeights []float64
}

// SyntheticWorkload generates size queries over the schema using the paper's
// synthetic-workload recipe: query sizes follow the mixture and attributes
// are chosen randomly (uniformly unless biased via opts).
func SyntheticWorkload(schema *dataset.Schema, seed int64, size int, opts WorkloadOptions) *dataset.QueryLog {
	rng := rand.New(rand.NewSource(seed))
	weights := opts.SizeWeights
	if weights == nil {
		weights = PaperSizeMixture
	}
	attrW := opts.AttrWeights
	if attrW == nil {
		attrW = make([]float64, schema.Width())
		for i := range attrW {
			attrW[i] = 1
		}
	}
	if len(attrW) != schema.Width() {
		panic(fmt.Sprintf("gen: %d attribute weights for width %d", len(attrW), schema.Width()))
	}
	log := dataset.NewQueryLog(schema)
	for i := 0; i < size; i++ {
		k := sampleWeighted(rng, weights) + 1
		if k > schema.Width() {
			k = schema.Width()
		}
		log.Queries = append(log.Queries, sampleQuery(rng, attrW, k, schema.Width()))
	}
	return log
}

// sampleQuery draws k distinct attributes with probability proportional to
// attrW, without replacement.
func sampleQuery(rng *rand.Rand, attrW []float64, k, width int) bitvec.Vector {
	q := bitvec.New(width)
	w := append([]float64(nil), attrW...)
	total := 0.0
	for _, x := range w {
		total += x
	}
	for picked := 0; picked < k && total > 0; picked++ {
		x := rng.Float64() * total
		acc := 0.0
		chosen := -1
		for j, wj := range w {
			if wj <= 0 {
				continue
			}
			acc += wj
			if x < acc {
				chosen = j
				break
			}
		}
		if chosen < 0 { // numerical tail: last positive weight
			for j := width - 1; j >= 0; j-- {
				if w[j] > 0 {
					chosen = j
					break
				}
			}
		}
		q.Set(chosen)
		total -= w[chosen]
		w[chosen] = 0
	}
	return q
}

// RealWorkloadSize is the size of the paper's collected real workload.
const RealWorkloadSize = 185

// RealWorkload generates the surrogate of the UT-Arlington workload of 185
// queries. Three properties of the original workload are pinned by the
// paper's Fig 7 discussion and reproduced here:
//
//  1. every query specifies more than 3 attributes ("no query is satisfied
//     for m = 3 because all queries specify more than 3 attributes");
//  2. query attributes are heavily concentrated on the popular options —
//     that concentration is what makes ConsumeAttr/ConsumeAttrCumul
//     near-optimal in Fig 7 (their top-m frequent attributes complete whole
//     queries);
//  3. the smallest queries tend to carry uncommon attributes — the paper's
//     stated reason ConsumeQueries performs poorly ("the attributes of the
//     queries with few attributes, which are selected first, are not common
//     in the workload").
//
// Mainstream buyers (≈70%) issue 5–6-attribute queries Zipf-concentrated on
// the options popular in the table; niche buyers (≈30%) issue 4-attribute
// queries over the unpopular tail. Passing the Cars table reproduces the
// evaluation setting; any table over the same schema works.
func RealWorkload(tab *dataset.Table, seed int64, size int) *dataset.QueryLog {
	freq := tab.AttrFrequencies()
	width := tab.Schema.Width()

	// Rank attributes by table popularity (descending).
	rank := make([]int, width)
	for i := range rank {
		rank[i] = i
	}
	sortByFreqDesc(rank, freq)

	// Zipf weights over popularity ranks, and the reverse for niche queries.
	const zipfExp = 1.6
	hot := make([]float64, width)
	cold := make([]float64, width)
	for pos, attr := range rank {
		hot[attr] = 1 / powf(float64(pos+1), zipfExp)
		cold[attr] = 1 / powf(float64(width-pos), zipfExp)
	}

	rng := rand.New(rand.NewSource(seed))
	log := dataset.NewQueryLog(tab.Schema)
	for i := 0; i < size; i++ {
		if rng.Float64() < 0.70 {
			k := 5
			if rng.Float64() < 0.40 {
				k = 6
			}
			if k > width {
				k = width
			}
			log.Queries = append(log.Queries, sampleQuery(rng, hot, k, width))
		} else {
			k := 4
			if k > width {
				k = width
			}
			log.Queries = append(log.Queries, sampleQuery(rng, cold, k, width))
		}
	}
	return log
}

func sortByFreqDesc(idx []int, freq []int) {
	sort.SliceStable(idx, func(a, b int) bool { return freq[idx[a]] > freq[idx[b]] })
}

func powf(x, e float64) float64 { return math.Pow(x, e) }

// Graph is an undirected graph for the Clique reduction of Theorem 1.
type Graph struct {
	N     int
	Edges [][2]int
}

// CliqueInstance converts a graph into the SOC-CB-QL instance of the paper's
// NP-completeness proof: attributes are vertices, the query log has one
// 2-attribute query per edge, and the new tuple has every attribute set. A
// compression with m = r attributes satisfies r(r−1)/2 queries iff the graph
// has an r-clique.
func CliqueInstance(g Graph) (*dataset.QueryLog, bitvec.Vector) {
	schema := dataset.GenericSchema(g.N)
	log := dataset.NewQueryLog(schema)
	for _, e := range g.Edges {
		log.Queries = append(log.Queries, bitvec.FromIndices(g.N, e[0], e[1]))
	}
	return log, bitvec.New(g.N).Not()
}

// PlantedCliqueGraph builds a random graph on n vertices with edge
// probability p, then plants a clique on k random vertices. It returns the
// graph and the planted vertex set.
func PlantedCliqueGraph(seed int64, n, k int, p float64) (Graph, []int) {
	rng := rand.New(rand.NewSource(seed))
	g := Graph{N: n}
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				adj[i][j] = true
			}
		}
	}
	planted := rng.Perm(n)[:k]
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			i, j := planted[a], planted[b]
			if i > j {
				i, j = j, i
			}
			adj[i][j] = true
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if adj[i][j] {
				g.Edges = append(g.Edges, [2]int{i, j})
			}
		}
	}
	return g, planted
}

// RandomTuple draws a random tuple with each attribute present independently
// with probability p — a generic to-be-advertised product for experiments on
// synthetic schemas.
func RandomTuple(schema *dataset.Schema, seed int64, p float64) bitvec.Vector {
	rng := rand.New(rand.NewSource(seed))
	v := bitvec.New(schema.Width())
	for j := 0; j < schema.Width(); j++ {
		if rng.Float64() < p {
			v.Set(j)
		}
	}
	return v
}

// PickTuples selects n distinct random rows of the table as to-be-advertised
// tuples, mirroring the paper's "averaged over 100 randomly selected
// to-be-advertised cars from the dataset". If n exceeds the table size, all
// rows are returned.
func PickTuples(tab *dataset.Table, seed int64, n int) []bitvec.Vector {
	rng := rand.New(rand.NewSource(seed))
	if n > tab.Size() {
		n = tab.Size()
	}
	perm := rng.Perm(tab.Size())[:n]
	out := make([]bitvec.Vector, n)
	for i, idx := range perm {
		out[i] = tab.Rows[idx].Clone()
	}
	return out
}
