package gen

import (
	"fmt"
	"math/rand"
)

// Text-data surrogates for the §V text variant: classified ads as bags of
// keywords drawn from a Zipf vocabulary, and keyword-query workloads biased
// the way searchers actually type (popular words dominate).

// TextVocabulary returns a synthetic vocabulary of the given size; word i is
// "w<i>" and popularity follows a Zipf law with exponent ~1.1, the shape of
// real keyword logs.
func TextVocabulary(size int) []string {
	out := make([]string, size)
	for i := range out {
		out[i] = fmt.Sprintf("w%04d", i)
	}
	return out
}

func zipfWeights(size int, exponent float64) []float64 {
	w := make([]float64, size)
	for i := range w {
		w[i] = 1 / powf(float64(i+1), exponent)
	}
	return w
}

// TextAds generates nAds classified ads, each a bag of adLen distinct
// keywords drawn Zipf-biased from a vocabulary of vocabSize words.
func TextAds(seed int64, nAds, vocabSize, adLen int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	vocab := TextVocabulary(vocabSize)
	weights := zipfWeights(vocabSize, 1.1)
	out := make([][]string, nAds)
	for i := range out {
		q := sampleQuery(rng, weights, adLen, vocabSize)
		words := make([]string, 0, adLen)
		for _, j := range q.Ones() {
			words = append(words, vocab[j])
		}
		out[i] = words
	}
	return out
}

// KeywordWorkload generates size keyword queries of 1–3 words over the same
// Zipf vocabulary. Queries are independent of any specific ad, as a search
// log is.
func KeywordWorkload(seed int64, size, vocabSize int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	vocab := TextVocabulary(vocabSize)
	weights := zipfWeights(vocabSize, 1.1)
	out := make([][]string, size)
	for i := range out {
		k := 1 + rng.Intn(3)
		q := sampleQuery(rng, weights, k, vocabSize)
		words := make([]string, 0, k)
		for _, j := range q.Ones() {
			words = append(words, vocab[j])
		}
		out[i] = words
	}
	return out
}
