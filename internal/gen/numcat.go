package gen

import (
	"math/rand"

	"standout/internal/dataset"
)

// Numeric and categorical extensions of the cars surrogate, supporting the
// paper's §II.B/§V variants end to end: numeric attributes with range-query
// workloads, and categorical attributes with value-constraining workloads.

// NumericCarAttrs are the numeric attributes of a car listing.
var NumericCarAttrs = []string{"Price", "Mileage", "Year", "MPG"}

// NumericCars generates n rows of correlated numeric car data aligned with
// NumericCarAttrs: newer cars cost more, carry fewer miles, and are slightly
// more efficient. Values are plausible for a used-car market.
func NumericCars(seed int64, n int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		year := 1998 + rng.Intn(27) // 1998–2024
		age := float64(2025 - year)
		mileage := age*9000 + rng.Float64()*40000 // miles accumulate with age
		price := 32000 - age*1700 - mileage*0.06 + rng.Float64()*6000
		if price < 800 {
			price = 800 + rng.Float64()*700
		}
		mpg := 21 + (float64(year)-1998)*0.35 + rng.Float64()*9
		out[i] = []float64{price, mileage, float64(year), mpg}
	}
	return out
}

// NumericSchema returns the schema over NumericCarAttrs.
func NumericSchema() *dataset.Schema { return dataset.MustSchema(NumericCarAttrs) }

// RangeWorkload generates size range queries over the numeric car data:
// each query constrains one to three attributes with ranges spanning a
// plausible buyer window around values present in the data (budget caps,
// mileage caps, minimum year, minimum MPG).
func RangeWorkload(seed int64, size int, data [][]float64) *dataset.NumLog {
	rng := rand.New(rand.NewSource(seed))
	schema := NumericSchema()
	log := &dataset.NumLog{Schema: schema}
	if len(data) == 0 {
		return log
	}
	for i := 0; i < size; i++ {
		q := dataset.NewRangeQuery(schema.Width())
		anchor := data[rng.Intn(len(data))]
		nConds := 1 + rng.Intn(3)
		attrs := rng.Perm(schema.Width())[:nConds]
		for _, a := range attrs {
			switch a {
			case 0: // Price: budget cap around the anchor's price
				q.SetRange(0, 0, anchor[0]*(1.0+0.4*rng.Float64()))
			case 1: // Mileage: cap
				q.SetRange(1, 0, anchor[1]*(1.0+0.5*rng.Float64()))
			case 2: // Year: minimum
				q.SetRange(2, anchor[2]-float64(rng.Intn(4)), 2100)
			case 3: // MPG: minimum
				q.SetRange(3, anchor[3]*(0.7+0.2*rng.Float64()), 1000)
			}
		}
		log.Queries = append(log.Queries, q)
	}
	return log
}

// CatCarSchema returns a categorical schema for car listings: Make, Color,
// Transmission and BodyStyle.
func CatCarSchema() *dataset.CatSchema {
	cs, err := dataset.NewCatSchema(
		[]string{"Make", "Color", "Transmission", "BodyStyle"},
		[][]string{
			{"Toyota", "Honda", "Ford", "Chevrolet", "Nissan", "BMW", "Mercedes", "Hyundai"},
			{"White", "Black", "Silver", "Gray", "Blue", "Red", "Green", "Brown"},
			{"Automatic", "Manual"},
			{"Sedan", "SUV", "Truck", "Coupe", "Hatchback"},
		})
	if err != nil {
		panic(err) // static schema; cannot fail
	}
	return cs
}

// catValueWeights skews value popularity per attribute (Toyota and white
// cars are common; Mercedes coupes are not).
var catValueWeights = [][]float64{
	{0.22, 0.18, 0.16, 0.14, 0.10, 0.08, 0.06, 0.06},
	{0.24, 0.20, 0.16, 0.14, 0.10, 0.09, 0.04, 0.03},
	{0.88, 0.12},
	{0.40, 0.30, 0.14, 0.08, 0.08},
}

// CategoricalCars generates n categorical car tuples with skewed value
// popularity.
func CategoricalCars(seed int64, n int) []dataset.CatTuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]dataset.CatTuple, n)
	for i := range out {
		t := make(dataset.CatTuple, len(catValueWeights))
		for a, w := range catValueWeights {
			t[a] = sampleWeighted(rng, w)
		}
		out[i] = t
	}
	return out
}

// CategoricalWorkload generates size categorical queries: each constrains
// one or two attributes, drawn with the same popularity skew buyers show.
func CategoricalWorkload(seed int64, size int) *dataset.CatLog {
	rng := rand.New(rand.NewSource(seed))
	cs := CatCarSchema()
	log := &dataset.CatLog{Schema: cs}
	for i := 0; i < size; i++ {
		q := make(dataset.CatQuery, cs.Width())
		for a := range q {
			q[a] = -1
		}
		nConds := 1 + rng.Intn(2)
		for _, a := range rng.Perm(cs.Width())[:nConds] {
			q[a] = sampleWeighted(rng, catValueWeights[a])
		}
		log.Queries = append(log.Queries, q)
	}
	return log
}
