package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"standout/internal/core"
)

// TestScoreEndpointMatchesCore checks both counting oracles against the core
// counters on a weighted log: /score is the shard coordinator's entire view
// of a shard, so its counts must be exactly the weighted core counts.
func TestScoreEndpointMatchesCore(t *testing.T) {
	_, ts, log, tuples := newWeightedServer(t, 19, nil)
	specs := make([]string, len(tuples))
	for i, tuple := range tuples {
		specs[i] = tuple.String()
	}
	for _, mode := range []string{"subset", "superset"} {
		status, raw := postJSON(t, ts.URL+"/score", scoreRequest{Mode: mode, Candidates: specs})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d body %s", mode, status, raw)
		}
		resp := decode[scoreResponse](t, raw)
		var want []int
		var err error
		if mode == "subset" {
			want, err = core.CountSatisfied(context.Background(), log, tuples)
		} else {
			want, err = core.CountContaining(context.Background(), log, tuples)
		}
		if err != nil {
			t.Fatalf("%s core counts: %v", mode, err)
		}
		if len(resp.Counts) != len(want) {
			t.Fatalf("%s: %d counts for %d candidates", mode, len(resp.Counts), len(want))
		}
		for i := range want {
			if resp.Counts[i] != want[i] {
				t.Errorf("%s candidate %d: /score %d, core %d", mode, i, resp.Counts[i], want[i])
			}
		}
		if resp.TotalWeight != log.TotalWeight() || resp.Queries != log.Size() || resp.Width != log.Width() {
			t.Errorf("%s snapshot: %d×%d w%d, log is %d×%d w%d", mode,
				resp.Queries, resp.TotalWeight, resp.Width, log.Size(), log.TotalWeight(), log.Width())
		}
	}

	// Name-list candidate syntax parses against the schema, like /solve.
	names := strings.Join(log.Schema.Names(tuples[0]), ",")
	status, raw := postJSON(t, ts.URL+"/score", scoreRequest{Mode: "subset", Candidates: []string{names}})
	if status != http.StatusOK {
		t.Fatalf("name-list candidate: status %d body %s", status, raw)
	}
	want, err := core.CountSatisfied(context.Background(), log, tuples[:1])
	if err != nil {
		t.Fatal(err)
	}
	if resp := decode[scoreResponse](t, raw); resp.Counts[0] != want[0] {
		t.Errorf("name-list candidate: /score %d, core %d", resp.Counts[0], want[0])
	}
}

func TestScoreValidation(t *testing.T) {
	_, ts, _, tuples := newTestServer(t, nil)
	bit := tuples[0].String()
	cases := []struct {
		name string
		req  any
	}{
		{"unknown mode", scoreRequest{Mode: "sideways", Candidates: []string{bit}}},
		{"empty candidates", scoreRequest{Mode: "subset"}},
		{"bad candidate", scoreRequest{Mode: "subset", Candidates: []string{"NotAnAttr"}}},
		{"garbage body", "not json"},
	}
	for _, tc := range cases {
		status, raw := postJSON(t, ts.URL+"/score", tc.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d body %s, want 400", tc.name, status, raw)
		}
	}
	resp, err := http.Get(ts.URL + "/score")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /score = %d, want 405", resp.StatusCode)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	_, ts, log, _ := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	sr := decode[schemaResponse](t, read(t, resp))
	if sr.Width != log.Width() || len(sr.Attrs) != log.Width() {
		t.Fatalf("/schema reports width %d with %d attrs, log width %d", sr.Width, len(sr.Attrs), log.Width())
	}
	for i, name := range log.Schema.Attrs() {
		if sr.Attrs[i] != name {
			t.Fatalf("/schema attr %d = %q, want %q", i, sr.Attrs[i], name)
		}
	}
}
