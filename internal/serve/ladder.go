package serve

import (
	"context"
	"errors"
	"sort"
	"strings"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/fault"
)

// Algorithms maps request algo names to solver constructors, parameterized
// on the per-solve worker count (Config.SolverWorkers; solvers without a
// parallel mode ignore it — results never depend on it either way, see
// DESIGN.md §11). "greedy" is the ladder's bottom rung (ConsumeAttrCumul,
// the strongest §IV.D heuristic) and also requestable directly.
var algorithms = map[string]func(workers int) core.Solver{
	"brute":            func(w int) core.Solver { return core.BruteForce{Workers: w} },
	"ip":               func(int) core.Solver { return core.IP{} },
	"ilp":              func(w int) core.Solver { return core.ILP{Workers: w} },
	"mfi":              func(int) core.Solver { return core.MaxFreqItemSets{} },
	"mfi-exact":        func(w int) core.Solver { return core.MaxFreqItemSets{Backend: core.BackendExactDFS, Workers: w} },
	"consumeattr":      func(int) core.Solver { return core.ConsumeAttr{} },
	"consumeattrcumul": func(int) core.Solver { return core.ConsumeAttrCumul{} },
	"consumequeries":   func(int) core.Solver { return core.ConsumeQueries{} },
	"greedy":           func(int) core.Solver { return core.ConsumeAttrCumul{} },
	"estimate":         func(int) core.Solver { return core.Estimate{} },
}

// greedyNames are the rungless algorithms: already the cheapest tier.
var greedyNames = map[string]bool{
	"consumeattr": true, "consumeattrcumul": true, "consumequeries": true, "greedy": true,
	"estimate": true,
}

// AlgoNames lists the accepted algo values, sorted.
func AlgoNames() []string {
	out := make([]string, 0, len(algorithms))
	for n := range algorithms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// rung is one step of the degradation ladder: a solver, its response name,
// and the minimum remaining deadline budget worth attempting it with.
// direct rungs solve without the shared prep — the estimate rung carries its
// own model and must not block on a prep rebuild it does not need.
type rung struct {
	name   string
	solver core.Solver
	floor  time.Duration
	direct bool
}

// ladder builds the fallback chain for a requested algorithm:
//
//	exact (brute|ip|ilp)  →  mfi-exact  →  greedy  [→  estimate]
//	mfi | mfi-exact       →  greedy  [→  estimate]
//	greedy tier           →  [estimate]
//	estimate              →  (no fallback; nothing is cheaper)
//
// Every rung above greedy is exact, so any non-estimated answer the ladder
// produces — degraded or not — satisfies at least as many queries as the
// greedy baseline on the same instance. The estimate rung (DESIGN.md §16)
// joins the chain only when a warmed model for the request's log generation
// exists; greedy then gets a floor of Config.GreedyBudget and the estimator
// — which touches neither the log nor the index — becomes the true bottom:
// under extreme deadline pressure a 200 with a certified interval beats a
// 504. While no model is warmed, greedy keeps floor zero and the ladder is
// exactly the pre-estimate chain.
func (s *Server) ladder(algo string, log *dataset.QueryLog) []rung {
	est, warmed := s.estimateRung(log)
	if algo == "estimate" {
		if warmed {
			return []rung{est}
		}
		// No warmed model: the solver builds one from the prep (or log) itself.
		return []rung{{name: algo, solver: algorithms[algo](s.cfg.SolverWorkers)}}
	}
	greedyFloor := time.Duration(0)
	var tail []rung
	if warmed {
		greedyFloor = s.cfg.GreedyBudget
		tail = []rung{est}
	}
	if greedyNames[algo] {
		return append([]rung{{name: algo, solver: algorithms[algo](s.cfg.SolverWorkers), floor: greedyFloor}}, tail...)
	}
	requested := rung{name: algo, solver: algorithms[algo](s.cfg.SolverWorkers), floor: s.cfg.ExactBudget}
	greedy := rung{name: "greedy", solver: core.ConsumeAttrCumul{}, floor: greedyFloor}
	if strings.HasPrefix(algo, "mfi") {
		requested.floor = s.cfg.MFIBudget
		return append([]rung{requested, greedy}, tail...)
	}
	mfi := rung{name: "mfi-exact", solver: core.MaxFreqItemSets{Backend: core.BackendExactDFS, Workers: s.cfg.SolverWorkers}, floor: s.cfg.MFIBudget}
	return append([]rung{requested, mfi, greedy}, tail...)
}

// estimateRung returns the shed-of-last-resort rung when the cached prep is
// usable for log and its estimator model has been warmed. The model is
// injected into the solver directly: the solve then touches neither the log
// nor the shared index, so the rung works even while the prep churns.
func (s *Server) estimateRung(log *dataset.QueryLog) (rung, bool) {
	if p := s.prep.snapshot(); usable(p, log) {
		if m := p.EstimatorModelReady(); m != nil {
			return rung{name: "estimate", solver: core.Estimate{Model: m}, direct: true}, true
		}
	}
	return rung{}, false
}

// solveLadder runs one instance down the degradation ladder under the
// request deadline. Rungs whose floor exceeds the remaining budget are
// skipped outright; an attempted rung gets the remaining budget minus a
// reserve for the rungs below it, so a rung that blows its slice still
// leaves time to serve something. The bottom rung gets whatever is left.
// It returns the solution, the name of the rung that produced it, and
// whether that was a degradation from the requested algorithm.
func (s *Server) solveLadder(ctx context.Context, algo string, log *dataset.QueryLog, tuple bitvec.Vector, m int) (core.Solution, string, bool, error) {
	rungs := s.ladder(algo, log)
	deadline, hasDeadline := ctx.Deadline()
	var lastErr error
	for i, r := range rungs {
		last := i == len(rungs)-1
		if err := ctx.Err(); err != nil {
			return core.Solution{}, r.name, i > 0, err
		}
		rctx, cancel := ctx, context.CancelFunc(func() {})
		if hasDeadline && !last {
			remaining := time.Until(deadline)
			if remaining < r.floor {
				continue // not worth starting: fall to a cheaper rung
			}
			slice := remaining - s.cfg.GreedyReserve
			if slice <= 0 {
				continue
			}
			rctx, cancel = context.WithTimeout(ctx, slice)
		}
		var sol core.Solution
		var err error
		if r.direct {
			// The rung carries everything it needs (an injected estimator
			// model): solve without touching the shared prep, so a rebuild in
			// flight cannot stall the last rung.
			sol, err = s.safeSolve(rctx, func(ctx context.Context) (core.Solution, error) {
				return r.solver.SolveContext(ctx, core.Instance{Log: log, Tuple: tuple, M: m})
			})
		} else {
			sol, err = s.attempt(rctx, r.solver, log, tuple, m)
		}
		cancel()
		if err == nil {
			return sol, r.name, i > 0, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The request's own budget is gone; stop descending.
			return core.Solution{}, r.name, i > 0, ctx.Err()
		}
		var pe *core.PanicError
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			continue // the rung's slice expired: degrade
		case errors.As(err, &pe):
			continue // the rung panicked (already recovered and counted): degrade
		case last:
		default:
			// Anything else (validation, injected non-deadline fault) will
			// not improve on a cheaper rung — but a degraded answer still
			// beats an error, so fall through to the bottom rung.
			continue
		}
	}
	return core.Solution{}, "", false, lastErr
}

// attempt solves one instance through the shared prep, retrying with
// single-flight rebuilds when the prep goes stale mid-flight (a Touch or
// swap racing the solve), and falling back to index-less solving when
// rebuilding keeps failing. Panics are recovered into *core.PanicError.
func (s *Server) attempt(ctx context.Context, solver core.Solver, log *dataset.QueryLog, tuple bitvec.Vector, m int) (core.Solution, error) {
	for try := 0; ; try++ {
		p, perr := s.prep.get(ctx, log)
		var sol core.Solution
		var err error
		if perr == nil {
			sol, err = s.safeSolve(ctx, func(ctx context.Context) (core.Solution, error) {
				return p.SolveContext(ctx, solver, tuple, m)
			})
		} else {
			if ctx.Err() != nil {
				return core.Solution{}, ctx.Err()
			}
			// No shared index available (persistent rebuild failure): serve
			// the slow-but-correct direct path rather than failing.
			sol, err = s.safeSolve(ctx, func(ctx context.Context) (core.Solution, error) {
				return solver.SolveContext(ctx, core.Instance{Log: log, Tuple: tuple, M: m})
			})
		}
		if err != nil && errors.Is(err, core.ErrStalePrep) && try < s.cfg.RebuildRetries && ctx.Err() == nil {
			s.met.staleRetries.Add(1)
			if p != nil {
				s.prep.invalidate(p)
			}
			if serr := sleepCtx(ctx, s.prep.backoffFor(try+1)); serr != nil {
				return core.Solution{}, serr
			}
			continue
		}
		return sol, err
	}
}

// safeSolve is the panic boundary of one solve attempt: a panicking solver
// (or an injected chaos panic at the serve.solve site) becomes a
// *core.PanicError and a metrics tick instead of a dead process.
func (s *Server) safeSolve(ctx context.Context, f func(context.Context) (core.Solution, error)) (sol core.Solution, err error) {
	defer func() {
		var pe *core.PanicError
		if errors.As(err, &pe) {
			s.met.panics.Add(1)
		}
	}()
	defer core.RecoverPanic(&err)
	if ferr := fault.Hit(ctx, "serve.solve"); ferr != nil {
		return core.Solution{}, ferr
	}
	return f(ctx)
}
