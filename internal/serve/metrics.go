package serve

import "standout/internal/obsv"

// metrics is the serving layer's instrument set, registered get-or-create on
// an obsv.Registry so multiple Servers in one process (tests, blue/green
// logs) share one set of counters. The /metrics endpoint renders the whole
// registry — these plus the core solver metrics recording underneath.
type metrics struct {
	requests      *obsv.Counter
	shed          *obsv.Counter
	shedEstimated *obsv.Counter
	estimated     *obsv.Counter
	degraded      *obsv.Counter
	panics        *obsv.Counter
	failures      *obsv.Counter
	timeouts      *obsv.Counter
	prepRebuilds  *obsv.Counter
	prepDeltas    *obsv.Counter
	prepRetries   *obsv.Counter
	staleRetries  *obsv.Counter
	logSwaps      *obsv.Counter
	queueDepth    *obsv.Gauge
	inflight      *obsv.Gauge
	latency       *obsv.Histogram
}

func newMetrics(r *obsv.Registry) *metrics {
	return &metrics{
		requests: r.Counter("standout_serve_requests_total",
			"Solve and batch requests accepted for parsing (everything past routing)."),
		shed: r.Counter("standout_serve_shed_total",
			"Requests rejected with 429 because the admission queue was full."),
		shedEstimated: r.Counter("standout_serve_shed_estimated_total",
			"Admission-shed solve requests answered 200 with a certified estimate instead of a 429 (Config.ShedEstimate)."),
		estimated: r.Counter("standout_serve_estimated_total",
			"Responses served by the itemset+LP estimate rung: satisfied counts are certified intervals, not exact."),
		degraded: r.Counter("standout_serve_degraded_total",
			"Responses served by a cheaper rung of the degradation ladder than requested."),
		panics: r.Counter("standout_serve_panics_total",
			"Solver panics recovered at the serving boundary."),
		failures: r.Counter("standout_serve_failures_total",
			"Requests answered 5xx (panics, injected faults, exhausted rebuilds)."),
		timeouts: r.Counter("standout_serve_timeouts_total",
			"Requests whose whole deadline budget expired (504)."),
		prepRebuilds: r.Counter("standout_serve_prep_rebuilds_total",
			"Prepared-log rebuilds started by the single-flight path."),
		prepDeltas: r.Counter("standout_serve_prep_delta_builds_total",
			"Single-flight rebuilds satisfied by an incremental delta build instead of a full re-index."),
		prepRetries: r.Counter("standout_serve_prep_retries_total",
			"Prepared-log rebuild attempts beyond the first (backoff retries)."),
		staleRetries: r.Counter("standout_serve_stale_retries_total",
			"Solves retried after hitting ErrStalePrep mid-flight."),
		logSwaps: r.Counter("standout_serve_log_swaps_total",
			"Copy-on-write query-log swaps from POST /log."),
		queueDepth: r.Gauge("standout_serve_queue_depth",
			"Requests currently waiting for an admission slot."),
		inflight: r.Gauge("standout_serve_inflight",
			"Requests currently holding an admission slot."),
		latency: r.Histogram("standout_serve_request_seconds",
			"Wall time of one admitted solve or batch request.", nil),
	}
}
