package serve

// Weighted-workload suite: the serving layer over logs whose entries carry
// multiplicities — the shape internal/compact produces and PR 8's weighted
// /log appends feed back. Every invariant the unweighted tests establish must
// hold with weights in play: the degradation ladder's greedy floor, /log's
// total-weight bookkeeping across append generations, and survival under the
// full chaos storm.

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"standout/internal/bitvec"
	"standout/internal/core"
	"standout/internal/dataset"
	"standout/internal/gen"
	"standout/internal/obsv"
)

// weightedWorkload builds a car-themed query log with seeded non-unit weights
// (the compacted-duplicates shape) plus candidate tuples.
func weightedWorkload(t *testing.T, seed int64) (*dataset.QueryLog, []bitvec.Vector) {
	t.Helper()
	tab := gen.Cars(seed, 150)
	base := gen.RealWorkload(tab, seed+1, 50)
	tuples := gen.PickTuples(tab, seed+2, 8)
	rng := rand.New(rand.NewSource(seed + 3))
	log := dataset.NewQueryLog(base.Schema)
	for _, q := range base.Queries {
		if err := log.AppendWeighted(q, 1+rng.Intn(7)); err != nil {
			t.Fatalf("AppendWeighted: %v", err)
		}
	}
	if log.TotalWeight() <= log.Size() {
		t.Fatalf("weighted workload degenerated to unit weights (%d entries, weight %d)",
			log.Size(), log.TotalWeight())
	}
	return log, tuples
}

// newWeightedServer is newTestServer over a weighted log.
func newWeightedServer(t *testing.T, seed int64, mut func(*Config)) (*Server, *httptest.Server, *dataset.QueryLog, []bitvec.Vector) {
	t.Helper()
	log, tuples := weightedWorkload(t, seed)
	cfg := Config{Log: log, Registry: obsv.NewRegistry(), Seed: 42}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts, log, tuples
}

// TestDegradationLadderWeightedLog forces the ladder to its greedy floor on a
// weighted log: the degraded 200 must reproduce core.ConsumeAttrCumul's
// weighted answer exactly, not merely some unweighted approximation of it.
func TestDegradationLadderWeightedLog(t *testing.T) {
	_, ts, log, tuples := newWeightedServer(t, 11, func(c *Config) {
		c.ExactBudget = time.Hour // every rung above greedy is skipped
		c.MFIBudget = time.Hour
	})
	for _, tuple := range tuples[:3] {
		status, raw := postJSON(t, ts.URL+"/solve",
			solveRequest{Tuple: tuple.String(), M: 5, Algo: "brute", TimeoutMS: 500})
		if status != http.StatusOK {
			t.Fatalf("status %d, body %s", status, raw)
		}
		resp := decode[solveResponse](t, raw)
		if !resp.Degraded || resp.Solver != "greedy" {
			t.Fatalf("want degraded greedy, got %+v", resp)
		}
		want, err := core.ConsumeAttrCumul{}.Solve(core.Instance{Log: log, Tuple: tuple, M: 5})
		if err != nil {
			t.Fatalf("weighted greedy baseline: %v", err)
		}
		if resp.Satisfied != want.Satisfied {
			t.Errorf("tuple %s: degraded satisfied %d, weighted greedy %d", tuple, resp.Satisfied, want.Satisfied)
		}
	}
}

// TestLogTotalWeightAfterWeightedAppends walks /log through several weighted
// append generations and checks the total-weight bookkeeping at every step:
// queries grow by entries, total_weight by the weight sum, and a solve after
// the appends reflects the weighted log exactly.
func TestLogTotalWeightAfterWeightedAppends(t *testing.T) {
	srv, ts, log, tuples := newWeightedServer(t, 13, nil)
	status, raw := postJSON(t, ts.URL+"/solve", solveRequest{Tuple: tuples[0].String(), M: 4, Algo: "greedy"})
	if status != http.StatusOK {
		t.Fatalf("pre-append solve: status %d body %s", status, raw)
	}

	resp, err := http.Get(ts.URL + "/log")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[logResponse](t, read(t, resp))
	if stats.TotalWeight != log.TotalWeight() || stats.Queries != log.Size() {
		t.Fatalf("/log reports %d×%d, log is %d×%d",
			stats.Queries, stats.TotalWeight, log.Size(), log.TotalWeight())
	}

	// Mirror the appends locally so the post-append solve can be checked
	// bit-for-bit against a core solve over the same weighted log.
	mirror := dataset.NewQueryLog(log.Schema)
	for i, q := range log.Queries {
		if err := mirror.AppendWeighted(q, log.Weight(i)); err != nil {
			t.Fatal(err)
		}
	}
	gens := []struct {
		specs   []string
		weights []int
	}{
		{[]string{tuples[1].String(), tuples[2].String()}, []int{5, 9}},
		{[]string{tuples[3].String()}, nil}, // unweighted append: weight 1
		{[]string{tuples[1].String()}, []int{12}},
	}
	wantQ, wantW := stats.Queries, stats.TotalWeight
	for gi, g := range gens {
		status, raw := postJSON(t, ts.URL+"/log", appendRequest{Append: g.specs, Weights: g.weights})
		if status != http.StatusOK {
			t.Fatalf("gen %d append: status %d body %s", gi, status, raw)
		}
		after := decode[logResponse](t, raw)
		wantQ += len(g.specs)
		for i, spec := range g.specs {
			w := 1
			if g.weights != nil {
				w = g.weights[i]
			}
			wantW += w
			q, err := dataset.ParseTuple(log.Schema, spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := mirror.AppendWeighted(q, w); err != nil {
				t.Fatal(err)
			}
		}
		if after.Queries != wantQ || after.TotalWeight != wantW {
			t.Fatalf("gen %d: /log reports %d×%d, want %d×%d",
				gi, after.Queries, after.TotalWeight, wantQ, wantW)
		}
	}

	status, raw = postJSON(t, ts.URL+"/solve", solveRequest{Tuple: tuples[1].String(), M: 4, Algo: "greedy", TimeoutMS: 2000})
	if status != http.StatusOK {
		t.Fatalf("post-append solve: status %d body %s", status, raw)
	}
	got := decode[solveResponse](t, raw)
	want, err := core.ConsumeAttrCumul{}.Solve(core.Instance{Log: mirror, Tuple: tuples[1], M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Satisfied != want.Satisfied {
		t.Errorf("post-append satisfied %d, weighted mirror %d", got.Satisfied, want.Satisfied)
	}

	// Validation: mismatched weight vector and sub-unit weights are 400s that
	// leave the log untouched.
	for name, req := range map[string]appendRequest{
		"length mismatch": {Append: []string{tuples[0].String()}, Weights: []int{1, 2}},
		"zero weight":     {Append: []string{tuples[0].String()}, Weights: []int{0}},
		"negative weight": {Append: []string{tuples[0].String()}, Weights: []int{-3}},
	} {
		status, raw := postJSON(t, ts.URL+"/log", req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d body %s, want 400", name, status, raw)
		}
	}
	if cur := srv.CurrentLog(); cur.Size() != wantQ || cur.TotalWeight() != wantW {
		t.Errorf("rejected appends mutated the log: %d×%d, want %d×%d",
			cur.Size(), cur.TotalWeight(), wantQ, wantW)
	}
}

func read(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return raw
}

// TestChaosStormWeightedLog runs the full fault storm over a weighted log
// with a stable generation: every 200 must clear the WEIGHTED greedy
// baseline. A weight-blind rung would undercount and fail invariant 3 here
// even where the unweighted storm passes.
func TestChaosStormWeightedLog(t *testing.T) {
	srv, ts, log, tuples := newWeightedServer(t, 17, func(c *Config) {
		c.Injector = chaosInjector(4)
		c.MaxConcurrent = 4
		c.MaxQueue = 8
		c.ExactBudget = 50 * time.Millisecond
		c.MFIBudget = 5 * time.Millisecond
		c.GreedyReserve = 2 * time.Millisecond
	})
	storm(t, ts, log, tuples, 400, 8, 25, false)
	if srv.met.requests.Value() == 0 {
		t.Fatal("weighted storm sent no requests")
	}
	t.Logf("weighted storm: requests=%d shed=%d degraded=%d panics=%d total_weight=%d",
		srv.met.requests.Value(), srv.met.shed.Value(), srv.met.degraded.Value(),
		srv.met.panics.Value(), log.TotalWeight())
}
