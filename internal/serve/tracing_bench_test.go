package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"standout/internal/gen"
	"standout/internal/obsv"
)

// benchmarkSolveRequest drives the full request path — tracing middleware,
// admission, ladder, solve, response encoding — directly through the handler
// (no network), with the flight recorder on or off, and reports per-request
// p50/p99 wall time alongside ns/op. BENCH_obsv.json records a run of both;
// the delta is the recorder's end-to-end overhead (two atomics, one record
// allocation and a trace snapshot per request).
func benchmarkSolveRequest(b *testing.B, flightSize int) {
	b.Helper()
	tab := gen.Cars(1, 150)
	log := gen.RealWorkload(tab, 2, 50)
	tuple := gen.PickTuples(tab, 3, 1)[0]
	s, err := New(Config{
		Log:        log,
		Registry:   obsv.NewRegistry(),
		Seed:       42,
		FlightSize: flightSize,
		// Far above any solve here: the bench measures recording cost, not
		// slow-log formatting.
		SlowThreshold: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	body, err := json.Marshal(solveRequest{Tuple: tuple.String(), M: 5})
	if err != nil {
		b.Fatal(err)
	}

	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body))
		rr := httptest.NewRecorder()
		t0 := time.Now()
		h.ServeHTTP(rr, req)
		lat = append(lat, time.Since(t0))
		if rr.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rr.Code, rr.Body.String())
		}
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2]), "p50-ns")
	b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
}

func BenchmarkSolveRequestFlightOn(b *testing.B)  { benchmarkSolveRequest(b, 256) }
func BenchmarkSolveRequestFlightOff(b *testing.B) { benchmarkSolveRequest(b, -1) }
